// Regenerates the Sec. VII-C tuning experiments:
//   (a) CUDA block-size sweep — the paper finds b=256 optimal (occupancy vs
//       block turnover), with slice=block=32 catastrophically underutilized;
//   (b) L1 split 16 KB vs 48 KB — the paper reports ~6% average gain.
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/kernels.hpp"
#include "gpusim/occupancy.hpp"
#include "sparse/ell.hpp"
#include "util/table.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  const auto scale = bench::scale_name(argc, argv);
  const auto suite = bench::suite_matrices(scale);

  std::cout << "Sec. VII-C ablations (simulated GTX580, scale=" << scale
            << ")\n\n(a) Block-size sweep, ELL SpMV average GFLOPS\n\n";
  {
    TextTable table({"block", "occupancy", "avg GFLOPS"});
    const auto dev = gpusim::DeviceSpec::gtx580();
    for (int b : {32, 64, 128, 256, 512, 1024}) {
      gpusim::SimOptions opt;
      opt.block_size = b;
      real_t sum = 0;
      for (const auto& m : suite) {
        const auto x = bench::uniform_vector(m.a.ncols);
        std::vector<real_t> y(static_cast<std::size_t>(m.a.nrows));
        sum += gpusim::simulate_spmv(dev, sparse::ell_from_csr(m.a), x, y, opt)
                   .gflops;
      }
      table.add_row({std::to_string(b),
                     TextTable::num(gpusim::occupancy(dev, b).fraction, 2),
                     TextTable::num(sum / static_cast<real_t>(suite.size()))});
    }
    std::cout << table.render();
    std::cout << "\nPaper: b=256 best (full occupancy + best turnover); "
                 "b=32 leaves 5/6 of the SM idle.\n";
  }

  std::cout << "\n(b) L1 configuration, ELL SpMV average GFLOPS\n\n";
  {
    struct Config {
      const char* name;
      std::size_t l1;
      bool enabled;
    };
    const Config configs[] = {{"disabled (L2 only)", 48 * 1024, false},
                              {"16 KB", 16 * 1024, true},
                              {"48 KB", 48 * 1024, true}};
    TextTable table({"L1 config", "avg GFLOPS"});
    for (const auto& cfg : configs) {
      const auto dev = gpusim::DeviceSpec::gtx580(cfg.l1);
      gpusim::SimOptions opt;
      opt.l1_enabled = cfg.enabled;
      real_t sum = 0;
      for (const auto& m : suite) {
        const auto x = bench::uniform_vector(m.a.ncols);
        std::vector<real_t> y(static_cast<std::size_t>(m.a.nrows));
        sum += gpusim::simulate_spmv(dev, sparse::ell_from_csr(m.a), x, y, opt)
                   .gflops;
      }
      table.add_row(
          {cfg.name, TextTable::num(sum / static_cast<real_t>(suite.size()))});
    }
    std::cout << table.render();
    std::cout
        << "\nPaper: 15.132 GFLOPS with 16 KB vs 16.032 with 48 KB (+6%).\n"
           "The transaction-level model reproduces the first-order value of "
           "the L1 (vs routing\ngathers to L2), but the 16-vs-48 KB margin is "
           "a capacity effect that only appears at\nthe paper's full matrix "
           "sizes (working set between the two capacities); at container\n"
           "scale the banded CME gathers fit either split. See EXPERIMENTS.md.\n";
  }
  return 0;
}
