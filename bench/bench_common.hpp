#pragma once
//
// Shared helpers for the bench binaries: scale selection, suite matrix
// generation, and the canonical probability-vector input.
//
#include <cstdlib>
#include <string>
#include <vector>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "gpusim/device.hpp"
#include "obs/report.hpp"
#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace cmesolve::bench {

inline std::string scale_name(int argc, char** argv) {
  std::string name = "small";
  if (const char* env = std::getenv("CMESOLVE_SCALE")) name = env;
  if (argc > 1) name = argv[1];
  return name;
}

struct SuiteMatrix {
  std::string name;
  sparse::Csr a;
};

/// Generate the 7 Table I rate matrices at the requested scale.
inline std::vector<SuiteMatrix> suite_matrices(const std::string& scale) {
  std::vector<SuiteMatrix> out;
  for (auto& model : core::models::paper_suite(core::models::parse_scale(scale))) {
    const core::StateSpace space(model.network, model.initial, 20'000'000);
    out.push_back({model.name, core::rate_matrix(space)});
  }
  return out;
}

/// Uniform probability vector of length n (the Jacobi initial guess; also
/// the SpMV input so cache behaviour matches the solver's).
inline std::vector<real_t> uniform_vector(index_t n) {
  return std::vector<real_t>(static_cast<std::size_t>(n),
                             1.0 / static_cast<real_t>(n));
}

/// Stamp the shared provenance fields of the run report (schema
/// "cmesolve.run_report/2") and the bench ledger record
/// ("cmesolve.bench/1") for a bench binary. Pass the simulated device
/// when the bench uses one. Every bench publishes its headline numbers as
/// obs gauges (measured wall-clock-derived values with is_volatile=true,
/// modeled/counted values deterministic) and calls obs::flush_outputs()
/// before exit so CMESOLVE_REPORT / CMESOLVE_BENCH / CMESOLVE_FLIGHT work
/// uniformly across the bench suite and cme_bench_diff can diff any run.
inline void report_context(const std::string& program, const std::string& scale,
                           const gpusim::DeviceSpec* dev = nullptr) {
  obs::set_context("program", program);
  obs::set_context("scale", scale);
  if (dev != nullptr) {
    obs::set_context("device", dev->name);
  }
}

}  // namespace cmesolve::bench
