// Solver-convergence comparison (methodology ablation around Sec. IV): how
// many sweeps each stationary method needs on the CME systems, and the
// residual trajectory of the paper's Jacobi. Writes convergence_<model>.csv
// with the Jacobi residual trace for plotting.
#include <fstream>
#include <iostream>

#include "bench_common.hpp"
#include "solver/gauss_seidel.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/power_iteration.hpp"
#include "solver/vector_ops.hpp"
#include "util/table.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  std::string scale = bench::scale_name(argc, argv);
  if (argc <= 1 && !std::getenv("CMESOLVE_SCALE")) scale = "tiny";
  std::cout << "Stationary-method comparison on CME systems (eps=1e-8, "
               "scale=" << scale << ")\n\n";

  TextTable table({"network", "Jacobi", "Jacobi w=0.8", "Gauss-Seidel",
                   "power iter", "winner"});

  for (auto& m : bench::suite_matrices(scale)) {
    const real_t norm = m.a.inf_norm();
    solver::CsrDiaOperator op(m.a);

    const auto run_jacobi = [&](real_t damping, bool trace) {
      solver::JacobiOptions opt;
      opt.eps = 1e-8;
      opt.max_iterations = 300'000;
      opt.damping = damping;
      // Residual trajectory via the solver's bounded history (stride-
      // sampled, so a slow solve still yields a full-range trace).
      if (trace) opt.history_capacity = 2048;
      std::vector<real_t> p(static_cast<std::size_t>(m.a.nrows));
      solver::fill_uniform(p);
      return solver::jacobi_solve(op, norm, p, opt);
    };

    const auto jac = run_jacobi(1.0, /*trace=*/true);
    {
      std::ofstream csv("convergence_" + m.name + ".csv");
      csv << "iteration,residual\n";
      for (const auto& sample : jac.residual_history) {
        csv << sample.iteration << ',' << sample.residual << '\n';
      }
    }
    const auto damped = run_jacobi(0.8, false);

    solver::JacobiOptions gopt;
    gopt.eps = 1e-8;
    gopt.max_iterations = 300'000;
    std::vector<real_t> pg(static_cast<std::size_t>(m.a.nrows));
    solver::fill_uniform(pg);
    const auto gs = solver::gauss_seidel_solve(m.a, norm, pg, gopt);

    solver::PowerIterationOptions popt;
    popt.eps = 1e-8;
    popt.max_iterations = 300'000;
    std::vector<real_t> pp(static_cast<std::size_t>(m.a.nrows));
    solver::fill_uniform(pp);
    const auto pw = solver::power_iteration_solve(op, norm, pp, popt);

    const auto cell = [](const solver::JacobiResult& r) {
      std::string s = TextTable::count(static_cast<long long>(r.iterations));
      if (r.reason != solver::StopReason::kConverged) {
        s += std::string(" (") + to_string(r.reason) + ")";
      }
      return s;
    };
    const char* winner = "Gauss-Seidel";
    std::uint64_t best = gs.reason == solver::StopReason::kConverged
                             ? gs.iterations
                             : ~0ULL;
    if (jac.reason == solver::StopReason::kConverged && jac.iterations < best) {
      best = jac.iterations;
      winner = "Jacobi";
    }
    if (pw.reason == solver::StopReason::kConverged && pw.iterations < best) {
      winner = "power";
    }
    table.add_row({m.name, cell(jac), cell(damped), cell(gs), cell(pw),
                   winner});
  }
  std::cout << table.render();
  std::cout << "\nGauss-Seidel converges in fewer sweeps but is inherently "
               "sequential; the paper picks\nJacobi because every component "
               "updates independently — the GPU parallelism of Sec. IV.\n"
               "Jacobi residual traces written to convergence_<model>.csv.\n";
  return 0;
}
