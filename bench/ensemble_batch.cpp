// Batched multi-RHS ensemble solver vs K independent solves (no paper
// table: this is the ensemble extension, see DESIGN.md "Batched ensemble
// solver").
//
// The workload is the paper's motivating one (Sec. I): the SAME phage-lambda
// network solved at K rate conditions. Three pipelines are compared:
//   * baseline: K fully independent solves — each point re-enumerates the
//     state space, rebuilds its stencil table and propensity cache, and
//     Jacobi-iterates from the uniform guess (the pre-ensemble workflow);
//   * ensemble/batched: one shared EnsembleStructure, points solved K-per-
//     sweep through BatchedStencilOperator with continuation ordering and
//     warm starts (solver::solve_ensemble, batched mode);
//   * ensemble/sequential: the same ordering/warm starts through the
//     single-RHS operator — the bitwise reference for the batched path.
//
// Modeled lane: the gpusim batched stencil kernel vs K single-RHS stencil
// kernel launches on the same device (DRAM bytes per sweep).
//
// Acceptance gates (the bench exits non-zero when one fails, so the CI
// smoke run doubles as a regression gate):
//   * bitwise: every point of the batched solve is IDENTICAL (bit for bit,
//     same iterations, same stop reason) to the sequential-mode solve —
//     always enforced, every scale;
//   * effective speedup >= K/2: the factor by which the batched sweep cuts
//     the bytes the sweep has to touch ("effective" in the sense of
//     bench/spmv_matrix_free: obligatory format bytes, not cache luck). K
//     independent cached sweeps each stream the propensity table plus one
//     x/y pair, K*(R+2)*n doubles; the batched sweep streams the shared
//     unit table ONCE plus K x/y pairs, (R+2K)*n doubles. The ratio
//     K(R+2)/(R+2K) is the sweep speedup a bandwidth-bound device sees,
//     and it is co-gated on the MEASURED host per-lane sweep speedup
//     (K*t_single/t_batched) actually exceeding 1.25x so the amortization
//     is demonstrably materializing, not just accounted;
//   * modeled: gpusim batched-kernel time per point <= 0.9x a single-RHS
//     launch (the matrix-free kernel has no value array, so its DRAM
//     scales with K either way; the modeled win is decode/window/factor
//     work amortized over the batch);
//   * end-to-end wall clock: full batched ensemble >= K/2 faster than K
//     independent solves. This one only holds where the sweep is actually
//     bandwidth-bound, so it is enforced only when (a) the per-point
//     working set exceeds the last-level cache and (b) a stream-triad
//     calibration shows the single-RHS sweep running AT stream bandwidth
//     (0.6x-1.2x): well below means the host is compute-bound, well above
//     means the sweep's bytes were cache-fed rather than streamed, and in
//     either regime there is no DRAM traffic for the batch to save, so the
//     measured number is printed as advisory (same regime policy as
//     bench/spmv_matrix_free).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/models.hpp"
#include "core/stencil.hpp"
#include "gpusim/kernels.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "solver/batched.hpp"
#include "solver/jacobi.hpp"
#include "solver/stencil_operator.hpp"
#include "solver/vector_ops.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace cmesolve;

namespace {

struct SweepSetup {
  core::models::PhageLambdaParams params;
  int points = 8;
};

SweepSetup setup_for(core::models::SuiteScale scale) {
  SweepSetup s;
  switch (scale) {
    case core::models::SuiteScale::kTiny:
      s.params.cap_ci = s.params.cap_cro = 4;
      s.params.cap_ci2 = s.params.cap_cro2 = 2;
      s.points = 8;
      break;
    case core::models::SuiteScale::kSmall:
      s.params.cap_ci = s.params.cap_cro = 6;
      s.params.cap_ci2 = s.params.cap_cro2 = 3;
      s.points = 8;
      break;
    case core::models::SuiteScale::kMedium:
      s.params.cap_ci = s.params.cap_cro = 8;
      s.params.cap_ci2 = s.params.cap_cro2 = 4;
      s.points = 12;
      break;
  }
  return s;
}

struct Sweep {
  std::vector<std::vector<real_t>> rates;  ///< per point, network indexing
  std::vector<real_t> factors;             ///< CI-synthesis multiplier
};

/// Rate vector for sweep point j: the anchor network's rates with the CI
/// synthesis reactions scaled by factor f. Points arrive SHUFFLED (a fixed
/// stride permutation) so the continuation ordering has real work to do —
/// an exploratory sweep rarely hands the solver a sorted parameter list.
Sweep sweep_rates(const core::ReactionNetwork& net, int k) {
  std::vector<real_t> base(static_cast<std::size_t>(net.num_reactions()));
  int basal = -1;
  int active = -1;
  for (int r = 0; r < net.num_reactions(); ++r) {
    base[static_cast<std::size_t>(r)] = net.reaction(r).rate;
    if (net.reaction(r).name == "synthCI_basal") basal = r;
    if (net.reaction(r).name == "synthCI_active") active = r;
  }
  Sweep s;
  s.rates.reserve(static_cast<std::size_t>(k));
  for (int j = 0; j < k; ++j) {
    const int shuffled = static_cast<int>(
        (static_cast<std::size_t>(j) * 5 + 3) % static_cast<std::size_t>(k));
    const real_t f = std::exp(std::log(0.25) +
                              (std::log(4.0) - std::log(0.25)) * shuffled /
                                  std::max(k - 1, 1));
    auto rk = base;
    rk[static_cast<std::size_t>(basal)] *= f;
    rk[static_cast<std::size_t>(active)] *= f;
    s.rates.push_back(std::move(rk));
    s.factors.push_back(f);
  }
  return s;
}

bool bitwise_equal(std::span<const real_t> a, std::span<const real_t> b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(real_t)) == 0);
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = bench::scale_name(argc, argv);
  const auto dev = gpusim::DeviceSpec::gtx580();
  bench::report_context("ensemble_batch", scale, &dev);

  const auto s = setup_for(core::models::parse_scale(scale));
  const int k = s.points;
  const auto net = core::models::phage_lambda(s.params);
  const auto initial = core::models::phage_lambda_initial(s.params);
  const auto sweep = sweep_rates(net, k);
  const auto& rates = sweep.rates;

  solver::JacobiOptions jopt;
  jopt.eps = 1e-9;
  // Plain Jacobi carries an oscillatory mode on the phage-lambda box
  // (residual plateaus around 5e-4); the weighted sweep damps it out.
  jopt.damping = 0.95;

  std::cout << "Batched ensemble solve vs " << k
            << " independent solves (phage-lambda, scale=" << scale << ")\n\n";

  // ---- baseline: K fully independent solves ------------------------------
  // Every point pays the whole pipeline again: stencil compile, propensity
  // cache, activity mask, uniform guess, cold-start Jacobi.
  std::vector<real_t> base_seconds(static_cast<std::size_t>(k), 0.0);
  std::vector<std::vector<real_t>> base_p(static_cast<std::size_t>(k));
  std::vector<std::uint64_t> base_iters(static_cast<std::size_t>(k), 0);
  real_t baseline_total = 0.0;
  index_t box = 0;
  for (int j = 0; j < k; ++j) {
    WallTimer t;
    // Full per-point build, exactly what an independent script pays:
    // stencil compile from the network, rebind to the point's rates, then
    // a fresh propensity cache.
    const solver::StencilOperator fresh(net, initial);
    const core::StencilTable tbl(fresh.table(),
                                 rates[static_cast<std::size_t>(j)]);
    const solver::StencilOperator op(tbl, solver::StencilMode::kPropensityCache);
    box = op.nrows();
    const auto active = solver::box_active_rows(op.table());
    index_t rows_active = 0;
    for (const auto a : active) rows_active += a;
    std::vector<real_t> p(static_cast<std::size_t>(box), 0.0);
    const real_t p0 = 1.0 / static_cast<real_t>(rows_active);
    for (std::size_t i = 0; i < p.size(); ++i) {
      if (active[i]) p[i] = p0;
    }
    const auto r = solver::jacobi_solve(op, op.inf_norm(), p, jopt);
    base_seconds[static_cast<std::size_t>(j)] = t.seconds();
    baseline_total += base_seconds[static_cast<std::size_t>(j)];
    base_iters[static_cast<std::size_t>(j)] = r.iterations;
    base_p[static_cast<std::size_t>(j)] = std::move(p);
  }

  // ---- ensemble: shared structure, batched sweeps, continuation ----------
  const solver::StencilOperator anchor(net, initial);
  solver::EnsembleOptions eopt;
  eopt.jacobi = jopt;
  eopt.batch_width = 8;
  const auto ens = solver::solve_ensemble(anchor.table(), rates, eopt);

  solver::EnsembleOptions sopt = eopt;
  sopt.batched = false;
  const auto seq = solver::solve_ensemble(anchor.table(), rates, sopt);

  // ---- gates -------------------------------------------------------------
  bool bitwise_ok = true;
  real_t accuracy = 0.0;
  for (int j = 0; j < k; ++j) {
    const auto& eb = ens.points[static_cast<std::size_t>(j)];
    const auto& es = seq.points[static_cast<std::size_t>(j)];
    bitwise_ok = bitwise_ok && bitwise_equal(eb.p, es.p) &&
                 eb.jacobi.iterations == es.jacobi.iterations &&
                 eb.jacobi.reason == es.jacobi.reason &&
                 eb.gmres_used == es.gmres_used;
    // Ensemble vs baseline agree to solver tolerance (different iteration
    // counts via warm starts, same fixed point).
    for (std::size_t i = 0; i < eb.p.size(); ++i) {
      accuracy = std::max(accuracy,
                          std::abs(eb.p[i] -
                                   base_p[static_cast<std::size_t>(j)][i]));
    }
  }
  const real_t speedup =
      ens.seconds_total > 0 ? baseline_total / ens.seconds_total : 0.0;
  const real_t speedup_gate = static_cast<real_t>(k) / 2.0;

  // ---- host sweep microbenchmark + regime calibration --------------------
  // Effective bytes per sweep (bench/spmv_matrix_free convention): a cached
  // single-RHS sweep streams the propensity table plus one x/y pair; the
  // batched sweep streams the unit table once plus K x/y pairs.
  const auto nr = static_cast<std::size_t>(anchor.table().reactions().size());
  const auto nrows = static_cast<std::size_t>(box);
  const std::uint64_t single_sweep_bytes =
      static_cast<std::uint64_t>(nrows) * sizeof(real_t) * (nr + 2);
  const std::uint64_t batched_sweep_bytes =
      static_cast<std::uint64_t>(nrows) * sizeof(real_t) *
      (nr + 2 * static_cast<std::uint64_t>(k));
  const real_t amortization =
      static_cast<real_t>(k) * static_cast<real_t>(single_sweep_bytes) /
      static_cast<real_t>(batched_sweep_bytes);

  const auto best_of = [](int reps, auto&& body) {
    real_t best = std::numeric_limits<real_t>::infinity();
    for (int rep = 0; rep < reps; ++rep) {
      WallTimer t;
      body();
      best = std::min(best, t.seconds());
    }
    return best;
  };

  const core::StencilTable tbl0(anchor.table(), rates[0]);
  const solver::StencilOperator op0(tbl0, solver::StencilMode::kPropensityCache);
  const solver::EnsembleStructure structure(anchor.table());
  const solver::BatchedStencilOperator bop(structure, rates);
  std::vector<real_t> hx(nrows, 1.0 / static_cast<real_t>(nrows));
  std::vector<real_t> hy(nrows);
  std::vector<real_t> hxb(nrows * static_cast<std::size_t>(k),
                          1.0 / static_cast<real_t>(nrows));
  std::vector<real_t> hyb(nrows * static_cast<std::size_t>(k));
  const real_t t_single = best_of(5, [&] { op0.multiply(hx, hy); });
  const real_t t_batched = best_of(5, [&] { bop.multiply(hxb, hyb); });

  // ---- SIMD dispatch: cross-ISA bitwise parity + lane-sweep speedup ------
  // The batched sweep vectorizes across the K interleaved lanes; every
  // compiled-and-available ISA must reproduce the forced-scalar sweep bit
  // for bit (lanes never mix, per-lane accumulation order is fixed). The
  // speedup gate compares the auto-dispatched sweep above against the same
  // sweep forced through the scalar kernel table.
  const util::simd::Isa simd_active = util::simd::active_isa();
  std::vector<real_t> hyb_ref(nrows * static_cast<std::size_t>(k));
  util::simd::force_isa(util::simd::Isa::kScalar);
  bop.multiply(hxb, hyb_ref);
  const real_t t_scalar = best_of(5, [&] { bop.multiply(hxb, hyb); });
  bool simd_bitwise = bitwise_equal(hyb, hyb_ref);
  for (const util::simd::Isa isa : util::simd::compiled_isas()) {
    if (!util::simd::force_isa(isa)) continue;  // compiled in, CPU lacks it
    bop.multiply(hxb, hyb);
    simd_bitwise = simd_bitwise && bitwise_equal(hyb, hyb_ref);
  }
  util::simd::reset_forced_isa();
  // The enforced speedup gate runs at 2K lanes. The sweep's unit-table
  // streams are shared across the whole batch, so arithmetic per streamed
  // byte grows with the lane count: at K=8 on this box the sweep sits at
  // the bandwidth wall and every kernel table ties it, while 2K is the
  // first clearly compute-shaped point of the width sweep the batched
  // design targets. K=8 is reported above as part of the lane-speedup
  // line; parity stays enforced at both widths.
  const int k2 = 2 * k;
  auto rates2 = rates;
  rates2.insert(rates2.end(), rates.begin(), rates.end());
  const solver::BatchedStencilOperator bop2(structure, rates2);
  std::vector<real_t> hxb2(nrows * static_cast<std::size_t>(k2),
                           1.0 / static_cast<real_t>(nrows));
  std::vector<real_t> hyb2(nrows * static_cast<std::size_t>(k2));
  std::vector<real_t> hyb2_ref(nrows * static_cast<std::size_t>(k2));
  util::simd::force_isa(util::simd::Isa::kScalar);
  bop2.multiply(hxb2, hyb2_ref);
  const real_t t_scalar2 = best_of(5, [&] { bop2.multiply(hxb2, hyb2); });
  util::simd::reset_forced_isa();
  const real_t t_simd2 = best_of(5, [&] { bop2.multiply(hxb2, hyb2); });
  simd_bitwise = simd_bitwise && bitwise_equal(hyb2, hyb2_ref);
  for (const util::simd::Isa isa : util::simd::compiled_isas()) {
    if (!util::simd::force_isa(isa)) continue;
    bop2.multiply(hxb2, hyb2);
    simd_bitwise = simd_bitwise && bitwise_equal(hyb2, hyb2_ref);
  }
  util::simd::reset_forced_isa();
  const real_t simd_speedup = t_simd2 > 0 ? t_scalar2 / t_simd2 : 0.0;
  // The >= 1.3x gate only binds where vector lanes exist to win with:
  // a scalar-only build (or a forced-scalar run) and narrow batches are
  // advisory by construction.
  const bool simd_gate_applies =
      util::simd::isa_width(simd_active) > 1 && k2 >= 8;

  // Hardware-counter crosscheck of the effective-bytes argument: count LLC
  // misses over repeated sweeps so the measured DRAM bytes per sweep sit
  // next to the modeled single/batched numbers (zero when the container
  // blocks perf_event_open; see the perf_available gauge).
  obs::PerfGroup perf_group;
  const bool perf_ok = perf_group.available();
  std::uint64_t measured_single_bytes = 0;
  std::uint64_t measured_batched_bytes = 0;
  if (perf_ok) {
    constexpr int kPerfReps = 5;
    perf_group.start();
    for (int rep = 0; rep < kPerfReps; ++rep) op0.multiply(hx, hy);
    measured_single_bytes = perf_group.stop().dram_bytes() / kPerfReps;
    perf_group.start();
    for (int rep = 0; rep < kPerfReps; ++rep) bop.multiply(hxb, hyb);
    measured_batched_bytes = perf_group.stop().dram_bytes() / kPerfReps;
  }

  const real_t lane_speedup =
      t_batched > 0 ? static_cast<real_t>(k) * t_single / t_batched : 0.0;
  const real_t sweep_gbps =
      t_single > 0 ? static_cast<real_t>(single_sweep_bytes) / t_single / 1e9
                   : 0.0;

  // Stream-triad bandwidth: what the machine gives a pure streaming loop.
  // A sweep that is genuinely DRAM-limited sustains its effective bytes AT
  // stream bandwidth — it cannot exceed it. Effective bandwidth well BELOW
  // stream means the host is compute-bound; well ABOVE means the bytes
  // were cache-fed, not streamed. In either of those regimes amortizing
  // traffic cannot speed the solve up end to end, so the wall-clock gate
  // is advisory there.
  real_t stream_gbps = 0.0;
  {
    const std::size_t sn = 4u << 20;  // 3 x 32 MB, far beyond the LLC
    std::vector<real_t> sa(sn, 1.0);
    std::vector<real_t> sb(sn, 2.0);
    std::vector<real_t> sc(sn, 3.0);
    const real_t t_stream = best_of(3, [&] {
      real_t* __restrict pa = sa.data();
      const real_t* __restrict pb = sb.data();
      const real_t* __restrict pc = sc.data();
      for (std::size_t i = 0; i < sn; ++i) pa[i] = pb[i] + 0.5 * pc[i];
    });
    stream_gbps = t_stream > 0 ? static_cast<real_t>(3 * sn * sizeof(real_t)) /
                                     t_stream / 1e9
                               : 0.0;
  }

  // Working set of ONE single-RHS solve: x, y, diag plus the propensity
  // cache — below the LLC the baseline sweeps run from cache and the batch
  // has no DRAM traffic to amortize.
  const std::uint64_t working_set =
      static_cast<std::uint64_t>(box) * sizeof(real_t) * (3 + nr);
  constexpr std::uint64_t kMemoryBoundBytes = 8u << 20;
  const bool memory_bound = working_set >= kMemoryBoundBytes &&
                            sweep_gbps >= 0.6 * stream_gbps &&
                            sweep_gbps <= 1.2 * stream_gbps;
  const char* regime = memory_bound ? "bandwidth-bound"
                       : working_set < kMemoryBoundBytes ||
                               sweep_gbps > 1.2 * stream_gbps
                           ? "cache-fed"
                           : "compute-bound";

  // ---- modeled lane: gpusim batched kernel vs K single launches ----------
  const auto& tbl = anchor.table();
  const auto n = static_cast<std::size_t>(tbl.box_rows());
  std::vector<real_t> xs(n, 1.0 / static_cast<real_t>(n));
  std::vector<real_t> ys(n);
  const auto single = gpusim::simulate_spmv_stencil(dev, tbl, xs, ys);
  std::vector<real_t> xb(n * static_cast<std::size_t>(k),
                         1.0 / static_cast<real_t>(n));
  std::vector<real_t> yb(n * static_cast<std::size_t>(k));
  const auto batched =
      gpusim::simulate_spmv_stencil_batched(dev, tbl, rates, xb, yb);
  // The matrix-free kernel has no value array to amortize, so DRAM bytes
  // scale with K in both pipelines; the batched win is COMPUTE — state
  // decode, window checks and combinatorial factors once per (row,
  // reaction) instead of once per point. Gate on modeled per-point time.
  const real_t model_ratio =
      single.seconds > 0
          ? batched.seconds / (static_cast<real_t>(k) * single.seconds)
          : 0.0;
  constexpr real_t kModelGate = 0.9;

  // ---- report ------------------------------------------------------------
  TextTable table({"point", "synth factor", "base iters", "base s",
                   "ens iters", "ens s/pt", "gmres"});
  for (int j = 0; j < k; ++j) {
    const auto& ep = ens.points[static_cast<std::size_t>(j)];
    table.add_row(
        {TextTable::count(j),
         TextTable::num(sweep.factors[static_cast<std::size_t>(j)], 3),
         TextTable::count(
             static_cast<long long>(base_iters[static_cast<std::size_t>(j)])),
         TextTable::num(base_seconds[static_cast<std::size_t>(j)], 3),
         TextTable::count(static_cast<long long>(ep.jacobi.iterations)),
         TextTable::num(ep.jacobi.seconds, 3), ep.gmres_used ? "yes" : "no"});
  }
  std::cout << table.render() << "\n";

  std::printf(
      "box rows %lld, %d points, batch width %d\n"
      "baseline (K independent):   %.3f s total, %.3f s/point\n"
      "ensemble (batched):         %.3f s total, %.3f s/point amortized "
      "(setup %.3f s)\n"
      "ensemble (sequential ref):  %.3f s total\n"
      "host sweep:  single %.3f ms (%.1f GB/s effective), batched %.3f ms "
      "-> per-lane speedup %.2fx; stream triad %.1f GB/s\n"
      "simd:  active %s, K=%d sweep scalar %.3f ms vs dispatched %.3f ms "
      "-> explicit-SIMD speedup %.2fx (K=%d scalar %.3f ms)\n"
      "effective bytes/sweep:  K x single %.2f MB vs batched %.2f MB "
      "(amortization %.2fx)\n"
      "measured bytes/sweep (hw counters %s):  single %.2f MB, batched "
      "%.2f MB\n"
      "modeled sweep (sim %s):  batched %.0f us vs K x single %.0f us "
      "(per-point ratio %.3f; DRAM %.2f vs %.2f MB)\n\n",
      static_cast<long long>(box), k, eopt.batch_width, baseline_total,
      baseline_total / k, ens.seconds_total, ens.seconds_total / k,
      ens.seconds_setup, seq.seconds_total, t_single * 1e3, sweep_gbps,
      t_batched * 1e3, lane_speedup, stream_gbps,
      util::simd::to_string(simd_active), k2, t_scalar2 * 1e3, t_simd2 * 1e3,
      simd_speedup, k, t_scalar * 1e3,
      static_cast<real_t>(single_sweep_bytes) * k / 1e6,
      static_cast<real_t>(batched_sweep_bytes) / 1e6, amortization,
      perf_ok ? "on" : "unavailable",
      static_cast<real_t>(measured_single_bytes) / 1e6,
      static_cast<real_t>(measured_batched_bytes) / 1e6,
      dev.name.c_str(), batched.seconds * 1e6, single.seconds * k * 1e6,
      model_ratio, static_cast<real_t>(batched.traffic.dram_bytes) / 1e6,
      static_cast<real_t>(single.traffic.dram_bytes) * k / 1e6);

  obs::gauge("ensemble_batch.points", static_cast<real_t>(k));
  // Wall-clock-derived and hardware-counted values are volatile: they stay
  // out of the deterministic fingerprint and the exact-compare section of
  // the bench ledger (cme_bench_diff holds them to a ratio band instead).
  obs::gauge("ensemble_batch.baseline_seconds", baseline_total,
             /*is_volatile=*/true);
  obs::gauge("ensemble_batch.batched_seconds", ens.seconds_total,
             /*is_volatile=*/true);
  obs::gauge("ensemble_batch.sequential_seconds", seq.seconds_total,
             /*is_volatile=*/true);
  obs::gauge("ensemble_batch.speedup", speedup, /*is_volatile=*/true);
  obs::gauge("ensemble_batch.accuracy", accuracy);
  obs::gauge("ensemble_batch.sweep_amortization", amortization);
  obs::gauge("ensemble_batch.sweep_lane_speedup", lane_speedup,
             /*is_volatile=*/true);
  obs::gauge("ensemble_batch.sweep_gbps", sweep_gbps, /*is_volatile=*/true);
  obs::gauge("ensemble_batch.stream_gbps", stream_gbps, /*is_volatile=*/true);
  obs::gauge("ensemble_batch.modeled_time_ratio", model_ratio);
  obs::gauge("ensemble_batch.bitwise", bitwise_ok ? 1.0 : 0.0);
  // Deterministic AND machine-portable: 1.0 under every dispatch choice by
  // construction (the ISA itself goes to provenance, not the ledger).
  obs::gauge("ensemble_batch.simd_bitwise", simd_bitwise ? 1.0 : 0.0);
  obs::gauge("ensemble_batch.simd_speedup", simd_speedup,
             /*is_volatile=*/true);
  obs::gauge("ensemble_batch.modeled_single_sweep_bytes",
             static_cast<real_t>(single_sweep_bytes));
  obs::gauge("ensemble_batch.modeled_batched_sweep_bytes",
             static_cast<real_t>(batched_sweep_bytes));
  obs::gauge("ensemble_batch.perf_available", perf_ok ? 1.0 : 0.0,
             /*is_volatile=*/true);
  if (perf_ok) {
    obs::gauge("ensemble_batch.measured_single_sweep_bytes",
               static_cast<real_t>(measured_single_bytes),
               /*is_volatile=*/true);
    obs::gauge("ensemble_batch.measured_batched_sweep_bytes",
               static_cast<real_t>(measured_batched_bytes),
               /*is_volatile=*/true);
  }

  constexpr real_t kLaneSpeedupGate = 1.25;
  constexpr real_t kSimdSpeedupGate = 1.3;
  const bool effective_ok =
      amortization >= speedup_gate && lane_speedup >= kLaneSpeedupGate;
  const bool wall_ok = !memory_bound || speedup >= speedup_gate;
  const bool model_ok = model_ratio <= kModelGate;
  const bool simd_ok =
      simd_bitwise && (!simd_gate_applies || simd_speedup >= kSimdSpeedupGate);
  std::printf(
      "gates (working set %.1f MB/point, sweep at %.0f%% of stream bw -> %s "
      "regime):\n"
      "  batched bitwise == sequential          %s\n"
      "  effective speedup %.2fx >= %.1fx and\n"
      "    measured lane speedup %.2fx >= %.2fx   %s\n"
      "  modeled time ratio %.3f <= %.2f         %s\n"
      "  wall-clock speedup %.2fx >= %.1fx        %s\n"
      "  simd bitwise across ISAs               %s\n"
      "  simd sweep speedup %.2fx >= %.2fx        %s\n",
      static_cast<real_t>(working_set) / 1e6,
      stream_gbps > 0 ? 100.0 * sweep_gbps / stream_gbps : 0.0, regime,
      bitwise_ok ? "PASS" : "FAIL", amortization, speedup_gate, lane_speedup,
      kLaneSpeedupGate, effective_ok ? "PASS" : "FAIL", model_ratio,
      kModelGate, model_ok ? "PASS" : "FAIL", speedup, speedup_gate,
      !memory_bound             ? "advisory (sweep not DRAM-limited here)"
      : speedup >= speedup_gate ? "PASS"
                                : "FAIL",
      simd_bitwise ? "PASS" : "FAIL",
      simd_speedup, kSimdSpeedupGate,
      !simd_gate_applies ? "advisory (scalar dispatch or K < 8)"
      : simd_speedup >= kSimdSpeedupGate ? "PASS"
                                         : "FAIL");

  const bool ok = bitwise_ok && effective_ok && wall_ok && model_ok && simd_ok;
  std::cout << (ok ? "ensemble_batch: PASS" : "ensemble_batch: FAIL") << "\n";
  obs::flush_outputs();
  return ok ? 0 : 1;
}
