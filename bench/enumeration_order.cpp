// Ablation of the Sec. V claim that DFS enumeration "intrinsically arranges
// densely populated subregions around the diagonal band": the same networks
// are enumerated DFS, BFS and randomized, and the resulting {-1,0,+1} band
// density plus ELL+DIA SpMV performance are compared. Only the DFS order
// makes the DIA band worth storing.
#include <iostream>

#include "bench_common.hpp"
#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "gpusim/kernels.hpp"
#include "obs/metrics.hpp"
#include "sparse/format_stats.hpp"
#include "sparse/hybrid.hpp"
#include "util/table.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  const auto scale = bench::scale_name(argc, argv);
  const auto dev = gpusim::DeviceSpec::gtx580();
  bench::report_context("enumeration_order", scale, &dev);
  std::cout << "Sec. V ablation: state enumeration order vs diagonal band "
               "(simulated " << dev.name << ", scale=" << scale << ")\n\n";

  const struct {
    const char* name;
    const char* key;  ///< ledger metric segment
    core::VisitOrder order;
  } kOrders[] = {{"DFS (paper)", "dfs", core::VisitOrder::kDfs},
                 {"BFS", "bfs", core::VisitOrder::kBfs},
                 {"random", "random", core::VisitOrder::kRandom}};

  TextTable table({"network", "order", "d{-1,0,+1}", "ELL+DIA GFLOPS"});
  for (auto& model : core::models::paper_suite(core::models::parse_scale(scale))) {
    for (const auto& o : kOrders) {
      const core::StateSpace space(model.network, model.initial, 20'000'000,
                                   o.order);
      const auto a = core::rate_matrix(space);
      const auto f = sparse::fingerprint(a);

      const auto hybrid =
          sparse::ell_dia_from_csr(a, sparse::select_band_offsets(a));
      const auto x = bench::uniform_vector(a.ncols);
      std::vector<real_t> y(static_cast<std::size_t>(a.nrows));
      const auto g = gpusim::simulate_spmv(dev, hybrid, x, y);

      table.add_row({model.name, o.name, TextTable::num(f.dband, 3),
                     TextTable::num(g.gflops)});

      // Fixed-seed enumeration + simulated kernel — deterministic.
      const std::string key =
          "enum_order." + model.name + "." + o.key;
      obs::gauge(key + ".dband", f.dband);
      obs::gauge(key + ".gflops", g.gflops);
    }
  }
  std::cout << table.render();
  std::cout << "\nDFS chains reversible reactions into adjacent indices "
               "(band density ~1); BFS and random\norderings scatter them, "
               "so the DIA band degenerates to the main diagonal and x "
               "locality\ndegrades — the enumeration order is part of the "
               "format design.\n";
  obs::flush_outputs();
  return 0;
}
