// Regenerates Figure 5: sliced ELL (slice = block = 256) vs warp-grained
// sliced ELL across application domains. The University of Florida
// collection is replaced by synthetic generators with matching
// row-length-distribution structure (see DESIGN.md).
// Paper reference: warped wins everywhere, avg +12.62%, max +48.09%
// (quantum chemistry).
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/kernels.hpp"
#include "obs/metrics.hpp"
#include "sparse/sliced_ell.hpp"
#include "synth/generators.hpp"
#include "util/table.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  index_t scale = 60'000;
  if (const char* env = std::getenv("CMESOLVE_FIG5_SCALE")) scale = std::atoi(env);
  if (argc > 1) scale = std::atoi(argv[1]);
  const auto dev = gpusim::DeviceSpec::gtx580();
  bench::report_context("figure5_domains", std::to_string(scale), &dev);
  std::cout << "Figure 5: sliced ELL vs warp-grained sliced ELL by domain "
               "(simulated " << dev.name << ", ~" << scale << " rows)\n\n";

  TextTable table({"domain", "n", "nnz/row", "Sliced", "Warped",
                   "improvement"});
  real_t sum_s = 0;
  real_t sum_w = 0;
  int rows = 0;

  for (auto& d : synth::figure5_suite(scale)) {
    std::vector<real_t> x(static_cast<std::size_t>(d.matrix.ncols),
                          1.0 / static_cast<real_t>(d.matrix.ncols));
    std::vector<real_t> y(static_cast<std::size_t>(d.matrix.nrows));

    const auto g_sliced = gpusim::simulate_spmv(
        dev, sparse::sliced_ell_from_csr(d.matrix, 256), x, y);
    const auto g_warped =
        gpusim::simulate_spmv(dev, sparse::warped_ell_from_csr(d.matrix), x, y);

    table.add_row(
        {d.domain, TextTable::count(d.matrix.nrows),
         TextTable::num(static_cast<double>(d.matrix.nnz()) / d.matrix.nrows, 1),
         TextTable::num(g_sliced.gflops), TextTable::num(g_warped.gflops),
         TextTable::num((g_warped.gflops / g_sliced.gflops - 1.0) * 100.0, 1) +
             "%"});
    sum_s += g_sliced.gflops;
    sum_w += g_warped.gflops;
    ++rows;

    // Synthetic generators are fixed-seed, kernels simulated — deterministic.
    obs::gauge("fig5." + d.domain + ".sliced_gflops", g_sliced.gflops);
    obs::gauge("fig5." + d.domain + ".warped_gflops", g_warped.gflops);
  }
  obs::gauge("fig5.avg_improvement_pct", (sum_w / sum_s - 1.0) * 100.0);
  table.add_row({"Average", "", "", TextTable::num(sum_s / rows),
                 TextTable::num(sum_w / rows),
                 TextTable::num((sum_w / sum_s - 1.0) * 100.0, 1) + "%"});
  std::cout << table.render();
  std::cout << "\nPaper reference (Fig. 5): warped >= sliced on every domain, "
               "avg +12.62%,\nmax +48.09% on quantum chemistry (highest "
               "within-warp row-length variability).\n";
  obs::flush_outputs();
  return 0;
}
