// Regenerates the Sec. VII-C memory-footprint comparison: device bytes of
// ELL vs original sliced ELL vs warp-grained sliced ELL vs CSR vs COO.
// Paper reference (averages over the suite): ELL 440.98 MB, warped ELL
// 322.45 MB, CSR 323.71 MB.
#include <iostream>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "sparse/format_stats.hpp"
#include "util/table.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  const auto scale = bench::scale_name(argc, argv);
  bench::report_context("footprint", scale);
  std::cout << "Sec. VII-C: device memory footprint per format (scale="
            << scale << ")\n\n";

  const auto mb = [](std::size_t b) {
    return TextTable::num(static_cast<double>(b) / (1024.0 * 1024.0), 2);
  };

  TextTable table({"network", "ELL[MB]", "Sliced[MB]", "Warped[MB]", "CSR[MB]",
                   "COO[MB]", "warped/ELL"});
  double sums[5] = {0, 0, 0, 0, 0};
  int rows = 0;
  for (auto& m : bench::suite_matrices(scale)) {
    const auto fp = sparse::footprints(m.a);
    table.add_row({m.name, mb(fp.ell), mb(fp.sliced_ell), mb(fp.warped_ell),
                   mb(fp.csr), mb(fp.coo),
                   TextTable::num(static_cast<double>(fp.warped_ell) /
                                      static_cast<double>(fp.ell),
                                  2)});
    sums[0] += static_cast<double>(fp.ell);
    sums[1] += static_cast<double>(fp.sliced_ell);
    sums[2] += static_cast<double>(fp.warped_ell);
    sums[3] += static_cast<double>(fp.csr);
    sums[4] += static_cast<double>(fp.coo);
    ++rows;

    // Format footprints are pure layout arithmetic — deterministic.
    const std::string key = "footprint." + m.name;
    obs::gauge(key + ".ell_bytes", static_cast<double>(fp.ell));
    obs::gauge(key + ".sliced_ell_bytes", static_cast<double>(fp.sliced_ell));
    obs::gauge(key + ".warped_ell_bytes", static_cast<double>(fp.warped_ell));
    obs::gauge(key + ".csr_bytes", static_cast<double>(fp.csr));
    obs::gauge(key + ".coo_bytes", static_cast<double>(fp.coo));
  }
  obs::gauge("footprint.avg_warped_vs_ell", sums[2] / sums[0]);
  table.add_row({"Average", mb(static_cast<std::size_t>(sums[0] / rows)),
                 mb(static_cast<std::size_t>(sums[1] / rows)),
                 mb(static_cast<std::size_t>(sums[2] / rows)),
                 mb(static_cast<std::size_t>(sums[3] / rows)),
                 mb(static_cast<std::size_t>(sums[4] / rows)),
                 TextTable::num(sums[2] / sums[0], 2)});
  std::cout << table.render();
  std::cout << "\nPaper reference: warped ELL 322.45 MB < CSR 323.71 MB << "
               "ELL 440.98 MB\n(warped recovers nearly all of ELL's padding "
               "waste while keeping the ELL layout).\n";
  obs::flush_outputs();
  return 0;
}
