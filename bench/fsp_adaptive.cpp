// Adaptive FSP vs fixed-buffer reference (no paper table: this is the
// adaptive-projection extension, see DESIGN.md "Adaptive FSP").
//
// For the genetic toggle switch and the enzymatic futile cycle, solves the
// steady state twice: once on the full fixed-buffer enumeration (the paper's
// pipeline) and once with the adaptive projection loop (src/fsp/). Reports
// the per-round trajectory, the L1 distance between the two landscapes, the
// final state counts, and a Table-III-style simulated format sweep over the
// final adaptive matrix. The bench exits non-zero when the acceptance
// criteria fail (L1 <= 1e-6, bound <= tol, strictly fewer states), so the CI
// smoke run doubles as a regression gate.
#include <iostream>

#include "bench_common.hpp"
#include "fsp/fsp.hpp"
#include "gpusim/format_sweep.hpp"
#include "obs/metrics.hpp"
#include <algorithm>

#include "solver/gmres.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"
#include "util/table.hpp"

using namespace cmesolve;

namespace {

struct Case {
  std::string name;
  core::ReactionNetwork network;
  core::State initial;
};

std::vector<Case> cases(core::models::SuiteScale scale) {
  core::models::ToggleSwitchParams tp;
  core::models::FutileCycleParams fp;
  switch (scale) {
    case core::models::SuiteScale::kTiny:
      tp.cap_a = tp.cap_b = 30;
      fp.substrate_total = 60;
      fp.enzyme1_total = fp.enzyme2_total = 2;
      break;
    case core::models::SuiteScale::kSmall:
      tp.cap_a = tp.cap_b = 60;
      fp.substrate_total = 120;
      fp.enzyme1_total = fp.enzyme2_total = 3;
      break;
    case core::models::SuiteScale::kMedium:
      tp.cap_a = tp.cap_b = 100;
      fp.substrate_total = 240;
      fp.enzyme1_total = fp.enzyme2_total = 4;
      break;
  }
  std::vector<Case> out;
  out.push_back({"toggle-switch", core::models::toggle_switch(tp),
                 core::models::toggle_switch_initial(tp)});
  out.push_back({"futile-cycle", core::models::futile_cycle(fp),
                 core::models::futile_cycle_initial(fp)});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = bench::scale_name(argc, argv);
  const auto dev = gpusim::DeviceSpec::gtx580();
  bench::report_context("fsp_adaptive", scale, &dev);

  constexpr real_t kTol = 1e-9;      // requested outflow bound
  constexpr real_t kL1Gate = 1e-6;   // acceptance: adaptive vs reference

  std::cout << "Adaptive FSP vs fixed-buffer reference (tol=" << kTol
            << ", scale=" << scale << ", sim device " << dev.name << ")\n\n";

  bool ok = true;
  for (auto& c : cases(core::models::parse_scale(scale))) {
    // Fixed-buffer reference: the paper's pipeline on the full enumeration.
    const core::StateSpace ref(c.network, c.initial, 20'000'000);
    const auto a_ref = core::rate_matrix(ref);
    // Both sides use GMRES on the nonsingular-ized system: the
    // warm-started Jacobi iteration is a power method, and its mixing is
    // too slow on these stiff quasi-1D chains to reach the 1e-6 L1 gate.
    solver::GmresOptions gopt;
    gopt.restart = 80;
    gopt.max_iterations = 30'000;
    gopt.tol = 1e-12;
    std::vector<real_t> p_ref(static_cast<std::size_t>(ref.size()));
    solver::fill_uniform(p_ref);
    const auto ref_apply = solver::steady_state_operator(a_ref, 0);
    const auto ref_b = solver::steady_state_rhs(a_ref.nrows, 0);
    (void)solver::gmres_solve(ref_apply, a_ref.nrows, ref_b, p_ref, gopt);
    for (real_t& v : p_ref) v = std::max(v, 0.0);
    solver::normalize_l1(p_ref);

    // Adaptive projection.
    fsp::FspOptions opt;
    opt.tol = kTol;
    opt.seed_states = 256;
    opt.expansion_quantile = 0.999;
    opt.min_growth = 0.25;
    opt.prune_quantile = 1e-13;
    opt.min_states_to_prune = 512;
    opt.solver = fsp::InnerSolver::kGmres;
    opt.gmres = gopt;
    opt.device = &dev;
    const auto res = fsp::solve_adaptive(c.network, c.initial, opt);

    TextTable table({"round", "states", "boundary", "added", "pruned",
                     "outflow bound", "iters", "sim sweep [GFLOPS]"});
    for (const auto& r : res.rounds) {
      char bound[32];
      std::snprintf(bound, sizeof(bound), "%.3e", r.outflow_bound);
      table.add_row({TextTable::count(r.round), TextTable::count(r.states),
                     TextTable::count(r.boundary), TextTable::count(r.added),
                     TextTable::count(r.pruned), bound,
                     TextTable::count(static_cast<long long>(
                         r.solver_iterations)),
                     TextTable::num(r.sim_sweep_gflops)});
    }
    std::cout << c.name << " (reference: " << ref.size() << " states)\n"
              << table.render();

    const real_t l1 = fsp::l1_distance_to_reference(res, ref, p_ref);
    const bool fewer = res.space.size() < ref.size();
    const bool bound_ok = res.converged && res.outflow_bound <= kTol;
    const bool l1_ok = l1 <= kL1Gate;
    std::printf(
        "  states %d/%d (%.1f%%)  L1 vs reference %.3e  bound %.3e  %s\n",
        res.space.size(), ref.size(),
        100.0 * res.space.size() / ref.size(), l1, res.outflow_bound,
        (fewer && bound_ok && l1_ok) ? "PASS" : "FAIL");
    ok = ok && fewer && bound_ok && l1_ok;

    // Table-III economics on the final adaptive matrix.
    core::ProjectedRateMatrix m(c.network);
    m.extend(res.space);
    const auto fin = m.assemble(res.space, res.space.find(c.initial));
    std::vector<real_t> y(res.p.size());
    const auto sweep = gpusim::format_sweep(dev, fin.a, res.p, y);
    std::cout << "  format sweep on final matrix (" << fin.a.nrows
              << " rows, " << fin.a.nnz() << " nnz): best "
              << sweep.best_format << " at "
              << TextTable::num(sweep.best_gflops) << " GFLOPS\n\n";

    const std::string key = "fsp." + c.name;
    obs::gauge(key + ".states.adaptive", static_cast<real_t>(res.space.size()));
    obs::gauge(key + ".states.reference", static_cast<real_t>(ref.size()));
    obs::gauge(key + ".l1_vs_reference", l1);
    obs::gauge(key + ".outflow_bound", res.outflow_bound);
    obs::gauge(key + ".rounds", static_cast<real_t>(res.rounds.size()));
    obs::gauge(key + ".converged", res.converged ? 1.0 : 0.0);
    obs::gauge(key + ".solver_iterations",
               static_cast<real_t>(res.total_solver_iterations));
    obs::gauge(key + ".sweep.best_gflops", sweep.best_gflops);
  }

  std::cout << (ok ? "fsp_adaptive: PASS" : "fsp_adaptive: FAIL") << "\n";
  obs::flush_outputs();  // writes the run report when CMESOLVE_REPORT is set
  return ok ? 0 : 1;
}
