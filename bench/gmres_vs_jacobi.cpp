// Reproduces the Sec. IV methodology note: Krylov methods (GMRES) stall on
// the singular, ill-conditioned CME systems while the normalized Jacobi
// iteration converges. GMRES runs on the standard nonsingular-ized
// formulation (one balance row replaced by sum(x) = 1).
#include <iostream>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "solver/gmres.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"
#include "util/table.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  const std::string scale = bench::scale_name(argc, argv);
  bench::report_context("gmres_vs_jacobi", scale);
  std::cout << "Sec. IV: GMRES(30) vs Jacobi on CME steady-state systems "
               "(scale=" << scale << ")\n\n";

  TextTable table({"network", "GMRES matvecs", "GMRES rel.res", "GMRES ok",
                   "Jacobi iters", "Jacobi residual", "Jacobi stop"});

  for (auto& m : bench::suite_matrices(scale)) {
    const index_t n = m.a.nrows;

    solver::GmresOptions gopt;
    gopt.restart = 30;
    gopt.max_iterations = 1200;
    gopt.tol = 1e-8;
    const auto op = solver::steady_state_operator(m.a, n - 1);
    const auto b = solver::steady_state_rhs(n, n - 1);
    std::vector<real_t> xg(static_cast<std::size_t>(n), 0.0);
    const auto g = solver::gmres_solve(op, n, b, xg, gopt);

    solver::JacobiOptions jopt;
    jopt.eps = 1e-8;
    std::vector<real_t> xj(static_cast<std::size_t>(n));
    solver::fill_uniform(xj);
    const solver::CsrDiaOperator jop(m.a);
    const auto j = solver::jacobi_solve(jop, m.a.inf_norm(), xj, jopt);

    char gres[32];
    char jres[32];
    std::snprintf(gres, sizeof(gres), "%.3e", g.relative_residual);
    std::snprintf(jres, sizeof(jres), "%.3e", j.residual);
    table.add_row({m.name, TextTable::count(static_cast<long long>(g.iterations)),
                   gres, g.converged ? "converged" : "NO",
                   TextTable::count(static_cast<long long>(j.iterations)), jres,
                   to_string(j.reason)});

    // Iteration counts and residuals are deterministic solver outputs.
    const std::string key = "gvj." + m.name;
    obs::gauge(key + ".gmres_matvecs", static_cast<double>(g.iterations));
    obs::gauge(key + ".gmres_relres", g.relative_residual);
    obs::gauge(key + ".gmres_converged", g.converged ? 1.0 : 0.0);
    obs::gauge(key + ".jacobi_iters", static_cast<double>(j.iterations));
    obs::gauge(key + ".jacobi_residual", j.residual);
  }
  std::cout << table.render();
  std::cout << "\nPaper reference (Sec. IV): \"we performed some preliminary "
               "studies on using GMRES ... but we\nobserved no convergence. "
               "Hence, we primarily focused on the Jacobi iteration.\"\n";
  obs::flush_outputs();
  return 0;
}
