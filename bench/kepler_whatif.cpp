// The Sec. VII-D what-if: how would the pipeline behave on a Kepler-class
// device? The paper argues the DP-peak jump (197 GFLOPS -> 1.31 TFLOPS) is
// irrelevant for bandwidth-bound sparse kernels and the gains come from the
// memory system. The simulator makes the argument quantitative.
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/kernels.hpp"
#include "obs/metrics.hpp"
#include "sparse/sliced_ell.hpp"
#include "util/table.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  const auto scale = bench::scale_name(argc, argv);
  const auto fermi = gpusim::DeviceSpec::gtx580();
  const auto kepler = gpusim::DeviceSpec::kepler_k20();
  bench::report_context("kepler_whatif", scale, &fermi);

  std::cout << "Sec. VII-D what-if: warp-grained ELL SpMV on " << fermi.name
            << " vs " << kepler.name << " (scale=" << scale << ")\n\n";

  TextTable table({"network", "Fermi [GFLOPS]", "Kepler [GFLOPS]", "ratio",
                   "BW ratio"});
  real_t sum_f = 0;
  real_t sum_k = 0;
  int rows = 0;
  for (auto& m : bench::suite_matrices(scale)) {
    const auto x = bench::uniform_vector(m.a.ncols);
    std::vector<real_t> y(static_cast<std::size_t>(m.a.nrows));
    const auto fmt = sparse::warped_ell_from_csr(m.a);
    const auto gf = gpusim::simulate_spmv(fermi, fmt, x, y);
    const auto gk = gpusim::simulate_spmv(kepler, fmt, x, y);
    table.add_row({m.name, TextTable::num(gf.gflops),
                   TextTable::num(gk.gflops),
                   TextTable::num(gk.gflops / gf.gflops, 2),
                   TextTable::num(kepler.dram_bandwidth / fermi.dram_bandwidth, 2)});
    sum_f += gf.gflops;
    sum_k += gk.gflops;
    ++rows;

    // Simulated on both devices — deterministic ledger metrics.
    obs::gauge("kepler." + m.name + ".fermi_gflops", gf.gflops);
    obs::gauge("kepler." + m.name + ".kepler_gflops", gk.gflops);
  }
  obs::gauge("kepler.avg_ratio", sum_k / sum_f);
  obs::gauge("kepler.bw_ratio", kepler.dram_bandwidth / fermi.dram_bandwidth);
  table.add_row({"Average", TextTable::num(sum_f / rows),
                 TextTable::num(sum_k / rows),
                 TextTable::num(sum_k / sum_f, 2), ""});
  std::cout << table.render();
  std::cout << "\nThe speedup tracks the bandwidth ratio ("
            << TextTable::num(kepler.dram_bandwidth / fermi.dram_bandwidth, 2)
            << "x), not the 6.6x double-precision peak ratio — the paper's "
               "point that sparse\nlinear algebra gains come from the memory "
               "system, not the ALUs.\n";
  obs::flush_outputs();
  return 0;
}
