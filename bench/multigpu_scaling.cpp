// The Sec. VIII scale-out direction, quantified: strong scaling of one
// distributed Jacobi sweep across 1..8 simulated GTX580s connected by a
// PCIe-class interconnect, plus the per-model halo volumes that decide
// whether the communication can hide behind the compute.
#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/multi_gpu.hpp"
#include "obs/metrics.hpp"
#include "util/table.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  const auto scale = bench::scale_name(argc, argv);
  const auto dev = gpusim::DeviceSpec::gtx580();
  bench::report_context("multigpu_scaling", scale, &dev);
  std::cout << "Sec. VIII scale-out: distributed Jacobi sweep across N x "
            << dev.name << " (scale=" << scale << ")\n\n";

  auto suite = bench::suite_matrices(scale);

  // (a) Halo volume under naive 1-D partitioning, per model, at 4 devices:
  // chain models communicate a sliver, operator-flip models a large share.
  std::cout << "(a) halo fraction at 4 devices\n\n";
  {
    TextTable table({"network", "n", "max halo", "halo / partition"});
    for (auto& m : suite) {
      const auto x = bench::uniform_vector(m.a.ncols);
      std::vector<real_t> out(static_cast<std::size_t>(m.a.nrows));
      gpusim::MultiGpuOptions opt;
      opt.num_gpus = 4;
      const auto r =
          gpusim::simulate_multi_gpu_jacobi_sweep(dev, m.a, x, out, opt);
      std::size_t max_halo = 0;
      for (const auto& part : r.partitions) {
        max_halo = std::max(max_halo, part.halo_in);
      }
      table.add_row({m.name, TextTable::count(m.a.nrows),
                     TextTable::count(static_cast<long long>(max_halo)),
                     TextTable::num(static_cast<double>(max_halo) /
                                        (static_cast<double>(m.a.nrows) / 4.0),
                                    2)});
      // Simulated partitioning — deterministic.
      obs::gauge("multigpu.halo4." + m.name + ".fraction",
                 static_cast<double>(max_halo) /
                     (static_cast<double>(m.a.nrows) / 4.0));
    }
    std::cout << table.render();
  }

  // (b) Strong scaling on the friendliest (chain-structured) model.
  const auto it = std::find_if(suite.begin(), suite.end(), [](const auto& m) {
    return m.name == "schnakenberg";
  });
  const auto& m = it != suite.end() ? *it : suite.front();
  const auto x = bench::uniform_vector(m.a.ncols);
  std::vector<real_t> out(static_cast<std::size_t>(m.a.nrows));

  std::cout << "\n(b) strong scaling, " << m.name
            << ": n=" << TextTable::count(m.a.nrows)
            << ", nnz=" << TextTable::count(static_cast<long long>(m.a.nnz()))
            << "\n\n";

  TextTable table({"GPUs", "compute [us]", "comm [us]", "total [us]",
                   "max halo", "speedup", "efficiency"});
  for (int g : {1, 2, 3, 4, 6, 8}) {
    gpusim::MultiGpuOptions opt;
    opt.num_gpus = g;
    const auto r =
        gpusim::simulate_multi_gpu_jacobi_sweep(dev, m.a, x, out, opt);
    std::size_t max_halo = 0;
    for (const auto& part : r.partitions) {
      max_halo = std::max(max_halo, part.halo_in);
    }
    table.add_row({std::to_string(g), TextTable::num(r.compute_seconds * 1e6, 1),
                   TextTable::num(r.comm_seconds * 1e6, 1),
                   TextTable::num(r.seconds_per_iteration * 1e6, 1),
                   TextTable::count(static_cast<long long>(max_halo)),
                   TextTable::num(r.speedup_vs_single, 2) + "x",
                   TextTable::num(r.speedup_vs_single / g * 100.0, 0) + "%"});
    const std::string key = "multigpu.scaling." + std::to_string(g);
    obs::gauge(key + ".speedup", r.speedup_vs_single);
    obs::gauge(key + ".compute_us", r.compute_seconds * 1e6);
    obs::gauge(key + ".comm_us", r.comm_seconds * 1e6);
  }
  std::cout << table.render();
  std::cout << "\nChain-structured state spaces scale until the per-device "
               "kernel hits the launch-overhead\nfloor; operator-flip models "
               "(toggle, phage) need 2-D partitioning or operator-major\n"
               "ordering before the halo stops dominating — the quantified "
               "caveat of Sec. VIII's\nGPU-cluster direction.\n";
  obs::flush_outputs();
  return 0;
}
