// Asserts the observability layer's disabled-mode contract: with tracing,
// metrics, the flight recorder and perf counters off (the default),
// instrumentation macros must cost no more than a relaxed atomic load +
// predictable branch, and must record nothing.
//
// Three checks, all hard failures (exit 1):
//   1. Nothing is emitted: after running instrumented work with telemetry
//      disabled, the trace buffer, metric registry and flight ring are
//      empty.
//   2. The per-call cost of disabled span/counter/observe/flight/perf sites
//      stays under a generous nanosecond budget — catching an accidental
//      mutex, string construction or allocation on the fast path, while
//      staying robust to slow CI machines. (The end-to-end "< 2% on
//      bench/table4_jacobi" criterion is checked against the seed binary
//      out-of-tree; this guard catches regressions in-tree at a granularity
//      where the signal is ~100x the threshold, not 2%.)
//   3. A batched-solver-shaped hot loop — per-lane flight sites inside a
//      lane loop, the exact shape batched_jacobi_solve's residual check
//      instruments — also stays under budget, so the recorder cannot tax
//      the widest hot path in the tree.
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

using namespace cmesolve;

namespace {

/// One instrumented "iteration": a span, an instant, a counter and a metric
/// observation — the shape of the hot jacobi/kernel instrumentation.
std::uint64_t instrumented_loop(std::uint64_t n) {
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    CMESOLVE_TRACE_SPAN("overhead.iter");
    CMESOLVE_TRACE_INSTANT("overhead.tick");
    CMESOLVE_TRACE_COUNTER("overhead.value", i);
    obs::observe("overhead.value", static_cast<double>(i));
    acc += i ^ (acc >> 7);  // keep the loop from folding away
  }
  return acc;
}

/// Flight-recorder + perf sites: the per-iteration shape of the solver
/// residual-check instrumentation (one flight event + one PerfScope).
std::uint64_t flight_loop(std::uint64_t n) {
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (obs::flight_enabled()) {
      obs::flight("overhead.residual", obs::FlightKind::kResidual, i,
                  static_cast<double>(i));
    }
    obs::PerfScope perf("overhead.window");
    acc += i ^ (acc >> 7);
  }
  return acc;
}

/// Batched hot-loop shape: K per-lane flight sites behind one enable check,
/// the way batched_jacobi_solve records per-lane residuals plus the active
/// count at each convergence check.
constexpr std::uint64_t kLanes = 8;
std::uint64_t batched_flight_loop(std::uint64_t n) {
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (obs::flight_enabled()) {
      for (std::uint64_t q = 0; q < kLanes; ++q) {
        obs::flight("overhead.batch", obs::FlightKind::kResidual, i,
                    static_cast<double>(q), static_cast<std::uint32_t>(q));
      }
      obs::flight("overhead.active", obs::FlightKind::kBatchActive, i,
                  static_cast<double>(kLanes));
    }
    acc += i ^ (acc >> 7);
  }
  return acc;
}

std::uint64_t bare_loop(std::uint64_t n) {
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    acc += i ^ (acc >> 7);
  }
  return acc;
}

double seconds_per_iter(std::uint64_t n, std::uint64_t (*fn)(std::uint64_t)) {
  // Warm up, then take the best of 5 reps (minimum filters scheduler noise).
  volatile std::uint64_t sink = fn(n / 10 + 1);
  double best = 1e9;
  for (int rep = 0; rep < 5; ++rep) {
    WallTimer timer;
    sink = fn(n);
    best = std::min(best, timer.seconds());
  }
  (void)sink;
  return best / static_cast<double>(n);
}

}  // namespace

int main() {
  constexpr std::uint64_t kIters = 4'000'000;
  // 25 ns/site is ~2 orders of magnitude above the expected cost of a
  // relaxed load + branch.
  constexpr double kMaxPerSite = 25e-9;

  // Telemetry must be off for this measurement to mean anything (the driver
  // may export CMESOLVE_TRACE/CMESOLVE_REPORT/CMESOLVE_FLIGHT for other
  // binaries).
  obs::Tracer::instance().disable();
  obs::Tracer::instance().clear();
  obs::set_metrics_enabled(false);
  obs::MetricRegistry::instance().clear();
  obs::FlightRecorder::instance().disable();
  obs::FlightRecorder::instance().clear();
  obs::set_perf_enabled(false);

  const double bare = seconds_per_iter(kIters, bare_loop);
  // 4 disabled trace/metric sites per iteration.
  const double instrumented = seconds_per_iter(kIters, instrumented_loop);
  const double per_site = std::max(0.0, instrumented - bare) / 4.0;
  // 2 disabled sites: one flight check, one PerfScope.
  const double flight = seconds_per_iter(kIters, flight_loop);
  const double per_flight_site = std::max(0.0, flight - bare) / 2.0;
  // The whole disabled batched block folds into ONE enable check — budget
  // it as a single site regardless of K.
  const double batched = seconds_per_iter(kIters, batched_flight_loop);
  const double per_batched_site = std::max(0.0, batched - bare);

  std::cout << "bare loop:           " << bare * 1e9 << " ns/iter\n"
            << "instrumented loop:   " << instrumented * 1e9 << " ns/iter\n"
            << "flight+perf loop:    " << flight * 1e9 << " ns/iter\n"
            << "batched flight loop: " << batched * 1e9 << " ns/iter ("
            << kLanes << " lanes)\n"
            << "disabled overhead: trace/metrics " << per_site * 1e9
            << " ns, flight+perf " << per_flight_site * 1e9
            << " ns, batched block " << per_batched_site * 1e9
            << " ns per site (budget " << kMaxPerSite * 1e9 << " ns)\n";

  bool ok = true;
  if (obs::Tracer::instance().size() != 0) {
    std::cerr << "FAIL: disabled tracer buffered "
              << obs::Tracer::instance().size() << " events\n";
    ok = false;
  }
  if (!obs::MetricRegistry::instance().empty()) {
    std::cerr << "FAIL: disabled registry holds "
              << obs::MetricRegistry::instance().size() << " metrics\n";
    ok = false;
  }
  if (obs::FlightRecorder::instance().size() != 0) {
    std::cerr << "FAIL: disabled flight recorder buffered "
              << obs::FlightRecorder::instance().size() << " events\n";
    ok = false;
  }
  if (per_site > kMaxPerSite) {
    std::cerr << "FAIL: disabled telemetry site costs " << per_site * 1e9
              << " ns (budget " << kMaxPerSite * 1e9 << " ns)\n";
    ok = false;
  }
  if (per_flight_site > kMaxPerSite) {
    std::cerr << "FAIL: disabled flight/perf site costs "
              << per_flight_site * 1e9 << " ns (budget " << kMaxPerSite * 1e9
              << " ns)\n";
    ok = false;
  }
  if (per_batched_site > kMaxPerSite) {
    std::cerr << "FAIL: disabled batched flight block costs "
              << per_batched_site * 1e9 << " ns (budget " << kMaxPerSite * 1e9
              << " ns)\n";
    ok = false;
  }
  std::cout << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
