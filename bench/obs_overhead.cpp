// Asserts the observability layer's disabled-mode contract: with tracing and
// metrics off (the default), instrumentation macros must cost no more than a
// relaxed atomic load + predictable branch, and must record nothing.
//
// Two checks, both hard failures (exit 1):
//   1. Nothing is emitted: after running instrumented work with telemetry
//      disabled, the trace buffer and metric registry are empty.
//   2. The per-call cost of disabled span/counter/observe sites stays under
//      a generous nanosecond budget — catching an accidental mutex, string
//      construction or allocation on the fast path, while staying robust to
//      slow CI machines. (The end-to-end "< 2% on bench/table4_jacobi"
//      criterion is checked against the seed binary out-of-tree; this guard
//      catches regressions in-tree at a granularity where the signal is
//      ~100x the threshold, not 2%.)
#include <cstdint>
#include <cstdlib>
#include <iostream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

using namespace cmesolve;

namespace {

/// One instrumented "iteration": a span, an instant, a counter and a metric
/// observation — the shape of the hot jacobi/kernel instrumentation.
std::uint64_t instrumented_loop(std::uint64_t n) {
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    CMESOLVE_TRACE_SPAN("overhead.iter");
    CMESOLVE_TRACE_INSTANT("overhead.tick");
    CMESOLVE_TRACE_COUNTER("overhead.value", i);
    obs::observe("overhead.value", static_cast<double>(i));
    acc += i ^ (acc >> 7);  // keep the loop from folding away
  }
  return acc;
}

std::uint64_t bare_loop(std::uint64_t n) {
  std::uint64_t acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    acc += i ^ (acc >> 7);
  }
  return acc;
}

double seconds_per_iter(std::uint64_t n, std::uint64_t (*fn)(std::uint64_t)) {
  // Warm up, then take the best of 5 reps (minimum filters scheduler noise).
  volatile std::uint64_t sink = fn(n / 10 + 1);
  double best = 1e9;
  for (int rep = 0; rep < 5; ++rep) {
    WallTimer timer;
    sink = fn(n);
    best = std::min(best, timer.seconds());
  }
  (void)sink;
  return best / static_cast<double>(n);
}

}  // namespace

int main() {
  constexpr std::uint64_t kIters = 4'000'000;
  // 4 disabled telemetry sites per iteration; 25 ns/site is ~2 orders of
  // magnitude above the expected cost of a relaxed load + branch.
  constexpr double kMaxPerSite = 25e-9;

  // Telemetry must be off for this measurement to mean anything (the driver
  // may export CMESOLVE_TRACE/CMESOLVE_REPORT for other binaries).
  obs::Tracer::instance().disable();
  obs::Tracer::instance().clear();
  obs::set_metrics_enabled(false);
  obs::MetricRegistry::instance().clear();

  const double bare = seconds_per_iter(kIters, bare_loop);
  const double instrumented = seconds_per_iter(kIters, instrumented_loop);
  const double per_site = std::max(0.0, instrumented - bare) / 4.0;

  std::cout << "bare loop:         " << bare * 1e9 << " ns/iter\n"
            << "instrumented loop: " << instrumented * 1e9 << " ns/iter\n"
            << "disabled overhead: " << per_site * 1e9
            << " ns per telemetry site (budget " << kMaxPerSite * 1e9
            << " ns)\n";

  bool ok = true;
  if (obs::Tracer::instance().size() != 0) {
    std::cerr << "FAIL: disabled tracer buffered "
              << obs::Tracer::instance().size() << " events\n";
    ok = false;
  }
  if (!obs::MetricRegistry::instance().empty()) {
    std::cerr << "FAIL: disabled registry holds "
              << obs::MetricRegistry::instance().size() << " metrics\n";
    ok = false;
  }
  if (per_site > kMaxPerSite) {
    std::cerr << "FAIL: disabled telemetry site costs " << per_site * 1e9
              << " ns (budget " << kMaxPerSite * 1e9 << " ns)\n";
    ok = false;
  }
  std::cout << (ok ? "PASS" : "FAIL") << "\n";
  return ok ? 0 : 1;
}
