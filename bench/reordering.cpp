// Regenerates the Sec. VII-C row-reordering comparison: average warped-ELL
// SpMV performance under random shuffle, global nonzero sort (pJDS-like)
// and the paper's local rearrangement.
// Paper reference: random 2.783, global 15.137, local 16.278 GFLOPS.
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/kernels.hpp"
#include "obs/metrics.hpp"
#include "sparse/sliced_ell.hpp"
#include "util/table.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  // The locality collapse of random/global reordering only shows once the
  // x vector exceeds the 768 KB L2 (as at the paper's matrix sizes), so this
  // bench defaults to the medium scale.
  std::string scale = bench::scale_name(argc, argv);
  if (argc <= 1 && !std::getenv("CMESOLVE_SCALE")) scale = "medium";
  const auto dev = gpusim::DeviceSpec::gtx580();
  bench::report_context("reordering", scale, &dev);
  std::cout << "Sec. VII-C: effect of row reordering on warp-grained sliced "
               "ELL (simulated " << dev.name << ", scale=" << scale << ")\n\n";

  const struct {
    const char* name;
    const char* key;  ///< ledger metric segment
    sparse::Reordering reorder;
  } kStrategies[] = {
      {"none (DFS order)", "none", sparse::Reordering::kNone},
      {"local rearrangement", "local", sparse::Reordering::kLocal},
      {"global sort (pJDS)", "global", sparse::Reordering::kGlobal},
      {"random shuffle", "random", sparse::Reordering::kRandom},
  };

  const auto suite = bench::suite_matrices(scale);
  TextTable table({"reordering", "avg GFLOPS", "vs local"});
  real_t local_avg = 0;
  std::vector<real_t> avgs;

  for (const auto& s : kStrategies) {
    real_t sum = 0;
    for (const auto& m : suite) {
      const auto x = bench::uniform_vector(m.a.ncols);
      std::vector<real_t> y(static_cast<std::size_t>(m.a.nrows));
      const auto fmt = sparse::sliced_ell_from_csr(m.a, 32, s.reorder, 256);
      sum += gpusim::simulate_spmv(dev, fmt, x, y).gflops;
    }
    const real_t avg = sum / static_cast<real_t>(suite.size());
    avgs.push_back(avg);
    if (s.reorder == sparse::Reordering::kLocal) local_avg = avg;
  }
  for (std::size_t i = 0; i < std::size(kStrategies); ++i) {
    table.add_row({kStrategies[i].name, TextTable::num(avgs[i]),
                   TextTable::num(avgs[i] / local_avg, 2)});
    // Simulated sweeps over a fixed-seed shuffle — deterministic.
    obs::gauge(std::string("reordering.") + kStrategies[i].key +
                   ".avg_gflops",
               avgs[i]);
  }
  std::cout << table.render();
  std::cout << "\nPaper reference: random 2.783, global 15.137, local 16.278 "
               "GFLOPS — the global sort\nloses ~6% to shuffled x-locality; "
               "the random order collapses entirely.\n";
  obs::flush_outputs();
  return 0;
}
