// Host-side strong scaling of the parallel simulation + solver engines.
//
// Sweeps the thread budget 1..hardware_concurrency (powers of two, plus the
// exact hardware count) over
//   (a) one simulated warp-grained Jacobi sweep (the for_each_warp sharded
//       engine with its deterministic L2 replay), and
//   (b) a fixed number of host Jacobi iterations (parallel SpMV +
//       fixed-chunk reductions),
// measuring wall-clock per repetition and cross-checking that every thread
// count reproduces the 1-thread counters and iterates bit-exactly.
//
// Emits the unified run-report schema (cmesolve.run_report/2, the same
// writer every instrumented binary uses) to stdout and to sim_scaling.json —
// honest numbers from THIS host: on a single-core container every speedup is
// ~1.0 by physics, and the report says so rather than inventing parallel
// hardware.
#include <algorithm>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "gpusim/kernels.hpp"
#include "obs/metrics.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

using namespace cmesolve;

namespace {

std::vector<int> thread_sweep() {
  // Always sweep through 4 threads (the acceptance point of the scaling
  // contract) even on smaller hosts, where the extra budgets oversubscribe
  // and the recorded speedup honestly saturates at ~1.
  const int hw = util::hardware_threads();
  const int top = std::max(hw, 4);
  std::vector<int> ts;
  for (int t = 1; t <= top; t *= 2) ts.push_back(t);
  if (ts.back() != top) ts.push_back(top);
  return ts;
}

struct Sample {
  int threads = 0;
  double seconds_per_rep = 0.0;
  double speedup = 1.0;
  bool deterministic = true;
};

/// Median-of-reps wall clock for `fn()`.
template <class Fn>
double time_reps(int reps, Fn&& fn) {
  std::vector<double> t(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    t[static_cast<std::size_t>(r)] = timer.seconds();
  }
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

/// Publish one sweep's samples into the metric registry under `section`.
/// Wall-clock derived values are volatile; the determinism cross-check is
/// the deterministic artifact of this bench.
void publish_samples(const std::string& section,
                     const std::vector<Sample>& samples) {
  for (const Sample& s : samples) {
    const std::string key =
        "sim_scaling." + section + ".t" + std::to_string(s.threads);
    obs::gauge(key + ".seconds_per_rep", s.seconds_per_rep,
               /*is_volatile=*/true);
    obs::gauge(key + ".speedup_vs_1t", s.speedup, /*is_volatile=*/true);
    obs::gauge(key + ".bit_identical_to_1t", s.deterministic ? 1.0 : 0.0);
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = bench::scale_name(argc, argv);
  const auto dev0 = gpusim::DeviceSpec::gtx580();
  bench::report_context("sim_scaling", scale, &dev0);
  obs::set_metrics_enabled(true);  // this bench always reports
  core::models::ToggleSwitchParams p;
  p.cap_a = p.cap_b = scale == "tiny" ? 30 : (scale == "medium" ? 110 : 70);
  const auto net = core::models::toggle_switch(p);
  const core::StateSpace space(net, core::models::toggle_switch_initial(p),
                               20'000'000);
  const sparse::Csr a = core::rate_matrix(space);

  const auto dev = gpusim::DeviceSpec::gtx580();
  const solver::WarpedEllDiaOperator op(a);
  const auto x = bench::uniform_vector(a.ncols);
  std::vector<real_t> y(static_cast<std::size_t>(a.nrows));

  const int sim_reps = scale == "tiny" ? 5 : 3;

  // Reference counters at 1 thread for the determinism cross-check.
  util::set_max_threads(1);
  const auto ref =
      gpusim::simulate_jacobi_sweep(dev, op.gpu_hybrid(), x, y, {}, 0);
  const std::vector<real_t> ref_y = y;

  std::vector<Sample> sim_samples;
  for (int t : thread_sweep()) {
    util::set_max_threads(t);
    Sample s;
    s.threads = t;
    gpusim::KernelStats last;
    s.seconds_per_rep = time_reps(sim_reps, [&] {
      last = gpusim::simulate_jacobi_sweep(dev, op.gpu_hybrid(), x, y, {}, 0);
    });
    s.deterministic = last.traffic.dram_bytes == ref.traffic.dram_bytes &&
                      last.traffic.l2_hits == ref.traffic.l2_hits &&
                      last.traffic.l1_hits == ref.traffic.l1_hits &&
                      last.seconds == ref.seconds && y == ref_y;
    s.speedup = sim_samples.empty()
                    ? 1.0
                    : sim_samples.front().seconds_per_rep / s.seconds_per_rep;
    sim_samples.push_back(s);
  }

  // Host solver: a fixed 40-iteration budget (no convergence test noise).
  solver::JacobiOptions jopt;
  jopt.max_iterations = 40;
  jopt.check_every = 40;
  const real_t an = a.inf_norm();

  util::set_max_threads(1);
  std::vector<real_t> xr(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(xr);
  (void)solver::jacobi_solve(op, an, xr, jopt);
  const std::vector<real_t> ref_x = xr;

  std::vector<Sample> host_samples;
  for (int t : thread_sweep()) {
    util::set_max_threads(t);
    Sample s;
    s.threads = t;
    std::vector<real_t> xs(static_cast<std::size_t>(a.nrows));
    s.seconds_per_rep = time_reps(sim_reps, [&] {
      solver::fill_uniform(xs);
      (void)solver::jacobi_solve(op, an, xs, jopt);
    });
    s.deterministic = xs == ref_x;
    s.speedup = host_samples.empty()
                    ? 1.0
                    : host_samples.front().seconds_per_rep / s.seconds_per_rep;
    host_samples.push_back(s);
  }
  util::set_max_threads(0);

  obs::set_context("model", "toggle-switch");
  obs::set_context("matrix.n", std::to_string(a.nrows));
  obs::set_context("matrix.nnz", std::to_string(a.nnz()));
  obs::set_context("hardware_threads",
                   std::to_string(util::hardware_threads()));
  publish_samples("simulated_jacobi_sweep", sim_samples);
  publish_samples("host_jacobi_iterations", host_samples);

  obs::write_report(std::cout);
  if (obs::report_path().empty()) {
    obs::set_report_path("sim_scaling.json");
  }
  obs::flush_outputs();
  std::cerr << "wrote " << obs::report_path() << "\n";
  return 0;
}
