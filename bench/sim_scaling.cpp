// Host-side strong scaling of the parallel simulation + solver engines.
//
// Sweeps the thread budget 1..hardware_concurrency (powers of two, plus the
// exact hardware count) over
//   (a) one simulated warp-grained Jacobi sweep (the for_each_warp sharded
//       engine with its deterministic L2 replay), and
//   (b) a fixed number of host Jacobi iterations (parallel SpMV +
//       fixed-chunk reductions),
// measuring wall-clock per repetition and cross-checking that every thread
// count reproduces the 1-thread counters and iterates bit-exactly.
//
// Emits a JSON report to stdout and to sim_scaling.json — honest numbers
// from THIS host: on a single-core container every speedup is ~1.0 by
// physics, and the report says so rather than inventing parallel hardware.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "gpusim/kernels.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "util/parallel.hpp"
#include "util/timer.hpp"

using namespace cmesolve;

namespace {

std::vector<int> thread_sweep() {
  // Always sweep through 4 threads (the acceptance point of the scaling
  // contract) even on smaller hosts, where the extra budgets oversubscribe
  // and the recorded speedup honestly saturates at ~1.
  const int hw = util::hardware_threads();
  const int top = std::max(hw, 4);
  std::vector<int> ts;
  for (int t = 1; t <= top; t *= 2) ts.push_back(t);
  if (ts.back() != top) ts.push_back(top);
  return ts;
}

struct Sample {
  int threads = 0;
  double seconds_per_rep = 0.0;
  double speedup = 1.0;
  bool deterministic = true;
};

/// Median-of-reps wall clock for `fn()`.
template <class Fn>
double time_reps(int reps, Fn&& fn) {
  std::vector<double> t(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    t[static_cast<std::size_t>(r)] = timer.seconds();
  }
  std::sort(t.begin(), t.end());
  return t[t.size() / 2];
}

void emit(std::ostream& os, const std::string& scale, index_t n,
          std::size_t nnz, const std::vector<Sample>& sim,
          const std::vector<Sample>& host) {
  const auto block = [&](const std::vector<Sample>& v) {
    std::ostringstream s;
    for (std::size_t i = 0; i < v.size(); ++i) {
      s << (i ? ",\n" : "\n")
        << "      {\"threads\": " << v[i].threads
        << ", \"seconds_per_rep\": " << v[i].seconds_per_rep
        << ", \"speedup_vs_1t\": " << v[i].speedup
        << ", \"bit_identical_to_1t\": " << (v[i].deterministic ? "true" : "false")
        << "}";
    }
    return s.str();
  };
  os << "{\n"
     << "  \"bench\": \"sim_scaling\",\n"
     << "  \"scale\": \"" << scale << "\",\n"
     << "  \"hardware_threads\": " << util::hardware_threads() << ",\n"
     << "  \"matrix\": {\"model\": \"toggle-switch\", \"n\": " << n
     << ", \"nnz\": " << nnz << "},\n"
     << "  \"simulated_jacobi_sweep\": {\n    \"samples\": ["
     << block(sim) << "\n    ]\n  },\n"
     << "  \"host_jacobi_iterations\": {\n    \"samples\": ["
     << block(host) << "\n    ]\n  }\n"
     << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = bench::scale_name(argc, argv);
  core::models::ToggleSwitchParams p;
  p.cap_a = p.cap_b = scale == "tiny" ? 30 : (scale == "medium" ? 110 : 70);
  const auto net = core::models::toggle_switch(p);
  const core::StateSpace space(net, core::models::toggle_switch_initial(p),
                               20'000'000);
  const sparse::Csr a = core::rate_matrix(space);

  const auto dev = gpusim::DeviceSpec::gtx580();
  const solver::WarpedEllDiaOperator op(a);
  const auto x = bench::uniform_vector(a.ncols);
  std::vector<real_t> y(static_cast<std::size_t>(a.nrows));

  const int sim_reps = scale == "tiny" ? 5 : 3;

  // Reference counters at 1 thread for the determinism cross-check.
  util::set_max_threads(1);
  const auto ref =
      gpusim::simulate_jacobi_sweep(dev, op.gpu_hybrid(), x, y, {}, 0);
  const std::vector<real_t> ref_y = y;

  std::vector<Sample> sim_samples;
  for (int t : thread_sweep()) {
    util::set_max_threads(t);
    Sample s;
    s.threads = t;
    gpusim::KernelStats last;
    s.seconds_per_rep = time_reps(sim_reps, [&] {
      last = gpusim::simulate_jacobi_sweep(dev, op.gpu_hybrid(), x, y, {}, 0);
    });
    s.deterministic = last.traffic.dram_bytes == ref.traffic.dram_bytes &&
                      last.traffic.l2_hits == ref.traffic.l2_hits &&
                      last.traffic.l1_hits == ref.traffic.l1_hits &&
                      last.seconds == ref.seconds && y == ref_y;
    s.speedup = sim_samples.empty()
                    ? 1.0
                    : sim_samples.front().seconds_per_rep / s.seconds_per_rep;
    sim_samples.push_back(s);
  }

  // Host solver: a fixed 40-iteration budget (no convergence test noise).
  solver::JacobiOptions jopt;
  jopt.max_iterations = 40;
  jopt.check_every = 40;
  const real_t an = a.inf_norm();

  util::set_max_threads(1);
  std::vector<real_t> xr(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(xr);
  (void)solver::jacobi_solve(op, an, xr, jopt);
  const std::vector<real_t> ref_x = xr;

  std::vector<Sample> host_samples;
  for (int t : thread_sweep()) {
    util::set_max_threads(t);
    Sample s;
    s.threads = t;
    std::vector<real_t> xs(static_cast<std::size_t>(a.nrows));
    s.seconds_per_rep = time_reps(sim_reps, [&] {
      solver::fill_uniform(xs);
      (void)solver::jacobi_solve(op, an, xs, jopt);
    });
    s.deterministic = xs == ref_x;
    s.speedup = host_samples.empty()
                    ? 1.0
                    : host_samples.front().seconds_per_rep / s.seconds_per_rep;
    host_samples.push_back(s);
  }
  util::set_max_threads(0);

  emit(std::cout, scale, a.nrows, a.nnz(), sim_samples, host_samples);
  std::ofstream json("sim_scaling.json");
  emit(json, scale, a.nrows, a.nnz(), sim_samples, host_samples);
  std::cerr << "wrote sim_scaling.json\n";
  return 0;
}
