// Explicit-SIMD kernel microbench: the hot kernel classes of the dispatch
// layer (batched lane sweep, fused Jacobi scale+swap, residual cmul_add)
// timed per compiled ISA on real phage-lambda propensity data, with the
// bitwise-parity contract re-checked against the scalar table on every
// measured buffer.
//
// The per-ISA throughputs are wall-clock and land in the volatile section
// of the bench ledger; the deterministic section carries only the
// machine-independent facts (workload shape, parity flags), so the
// checked-in baseline diffs cleanly on any host — including one whose CPU
// supports fewer ISAs than the recording machine.
//
// Gate: bitwise parity across every ISA the host can run. Throughput is
// advisory here — the enforced explicit-SIMD speedup gate lives in
// bench/ensemble_batch where it is measured through the full operator.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/models.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "solver/stencil_operator.hpp"
#include "util/aligned_vector.hpp"
#include "util/simd.hpp"
#include "util/simd_kernels.hpp"
#include "util/timer.hpp"

using namespace cmesolve;

namespace {

constexpr std::size_t kLanes = 8;
constexpr std::int64_t kGrain = 512;  // matches the batched operator's chunk

core::models::PhageLambdaParams params_for(core::models::SuiteScale scale) {
  core::models::PhageLambdaParams p;
  switch (scale) {
    case core::models::SuiteScale::kTiny:
      p.cap_ci = p.cap_cro = 4;
      p.cap_ci2 = p.cap_cro2 = 2;
      break;
    case core::models::SuiteScale::kSmall:
      p.cap_ci = p.cap_cro = 6;
      p.cap_ci2 = p.cap_cro2 = 3;
      break;
    default:
      p.cap_ci = p.cap_cro = 8;
      p.cap_ci2 = p.cap_cro2 = 4;
      break;
  }
  return p;
}

real_t best_of(int reps, auto&& body) {
  real_t best = std::numeric_limits<real_t>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    WallTimer t;
    body();
    best = std::min(best, t.seconds());
  }
  return best;
}

bool bitwise_equal(const real_t* a, const real_t* b, std::size_t n) {
  return n == 0 || std::memcmp(a, b, n * sizeof(real_t)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = bench::scale_name(argc, argv);
  bench::report_context("simd_kernels", scale);

  // Real sweep data: the phage-lambda propensity cache, not a synthetic
  // fill — the unit table's zero runs (and therefore the zero-scan skip
  // rate) are part of what the sweep kernel is shaped around.
  const auto params = params_for(core::models::parse_scale(scale));
  const auto net = core::models::phage_lambda(params);
  const auto initial = core::models::phage_lambda_initial(params);
  const solver::StencilOperator compiled(net, initial);
  const solver::StencilOperator anchor(compiled.table(),
                                       solver::StencilMode::kPropensityCache);
  const auto n = static_cast<std::int64_t>(anchor.nrows());
  const auto& rx = anchor.table().reactions();
  const std::size_t nr = rx.size();
  const std::size_t nk = static_cast<std::size_t>(n) * kLanes;

  std::vector<std::int64_t> strides(nr);
  for (std::size_t r = 0; r < nr; ++r) strides[r] = rx[r].stride;
  util::aligned_vector<real_t> coef(nr * kLanes);
  for (std::size_t i = 0; i < coef.size(); ++i) {
    coef[i] = 0.5 + static_cast<real_t>(i % 7) * 0.25;
  }
  util::aligned_vector<real_t> x(nk), y(nk), y_ref(nk), d(nk), nx(nk),
      resid(nk), ref(nk);
  for (std::size_t i = 0; i < nk; ++i) {
    x[i] = 1.0 / static_cast<real_t>(3 + (i % 13));
    d[i] = -1.0 - static_cast<real_t>(i % 5) * 0.125;
  }
  const util::simdk::BatchedSweepArgs args{
      x.data(),        y.data(), anchor.propensity_cache().data(),
      coef.data(),     strides.data(),
      nr,              n,        kLanes};

  const auto run_sweep = [&](const util::simdk::KernelOps& ko) {
    for (std::int64_t c = 0; c < n; c += kGrain) {
      ko.batched_sweep(args, c, std::min<std::int64_t>(c + kGrain, n));
    }
  };

  const double sweep_mb =
      static_cast<double>(n) * sizeof(real_t) * (nr + 2.0 * kLanes) / 1e6;
  const double pass_mb = 3.0 * nk * sizeof(real_t) / 1e6;

  std::printf(
      "Explicit-SIMD kernel layer: box rows %lld, %zu reactions, K=%zu "
      "lanes (phage-lambda, scale=%s)\nactive dispatch: %s\n\n"
      "%-8s %5s  %12s %12s %12s  %s\n",
      static_cast<long long>(n), nr, kLanes, scale.c_str(),
      util::simd::active_isa_name(), "isa", "width", "sweep", "scale_swap",
      "cmul_add", "parity");

  // Scalar reference outputs, captured once.
  const util::simdk::KernelOps& sk =
      util::simdk::kernels_for(util::simd::Isa::kScalar);
  run_sweep(sk);
  y_ref.assign(y.begin(), y.end());
  // scale_swap consumes the sweep output through nx (v = -nx/d), so both
  // buffers are reset from (x, y_ref) before every timed call.
  ref.assign(x.begin(), x.end());
  nx.assign(y_ref.begin(), y_ref.end());
  sk.scale_swap(ref.data(), nx.data(), d.data(), nk);
  util::aligned_vector<real_t> ss_ref(ref);  // post-scale_swap x bits
  std::fill(resid.begin(), resid.end(), 0.25);
  sk.cmul_add(resid.data(), d.data(), x.data(), nk);
  util::aligned_vector<real_t> cm_ref(resid);

  bool parity = true;
  for (const util::simd::Isa isa : util::simd::compiled_isas()) {
    if (!util::simd::force_isa(isa)) continue;  // compiled in, CPU lacks it
    const util::simdk::KernelOps& ko = util::simdk::kernels_for(isa);

    const real_t t_sweep = best_of(5, [&] { run_sweep(ko); });
    const bool ok_sweep = bitwise_equal(y.data(), y_ref.data(), nk);

    util::aligned_vector<real_t> xw(x);
    const real_t t_ss = best_of(5, [&] {
      xw.assign(x.begin(), x.end());
      nx.assign(y_ref.begin(), y_ref.end());
      ko.scale_swap(xw.data(), nx.data(), d.data(), nk);
    });
    const bool ok_ss = bitwise_equal(xw.data(), ss_ref.data(), nk) &&
                       bitwise_equal(nx.data(), x.data(), nk);

    const real_t t_cm = best_of(5, [&] {
      std::fill(resid.begin(), resid.end(), 0.25);
      ko.cmul_add(resid.data(), d.data(), x.data(), nk);
    });
    const bool ok_cm = bitwise_equal(resid.data(), cm_ref.data(), nk);

    const bool ok = ok_sweep && ok_ss && ok_cm;
    parity = parity && ok;
    std::printf("%-8s %5d  %9.3f ms %9.1f GB/s %9.1f GB/s  %s\n", ko.name,
                ko.width, t_sweep * 1e3, pass_mb / 1e3 / t_ss,
                pass_mb / 1e3 / t_cm, ok ? "PASS" : "FAIL");
    const std::string prefix = std::string("simd_kernels.") + ko.name;
    obs::gauge(prefix + ".sweep_gbps", sweep_mb / 1e3 / t_sweep,
               /*is_volatile=*/true);
    obs::gauge(prefix + ".scale_swap_gbps", pass_mb / 1e3 / t_ss,
               /*is_volatile=*/true);
    obs::gauge(prefix + ".cmul_add_gbps", pass_mb / 1e3 / t_cm,
               /*is_volatile=*/true);
  }
  util::simd::reset_forced_isa();

  // Hardware-counter crosscheck: DRAM bytes actually moved by one sweep on
  // the auto-dispatched table, next to the effective-bytes model above.
  obs::PerfGroup perf_group;
  if (perf_group.available()) {
    constexpr int kPerfReps = 8;
    const util::simdk::KernelOps& ko = util::simdk::kernels();
    run_sweep(ko);  // warm
    perf_group.start();
    for (int rep = 0; rep < kPerfReps; ++rep) run_sweep(ko);
    const auto s = perf_group.stop();
    if (s.available) {
      const auto bytes = s.dram_bytes() / kPerfReps;
      std::printf(
          "\nmeasured DRAM/sweep (LLC misses x 64): %.2f MB of %.2f MB "
          "effective (ipc %.2f over %d sweeps)\n",
          static_cast<double>(bytes) / 1e6, sweep_mb, s.ipc(), kPerfReps);
      obs::gauge("simd_kernels.measured_sweep_dram_bytes",
                 static_cast<double>(bytes), /*is_volatile=*/true);
    }
  } else {
    std::printf("\nmeasured DRAM/sweep: hardware counters unavailable\n");
  }

  // Machine-independent facts only: any host must reproduce these exactly,
  // whatever subset of the compiled ISAs its CPU can actually run.
  obs::gauge("simd_kernels.rows", static_cast<real_t>(n));
  obs::gauge("simd_kernels.reactions", static_cast<real_t>(nr));
  obs::gauge("simd_kernels.lanes", static_cast<real_t>(kLanes));
  obs::gauge("simd_kernels.parity", parity ? 1.0 : 0.0);

  std::printf("\ngates:\n  bitwise parity vs scalar, all ISAs      %s\n"
              "simd_kernels: %s\n",
              parity ? "PASS" : "FAIL", parity ? "PASS" : "FAIL");
  obs::flush_outputs();
  return parity ? 0 : 1;
}
