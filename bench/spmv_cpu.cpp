// google-benchmark microbenchmarks of the host SpMV kernels across formats
// (the CPU reference implementations backing the solver numerics). These are
// real wall-clock measurements on this machine, complementing the
// simulated-GPU tables.
#include <benchmark/benchmark.h>

#include <vector>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "sparse/csr.hpp"
#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "sparse/hybrid.hpp"
#include "sparse/sliced_ell.hpp"

using namespace cmesolve;

namespace {

const sparse::Csr& toggle_matrix() {
  static const sparse::Csr a = [] {
    core::models::ToggleSwitchParams p;
    p.cap_a = p.cap_b = 70;
    const auto net = core::models::toggle_switch(p);
    const core::StateSpace space(net, core::models::toggle_switch_initial(p),
                                 1'000'000);
    return core::rate_matrix(space);
  }();
  return a;
}

template <class Format>
void run_spmv(benchmark::State& state, const Format& fmt, index_t nrows,
              index_t ncols, std::size_t nnz) {
  std::vector<real_t> x(static_cast<std::size_t>(ncols),
                        1.0 / static_cast<real_t>(ncols));
  std::vector<real_t> y(static_cast<std::size_t>(nrows));
  for (auto _ : state) {
    sparse::spmv(fmt, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(nnz) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void BM_SpmvCsr(benchmark::State& state) {
  const auto& a = toggle_matrix();
  run_spmv(state, a, a.nrows, a.ncols, a.nnz());
}
BENCHMARK(BM_SpmvCsr);

void BM_SpmvEll(benchmark::State& state) {
  const auto& a = toggle_matrix();
  const auto ell = sparse::ell_from_csr(a);
  run_spmv(state, ell, a.nrows, a.ncols, a.nnz());
}
BENCHMARK(BM_SpmvEll);

void BM_SpmvEllDia(benchmark::State& state) {
  const auto& a = toggle_matrix();
  const auto h = sparse::ell_dia_from_csr(a, {-1, 0, 1});
  run_spmv(state, h, a.nrows, a.ncols, a.nnz());
}
BENCHMARK(BM_SpmvEllDia);

void BM_SpmvSlicedEll(benchmark::State& state) {
  const auto& a = toggle_matrix();
  const auto s = sparse::sliced_ell_from_csr(a, 256);
  run_spmv(state, s, a.nrows, a.ncols, a.nnz());
}
BENCHMARK(BM_SpmvSlicedEll);

void BM_SpmvWarpedEll(benchmark::State& state) {
  const auto& a = toggle_matrix();
  const auto w = sparse::warped_ell_from_csr(a);
  run_spmv(state, w, a.nrows, a.ncols, a.nnz());
}
BENCHMARK(BM_SpmvWarpedEll);

}  // namespace

BENCHMARK_MAIN();
