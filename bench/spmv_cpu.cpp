// google-benchmark microbenchmarks of the host SpMV kernels across formats
// (the CPU reference implementations backing the solver numerics). These are
// real wall-clock measurements on this machine, complementing the
// simulated-GPU tables. Results are mirrored into the obs registry as
// VOLATILE gauges (per-iteration seconds per benchmark) so a
// CMESOLVE_BENCH run yields a cmesolve.bench/1 ledger cme_bench_diff can
// band-compare against a same-machine baseline.
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#if defined(_OPENMP)
#include <omp.h>
#endif

#include "bench_common.hpp"
#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "sparse/csr.hpp"
#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "sparse/hybrid.hpp"
#include "sparse/sliced_ell.hpp"
#include "util/parallel.hpp"

using namespace cmesolve;

namespace {

const sparse::Csr& toggle_matrix() {
  static const sparse::Csr a = [] {
    core::models::ToggleSwitchParams p;
    p.cap_a = p.cap_b = 70;
    const auto net = core::models::toggle_switch(p);
    const core::StateSpace space(net, core::models::toggle_switch_initial(p),
                                 1'000'000);
    return core::rate_matrix(space);
  }();
  return a;
}

template <class Format>
void run_spmv(benchmark::State& state, const Format& fmt, index_t nrows,
              index_t ncols, std::size_t nnz) {
  std::vector<real_t> x(static_cast<std::size_t>(ncols),
                        1.0 / static_cast<real_t>(ncols));
  std::vector<real_t> y(static_cast<std::size_t>(nrows));
  for (auto _ : state) {
    sparse::spmv(fmt, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * static_cast<double>(nnz) * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate, benchmark::Counter::kIs1000);
}

void BM_SpmvCsr(benchmark::State& state) {
  const auto& a = toggle_matrix();
  run_spmv(state, a, a.nrows, a.ncols, a.nnz());
}
BENCHMARK(BM_SpmvCsr);

void BM_SpmvEll(benchmark::State& state) {
  const auto& a = toggle_matrix();
  const auto ell = sparse::ell_from_csr(a);
  run_spmv(state, ell, a.nrows, a.ncols, a.nnz());
}
BENCHMARK(BM_SpmvEll);

void BM_SpmvEllDia(benchmark::State& state) {
  const auto& a = toggle_matrix();
  const auto h = sparse::ell_dia_from_csr(a, {-1, 0, 1});
  run_spmv(state, h, a.nrows, a.ncols, a.nnz());
}
BENCHMARK(BM_SpmvEllDia);

void BM_SpmvSlicedEll(benchmark::State& state) {
  const auto& a = toggle_matrix();
  const auto s = sparse::sliced_ell_from_csr(a, 256);
  run_spmv(state, s, a.nrows, a.ncols, a.nnz());
}
BENCHMARK(BM_SpmvSlicedEll);

void BM_SpmvWarpedEll(benchmark::State& state) {
  const auto& a = toggle_matrix();
  const auto w = sparse::warped_ell_from_csr(a);
  run_spmv(state, w, a.nrows, a.ncols, a.nnz());
}
BENCHMARK(BM_SpmvWarpedEll);

// --- thread-scaling sweeps ---------------------------------------------------
//
// Arg(0) is the thread budget, applied to BOTH the OpenMP loops and the
// std::thread pool, so one binary sweeps the full parallel stack. Arguments
// above hardware_concurrency oversubscribe on purpose (the numbers stay
// honest; the speedup just saturates).

void set_threads(int t) {  // t = 0 restores auto-detection
  util::set_max_threads(t);
#if defined(_OPENMP)
  omp_set_num_threads(t > 0 ? t : util::hardware_threads());
#endif
}

void thread_args(benchmark::internal::Benchmark* b) {
  const int hw = util::hardware_threads();
  for (int t = 1; t <= hw; t *= 2) b->Arg(t);
  if ((hw & (hw - 1)) != 0) b->Arg(hw);
}

void BM_SpmvCsrThreads(benchmark::State& state) {
  const auto& a = toggle_matrix();
  set_threads(static_cast<int>(state.range(0)));
  run_spmv(state, a, a.nrows, a.ncols, a.nnz());
  set_threads(0);
}
BENCHMARK(BM_SpmvCsrThreads)->Apply(thread_args)->UseRealTime();

void BM_SpmvWarpedEllThreads(benchmark::State& state) {
  const auto& a = toggle_matrix();
  const auto w = sparse::warped_ell_from_csr(a);
  set_threads(static_cast<int>(state.range(0)));
  run_spmv(state, w, a.nrows, a.ncols, a.nnz());
  set_threads(0);
}
BENCHMARK(BM_SpmvWarpedEllThreads)->Apply(thread_args)->UseRealTime();

// End-to-end solver iterations: SpMV + diagonal scale + fixed-chunk
// reductions, i.e. everything a Jacobi step touches.
void BM_JacobiIterationsThreads(benchmark::State& state) {
  const auto& a = toggle_matrix();
  const solver::CsrDiaOperator op(a);
  const real_t an = a.inf_norm();
  solver::JacobiOptions opt;
  opt.max_iterations = 20;
  opt.check_every = 20;
  set_threads(static_cast<int>(state.range(0)));
  std::vector<real_t> x(static_cast<std::size_t>(a.nrows));
  for (auto _ : state) {
    solver::fill_uniform(x);
    const auto res = solver::jacobi_solve(op, an, x, opt);
    benchmark::DoNotOptimize(res.residual);
  }
  state.counters["iters"] = static_cast<double>(opt.max_iterations);
  set_threads(0);
}
BENCHMARK(BM_JacobiIterationsThreads)->Apply(thread_args)->UseRealTime();

/// Console reporter that also mirrors each run into the obs registry:
/// `spmv_cpu.<benchmark>.seconds` (real time per iteration), volatile —
/// wall clock never enters the deterministic ledger section.
class LedgerReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      std::string key = "spmv_cpu." + run.benchmark_name();
      for (auto& ch : key) {
        if (ch == '/') ch = '.';  // thread-sweep args: BM_x/4 -> BM_x.4
      }
      obs::gauge(key + ".seconds", run.GetAdjustedRealTime() * 1e-9,
                 /*is_volatile=*/true);
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  bench::report_context("spmv_cpu", "toggle70");
  // Deterministic anchor for the ledger: the workload's structure.
  const auto& a = toggle_matrix();
  obs::gauge("spmv_cpu.matrix_rows", static_cast<double>(a.nrows));
  obs::gauge("spmv_cpu.matrix_nnz", static_cast<double>(a.nnz()));

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  LedgerReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  // Measured DRAM attribution for the CSR sweep: a hardware-counted window
  // (LLC misses x 64-byte lines) next to google-benchmark's wall-clock
  // numbers, the same crosscheck the other benches print. Counter values
  // vary run to run, so the gauge is volatile.
  obs::PerfGroup perf_group;
  if (perf_group.available()) {
    std::vector<real_t> x(static_cast<std::size_t>(a.ncols),
                          1.0 / static_cast<real_t>(a.ncols));
    std::vector<real_t> y(static_cast<std::size_t>(a.nrows));
    constexpr int kReps = 16;
    perf_group.start();
    for (int i = 0; i < kReps; ++i) sparse::spmv(a, x, y);
    const obs::PerfSample s = perf_group.stop();
    if (s.available) {
      const auto bytes = s.dram_bytes() / kReps;
      std::printf(
          "measured DRAM/sweep (LLC misses x 64): csr %.2f MB "
          "(ipc %.2f over %d sweeps)\n",
          static_cast<double>(bytes) / 1e6, s.ipc(), kReps);
      obs::gauge("spmv_cpu.measured_csr_dram_bytes",
                 static_cast<double>(bytes), /*is_volatile=*/true);
    }
  } else {
    std::printf("measured DRAM/sweep: hardware counters unavailable\n");
  }

  obs::flush_outputs();
  return 0;
}
