// Matrix-free stencil operator vs stored formats (no paper table: this is
// the matrix-free extension, see DESIGN.md "Matrix-free operator").
//
// For every Table I model plus the enzymatic futile cycle:
//   * measured: host wall-clock throughput of one off-diagonal sweep
//     y = (L+U)x for the CSR-backed Jacobi operator vs the stencil operator
//     in recompute and propensity-cache modes (GFLOP/s and effective GB/s,
//     where "effective" divides the bytes the format has to touch by the
//     measured time);
//   * modeled: the simulated-GPU format sweep (CSR, ELL, sliced/warped ELL,
//     ELL+DIA hybrids) with the matrix-free stencil kernel appended, and the
//     DRAM bytes each format moves per sweep.
//
// Acceptance gates, evaluated on the largest paper-suite model (the bench
// exits non-zero when one fails, so the CI smoke run doubles as a
// regression gate):
//   * correctness: stencil sweeps match the CSR operator to 1e-12 on every
//     model (always enforced, every scale);
//   * measured: best stencil mode >= 2x the CSR operator's sweep throughput.
//     Only enforced when the CSR working set exceeds the last-level cache
//     (>= 8 MB): the stencil's advantage is eliminating memory traffic, and
//     at tiny scale the CSR matrix is cache-resident so there is no traffic
//     to eliminate — the number is printed as advisory there;
//   * modeled: stencil DRAM bytes <= 0.5x the ELL+DIA hybrid's.
#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/stencil.hpp"
#include "gpusim/format_sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "solver/operators.hpp"
#include "solver/stencil_operator.hpp"
#include "solver/vector_ops.hpp"
#include "util/simd.hpp"
#include "util/table.hpp"

using namespace cmesolve;

namespace {

struct Case {
  std::string name;
  core::ReactionNetwork network;
  core::State initial;
  bool paper = true;  ///< gates run on the largest paper model only
};

std::vector<Case> cases(core::models::SuiteScale scale) {
  std::vector<Case> out;
  for (auto& m : core::models::paper_suite(scale)) {
    out.push_back({m.name, std::move(m.network), std::move(m.initial), true});
  }
  core::models::FutileCycleParams fp;
  switch (scale) {
    case core::models::SuiteScale::kTiny:
      fp.substrate_total = 60;
      fp.enzyme1_total = fp.enzyme2_total = 2;
      break;
    case core::models::SuiteScale::kSmall:
      fp.substrate_total = 120;
      fp.enzyme1_total = fp.enzyme2_total = 3;
      break;
    case core::models::SuiteScale::kMedium:
      fp.substrate_total = 240;
      fp.enzyme1_total = fp.enzyme2_total = 4;
      break;
  }
  out.push_back({"futile-cycle", core::models::futile_cycle(fp),
                 core::models::futile_cycle_initial(fp), false});
  return out;
}

struct Measured {
  real_t seconds = 0.0;  ///< per sweep
  real_t gflops = 0.0;
  real_t gbps = 0.0;  ///< effective: format bytes / measured time
  bool perf = false;  ///< hardware counters covered the sweep window
  std::uint64_t measured_bytes = 0;  ///< perf LLC-misses x 64, per sweep
};

/// Time repeated y = (L+U)x sweeps: one calibration sweep sizes the
/// repetition count (~120 ms per trial), then the best of three trials is
/// reported so scheduling noise biases high, not low. When the process can
/// open hardware counters, one extra counted window attributes measured
/// DRAM traffic (LLC misses x cache line) to the same sweep, giving the
/// modeled/effective byte numbers a measured crosscheck.
template <class Op>
Measured measure_sweeps(const Op& op, std::span<const real_t> x,
                        std::span<real_t> y, std::uint64_t bytes_per_sweep,
                        obs::PerfGroup* perf) {
  using clock = std::chrono::steady_clock;
  const auto sweep_seconds = [&](int reps) {
    const auto t0 = clock::now();
    for (int i = 0; i < reps; ++i) op.multiply(x, y);
    return std::chrono::duration<real_t>(clock::now() - t0).count() / reps;
  };
  const real_t t1 = std::max(sweep_seconds(1), 1e-9);
  const int reps =
      static_cast<int>(std::clamp(0.12 / t1, 3.0, 100'000.0));
  real_t best = std::numeric_limits<real_t>::infinity();
  for (int trial = 0; trial < 3; ++trial) {
    best = std::min(best, sweep_seconds(reps));
  }
  Measured m;
  m.seconds = best;
  m.gflops = 2.0 * static_cast<real_t>(op.offdiag_nnz()) / best / 1e9;
  m.gbps = static_cast<real_t>(bytes_per_sweep) / best / 1e9;
  if (perf != nullptr && perf->available()) {
    perf->start();
    for (int i = 0; i < reps; ++i) op.multiply(x, y);
    const obs::PerfSample s = perf->stop();
    m.perf = s.available;
    m.measured_bytes = s.dram_bytes() / static_cast<std::uint64_t>(reps);
  }
  return m;
}

real_t max_rel_diff(std::span<const real_t> a, std::span<const real_t> b) {
  real_t worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const real_t scale = std::max({std::abs(a[i]), std::abs(b[i]), 1.0});
    worst = std::max(worst, std::abs(a[i] - b[i]) / scale);
  }
  return worst;
}

std::string mb(std::uint64_t bytes) {
  return TextTable::num(static_cast<real_t>(bytes) / 1e6, 2);
}

}  // namespace

int main(int argc, char** argv) {
  const auto scale = bench::scale_name(argc, argv);
  const auto dev = gpusim::DeviceSpec::gtx580();
  bench::report_context("spmv_matrix_free", scale, &dev);
  // Hardware-counter attribution: measured DRAM bytes ride next to the
  // modeled/effective numbers when perf_event_open works here.
  obs::PerfGroup perf_group;
  const bool perf_ok = perf_group.available();
  std::cout << "Matrix-free stencil SpMV vs stored formats (scale=" << scale
            << ", sim device " << dev.name << ", hw counters "
            << (perf_ok ? "on" : "unavailable") << ")\n\n";

  constexpr real_t kParityGate = 1e-12;   // stencil vs CSR sweep agreement
  constexpr real_t kSpeedupGate = 2.0;    // measured host throughput
  constexpr real_t kBytesGate = 0.5;      // modeled DRAM bytes vs ELL+DIA
  // The measured gate targets the memory-bound regime: below this working
  // set the CSR baseline runs from cache and the comparison is meaningless.
  constexpr std::uint64_t kMemoryBoundBytes = 8u << 20;

  TextTable table({"network", "rows", "box", "nnz/row", "CSR GF/s",
                   "recomp GF/s", "cache GF/s", "speedup", "DRAM st/hyb"});
  bool parity_ok = true;
  bool simd_bitwise_ok = true;
  real_t simd_speedup = 0.0;  // active ISA vs forced-scalar, largest model
  real_t gate_speedup = 0.0;
  real_t gate_bytes_ratio = std::numeric_limits<real_t>::infinity();
  std::string gate_model;
  index_t gate_rows = 0;
  std::uint64_t gate_working_set = 0;

  for (auto& c : cases(core::models::parse_scale(scale))) {
    const core::StateSpace space(c.network, c.initial, 20'000'000);
    const auto a = core::rate_matrix(space);
    // Measured baseline is the plain CSR Jacobi operator (the acceptance
    // gate's reference); the stored-format GPU comparison below still
    // covers the ELL/DIA hybrids.
    const solver::CsrOperator csr_op(a);
    const solver::StencilOperator recompute(c.network, c.initial);
    const solver::StencilOperator cached(recompute.table(),
                                         solver::StencilMode::kPropensityCache);
    const index_t n = space.size();
    const index_t box = recompute.nrows();
    const auto nr = static_cast<std::size_t>(c.network.num_reactions());

    // Same probability-vector input everywhere; the stencil sweeps run on
    // the conservation-reduced box through scatter/gather.
    const auto x = bench::uniform_vector(n);
    std::vector<real_t> y_csr(static_cast<std::size_t>(n));
    std::vector<real_t> x_box(static_cast<std::size_t>(box));
    std::vector<real_t> y_box(static_cast<std::size_t>(box));
    std::vector<real_t> y_stencil(static_cast<std::size_t>(n));
    recompute.scatter_from(space, x, x_box);

    // Correctness gate: both stencil modes match the CSR operator.
    csr_op.multiply(x, y_csr);
    real_t parity = 0.0;
    for (const auto* op : {&recompute, &cached}) {
      op->multiply(x_box, y_box);
      op->gather_to(space, y_box, y_stencil);
      parity = std::max(parity, max_rel_diff(y_csr, y_stencil));
    }
    parity_ok = parity_ok && parity <= kParityGate;

    // SIMD dispatch parity gate: the active ISA's sweep must be BITWISE the
    // forced-scalar one in both stencil modes (the kernel layer vectorizes
    // across states, never inside a row's reduction, so the bits cannot
    // differ — this catches any kernel that breaks that contract).
    bool simd_bitwise = true;
    {
      const util::simd::Isa active = util::simd::active_isa();
      std::vector<real_t> y_scalar(static_cast<std::size_t>(box));
      for (const auto* op : {&recompute, &cached}) {
        util::simd::force_isa(util::simd::Isa::kScalar);
        op->multiply(x_box, y_scalar);
        util::simd::force_isa(active);
        op->multiply(x_box, y_box);
        for (index_t i = 0; i < box; ++i) {
          const auto iu = static_cast<std::size_t>(i);
          simd_bitwise = simd_bitwise &&
                         std::bit_cast<std::uint64_t>(y_scalar[iu]) ==
                             std::bit_cast<std::uint64_t>(y_box[iu]);
        }
      }
      util::simd::reset_forced_isa();
    }
    simd_bitwise_ok = simd_bitwise_ok && simd_bitwise;

    // Measured host sweeps. Effective bytes per sweep: CSR streams values,
    // column indices, and row pointers on top of x and y; recompute touches
    // only the box vectors; cache mode adds one real_t per (reaction, row).
    const std::uint64_t csr_bytes =
        static_cast<std::uint64_t>(csr_op.offdiag_nnz()) * 12u +
        static_cast<std::uint64_t>(n + 1) * 4u +
        static_cast<std::uint64_t>(n) * 16u;
    const std::uint64_t box_vec_bytes = static_cast<std::uint64_t>(box) * 16u;
    const std::uint64_t cache_bytes =
        box_vec_bytes + static_cast<std::uint64_t>(box) * 8u * nr;
    const auto m_csr = measure_sweeps(csr_op, x, y_csr, csr_bytes,
                                      &perf_group);
    const auto m_rec = measure_sweeps(recompute, x_box, y_box, box_vec_bytes,
                                      &perf_group);
    const auto m_cache = measure_sweeps(cached, x_box, y_box, cache_bytes,
                                        &perf_group);
    const real_t speedup = m_csr.seconds / std::min(m_rec.seconds,
                                                    m_cache.seconds);

    // Modeled GPU sweep: stored formats on the enumerated-space matrix,
    // stencil kernel on the box.
    std::vector<real_t> y_model(static_cast<std::size_t>(n));
    const auto sweep =
        gpusim::format_sweep(dev, a, x, y_model, recompute.table(), x_box,
                             y_box);
    std::uint64_t hybrid_bytes = 0;
    std::uint64_t stencil_bytes = 0;
    for (const auto& e : sweep.entries) {
      if (e.format == "ell-dia") hybrid_bytes = e.stats.traffic.dram_bytes;
      if (e.format == "stencil") stencil_bytes = e.stats.traffic.dram_bytes;
    }
    const real_t bytes_ratio =
        hybrid_bytes > 0 ? static_cast<real_t>(stencil_bytes) /
                               static_cast<real_t>(hybrid_bytes)
                         : std::numeric_limits<real_t>::infinity();

    if (c.paper && n > gate_rows) {
      gate_rows = n;
      gate_model = c.name;
      gate_speedup = speedup;
      gate_bytes_ratio = bytes_ratio;
      gate_working_set = csr_bytes;
      // Advisory SIMD dispatch speedup on the gate model: the cached sweep
      // under the active ISA vs forced scalar. The single-RHS sweep is
      // memory-bound, so this is informational, not gated — the batched
      // operator (bench/ensemble_batch) carries the enforced SIMD gate.
      util::simd::force_isa(util::simd::Isa::kScalar);
      const auto m_scalar =
          measure_sweeps(cached, x_box, y_box, cache_bytes, nullptr);
      util::simd::reset_forced_isa();
      simd_speedup = m_scalar.seconds / m_cache.seconds;
    }

    table.add_row({c.name, TextTable::count(n), TextTable::count(box),
                   TextTable::num(static_cast<real_t>(a.nnz()) /
                                      static_cast<real_t>(n),
                                  1),
                   TextTable::num(m_csr.gflops), TextTable::num(m_rec.gflops),
                   TextTable::num(m_cache.gflops),
                   TextTable::num(speedup, 2) + "x",
                   mb(stencil_bytes) + "/" + mb(hybrid_bytes) + " MB"});

    // Measured DRAM attribution next to the modeled/effective numbers: the
    // host CSR sweep's counted traffic vs the bytes the format obligates.
    if (perf_ok) {
      std::printf(
          "  %s: measured DRAM/sweep (LLC misses x 64) csr %s MB vs "
          "format %s MB, recompute %s MB, cache %s MB vs format %s MB\n",
          c.name.c_str(), mb(m_csr.measured_bytes).c_str(),
          mb(csr_bytes).c_str(), mb(m_rec.measured_bytes).c_str(),
          mb(m_cache.measured_bytes).c_str(), mb(cache_bytes).c_str());
    }

    const std::string key = "spmv_mf." + c.name;
    obs::gauge(key + ".parity", parity);
    // Wall-clock-derived throughput and counted traffic vary run to run —
    // volatile so the deterministic ledger section stays machine-portable.
    obs::gauge(key + ".csr_gflops", m_csr.gflops, /*is_volatile=*/true);
    obs::gauge(key + ".recompute_gflops", m_rec.gflops, /*is_volatile=*/true);
    obs::gauge(key + ".cache_gflops", m_cache.gflops, /*is_volatile=*/true);
    obs::gauge(key + ".csr_gbps", m_csr.gbps, /*is_volatile=*/true);
    obs::gauge(key + ".recompute_gbps", m_rec.gbps, /*is_volatile=*/true);
    obs::gauge(key + ".cache_gbps", m_cache.gbps, /*is_volatile=*/true);
    obs::gauge(key + ".speedup", speedup, /*is_volatile=*/true);
    obs::gauge(key + ".modeled_stencil_dram_bytes",
               static_cast<real_t>(stencil_bytes));
    obs::gauge(key + ".modeled_hybrid_dram_bytes",
               static_cast<real_t>(hybrid_bytes));
    if (perf_ok) {
      obs::gauge(key + ".measured_csr_dram_bytes",
                 static_cast<real_t>(m_csr.measured_bytes),
                 /*is_volatile=*/true);
      obs::gauge(key + ".measured_recompute_dram_bytes",
                 static_cast<real_t>(m_rec.measured_bytes),
                 /*is_volatile=*/true);
      obs::gauge(key + ".measured_cache_dram_bytes",
                 static_cast<real_t>(m_cache.measured_bytes),
                 /*is_volatile=*/true);
    }
  }

  std::cout << table.render() << "\n";

  const bool memory_bound = gate_working_set >= kMemoryBoundBytes;
  const bool speedup_ok = !memory_bound || gate_speedup >= kSpeedupGate;
  const bool bytes_ok = gate_bytes_ratio <= kBytesGate;
  std::printf(
      "gates on %s (%d rows, CSR working set %.1f MB):\n"
      "  parity <= %.0e everywhere          %s\n"
      "  measured speedup %.2fx >= %.1fx      %s\n"
      "  modeled DRAM ratio %.3f <= %.2f     %s\n"
      "  simd dispatch (%s) bitwise == scalar  %s\n"
      "  simd sweep speedup %.2fx vs scalar   advisory (memory-bound)\n",
      gate_model.c_str(), gate_rows,
      static_cast<real_t>(gate_working_set) / 1e6, kParityGate,
      parity_ok ? "PASS" : "FAIL", gate_speedup, kSpeedupGate,
      !memory_bound ? "advisory (cache-resident)"
      : gate_speedup >= kSpeedupGate ? "PASS"
                                     : "FAIL",
      gate_bytes_ratio, kBytesGate, bytes_ok ? "PASS" : "FAIL",
      util::simd::active_isa_name(), simd_bitwise_ok ? "PASS" : "FAIL",
      simd_speedup);

  obs::gauge("spmv_mf.gate.speedup", gate_speedup, /*is_volatile=*/true);
  obs::gauge("spmv_mf.gate.dram_ratio", gate_bytes_ratio);
  // Deterministic AND machine-portable: 1.0 on every ISA by construction.
  obs::gauge("spmv_mf.gate.simd_bitwise", simd_bitwise_ok ? 1.0 : 0.0);
  obs::gauge("spmv_mf.gate.simd_speedup", simd_speedup, /*is_volatile=*/true);
  obs::gauge("spmv_mf.perf_available", perf_ok ? 1.0 : 0.0,
             /*is_volatile=*/true);

  const bool ok = parity_ok && simd_bitwise_ok && speedup_ok && bytes_ok;
  std::cout << (ok ? "spmv_matrix_free: PASS" : "spmv_matrix_free: FAIL")
            << "\n";
  obs::flush_outputs();  // writes the run report when CMESOLVE_REPORT is set
  return ok ? 0 : 1;
}
