// Regenerates Table I: structural fingerprints of the 7 reaction-rate
// matrices (n, nnz, Matrix Market disk size, nonzeros-per-row statistics,
// variability/skew factors, diagonal densities).
//
// Usage: table1_matrices [tiny|small|medium]   (or env CMESOLVE_SCALE)
#include <cstdlib>
#include <iostream>

#include "bench_common.hpp"
#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "obs/metrics.hpp"
#include "sparse/format_stats.hpp"
#include "util/table.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  const std::string scale_name = bench::scale_name(argc, argv);
  const auto scale = core::models::parse_scale(scale_name);
  bench::report_context("table1_matrices", scale_name);

  std::cout << "Table I: sparse linear systems from sample biological "
               "networks (scale="
            << scale_name << ")\n\n";

  TextTable table({"network", "n", "nnz", "disk[MB]", "min", "mu", "max",
                   "sigma", "s/mu", "(max-mu)/mu", "d{0}", "d{-1,0,+1}"});

  for (auto& model : core::models::paper_suite(scale)) {
    const core::StateSpace space(model.network, model.initial, 20'000'000);
    const auto a = core::rate_matrix(space);
    const auto f = sparse::fingerprint(a);
    table.add_row({model.name, TextTable::count(f.n),
                   TextTable::count(static_cast<long long>(f.nnz)),
                   TextTable::num(f.disk_mb, 2), std::to_string(f.row_min),
                   TextTable::num(f.row_mean, 2), std::to_string(f.row_max),
                   TextTable::num(f.row_sigma, 2),
                   TextTable::num(f.variability, 2), TextTable::num(f.skew, 2),
                   TextTable::num(f.d0, 2), TextTable::num(f.dband, 2)});

    // Structural fingerprints are pure functions of the model + scale —
    // deterministic ledger metrics, exact-compared by cme_bench_diff.
    const std::string key = "table1." + model.name;
    obs::gauge(key + ".n", static_cast<double>(f.n));
    obs::gauge(key + ".nnz", static_cast<double>(f.nnz));
    obs::gauge(key + ".row_mean", f.row_mean);
    obs::gauge(key + ".row_sigma", f.row_sigma);
    obs::gauge(key + ".variability", f.variability);
    obs::gauge(key + ".skew", f.skew);
    obs::gauge(key + ".d0", f.d0);
    obs::gauge(key + ".dband", f.dband);
  }
  std::cout << table.render();
  std::cout << "\nPaper reference (Table I, full-scale matrices): same "
               "per-network fingerprints —\n"
               "regular rows for toggle/brusselator/schnakenberg "
               "(s/mu <= 0.12), irregular for phage-lambda\n"
               "(s/mu ~ 0.15-0.30, skew 0.41-0.59); d{0} = 1.00 everywhere; "
               "band density >= 0.66 for all.\n";
  obs::flush_outputs();
  return 0;
}
