// Regenerates Table II: double-precision SpMV performance of the ELL format
// versus the ELL+DIA hybrid on the 7 CME matrices (simulated GTX580,
// b = 256, 48 KB L1).
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/kernels.hpp"
#include "obs/metrics.hpp"
#include "sparse/ell.hpp"
#include "sparse/hybrid.hpp"
#include "util/table.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  const auto scale = bench::scale_name(argc, argv);
  const auto dev = gpusim::DeviceSpec::gtx580();
  bench::report_context("table2_ell_dia", scale, &dev);
  std::cout << "Table II: ELL vs ELL+DIA SpMV, double precision, simulated "
            << dev.name << " (scale=" << scale << ")\n\n";

  TextTable table({"network", "ELL [GFLOPS]", "ELL+DIA [GFLOPS]", "speedup"});
  real_t sum_ell = 0;
  real_t sum_hyb = 0;
  int rows = 0;

  for (auto& m : bench::suite_matrices(scale)) {
    const auto x = bench::uniform_vector(m.a.ncols);
    std::vector<real_t> y(static_cast<std::size_t>(m.a.nrows));

    const auto ell = sparse::ell_from_csr(m.a);
    const auto g_ell = gpusim::simulate_spmv(dev, ell, x, y);

    const auto hybrid =
        sparse::ell_dia_from_csr(m.a, sparse::select_band_offsets(m.a));
    const auto g_hyb = gpusim::simulate_spmv(dev, hybrid, x, y);

    table.add_row({m.name, TextTable::num(g_ell.gflops),
                   TextTable::num(g_hyb.gflops),
                   TextTable::num(g_hyb.gflops / g_ell.gflops, 2)});
    sum_ell += g_ell.gflops;
    sum_hyb += g_hyb.gflops;
    ++rows;

    // Simulated-device numbers are deterministic (no host wall clock).
    obs::gauge("table2." + m.name + ".ell_gflops", g_ell.gflops);
    obs::gauge("table2." + m.name + ".hybrid_gflops", g_hyb.gflops);
  }
  obs::gauge("table2.avg_ell_gflops", sum_ell / rows);
  obs::gauge("table2.avg_hybrid_gflops", sum_hyb / rows);
  obs::gauge("table2.avg_speedup", sum_hyb / sum_ell);
  table.add_row({"Average", TextTable::num(sum_ell / rows),
                 TextTable::num(sum_hyb / rows),
                 TextTable::num(sum_hyb / sum_ell, 2)});
  std::cout << table.render();
  std::cout << "\nPaper reference (Table II): ELL avg 16.032, ELL+DIA avg "
               "16.972 GFLOPS (1.05x);\nbiggest gains where the {-1,0,+1} "
               "band density is 1.0 (brusselator 1.15x, schnakenberg 1.12x).\n";
  obs::flush_outputs();
  return 0;
}
