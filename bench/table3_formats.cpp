// Regenerates Table III: ELL vs sliced ELL (original formulation,
// slice = block = 256) vs warp-grained sliced ELL (slice = 32, block = 256,
// local rearrangement) vs the clSpMV autotuner model.
#include <iostream>

#include "bench_common.hpp"
#include "gpusim/clspmv_model.hpp"
#include "gpusim/kernels.hpp"
#include "obs/metrics.hpp"
#include "sparse/ell.hpp"
#include "sparse/sliced_ell.hpp"
#include "util/table.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  const auto scale = bench::scale_name(argc, argv);
  const auto dev = gpusim::DeviceSpec::gtx580();
  bench::report_context("table3_formats", scale, &dev);
  std::cout << "Table III: ELL vs Sliced ELL vs Warp-grained ELL vs clSpMV "
               "(simulated " << dev.name << ", scale=" << scale << ")\n\n";

  TextTable table({"network", "ELL", "SlicedELL", "WarpedELL", "clSpMV",
                   "warped/clSpMV", "chosen"});
  real_t sums[4] = {0, 0, 0, 0};
  int rows = 0;

  for (auto& m : bench::suite_matrices(scale)) {
    const auto x = bench::uniform_vector(m.a.ncols);
    std::vector<real_t> y(static_cast<std::size_t>(m.a.nrows));

    const auto g_ell =
        gpusim::simulate_spmv(dev, sparse::ell_from_csr(m.a), x, y);
    const auto g_sliced = gpusim::simulate_spmv(
        dev, sparse::sliced_ell_from_csr(m.a, /*slice_size=*/256), x, y);
    const auto g_warped =
        gpusim::simulate_spmv(dev, sparse::warped_ell_from_csr(m.a), x, y);
    const auto cl = gpusim::clspmv_autotune(dev, m.a);

    table.add_row({m.name, TextTable::num(g_ell.gflops),
                   TextTable::num(g_sliced.gflops),
                   TextTable::num(g_warped.gflops),
                   TextTable::num(cl.normalized_gflops),
                   TextTable::num(g_warped.gflops / cl.normalized_gflops, 2),
                   cl.chosen});
    sums[0] += g_ell.gflops;
    sums[1] += g_sliced.gflops;
    sums[2] += g_warped.gflops;
    sums[3] += cl.normalized_gflops;
    ++rows;

    // Per-model run-report rows: every value here is simulated throughput,
    // hence deterministic.
    const std::string key = "table3." + m.name;
    obs::gauge(key + ".ell_gflops", g_ell.gflops);
    obs::gauge(key + ".sliced_ell_gflops", g_sliced.gflops);
    obs::gauge(key + ".warped_ell_gflops", g_warped.gflops);
    obs::gauge(key + ".clspmv_gflops", cl.normalized_gflops);
  }
  table.add_row({"Average", TextTable::num(sums[0] / rows),
                 TextTable::num(sums[1] / rows), TextTable::num(sums[2] / rows),
                 TextTable::num(sums[3] / rows),
                 TextTable::num(sums[2] / sums[3], 2), ""});
  std::cout << table.render();
  std::cout << "\nPaper reference (Table III): averages 16.032 / 16.346 / "
               "17.320 / 15.078 GFLOPS —\nwarped ELL beats the original "
               "sliced ELL by ~6% and clSpMV by ~24%.\n";
  obs::flush_outputs();  // writes the run report when CMESOLVE_REPORT is set
  return 0;
}
