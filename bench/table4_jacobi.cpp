// Regenerates Table IV: Jacobi steady-state solution of the 7 CME systems.
// Columns: iterations to the stopping criterion, final normalized residual,
// measured host CSR+DIA GFLOPS (the paper's "Intel MKL" multicore baseline)
// and simulated-GPU warp-grained-ELL+DIA GFLOPS.
//
// eps = 1e-8, max 1e6 iterations, residual every 100 iterations — the
// paper's settings (Sec. VII-D). Iteration counts depend on matrix size, so
// at reduced scale they are smaller than the paper's.
#include <iostream>

#include "bench_common.hpp"
#include "obs/metrics.hpp"
#include "solver/gpu_jacobi.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"
#include "util/table.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  const auto scale = bench::scale_name(argc, argv);
  const auto dev = gpusim::DeviceSpec::gtx580();
  bench::report_context("table4_jacobi", scale, &dev);
  std::cout << "Table IV: Jacobi steady-state solve, eps=1e-8 "
               "(CPU baseline measured on this host; GPU simulated "
            << dev.name << "; scale=" << scale << ")\n\n";

  solver::JacobiOptions opt;
  opt.eps = 1e-8;
  opt.max_iterations = 1'000'000;
  opt.check_every = 100;

  TextTable table({"network", "iterations", "residual", "stop",
                   "CSR+DIA [GFLOPS]", "WarpELL+DIA [GFLOPS]", "speedup"});
  real_t sum_cpu = 0;
  real_t sum_gpu = 0;
  int rows = 0;

  for (auto& m : bench::suite_matrices(scale)) {
    // Host baseline: CSR+DIA, wall-clock measured.
    solver::CsrDiaOperator cpu_op(m.a);
    std::vector<real_t> x_cpu(static_cast<std::size_t>(m.a.nrows));
    solver::fill_uniform(x_cpu);
    const auto cpu = solver::jacobi_solve(cpu_op, m.a.inf_norm(), x_cpu, opt);

    // Simulated GPU: warp-grained sliced ELL + DIA.
    std::vector<real_t> x_gpu(static_cast<std::size_t>(m.a.nrows));
    solver::fill_uniform(x_gpu);
    const auto gpu = solver::gpu_jacobi_solve(dev, m.a, x_gpu, opt);

    char resid[32];
    std::snprintf(resid, sizeof(resid), "%.3e", gpu.result.residual);
    table.add_row({m.name, TextTable::count(static_cast<long long>(
                               gpu.result.iterations)),
                   resid, to_string(gpu.result.reason),
                   TextTable::num(cpu.gflops), TextTable::num(gpu.sim_gflops),
                   TextTable::num(gpu.sim_gflops / cpu.gflops, 2) + "x"});
    sum_cpu += cpu.gflops;
    sum_gpu += gpu.sim_gflops;
    ++rows;

    // Per-model run-report rows: simulated numbers are deterministic, the
    // host baseline is wall-clock and goes to the volatile section.
    const std::string key = "table4." + m.name;
    obs::gauge(key + ".iterations",
               static_cast<real_t>(gpu.result.iterations));
    obs::gauge(key + ".residual", gpu.result.residual);
    obs::gauge(key + ".sim_gflops", gpu.sim_gflops);
    obs::gauge(key + ".cpu_gflops", cpu.gflops, /*is_volatile=*/true);
  }
  table.add_row({"Average", "", "", "", TextTable::num(sum_cpu / rows),
                 TextTable::num(sum_gpu / rows),
                 TextTable::num(sum_gpu / sum_cpu, 2) + "x"});
  std::cout << table.render();
  std::cout << "\nPaper reference (Table IV): CSR+DIA avg 0.907 GFLOPS on a "
               "64-core Opteron vs 14.212 GFLOPS\non the GTX580 (15.67x). "
               "This host's baseline differs (single desktop core), so the "
               "speedup\ncolumn reflects simulated-GPU vs this-host-CPU.\n";
  obs::flush_outputs();  // writes the run report when CMESOLVE_REPORT is set
  return 0;
}
