// Transient engine shoot-out: uniformization vs Krylov expm(tA)v.
//
// Uniformization spends ~lambda*t SpMVs regardless of what the solution
// does, so a stiff generator (rate spread >= 1e4) pays for its fastest
// timescale over the entire horizon. The Krylov propagator adapts its
// sub-step to the solution instead: once the fast modes decay, tau grows
// and the SpMV count collapses. This bench pins that claim — on the stiff
// family the Krylov engine must need at most HALF the matvecs (exit code 1
// otherwise), and the two engines must agree in L1 at the horizon.
#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/reaction_network.hpp"
#include "core/state_space.hpp"
#include "obs/metrics.hpp"
#include "solver/krylov_expm.hpp"
#include "solver/operators.hpp"
#include "solver/transient.hpp"
#include "util/table.hpp"

using namespace cmesolve;

namespace {

struct Family {
  std::string name;
  core::ReactionNetwork net;
  core::State initial;
  real_t horizon = 1.0;
  bool stiff = false;  ///< subject to the >= 2x matvec gate
};

/// Immigration-death relaxation: the plain, non-stiff baseline family.
Family relaxation(int cap) {
  Family f;
  f.name = "relaxation";
  const int x = f.net.add_species("X", cap);
  f.net.add_reaction("birth", 8.0, {}, {{x, +1}});
  f.net.add_reaction("death", 1.0, {{x, 1}}, {{x, -1}});
  f.initial = core::State{0};
  f.horizon = 4.0;
  return f;
}

/// Toggle switch: bistable, moderately coupled, still non-stiff.
Family toggle(int cap) {
  Family f;
  f.name = "toggle";
  core::models::ToggleSwitchParams tp;
  tp.cap_a = tp.cap_b = cap;
  f.net = core::models::toggle_switch(tp);
  f.initial = core::models::toggle_switch_initial(tp);
  f.horizon = 2.0;
  return f;
}

/// Stiff rate cliff: a 2e4/1e4 two-way switch gates a unit-rate production
/// module -> rate spread 4e4. Uniformization pays ~2e4 SpMVs per unit
/// time; the Krylov engine rides the slow manifold after the first steps.
Family stiff_cliff(int cap) {
  Family f;
  f.name = "stiff-cliff";
  const int g = f.net.add_species("G", 1);
  const int p = f.net.add_species("P", cap);
  f.net.add_reaction("g_on", 2.0e4, {}, {{g, +1}});
  f.net.add_reaction("g_off", 1.0e4, {{g, 1}}, {{g, -1}});
  f.net.add_reaction("produce", 1.0, {{g, 1}}, {{p, +1}});
  f.net.add_reaction("degrade", 0.5, {{p, 1}}, {{p, -1}});
  f.initial = core::State{0, 0};
  f.horizon = 1.0;
  f.stiff = true;
  return f;
}

std::vector<Family> families(const std::string& scale) {
  if (scale == "tiny") {
    return {relaxation(30), toggle(6), stiff_cliff(10)};
  }
  if (scale == "medium") {
    return {relaxation(400), toggle(14), stiff_cliff(24)};
  }
  return {relaxation(100), toggle(10), stiff_cliff(16)};  // small
}

}  // namespace

int main(int argc, char** argv) {
  const std::string scale = bench::scale_name(argc, argv);
  bench::report_context("transient_expm", scale);
  std::cout << "Transient exp(tA)v: uniformization vs Krylov (scale=" << scale
            << ")\n\n";

  TextTable table({"family", "states", "unif matvecs", "unif steps",
                   "krylov matvecs", "krylov steps", "rej", "L1 agree"});

  bool gate_ok = true;
  for (auto& f : families(scale)) {
    const core::StateSpace space(f.net, f.initial, 20'000'000);
    const auto a = core::rate_matrix(space);
    const solver::CsrDiaOperator op(a);
    const auto n = static_cast<std::size_t>(a.nrows);
    const auto root = static_cast<std::size_t>(space.find(f.initial));

    std::vector<real_t> pu(n, 0.0);
    pu[root] = 1.0;
    solver::TransientOptions uopt;  // eps 1e-12
    const auto ru =
        solver::transient_solve(op, f.horizon, std::span<real_t>(pu), uopt);

    std::vector<real_t> pk(n, 0.0);
    pk[root] = 1.0;
    solver::KrylovExpmOptions kopt;
    kopt.tol = 1e-12;
    const auto rk =
        solver::krylov_expm_solve(op, f.horizon, std::span<real_t>(pk), kopt);

    real_t l1 = 0.0;
    for (std::size_t i = 0; i < n; ++i) l1 += std::abs(pu[i] - pk[i]);
    const bool agree = l1 <= 1e-9 && !ru.truncated_early &&
                       !rk.truncated_early && !rk.tol_not_met;

    char l1s[32];
    std::snprintf(l1s, sizeof(l1s), "%.2e", l1);
    table.add_row(
        {f.name, TextTable::count(static_cast<long long>(a.nrows)),
         TextTable::count(static_cast<long long>(ru.matvecs)),
         TextTable::count(static_cast<long long>(ru.steps)),
         TextTable::count(static_cast<long long>(rk.matvecs)),
         TextTable::count(static_cast<long long>(rk.steps)),
         TextTable::count(static_cast<long long>(rk.rejections)), l1s});

    // Matvec/step counts are deterministic engine outputs (same contract
    // as solver iteration counts); the raw L1 value is libm-sensitive, so
    // the ledger records the boolean agreement instead.
    const std::string key = "texp." + f.name;
    obs::gauge(key + ".unif_matvecs", static_cast<double>(ru.matvecs));
    obs::gauge(key + ".unif_steps", static_cast<double>(ru.steps));
    obs::gauge(key + ".krylov_matvecs", static_cast<double>(rk.matvecs));
    obs::gauge(key + ".krylov_steps", static_cast<double>(rk.steps));
    obs::gauge(key + ".krylov_rejections", static_cast<double>(rk.rejections));
    obs::gauge(key + ".agree", agree ? 1.0 : 0.0);

    if (!agree) {
      std::cout << "FAIL " << f.name << ": engines disagree (L1=" << l1
                << ")\n";
      gate_ok = false;
    }
    if (f.stiff && rk.matvecs * 2 > ru.matvecs) {
      std::cout << "FAIL " << f.name << ": Krylov took " << rk.matvecs
                << " matvecs vs uniformization " << ru.matvecs
                << " (< 2x advantage on the stiff family)\n";
      gate_ok = false;
    }
  }
  std::cout << table.render();
  std::cout << "\nGate: stiff family must show >= 2x fewer Krylov matvecs; "
               "engines must agree to 1e-9 in L1.\n"
            << (gate_ok ? "GATE OK\n" : "GATE FAILED\n");
  obs::flush_outputs();
  return gate_ok ? 0 : 1;
}
