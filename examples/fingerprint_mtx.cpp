// Format advisor: print the Table-I structural fingerprint of an arbitrary
// Matrix Market file and recommend a storage format with the paper's
// decision rules (Secs. V-VI):
//   * row-length variability/skew low  -> plain ELL is fine
//   * {-1,0,+1} band density >= 0.66   -> add the DIA band
//   * variability/skew high            -> warp-grained sliced ELL
// The simulated-GPU throughput of each candidate is printed alongside.
//
// Usage: fingerprint_mtx <matrix.mtx>
#include <iostream>

#include "gpusim/kernels.hpp"
#include "sparse/ell.hpp"
#include "sparse/format_stats.hpp"
#include "sparse/hybrid.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/sliced_ell.hpp"
#include "util/table.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: fingerprint_mtx <matrix.mtx>\n";
    return 2;
  }
  sparse::Csr a;
  try {
    a = sparse::read_matrix_market_file(argv[1]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }

  const auto f = sparse::fingerprint(a);
  TextTable stats({"metric", "value"});
  stats.add_row({"rows", TextTable::count(f.n)});
  stats.add_row({"nonzeros", TextTable::count(static_cast<long long>(f.nnz))});
  stats.add_row({"nnz/row min / mu / max",
                 std::to_string(f.row_min) + " / " + TextTable::num(f.row_mean, 2) +
                     " / " + std::to_string(f.row_max)});
  stats.add_row({"variability s/mu", TextTable::num(f.variability, 3)});
  stats.add_row({"skew (max-mu)/mu", TextTable::num(f.skew, 3)});
  stats.add_row({"d{0}", TextTable::num(f.d0, 3)});
  stats.add_row({"d{-1,0,+1}", TextTable::num(f.dband, 3)});
  std::cout << stats.render() << "\n";

  // Candidate formats, timed on the simulated GTX580.
  const auto dev = gpusim::DeviceSpec::gtx580();
  std::vector<real_t> x(static_cast<std::size_t>(a.ncols),
                        1.0 / static_cast<real_t>(a.ncols));
  std::vector<real_t> y(static_cast<std::size_t>(a.nrows));

  TextTable perf({"format", "simulated GFLOPS"});
  perf.add_row({"ELL", TextTable::num(
                           gpusim::simulate_spmv(dev, sparse::ell_from_csr(a),
                                                 x, y)
                               .gflops)});
  perf.add_row({"warped ELL",
                TextTable::num(gpusim::simulate_spmv(
                                   dev, sparse::warped_ell_from_csr(a), x, y)
                                   .gflops)});
  if (f.dband >= 0.66) {
    perf.add_row(
        {"ELL+DIA",
         TextTable::num(gpusim::simulate_spmv(
                            dev, sparse::ell_dia_from_csr(a, {-1, 0, 1}), x, y)
                            .gflops)});
  }
  perf.add_row({"CSR (scalar kernel)",
                TextTable::num(gpusim::simulate_spmv(dev, a, x, y).gflops)});
  std::cout << perf.render() << "\n";

  // The paper's qualitative advice.
  std::cout << "recommendation: ";
  if (f.dband >= 0.66 && f.variability <= 0.15) {
    std::cout << "ELL+DIA — regular rows and a dense diagonal band "
                 "(Sec. V).\n";
  } else if (f.dband >= 0.66) {
    std::cout << "warp-grained sliced ELL + DIA — irregular rows over a "
                 "dense band (Sec. VI).\n";
  } else if (f.variability > 0.15 || f.skew > 0.5) {
    std::cout << "warp-grained sliced ELL — row-length variability is what "
                 "warp slicing absorbs (Sec. VI).\n";
  } else {
    std::cout << "plain ELL — rows are regular and there is no band to "
                 "exploit (Sec. V).\n";
  }
  return 0;
}
