// The paper's generalization claim (Sec. VIII): the GPU steady-state
// pipeline operates on any stochastic rate matrix, not just CME systems.
//
// This example builds the generator of an M/M/c/K queue directly (no
// reaction network), solves it with the same Jacobi solver, and checks the
// result against the closed-form stationary distribution.
//
// Usage: markov_queue [K] [c] [lambda] [mu]
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "util/table.hpp"

using namespace cmesolve;

namespace {

/// Generator of an M/M/c/K queue: arrivals at rate lambda (blocked at K),
/// service at rate min(n, c) * mu. Columns sum to zero.
sparse::Csr queue_generator(int capacity, int servers, real_t lambda,
                            real_t mu) {
  sparse::Coo coo;
  coo.nrows = coo.ncols = capacity + 1;
  for (int n = 0; n <= capacity; ++n) {
    real_t out = 0.0;
    if (n < capacity) {
      coo.add(n + 1, n, lambda);
      out += lambda;
    }
    if (n > 0) {
      const real_t service = static_cast<real_t>(std::min(n, servers)) * mu;
      coo.add(n - 1, n, service);
      out += service;
    }
    coo.add(n, n, -out);
  }
  return sparse::csr_from_coo(std::move(coo));
}

/// Closed-form stationary distribution of M/M/c/K (birth-death balance).
std::vector<real_t> queue_exact(int capacity, int servers, real_t lambda,
                                real_t mu) {
  std::vector<real_t> pi(static_cast<std::size_t>(capacity) + 1);
  pi[0] = 1.0;
  for (int n = 1; n <= capacity; ++n) {
    const real_t service = static_cast<real_t>(std::min(n, servers)) * mu;
    pi[n] = pi[n - 1] * lambda / service;
  }
  real_t sum = 0;
  for (real_t v : pi) sum += v;
  for (real_t& v : pi) v /= sum;
  return pi;
}

}  // namespace

int main(int argc, char** argv) {
  const int capacity = argc > 1 ? std::atoi(argv[1]) : 60;
  const int servers = argc > 2 ? std::atoi(argv[2]) : 3;
  const real_t lambda = argc > 3 ? std::atof(argv[3]) : 2.4;
  const real_t mu = argc > 4 ? std::atof(argv[4]) : 1.0;

  const auto a = queue_generator(capacity, servers, lambda, mu);
  std::cout << "M/M/" << servers << "/" << capacity
            << " queue, lambda=" << lambda << ", mu=" << mu << " ("
            << a.nrows << " states)\n\n";

  solver::CsrDiaOperator op(a);
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(p);
  solver::JacobiOptions opt;
  opt.eps = 1e-12;
  // Birth-death chains are bipartite: damp the Jacobi -1 mode.
  opt.damping = 0.7;
  const auto r = solver::jacobi_solve(op, a.inf_norm(), p, opt);
  std::cout << "jacobi: " << r.iterations << " iterations ("
            << to_string(r.reason) << ")\n\n";

  const auto exact = queue_exact(capacity, servers, lambda, mu);
  real_t max_err = 0;
  real_t mean_jacobi = 0;
  real_t mean_exact = 0;
  for (int n = 0; n <= capacity; ++n) {
    max_err = std::max(max_err, std::abs(p[n] - exact[n]));
    mean_jacobi += n * p[n];
    mean_exact += n * exact[n];
  }

  TextTable table({"quantity", "Jacobi", "closed form"});
  table.add_row({"P(empty)", TextTable::num(p[0], 6),
                 TextTable::num(exact[0], 6)});
  table.add_row({"P(full / loss)", TextTable::num(p[capacity], 6),
                 TextTable::num(exact[capacity], 6)});
  table.add_row({"E[queue length]", TextTable::num(mean_jacobi, 4),
                 TextTable::num(mean_exact, 4)});
  std::cout << table.render();
  std::cout << "\nmax |P_jacobi - P_exact| = " << max_err << "\n";
  return max_err < 1e-9 ? 0 : 1;
}
