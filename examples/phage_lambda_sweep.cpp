// The exploratory system-biology workflow that motivates the paper
// (Sec. I): solve the SAME reaction network under a sweep of rate
// conditions. Here the phage-lambda switch is solved for a range of CI
// synthesis rates and the lysogeny probability P(CI2 occupancy > Cro2
// occupancy) is reported per condition — each sweep point is one complete
// sparse steady-state solve.
//
// The sweep runs through solver::solve_ensemble: the state-space
// enumeration, conservation-law elimination and unit-propensity table are
// built ONCE and shared, the points are reordered along a nearest-neighbor
// continuation chain with warm starts, and the Jacobi sweeps advance all
// points per pass through the batched multi-RHS operator. Per-point
// results are bit-identical to solving each condition alone.
//
// Usage: phage_lambda_sweep [monomer_buffer] [dimer_buffer]
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/models.hpp"
#include "core/stencil.hpp"
#include "solver/batched.hpp"
#include "solver/jacobi.hpp"
#include "solver/stencil_operator.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  const std::int32_t mono = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::int32_t dimer = argc > 2 ? std::atoi(argv[2]) : 4;

  const std::vector<real_t> synth = {1.0, 2.0, 4.0, 6.0, 8.0, 12.0};
  const int k = static_cast<int>(synth.size());

  // One anchor network; every sweep point is the SAME network with the CI
  // synthesis rates rescaled, so the whole sweep shares one stencil
  // structure.
  core::models::PhageLambdaParams params;
  params.cap_ci = params.cap_cro = mono;
  params.cap_ci2 = params.cap_cro2 = dimer;
  const auto net = core::models::phage_lambda(params);
  const auto initial = core::models::phage_lambda_initial(params);

  WallTimer total;
  WallTimer setup;
  const solver::StencilOperator anchor(net, initial);
  const real_t seconds_compile = setup.seconds();

  std::vector<std::vector<real_t>> rates;
  rates.reserve(synth.size());
  for (const real_t s : synth) {
    std::vector<real_t> rk(static_cast<std::size_t>(net.num_reactions()));
    for (int r = 0; r < net.num_reactions(); ++r) {
      rk[static_cast<std::size_t>(r)] = net.reaction(r).rate;
      if (net.reaction(r).name == "synthCI_basal") {
        rk[static_cast<std::size_t>(r)] = s * 0.25;
      } else if (net.reaction(r).name == "synthCI_active") {
        rk[static_cast<std::size_t>(r)] = s;
      }
    }
    rates.push_back(std::move(rk));
  }

  solver::EnsembleOptions eopt;
  eopt.jacobi.eps = 1e-9;
  // Plain Jacobi carries an oscillatory mode on the phage-lambda box; the
  // weighted sweep damps it out.
  eopt.jacobi.damping = 0.95;
  const auto ens = solver::solve_ensemble(anchor.table(), rates, eopt);

  // Observables decoded straight from the box layout: every box row knows
  // its copy numbers (derived counts included), and masked rows carry zero
  // probability.
  const auto& tbl = anchor.table();
  const int ci = net.find_species("CI");
  const int cro = net.find_species("Cro");
  int or_ci[3];
  int or_cro[3];
  for (int s = 0; s < 3; ++s) {
    const std::string suffix = std::to_string(s + 1);
    or_ci[s] = net.find_species("OR" + suffix + "_CI2");
    or_cro[s] = net.find_species("OR" + suffix + "_Cro2");
  }
  const auto active = solver::box_active_rows(tbl);
  index_t rows_active = 0;
  for (const auto a : active) rows_active += a;

  TextTable table({"synth_CI", "microstates", "iterations", "residual",
                   "P(lysogeny)", "E[CI]", "E[Cro]", "gmres", "seconds"});
  core::State x;
  for (int j = 0; j < k; ++j) {
    const auto& pt = ens.points[static_cast<std::size_t>(j)];
    real_t lysogeny = 0;
    real_t mean_ci = 0;
    real_t mean_cro = 0;
    for (index_t i = 0; i < tbl.box_rows(); ++i) {
      const real_t pi = pt.p[static_cast<std::size_t>(i)];
      if (pi == 0.0) continue;
      tbl.decode(i, x);
      int ci_sites = 0;
      int cro_sites = 0;
      for (int s = 0; s < 3; ++s) {
        ci_sites += x[static_cast<std::size_t>(or_ci[s])];
        cro_sites += x[static_cast<std::size_t>(or_cro[s])];
      }
      if (ci_sites > cro_sites) lysogeny += pi;
      mean_ci += pi * x[static_cast<std::size_t>(ci)];
      mean_cro += pi * x[static_cast<std::size_t>(cro)];
    }

    char resid[32];
    std::snprintf(resid, sizeof(resid), "%.2e", pt.jacobi.residual);
    table.add_row(
        {TextTable::num(synth[static_cast<std::size_t>(j)], 1),
         TextTable::count(rows_active),
         TextTable::count(static_cast<long long>(pt.jacobi.iterations)), resid,
         TextTable::num(lysogeny, 4), TextTable::num(mean_ci, 2),
         TextTable::num(mean_cro, 2), pt.gmres_used ? "yes" : "no",
         TextTable::num(pt.jacobi.seconds, 2)});
  }

  const real_t seconds_total = total.seconds();
  std::cout << "Phage-lambda switch: lysogeny commitment vs CI synthesis "
               "rate\n\n"
            << table.render() << "\n";
  std::printf(
      "shared setup: %.3f s stencil compile + %.3f s unit cache, paid ONCE "
      "for all %d points\n"
      "solve: %.3f s total -> %.3f s/point amortized (per-point seconds "
      "above attribute the shared batched sweep)\n"
      "whole sweep: %.3f s — one stencil structure, %d conditions per "
      "sweep, bit-identical to %d independent solves.\n",
      seconds_compile, ens.seconds_setup, k, ens.seconds_total,
      ens.seconds_total / k, seconds_total, k, k);
  return 0;
}
