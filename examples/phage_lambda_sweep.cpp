// The exploratory system-biology workflow that motivates the paper
// (Sec. I): solve the SAME reaction network under a sweep of rate
// conditions. Here the phage-lambda switch is solved for a range of CI
// synthesis rates and the lysogeny probability P(CI2 occupancy > Cro2
// occupancy) is reported per condition — each sweep point is one complete
// sparse linear solve.
//
// Usage: phage_lambda_sweep [monomer_buffer] [dimer_buffer]
#include <cstdlib>
#include <iostream>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  const std::int32_t mono = argc > 1 ? std::atoi(argv[1]) : 8;
  const std::int32_t dimer = argc > 2 ? std::atoi(argv[2]) : 4;

  TextTable table({"synth_CI", "microstates", "iterations", "residual",
                   "P(lysogeny)", "E[CI]", "E[Cro]", "seconds"});

  WallTimer total;
  for (const real_t synth_ci : {1.0, 2.0, 4.0, 6.0, 8.0, 12.0}) {
    core::models::PhageLambdaParams params;
    params.cap_ci = params.cap_cro = mono;
    params.cap_ci2 = params.cap_cro2 = dimer;
    params.synth_ci_basal = synth_ci * 0.25;
    params.synth_ci_active = synth_ci;

    const auto net = core::models::phage_lambda(params);
    const core::StateSpace space(
        net, core::models::phage_lambda_initial(params), 10'000'000);
    const auto a = core::rate_matrix(space);

    solver::WarpedEllDiaOperator op(a);
    std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
    solver::fill_uniform(p);
    solver::JacobiOptions opt;
    opt.eps = 1e-9;
    WallTimer t;
    const auto r = solver::jacobi_solve(op, a.inf_norm(), p, opt);

    // Lysogeny indicator: more operator sites held by CI2 than by Cro2.
    const int ci = net.find_species("CI");
    const int cro = net.find_species("Cro");
    int or_ci[3];
    int or_cro[3];
    for (int s = 0; s < 3; ++s) {
      const std::string suffix = std::to_string(s + 1);
      or_ci[s] = net.find_species("OR" + suffix + "_CI2");
      or_cro[s] = net.find_species("OR" + suffix + "_Cro2");
    }
    real_t lysogeny = 0;
    real_t mean_ci = 0;
    real_t mean_cro = 0;
    for (index_t i = 0; i < space.size(); ++i) {
      int ci_sites = 0;
      int cro_sites = 0;
      for (int s = 0; s < 3; ++s) {
        ci_sites += space.count(i, or_ci[s]);
        cro_sites += space.count(i, or_cro[s]);
      }
      if (ci_sites > cro_sites) lysogeny += p[i];
      mean_ci += p[i] * space.count(i, ci);
      mean_cro += p[i] * space.count(i, cro);
    }

    char resid[32];
    std::snprintf(resid, sizeof(resid), "%.2e", r.residual);
    table.add_row({TextTable::num(synth_ci, 1), TextTable::count(space.size()),
                   TextTable::count(static_cast<long long>(r.iterations)),
                   resid, TextTable::num(lysogeny, 4),
                   TextTable::num(mean_ci, 2), TextTable::num(mean_cro, 2),
                   TextTable::num(t.seconds(), 2)});
  }

  std::cout << "Phage-lambda switch: lysogeny commitment vs CI synthesis "
               "rate\n\n"
            << table.render() << "\ntotal sweep time: " << total.seconds()
            << " s — every row is an independent steady-state solve, the "
               "workload the paper's\nGPU pipeline is built to make "
               "routine.\n";
  return 0;
}
