// Quickstart: enumerate a genetic toggle switch, assemble the reaction-rate
// matrix, solve A P = 0 with the Jacobi iteration on the warp-grained
// sliced-ELL + DIA format (simulated-GPU cost model included), and print the
// most probable microstates. Set CMESOLVE_TRACE=<file> / CMESOLVE_REPORT=
// <file> to capture a Chrome trace and a machine-readable run report.
#include <iostream>

#include "core/models.hpp"
#include "core/landscape.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "gpusim/device.hpp"
#include "obs/report.hpp"
#include "solver/gpu_jacobi.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"

using namespace cmesolve;

int main() {
  obs::set_context("program", "quickstart");
  obs::set_context("model", "toggle_switch");
  obs::set_context("format", "warped_ell_dia");
  obs::set_context("device", "gtx580");
  // 1. Describe the biochemical network (toggle switch, Sec. II of the paper).
  core::models::ToggleSwitchParams params;
  params.cap_a = params.cap_b = 40;  // finite protein buffers
  const auto network = core::models::toggle_switch(params);

  // 2. Enumerate the reachable state space by DFS (Cao & Liang).
  const core::StateSpace space(network,
                               core::models::toggle_switch_initial(params),
                               /*max_states=*/1'000'000);
  std::cout << "microstates: " << space.size() << "\n";

  // 3. Assemble the sparse reaction-rate matrix A (columns sum to zero).
  const auto a = core::rate_matrix(space);
  std::cout << "nonzeros:    " << a.nnz() << "\n";

  // 4. Solve A P = 0 with the Jacobi iteration on the simulated GTX580 —
  //    identical numerics to the host solve, plus the paper's cost model
  //    (and, under CMESOLVE_TRACE, a span for every simulated launch).
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(p);

  solver::JacobiOptions opt;
  opt.eps = 1e-10;
  const auto dev = gpusim::DeviceSpec::gtx580();
  const auto report = solver::gpu_jacobi_solve(dev, a, p, opt);
  const auto& result = report.result;
  std::cout << "jacobi:      " << result.iterations << " iterations, residual "
            << result.residual << " (" << to_string(result.reason) << ")\n";
  std::cout << "sim GPU:     " << report.sim_gflops
            << " GFLOPS (warped ELL+DIA sweep on GTX580)\n";

  // 5. Inspect the steady-state probability landscape.
  const int species_a = network.find_species("A");
  const int species_b = network.find_species("B");
  std::cout << "\nTop-5 microstates (nA, nB, geneA, geneB):\n";
  for (index_t i : core::top_states(p, 5)) {
    std::cout << "  P=" << p[i] << "  A=" << space.count(i, species_a)
              << " B=" << space.count(i, species_b) << "\n";
  }

  const auto joint = core::marginal2d(space, p, species_a, species_b);
  std::cout << "\n" << core::render_ascii(joint) << "\n";
  std::cout << "modes detected: " << core::count_modes(joint)
            << " (bistability => 2)\n";

  // 6. Flush telemetry (also happens at exit when the env vars are set).
  obs::flush_outputs();
  if (!obs::trace_path().empty()) {
    std::cout << "\ntrace written to  " << obs::trace_path() << "\n";
  }
  if (!obs::report_path().empty()) {
    std::cout << "report written to " << obs::report_path() << "\n";
  }
  return 0;
}
