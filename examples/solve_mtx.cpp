// Command-line steady-state solver for external Markov models: reads a
// generator matrix in Matrix Market coordinate format (columns summing to
// zero, as produced by write_matrix_market or any CTMC tool), runs the
// warp-grained ELL+DIA Jacobi iteration and writes the stationary
// distribution.
//
// Usage: solve_mtx <matrix.mtx> [output.txt] [eps]
#include <fstream>
#include <iostream>

#include "core/irreducibility.hpp"
#include "solver/gpu_jacobi.hpp"
#include "solver/vector_ops.hpp"
#include "sparse/format_stats.hpp"
#include "sparse/matrix_market.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: solve_mtx <matrix.mtx> [output.txt] [eps]\n";
    return 2;
  }

  sparse::Csr a;
  try {
    a = sparse::read_matrix_market_file(argv[1]);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (a.nrows != a.ncols) {
    std::cerr << "error: generator matrix must be square\n";
    return 2;
  }

  const auto f = sparse::fingerprint(a);
  std::cout << "matrix: n=" << f.n << " nnz=" << f.nnz
            << " nnz/row=" << f.row_mean << " band density=" << f.dband
            << "\n";

  // Diagnose the communication structure before solving: a reducible chain
  // with several closed classes has no unique stationary distribution.
  const auto cs = core::analyze_communication(a);
  if (!cs.unique_stationary()) {
    std::cerr << "warning: " << cs.closed_components.size()
              << " closed communicating classes — the stationary "
                 "distribution is not unique;\nthe solver will return one "
                 "that depends on the initial guess.\n";
  } else if (!cs.irreducible()) {
    std::cout << "note: " << cs.num_components
              << " communicating classes (transient states feed one closed "
                 "class); unique steady state.\n";
  }

  solver::JacobiOptions opt;
  opt.eps = argc > 3 ? std::atof(argv[3]) : 1e-10;
  // General Markov models can be bipartite (e.g. birth-death chains), where
  // plain Jacobi oscillates; the damped variant is uniformly robust.
  opt.damping = 0.75;
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(p);

  const auto report =
      solver::gpu_jacobi_solve(gpusim::DeviceSpec::gtx580(), a, p, opt);
  std::cout << "jacobi: " << report.result.iterations << " iterations ("
            << to_string(report.result.reason) << "), residual "
            << report.result.residual << "\n"
            << "simulated GTX580 throughput: " << report.sim_gflops
            << " GFLOPS\n";

  const std::string out_path = argc > 2 ? argv[2] : "stationary.txt";
  std::ofstream out(out_path);
  out.precision(15);
  for (real_t v : p) out << v << '\n';
  std::cout << "stationary distribution written to " << out_path << "\n";
  return report.result.reason == solver::StopReason::kMaxIterations ? 1 : 0;
}
