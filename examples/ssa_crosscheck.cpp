// Cross-validation of the linear-algebra pipeline by stochastic
// simulation: the time-average of a long Gillespie trajectory must converge
// to the steady-state landscape the Jacobi solver computes — and the
// comparison also shows *why* the paper's direct CME solve matters: the
// sampler needs minutes of simulated time to resolve what the solver nails
// in milliseconds of iteration.
//
// Usage: ssa_crosscheck [protein_buffer] [horizon]
#include <cstdlib>
#include <iostream>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"
#include "ssa/ssa.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  core::models::ToggleSwitchParams params;
  params.cap_a = params.cap_b = argc > 1 ? std::atoi(argv[1]) : 12;
  params.synth = 6.0;
  const real_t horizon = argc > 2 ? std::atof(argv[2]) : 20000.0;

  const auto net = core::models::toggle_switch(params);
  const core::StateSpace space(net, core::models::toggle_switch_initial(params),
                               10'000'000);
  const auto a = core::rate_matrix(space);
  std::cout << "toggle switch: " << space.size() << " microstates\n\n";

  // Exact steady state by the paper's pipeline.
  WallTimer t_solve;
  solver::WarpedEllDiaOperator op(a);
  std::vector<real_t> exact(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(exact);
  solver::JacobiOptions opt;
  opt.eps = 1e-10;
  const auto r = solver::jacobi_solve(op, a.inf_norm(), exact, opt);
  const real_t solve_seconds = t_solve.seconds();

  // Empirical steady state by trajectory time-averaging.
  TextTable table({"SSA horizon", "wall [s]", "total variation vs Jacobi"});
  for (const real_t h : {horizon / 100, horizon / 10, horizon}) {
    WallTimer t_ssa;
    ssa::EmpiricalOptions eopt;
    eopt.burn_in = 50.0;
    eopt.horizon = h;
    eopt.seed = 2026;
    const auto empirical = ssa::empirical_stationary(
        net, space, core::models::toggle_switch_initial(params), eopt);
    table.add_row({TextTable::num(h, 0), TextTable::num(t_ssa.seconds(), 2),
                   TextTable::num(ssa::total_variation(exact, empirical), 4)});
  }

  std::cout << table.render();
  std::cout << "\nJacobi solve: " << r.iterations << " iterations in "
            << TextTable::num(solve_seconds, 3)
            << " s — the sampler's error decays like 1/sqrt(T) while the\n"
               "solver is exact to the stopping tolerance; this gap is the "
               "paper's motivation (Sec. I).\n";
  return 0;
}
