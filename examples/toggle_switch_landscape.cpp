// Reproduces Figure 2 of the paper: the steady-state probability landscape
// of the genetic toggle switch, with probability mass concentrated at the
// two exclusive expression states ("on/off" and "off/on").
//
// Writes the joint marginal P(nA, nB) as CSV (landscape.csv) and renders an
// ASCII heat map on stdout.
//
// Usage: toggle_switch_landscape [protein_buffer] [synth_rate]
#include <cstdlib>
#include <fstream>
#include <iostream>

#include "core/landscape.hpp"
#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "solver/gpu_jacobi.hpp"
#include "solver/vector_ops.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  core::models::ToggleSwitchParams params;
  params.cap_a = params.cap_b = argc > 1 ? std::atoi(argv[1]) : 50;
  params.synth = argc > 2 ? std::atof(argv[2]) : 25.0;

  const auto network = core::models::toggle_switch(params);
  const core::StateSpace space(network,
                               core::models::toggle_switch_initial(params),
                               10'000'000);
  const auto a = core::rate_matrix(space);
  std::cout << "toggle switch: " << space.size() << " microstates, "
            << a.nnz() << " nonzeros\n";

  // Solve on the simulated GPU (warp-grained sliced ELL + DIA), which also
  // reports the Table IV-style throughput for this problem.
  std::vector<real_t> p(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(p);
  solver::JacobiOptions opt;
  opt.eps = 1e-10;
  const auto report =
      solver::gpu_jacobi_solve(gpusim::DeviceSpec::gtx580(), a, p, opt);
  std::cout << "jacobi: " << report.result.iterations << " iterations ("
            << to_string(report.result.reason) << "), residual "
            << report.result.residual << "\n"
            << "simulated GTX580: " << report.sim_gflops << " GFLOPS, "
            << report.sim_seconds << " s end-to-end\n\n";

  const int sa = network.find_species("A");
  const int sb = network.find_species("B");
  const auto joint = core::marginal2d(space, p, sa, sb);

  std::cout << core::render_ascii(joint) << "\n";
  std::cout << "modes detected: " << core::count_modes(joint)
            << " (the bistable landscape of Fig. 2 has 2)\n";

  std::ofstream csv("landscape.csv");
  csv << "nA,nB,P\n";
  for (std::int32_t na = 0; na <= joint.cap_a; ++na) {
    for (std::int32_t nb = 0; nb <= joint.cap_b; ++nb) {
      csv << na << ',' << nb << ',' << joint.at(na, nb) << '\n';
    }
  }
  std::cout << "joint marginal written to landscape.csv\n";
  return 0;
}
