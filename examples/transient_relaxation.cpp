// Transient dynamics of the toggle switch (the paper's Sec. VIII
// future-work item, built on uniformization): starting from the empty cell,
// watch the probability mass commit to the two exclusive expression states
// over time and relax toward the bistable steady-state landscape.
//
// Usage: transient_relaxation [protein_buffer]
#include <cstdlib>
#include <iostream>

#include "core/landscape.hpp"
#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/transient.hpp"
#include "solver/vector_ops.hpp"
#include "util/table.hpp"

using namespace cmesolve;

int main(int argc, char** argv) {
  core::models::ToggleSwitchParams params;
  params.cap_a = params.cap_b = argc > 1 ? std::atoi(argv[1]) : 25;

  const auto net = core::models::toggle_switch(params);
  const core::StateSpace space(net, core::models::toggle_switch_initial(params),
                               10'000'000);
  const auto a = core::rate_matrix(space);
  std::cout << "toggle switch: " << space.size() << " microstates\n\n";

  solver::CsrDiaOperator op(a);
  const int sa = net.find_species("A");
  const int sb = net.find_species("B");

  // Committed = clearly more of one protein than the other.
  const auto committed_mass = [&](std::span<const real_t> p) {
    real_t mass = 0;
    for (index_t i = 0; i < space.size(); ++i) {
      const auto na = space.count(i, sa);
      const auto nb = space.count(i, sb);
      if (std::abs(na - nb) > params.cap_a / 4) mass += p[i];
    }
    return mass;
  };

  // Steady-state reference.
  std::vector<real_t> steady(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(steady);
  solver::JacobiOptions jopt;
  jopt.eps = 1e-10;
  (void)solver::jacobi_solve(op, a.inf_norm(), steady, jopt);

  std::vector<real_t> p(static_cast<std::size_t>(a.nrows), 0.0);
  p[0] = 1.0;  // the DFS root: empty cell, both genes free

  TextTable table({"time", "matvecs", "P(committed)", "||P(t)-Pss||_1"});
  real_t t = 0.0;
  for (const real_t dt : {0.05, 0.15, 0.3, 0.5, 1.0, 3.0, 5.0, 10.0}) {
    const auto r = solver::transient_solve(op, dt, p);
    t += dt;
    real_t dist = 0;
    for (std::size_t i = 0; i < p.size(); ++i) {
      dist += std::abs(p[i] - steady[i]);
    }
    table.add_row({TextTable::num(t, 2),
                   TextTable::count(static_cast<long long>(r.matvecs)),
                   TextTable::num(committed_mass(p), 4),
                   TextTable::num(dist, 4)});
  }
  std::cout << table.render();
  std::cout << "\nP(committed) at steady state: "
            << TextTable::num(committed_mass(steady), 4) << "\n";
  return 0;
}
