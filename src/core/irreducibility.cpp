#include "core/irreducibility.hpp"

#include <algorithm>

namespace cmesolve::core {

namespace {

/// Adjacency in "from -> to" direction. The rate matrix stores column j ->
/// row i transitions in row-major CSR, so transpose once.
sparse::Csr outgoing_graph(const sparse::Csr& a) { return transpose(a); }

}  // namespace

CommunicationStructure analyze_communication(const sparse::Csr& a) {
  const sparse::Csr g = outgoing_graph(a);
  const index_t n = g.nrows;

  CommunicationStructure out;
  out.component.assign(static_cast<std::size_t>(n), -1);

  // Iterative Tarjan.
  constexpr index_t kUnvisited = -1;
  std::vector<index_t> disc(static_cast<std::size_t>(n), kUnvisited);
  std::vector<index_t> low(static_cast<std::size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<std::size_t>(n), false);
  std::vector<index_t> stack;           // Tarjan's component stack
  std::vector<std::pair<index_t, index_t>> call;  // (node, next edge ptr)
  index_t timer = 0;

  for (index_t root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    call.emplace_back(root, g.row_ptr[root]);
    disc[root] = low[root] = timer++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call.empty()) {
      auto& [v, edge] = call.back();
      bool descended = false;
      while (edge < g.row_ptr[v + 1]) {
        const index_t w = g.col_idx[edge];
        ++edge;
        if (w == v) continue;  // ignore the diagonal
        if (disc[w] == kUnvisited) {
          disc[w] = low[w] = timer++;
          stack.push_back(w);
          on_stack[w] = true;
          call.emplace_back(w, g.row_ptr[w]);
          descended = true;
          break;
        }
        if (on_stack[w]) {
          low[v] = std::min(low[v], disc[w]);
        }
      }
      if (descended) continue;

      // v is finished.
      if (low[v] == disc[v]) {
        // Pop one SCC.
        for (;;) {
          const index_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          out.component[w] = out.num_components;
          if (w == v) break;
        }
        ++out.num_components;
      }
      const index_t child = v;
      call.pop_back();
      if (!call.empty()) {
        low[call.back().first] = std::min(low[call.back().first], low[child]);
      }
    }
  }

  // Closed components: no edge leaving the component.
  std::vector<bool> leaves(static_cast<std::size_t>(out.num_components), false);
  for (index_t v = 0; v < n; ++v) {
    for (index_t p = g.row_ptr[v]; p < g.row_ptr[v + 1]; ++p) {
      const index_t w = g.col_idx[p];
      if (w != v && out.component[v] != out.component[w]) {
        leaves[static_cast<std::size_t>(out.component[v])] = true;
      }
    }
  }
  for (index_t c = 0; c < out.num_components; ++c) {
    if (!leaves[static_cast<std::size_t>(c)]) {
      out.closed_components.push_back(c);
    }
  }
  return out;
}

}  // namespace cmesolve::core
