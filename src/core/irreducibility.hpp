#pragma once
//
// Communication-structure analysis of the state space.
//
// The Jacobi steady state of A P = 0 is unique only when the reachable
// state space is one closed communicating class. Finite-buffer truncation
// can silently break this (e.g. a pure-decay network whose empty state is
// absorbing), so a production solver should diagnose it instead of
// returning an arbitrary vector. This module runs Tarjan's SCC algorithm
// (iterative, no recursion — state spaces are large) on the transition
// graph of the rate matrix.
//
#include <vector>

#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace cmesolve::core {

struct CommunicationStructure {
  /// Strongly-connected-component id per state, in [0, num_components).
  std::vector<index_t> component;
  index_t num_components = 0;
  /// Component ids with no outgoing transition (closed / recurrent classes).
  std::vector<index_t> closed_components;

  /// One closed class covering everything: the steady state is unique.
  [[nodiscard]] bool irreducible() const noexcept {
    return num_components == 1;
  }
  /// Exactly one closed class (possibly with transient states feeding it):
  /// the steady state is still unique, supported on that class.
  [[nodiscard]] bool unique_stationary() const noexcept {
    return closed_components.size() == 1;
  }
};

/// Analyze the transition graph of a rate matrix `a` (entry (i, j) != 0,
/// i != j, is the edge j -> i).
[[nodiscard]] CommunicationStructure analyze_communication(const sparse::Csr& a);

}  // namespace cmesolve::core
