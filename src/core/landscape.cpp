#include "core/landscape.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace cmesolve::core {

std::vector<real_t> marginal(const StateSpace& space, std::span<const real_t> p,
                             int species) {
  assert(p.size() == static_cast<std::size_t>(space.size()));
  const auto cap =
      static_cast<std::size_t>(space.network().capacity(species));
  std::vector<real_t> out(cap + 1, 0.0);
  for (index_t i = 0; i < space.size(); ++i) {
    out[static_cast<std::size_t>(space.count(i, species))] += p[i];
  }
  return out;
}

Marginal2D marginal2d(const StateSpace& space, std::span<const real_t> p,
                      int species_a, int species_b) {
  assert(p.size() == static_cast<std::size_t>(space.size()));
  Marginal2D m;
  m.species_a = species_a;
  m.species_b = species_b;
  m.cap_a = space.network().capacity(species_a);
  m.cap_b = space.network().capacity(species_b);
  m.grid.assign(static_cast<std::size_t>(m.cap_a + 1) *
                    static_cast<std::size_t>(m.cap_b + 1),
                0.0);
  for (index_t i = 0; i < space.size(); ++i) {
    const auto a = static_cast<std::size_t>(space.count(i, species_a));
    const auto b = static_cast<std::size_t>(space.count(i, species_b));
    m.grid[a * static_cast<std::size_t>(m.cap_b + 1) + b] += p[i];
  }
  return m;
}

std::vector<index_t> top_states(std::span<const real_t> p, std::size_t k) {
  std::vector<index_t> order(p.size());
  std::iota(order.begin(), order.end(), index_t{0});
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                    order.end(),
                    [&](index_t a, index_t b) { return p[a] > p[b]; });
  order.resize(k);
  return order;
}

int count_modes(const Marginal2D& m, int bins, real_t floor_fraction) {
  // Bin the grid down to bins x bins, then count cells that strictly
  // dominate their 8-neighbourhood and carry non-trivial mass.
  const int ba = std::min<int>(bins, m.cap_a + 1);
  const int bb = std::min<int>(bins, m.cap_b + 1);
  std::vector<real_t> coarse(static_cast<std::size_t>(ba) *
                                 static_cast<std::size_t>(bb),
                             0.0);
  for (std::int32_t a = 0; a <= m.cap_a; ++a) {
    for (std::int32_t b = 0; b <= m.cap_b; ++b) {
      const int ia = std::min(ba - 1, a * ba / (m.cap_a + 1));
      const int ib = std::min(bb - 1, b * bb / (m.cap_b + 1));
      coarse[static_cast<std::size_t>(ia) * bb + static_cast<std::size_t>(ib)] +=
          m.at(a, b);
    }
  }
  const real_t peak = *std::max_element(coarse.begin(), coarse.end());
  const real_t floor = peak * floor_fraction;

  // A cell is a mode when it strictly dominates a radius-2 neighbourhood
  // (ties broken by linear index so a flat plateau counts once) and carries
  // non-trivial mass. The radius-2 window suppresses the ripples that the
  // diffuse ridge between the toggle-switch attractors would otherwise
  // contribute.
  int modes = 0;
  for (int a = 0; a < ba; ++a) {
    for (int b = 0; b < bb; ++b) {
      const real_t v = coarse[static_cast<std::size_t>(a) * bb + b];
      if (v < floor) continue;
      bool is_peak = true;
      for (int da = -2; da <= 2 && is_peak; ++da) {
        for (int db = -2; db <= 2; ++db) {
          if (da == 0 && db == 0) continue;
          const int na = a + da;
          const int nb = b + db;
          if (na < 0 || na >= ba || nb < 0 || nb >= bb) continue;
          const real_t w = coarse[static_cast<std::size_t>(na) * bb + nb];
          if (w > v || (w == v && (na * bb + nb) < (a * bb + b))) {
            is_peak = false;
            break;
          }
        }
      }
      if (is_peak) ++modes;
    }
  }
  return modes;
}

std::string render_ascii(const Marginal2D& m, int width, int height) {
  static constexpr char kShades[] = " .:-=+*#%@";
  const int na = std::min<int>(height, m.cap_a + 1);
  const int nb = std::min<int>(width, m.cap_b + 1);

  std::vector<real_t> coarse(static_cast<std::size_t>(na) *
                                 static_cast<std::size_t>(nb),
                             0.0);
  for (std::int32_t a = 0; a <= m.cap_a; ++a) {
    for (std::int32_t b = 0; b <= m.cap_b; ++b) {
      const int ia = std::min(na - 1, a * na / (m.cap_a + 1));
      const int ib = std::min(nb - 1, b * nb / (m.cap_b + 1));
      coarse[static_cast<std::size_t>(ia) * nb + static_cast<std::size_t>(ib)] +=
          m.at(a, b);
    }
  }
  const real_t peak = *std::max_element(coarse.begin(), coarse.end());

  std::ostringstream out;
  out << "P(nA, nB): rows = nA (top = " << m.cap_a << "), cols = nB (0.."
      << m.cap_b << ")\n";
  for (int a = na - 1; a >= 0; --a) {
    out << '|';
    for (int b = 0; b < nb; ++b) {
      const real_t v = coarse[static_cast<std::size_t>(a) * nb + b];
      int shade = 0;
      if (v > 0.0 && peak > 0.0) {
        // Log scale over 5 decades.
        const real_t rel = std::log10(v / peak);  // <= 0
        shade = std::clamp(static_cast<int>((rel + 5.0) / 5.0 * 9.0), 0, 9);
      }
      out << kShades[shade];
    }
    out << "|\n";
  }
  return out.str();
}

}  // namespace cmesolve::core
