#pragma once
//
// Steady-state probability landscape utilities (Sec. II-B, Fig. 2).
//
// Once the Jacobi solver returns P over the microstates, these helpers
// project it onto biologically meaningful coordinates: marginals over one
// or two species, top-probability states, and a coarse ASCII rendering of
// the 2-D landscape (the toggle-switch bistability picture).
//
#include <string>
#include <utility>
#include <vector>

#include "core/state_space.hpp"
#include "util/types.hpp"

namespace cmesolve::core {

/// Marginal distribution of one species: out[c] = P(species == c).
[[nodiscard]] std::vector<real_t> marginal(const StateSpace& space,
                                           std::span<const real_t> p,
                                           int species);

/// Joint marginal over two species as a dense (capA+1) x (capB+1) grid in
/// row-major order: grid[a * (capB+1) + b] = P(sa == a, sb == b).
struct Marginal2D {
  int species_a = 0;
  int species_b = 0;
  std::int32_t cap_a = 0;
  std::int32_t cap_b = 0;
  std::vector<real_t> grid;

  [[nodiscard]] real_t at(std::int32_t a, std::int32_t b) const {
    return grid[static_cast<std::size_t>(a) *
                    static_cast<std::size_t>(cap_b + 1) +
                static_cast<std::size_t>(b)];
  }
};
[[nodiscard]] Marginal2D marginal2d(const StateSpace& space,
                                    std::span<const real_t> p, int species_a,
                                    int species_b);

/// Indices of the k most probable microstates, descending.
[[nodiscard]] std::vector<index_t> top_states(std::span<const real_t> p,
                                              std::size_t k);

/// Count the local maxima of a 2-D marginal after coarse binning —
/// a cheap bimodality detector for the toggle switch (expects 2).
[[nodiscard]] int count_modes(const Marginal2D& m, int bins = 16,
                              real_t floor_fraction = 0.05);

/// ASCII heat map of a 2-D marginal (log scale), for terminal output.
[[nodiscard]] std::string render_ascii(const Marginal2D& m, int width = 60,
                                       int height = 28);

}  // namespace cmesolve::core
