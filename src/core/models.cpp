#include "core/models.hpp"

#include <algorithm>
#include <stdexcept>

namespace cmesolve::core::models {

// ---------------------------------------------------------------------------
// Toggle switch
// ---------------------------------------------------------------------------
ReactionNetwork toggle_switch(const ToggleSwitchParams& p) {
  ReactionNetwork net;
  const int a = net.add_species("A", p.cap_a);
  const int b = net.add_species("B", p.cap_b);
  const int ga = net.add_species("geneA_free", 1);   // B2 represses gene A
  const int gab = net.add_species("geneA_bound", 1);
  const int gb = net.add_species("geneB_free", 1);   // A2 represses gene B
  const int gbb = net.add_species("geneB_bound", 1);

  // Reversible synthesis/degradation pairs FIRST: DFS chains them into the
  // {-1, +1} band (Sec. V).
  net.add_reaction("synthA", p.synth, {{ga, 1}}, {{a, +1}});
  net.add_reaction("degA", p.degrade, {{a, 1}}, {{a, -1}});
  net.add_reaction("synthB", p.synth, {{gb, 1}}, {{b, +1}});
  net.add_reaction("degB", p.degrade, {{b, 1}}, {{b, -1}});
  // Dimer repression: two copies of the antagonist protein occupy the
  // operator.
  net.add_reaction("bindB_geneA", p.bind, {{b, 2}, {ga, 1}},
                   {{b, -2}, {ga, -1}, {gab, +1}});
  net.add_reaction("unbindB_geneA", p.unbind, {{gab, 1}},
                   {{b, +2}, {ga, +1}, {gab, -1}});
  net.add_reaction("bindA_geneB", p.bind, {{a, 2}, {gb, 1}},
                   {{a, -2}, {gb, -1}, {gbb, +1}});
  net.add_reaction("unbindA_geneB", p.unbind, {{gbb, 1}},
                   {{a, +2}, {gb, +1}, {gbb, -1}});
  return net;
}

State toggle_switch_initial(const ToggleSwitchParams&) {
  return State{0, 0, 1, 0, 1, 0};
}

// ---------------------------------------------------------------------------
// Brusselator
// ---------------------------------------------------------------------------
ReactionNetwork brusselator(const BrusselatorParams& p) {
  ReactionNetwork net;
  const int x = net.add_species("X", p.cap_x);
  const int y = net.add_species("Y", p.cap_y);

  net.add_reaction("feed", p.a, {}, {{x, +1}});
  net.add_reaction("drain", p.drain, {{x, 1}}, {{x, -1}});
  net.add_reaction("convert", p.b, {{x, 1}}, {{x, -1}, {y, +1}});
  net.add_reaction("autocatalysis", p.autocat, {{x, 2}, {y, 1}},
                   {{x, +1}, {y, -1}});
  return net;
}

State brusselator_initial(const BrusselatorParams&) { return State{0, 0}; }

// ---------------------------------------------------------------------------
// Schnakenberg
// ---------------------------------------------------------------------------
ReactionNetwork schnakenberg(const SchnakenbergParams& p) {
  ReactionNetwork net;
  const int x = net.add_species("X", p.cap_x);
  const int y = net.add_species("Y", p.cap_y);

  net.add_reaction("feedX", p.a, {}, {{x, +1}});
  net.add_reaction("degX", p.degrade_x, {{x, 1}}, {{x, -1}});
  net.add_reaction("feedY", p.b, {}, {{y, +1}});
  net.add_reaction("degY", p.degrade_y, {{y, 1}}, {{y, -1}});
  net.add_reaction("autocatalysis", p.autocat, {{x, 2}, {y, 1}},
                   {{x, +1}, {y, -1}});
  net.add_reaction("reverse", p.reverse, {{x, 3}}, {{x, -1}, {y, +1}});
  return net;
}

State schnakenberg_initial(const SchnakenbergParams&) { return State{0, 0}; }

// ---------------------------------------------------------------------------
// Phage lambda
// ---------------------------------------------------------------------------
ReactionNetwork phage_lambda(const PhageLambdaParams& p) {
  ReactionNetwork net;
  const int m = net.add_species("CI", p.cap_ci);
  const int d = net.add_species("CI2", p.cap_ci2);
  const int c = net.add_species("Cro", p.cap_cro);
  const int e = net.add_species("Cro2", p.cap_cro2);
  // Operator sites OR1..OR3, each a conserved {free, CI2-bound, Cro2-bound}
  // indicator triple.
  int site_free[3];
  int site_ci[3];
  int site_cro[3];
  for (int s = 0; s < 3; ++s) {
    const std::string suffix = std::to_string(s + 1);
    site_free[s] = net.add_species("OR" + suffix + "_free", 1);
    site_ci[s] = net.add_species("OR" + suffix + "_CI2", 1);
    site_cro[s] = net.add_species("OR" + suffix + "_Cro2", 1);
  }

  // Reversible monomer pairs first (diagonal band).
  net.add_reaction("synthCI_basal", p.synth_ci_basal, {{site_free[1], 1}},
                   {{m, +1}});
  net.add_reaction("degCI", p.degrade_monomer, {{m, 1}}, {{m, -1}});
  net.add_reaction("synthCI_active", p.synth_ci_active, {{site_ci[1], 1}},
                   {{m, +1}});
  net.add_reaction("synthCro", p.synth_cro, {{site_free[0], 1}}, {{c, +1}});
  net.add_reaction("degCro", p.degrade_monomer, {{c, 1}}, {{c, -1}});
  // Dimerization equilibria.
  net.add_reaction("dimerizeCI", p.dimerize, {{m, 2}}, {{m, -2}, {d, +1}});
  net.add_reaction("dissociateCI2", p.dissociate, {{d, 1}}, {{d, -1}, {m, +2}});
  net.add_reaction("dimerizeCro", p.dimerize, {{c, 2}}, {{c, -2}, {e, +1}});
  net.add_reaction("dissociateCro2", p.dissociate, {{e, 1}},
                   {{e, -1}, {c, +2}});
  // Competitive operator binding.
  for (int s = 0; s < 3; ++s) {
    const std::string suffix = std::to_string(s + 1);
    net.add_reaction("bindCI2_OR" + suffix, p.bind,
                     {{d, 1}, {site_free[s], 1}},
                     {{d, -1}, {site_free[s], -1}, {site_ci[s], +1}});
    net.add_reaction("unbindCI2_OR" + suffix, p.unbind, {{site_ci[s], 1}},
                     {{d, +1}, {site_free[s], +1}, {site_ci[s], -1}});
    net.add_reaction("bindCro2_OR" + suffix, p.bind,
                     {{e, 1}, {site_free[s], 1}},
                     {{e, -1}, {site_free[s], -1}, {site_cro[s], +1}});
    net.add_reaction("unbindCro2_OR" + suffix, p.unbind, {{site_cro[s], 1}},
                     {{e, +1}, {site_free[s], +1}, {site_cro[s], -1}});
  }
  return net;
}

State phage_lambda_initial(const PhageLambdaParams&) {
  //            CI D  Cro E  OR1      OR2      OR3
  return State{0, 0, 0, 0, 1, 0, 0, 1, 0, 0, 1, 0, 0};
}

// ---------------------------------------------------------------------------
// Michaelis-Menten enzyme kinetics
// ---------------------------------------------------------------------------
ReactionNetwork enzyme_kinetics(const EnzymeKineticsParams& p) {
  ReactionNetwork net;
  const int e = net.add_species("E", p.enzyme_total);
  const int s = net.add_species("S", p.cap_s);
  const int es = net.add_species("ES", p.enzyme_total);
  const int prod = net.add_species("P", p.cap_p);

  // Substrate feed/turnover pair first for the diagonal band.
  net.add_reaction("feedS", p.feed, {}, {{s, +1}});
  net.add_reaction("bind", p.bind, {{e, 1}, {s, 1}},
                   {{e, -1}, {s, -1}, {es, +1}});
  net.add_reaction("unbind", p.unbind, {{es, 1}},
                   {{e, +1}, {s, +1}, {es, -1}});
  net.add_reaction("catalyze", p.catalyze, {{es, 1}},
                   {{e, +1}, {es, -1}, {prod, +1}});
  net.add_reaction("clearP", p.clear, {{prod, 1}}, {{prod, -1}});
  return net;
}

State enzyme_kinetics_initial(const EnzymeKineticsParams& p) {
  return State{p.enzyme_total, 0, 0, 0};
}

// ---------------------------------------------------------------------------
// Enzymatic futile cycle
// ---------------------------------------------------------------------------
ReactionNetwork futile_cycle(const FutileCycleParams& p) {
  ReactionNetwork net;
  // Substrate/product capacities equal the conserved substrate pool; the
  // slab never touches the box walls, so the fixed-buffer and FSP pipelines
  // see the same reachable physics.
  const int s = net.add_species("S", p.substrate_total);
  const int prod = net.add_species("P", p.substrate_total);
  const int e1 = net.add_species("E1", p.enzyme1_total);
  const int c1 = net.add_species("C1", p.enzyme1_total);
  const int e2 = net.add_species("E2", p.enzyme2_total);
  const int c2 = net.add_species("C2", p.enzyme2_total);

  // Reversible binding pairs first: DFS chains them into the diagonal band.
  net.add_reaction("bind1", p.bind1, {{s, 1}, {e1, 1}},
                   {{s, -1}, {e1, -1}, {c1, +1}});
  net.add_reaction("unbind1", p.unbind1, {{c1, 1}},
                   {{s, +1}, {e1, +1}, {c1, -1}});
  net.add_reaction("catalyze1", p.catalyze1, {{c1, 1}},
                   {{prod, +1}, {e1, +1}, {c1, -1}});
  net.add_reaction("bind2", p.bind2, {{prod, 1}, {e2, 1}},
                   {{prod, -1}, {e2, -1}, {c2, +1}});
  net.add_reaction("unbind2", p.unbind2, {{c2, 1}},
                   {{prod, +1}, {e2, +1}, {c2, -1}});
  net.add_reaction("catalyze2", p.catalyze2, {{c2, 1}},
                   {{s, +1}, {e2, +1}, {c2, -1}});
  return net;
}

State futile_cycle_initial(const FutileCycleParams& p) {
  //           S                  P  E1              C1 E2              C2
  return State{p.substrate_total, 0, p.enzyme1_total, 0, p.enzyme2_total, 0};
}

// ---------------------------------------------------------------------------
// SIR with demography
// ---------------------------------------------------------------------------
ReactionNetwork sir(const SirParams& p) {
  ReactionNetwork net;
  const int s = net.add_species("S", p.cap_s);
  const int i = net.add_species("I", p.cap_i);
  const int r = net.add_species("R", p.cap_r);

  net.add_reaction("birth", p.birth, {}, {{s, +1}});
  net.add_reaction("deathS", p.death, {{s, 1}}, {{s, -1}});
  net.add_reaction("infect", p.infect, {{s, 1}, {i, 1}}, {{s, -1}, {i, +1}});
  net.add_reaction("recover", p.recover, {{i, 1}}, {{i, -1}, {r, +1}});
  net.add_reaction("deathI", p.death, {{i, 1}}, {{i, -1}});
  net.add_reaction("deathR", p.death, {{r, 1}}, {{r, -1}});
  return net;
}

State sir_initial(const SirParams& p) {
  return State{std::min<std::int32_t>(10, p.cap_s),
               std::min<std::int32_t>(2, p.cap_i), 0};
}

// ---------------------------------------------------------------------------
// Paper suite
// ---------------------------------------------------------------------------
namespace {

BenchmarkModel make_toggle(std::string name, std::int32_t cap) {
  ToggleSwitchParams p;
  p.cap_a = p.cap_b = cap;
  return {std::move(name), toggle_switch(p), toggle_switch_initial(p)};
}

BenchmarkModel make_lambda(std::string name, std::int32_t mono,
                           std::int32_t dimer) {
  PhageLambdaParams p;
  p.cap_ci = p.cap_cro = mono;
  p.cap_ci2 = p.cap_cro2 = dimer;
  return {std::move(name), phage_lambda(p), phage_lambda_initial(p)};
}

}  // namespace

std::vector<BenchmarkModel> paper_suite(SuiteScale scale) {
  std::vector<BenchmarkModel> suite;

  struct Caps {
    std::int32_t toggle1, bruss_x, bruss_y, lam1_m, lam1_d, schnak_x, schnak_y,
        lam2_m, lam2_d, toggle2, lam3_m, lam3_d;
  };
  Caps caps{};
  switch (scale) {
    case SuiteScale::kTiny:
      caps = {15, 40, 20, 4, 2, 50, 25, 5, 2, 25, 5, 3};
      break;
    case SuiteScale::kSmall:
      caps = {70, 250, 120, 8, 3, 300, 150, 9, 4, 135, 10, 5};
      break;
    case SuiteScale::kMedium:
      caps = {160, 500, 250, 11, 5, 650, 325, 12, 6, 250, 14, 7};
      break;
  }

  suite.push_back(make_toggle("toggle-switch-1", caps.toggle1));
  {
    BrusselatorParams p;
    p.cap_x = caps.bruss_x;
    p.cap_y = caps.bruss_y;
    suite.push_back({"brusselator", brusselator(p), brusselator_initial(p)});
  }
  suite.push_back(make_lambda("phage-lambda-1", caps.lam1_m, caps.lam1_d));
  {
    SchnakenbergParams p;
    p.cap_x = caps.schnak_x;
    p.cap_y = caps.schnak_y;
    suite.push_back({"schnakenberg", schnakenberg(p), schnakenberg_initial(p)});
  }
  suite.push_back(make_lambda("phage-lambda-2", caps.lam2_m, caps.lam2_d));
  suite.push_back(make_toggle("toggle-switch-2", caps.toggle2));
  suite.push_back(make_lambda("phage-lambda-3", caps.lam3_m, caps.lam3_d));
  return suite;
}

SuiteScale parse_scale(const std::string& s) {
  if (s == "tiny") return SuiteScale::kTiny;
  if (s == "medium") return SuiteScale::kMedium;
  return SuiteScale::kSmall;
}

}  // namespace cmesolve::core::models
