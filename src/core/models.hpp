#pragma once
//
// The four biological reaction networks of the paper's benchmark set
// (Sec. VII-B): genetic toggle switch [16], Brusselator [21], phage lambda
// lysis/lysogeny switch [22] and Schnakenberg [23].
//
// The paper's matrices reach n = 9.98M microstates; buffer capacities here
// are parameterized so the same networks can be generated at
// container-friendly sizes while keeping the Table I structural
// fingerprints (nonzeros-per-row distribution, diagonal band density) —
// those are properties of the network topology and DFS order, not of the
// buffer size.
//
#include <string>
#include <vector>

#include "core/reaction_network.hpp"

namespace cmesolve::core::models {

// ---------------------------------------------------------------------------
// Genetic toggle switch: proteins A and B, each repressing the other's gene
// through dimer binding to the operator. Bistable ("on/off" vs "off/on",
// Fig. 1/2 of the paper).
// ---------------------------------------------------------------------------
struct ToggleSwitchParams {
  std::int32_t cap_a = 60;   ///< protein A buffer
  std::int32_t cap_b = 60;   ///< protein B buffer
  real_t synth = 25.0;       ///< protein synthesis rate (gene free)
  real_t degrade = 1.0;      ///< protein degradation rate
  real_t bind = 0.1;         ///< dimer-operator binding rate
  real_t unbind = 2.0;       ///< operator clearing rate
};
[[nodiscard]] ReactionNetwork toggle_switch(const ToggleSwitchParams& p = {});
[[nodiscard]] State toggle_switch_initial(const ToggleSwitchParams& p = {});

// ---------------------------------------------------------------------------
// Brusselator: autocatalytic oscillator, species X and Y.
//   (1) 0 -> X, (2) 2X + Y -> 3X, (3) X -> Y, (4) X -> 0
// ---------------------------------------------------------------------------
struct BrusselatorParams {
  std::int32_t cap_x = 300;
  std::int32_t cap_y = 150;
  real_t a = 25.0;       ///< feed 0 -> X
  real_t b = 1.5;        ///< conversion X -> Y
  real_t autocat = 2e-3; ///< 2X + Y -> 3X
  real_t drain = 1.0;    ///< X -> 0
};
[[nodiscard]] ReactionNetwork brusselator(const BrusselatorParams& p = {});
[[nodiscard]] State brusselator_initial(const BrusselatorParams& p = {});

// ---------------------------------------------------------------------------
// Schnakenberg: trimolecular autocatalysis with reversible step, species X, Y.
//   0 <-> X, 0 <-> Y, 2X + Y <-> 3X
// ---------------------------------------------------------------------------
struct SchnakenbergParams {
  std::int32_t cap_x = 400;
  std::int32_t cap_y = 200;
  real_t a = 18.0;        ///< feed 0 -> X
  real_t degrade_x = 1.0;
  real_t b = 30.0;        ///< feed 0 -> Y
  real_t degrade_y = 0.1;
  real_t autocat = 1e-3;  ///< 2X + Y -> 3X
  real_t reverse = 1e-4;  ///< 3X -> 2X + Y
};
[[nodiscard]] ReactionNetwork schnakenberg(const SchnakenbergParams& p = {});
[[nodiscard]] State schnakenberg_initial(const SchnakenbergParams& p = {});

// ---------------------------------------------------------------------------
// Phage lambda epigenetic switch (simplified Cao-Lu-Liang [22]): CI and Cro
// with dimerization and competitive binding to the three OR operator sites.
// CI2 at OR2 activates PRM (CI synthesis); Cro is made while OR1 is free.
// The operator occupancy is modeled with free/CI2/Cro2 indicator species
// per site (conserved triples), giving the irregular row-length profile of
// the phage-lambda rows in Table I.
// ---------------------------------------------------------------------------
struct PhageLambdaParams {
  std::int32_t cap_ci = 12;    ///< CI monomer buffer
  std::int32_t cap_ci2 = 6;    ///< CI dimer buffer
  std::int32_t cap_cro = 12;   ///< Cro monomer buffer
  std::int32_t cap_cro2 = 6;   ///< Cro dimer buffer
  real_t synth_ci_basal = 2.0;
  real_t synth_ci_active = 8.0;  ///< PRM activated by CI2 at OR2
  real_t synth_cro = 5.0;        ///< PR while OR1 free
  real_t degrade_monomer = 1.0;
  real_t degrade_dimer = 0.5;
  real_t dimerize = 0.5;
  real_t dissociate = 2.0;
  real_t bind = 0.5;
  real_t unbind = 1.0;
};
[[nodiscard]] ReactionNetwork phage_lambda(const PhageLambdaParams& p = {});
[[nodiscard]] State phage_lambda_initial(const PhageLambdaParams& p = {});

// ---------------------------------------------------------------------------
// Michaelis-Menten enzyme kinetics with substrate turnover:
//   0 -> S (feed),  E + S <-> ES,  ES -> E + P,  P -> 0 (clearance)
// Total enzyme E + ES is conserved, so the reachable space is a slab.
// ---------------------------------------------------------------------------
struct EnzymeKineticsParams {
  std::int32_t enzyme_total = 4;
  std::int32_t cap_s = 40;
  std::int32_t cap_p = 40;
  real_t feed = 8.0;      ///< 0 -> S
  real_t bind = 0.5;      ///< E + S -> ES
  real_t unbind = 1.0;    ///< ES -> E + S
  real_t catalyze = 2.0;  ///< ES -> E + P
  real_t clear = 0.5;     ///< P -> 0
};
[[nodiscard]] ReactionNetwork enzyme_kinetics(const EnzymeKineticsParams& p = {});
[[nodiscard]] State enzyme_kinetics_initial(const EnzymeKineticsParams& p = {});

// ---------------------------------------------------------------------------
// Enzymatic futile cycle: substrate S and product P interconverted by two
// opposing enzymes through Michaelis-Menten complexes.
//   S + E1 <-> C1 -> P + E1,   P + E2 <-> C2 -> S + E2
// Substrate (S + P + C1 + C2) and both enzyme totals (E1 + C1, E2 + C2) are
// conserved, so the reachable space is a bounded slab with the stationary
// mass concentrated along the conversion equilibrium — the standard
// adaptive-FSP stress model (Gupta et al., arXiv:1704.07259).
// ---------------------------------------------------------------------------
struct FutileCycleParams {
  std::int32_t substrate_total = 40;  ///< S + P + C1 + C2 at t = 0
  std::int32_t enzyme1_total = 3;     ///< E1 + C1 (conserved)
  std::int32_t enzyme2_total = 3;     ///< E2 + C2 (conserved)
  real_t bind1 = 0.4;       ///< S + E1 -> C1
  real_t unbind1 = 1.0;     ///< C1 -> S + E1
  real_t catalyze1 = 2.0;   ///< C1 -> P + E1
  real_t bind2 = 0.3;       ///< P + E2 -> C2
  real_t unbind2 = 1.0;     ///< C2 -> P + E2
  real_t catalyze2 = 1.5;   ///< C2 -> S + E2
};
[[nodiscard]] ReactionNetwork futile_cycle(const FutileCycleParams& p = {});
[[nodiscard]] State futile_cycle_initial(const FutileCycleParams& p = {});

// ---------------------------------------------------------------------------
// Stochastic SIR with demography: endemic fluctuations instead of eventual
// extinction, so a non-trivial stationary landscape exists.
//   0 -> S (birth),  S + I -> 2I,  I -> R,  S/I/R -> 0 (death)
// ---------------------------------------------------------------------------
struct SirParams {
  std::int32_t cap_s = 30;
  std::int32_t cap_i = 30;
  std::int32_t cap_r = 30;
  real_t birth = 6.0;
  real_t infect = 0.3;
  real_t recover = 1.0;
  real_t death = 0.3;
};
[[nodiscard]] ReactionNetwork sir(const SirParams& p = {});
[[nodiscard]] State sir_initial(const SirParams& p = {});

// ---------------------------------------------------------------------------
// The 7-matrix benchmark suite of Table I, at a selectable scale.
// ---------------------------------------------------------------------------
enum class SuiteScale {
  kTiny,    ///< ~1e3..1e4 states per matrix (unit tests)
  kSmall,   ///< ~2e4..8e4 states (default benchmarks)
  kMedium,  ///< ~1e5..5e5 states (longer benchmark runs)
};

struct BenchmarkModel {
  std::string name;      ///< paper's benchmark name, e.g. "toggle-switch-1"
  ReactionNetwork network;
  State initial;
};

/// toggle-switch-1/2, brusselator, phage-lambda-1/2/3, schnakenberg with
/// per-scale buffer capacities.
[[nodiscard]] std::vector<BenchmarkModel> paper_suite(SuiteScale scale);

/// Parse "tiny" / "small" / "medium" (benchmark CLI helper); defaults to
/// kSmall on unknown input.
[[nodiscard]] SuiteScale parse_scale(const std::string& s);

}  // namespace cmesolve::core::models
