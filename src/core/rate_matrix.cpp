#include "core/rate_matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace cmesolve::core {

sparse::Csr rate_matrix(const StateSpace& space) {
  if (space.truncated()) {
    throw std::runtime_error(
        "rate_matrix: state space truncated; raise max_states");
  }
  const ReactionNetwork& net = space.network();
  const index_t n = space.size();
  const int nr = net.num_reactions();

  sparse::Coo coo;
  coo.nrows = n;
  coo.ncols = n;
  coo.reserve(static_cast<std::size_t>(n) *
              static_cast<std::size_t>(nr / 2 + 2));

  for (index_t j = 0; j < n; ++j) {
    const State x = space.state(j);
    real_t out_rate = 0.0;
    for (int k = 0; k < nr; ++k) {
      if (!net.within_capacity(k, x)) continue;
      const real_t a = net.propensity(k, x);
      if (a <= 0.0) continue;
      const index_t i = space.find(net.apply(k, x));
      if (i < 0) {
        throw std::logic_error("rate_matrix: successor not enumerated");
      }
      if (i == j) continue;  // null transition (no net state change)
      coo.add(i, j, a);
      out_rate += a;
    }
    coo.add(j, j, -out_rate);
  }
  return sparse::csr_from_coo(std::move(coo));
}

real_t max_column_sum(const sparse::Csr& a) {
  std::vector<real_t> colsum(static_cast<std::size_t>(a.ncols), 0.0);
  for (index_t r = 0; r < a.nrows; ++r) {
    for (index_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p) {
      colsum[static_cast<std::size_t>(a.col_idx[p])] += a.val[p];
    }
  }
  real_t worst = 0.0;
  for (real_t s : colsum) worst = std::max(worst, std::abs(s));
  return worst;
}

}  // namespace cmesolve::core
