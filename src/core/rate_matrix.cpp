#include "core/rate_matrix.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace cmesolve::core {

namespace {

/// States per assembly chunk. Fixed (thread-count independent) so the
/// triplet stream below is always concatenated in the same order.
constexpr index_t kAssemblyChunk = 2048;

}  // namespace

sparse::Csr rate_matrix(const StateSpace& space) {
  CMESOLVE_TRACE_SPAN("core.rate_matrix");
  if (space.truncated()) {
    throw std::runtime_error(
        "rate_matrix: state space truncated; raise max_states");
  }
  const ReactionNetwork& net = space.network();
  const index_t n = space.size();
  const int nr = net.num_reactions();

  // Propensity evaluation and successor lookup dominate assembly time and
  // are independent per source state, so states are carved into fixed
  // chunks, each chunk fills a private triplet buffer, and the buffers are
  // concatenated in chunk order — the exact triplet sequence the serial
  // loop would emit, hence an identical CSR after sort_and_combine.
  // (StateSpace::find is a const hash lookup, safe for concurrent reads.)
  const index_t nchunks = n > 0 ? (n + kAssemblyChunk - 1) / kAssemblyChunk : 0;
  std::vector<sparse::Coo> parts(static_cast<std::size_t>(nchunks));

  util::parallel_tasks(static_cast<int>(nchunks), [&](int c) {
    const index_t j0 = static_cast<index_t>(c) * kAssemblyChunk;
    const index_t j1 = std::min<index_t>(j0 + kAssemblyChunk, n);
    sparse::Coo& part = parts[static_cast<std::size_t>(c)];
    // Every state emits at most one triplet per reaction plus its diagonal,
    // so this reserve is an exact upper bound: the fill pass below never
    // reallocates, whatever the network density.
    part.reserve(static_cast<std::size_t>(j1 - j0) *
                 static_cast<std::size_t>(nr + 1));
    for (index_t j = j0; j < j1; ++j) {
      const State x = space.state(j);
      real_t out_rate = 0.0;
      for (int k = 0; k < nr; ++k) {
        if (!net.within_capacity(k, x)) continue;
        const real_t a = net.propensity(k, x);
        if (a <= 0.0) continue;
        const index_t i = space.find(net.apply(k, x));
        if (i < 0) {
          throw std::logic_error("rate_matrix: successor not enumerated");
        }
        if (i == j) continue;  // null transition (no net state change)
        part.add(i, j, a);
        out_rate += a;
      }
      part.add(j, j, -out_rate);
    }
  });

  sparse::Coo coo;
  coo.nrows = n;
  coo.ncols = n;
  std::size_t total = 0;
  for (const sparse::Coo& part : parts) total += part.nnz();
  coo.reserve(total);
  for (sparse::Coo& part : parts) {
    coo.row.insert(coo.row.end(), part.row.begin(), part.row.end());
    coo.col.insert(coo.col.end(), part.col.begin(), part.col.end());
    coo.val.insert(coo.val.end(), part.val.begin(), part.val.end());
    part = sparse::Coo{};  // release chunk memory eagerly
  }
  sparse::Csr csr = sparse::csr_from_coo(std::move(coo));
  obs::count("core.rate_matrix.assemblies");
  obs::observe("core.rate_matrix.nnz", static_cast<real_t>(csr.nnz()));
  obs::gauge("core.rate_matrix.last.rows", static_cast<real_t>(csr.nrows));
  obs::gauge("core.rate_matrix.last.nnz", static_cast<real_t>(csr.nnz()));
  return csr;
}

// ---------------------------------------------------------------------------
// ProjectedRateMatrix
// ---------------------------------------------------------------------------
ProjectedRateMatrix::ProjectedRateMatrix(const ReactionNetwork& network)
    : network_(&network), num_species_(network.num_species()) {
  stencil_ptr_.push_back(0);
}

void ProjectedRateMatrix::extend(const DynamicStateSpace& space) {
  CMESOLVE_TRACE_SPAN("core.projected.extend");
  const index_t old_n = cached_states();
  const index_t n = space.size();
  if (n < old_n) {
    throw std::logic_error(
        "ProjectedRateMatrix::extend: space shrank without compact()");
  }
  if (n == old_n) return;
  const int nr = network_->num_reactions();

  // Per-state stencils are independent, so new states are carved into fixed
  // chunks whose private buffers are concatenated in chunk order — the same
  // stencil stream a serial loop would emit at any thread count.
  struct Chunk {
    std::vector<std::size_t> len;
    std::vector<std::int32_t> succ_state;
    std::vector<real_t> succ_rate;
    std::vector<real_t> total_rate;
  };
  const index_t added = n - old_n;
  const index_t nchunks = (added + kAssemblyChunk - 1) / kAssemblyChunk;
  std::vector<Chunk> chunks(static_cast<std::size_t>(nchunks));

  util::parallel_tasks(static_cast<int>(nchunks), [&](int c) {
    const index_t j0 = old_n + static_cast<index_t>(c) * kAssemblyChunk;
    const index_t j1 = std::min<index_t>(j0 + kAssemblyChunk, n);
    Chunk& chunk = chunks[static_cast<std::size_t>(c)];
    for (index_t j = j0; j < j1; ++j) {
      const State x = space.state(j);
      std::size_t len = 0;
      real_t total = 0.0;
      for (int k = 0; k < nr; ++k) {
        if (!network_->within_capacity(k, x)) continue;
        const real_t a = network_->propensity(k, x);
        if (a <= 0.0) continue;
        const State next = network_->apply(k, x);
        if (next == x) continue;  // null transition cancels in the generator
        chunk.succ_state.insert(chunk.succ_state.end(), next.begin(),
                                next.end());
        chunk.succ_rate.push_back(a);
        total += a;
        ++len;
      }
      chunk.len.push_back(len);
      chunk.total_rate.push_back(total);
    }
  });

  for (Chunk& chunk : chunks) {
    for (std::size_t i = 0; i < chunk.len.size(); ++i) {
      stencil_ptr_.push_back(stencil_ptr_.back() + chunk.len[i]);
      total_rate_.push_back(chunk.total_rate[i]);
    }
    succ_state_.insert(succ_state_.end(), chunk.succ_state.begin(),
                       chunk.succ_state.end());
    succ_rate_.insert(succ_rate_.end(), chunk.succ_rate.begin(),
                      chunk.succ_rate.end());
    chunk = Chunk{};
  }
  obs::count("core.projected.extends");
  obs::count("core.projected.states_cached",
             static_cast<std::uint64_t>(added));
}

void ProjectedRateMatrix::compact(const std::vector<index_t>& remap) {
  CMESOLVE_TRACE_SPAN("core.projected.compact");
  const auto old_n = static_cast<std::size_t>(cached_states());
  if (remap.size() != old_n) {
    throw std::invalid_argument("ProjectedRateMatrix::compact: remap size");
  }
  const auto ns = static_cast<std::size_t>(num_species_);
  std::vector<std::size_t> new_ptr{0};
  std::vector<std::int32_t> new_succ;
  std::vector<real_t> new_rate;
  std::vector<real_t> new_total;
  for (std::size_t j = 0; j < old_n; ++j) {
    if (remap[j] < 0) continue;
    // compact() preserves relative order, so appending in old-index order
    // lands each survivor at its new index.
    const std::size_t b = stencil_ptr_[j];
    const std::size_t e = stencil_ptr_[j + 1];
    new_succ.insert(new_succ.end(), succ_state_.begin() + static_cast<std::ptrdiff_t>(b * ns),
                    succ_state_.begin() + static_cast<std::ptrdiff_t>(e * ns));
    new_rate.insert(new_rate.end(), succ_rate_.begin() + static_cast<std::ptrdiff_t>(b),
                    succ_rate_.begin() + static_cast<std::ptrdiff_t>(e));
    new_ptr.push_back(new_ptr.back() + (e - b));
    new_total.push_back(total_rate_[j]);
  }
  stencil_ptr_ = std::move(new_ptr);
  succ_state_ = std::move(new_succ);
  succ_rate_ = std::move(new_rate);
  total_rate_ = std::move(new_total);
}

ProjectedRateMatrix::Assembly ProjectedRateMatrix::assemble(
    const DynamicStateSpace& space, index_t return_state) const {
  CMESOLVE_TRACE_SPAN("core.projected.assemble");
  const index_t n = space.size();
  if (cached_states() != n) {
    throw std::logic_error(
        "ProjectedRateMatrix::assemble: stencil cache out of sync; call "
        "extend()/compact() after every space mutation");
  }
  if (return_state < 0 || return_state >= n) {
    throw std::invalid_argument(
        "ProjectedRateMatrix::assemble: return_state not a member");
  }
  const auto ns = static_cast<std::size_t>(num_species_);

  Assembly out;
  out.outflow.assign(static_cast<std::size_t>(n), 0.0);

  const index_t nchunks = n > 0 ? (n + kAssemblyChunk - 1) / kAssemblyChunk : 0;
  std::vector<sparse::Coo> parts(static_cast<std::size_t>(nchunks));

  util::parallel_tasks(static_cast<int>(nchunks), [&](int c) {
    const index_t j0 = static_cast<index_t>(c) * kAssemblyChunk;
    const index_t j1 = std::min<index_t>(j0 + kAssemblyChunk, n);
    sparse::Coo& part = parts[static_cast<std::size_t>(c)];
    // Exact capacity from the stencil cache: each row emits its cached
    // successors plus at most a leak redirect and the diagonal.
    part.reserve(stencil_ptr_[static_cast<std::size_t>(j1)] -
                 stencil_ptr_[static_cast<std::size_t>(j0)] +
                 2 * static_cast<std::size_t>(j1 - j0));
    State next(ns);
    for (index_t j = j0; j < j1; ++j) {
      const std::size_t b = stencil_ptr_[static_cast<std::size_t>(j)];
      const std::size_t e = stencil_ptr_[static_cast<std::size_t>(j) + 1];
      real_t leaked = 0.0;
      for (std::size_t s = b; s < e; ++s) {
        for (std::size_t sp = 0; sp < ns; ++sp) {
          next[sp] = succ_state_[s * ns + sp];
        }
        const real_t a = succ_rate_[s];
        const index_t i = space.find(next);
        if (i >= 0) {
          part.add(i, j, a);
        } else {
          leaked += a;
        }
      }
      // Redirect the leaked flux to the return state (a j->j redirect is a
      // self-loop, which cancels against the diagonal).
      if (leaked > 0.0 && return_state != j) {
        part.add(return_state, j, leaked);
      }
      const real_t diag = -(total_rate_[static_cast<std::size_t>(j)] -
                            (return_state == j ? leaked : 0.0));
      part.add(j, j, diag);
      out.outflow[static_cast<std::size_t>(j)] = leaked;
    }
  });

  sparse::Coo coo;
  coo.nrows = n;
  coo.ncols = n;
  std::size_t total = 0;
  for (const sparse::Coo& part : parts) total += part.nnz();
  coo.reserve(total);
  for (sparse::Coo& part : parts) {
    coo.row.insert(coo.row.end(), part.row.begin(), part.row.end());
    coo.col.insert(coo.col.end(), part.col.begin(), part.col.end());
    coo.val.insert(coo.val.end(), part.val.begin(), part.val.end());
    part = sparse::Coo{};
  }
  out.a = sparse::csr_from_coo(std::move(coo));
  obs::count("core.projected.assemblies");
  obs::gauge("core.projected.last.rows", static_cast<real_t>(out.a.nrows));
  obs::gauge("core.projected.last.nnz", static_cast<real_t>(out.a.nnz()));
  return out;
}

ProjectedRateMatrix::Assembly ProjectedRateMatrix::assemble_absorbing(
    const DynamicStateSpace& space) const {
  CMESOLVE_TRACE_SPAN("core.projected.assemble_absorbing");
  const index_t n = space.size();
  if (cached_states() != n) {
    throw std::logic_error(
        "ProjectedRateMatrix::assemble_absorbing: stencil cache out of "
        "sync; call extend()/compact() after every space mutation");
  }
  const auto ns = static_cast<std::size_t>(num_species_);

  Assembly out;
  out.outflow.assign(static_cast<std::size_t>(n), 0.0);

  const index_t nchunks = n > 0 ? (n + kAssemblyChunk - 1) / kAssemblyChunk : 0;
  std::vector<sparse::Coo> parts(static_cast<std::size_t>(nchunks));

  util::parallel_tasks(static_cast<int>(nchunks), [&](int c) {
    const index_t j0 = static_cast<index_t>(c) * kAssemblyChunk;
    const index_t j1 = std::min<index_t>(j0 + kAssemblyChunk, n);
    sparse::Coo& part = parts[static_cast<std::size_t>(c)];
    part.reserve(stencil_ptr_[static_cast<std::size_t>(j1)] -
                 stencil_ptr_[static_cast<std::size_t>(j0)] +
                 static_cast<std::size_t>(j1 - j0));
    State next(ns);
    for (index_t j = j0; j < j1; ++j) {
      const std::size_t b = stencil_ptr_[static_cast<std::size_t>(j)];
      const std::size_t e = stencil_ptr_[static_cast<std::size_t>(j) + 1];
      real_t leaked = 0.0;
      for (std::size_t s = b; s < e; ++s) {
        for (std::size_t sp = 0; sp < ns; ++sp) {
          next[sp] = succ_state_[s * ns + sp];
        }
        const real_t a = succ_rate_[s];
        const index_t i = space.find(next);
        if (i >= 0) {
          part.add(i, j, a);
        } else {
          leaked += a;
        }
      }
      // The leak stays in the diagonal (column sums to -leaked): dropped
      // flux is absorbed by the implicit sink state, never redirected.
      part.add(j, j, -total_rate_[static_cast<std::size_t>(j)]);
      out.outflow[static_cast<std::size_t>(j)] = leaked;
    }
  });

  sparse::Coo coo;
  coo.nrows = n;
  coo.ncols = n;
  std::size_t total = 0;
  for (const sparse::Coo& part : parts) total += part.nnz();
  coo.reserve(total);
  for (sparse::Coo& part : parts) {
    coo.row.insert(coo.row.end(), part.row.begin(), part.row.end());
    coo.col.insert(coo.col.end(), part.col.begin(), part.col.end());
    coo.val.insert(coo.val.end(), part.val.begin(), part.val.end());
    part = sparse::Coo{};
  }
  out.a = sparse::csr_from_coo(std::move(coo));
  obs::count("core.projected.assemblies");
  obs::gauge("core.projected.last.rows", static_cast<real_t>(out.a.nrows));
  obs::gauge("core.projected.last.nnz", static_cast<real_t>(out.a.nnz()));
  return out;
}

void ProjectedRateMatrix::out_of_set_successors(const DynamicStateSpace& space,
                                                index_t j,
                                                std::vector<State>& out) const {
  const auto ns = static_cast<std::size_t>(num_species_);
  const std::size_t b = stencil_ptr_[static_cast<std::size_t>(j)];
  const std::size_t e = stencil_ptr_[static_cast<std::size_t>(j) + 1];
  State next(ns);
  for (std::size_t s = b; s < e; ++s) {
    for (std::size_t sp = 0; sp < ns; ++sp) {
      next[sp] = succ_state_[s * ns + sp];
    }
    if (space.find(next) < 0) out.push_back(next);
  }
}

real_t max_column_sum(const sparse::Csr& a) {
  std::vector<real_t> colsum(static_cast<std::size_t>(a.ncols), 0.0);
  for (index_t r = 0; r < a.nrows; ++r) {
    for (index_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p) {
      colsum[static_cast<std::size_t>(a.col_idx[p])] += a.val[p];
    }
  }
  real_t worst = 0.0;
  for (real_t s : colsum) worst = std::max(worst, std::abs(s));
  return worst;
}

}  // namespace cmesolve::core
