#include "core/rate_matrix.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

namespace cmesolve::core {

namespace {

/// States per assembly chunk. Fixed (thread-count independent) so the
/// triplet stream below is always concatenated in the same order.
constexpr index_t kAssemblyChunk = 2048;

}  // namespace

sparse::Csr rate_matrix(const StateSpace& space) {
  CMESOLVE_TRACE_SPAN("core.rate_matrix");
  if (space.truncated()) {
    throw std::runtime_error(
        "rate_matrix: state space truncated; raise max_states");
  }
  const ReactionNetwork& net = space.network();
  const index_t n = space.size();
  const int nr = net.num_reactions();

  // Propensity evaluation and successor lookup dominate assembly time and
  // are independent per source state, so states are carved into fixed
  // chunks, each chunk fills a private triplet buffer, and the buffers are
  // concatenated in chunk order — the exact triplet sequence the serial
  // loop would emit, hence an identical CSR after sort_and_combine.
  // (StateSpace::find is a const hash lookup, safe for concurrent reads.)
  const index_t nchunks = n > 0 ? (n + kAssemblyChunk - 1) / kAssemblyChunk : 0;
  std::vector<sparse::Coo> parts(static_cast<std::size_t>(nchunks));

  util::parallel_tasks(static_cast<int>(nchunks), [&](int c) {
    const index_t j0 = static_cast<index_t>(c) * kAssemblyChunk;
    const index_t j1 = std::min<index_t>(j0 + kAssemblyChunk, n);
    sparse::Coo& part = parts[static_cast<std::size_t>(c)];
    part.reserve(static_cast<std::size_t>(j1 - j0) *
                 static_cast<std::size_t>(nr / 2 + 2));
    for (index_t j = j0; j < j1; ++j) {
      const State x = space.state(j);
      real_t out_rate = 0.0;
      for (int k = 0; k < nr; ++k) {
        if (!net.within_capacity(k, x)) continue;
        const real_t a = net.propensity(k, x);
        if (a <= 0.0) continue;
        const index_t i = space.find(net.apply(k, x));
        if (i < 0) {
          throw std::logic_error("rate_matrix: successor not enumerated");
        }
        if (i == j) continue;  // null transition (no net state change)
        part.add(i, j, a);
        out_rate += a;
      }
      part.add(j, j, -out_rate);
    }
  });

  sparse::Coo coo;
  coo.nrows = n;
  coo.ncols = n;
  std::size_t total = 0;
  for (const sparse::Coo& part : parts) total += part.nnz();
  coo.reserve(total);
  for (sparse::Coo& part : parts) {
    coo.row.insert(coo.row.end(), part.row.begin(), part.row.end());
    coo.col.insert(coo.col.end(), part.col.begin(), part.col.end());
    coo.val.insert(coo.val.end(), part.val.begin(), part.val.end());
    part = sparse::Coo{};  // release chunk memory eagerly
  }
  sparse::Csr csr = sparse::csr_from_coo(std::move(coo));
  obs::count("core.rate_matrix.assemblies");
  obs::observe("core.rate_matrix.nnz", static_cast<real_t>(csr.nnz()));
  obs::gauge("core.rate_matrix.last.rows", static_cast<real_t>(csr.nrows));
  obs::gauge("core.rate_matrix.last.nnz", static_cast<real_t>(csr.nnz()));
  return csr;
}

real_t max_column_sum(const sparse::Csr& a) {
  std::vector<real_t> colsum(static_cast<std::size_t>(a.ncols), 0.0);
  for (index_t r = 0; r < a.nrows; ++r) {
    for (index_t p = a.row_ptr[r]; p < a.row_ptr[r + 1]; ++p) {
      colsum[static_cast<std::size_t>(a.col_idx[p])] += a.val[p];
    }
  }
  real_t worst = 0.0;
  for (real_t s : colsum) worst = std::max(worst, std::abs(s));
  return worst;
}

}  // namespace cmesolve::core
