#pragma once
//
// Reaction-rate matrix assembly (Sec. II).
//
// A(i, j) for i != j is the total propensity of reactions taking microstate
// j to microstate i; A(j, j) = -sum_{i != j} A(i, j), so every column sums
// to zero and dP/dt = A P conserves probability. The steady state solves
// A P = 0.
//
#include "core/state_space.hpp"
#include "sparse/csr.hpp"

namespace cmesolve::core {

/// Assemble A in CSR (row-major) from an enumerated state space. The DFS
/// enumeration order is preserved, exposing the {-1, 0, +1} band.
/// Throws when the space was truncated mid-enumeration (the matrix would
/// leak probability at the artificial boundary).
[[nodiscard]] sparse::Csr rate_matrix(const StateSpace& space);

/// Diagnostics for tests: max |column sum| of A (should be ~0).
[[nodiscard]] real_t max_column_sum(const sparse::Csr& a);

/// Incremental assembler for the finite-state-projection generator over a
/// DynamicStateSpace (src/fsp/).
///
/// The transition stencil of state j — its applicable reactions' successor
/// states and propensities — depends only on j and the network, never on
/// which other states are members. Stencils are therefore computed once
/// when a state enters the set (extend()) and reused by every subsequent
/// assemble(): a round's rebuild after expansion/pruning costs hash lookups
/// plus CSR construction, with no propensity re-evaluation for surviving
/// states, and compact() drops the stencils of pruned states in step with
/// the space's renumbering.
///
/// assemble() redirects flux into non-member states back to a designated
/// return state (Gupta, Mikelson & Khammash's stationary FSP), keeping
/// every column zero-sum so the projected generator is a proper CTMC the
/// existing Jacobi/GMRES solvers handle unchanged. The redirected flux per
/// source state is reported in `outflow`; its stationary expectation is the
/// truncation error indicator of the FSP loop.
class ProjectedRateMatrix {
 public:
  explicit ProjectedRateMatrix(const ReactionNetwork& network);

  /// Compute and cache stencils for states [cached_states(), space.size()).
  /// Call after the space grew; no-op when nothing was added.
  void extend(const DynamicStateSpace& space);

  /// Number of states whose stencils are cached (== space.size() after
  /// extend()/compact() have tracked every mutation).
  [[nodiscard]] index_t cached_states() const noexcept {
    return static_cast<index_t>(stencil_ptr_.size()) - 1;
  }

  /// Follow a DynamicStateSpace::compact renumbering: drop stencils of
  /// removed states, renumber the rest in order.
  void compact(const std::vector<index_t>& remap);

  struct Assembly {
    sparse::Csr a;                ///< projected generator, columns sum to 0
    std::vector<real_t> outflow;  ///< per-state propensity leaving the set
  };
  /// Assemble the projected generator over the current members, redirecting
  /// out-of-set flux to column `return_state`.
  [[nodiscard]] Assembly assemble(const DynamicStateSpace& space,
                                  index_t return_state) const;

  /// Assemble the TRANSIENT projection (Munsky & Khammash's original FSP):
  /// flux into non-member states is dropped instead of redirected, so
  /// column j sums to -outflow[j] and the generator is sub-stochastic. The
  /// mass a transient propagation loses, 1 - ||P(t)||_1, is then exactly
  /// the accumulated sink mass, which the FSP transient theorem turns into
  /// a uniform-in-time error bound.
  [[nodiscard]] Assembly assemble_absorbing(
      const DynamicStateSpace& space) const;

  /// Successor states of member j that are NOT members (boundary-expansion
  /// candidates). Appends to `out`.
  void out_of_set_successors(const DynamicStateSpace& space, index_t j,
                             std::vector<State>& out) const;

  /// Total propensity leaving state j (Σ_k A_k(x_j), capacity-box
  /// truncated) — the λ_j of the embedded-jump-chain error bound.
  [[nodiscard]] real_t total_rate(index_t j) const noexcept {
    return total_rate_[static_cast<std::size_t>(j)];
  }

 private:
  const ReactionNetwork* network_;
  int num_species_;
  /// Stencil storage, flattened: successor s of state j occupies
  /// succ_state_[(stencil_ptr_[j]+s) * num_species_ ...] with propensity
  /// succ_rate_[stencil_ptr_[j]+s]. Self-transitions are dropped at build
  /// time (no net state change cancels in the generator).
  std::vector<std::size_t> stencil_ptr_;  ///< size cached_states()+1
  std::vector<std::int32_t> succ_state_;
  std::vector<real_t> succ_rate_;
  std::vector<real_t> total_rate_;  ///< per-state Σ propensities
};

}  // namespace cmesolve::core
