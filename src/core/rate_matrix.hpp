#pragma once
//
// Reaction-rate matrix assembly (Sec. II).
//
// A(i, j) for i != j is the total propensity of reactions taking microstate
// j to microstate i; A(j, j) = -sum_{i != j} A(i, j), so every column sums
// to zero and dP/dt = A P conserves probability. The steady state solves
// A P = 0.
//
#include "core/state_space.hpp"
#include "sparse/csr.hpp"

namespace cmesolve::core {

/// Assemble A in CSR (row-major) from an enumerated state space. The DFS
/// enumeration order is preserved, exposing the {-1, 0, +1} band.
/// Throws when the space was truncated mid-enumeration (the matrix would
/// leak probability at the artificial boundary).
[[nodiscard]] sparse::Csr rate_matrix(const StateSpace& space);

/// Diagnostics for tests: max |column sum| of A (should be ~0).
[[nodiscard]] real_t max_column_sum(const sparse::Csr& a);

}  // namespace cmesolve::core
