#include "core/reaction_network.hpp"

#include <stdexcept>

#include "util/binomial.hpp"

namespace cmesolve::core {

int ReactionNetwork::add_species(std::string name, std::int32_t capacity) {
  if (capacity < 0) {
    throw std::invalid_argument("species capacity must be non-negative");
  }
  species_names_.push_back(std::move(name));
  capacity_.push_back(capacity);
  return static_cast<int>(capacity_.size()) - 1;
}

void ReactionNetwork::add_reaction(Reaction r) {
  const auto check = [this](int s) {
    if (s < 0 || s >= num_species()) {
      throw std::out_of_range("reaction references unknown species");
    }
  };
  for (const auto& re : r.reactants) {
    check(re.species);
    if (re.copies <= 0) {
      throw std::invalid_argument("reactant copy number must be positive");
    }
  }
  for (const auto& ch : r.changes) check(ch.species);
  if (r.rate < 0.0) {
    throw std::invalid_argument("reaction rate must be non-negative");
  }
  reactions_.push_back(std::move(r));
}

void ReactionNetwork::add_reaction(std::string name, real_t rate,
                                   std::vector<Reactant> reactants,
                                   std::vector<SpeciesChange> changes) {
  add_reaction(Reaction{std::move(name), rate, std::move(reactants),
                        std::move(changes)});
}

int ReactionNetwork::find_species(std::string_view name) const noexcept {
  for (std::size_t s = 0; s < species_names_.size(); ++s) {
    if (species_names_[s] == name) return static_cast<int>(s);
  }
  return -1;
}

real_t ReactionNetwork::propensity(int k, const State& x) const {
  const Reaction& r = reactions_[static_cast<std::size_t>(k)];
  // Rate-last association: the propensity is rate * (unit combinatorial
  // product). Keeping the rate as the final multiply makes every
  // propensity exactly linear in the rate constant at the bit level,
  // which the batched ensemble operator relies on to share one unit
  // propensity table across parameter points (1.0 * u == u exactly).
  real_t a = 1.0;
  for (const auto& re : r.reactants) {
    a *= binomial(x[static_cast<std::size_t>(re.species)], re.copies);
    if (a == 0.0) return 0.0;
  }
  return r.rate * a;
}

bool ReactionNetwork::within_capacity(int k, const State& x) const {
  const Reaction& r = reactions_[static_cast<std::size_t>(k)];
  for (const auto& ch : r.changes) {
    const std::int32_t next = x[static_cast<std::size_t>(ch.species)] + ch.delta;
    if (next < 0 || next > capacity_[static_cast<std::size_t>(ch.species)]) {
      return false;
    }
  }
  return true;
}

State ReactionNetwork::apply(int k, const State& x) const {
  State next = x;
  const Reaction& r = reactions_[static_cast<std::size_t>(k)];
  for (const auto& ch : r.changes) {
    next[static_cast<std::size_t>(ch.species)] += ch.delta;
  }
  return next;
}

bool ReactionNetwork::valid_state(const State& x) const {
  if (x.size() != capacity_.size()) return false;
  for (std::size_t s = 0; s < x.size(); ++s) {
    if (x[s] < 0 || x[s] > capacity_[s]) return false;
  }
  return true;
}

}  // namespace cmesolve::core
