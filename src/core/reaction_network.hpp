#pragma once
//
// Biochemical reaction network model (Sec. II-A).
//
// A network is a set of species with finite buffer capacities plus a set of
// mass-action reactions. The propensity of reaction k in microstate x is
//     A_k(x) = r_k * prod_i C(x_i, c_i)
// where c_i is the reactant copy number of species i. A reaction is
// applicable when its propensity is positive AND the successor state stays
// inside the capacity box (finite-buffer truncation of Cao & Liang [17]).
//
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/types.hpp"

namespace cmesolve::core {

/// Species copy-number vector. Kept as plain int32 counts.
using State = std::vector<std::int32_t>;

struct Reactant {
  int species = 0;
  std::int32_t copies = 1;  ///< c_i in the propensity binomial
};

struct SpeciesChange {
  int species = 0;
  std::int32_t delta = 0;  ///< net stoichiometric change
};

struct Reaction {
  std::string name;
  real_t rate = 0.0;  ///< intrinsic rate r_k
  std::vector<Reactant> reactants;
  std::vector<SpeciesChange> changes;
};

class ReactionNetwork {
 public:
  /// Register a species with an inclusive copy-number capacity.
  /// @return species id used by reactions.
  int add_species(std::string name, std::int32_t capacity);

  /// Register a reaction. Species ids must exist; throws otherwise.
  void add_reaction(Reaction r);

  /// Convenience: build a reaction from (species id, count) pairs.
  void add_reaction(std::string name, real_t rate,
                    std::vector<Reactant> reactants,
                    std::vector<SpeciesChange> changes);

  [[nodiscard]] int num_species() const noexcept {
    return static_cast<int>(capacity_.size());
  }
  [[nodiscard]] int num_reactions() const noexcept {
    return static_cast<int>(reactions_.size());
  }
  [[nodiscard]] const std::string& species_name(int s) const {
    return species_names_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] std::int32_t capacity(int s) const {
    return capacity_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] const Reaction& reaction(int k) const {
    return reactions_[static_cast<std::size_t>(k)];
  }
  [[nodiscard]] const std::vector<Reaction>& reactions() const noexcept {
    return reactions_;
  }

  /// Species id by name; -1 when absent.
  [[nodiscard]] int find_species(std::string_view name) const noexcept;

  /// A_k(x): zero when reactants are missing. Does NOT check capacity.
  [[nodiscard]] real_t propensity(int k, const State& x) const;

  /// True when x + delta_k stays inside [0, capacity] for every species.
  [[nodiscard]] bool within_capacity(int k, const State& x) const;

  /// Applicable = propensity > 0 and within capacity.
  [[nodiscard]] bool applicable(int k, const State& x) const {
    return within_capacity(k, x) && propensity(k, x) > 0.0;
  }

  /// Successor state x + delta_k (no checks; pair with applicable()).
  [[nodiscard]] State apply(int k, const State& x) const;

  /// True when every species count is inside [0, capacity].
  [[nodiscard]] bool valid_state(const State& x) const;

 private:
  std::vector<std::string> species_names_;
  std::vector<std::int32_t> capacity_;
  std::vector<Reaction> reactions_;
};

}  // namespace cmesolve::core
