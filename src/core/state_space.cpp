#include "core/state_space.hpp"

#include <bit>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace cmesolve::core {

// ---------------------------------------------------------------------------
// StatePacker
// ---------------------------------------------------------------------------
StatePacker::StatePacker(const ReactionNetwork& network)
    : num_species_(network.num_species()) {
  bit_width_.resize(static_cast<std::size_t>(num_species_));
  int total_bits = 0;
  for (int s = 0; s < num_species_; ++s) {
    const auto cap = static_cast<std::uint32_t>(network.capacity(s));
    bit_width_[static_cast<std::size_t>(s)] =
        std::max(1, static_cast<int>(std::bit_width(cap)));
    total_bits += bit_width_[static_cast<std::size_t>(s)];
  }
  if (total_bits > 128) {
    throw std::invalid_argument(
        "state space key exceeds 128 bits; reduce species or capacities");
  }
}

StateKey StatePacker::pack(const State& x) const {
  StateKey key{0, 0};
  int bit = 0;
  for (int s = 0; s < num_species_; ++s) {
    const int w = bit_width_[static_cast<std::size_t>(s)];
    const auto v = static_cast<std::uint64_t>(x[static_cast<std::size_t>(s)]);
    const int word = bit / 64;
    const int shift = bit % 64;
    key[static_cast<std::size_t>(word)] |= v << shift;
    // Straddles into the next word?
    if (shift + w > 64 && word == 0) {
      key[1] |= v >> (64 - shift);
    }
    bit += w;
  }
  return key;
}

// ---------------------------------------------------------------------------
// StateSpace
// ---------------------------------------------------------------------------
StateSpace::StateSpace(const ReactionNetwork& network, State initial,
                       std::size_t max_states, VisitOrder order,
                       std::uint64_t seed)
    : network_(&network),
      num_species_(network.num_species()),
      packer_(network) {
  if (!network.valid_state(initial)) {
    throw std::invalid_argument("initial state outside capacity box");
  }
  enumerate(std::move(initial), max_states, order, seed);
}

State StateSpace::state(index_t i) const {
  State x(static_cast<std::size_t>(num_species_));
  for (int s = 0; s < num_species_; ++s) {
    x[static_cast<std::size_t>(s)] = count(i, s);
  }
  return x;
}

index_t StateSpace::find(const State& x) const {
  if (!network_->valid_state(x)) return -1;
  const auto it = index_.find(pack(x));
  return it == index_.end() ? index_t{-1} : it->second;
}

void StateSpace::enumerate(State initial, std::size_t max_states,
                           VisitOrder order, std::uint64_t seed) {
  CMESOLVE_TRACE_SPAN("core.enumerate");
  const int nr = network_->num_reactions();

  // The frontier doubles as stack (DFS: pop back) and queue (BFS: pop
  // front via a moving head index).
  std::vector<State> frontier;
  std::size_t head = 0;
  frontier.push_back(std::move(initial));

  while (head < frontier.size()) {
    State x;
    if (order == VisitOrder::kBfs) {
      x = std::move(frontier[head++]);
    } else {
      x = std::move(frontier.back());
      frontier.pop_back();
    }

    const StateKey key = pack(x);
    auto [it, inserted] = index_.try_emplace(key, static_cast<index_t>(num_states_));
    if (!inserted) continue;  // already visited

    states_.insert(states_.end(), x.begin(), x.end());
    ++num_states_;
    if (num_states_ >= max_states) {
      truncated_ = true;
      break;
    }

    // DFS pushes successors in reverse reaction order: reaction 0's
    // successor lands on top of the stack, so the visit walks it next and
    // reversible pairs occupy adjacent indices (the diagonal band of
    // Sec. V). BFS enqueues in forward order.
    if (order == VisitOrder::kBfs) {
      for (int k = 0; k < nr; ++k) {
        if (!network_->applicable(k, x)) continue;
        State next = network_->apply(k, x);
        if (index_.find(pack(next)) == index_.end()) {
          frontier.push_back(std::move(next));
        }
      }
    } else {
      for (int k = nr - 1; k >= 0; --k) {
        if (!network_->applicable(k, x)) continue;
        State next = network_->apply(k, x);
        if (index_.find(pack(next)) == index_.end()) {
          frontier.push_back(std::move(next));
        }
      }
    }
  }

  if (order == VisitOrder::kRandom && !truncated_) {
    // Re-shuffle the assigned indices: worst-case ordering baseline.
    Xoshiro256 rng(seed);
    std::vector<index_t> perm(num_states_);
    for (std::size_t i = 0; i < num_states_; ++i) {
      perm[i] = static_cast<index_t>(i);
    }
    for (std::size_t i = num_states_; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.bounded(i)]);
    }
    std::vector<std::int32_t> shuffled(states_.size());
    const auto ns = static_cast<std::size_t>(num_species_);
    for (std::size_t i = 0; i < num_states_; ++i) {
      for (std::size_t sp = 0; sp < ns; ++sp) {
        shuffled[static_cast<std::size_t>(perm[i]) * ns + sp] =
            states_[i * ns + sp];
      }
    }
    states_ = std::move(shuffled);
    for (auto& [key, idx] : index_) {
      idx = perm[static_cast<std::size_t>(idx)];
    }
  }

  obs::count("core.enumerations");
  obs::observe("core.state_space.states", static_cast<real_t>(num_states_));
  obs::gauge("core.state_space.last.states", static_cast<real_t>(num_states_));
  obs::gauge("core.state_space.last.truncated", truncated_ ? 1.0 : 0.0);
}

// ---------------------------------------------------------------------------
// DynamicStateSpace
// ---------------------------------------------------------------------------
DynamicStateSpace::DynamicStateSpace(const ReactionNetwork& network,
                                     const State& initial)
    : network_(&network),
      num_species_(network.num_species()),
      packer_(network) {
  if (!network.valid_state(initial)) {
    throw std::invalid_argument("initial state outside capacity box");
  }
  add(initial);
}

State DynamicStateSpace::state(index_t i) const {
  State x(static_cast<std::size_t>(num_species_));
  for (int s = 0; s < num_species_; ++s) {
    x[static_cast<std::size_t>(s)] = count(i, s);
  }
  return x;
}

index_t DynamicStateSpace::find(const State& x) const {
  if (!network_->valid_state(x)) return -1;
  const auto it = index_.find(packer_.pack(x));
  return it == index_.end() ? index_t{-1} : it->second;
}

index_t DynamicStateSpace::add(const State& x) {
  if (!network_->valid_state(x)) {
    throw std::invalid_argument(
        "DynamicStateSpace::add: state outside capacity box");
  }
  const auto [it, inserted] =
      index_.try_emplace(packer_.pack(x), static_cast<index_t>(num_states_));
  if (inserted) {
    states_.insert(states_.end(), x.begin(), x.end());
    ++num_states_;
  }
  return it->second;
}

void DynamicStateSpace::grow_bfs(std::size_t target) {
  const int nr = network_->num_reactions();
  // The member list itself is the queue: every successor we add is appended
  // behind `head`, so the walk is a plain breadth-first visit seeded by all
  // current members in index order.
  for (index_t head = 0; static_cast<std::size_t>(head) < num_states_ &&
                         num_states_ < target;
       ++head) {
    const State x = state(head);
    for (int k = 0; k < nr && num_states_ < target; ++k) {
      if (!network_->applicable(k, x)) continue;
      add(network_->apply(k, x));
    }
  }
}

std::vector<index_t> DynamicStateSpace::compact(const std::vector<char>& keep) {
  if (keep.size() != num_states_) {
    throw std::invalid_argument("DynamicStateSpace::compact: mask size");
  }
  std::vector<index_t> remap(num_states_, index_t{-1});
  const auto ns = static_cast<std::size_t>(num_species_);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < num_states_; ++i) {
    if (!keep[i]) continue;
    remap[i] = static_cast<index_t>(kept);
    if (kept != i) {
      for (std::size_t sp = 0; sp < ns; ++sp) {
        states_[kept * ns + sp] = states_[i * ns + sp];
      }
    }
    ++kept;
  }
  states_.resize(kept * ns);
  num_states_ = kept;
  // Rebuild the key index from the surviving members (erase-and-update of
  // the old map would touch every entry anyway).
  index_.clear();
  index_.reserve(kept);
  for (std::size_t i = 0; i < kept; ++i) {
    index_.emplace(packer_.pack(state(static_cast<index_t>(i))),
                   static_cast<index_t>(i));
  }
  return remap;
}

bool DynamicStateSpace::is_boundary(index_t i) const {
  const int nr = network_->num_reactions();
  const State x = state(i);
  for (int k = 0; k < nr; ++k) {
    if (!network_->applicable(k, x)) continue;
    const State next = network_->apply(k, x);
    if (next == x) continue;
    if (index_.find(packer_.pack(next)) == index_.end()) return true;
  }
  return false;
}

std::vector<index_t> DynamicStateSpace::boundary_states() const {
  std::vector<index_t> out;
  for (index_t i = 0; i < size(); ++i) {
    if (is_boundary(i)) out.push_back(i);
  }
  return out;
}

}  // namespace cmesolve::core
