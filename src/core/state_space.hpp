#pragma once
//
// DFS state-space enumeration (Cao & Liang [17], Sec. II-B and Sec. V).
//
// Starting from an initial microstate, a depth-first visit over the
// reaction graph enumerates the reachable finite-buffer subspace. The
// enumeration order matters: DFS chains reversible reactions into runs of
// adjacent indices, which is exactly what populates the {-1, 0, +1} band
// the ELL+DIA format exploits. Reaction 0 is explored first, so placing a
// reversible synthesis/degradation pair first in the network maximizes the
// band density.
//
// Two containers share the packing/hashing machinery (StatePacker):
//  * StateSpace — one-shot enumeration of the full reachable box (the
//    paper's fixed-buffer pipeline).
//  * DynamicStateSpace — growable/prunable member set for the adaptive
//    finite-state-projection pipeline (src/fsp/), which sizes the space
//    round by round instead of enumerating the box up front.
//
#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/reaction_network.hpp"
#include "util/types.hpp"

namespace cmesolve::core {

/// Microstates packed into 128 bits for hashing (up to 8 species with
/// capacities below 65536, or more species with smaller capacities).
using StateKey = std::array<std::uint64_t, 2>;

struct StateKeyHash {
  std::size_t operator()(const StateKey& k) const noexcept {
    // splitmix-style mix of the two words
    std::uint64_t h = k[0] * 0x9E3779B97F4A7C15ULL;
    h ^= (k[1] + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2));
    return static_cast<std::size_t>(h);
  }
};

/// Packs microstates into 128-bit hash keys. Bit widths derive from the
/// network's per-species capacities; construction throws when the packed
/// representation exceeds 128 bits.
class StatePacker {
 public:
  StatePacker() = default;
  explicit StatePacker(const ReactionNetwork& network);

  [[nodiscard]] int num_species() const noexcept { return num_species_; }
  [[nodiscard]] StateKey pack(const State& x) const;

 private:
  int num_species_ = 0;
  std::vector<int> bit_width_;  ///< bits per species in the packed key
};

/// Visit order of the enumeration. DFS is the paper's (and the default:
/// it chains reversible reactions into the {-1,0,+1} band); BFS and the
/// randomized order exist for the ordering ablation benchmark.
enum class VisitOrder { kDfs, kBfs, kRandom };

class StateSpace {
 public:
  StateSpace(const ReactionNetwork& network, State initial,
             std::size_t max_states, VisitOrder order = VisitOrder::kDfs,
             std::uint64_t seed = 42);

  [[nodiscard]] index_t size() const noexcept {
    return static_cast<index_t>(num_states_);
  }
  [[nodiscard]] const ReactionNetwork& network() const noexcept {
    return *network_;
  }
  [[nodiscard]] int num_species() const noexcept {
    return network_->num_species();
  }

  /// Copy number of species s in microstate i.
  [[nodiscard]] std::int32_t count(index_t i, int s) const noexcept {
    return states_[static_cast<std::size_t>(i) *
                       static_cast<std::size_t>(num_species_) +
                   static_cast<std::size_t>(s)];
  }

  /// Full microstate i as a State vector.
  [[nodiscard]] State state(index_t i) const;

  /// Index of a microstate, or -1 when not part of the reachable space.
  [[nodiscard]] index_t find(const State& x) const;

  /// True when enumeration stopped at max_states before closure.
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }

  /// Pack a state into the 128-bit hash key (throws when capacities do not
  /// fit 128 bits).
  [[nodiscard]] StateKey pack(const State& x) const { return packer_.pack(x); }

 private:
  void enumerate(State initial, std::size_t max_states, VisitOrder order,
                 std::uint64_t seed);

  const ReactionNetwork* network_;
  int num_species_;
  StatePacker packer_;
  std::vector<std::int32_t> states_;  ///< flattened, size * num_species
  std::size_t num_states_ = 0;
  std::unordered_map<StateKey, index_t, StateKeyHash> index_;
  bool truncated_ = false;
};

/// Growable, prunable microstate set for the adaptive FSP pipeline.
///
/// Unlike StateSpace — which enumerates the whole reachable finite-buffer
/// box once and is then immutable — this set starts from one seed state and
/// is extended (boundary expansion) and compacted (quantile pruning) round
/// by round. Indices are dense and insertion-ordered; compact() renumbers
/// survivors while preserving relative order, returning the old->new map so
/// warm-start vectors and cached matrix stencils can follow the renumbering.
class DynamicStateSpace {
 public:
  DynamicStateSpace(const ReactionNetwork& network, const State& initial);

  [[nodiscard]] index_t size() const noexcept {
    return static_cast<index_t>(num_states_);
  }
  [[nodiscard]] const ReactionNetwork& network() const noexcept {
    return *network_;
  }
  [[nodiscard]] int num_species() const noexcept { return num_species_; }

  /// Copy number of species s in member i.
  [[nodiscard]] std::int32_t count(index_t i, int s) const noexcept {
    return states_[static_cast<std::size_t>(i) *
                       static_cast<std::size_t>(num_species_) +
                   static_cast<std::size_t>(s)];
  }

  /// Full microstate i as a State vector.
  [[nodiscard]] State state(index_t i) const;

  /// Index of a microstate, or -1 when not a member.
  [[nodiscard]] index_t find(const State& x) const;

  /// Insert x (must lie inside the capacity box; throws otherwise).
  /// Returns its index — the existing one when x is already a member.
  index_t add(const State& x);

  /// BFS-extend from the current members (in index order) until `target`
  /// members exist or the reachable space closes. Deterministic: the visit
  /// order depends only on the member list and the reaction order.
  void grow_bfs(std::size_t target);

  /// Drop every member i with keep[i] == 0, renumbering survivors in
  /// insertion order. Returns the old->new index map (-1 = dropped).
  std::vector<index_t> compact(const std::vector<char>& keep);

  /// True when member i has at least one applicable reaction whose
  /// successor is NOT a member — i.e. i sits on the projection boundary.
  [[nodiscard]] bool is_boundary(index_t i) const;

  /// All boundary members, ascending. O(size * reactions); intended for
  /// per-round diagnostics, not inner loops (the FSP driver tracks boundary
  /// flux through its cached stencils instead).
  [[nodiscard]] std::vector<index_t> boundary_states() const;

 private:
  const ReactionNetwork* network_;
  int num_species_;
  StatePacker packer_;
  std::vector<std::int32_t> states_;  ///< flattened, size * num_species
  std::size_t num_states_ = 0;
  std::unordered_map<StateKey, index_t, StateKeyHash> index_;
};

}  // namespace cmesolve::core
