#include "core/stencil.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/binomial.hpp"
#include "util/parallel.hpp"

namespace cmesolve::core {

namespace {

/// Exact rational scalar for the conservation-law elimination. Copy
/// numbers, deltas and law coefficients are tiny integers, so plain
/// int64 numerator/denominator with gcd reduction never overflows here.
struct Rat {
  std::int64_t n = 0;
  std::int64_t d = 1;

  void reduce() {
    if (d < 0) {
      n = -n;
      d = -d;
    }
    const std::int64_t g = std::gcd(n < 0 ? -n : n, d);
    if (g > 1) {
      n /= g;
      d /= g;
    }
    if (n == 0) d = 1;
  }
  [[nodiscard]] bool zero() const { return n == 0; }
  [[nodiscard]] bool integer() const { return d == 1; }
};

Rat rat(std::int64_t v) { return Rat{v, 1}; }

Rat operator*(Rat a, Rat b) {
  Rat r{a.n * b.n, a.d * b.d};
  r.reduce();
  return r;
}

Rat operator-(Rat a, Rat b) {
  Rat r{a.n * b.d - b.n * a.d, a.d * b.d};
  r.reduce();
  return r;
}

Rat operator/(Rat a, Rat b) {
  Rat r{a.n * b.d, a.d * b.n};
  r.reduce();
  return r;
}

/// Reduced row echelon form, choosing pivots by the given column priority.
/// Returns the pivot column of each surviving row (rows stay in place; a
/// row with no pivot is all-zero).
std::vector<int> rref(std::vector<std::vector<Rat>>& m,
                      const std::vector<int>& col_order) {
  const std::size_t rows = m.size();
  std::vector<int> pivot(rows, -1);
  std::size_t r = 0;
  for (int col : col_order) {
    if (r >= rows) break;
    const auto c = static_cast<std::size_t>(col);
    std::size_t sel = rows;
    for (std::size_t i = r; i < rows; ++i) {
      if (!m[i][c].zero()) {
        sel = i;
        break;
      }
    }
    if (sel == rows) continue;
    std::swap(m[r], m[sel]);
    const Rat p = m[r][c];
    for (Rat& v : m[r]) v = v / p;
    for (std::size_t i = 0; i < rows; ++i) {
      if (i == r || m[i][c].zero()) continue;
      const Rat f = m[i][c];
      for (std::size_t j = 0; j < m[i].size(); ++j) {
        m[i][j] = m[i][j] - f * m[r][j];
      }
    }
    pivot[r] = col;
    ++r;
  }
  pivot.resize(r);
  return pivot;
}

/// Net stoichiometric change per species (change lists may repeat species).
std::vector<std::int64_t> net_deltas(const Reaction& r, int num_species) {
  std::vector<std::int64_t> net(static_cast<std::size_t>(num_species), 0);
  for (const auto& ch : r.changes) {
    net[static_cast<std::size_t>(ch.species)] += ch.delta;
  }
  return net;
}

/// Intersect [lo, hi] windows per species and keep only the binding ones.
class WindowSet {
 public:
  void intersect(int species, std::int64_t lo, std::int64_t hi) {
    for (auto& w : windows_) {
      if (w.species == species) {
        w.lo = std::max<std::int64_t>(w.lo, lo);
        w.hi = std::min<std::int64_t>(w.hi, hi);
        return;
      }
    }
    windows_.push_back({species, lo, hi});
  }

  /// Emit checks, dropping windows equal to the full [0, cap] range.
  [[nodiscard]] std::vector<StencilCheck> compile(
      const ReactionNetwork& net) const {
    std::vector<StencilCheck> out;
    for (const auto& w : windows_) {
      const std::int64_t lo = std::max<std::int64_t>(w.lo, 0);
      const std::int64_t hi =
          std::min<std::int64_t>(w.hi, net.capacity(w.species));
      if (lo == 0 && hi == net.capacity(w.species)) continue;
      out.push_back({w.species, static_cast<std::int32_t>(lo),
                     static_cast<std::int32_t>(hi)});
    }
    return out;
  }

 private:
  struct Window {
    int species;
    std::int64_t lo;
    std::int64_t hi;
  };
  std::vector<Window> windows_;
};

constexpr index_t kDiagChunk = 4096;

}  // namespace

StencilTable::StencilTable(const ReactionNetwork& network, const State& anchor)
    : network_(&network),
      anchor_(anchor),
      num_species_(network.num_species()) {
  CMESOLVE_TRACE_SPAN("core.stencil.build");
  if (anchor_.size() != static_cast<std::size_t>(num_species_) ||
      !network.valid_state(anchor_)) {
    throw std::invalid_argument(
        "StencilTable: anchor state outside the capacity box");
  }
  detect_laws();
  build_geometry();
  compile_reactions();
  build_diagonal();
  obs::count("stencil.tables_built");
  obs::gauge("stencil.box_rows", static_cast<double>(box_rows_));
  obs::gauge("stencil.rows_masked", static_cast<double>(rows_masked_));
  obs::gauge("stencil.bytes_modeled", static_cast<double>(bytes_modeled()));
}

StencilTable::StencilTable(const StencilTable& base,
                           std::span<const real_t> rates)
    : network_(base.network_),
      anchor_(base.anchor_),
      num_species_(base.num_species_),
      laws_(base.laws_),
      free_species_(base.free_species_),
      radix_(base.radix_),
      weight_(base.weight_),
      box_rows_(base.box_rows_),
      reactions_(base.reactions_),
      rate_dropped_(base.rate_dropped_) {
  CMESOLVE_TRACE_SPAN("core.stencil.rebind");
  if (rates.size() != static_cast<std::size_t>(network_->num_reactions())) {
    throw std::invalid_argument(
        "StencilTable rebind: rates must cover every network reaction");
  }
  if (rate_dropped_ > 0) {
    throw std::invalid_argument(
        "StencilTable rebind: base table dropped a reaction for a "
        "non-positive rate; rebuild from a network with all rates > 0");
  }
  for (auto& r : reactions_) {
    const real_t v = rates[static_cast<std::size_t>(r.reaction)];
    if (!std::isfinite(v) || v <= 0.0) {
      throw std::invalid_argument(
          "StencilTable rebind: every compiled reaction needs a finite "
          "positive rate");
    }
    r.rate = v;
  }
  build_diagonal();
  obs::count("stencil.tables_rebound");
  obs::gauge("stencil.box_rows", static_cast<double>(box_rows_));
  obs::gauge("stencil.rows_masked", static_cast<double>(rows_masked_));
}

void StencilTable::detect_laws() {
  const auto ns = static_cast<std::size_t>(num_species_);
  // Delta matrix: one row per non-null reaction, one column per species.
  std::vector<std::vector<Rat>> d;
  for (const Reaction& r : network_->reactions()) {
    const auto net = net_deltas(r, num_species_);
    if (std::all_of(net.begin(), net.end(),
                    [](std::int64_t v) { return v == 0; })) {
      continue;
    }
    std::vector<Rat> row(ns);
    for (std::size_t s = 0; s < ns; ++s) row[s] = rat(net[s]);
    d.push_back(std::move(row));
  }

  std::vector<int> natural(ns);
  std::iota(natural.begin(), natural.end(), 0);
  const auto d_pivots = rref(d, natural);

  // Null space of the delta matrix = conserved weightings: one basis
  // vector per free column f, with v[f] = 1 and v[p] = -rref[row(p)][f].
  std::vector<char> is_pivot(ns, 0);
  for (int p : d_pivots) is_pivot[static_cast<std::size_t>(p)] = 1;
  std::vector<std::vector<Rat>> basis;
  for (std::size_t f = 0; f < ns; ++f) {
    if (is_pivot[f]) continue;
    std::vector<Rat> v(ns);
    v[f] = rat(1);
    for (std::size_t i = 0; i < d_pivots.size(); ++i) {
      v[static_cast<std::size_t>(d_pivots[i])] = rat(0) - d[i][f];
    }
    basis.push_back(std::move(v));
  }
  if (basis.empty()) return;

  // Re-eliminate the law matrix preferring large-capacity pivots: the box
  // shrinks by (cap+1) per eliminated species, so dropping the substrate
  // beats dropping an enzyme.
  std::vector<int> by_cap(ns);
  std::iota(by_cap.begin(), by_cap.end(), 0);
  std::stable_sort(by_cap.begin(), by_cap.end(), [&](int a, int b) {
    return network_->capacity(a) > network_->capacity(b);
  });
  const auto law_pivots = rref(basis, by_cap);

  for (std::size_t i = 0; i < law_pivots.size(); ++i) {
    // A non-integer solved form cannot index integer copy numbers; the
    // pivot species simply stays free (strictly larger box, still exact).
    if (std::any_of(basis[i].begin(), basis[i].end(),
                    [](const Rat& v) { return !v.integer(); })) {
      continue;
    }
    ConservationLaw law;
    law.species = law_pivots[i];
    std::int64_t total =
        anchor_[static_cast<std::size_t>(law.species)];
    for (std::size_t s = 0; s < ns; ++s) {
      if (static_cast<int>(s) == law.species || basis[i][s].zero()) continue;
      law.terms.push_back({static_cast<int>(s), basis[i][s].n});
      total += basis[i][s].n * anchor_[s];
    }
    law.total = total;
    laws_.push_back(std::move(law));
  }
}

void StencilTable::build_geometry() {
  std::vector<char> derived(static_cast<std::size_t>(num_species_), 0);
  for (const auto& law : laws_) {
    derived[static_cast<std::size_t>(law.species)] = 1;
  }
  for (int s = 0; s < num_species_; ++s) {
    if (!derived[static_cast<std::size_t>(s)]) free_species_.push_back(s);
  }
  // Fastest digit (weight 1) gets the largest radix: the sweep processes
  // runs of consecutive rows along the fastest digit, so the largest
  // capacity yields the longest vectorizable inner loops.
  std::stable_sort(free_species_.begin(), free_species_.end(),
                   [&](int a, int b) {
                     return network_->capacity(a) < network_->capacity(b);
                   });

  const auto m = free_species_.size();
  radix_.resize(m);
  weight_.resize(m);
  std::int64_t rows = 1;
  for (std::size_t d = m; d-- > 0;) {
    radix_[d] = network_->capacity(free_species_[d]) + 1;
    weight_[d] = rows;
    rows *= radix_[d];
    if (rows > std::numeric_limits<index_t>::max()) {
      throw std::invalid_argument(
          "StencilTable: conservation-reduced box exceeds index_t; shrink "
          "capacities");
    }
  }
  box_rows_ = static_cast<index_t>(rows);
}

void StencilTable::compile_reactions() {
  const int nr = network_->num_reactions();
  for (int k = 0; k < nr; ++k) {
    const Reaction& r = network_->reaction(k);
    const auto net = net_deltas(r, num_species_);

    StencilReaction sr;
    sr.reaction = k;
    sr.rate = r.rate;
    for (std::size_t d = 0; d < free_species_.size(); ++d) {
      sr.stride += net[static_cast<std::size_t>(free_species_[d])] *
                   weight_[d];
    }
    // A zero stride means zero net change on every free digit, which the
    // laws propagate to every derived species: a null transition. It
    // cancels in the generator exactly as in rate_matrix().
    if (sr.stride == 0) continue;
    if (r.rate <= 0.0) {
      ++rate_dropped_;
      continue;
    }

    WindowSet in, out;
    for (std::size_t s = 0; s < net.size(); ++s) {
      if (net[s] == 0) continue;
      // Predecessor validity: x[s] - net in [0, cap].
      in.intersect(static_cast<int>(s), net[s],
                   network_->capacity(static_cast<int>(s)) + net[s]);
    }
    for (const auto& ch : r.changes) {
      const std::int64_t cap = network_->capacity(ch.species);
      // within_capacity applies each change entry individually.
      out.intersect(ch.species, -ch.delta, cap - ch.delta);
      // ... and at the predecessor it reads x[s] - net + delta in [0, cap].
      in.intersect(ch.species,
                   net[static_cast<std::size_t>(ch.species)] - ch.delta,
                   net[static_cast<std::size_t>(ch.species)] - ch.delta +
                       cap);
    }
    sr.in_checks = in.compile(*network_);
    sr.out_checks = out.compile(*network_);

    for (const auto& re : r.reactants) {
      const auto shift =
          static_cast<std::int32_t>(-net[static_cast<std::size_t>(re.species)]);
      sr.in_factors.push_back({re.species, shift, re.copies});
      sr.out_factors.push_back({re.species, 0, re.copies});
    }
    reactions_.push_back(std::move(sr));
  }
}

index_t StencilTable::box_index(const State& x) const {
  if (x.size() != static_cast<std::size_t>(num_species_) ||
      !network_->valid_state(x)) {
    return -1;
  }
  for (const auto& law : laws_) {
    std::int64_t v = static_cast<std::int64_t>(
        x[static_cast<std::size_t>(law.species)]);
    for (const auto& t : law.terms) {
      v += t.coeff * x[static_cast<std::size_t>(t.species)];
    }
    if (v != law.total) return -1;  // different conservation class
  }
  std::int64_t row = 0;
  for (std::size_t d = 0; d < free_species_.size(); ++d) {
    row += static_cast<std::int64_t>(
               x[static_cast<std::size_t>(free_species_[d])]) *
           weight_[d];
  }
  return static_cast<index_t>(row);
}

void StencilTable::decode(index_t row, State& x) const {
  x.assign(static_cast<std::size_t>(num_species_), 0);
  std::int64_t rem = row;
  for (std::size_t d = 0; d < free_species_.size(); ++d) {
    const std::int64_t digit = rem / weight_[d];
    rem -= digit * weight_[d];
    x[static_cast<std::size_t>(free_species_[d])] =
        static_cast<std::int32_t>(digit);
  }
  for (const auto& law : laws_) {
    std::int64_t v = law.total;
    for (const auto& t : law.terms) {
      v -= t.coeff * x[static_cast<std::size_t>(t.species)];
    }
    x[static_cast<std::size_t>(law.species)] = static_cast<std::int32_t>(v);
  }
}

bool StencilTable::row_valid(const State& x) const {
  for (const auto& law : laws_) {
    const std::int32_t v = x[static_cast<std::size_t>(law.species)];
    if (v < 0 || v > network_->capacity(law.species)) return false;
  }
  return true;
}

real_t StencilTable::in_propensity(const StencilReaction& r,
                                   const State& x) const {
  return r.rate * unit_in_propensity(r, x);
}

real_t StencilTable::unit_in_propensity(const StencilReaction& r,
                                        const State& x) const {
  for (const auto& c : r.in_checks) {
    const std::int32_t v = x[static_cast<std::size_t>(c.species)];
    if (v < c.lo || v > c.hi) return 0.0;
  }
  real_t a = 1.0;
  for (const auto& f : r.in_factors) {
    a *= cmesolve::binomial(x[static_cast<std::size_t>(f.species)] + f.shift,
                        f.copies);
    if (a == 0.0) return 0.0;
  }
  return a;
}

real_t StencilTable::out_propensity(const StencilReaction& r,
                                    const State& x) const {
  return r.rate * unit_out_propensity(r, x);
}

real_t StencilTable::unit_out_propensity(const StencilReaction& r,
                                         const State& x) const {
  for (const auto& c : r.out_checks) {
    const std::int32_t v = x[static_cast<std::size_t>(c.species)];
    if (v < c.lo || v > c.hi) return 0.0;
  }
  real_t a = 1.0;
  for (const auto& f : r.out_factors) {
    a *= cmesolve::binomial(x[static_cast<std::size_t>(f.species)] + f.shift,
                        f.copies);
    if (a == 0.0) return 0.0;
  }
  return a;
}

void StencilTable::build_diagonal() {
  const auto n = static_cast<std::size_t>(box_rows_);
  diag_.assign(n, -1.0);

  struct Counts {
    std::size_t nnz = 0;
    std::int64_t masked = 0;
  };
  // Fixed-chunk reduction: diagonal stores are disjoint per row and the
  // integer totals combine in chunk order, so the pass is bit-identical
  // at any thread count.
  const Counts totals = util::parallel_reduce(
      n, static_cast<std::size_t>(kDiagChunk), Counts{},
      [&](std::size_t b, std::size_t e) {
        Counts c;
        State x(static_cast<std::size_t>(num_species_));
        for (std::size_t i = b; i < e; ++i) {
          decode(static_cast<index_t>(i), x);
          if (!row_valid(x)) {
            ++c.masked;
            continue;
          }
          real_t out_rate = 0.0;
          for (const auto& r : reactions_) {
            const real_t a = out_propensity(r, x);
            if (a > 0.0) {
              out_rate += a;
              ++c.nnz;
            }
          }
          if (out_rate > 0.0) {
            diag_[i] = -out_rate;
          } else {
            ++c.masked;  // absorbing-in-box corner: masked, not zero-diag
          }
        }
        return c;
      },
      [](Counts acc, Counts c) {
        acc.nnz += c.nnz;
        acc.masked += c.masked;
        return acc;
      });
  offdiag_nnz_ = totals.nnz;
  rows_masked_ = static_cast<index_t>(totals.masked);
}

}  // namespace cmesolve::core
