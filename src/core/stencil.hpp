#pragma once
//
// Per-reaction stencil extraction for the matrix-free CME operator.
//
// The paper's format work (Tables II-IV) exploits the observation that DFS
// enumeration turns most of A into a few dense {-1,0,+1} diagonals. The
// logical endpoint is to stop storing A entirely: in a mixed-radix indexing
// of the state box every reaction k moves the row index by a CONSTANT
// stride
//     stride_k = sum_d delta_k[s_d] * w_d
// (w_d = mixed-radix digit weights), and the corresponding matrix entry is
// the mass-action propensity, recomputable from the decoded copy numbers.
// A(i, i - stride_k) = A_k(x_i - delta_k) — one DIA-style diagonal per
// reaction whose values are evaluated on the fly.
//
// Conservation-law elimination: enumerating the full capacity box would
// cover many states no trajectory can reach (the futile cycle conserves
// three independent weighted sums, making the naive box ~100x too large).
// Construction finds every integer conservation law
//     x_e + sum_j c_j x_j = total            (c_j integer, pivot species e)
// via exact rational elimination of the reaction delta matrix, fixes the
// totals from an anchor state, and drops each pivot species e from the
// indexing — its copy number is derived from the free digits at decode
// time. Box rows whose derived counts leave [0, capacity] are *masked*:
// they carry no matrix entries and their diagonal is a -1 sentinel so the
// Jacobi zero-diagonal guard never fires on unreachable padding.
//
// This header is the core support layer: solver::StencilOperator compiles
// the tables into the fast sweep, gpusim::simulate_spmv_stencil replays
// them through the GPU traffic model.
//
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/reaction_network.hpp"
#include "util/types.hpp"

namespace cmesolve::core {

/// One integer conservation law in solved form:
///   x[species] = total - sum_t coeff_t * x[term_t.species]
/// where every term references a free (indexed) species.
struct ConservationLaw {
  struct Term {
    int species = 0;
    std::int64_t coeff = 0;
  };
  int species = 0;          ///< derived (eliminated) species
  std::int64_t total = 0;   ///< invariant value, fixed by the anchor state
  std::vector<Term> terms;
};

/// Inclusive copy-number window: the stencil term applies only when
/// lo <= x[species] <= hi. Windows equal to the full [0, capacity] range
/// are dropped at build time.
struct StencilCheck {
  int species = 0;
  std::int32_t lo = 0;
  std::int32_t hi = 0;
};

/// One mass-action factor binomial(x[species] + shift, copies). The
/// predecessor direction bakes shift = -delta so the factor reads the
/// source-state copy number from the destination row's counts.
struct StencilFactor {
  int species = 0;
  std::int32_t shift = 0;
  std::int32_t copies = 1;
};

/// Everything needed to apply one reaction as a matrix diagonal.
struct StencilReaction {
  int reaction = 0;        ///< index in the source network
  std::int64_t stride = 0; ///< successor row = row + stride (never 0)
  real_t rate = 0.0;
  /// Predecessor direction, evaluated at destination row state x_i:
  /// A(i, i - stride) = rate * prod binomial(x_i[s] + shift, copies) when
  /// every in_check passes (and row i itself is valid).
  std::vector<StencilCheck> in_checks;
  std::vector<StencilFactor> in_factors;
  /// Successor direction, evaluated at source row state x_j: the outflow
  /// rate feeding the diagonal, mirroring ReactionNetwork::applicable.
  std::vector<StencilCheck> out_checks;
  std::vector<StencilFactor> out_factors;
};

/// Precomputed stencil geometry + per-row diagonal for one (network,
/// anchor state) pair. Immutable after construction; cheap to copy by
/// move. Construction throws std::invalid_argument when the reduced box
/// still exceeds index_t, and publishes the stencil.* metrics.
class StencilTable {
 public:
  StencilTable(const ReactionNetwork& network, const State& anchor);

  /// Rebind: share every structural table of `base` — conservation laws,
  /// mixed-radix geometry, per-reaction strides/windows/factors — and swap
  /// in new rate constants (indexed by NETWORK reaction id, size
  /// network().num_reactions()). Only the per-row diagonal is recomputed;
  /// enumeration and elimination are never repeated. This is what makes a
  /// parameter ensemble share one structural build.
  ///
  /// Every compiled reaction's new rate must be finite and > 0, and the
  /// base must not have dropped any reaction for a non-positive rate
  /// (the dropped reaction's stencil was never compiled, so no rate can
  /// revive it); violations throw std::invalid_argument. Sparsity and row
  /// masking are therefore rate-independent across rebinds.
  StencilTable(const StencilTable& base, std::span<const real_t> rates);

  [[nodiscard]] const ReactionNetwork& network() const noexcept {
    return *network_;
  }
  [[nodiscard]] const State& anchor() const noexcept { return anchor_; }
  [[nodiscard]] int num_species() const noexcept { return num_species_; }

  /// Rows of the conservation-reduced state box (= product of free-species
  /// radices). Every reachable state of the anchor's conservation class
  /// maps to exactly one row.
  [[nodiscard]] index_t box_rows() const noexcept { return box_rows_; }

  [[nodiscard]] int num_free() const noexcept {
    return static_cast<int>(free_species_.size());
  }
  /// Digit d (0 = slowest, num_free()-1 = fastest, weight 1).
  [[nodiscard]] int free_species(int d) const {
    return free_species_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] std::int32_t radix(int d) const {
    return radix_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] std::int64_t weight(int d) const {
    return weight_[static_cast<std::size_t>(d)];
  }

  [[nodiscard]] const std::vector<ConservationLaw>& laws() const noexcept {
    return laws_;
  }
  /// Compiled reactions: network order, null transitions dropped.
  [[nodiscard]] const std::vector<StencilReaction>& reactions() const noexcept {
    return reactions_;
  }

  /// Box row of a microstate; -1 when x lies outside the capacity box or
  /// violates a conservation total (wrong conservation class).
  [[nodiscard]] index_t box_index(const State& x) const;

  /// Decode a box row into copy numbers for EVERY species (derived counts
  /// may fall outside [0, capacity] on masked rows; see row_valid).
  void decode(index_t row, State& x) const;

  /// True when every derived count of x lies inside [0, capacity]. Free
  /// digits are in range by construction.
  [[nodiscard]] bool row_valid(const State& x) const;

  /// Off-diagonal value A(row(x), row(x) - r.stride) for a decoded row
  /// state x. Assumes x itself is a valid row; returns 0 when the
  /// predecessor is invalid or the propensity vanishes. Exactly
  /// r.rate * unit_in_propensity(r, x) — rate-last, so the value is
  /// bitwise linear in the rate constant.
  [[nodiscard]] real_t in_propensity(const StencilReaction& r,
                                     const State& x) const;
  /// The rate-independent combinatorial part of in_propensity (windows
  /// applied, binomial factors multiplied onto 1.0). Shared across every
  /// rebind of this structure; the batched operator caches it once per
  /// (reaction, row) for a whole parameter ensemble.
  [[nodiscard]] real_t unit_in_propensity(const StencilReaction& r,
                                          const State& x) const;

  /// Outflow rate of reaction r at row state x: positive exactly when the
  /// reaction is applicable (successor stays in the box). Exactly
  /// r.rate * unit_out_propensity(r, x).
  [[nodiscard]] real_t out_propensity(const StencilReaction& r,
                                      const State& x) const;
  /// Rate-independent combinatorial part of out_propensity.
  [[nodiscard]] real_t unit_out_propensity(const StencilReaction& r,
                                           const State& x) const;

  /// Diagonal over the box: -sum_k out_propensity for valid rows with
  /// positive outflow, -1 sentinel on masked rows (invalid derived counts,
  /// or zero outflow).
  [[nodiscard]] std::span<const real_t> diag() const noexcept { return diag_; }

  /// Off-diagonal entries the stencil sweep evaluates (valid transitions).
  [[nodiscard]] std::size_t offdiag_nnz() const noexcept {
    return offdiag_nnz_;
  }
  /// Box rows with the -1 diagonal sentinel.
  [[nodiscard]] index_t rows_masked() const noexcept { return rows_masked_; }

  /// Modeled per-sweep memory traffic of the matrix-free kernel: one
  /// x-read per off-diagonal entry plus one y-write per row, no value or
  /// index streams (state decode is pure arithmetic). Uncached lower
  /// bound; gpusim::simulate_spmv_stencil runs the cache-aware model.
  [[nodiscard]] std::size_t bytes_modeled() const noexcept {
    return sizeof(real_t) *
           (offdiag_nnz_ + static_cast<std::size_t>(box_rows_));
  }

 private:
  void detect_laws();
  void build_geometry();
  void compile_reactions();
  void build_diagonal();

  const ReactionNetwork* network_;
  State anchor_;
  int num_species_ = 0;

  std::vector<ConservationLaw> laws_;
  std::vector<int> free_species_;     ///< digit -> species id
  std::vector<std::int32_t> radix_;   ///< capacity + 1 per digit
  std::vector<std::int64_t> weight_;  ///< mixed-radix digit weights
  index_t box_rows_ = 0;

  std::vector<StencilReaction> reactions_;
  std::vector<real_t> diag_;
  std::size_t offdiag_nnz_ = 0;
  index_t rows_masked_ = 0;
  /// Reactions with a real (non-null) transition that compile_reactions
  /// dropped only because their rate was <= 0. A table with any such drop
  /// cannot be rebound: the structure is incomplete for positive rates.
  int rate_dropped_ = 0;
};

}  // namespace cmesolve::core
