#include "fsp/fsp.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "core/stencil.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/operators.hpp"
#include "solver/stencil_operator.hpp"
#include "solver/vector_ops.hpp"
#include "util/aligned_vector.hpp"

namespace cmesolve::fsp {

namespace {

/// Inner solve of one round's truncated system A p = 0. `p` carries the
/// warm start in and the (L1-normalized, non-negative) landscape out.
std::pair<std::uint64_t, solver::StopReason> solve_round(
    const sparse::Csr& a, std::vector<real_t>& p, const FspOptions& opt,
    index_t return_state) {
  if (opt.solver == InnerSolver::kGmres) {
    // Nonsingular-ized form: one balance row replaced by Σ p_i = 1.
    const auto apply = solver::steady_state_operator(a, return_state);
    const auto b = solver::steady_state_rhs(a.nrows, return_state);
    const auto r = solver::gmres_solve(apply, a.nrows, b, p, opt.gmres);
    // GMRES does not preserve positivity; clamp the (tolerance-sized)
    // negative excursions before renormalizing.
    for (real_t& v : p) v = std::max(v, 0.0);
    solver::normalize_l1(p);
    return {r.iterations, r.converged ? solver::StopReason::kConverged
                                      : solver::StopReason::kMaxIterations};
  }
  const solver::CsrDiaOperator op(a);
  const auto r = solver::jacobi_solve(op, a.inf_norm(), p, opt.jacobi);
  return {r.iterations, r.reason};
}

/// Outcome of one round's inner solve, with the per-member outflow the
/// flux bookkeeping needs regardless of which path produced it.
struct RoundSolve {
  std::uint64_t iterations = 0;
  solver::StopReason stop = solver::StopReason::kMaxIterations;
  std::vector<real_t> outflow;  ///< per-member out-of-set rate γ_j
  bool matrix_free = false;
};

/// Picks the matrix-free masked-stencil path for eligible kJacobi rounds
/// and the assembled-CSR path otherwise. The stencil table is compiled
/// lazily on the first eligible round; any compile/mapping failure (a
/// network the stencil machinery cannot express, or a member outside the
/// anchor's conservation box) disables the matrix-free path permanently —
/// the assembled path is always a correct fallback.
class RoundSolver {
 public:
  RoundSolver(const core::ReactionNetwork& network, const core::State& anchor,
              const FspOptions& opt)
      : network_(network),
        anchor_(anchor),
        opt_(opt),
        enabled_(opt.matrix_free && opt.solver == InnerSolver::kJacobi) {}

  RoundSolve solve(const core::ProjectedRateMatrix& matrix,
                   const core::DynamicStateSpace& space, index_t ret,
                   std::vector<real_t>& p, FspRound& round) {
    const index_t n = space.size();
    RoundSolve out;
    if (enabled_) {
      if (std::unique_ptr<solver::MaskedStencilOperator> op =
              make_operator(space, ret)) {
        // Jacobi iterate over the box: 64-byte aligned like the rest of the
        // solver state so the SIMD kernels start on a vector boundary.
        util::aligned_vector<real_t> pbox(static_cast<std::size_t>(op->nrows()));
        op->scatter_from_members(p, pbox);
        const auto r =
            solver::jacobi_solve(*op, op->inf_norm(), pbox, opt_.jacobi);
        op->gather_to_members(pbox, p);
        solver::normalize_l1(p);
        out.iterations = r.iterations;
        out.stop = r.reason;
        out.outflow.resize(static_cast<std::size_t>(n));
        for (index_t j = 0; j < n; ++j) {
          out.outflow[static_cast<std::size_t>(j)] = op->outflow(j);
        }
        out.matrix_free = true;
        obs::count("fsp.round.matrix_free");
        if (opt_.device != nullptr) {
          // The Table IV economics of this round: one simulated stencil
          // SpMV over the box (the kernel a matrix-free GPU sweep runs).
          util::aligned_vector<real_t> xin(pbox.begin(), pbox.end());
          util::aligned_vector<real_t> xout(pbox.size());
          const auto sweep = gpusim::simulate_spmv_stencil(
              *opt_.device, *stencil_, xin, xout, opt_.sim);
          round.sim_sweep_seconds = sweep.seconds;
          round.sim_sweep_gflops = sweep.gflops;
        }
        return out;
      }
    }
    auto assembly = matrix.assemble(space, ret);
    const auto [iters, stop] = solve_round(assembly.a, p, opt_, ret);
    out.iterations = iters;
    out.stop = stop;
    out.outflow = std::move(assembly.outflow);
    if (opt_.device != nullptr) {
      // One simulated GPU Jacobi sweep on the warped ELL+DIA layout.
      const solver::WarpedEllDiaOperator wop(assembly.a);
      util::aligned_vector<real_t> xin(p.begin(), p.end());
      util::aligned_vector<real_t> xout(p.size());
      const auto sweep = gpusim::simulate_jacobi_sweep(
          *opt_.device, wop.gpu_hybrid(), xin, xout, opt_.sim);
      round.sim_sweep_seconds = sweep.seconds;
      round.sim_sweep_gflops = sweep.gflops;
    }
    return out;
  }

 private:
  /// nullptr when this round must use the assembled path.
  std::unique_ptr<solver::MaskedStencilOperator> make_operator(
      const core::DynamicStateSpace& space, index_t ret) {
    if (stencil_ == nullptr && !failed_) {
      try {
        stencil_ = std::make_unique<core::StencilTable>(network_, anchor_);
      } catch (const std::exception&) {
        failed_ = true;
      }
    }
    if (stencil_ == nullptr) return nullptr;
    // A sparse member set inside a huge box would sweep mostly masked
    // rows; keep the assembled path until the set fills the box enough.
    if (static_cast<real_t>(stencil_->box_rows()) >
        opt_.matrix_free_box_ratio * static_cast<real_t>(space.size())) {
      return nullptr;
    }
    try {
      return std::make_unique<solver::MaskedStencilOperator>(*stencil_, space,
                                                             ret);
    } catch (const std::logic_error&) {
      failed_ = true;
      stencil_.reset();
      return nullptr;
    }
  }

  const core::ReactionNetwork& network_;
  const core::State& anchor_;
  const FspOptions& opt_;
  bool enabled_;
  bool failed_ = false;
  std::unique_ptr<core::StencilTable> stencil_;
};

}  // namespace

FspResult solve_adaptive(const core::ReactionNetwork& network,
                         const core::State& initial, const FspOptions& opt) {
  CMESOLVE_TRACE_SPAN("fsp.solve_adaptive");
  if (opt.seed_states == 0 || opt.max_states == 0 || opt.max_rounds <= 0) {
    throw std::invalid_argument("solve_adaptive: empty budget");
  }

  core::DynamicStateSpace space(network, initial);
  space.grow_bfs(std::min(opt.seed_states, opt.max_states));
  core::ProjectedRateMatrix matrix(network);
  RoundSolver round_solver(network, initial, opt);

  std::vector<real_t> p;
  std::vector<FspRound> rounds;
  std::uint64_t total_iters = 0;
  real_t bound = std::numeric_limits<real_t>::infinity();
  bool converged = false;

  for (int round = 1; round <= opt.max_rounds; ++round) {
    CMESOLVE_TRACE_SPAN("fsp.round");
    const index_t n = space.size();
    const index_t ret = space.find(initial);

    matrix.extend(space);

    if (p.empty()) {
      p.assign(static_cast<std::size_t>(n), 0.0);
      solver::fill_uniform(p);
    }

    FspRound r;
    r.round = round;
    r.states = n;

    const RoundSolve rs = round_solver.solve(matrix, space, ret, p, r);
    total_iters += rs.iterations;

    // Stationary embedded-chain sink mass: the probability that the next
    // jump leaves the projection. Serial sums keep the value bit-identical
    // at any thread count.
    real_t sink_flux = 0.0;
    real_t total_flux = 0.0;
    index_t boundary = 0;
    for (index_t j = 0; j < n; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      sink_flux += p[ju] * rs.outflow[ju];
      total_flux += p[ju] * matrix.total_rate(j);
      if (rs.outflow[ju] > 0.0) ++boundary;
    }
    bound = total_flux > 0.0 ? sink_flux / total_flux : 0.0;

    r.boundary = boundary;
    r.outflow_bound = bound;
    r.solver_iterations = rs.iterations;
    r.stop = rs.stop;
    r.matrix_free = rs.matrix_free;

    CMESOLVE_TRACE_COUNTER("fsp.outflow_bound", bound);
    CMESOLVE_TRACE_COUNTER("fsp.states", static_cast<real_t>(n));
    obs::observe("fsp.round.outflow_bound", bound);
    obs::observe("fsp.round.states", static_cast<real_t>(n));
    obs::observe("fsp.round.solver_iterations",
                 static_cast<real_t>(rs.iterations));
    // The adaptive loop's own trajectory: sink-mass bound and projection
    // size per round, on the round axis.
    obs::flight("fsp.sink_mass", obs::FlightKind::kFspRound,
                static_cast<std::uint64_t>(round), bound);
    obs::flight("fsp.states", obs::FlightKind::kFspStates,
                static_cast<std::uint64_t>(round), static_cast<double>(n));

    if (bound <= opt.tol) {
      converged = true;
      rounds.push_back(r);
      break;
    }
    if (round == opt.max_rounds ||
        static_cast<std::size_t>(n) >= opt.max_states) {
      rounds.push_back(r);
      break;
    }

    // --- expansion selection (pre-compaction indices) ----------------------
    // Boundary states carrying the top expansion_quantile share of the
    // stationary outflow flux; ties and ordering are broken by index so the
    // adapted set is deterministic.
    struct Flux {
      index_t j;
      real_t flux;
    };
    std::vector<Flux> flux;
    for (index_t j = 0; j < n; ++j) {
      const auto ju = static_cast<std::size_t>(j);
      if (rs.outflow[ju] > 0.0) {
        flux.push_back({j, p[ju] * rs.outflow[ju]});
      }
    }
    std::sort(flux.begin(), flux.end(), [](const Flux& a, const Flux& b) {
      if (a.flux != b.flux) return a.flux > b.flux;
      return a.j < b.j;
    });
    std::vector<char> expand_src(static_cast<std::size_t>(n), 0);
    {
      const real_t target = opt.expansion_quantile * sink_flux;
      real_t cum = 0.0;
      for (const Flux& f : flux) {
        expand_src[static_cast<std::size_t>(f.j)] = 1;
        cum += f.flux;
        if (cum >= target && f.flux > 0.0) break;
      }
      // Zero-flux boundary (warm-started zeros that never lifted): expand
      // the whole boundary rather than stalling.
      if (sink_flux <= 0.0) {
        for (const Flux& f : flux) expand_src[static_cast<std::size_t>(f.j)] = 1;
      }
    }

    // Successor collection must precede compaction: stencil indices and the
    // membership view are both pre-compaction here. Members about to be
    // pruned do NOT reappear as successors (they are still members now) —
    // which is exactly the anti-oscillation behaviour we want.
    std::vector<core::State> additions;
    for (index_t j = 0; j < n; ++j) {
      if (expand_src[static_cast<std::size_t>(j)]) {
        matrix.out_of_set_successors(space, j, additions);
      }
    }

    // --- quantile pruning --------------------------------------------------
    std::vector<char> keep(static_cast<std::size_t>(n), 1);
    index_t pruned = 0;
    if (opt.prune_quantile > 0.0 &&
        static_cast<std::size_t>(n) >= opt.min_states_to_prune) {
      std::vector<index_t> order(static_cast<std::size_t>(n));
      std::iota(order.begin(), order.end(), index_t{0});
      std::sort(order.begin(), order.end(), [&p](index_t a, index_t b) {
        const real_t pa = p[static_cast<std::size_t>(a)];
        const real_t pb = p[static_cast<std::size_t>(b)];
        if (pa != pb) return pa < pb;
        return a < b;
      });
      real_t cum = 0.0;
      for (const index_t j : order) {
        const auto ju = static_cast<std::size_t>(j);
        if (j == ret || expand_src[ju]) continue;  // never prune these
        if (cum + p[ju] > opt.prune_quantile) break;
        keep[ju] = 0;
        cum += p[ju];
        ++pruned;
      }
    }

    std::vector<index_t> remap;
    if (pruned > 0) {
      remap = space.compact(keep);
      matrix.compact(remap);
    } else {
      remap.resize(static_cast<std::size_t>(n));
      std::iota(remap.begin(), remap.end(), index_t{0});
    }

    // --- apply expansion ---------------------------------------------------
    const index_t before_add = space.size();
    for (const core::State& s : additions) {
      if (static_cast<std::size_t>(space.size()) >= opt.max_states) break;
      space.add(s);
    }

    // Layered growth: when the flux-selected layer falls short of the
    // round's growth floor (thin boundaries — quasi-1D lattices add a
    // handful of states per layer), keep expanding the successors of the
    // just-added states. Each layer continues along the probability
    // gradient because only descendants of flux-selected states are in it.
    if (opt.min_growth > 0.0) {
      const std::size_t target = std::min(
          opt.max_states,
          static_cast<std::size_t>(before_add) +
              static_cast<std::size_t>(
                  std::ceil(opt.min_growth * static_cast<real_t>(n))));
      index_t layer_begin = before_add;
      index_t layer_end = space.size();
      while (static_cast<std::size_t>(space.size()) < target &&
             layer_end > layer_begin) {
        for (index_t j = layer_begin;
             j < layer_end && static_cast<std::size_t>(space.size()) < target;
             ++j) {
          const core::State s = space.state(j);
          for (int k = 0; k < network.num_reactions(); ++k) {
            if (static_cast<std::size_t>(space.size()) >= target) break;
            if (network.applicable(k, s)) space.add(network.apply(k, s));
          }
        }
        layer_begin = layer_end;
        layer_end = space.size();
      }
    }
    const index_t added = space.size() - before_add;
    r.added = added;
    r.pruned = pruned;
    rounds.push_back(r);
    obs::observe("fsp.round.states_added", static_cast<real_t>(added));
    obs::observe("fsp.round.states_pruned", static_cast<real_t>(pruned));

    if (added == 0 && pruned == 0) {
      // Nothing left to adapt (cap reached or boundary closed): the bound
      // cannot improve, stop unconverged.
      break;
    }

    // Warm start for the next round: previous landscape through the
    // renumbering, appended states seeded with a small uniform mass so the
    // boundary flux is never spuriously zero.
    std::vector<real_t> next(static_cast<std::size_t>(space.size()));
    const real_t fill =
        1.0e-3 / static_cast<real_t>(space.size());
    solver::warm_restart(p, remap, next, fill);
    p = std::move(next);
  }

  // Post-convergence trim: growth overshoots (layered expansion is
  // reachability-driven, not mass-driven), so the converged set usually
  // carries a tail of negligible-mass states. Drop the prune_quantile
  // cumulative-mass tail, re-solve once, and keep the trimmed projection
  // when its bound still meets the tolerance.
  if (converged && opt.prune_quantile > 0.0 &&
      static_cast<std::size_t>(space.size()) >= opt.min_states_to_prune) {
    const index_t n = space.size();
    const index_t ret0 = space.find(initial);
    std::vector<index_t> order(static_cast<std::size_t>(n));
    std::iota(order.begin(), order.end(), index_t{0});
    std::sort(order.begin(), order.end(), [&p](index_t a, index_t b) {
      const real_t pa = p[static_cast<std::size_t>(a)];
      const real_t pb = p[static_cast<std::size_t>(b)];
      if (pa != pb) return pa < pb;
      return a < b;
    });
    std::vector<char> keep(static_cast<std::size_t>(n), 1);
    index_t pruned = 0;
    real_t cum = 0.0;
    for (const index_t j : order) {
      const auto ju = static_cast<std::size_t>(j);
      if (j == ret0) continue;
      if (cum + p[ju] > opt.prune_quantile) break;
      keep[ju] = 0;
      cum += p[ju];
      ++pruned;
    }
    if (pruned > 0) {
      CMESOLVE_TRACE_SPAN("fsp.trim");
      const auto remap = space.compact(keep);
      matrix.compact(remap);
      std::vector<real_t> next(static_cast<std::size_t>(space.size()));
      solver::warm_restart(p, remap, next, 0.0);
      p = std::move(next);
      const index_t ret = space.find(initial);
      FspRound r;
      r.round = static_cast<int>(rounds.size()) + 1;
      r.states = space.size();
      r.pruned = pruned;
      const RoundSolve rs = round_solver.solve(matrix, space, ret, p, r);
      total_iters += rs.iterations;
      real_t sink_flux = 0.0;
      real_t total_flux = 0.0;
      index_t boundary = 0;
      for (index_t j = 0; j < space.size(); ++j) {
        const auto ju = static_cast<std::size_t>(j);
        sink_flux += p[ju] * rs.outflow[ju];
        total_flux += p[ju] * matrix.total_rate(j);
        if (rs.outflow[ju] > 0.0) ++boundary;
      }
      bound = total_flux > 0.0 ? sink_flux / total_flux : 0.0;
      converged = bound <= opt.tol;
      r.boundary = boundary;
      r.outflow_bound = bound;
      r.solver_iterations = rs.iterations;
      r.stop = rs.stop;
      r.matrix_free = rs.matrix_free;
      rounds.push_back(r);
      obs::observe("fsp.round.states_pruned", static_cast<real_t>(pruned));
    }
  }

  obs::flight("fsp.stop", obs::FlightKind::kStop, rounds.size(),
              converged ? 1.0 : 0.0);
  if (!converged && obs::flight_enabled()) {
    obs::FlightRecorder::instance().mark_post_mortem("fsp: bound not met");
  }
  obs::count("fsp.solves");
  obs::gauge("fsp.rounds", static_cast<real_t>(rounds.size()));
  obs::gauge("fsp.states.final", static_cast<real_t>(space.size()));
  obs::gauge("fsp.outflow_bound", bound);
  obs::gauge("fsp.converged", converged ? 1.0 : 0.0);
  obs::gauge("fsp.solver.iterations.total", static_cast<real_t>(total_iters));

  return FspResult{std::move(space), std::move(p),     bound,
                   converged,        std::move(rounds), total_iters};
}

TransientFspResult solve_transient(const core::ReactionNetwork& network,
                                   const core::State& initial,
                                   std::span<const real_t> t_grid,
                                   const TransientFspOptions& opt) {
  CMESOLVE_TRACE_SPAN("fsp.solve_transient");
  if (opt.max_rounds < 1) {
    throw std::invalid_argument("solve_transient: max_rounds must be >= 1");
  }
  real_t prev_t = 0.0;
  for (const real_t t : t_grid) {
    if (t < prev_t) {
      throw std::invalid_argument(
          "solve_transient: t_grid must be ascending and non-negative");
    }
    prev_t = t;
  }

  core::DynamicStateSpace space(network, initial);
  space.grow_bfs(std::min(opt.seed_states, opt.max_states));
  core::ProjectedRateMatrix matrix(network);
  matrix.extend(space);

  // The lost mass IS the error bound: never wash it out.
  solver::TransientOptions uopt = opt.uniformization;
  uopt.renormalize = false;
  solver::KrylovExpmOptions kopt = opt.krylov;
  kopt.renormalize = false;

  std::vector<TransientFspRound> rounds;
  std::uint64_t total_matvecs = 0;
  bool converged = false;
  bool truncated = false;
  real_t bound = t_grid.empty() ? 0.0
                                : std::numeric_limits<real_t>::infinity();
  std::vector<std::vector<real_t>> marginals;
  std::vector<real_t> sinks;

  for (int round = 1; round <= opt.max_rounds && !t_grid.empty(); ++round) {
    const index_t n = space.size();
    const auto rs = matrix.assemble_absorbing(space);
    const solver::CsrOperator op(rs.a);

    std::vector<real_t> p(static_cast<std::size_t>(n), 0.0);
    const index_t root = space.find(initial);
    if (root < 0) {
      throw std::logic_error("solve_transient: initial state not a member");
    }
    p[static_cast<std::size_t>(root)] = 1.0;

    marginals.assign(t_grid.size(), {});
    sinks.assign(t_grid.size(), 0.0);
    std::uint64_t matvecs = 0;
    std::size_t reached = 0;  // grid points whose checkpoint was delivered
    bool round_truncated = false;
    if (opt.engine == TransientEngine::kUniformization) {
      const auto r = solver::transient_solve_grid(
          op, t_grid, std::span<real_t>(p),
          [&](std::size_t i, std::span<const real_t> pi) {
            marginals[i].assign(pi.begin(), pi.end());
            sinks[i] = std::max<real_t>(0.0, 1.0 - solver::norm_l1(pi));
            reached = i + 1;
          },
          uopt);
      matvecs = r.matvecs;
      round_truncated = r.truncated_early;
    } else {
      // Krylov has no native checkpoint grid: chain segment solves, which
      // is exactly the semigroup property the test suite pins.
      real_t from = 0.0;
      for (std::size_t i = 0; i < t_grid.size(); ++i) {
        const auto r = solver::krylov_expm_solve(
            op, t_grid[i] - from, std::span<real_t>(p), kopt);
        from = t_grid[i];
        matvecs += r.matvecs;
        if (r.truncated_early || r.tol_not_met) {
          // p is P(t_done < t) or missed tol: every later checkpoint would
          // chain off a wrong state, so the round stops here.
          round_truncated = true;
          break;
        }
        marginals[i].assign(p.begin(), p.end());
        sinks[i] = std::max<real_t>(0.0, 1.0 - solver::norm_l1(p));
        reached = i + 1;
      }
    }
    total_matvecs += matvecs;

    if (round_truncated) {
      // The engine never computed the checkpoints past `reached`: poison
      // them instead of letting their 0.0 initialization masquerade as a
      // sink reading, and report no bound at all — the FSP guarantee only
      // holds for a propagation that covered the full grid. Growing the
      // member set would only raise the per-step cost, so stop here.
      for (std::size_t i = reached; i < t_grid.size(); ++i) {
        marginals[i].clear();
        sinks[i] = std::numeric_limits<real_t>::infinity();
      }
      bound = std::numeric_limits<real_t>::infinity();
      truncated = true;
      rounds.push_back(TransientFspRound{round, n, bound, matvecs});
      obs::flight("fsp.transient.sink_mass", obs::FlightKind::kFspRound,
                  static_cast<std::uint64_t>(round), bound);
      obs::flight("fsp.transient.states", obs::FlightKind::kFspStates,
                  static_cast<std::uint64_t>(round), static_cast<real_t>(n));
      break;
    }

    bound = sinks.back();

    rounds.push_back(TransientFspRound{round, n, bound, matvecs});
    obs::flight("fsp.transient.sink_mass", obs::FlightKind::kFspRound,
                static_cast<std::uint64_t>(round), bound);
    obs::flight("fsp.transient.states", obs::FlightKind::kFspStates,
                static_cast<std::uint64_t>(round), static_cast<real_t>(n));
    if (bound <= opt.tol) {
      converged = true;
      break;
    }

    // Expand every leaking boundary state's out-of-set successors, then
    // further reachability layers up to the growth floor, and restart the
    // propagation from t = 0 on the larger projection.
    std::vector<core::State> additions;
    for (index_t j = 0; j < n; ++j) {
      if (rs.outflow[static_cast<std::size_t>(j)] > 0.0) {
        matrix.out_of_set_successors(space, j, additions);
      }
    }
    const index_t before_add = space.size();
    for (const core::State& s : additions) {
      if (static_cast<std::size_t>(space.size()) >= opt.max_states) break;
      space.add(s);
    }
    if (opt.min_growth > 0.0) {
      const std::size_t target = std::min(
          opt.max_states,
          static_cast<std::size_t>(before_add) +
              static_cast<std::size_t>(
                  std::ceil(opt.min_growth * static_cast<real_t>(n))));
      index_t layer_begin = before_add;
      index_t layer_end = space.size();
      while (static_cast<std::size_t>(space.size()) < target &&
             layer_end > layer_begin) {
        for (index_t j = layer_begin;
             j < layer_end && static_cast<std::size_t>(space.size()) < target;
             ++j) {
          const core::State s = space.state(j);
          for (int k = 0; k < network.num_reactions(); ++k) {
            if (static_cast<std::size_t>(space.size()) >= target) break;
            if (network.applicable(k, s)) space.add(network.apply(k, s));
          }
        }
        layer_begin = layer_end;
        layer_end = space.size();
      }
    }
    if (space.size() == before_add) break;  // cap reached or boundary closed
    matrix.extend(space);
  }
  if (t_grid.empty()) converged = true;

  obs::flight("fsp.transient.stop", obs::FlightKind::kStop, rounds.size(),
              converged ? 1.0 : 0.0);
  if (!converged && obs::flight_enabled()) {
    obs::FlightRecorder::instance().mark_post_mortem(
        truncated ? "fsp transient: engine budget cut the propagation"
                  : "fsp transient: bound not met");
  }
  obs::count("fsp.transient.solves");
  obs::gauge("fsp.transient.rounds", static_cast<real_t>(rounds.size()));
  obs::gauge("fsp.transient.states.final", static_cast<real_t>(space.size()));
  obs::gauge("fsp.transient.error_bound", bound);
  obs::gauge("fsp.transient.converged", converged ? 1.0 : 0.0);
  obs::gauge("fsp.transient.truncated", truncated ? 1.0 : 0.0);
  obs::gauge("fsp.transient.matvecs.total",
             static_cast<real_t>(total_matvecs));

  return TransientFspResult{std::move(space),  std::move(marginals),
                            std::move(sinks),  bound,
                            converged,         truncated,
                            std::move(rounds), total_matvecs};
}

real_t l1_distance_to_reference(const FspResult& fsp,
                                const core::StateSpace& reference,
                                std::span<const real_t> p_ref) {
  if (p_ref.size() != static_cast<std::size_t>(reference.size())) {
    throw std::invalid_argument("l1_distance_to_reference: p_ref size");
  }
  real_t l1 = 0.0;
  for (index_t i = 0; i < reference.size(); ++i) {
    const index_t j = fsp.space.find(reference.state(i));
    const real_t pf = j >= 0 ? fsp.p[static_cast<std::size_t>(j)] : 0.0;
    l1 += std::abs(p_ref[static_cast<std::size_t>(i)] - pf);
  }
  // FSP members outside the reference enumeration (possible only when the
  // reference itself was truncated) carry their whole mass as error.
  for (index_t j = 0; j < fsp.space.size(); ++j) {
    if (reference.find(fsp.space.state(j)) < 0) {
      l1 += fsp.p[static_cast<std::size_t>(j)];
    }
  }
  return l1;
}

}  // namespace cmesolve::fsp
