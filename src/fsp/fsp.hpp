#pragma once
//
// Adaptive finite-state-projection (FSP) steady-state pipeline.
//
// The paper's pipeline enumerates a fixed finite-buffer box up front and
// solves A P = 0 on it; the box is either wastefully large or silently
// truncates probability mass. This subsystem sizes the state space itself:
//
//   1. Seed: BFS-enumerate a small member set around the initial state.
//   2. Solve: assemble the projected generator with out-of-set flux
//      redirected to a designated return state (the stationary FSP of
//      Gupta, Mikelson & Khammash, arXiv:1704.07259 — the redirected chain
//      is a proper CTMC, so the existing Jacobi/GMRES solvers apply
//      unchanged), warm-started from the previous round's landscape.
//   3. Bound: the truncation error indicator is the stationary sink mass of
//      the embedded jump chain,
//          bound = Σ_j p_j γ_j / Σ_j p_j λ_j
//      (γ_j = propensity leaving the member set from j, λ_j = total
//      propensity of j): the probability that the chain's next jump would
//      leave the projection.
//   4. Adapt: expand the out-of-set successors of the boundary states that
//      carry the top `expansion_quantile` share of stationary outflow flux;
//      prune members below the `prune_quantile` cumulative-mass threshold
//      (the quantile pruning of Dendukuri & Petzold, arXiv:2504.03070).
//   5. Repeat until the bound drops below `tol`.
//
// Each round can additionally run the round's truncated matrix through the
// simulated GPU Jacobi-sweep kernel (Table IV format), extending the
// paper's format/throughput comparisons to the adaptive workload.
//
#include <cstdint>
#include <limits>
#include <vector>

#include "core/rate_matrix.hpp"
#include "core/reaction_network.hpp"
#include "core/state_space.hpp"
#include "gpusim/device.hpp"
#include "gpusim/kernels.hpp"
#include "solver/gmres.hpp"
#include "solver/jacobi.hpp"
#include "solver/krylov_expm.hpp"
#include "solver/transient.hpp"
#include "util/types.hpp"

namespace cmesolve::fsp {

/// Inner steady-state solver of each round's truncated system.
enum class InnerSolver { kJacobi, kGmres };

struct FspOptions {
  /// Target truncation bound: stationary embedded-chain sink mass.
  real_t tol = 1e-8;
  /// Seed enumeration size (BFS around the initial state).
  std::size_t seed_states = 256;
  /// Hard cap on the member count; the loop stops unconverged at the cap.
  std::size_t max_states = 2'000'000;
  int max_rounds = 64;
  /// Boundary states carrying this share of the stationary outflow flux are
  /// expanded each round (1.0 = expand the whole boundary). Smaller values
  /// grow the space along the probability gradient instead of uniformly.
  real_t expansion_quantile = 0.999;
  /// Minimum per-round growth as a fraction of the pre-round member count.
  /// Flux-selected successors are added first; when they fall short (thin
  /// boundaries on quasi-1D lattices would otherwise grow by a handful of
  /// states per round), further reachability layers are appended from the
  /// newly added states until the round has grown by at least this fraction.
  /// 0 keeps pure single-layer flux expansion.
  real_t min_growth = 0.1;
  /// Cumulative stationary mass dropped by quantile pruning each round
  /// (0 = never prune). States are dropped lowest-probability-first until
  /// the dropped mass would exceed this fraction. A converged run also gets
  /// one final trim + re-solve with the same budget, so the returned set
  /// does not keep the growth overshoot.
  real_t prune_quantile = 0.0;
  /// Pruning is skipped below this member count (early rounds are too
  /// coarse for their landscape to be trusted).
  std::size_t min_states_to_prune = 1024;
  InnerSolver solver = InnerSolver::kJacobi;
  solver::JacobiOptions jacobi;  ///< inner Jacobi configuration
  solver::GmresOptions gmres;    ///< inner GMRES configuration
  /// Run eligible kJacobi inner solves matrix-free through a
  /// solver::MaskedStencilOperator instead of assembling the projected CSR
  /// matrix (the kGmres path always assembles). A round is eligible when the
  /// conservation-reduced capacity box is at most `matrix_free_box_ratio`
  /// times the member count — the masked operator sweeps the whole box, so a
  /// sparse member set inside a huge box would waste the bandwidth the
  /// format exists to save. Networks whose stencil cannot be compiled
  /// (non-constant strides) fall back to the assembled path permanently.
  bool matrix_free = false;
  real_t matrix_free_box_ratio = 8.0;
  /// When non-null, each round's matrix also runs through the simulated
  /// GPU Jacobi-sweep kernel (warped ELL+DIA) on this device, so the
  /// Table-III/IV format economics extend to the FSP workload.
  const gpusim::DeviceSpec* device = nullptr;
  gpusim::SimOptions sim;
};

/// One expansion/prune round, in execution order.
struct FspRound {
  int round = 0;             ///< 1-based
  index_t states = 0;        ///< members solved this round
  index_t added = 0;         ///< members appended after this round's solve
  index_t pruned = 0;        ///< members dropped after this round's solve
  index_t boundary = 0;      ///< members with positive outflow
  real_t outflow_bound = 0.0;
  std::uint64_t solver_iterations = 0;
  solver::StopReason stop = solver::StopReason::kMaxIterations;
  /// This round's inner solve ran matrix-free (masked stencil sweep over
  /// the conservation-reduced box; no assembled CSR).
  bool matrix_free = false;
  /// Simulated cost of one GPU sweep on this round's system: a Jacobi
  /// sweep on the warped ELL+DIA matrix for assembled rounds, the
  /// matrix-free stencil SpMV for matrix-free rounds (0 when
  /// FspOptions::device is null).
  real_t sim_sweep_seconds = 0.0;
  real_t sim_sweep_gflops = 0.0;
};

struct FspResult {
  core::DynamicStateSpace space;  ///< final member set
  std::vector<real_t> p;          ///< stationary landscape over the members
  real_t outflow_bound = std::numeric_limits<real_t>::infinity();
  bool converged = false;         ///< outflow_bound <= tol
  std::vector<FspRound> rounds;
  std::uint64_t total_solver_iterations = 0;
};

/// Run the adaptive pipeline. `network` must outlive the returned result
/// (the member set holds a reference). The network must be irreducible on
/// its reachable space — an absorbing state surfaces as the solvers'
/// zero-diagonal error, exactly as in the fixed-buffer pipeline.
[[nodiscard]] FspResult solve_adaptive(const core::ReactionNetwork& network,
                                       const core::State& initial,
                                       const FspOptions& opt = {});

// ---------------------------------------------------------------------------
// Transient FSP (Munsky & Khammash's original formulation)
// ---------------------------------------------------------------------------
//
// Propagate P(t) = exp(A_J t) P(0) on the truncated generator with
// out-of-set flux DROPPED (core::ProjectedRateMatrix::assemble_absorbing):
// the truncated generator is sub-stochastic, the mass it loses collects in
// an implicit sink, and the FSP transient theorem guarantees that the sink
// mass at the final time, 1 - ||P(t_final)||_1, bounds the pointwise
// truncation error of every marginal at every earlier time. When the bound
// exceeds tol the member set is expanded and the propagation restarts from
// t = 0 on the larger projection.

/// Propagation engine of the transient FSP loop.
enum class TransientEngine { kUniformization, kKrylov };

struct TransientFspOptions {
  /// Target sink mass at the final grid time (the uniform-in-time bound).
  real_t tol = 1e-8;
  std::size_t seed_states = 256;
  std::size_t max_states = 2'000'000;
  int max_rounds = 32;
  /// Per-round growth floor as a fraction of the pre-round member count:
  /// the boundary's out-of-set successors are added first, then further
  /// reachability layers until the round has grown by at least this much.
  real_t min_growth = 0.5;
  TransientEngine engine = TransientEngine::kUniformization;
  /// Engine configurations. `renormalize` is forced off internally — the
  /// lost mass IS the error bound.
  solver::TransientOptions uniformization;
  solver::KrylovExpmOptions krylov;
};

struct TransientFspRound {
  int round = 0;        ///< 1-based
  index_t states = 0;   ///< members propagated this round
  real_t sink_mass = 0.0;  ///< 1 - ||P(t_final)||_1 on this round's set
  std::uint64_t matvecs = 0;
};

struct TransientFspResult {
  core::DynamicStateSpace space;  ///< final member set
  /// Per requested grid point: the raw sub-stochastic marginal over the
  /// members (NOT renormalized; ||marginals[i]||_1 = 1 - sink_mass[i]).
  /// When `truncated_early` is set, grid points the engine never reached
  /// hold an empty marginal and infinite sink_mass.
  std::vector<std::vector<real_t>> marginals;
  std::vector<real_t> sink_mass;  ///< per grid point
  /// Sink mass at the final grid point == the uniform-in-time FSP error
  /// bound for every marginal in `marginals`. Infinity when the final
  /// round's propagation was truncated: a bound derived from an unreached
  /// checkpoint would falsify the FSP guarantee.
  real_t error_bound = std::numeric_limits<real_t>::infinity();
  bool converged = false;  ///< error_bound <= tol
  /// The last round's engine stopped before covering the full grid
  /// (uniformization max_terms, Krylov matvec budget, or an unmeetable
  /// Krylov step tolerance). No error bound is available.
  bool truncated_early = false;
  std::vector<TransientFspRound> rounds;
  std::uint64_t total_matvecs = 0;
};

/// Run the transient pipeline over an ascending grid of absolute times.
/// `network` must outlive the returned result. Unlike the stationary
/// pipeline, absorbing states are fine — exp(At) needs no invertibility.
[[nodiscard]] TransientFspResult solve_transient(
    const core::ReactionNetwork& network, const core::State& initial,
    std::span<const real_t> t_grid, const TransientFspOptions& opt = {});

/// L1 distance between an FSP landscape and a reference landscape over a
/// full fixed-buffer enumeration of the same network (missing states count
/// with their full reference mass). The golden acceptance metric for
/// bench/fsp_adaptive and tests/test_fsp.
[[nodiscard]] real_t l1_distance_to_reference(const FspResult& fsp,
                                              const core::StateSpace& reference,
                                              std::span<const real_t> p_ref);

}  // namespace cmesolve::fsp
