#include "gpusim/cache.hpp"

#include <bit>
#include <cassert>

namespace cmesolve::gpusim {

CacheModel::CacheModel(std::size_t capacity_bytes, int ways,
                       std::size_t line_bytes)
    : num_sets_(capacity_bytes / line_bytes / static_cast<std::size_t>(ways)),
      ways_(ways),
      line_shift_(std::countr_zero(line_bytes)) {
  assert(std::has_single_bit(line_bytes));
  assert(num_sets_ >= 1);
  ways_storage_.resize(num_sets_ * static_cast<std::size_t>(ways_));
}

bool CacheModel::access(std::uint64_t addr) {
  const std::uint64_t line = addr >> line_shift_;
  const std::size_t set = static_cast<std::size_t>(line) % num_sets_;
  Way* begin = ways_storage_.data() + set * static_cast<std::size_t>(ways_);
  ++clock_;

  Way* victim = begin;
  for (int w = 0; w < ways_; ++w) {
    Way& way = begin[w];
    if (way.valid && way.tag == line) {
      way.last_use = clock_;
      ++hits_;
      return true;
    }
    if (!way.valid) {
      victim = &way;  // prefer an empty way over LRU eviction
    } else if (victim->valid && way.last_use < victim->last_use) {
      victim = &way;
    }
  }
  victim->tag = line;
  victim->valid = true;
  victim->last_use = clock_;
  ++misses_;
  return false;
}

void CacheModel::reset() {
  for (Way& w : ways_storage_) w = Way{};
  clock_ = hits_ = misses_ = 0;
}

}  // namespace cmesolve::gpusim
