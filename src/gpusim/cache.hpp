#pragma once
//
// Set-associative LRU cache model, used for the per-SM L1s and the shared
// L2 of the Fermi simulator. Tags only — no data is stored; the functional
// results come from the host-side kernels.
//
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cmesolve::gpusim {

class CacheModel {
 public:
  /// @param capacity_bytes  total capacity
  /// @param ways            associativity
  /// @param line_bytes      line size (must be a power of two)
  CacheModel(std::size_t capacity_bytes, int ways, std::size_t line_bytes);

  /// Look up (and fill on miss) the line containing `addr`.
  /// @return true on hit.
  bool access(std::uint64_t addr);

  /// Drop all lines (used between independent simulations).
  void reset();

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::size_t num_sets() const noexcept { return num_sets_; }
  [[nodiscard]] int ways() const noexcept { return ways_; }

 private:
  struct Way {
    std::uint64_t tag = ~0ULL;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  std::size_t num_sets_;
  int ways_;
  int line_shift_;
  std::vector<Way> ways_storage_;  // num_sets_ * ways_
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace cmesolve::gpusim
