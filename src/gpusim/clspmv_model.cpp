#include "gpusim/clspmv_model.hpp"

#include <algorithm>
#include <vector>

#include "sparse/bcsr.hpp"
#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "sparse/hybrid.hpp"
#include "sparse/sliced_ell.hpp"

namespace cmesolve::gpusim {

namespace {

struct Candidate {
  std::string name;
  real_t seconds = 0;
  int parts = 1;
};

/// Extra cost of combining k kernel parts: k-1 additional launches plus a
/// read-modify-write pass over y per extra part.
real_t mix_overhead(const DeviceSpec& dev, index_t n, int parts,
                    const SimOptions& opt) {
  if (parts <= 1) return 0.0;
  const KernelStats rmw = simulate_vector_op(dev, n, /*reads=*/2, /*writes=*/1,
                                             opt);
  return static_cast<real_t>(parts - 1) * (rmw.seconds + dev.launch_overhead);
}

}  // namespace

ClSpmvResult clspmv_autotune(const DeviceSpec& dev, const sparse::Csr& m,
                             int block_size) {
  SimOptions opt;
  opt.block_size = block_size;
  opt.value_bytes = 4;     // the published clSpMV is single precision
  opt.l1_enabled = false;  // OpenCL runtime without the tuned L1 split

  std::vector<real_t> x(static_cast<std::size_t>(m.ncols));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = 1.0 / static_cast<real_t>(m.ncols);
  }
  std::vector<real_t> y(static_cast<std::size_t>(m.nrows));

  std::vector<Candidate> candidates;

  {  // Pure ELL.
    const auto ell = sparse::ell_from_csr(m);
    candidates.push_back(
        {"ELL", simulate_spmv(dev, ell, x, y, opt).seconds, 1});
  }
  {  // SELL in the original formulation: slice == block.
    const auto sell = sparse::sliced_ell_from_csr(m, block_size);
    candidates.push_back(
        {"SELL", simulate_spmv(dev, sell, x, y, opt).seconds, 1});
  }
  {  // CSR scalar kernel.
    candidates.push_back({"CSR", simulate_spmv(dev, m, x, y, opt).seconds, 1});
  }
  {  // CSR vector kernel (warp per row).
    candidates.push_back(
        {"CSR-vec", simulate_spmv_csr_vector(dev, m, x, y, opt).seconds, 1});
  }
  {  // BCSR with 2x2 register blocks.
    const auto bcsr = sparse::bcsr_from_csr(m, 2, 2);
    candidates.push_back(
        {"BCSR", simulate_spmv(dev, bcsr, x, y, opt).seconds, 1});
  }
  {  // DIA band + ELL remainder mix (clSpMV "correctly identifies the band
     // in most cases" — Sec. VII-C — but pays the partial-result overhead).
    const auto offsets = sparse::select_band_offsets(m);
    if (offsets.size() > 1) {
      const auto band = sparse::dia_from_csr(m, offsets);
      const auto rest =
          sparse::ell_from_csr(sparse::strip_diagonals(m, band.offsets));
      const real_t t_band = simulate_spmv(dev, band, x, y, opt).seconds;
      const real_t t_rest = simulate_spmv(dev, rest, x, y, opt).seconds;
      candidates.push_back({"DIA+ELL", t_band + t_rest +
                                           mix_overhead(dev, m.nrows, 2, opt),
                            2});
    }
  }

  const auto best =
      std::min_element(candidates.begin(), candidates.end(),
                       [](const Candidate& a, const Candidate& b) {
                         return a.seconds < b.seconds;
                       });

  // Reproduce y functionally with the plain CSR reference so callers can
  // validate the comparator too.
  sparse::spmv(m, x, y);

  ClSpmvResult out;
  out.chosen = best->name;
  out.seconds = best->seconds;
  out.single_gflops =
      2.0 * static_cast<real_t>(m.nnz()) / best->seconds / 1.0e9;
  out.normalized_gflops = out.single_gflops * 8.0 / 12.0;
  return out;
}

}  // namespace cmesolve::gpusim
