#pragma once
//
// Comparator model of clSpMV (Su & Keutzer, ICS'12) — the "state of the
// art" ensemble of Table III.
//
// clSpMV autotunes over a cocktail of formats (DIA, BDIA, ELL, SELL, CSR,
// COO, blocked variants) and may pick a *mix*: a DIA part for the band, an
// ELL part for the regular remainder, a COO tail for outlier rows. The
// published binary is single precision only; the paper normalizes its
// numbers by 8/12 to compare against double-precision kernels.
//
// This model reproduces that comparator faithfully within the simulator:
//   * candidate set = the formats clSpMV ships (ELL, SELL with slice=block,
//     CSR, and DIA+ELL[+COO-tail] mixes) — crucially NOT the paper's
//     warp-grained SELL and NOT the fused ELL+DIA Jacobi hybrid;
//   * every candidate is simulated in single precision (4-byte values);
//   * a mix pays one extra kernel launch and a partial-result
//     read-modify-write of y per additional part;
//   * the winner's GFLOPS are normalized by 8/12 exactly as in Sec. VII-C;
//   * OpenCL-era runtimes did not get the tuned 48 KB L1 benefit, so
//     gathers bypass L1 (l1_enabled = false).
//
#include <span>
#include <string>

#include "gpusim/device.hpp"
#include "gpusim/kernels.hpp"
#include "sparse/csr.hpp"

namespace cmesolve::gpusim {

struct ClSpmvResult {
  std::string chosen;        ///< e.g. "DIA+ELL", "SELL", "ELL"
  real_t single_gflops = 0;  ///< raw single-precision performance
  real_t normalized_gflops = 0;  ///< * 8/12, the Table III number
  real_t seconds = 0;
};

/// Run the autotuner over `m` and return the best candidate.
[[nodiscard]] ClSpmvResult clspmv_autotune(const DeviceSpec& dev,
                                           const sparse::Csr& m,
                                           int block_size = 256);

}  // namespace cmesolve::gpusim
