#include "gpusim/device.hpp"

namespace cmesolve::gpusim {

DeviceSpec DeviceSpec::gtx580(std::size_t l1) {
  DeviceSpec d;
  d.name = "GTX580 (Fermi)";
  d.l1_bytes = l1;
  return d;
}

DeviceSpec DeviceSpec::kepler_k20() {
  DeviceSpec d;
  d.name = "K20X (Kepler GK110)";
  d.num_sms = 14;            // SMX count
  d.warp_size = 32;
  d.max_threads_per_sm = 2048;
  d.max_blocks_per_sm = 16;
  d.max_warps_per_sm = 64;
  d.l1_bytes = 48 * 1024;    // + the 48 KB read-only data cache, modeled as
  d.l1_ways = 6;             //   extra L1 capacity for the x-vector gathers
  d.l2_bytes = 1536 * 1024;
  d.l2_ways = 16;
  d.dram_bandwidth = 250.0e9;
  d.l2_bandwidth = 500.0e9;
  d.l1_bandwidth = 4.0e12;
  d.dp_peak_flops = 1310.0e9;
  d.sp_peak_flops = 3950.0e9;
  return d;
}

}  // namespace cmesolve::gpusim
