#pragma once
//
// Device descriptors for the Fermi-class performance model.
//
// The paper's numbers come from a GeForce GTX580 (Sec. III / VII-A); the
// simulator reproduces its published micro-architectural parameters. A
// Kepler-class descriptor is included for the Sec. VII-D what-if discussion.
//
// Timing-model calibration constants (latency hiding, block turnover,
// block scheduling) are part of the descriptor so ablation benches can
// sweep them.
//
#include <cstddef>
#include <string>

#include "util/types.hpp"

namespace cmesolve::gpusim {

struct DeviceSpec {
  std::string name;

  // --- SIMT geometry -------------------------------------------------------
  int num_sms = 16;
  int warp_size = 32;
  int max_threads_per_sm = 1536;
  int max_blocks_per_sm = 8;
  int max_warps_per_sm = 48;

  // --- Memory hierarchy ----------------------------------------------------
  std::size_t line_bytes = 128;        ///< L1 cache line / memory transaction
  std::size_t write_segment_bytes = 32;///< DRAM write-coalescing granularity
  std::size_t l1_bytes = 48 * 1024;    ///< per-SM; 16 KB in the alternate split
  int l1_ways = 6;
  std::size_t l2_bytes = 768 * 1024;   ///< shared, coherent
  int l2_ways = 16;

  // --- Throughput peaks ----------------------------------------------------
  real_t dram_bandwidth = 192.0e9;     ///< bytes/s (GTX580 GDDR5)
  real_t l2_bandwidth = 384.0e9;       ///< bytes/s, modeled
  real_t l1_bandwidth = 3.15e12;       ///< bytes/s aggregate on-chip (Sec. III)
  real_t dp_peak_flops = 197.0e9;      ///< gaming board: 1/4 of SP peak
  real_t sp_peak_flops = 789.0e9;

  // --- Timing-model calibration --------------------------------------------
  /// Bandwidth efficiency saturates once enough warps are in flight:
  /// eff = min(1, latency_hiding_slope * occupancy_fraction).
  real_t latency_hiding_slope = 1.45;
  /// Tail-quantization penalty of large blocks: an SM waits for all warps of
  /// a finishing block before scheduling a new one (Sec. III block turnover).
  /// time *= 1 + turnover_alpha * block_size / max_threads_per_sm.
  real_t turnover_alpha = 0.04;
  /// Block-scheduling overhead of small blocks:
  /// time *= 1 + sched_beta * (sched_ref_block / block_size).
  real_t sched_beta = 0.02;
  int sched_ref_block = 128;
  /// Fixed kernel-launch latency (driver + dispatch).
  real_t launch_overhead = 5.0e-6;

  /// GTX580 with the given L1 split (48 KB default, 16 KB alternate).
  [[nodiscard]] static DeviceSpec gtx580(std::size_t l1 = 48 * 1024);
  /// Kepler GK110-class board (Sec. VII-D): more bandwidth, bigger caches,
  /// 1.31 TFLOPS double precision.
  [[nodiscard]] static DeviceSpec kepler_k20();
};

}  // namespace cmesolve::gpusim
