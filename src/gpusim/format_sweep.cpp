#include "gpusim/format_sweep.hpp"

#include <stdexcept>

#include "sparse/ell.hpp"
#include "sparse/hybrid.hpp"
#include "sparse/sliced_ell.hpp"

namespace cmesolve::gpusim {

FormatSweepResult format_sweep(const DeviceSpec& dev, const sparse::Csr& a,
                               std::span<const real_t> x, std::span<real_t> y,
                               const SimOptions& opt) {
  if (x.size() != static_cast<std::size_t>(a.ncols) ||
      y.size() != static_cast<std::size_t>(a.nrows)) {
    throw std::invalid_argument("format_sweep: vector size mismatch");
  }

  FormatSweepResult out;
  const auto record = [&](const char* name, const KernelStats& stats) {
    out.entries.push_back({name, stats});
    if (stats.gflops > out.best_gflops) {
      out.best_gflops = stats.gflops;
      out.best_format = name;
    }
  };

  record("csr-scalar", simulate_spmv(dev, a, x, y, opt));
  record("ell", simulate_spmv(dev, sparse::ell_from_csr(a), x, y, opt));
  record("sliced-ell",
         simulate_spmv(dev, sparse::sliced_ell_from_csr(a, /*slice_size=*/256),
                       x, y, opt));
  record("warped-ell",
         simulate_spmv(dev, sparse::warped_ell_from_csr(a), x, y, opt));
  const auto offsets = sparse::select_band_offsets(a);
  record("ell-dia",
         simulate_spmv(dev, sparse::ell_dia_from_csr(a, offsets), x, y, opt));
  record("warped-ell-dia",
         simulate_spmv(dev, sparse::sliced_ell_dia_from_csr(a, offsets), x, y,
                       opt));
  return out;
}

FormatSweepResult format_sweep(const DeviceSpec& dev, const sparse::Csr& a,
                               std::span<const real_t> x, std::span<real_t> y,
                               const core::StencilTable& table,
                               std::span<const real_t> x_box,
                               std::span<real_t> y_box,
                               const SimOptions& opt) {
  FormatSweepResult out = format_sweep(dev, a, x, y, opt);
  const KernelStats stats = simulate_spmv_stencil(dev, table, x_box, y_box, opt);
  out.entries.push_back({"stencil", stats});
  if (stats.gflops > out.best_gflops) {
    out.best_gflops = stats.gflops;
    out.best_format = "stencil";
  }
  return out;
}

}  // namespace cmesolve::gpusim
