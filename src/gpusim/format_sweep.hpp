#pragma once
//
// Table-III-style format comparison packaged as a reusable helper.
//
// The paper compares SpMV throughput across storage formats on the fixed
// Table I matrices; the adaptive-FSP pipeline (src/fsp/) produces a fresh
// truncated matrix every expansion round, and extending the comparison to
// that workload means re-running the same sweep per round. This helper runs
// the simulated kernels of the standard format set on one CSR matrix and
// reports per-format KernelStats plus the winner.
//
#include <span>
#include <string>
#include <vector>

#include "core/stencil.hpp"
#include "gpusim/device.hpp"
#include "gpusim/kernels.hpp"
#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace cmesolve::gpusim {

struct FormatSweepEntry {
  std::string format;  ///< "csr-scalar", "ell", "sliced-ell", "warped-ell",
                       ///< "ell-dia", "warped-ell-dia", "stencil"
  KernelStats stats;
};

struct FormatSweepResult {
  std::vector<FormatSweepEntry> entries;  ///< fixed format order
  std::string best_format;                ///< highest simulated GFLOPS
  real_t best_gflops = 0.0;
};

/// Simulate y = A x across the standard format set on `dev`. The functional
/// result is identical for every format (same double-precision numerics);
/// only the simulated traffic — and therefore GFLOPS — differs. `y` is
/// scratch output space of a.nrows elements.
[[nodiscard]] FormatSweepResult format_sweep(const DeviceSpec& dev,
                                             const sparse::Csr& a,
                                             std::span<const real_t> x,
                                             std::span<real_t> y,
                                             const SimOptions& opt = {});

/// Same sweep with the matrix-free stencil kernel appended as a "stencil"
/// entry (the simulated Table IV comparison including the format that
/// stores nothing). The stored-format kernels run on the enumerated-space
/// matrix `a`; the stencil kernel runs over the conservation-reduced box,
/// so it takes its own box-length vectors `x_box` / `y_box`.
[[nodiscard]] FormatSweepResult format_sweep(const DeviceSpec& dev,
                                             const sparse::Csr& a,
                                             std::span<const real_t> x,
                                             std::span<real_t> y,
                                             const core::StencilTable& table,
                                             std::span<const real_t> x_box,
                                             std::span<real_t> y_box,
                                             const SimOptions& opt = {});

}  // namespace cmesolve::gpusim
