#include "gpusim/kernels.hpp"

#include "gpusim/occupancy.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace cmesolve::gpusim {

namespace {

/// Warp-schedule geometry shared by both execution engines.
struct WarpSchedule {
  index_t nblocks = 0;
  int resident = 0;          ///< blocks resident per SM
  index_t wave = 0;          ///< blocks retired per scheduling wave
  index_t warps_per_block = 0;
};

WarpSchedule warp_schedule(const DeviceSpec& dev, index_t total_rows,
                           int block_size) {
  WarpSchedule s;
  s.nblocks = (total_rows + block_size - 1) / static_cast<index_t>(block_size);
  s.resident = std::max(1, occupancy(dev, block_size).blocks_per_sm);
  s.wave = static_cast<index_t>(dev.num_sms) * s.resident;
  s.warps_per_block =
      (static_cast<index_t>(block_size) + dev.warp_size - 1) / dev.warp_size;
  return s;
}

/// Iterate warps the way an SM would see them: blocks are assigned to SMs
/// round-robin, up to occupancy().blocks_per_sm blocks are RESIDENT on an SM
/// at once, and their warps interleave. The interleaving matters for the L1
/// model — a 16 KB L1 must hold the working set of every resident block,
/// which is exactly the effect the paper's 16 KB-vs-48 KB experiment probes.
///
/// `make_body(stream)` builds the per-warp callable `fn(first_stored_row,
/// lanes_in_warp)` around an SmStream event sink; the factory is invoked
/// once per SM task so every host thread owns its scratch buffers.
///
/// Engine selection: with a thread budget of 1 the original serial engine
/// runs — direct mode, (wave, sm, warp, slot) program order. Otherwise the
/// 16 SM warp streams execute as pool tasks against private shards, and
/// merge_shards() replays the shared-L2 traffic in the identical order, so
/// the resulting KernelStats are bit-identical either way (enforced by
/// tests/test_parallel_determinism.cpp).
template <class BodyFactory>
void for_each_warp(MemorySim& sim, index_t total_rows, int block_size,
                   BodyFactory&& make_body) {
  const DeviceSpec& dev = sim.device();
  const WarpSchedule s = warp_schedule(dev, total_rows, block_size);

  // One SM's warps of one wave, in the serial engine's (warp, slot) order.
  const auto sm_wave = [&](auto& body, index_t wave0, int sm) {
    for (index_t j = 0; j < s.warps_per_block; ++j) {
      for (int slot = 0; slot < s.resident; ++slot) {
        const index_t b = wave0 + static_cast<index_t>(sm) +
                          static_cast<index_t>(slot) * dev.num_sms;
        if (b >= s.nblocks) continue;
        const index_t row0 = b * block_size + j * dev.warp_size;
        if (row0 >= total_rows) continue;
        const index_t row_end =
            std::min<index_t>({row0 + dev.warp_size,
                               b * block_size + block_size, total_rows});
        if (row_end > row0) body(row0, row_end - row0);
      }
    }
  };

  if (util::max_threads() <= 1) {
    auto body = make_body(sim.direct());
    for (index_t wave0 = 0; wave0 < s.nblocks; wave0 += s.wave) {
      for (int sm = 0; sm < dev.num_sms; ++sm) {
        sim.set_active_sm(sm);
        sm_wave(body, wave0, sm);
      }
    }
    return;
  }

  util::parallel_tasks(dev.num_sms, [&](int sm) {
    SmStream& stream = sim.shard(sm);
    auto body = make_body(stream);
    for (index_t wave0 = 0; wave0 < s.nblocks; wave0 += s.wave) {
      stream.begin_wave();
      sm_wave(body, wave0, sm);
    }
  });
  sim.merge_shards();
}

/// Device-address bookkeeping for one simulated kernel.
struct SpmvArrays {
  std::uint64_t val = 0;
  std::uint64_t col = 0;
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  std::uint64_t dia = 0;
  std::uint64_t perm = 0;
  std::uint64_t row_ptr = 0;
};

/// Warp-step helper: stream-load the contiguous value range covering the
/// active lanes (the conditional of Listing 1 skips lanes whose slot is
/// padding, but a transaction covers whatever lies between the first and
/// last active lane).
void load_active_values(SmStream& mem, std::uint64_t base_addr,
                        std::size_t vb, index_t first_active,
                        index_t last_active) {
  if (first_active > last_active) return;
  mem.stream_load(base_addr + static_cast<std::uint64_t>(first_active) * vb,
                  static_cast<std::size_t>(last_active - first_active + 1) * vb);
}

/// The ELL-family inner loop shared by Ell and SlicedEll walks,
/// implementing the conditional of Listing 1: the VALUE is loaded
/// unconditionally (it is the padding detector), while the column index and
/// the x-gather are skipped for padding slots. A whole warp-step of padding
/// therefore still pays the value stream — exactly the efficiency-metric
/// waste e = nnz / (n' * k) of Sec. V.
template <class SlotFn>
void ell_warp_steps(SmStream& mem, const std::vector<real_t>& val,
                    const std::vector<index_t>& col, const SpmvArrays& a,
                    std::span<const real_t> x, index_t lanes, index_t k,
                    std::size_t vb, SlotFn&& slot_of,
                    std::span<real_t> lane_sums) {
  std::array<std::uint64_t, 32> gather_addrs{};
  for (index_t j = 0; j < k; ++j) {
    index_t first_active = lanes;
    index_t last_active = -1;
    int n_gather = 0;
    for (index_t lane = 0; lane < lanes; ++lane) {
      const std::size_t slot = slot_of(lane, j);
      const index_t c = col[slot];
      if (c > kPadColumn) {
        first_active = std::min(first_active, lane);
        last_active = std::max(last_active, lane);
        gather_addrs[n_gather++] =
            a.x + static_cast<std::uint64_t>(c) * vb;
        lane_sums[lane] += val[slot] * x[c];
      }
    }
    // Values stream for the full warp width at every step (detector load).
    mem.stream_load(a.val + slot_of(0, j) * vb,
                    static_cast<std::size_t>(lanes) * vb);
    if (last_active >= 0) {
      // Column indices only where at least one lane passed the test.
      load_active_values(mem, a.col + slot_of(0, j) * sizeof(index_t),
                         sizeof(index_t), first_active, last_active);
      mem.gather(std::span<const std::uint64_t>(gather_addrs.data(),
                                                static_cast<std::size_t>(n_gather)),
                 vb);
      mem.add_flops(2ULL * static_cast<std::uint64_t>(n_gather));
    }
  }
}

/// Allocate the common arrays of an SpMV simulation.
SpmvArrays alloc_spmv(AddressSpace& as, std::size_t val_slots,
                      std::size_t col_slots, index_t ncols, index_t nrows,
                      std::size_t vb) {
  SpmvArrays a;
  a.val = as.alloc(val_slots * vb);
  a.col = as.alloc(col_slots * sizeof(index_t));
  a.x = as.alloc(static_cast<std::size_t>(ncols) * vb);
  a.y = as.alloc(static_cast<std::size_t>(nrows) * vb);
  return a;
}

/// Contribution of one DIA band walk driven by stored rows. When `perm` is
/// non-null the band data and x are gathered through the (local)
/// permutation, otherwise they stream contiguously.
void dia_warp_contribution(SmStream& mem, const sparse::Dia& band,
                           const SpmvArrays& a, std::span<const real_t> x,
                           index_t w, index_t lanes,
                           const std::vector<index_t>* perm, std::size_t vb,
                           std::span<real_t> lane_sums,
                           const index_t* skip_offset) {
  std::array<std::uint64_t, 32> data_addrs{};
  std::array<std::uint64_t, 32> x_addrs{};
  for (std::size_t di = 0; di < band.offsets.size(); ++di) {
    const index_t off = band.offsets[di];
    if (skip_offset && off == *skip_offset) continue;
    int n_active = 0;
    for (index_t lane = 0; lane < lanes; ++lane) {
      const index_t stored = w + lane;
      const index_t r = perm ? (*perm)[stored] : stored;
      const index_t c = r + off;
      if (c < 0 || c >= band.ncols) continue;
      const std::size_t slot =
          di * static_cast<std::size_t>(band.nrows) + static_cast<std::size_t>(r);
      const real_t v = band.data[slot];
      data_addrs[n_active] = a.dia + slot * vb;
      x_addrs[n_active] = a.x + static_cast<std::uint64_t>(c) * vb;
      ++n_active;
      lane_sums[lane] += v * x[c];
    }
    if (n_active > 0) {
      if (perm) {
        mem.gather(std::span<const std::uint64_t>(data_addrs.data(),
                                                  static_cast<std::size_t>(n_active)),
                   vb);
      } else {
        // Contiguous rows: the band data streams like a dense vector.
        mem.stream_load(data_addrs[0],
                        static_cast<std::size_t>(n_active) * vb);
      }
      mem.gather(std::span<const std::uint64_t>(x_addrs.data(),
                                                static_cast<std::size_t>(n_active)),
                 vb);
      mem.add_flops(2ULL * static_cast<std::uint64_t>(n_active));
    }
  }
}

/// Drive the simulated kernel for `passes` launches and report the last
/// (warm-cache) one. `kernel` is a static string naming the launch for the
/// trace ("sim.spmv.ell", "sim.jacobi_sweep", ...) and prefixing the
/// published metrics.
KernelStats run_passes(MemorySim& sim, const char* kernel, int block_size,
                       std::uint64_t useful_flops, int passes,
                       const std::function<void()>& body) {
  KernelStats stats;
  for (int p = 0; p < std::max(1, passes); ++p) {
    CMESOLVE_TRACE_SPAN(kernel);
    sim.begin_pass();
    body();
    stats = sim.finalize(block_size, useful_flops);
  }
  publish_kernel_stats(kernel, stats);
  return stats;
}

}  // namespace

void publish_kernel_stats(const char* kernel, const KernelStats& stats) {
  if (!obs::metrics_enabled()) return;
  const std::string k(kernel);
  // All of these are *simulated* quantities — products of the deterministic
  // traffic model, not host wall-clock — so none are volatile.
  obs::count(k + ".launches");
  obs::observe(k + ".seconds", stats.seconds);
  obs::observe(k + ".gflops", stats.gflops);
  obs::gauge(k + ".last.seconds", stats.seconds);
  obs::gauge(k + ".last.gflops", stats.gflops);
  obs::gauge(k + ".last.occupancy", stats.occupancy);
  obs::gauge(k + ".last.useful_flops",
             static_cast<double>(stats.useful_flops));
  const TrafficCounters& t = stats.traffic;
  obs::gauge(k + ".last.dram_bytes", static_cast<double>(t.dram_bytes));
  obs::gauge(k + ".last.l2_bytes", static_cast<double>(t.l2_bytes));
  obs::gauge(k + ".last.l1_bytes", static_cast<double>(t.l1_bytes));
  obs::gauge(k + ".last.transactions", static_cast<double>(t.transactions));
  obs::gauge(k + ".last.flops", static_cast<double>(t.flops));
  const std::uint64_t l1_lookups = t.l1_hits + t.l1_misses;
  const std::uint64_t l2_lookups = t.l2_hits + t.l2_misses;
  obs::gauge(k + ".last.l1_hit_rate",
             l1_lookups > 0 ? static_cast<double>(t.l1_hits) /
                                  static_cast<double>(l1_lookups)
                            : 0.0);
  obs::gauge(k + ".last.l2_hit_rate",
             l2_lookups > 0 ? static_cast<double>(t.l2_hits) /
                                  static_cast<double>(l2_lookups)
                            : 0.0);
}

KernelStats simulate_spmv(const DeviceSpec& dev, const sparse::Ell& m,
                          std::span<const real_t> x, std::span<real_t> y,
                          const SimOptions& opt) {
  assert(x.size() == static_cast<std::size_t>(m.ncols));
  assert(y.size() == static_cast<std::size_t>(m.nrows));
  MemorySim sim(dev, opt.l1_enabled);
  AddressSpace as;
  SpmvArrays a =
      alloc_spmv(as, m.val.size(), m.col.size(), m.ncols, m.nrows, opt.value_bytes);

  const auto body = [&] {
    for_each_warp(sim, m.padded_rows, opt.block_size, [&](SmStream& mem) {
      return [&, sums = std::vector<real_t>(
                     static_cast<std::size_t>(dev.warp_size))](
                 index_t w, index_t lanes) mutable {
        std::fill(sums.begin(), sums.end(), 0.0);
        const auto slot_of = [&](index_t lane, index_t j) {
          return static_cast<std::size_t>(j) * m.padded_rows +
                 static_cast<std::size_t>(w + lane);
        };
        ell_warp_steps(mem, m.val, m.col, a, x, lanes, m.k, opt.value_bytes,
                       slot_of, std::span<real_t>(sums));
        const index_t real_lanes = std::max<index_t>(
            0, std::min<index_t>(lanes, m.nrows - w));
        if (real_lanes > 0) {
          mem.stream_store(a.y + static_cast<std::uint64_t>(w) * opt.value_bytes,
                           static_cast<std::size_t>(real_lanes) * opt.value_bytes);
          for (index_t lane = 0; lane < real_lanes; ++lane) {
            y[w + lane] = sums[lane];
          }
        }
      };
    });
  };
  return run_passes(sim, "sim.spmv.ell", opt.block_size, 2ULL * m.nnz,
                    opt.passes, body);
}

KernelStats simulate_spmv(const DeviceSpec& dev, const sparse::SlicedEll& m,
                          std::span<const real_t> x, std::span<real_t> y,
                          const SimOptions& opt) {
  assert(x.size() == static_cast<std::size_t>(m.ncols));
  assert(y.size() == static_cast<std::size_t>(m.nrows));
  MemorySim sim(dev, opt.l1_enabled);
  AddressSpace as;
  SpmvArrays a =
      alloc_spmv(as, m.val.size(), m.col.size(), m.ncols, m.nrows, opt.value_bytes);
  a.perm = as.alloc(m.perm.size() * sizeof(index_t));
  a.row_ptr = as.alloc(m.slice_k.size() * 8);  // slice k + start offsets
  const bool permuted = !m.is_identity_perm();

  const auto body = [&] {
    for_each_warp(sim, m.nrows, opt.block_size, [&](SmStream& mem) {
      return [&, sums = std::vector<real_t>(
                     static_cast<std::size_t>(dev.warp_size)),
              store_addrs = std::array<std::uint64_t, 32>{}](
                 index_t w, index_t lanes) mutable {
        std::fill(sums.begin(), sums.end(), 0.0);
        const index_t slice = w / m.slice_size;
        const index_t k = m.slice_k[slice];
        const std::size_t base = m.slice_ptr[slice];
        const index_t lane0 = w - slice * m.slice_size;
        const auto slot_of = [&](index_t lane, index_t j) {
          return base + static_cast<std::size_t>(j) * m.slice_size +
                 static_cast<std::size_t>(lane0 + lane);
        };
        // The per-warp slice bound replaces the global k; the slice-k and
        // slice-offset lookups are two 4-byte reads shared by the whole warp.
        // Slice metadata (local k + storage offset): one cached lane read
        // shared by the warp.
        {
          const std::uint64_t meta = a.row_ptr + static_cast<std::uint64_t>(slice) * 8;
          mem.gather(std::span<const std::uint64_t>(&meta, 1), 8);
        }
        if (permuted) {
          mem.stream_load(a.perm + static_cast<std::uint64_t>(w) * sizeof(index_t),
                          static_cast<std::size_t>(lanes) * sizeof(index_t));
        }
        ell_warp_steps(mem, m.val, m.col, a, x, lanes, k, opt.value_bytes,
                       slot_of, std::span<real_t>(sums));
        for (index_t lane = 0; lane < lanes; ++lane) {
          const index_t r = m.perm[w + lane];
          store_addrs[lane] = a.y + static_cast<std::uint64_t>(r) * opt.value_bytes;
          y[r] = sums[lane];
        }
        if (permuted) {
          mem.scatter_store(std::span<const std::uint64_t>(store_addrs.data(),
                                                           static_cast<std::size_t>(lanes)),
                            opt.value_bytes);
        } else {
          mem.stream_store(a.y + static_cast<std::uint64_t>(w) * opt.value_bytes,
                           static_cast<std::size_t>(lanes) * opt.value_bytes);
        }
      };
    });
  };
  return run_passes(sim, "sim.spmv.sliced_ell", opt.block_size, 2ULL * m.nnz,
                    opt.passes, body);
}

KernelStats simulate_spmv(const DeviceSpec& dev, const sparse::EllDia& m,
                          std::span<const real_t> x, std::span<real_t> y,
                          const SimOptions& opt) {
  const sparse::Ell& rest = m.rest;
  assert(x.size() == static_cast<std::size_t>(rest.ncols));
  MemorySim sim(dev, opt.l1_enabled);
  AddressSpace as;
  SpmvArrays a = alloc_spmv(as, rest.val.size(), rest.col.size(), rest.ncols,
                            rest.nrows, opt.value_bytes);
  a.dia = as.alloc(m.band.data.size() * opt.value_bytes);

  const std::uint64_t spill_base_val = as.alloc(m.spill.nnz() * opt.value_bytes);
  const std::uint64_t spill_base_col =
      as.alloc(m.spill.nnz() * 2 * sizeof(index_t));

  const std::uint64_t flops =
      2ULL * (rest.nnz + m.band.nnz + m.spill.nnz());
  const auto body = [&] {
    for_each_warp(sim, rest.padded_rows, opt.block_size, [&](SmStream& mem) {
      return [&, sums = std::vector<real_t>(
                     static_cast<std::size_t>(dev.warp_size))](
                 index_t w, index_t lanes) mutable {
        std::fill(sums.begin(), sums.end(), 0.0);
        const auto slot_of = [&](index_t lane, index_t j) {
          return static_cast<std::size_t>(j) * rest.padded_rows +
                 static_cast<std::size_t>(w + lane);
        };
        ell_warp_steps(mem, rest.val, rest.col, a, x, lanes, rest.k,
                       opt.value_bytes, slot_of, std::span<real_t>(sums));
        const index_t real_lanes =
            std::max<index_t>(0, std::min<index_t>(lanes, rest.nrows - w));
        if (real_lanes > 0) {
          dia_warp_contribution(mem, m.band, a, x, w, real_lanes,
                                /*perm=*/nullptr, opt.value_bytes,
                                std::span<real_t>(sums), /*skip_offset=*/nullptr);
          mem.stream_store(a.y + static_cast<std::uint64_t>(w) * opt.value_bytes,
                           static_cast<std::size_t>(real_lanes) * opt.value_bytes);
          for (index_t lane = 0; lane < real_lanes; ++lane) {
            y[w + lane] = sums[lane];
          }
        }
      };
    });
    // COO spill pass: one warp per 32 row-sorted outlier entries
    // (val/col/row stream, x gathered, y updated through the cache). Runs on
    // the direct (serial) engine after the sharded waves have merged, so the
    // shared L2 is in the exact post-wave state either engine produces.
    std::array<std::uint64_t, 32> x_addrs{};
    std::array<std::uint64_t, 32> y_addrs{};
    for (std::size_t e0 = 0; e0 < m.spill.nnz(); e0 += 32) {
      const std::size_t lanes =
          std::min<std::size_t>(32, m.spill.nnz() - e0);
      sim.set_active_sm(static_cast<int>((e0 / 32) % dev.num_sms));
      sim.stream_load(spill_base_val + e0 * opt.value_bytes,
                      lanes * opt.value_bytes);
      sim.stream_load(spill_base_col + e0 * 2 * sizeof(index_t),
                      lanes * 2 * sizeof(index_t));
      for (std::size_t l = 0; l < lanes; ++l) {
        const std::size_t e = e0 + l;
        x_addrs[l] = a.x + static_cast<std::uint64_t>(m.spill.col[e]) *
                               opt.value_bytes;
        y_addrs[l] = a.y + static_cast<std::uint64_t>(m.spill.row[e]) *
                               opt.value_bytes;
        y[m.spill.row[e]] += m.spill.val[e] * x[m.spill.col[e]];
      }
      sim.gather(std::span<const std::uint64_t>(x_addrs.data(), lanes),
                 opt.value_bytes);
      sim.scatter_store(std::span<const std::uint64_t>(y_addrs.data(), lanes),
                        opt.value_bytes);
      sim.add_flops(2ULL * lanes);
    }
  };
  return run_passes(sim, "sim.spmv.ell_dia", opt.block_size, flops,
                    opt.passes, body);
}

KernelStats simulate_spmv(const DeviceSpec& dev, const sparse::SlicedEllDia& m,
                          std::span<const real_t> x, std::span<real_t> y,
                          const SimOptions& opt) {
  const sparse::SlicedEll& rest = m.rest;
  assert(x.size() == static_cast<std::size_t>(rest.ncols));
  MemorySim sim(dev, opt.l1_enabled);
  AddressSpace as;
  SpmvArrays a = alloc_spmv(as, rest.val.size(), rest.col.size(), rest.ncols,
                            rest.nrows, opt.value_bytes);
  a.dia = as.alloc(m.band.data.size() * opt.value_bytes);
  a.perm = as.alloc(rest.perm.size() * sizeof(index_t));
  a.row_ptr = as.alloc(rest.slice_k.size() * 8);  // slice k + start offsets
  const bool permuted = !rest.is_identity_perm();

  const std::uint64_t flops = 2ULL * (rest.nnz + m.band.nnz);
  const auto body = [&] {
    for_each_warp(sim, rest.nrows, opt.block_size, [&](SmStream& mem) {
      return [&, sums = std::vector<real_t>(
                     static_cast<std::size_t>(dev.warp_size)),
              store_addrs = std::array<std::uint64_t, 32>{}](
                 index_t w, index_t lanes) mutable {
        std::fill(sums.begin(), sums.end(), 0.0);
        const index_t slice = w / rest.slice_size;
        const index_t k = rest.slice_k[slice];
        const std::size_t base = rest.slice_ptr[slice];
        const index_t lane0 = w - slice * rest.slice_size;
        const auto slot_of = [&](index_t lane, index_t j) {
          return base + static_cast<std::size_t>(j) * rest.slice_size +
                 static_cast<std::size_t>(lane0 + lane);
        };
        {
          const std::uint64_t meta = a.row_ptr + static_cast<std::uint64_t>(slice) * 8;
          mem.gather(std::span<const std::uint64_t>(&meta, 1), 8);
        }
        if (permuted) {
          mem.stream_load(a.perm + static_cast<std::uint64_t>(w) * sizeof(index_t),
                          static_cast<std::size_t>(lanes) * sizeof(index_t));
        }
        ell_warp_steps(mem, rest.val, rest.col, a, x, lanes, k, opt.value_bytes,
                       slot_of, std::span<real_t>(sums));
        dia_warp_contribution(mem, m.band, a, x, w, lanes,
                              permuted ? &rest.perm : nullptr, opt.value_bytes,
                              std::span<real_t>(sums), /*skip_offset=*/nullptr);
        for (index_t lane = 0; lane < lanes; ++lane) {
          const index_t r = rest.perm[w + lane];
          store_addrs[lane] = a.y + static_cast<std::uint64_t>(r) * opt.value_bytes;
          y[r] = sums[lane];
        }
        mem.scatter_store(std::span<const std::uint64_t>(store_addrs.data(),
                                                         static_cast<std::size_t>(lanes)),
                          opt.value_bytes);
      };
    });
  };
  return run_passes(sim, "sim.spmv.warped_ell_dia", opt.block_size, flops,
                    opt.passes, body);
}

KernelStats simulate_spmv(const DeviceSpec& dev, const sparse::Csr& m,
                          std::span<const real_t> x, std::span<real_t> y,
                          const SimOptions& opt) {
  assert(x.size() == static_cast<std::size_t>(m.ncols));
  assert(y.size() == static_cast<std::size_t>(m.nrows));
  MemorySim sim(dev, opt.l1_enabled);
  AddressSpace as;
  SpmvArrays a =
      alloc_spmv(as, m.val.size(), m.col_idx.size(), m.ncols, m.nrows,
                 opt.value_bytes);
  a.row_ptr = as.alloc(m.row_ptr.size() * sizeof(index_t));

  const auto body = [&] {
    for_each_warp(sim, m.nrows, opt.block_size, [&](SmStream& mem) {
      return [&, val_addrs = std::array<std::uint64_t, 32>{},
              col_addrs = std::array<std::uint64_t, 32>{},
              x_addrs = std::array<std::uint64_t, 32>{},
              sums = std::vector<real_t>(
                  static_cast<std::size_t>(dev.warp_size))](
                 index_t w, index_t lanes) mutable {
        std::fill(sums.begin(), sums.end(), 0.0);
        mem.stream_load(a.row_ptr + static_cast<std::uint64_t>(w) * sizeof(index_t),
                        static_cast<std::size_t>(lanes + 1) * sizeof(index_t));
        index_t kmax = 0;
        for (index_t lane = 0; lane < lanes; ++lane) {
          kmax = std::max(kmax, m.row_length(w + lane));
        }
        // SIMT lockstep: the warp iterates to the longest row; shorter lanes
        // sit idle (divergence), but their memory slots are simply absent.
        for (index_t j = 0; j < kmax; ++j) {
          int n_active = 0;
          for (index_t lane = 0; lane < lanes; ++lane) {
            const index_t r = w + lane;
            if (j >= m.row_length(r)) continue;
            const std::size_t p = static_cast<std::size_t>(m.row_ptr[r]) + j;
            val_addrs[n_active] = a.val + p * opt.value_bytes;
            col_addrs[n_active] = a.col + p * sizeof(index_t);
            x_addrs[n_active] =
                a.x + static_cast<std::uint64_t>(m.col_idx[p]) * opt.value_bytes;
            sums[lane] += m.val[p] * x[m.col_idx[p]];
            ++n_active;
          }
          const auto span_of = [](const std::array<std::uint64_t, 32>& arr,
                                  int n) {
            return std::span<const std::uint64_t>(arr.data(),
                                                  static_cast<std::size_t>(n));
          };
          mem.gather(span_of(val_addrs, n_active), opt.value_bytes);
          mem.gather(span_of(col_addrs, n_active), sizeof(index_t));
          mem.gather(span_of(x_addrs, n_active), opt.value_bytes);
          mem.add_flops(2ULL * static_cast<std::uint64_t>(n_active));
        }
        mem.stream_store(a.y + static_cast<std::uint64_t>(w) * opt.value_bytes,
                         static_cast<std::size_t>(lanes) * opt.value_bytes);
        for (index_t lane = 0; lane < lanes; ++lane) {
          y[w + lane] = sums[lane];
        }
      };
    });
  };
  return run_passes(sim, "sim.spmv.csr", opt.block_size, 2ULL * m.nnz(),
                    opt.passes, body);
}

KernelStats simulate_spmv_csr_vector(const DeviceSpec& dev,
                                     const sparse::Csr& m,
                                     std::span<const real_t> x,
                                     std::span<real_t> y,
                                     const SimOptions& opt) {
  assert(x.size() == static_cast<std::size_t>(m.ncols));
  assert(y.size() == static_cast<std::size_t>(m.nrows));
  MemorySim sim(dev, opt.l1_enabled);
  AddressSpace as;
  SpmvArrays a = alloc_spmv(as, m.val.size(), m.col_idx.size(), m.ncols,
                            m.nrows, opt.value_bytes);
  a.row_ptr = as.alloc(m.row_ptr.size() * sizeof(index_t));

  // One warp per row: the grid has nrows * 32 threads. The shared wave
  // scheduler hands out 32-thread groups; group w/32 works on matrix row
  // w/32.
  const auto body = [&] {
    for_each_warp(sim, m.nrows * dev.warp_size, opt.block_size,
                  [&](SmStream& mem) {
      return [&, x_addrs = std::array<std::uint64_t, 32>{}](
                 index_t w, index_t) mutable {
        const index_t r = w / dev.warp_size;
        if (r >= m.nrows) return;
        mem.stream_load(a.row_ptr + static_cast<std::uint64_t>(r) * sizeof(index_t),
                        2 * sizeof(index_t));
        const index_t begin = m.row_ptr[r];
        const index_t end = m.row_ptr[r + 1];
        real_t sum = 0.0;
        for (index_t p0 = begin; p0 < end; p0 += dev.warp_size) {
          const index_t chunk = std::min<index_t>(dev.warp_size, end - p0);
          // Coalesced val/col segment loads.
          mem.stream_load(a.val + static_cast<std::uint64_t>(p0) * opt.value_bytes,
                          static_cast<std::size_t>(chunk) * opt.value_bytes);
          mem.stream_load(a.col + static_cast<std::uint64_t>(p0) * sizeof(index_t),
                          static_cast<std::size_t>(chunk) * sizeof(index_t));
          for (index_t l = 0; l < chunk; ++l) {
            const std::size_t p = static_cast<std::size_t>(p0 + l);
            x_addrs[l] = a.x + static_cast<std::uint64_t>(m.col_idx[p]) *
                                   opt.value_bytes;
            sum += m.val[p] * x[m.col_idx[p]];
          }
          mem.gather(std::span<const std::uint64_t>(x_addrs.data(),
                                                    static_cast<std::size_t>(chunk)),
                     opt.value_bytes);
          mem.add_flops(2ULL * static_cast<std::uint64_t>(chunk));
        }
        // Warp-level reduction (shared-memory shuffle; ~log2(32) flops).
        mem.add_flops(5);
        mem.stream_store(a.y + static_cast<std::uint64_t>(r) * opt.value_bytes,
                         opt.value_bytes);
        y[r] = sum;
      };
    });
  };
  return run_passes(sim, "sim.spmv.csr_vector", opt.block_size,
                    2ULL * m.nnz(), opt.passes, body);
}

KernelStats simulate_spmv(const DeviceSpec& dev, const sparse::Bcsr& m,
                          std::span<const real_t> x, std::span<real_t> y,
                          const SimOptions& opt) {
  assert(x.size() == static_cast<std::size_t>(m.ncols));
  assert(y.size() == static_cast<std::size_t>(m.nrows));
  MemorySim sim(dev, opt.l1_enabled);
  AddressSpace as;
  SpmvArrays a = alloc_spmv(as, m.val.size(), m.block_col.size(), m.ncols,
                            m.nrows, opt.value_bytes);
  a.row_ptr = as.alloc(m.block_row_ptr.size() * sizeof(index_t));

  const std::size_t slots = static_cast<std::size_t>(m.block_rows) *
                            static_cast<std::size_t>(m.block_cols);
  const auto body = [&] {
    // Thread = block row; the wave scheduler walks warps of 32 block rows.
    for_each_warp(sim, m.nblock_rows, opt.block_size, [&](SmStream& mem) {
      return [&, x_addrs = std::array<std::uint64_t, 32>{},
              acc = std::vector<real_t>(static_cast<std::size_t>(m.block_rows))](
                 index_t w, index_t lanes) mutable {
        mem.stream_load(a.row_ptr + static_cast<std::uint64_t>(w) * sizeof(index_t),
                        static_cast<std::size_t>(lanes + 1) * sizeof(index_t));
        for (index_t lane = 0; lane < lanes; ++lane) {
          const index_t br = w + lane;
          std::fill(acc.begin(), acc.end(), 0.0);
          for (index_t bp = m.block_row_ptr[br]; bp < m.block_row_ptr[br + 1];
               ++bp) {
            // Per-lane block fetch: values + one block-column index. Lanes of
            // a warp read different block rows, so these are gathers.
            const std::uint64_t vaddr =
                a.val + static_cast<std::uint64_t>(bp) * slots * opt.value_bytes;
            for (std::size_t sl = 0; sl < slots;
                 sl += dev.line_bytes / opt.value_bytes) {
              const std::uint64_t line_addr = vaddr + sl * opt.value_bytes;
              mem.gather(std::span<const std::uint64_t>(&line_addr, 1),
                         opt.value_bytes);
            }
            const std::uint64_t caddr =
                a.col + static_cast<std::uint64_t>(bp) * sizeof(index_t);
            mem.gather(std::span<const std::uint64_t>(&caddr, 1), sizeof(index_t));

            const index_t col0 = m.block_col[bp] * m.block_cols;
            int n_x = 0;
            const real_t* data = m.val.data() + static_cast<std::size_t>(bp) * slots;
            for (int lc = 0; lc < m.block_cols; ++lc) {
              const index_t c = col0 + lc;
              if (c >= m.ncols) continue;
              x_addrs[n_x++] = a.x + static_cast<std::uint64_t>(c) * opt.value_bytes;
              for (int lr = 0; lr < m.block_rows; ++lr) {
                acc[static_cast<std::size_t>(lr)] +=
                    data[static_cast<std::size_t>(lr) * m.block_cols + lc] * x[c];
              }
            }
            mem.gather(std::span<const std::uint64_t>(x_addrs.data(),
                                                      static_cast<std::size_t>(n_x)),
                       opt.value_bytes);
            mem.add_flops(2ULL * slots);
          }
          for (int lr = 0; lr < m.block_rows; ++lr) {
            const index_t r = br * m.block_rows + lr;
            if (r < m.nrows) y[r] = acc[static_cast<std::size_t>(lr)];
          }
          mem.stream_store(a.y + static_cast<std::uint64_t>(br) * m.block_rows *
                                     opt.value_bytes,
                           static_cast<std::size_t>(m.block_rows) * opt.value_bytes);
        }
      };
    });
  };
  return run_passes(sim, "sim.spmv.bcsr", opt.block_size, 2ULL * m.nnz,
                    opt.passes, body);
}

KernelStats simulate_spmv(const DeviceSpec& dev, const sparse::Dia& m,
                          std::span<const real_t> x, std::span<real_t> y,
                          const SimOptions& opt) {
  assert(x.size() == static_cast<std::size_t>(m.ncols));
  assert(y.size() == static_cast<std::size_t>(m.nrows));
  MemorySim sim(dev, opt.l1_enabled);
  AddressSpace as;
  SpmvArrays a = alloc_spmv(as, m.data.size(), 0, m.ncols, m.nrows,
                            opt.value_bytes);
  a.dia = a.val;

  const auto body = [&] {
    for_each_warp(sim, m.nrows, opt.block_size, [&](SmStream& mem) {
      return [&, sums = std::vector<real_t>(
                     static_cast<std::size_t>(dev.warp_size))](
                 index_t w, index_t lanes) mutable {
        std::fill(sums.begin(), sums.end(), 0.0);
        dia_warp_contribution(mem, m, a, x, w, lanes, /*perm=*/nullptr,
                              opt.value_bytes, std::span<real_t>(sums),
                              /*skip_offset=*/nullptr);
        mem.stream_store(a.y + static_cast<std::uint64_t>(w) * opt.value_bytes,
                         static_cast<std::size_t>(lanes) * opt.value_bytes);
        for (index_t lane = 0; lane < lanes; ++lane) {
          y[w + lane] = sums[lane];
        }
      };
    });
  };
  return run_passes(sim, "sim.spmv.dia", opt.block_size, 2ULL * m.nnz,
                    opt.passes, body);
}

KernelStats simulate_spmv_stencil(const DeviceSpec& dev,
                                  const core::StencilTable& table,
                                  std::span<const real_t> x,
                                  std::span<real_t> y, const SimOptions& opt) {
  const index_t n = table.box_rows();
  assert(x.size() == static_cast<std::size_t>(n));
  assert(y.size() == static_cast<std::size_t>(n));
  MemorySim sim(dev, opt.l1_enabled);
  AddressSpace as;
  SpmvArrays a;
  // The whole point: only the two vectors live in device memory.
  a.x = as.alloc(static_cast<std::size_t>(n) * opt.value_bytes);
  a.y = as.alloc(static_cast<std::size_t>(n) * opt.value_bytes);

  const auto& rx = table.reactions();
  const int ns = table.num_species();
  // Per-lane arithmetic charged per warp step (compute bought with the
  // saved bandwidth): mixed-radix decode is ~3 ops per free digit plus 2
  // per conservation-law term; each window check is 1, each propensity
  // factor a table lookup + multiply (2) plus the rate multiply.
  std::uint64_t decode_flops = 3ULL * static_cast<std::uint64_t>(table.num_free());
  for (const auto& law : table.laws()) {
    decode_flops += 2ULL * law.terms.size();
  }

  const auto body = [&] {
    for_each_warp(sim, n, opt.block_size, [&](SmStream& mem) {
      return [&,
              sums = std::vector<real_t>(static_cast<std::size_t>(dev.warp_size)),
              states = std::vector<core::State>(
                  static_cast<std::size_t>(dev.warp_size),
                  core::State(static_cast<std::size_t>(ns))),
              valid = std::vector<char>(static_cast<std::size_t>(dev.warp_size)),
              gather_addrs = std::array<std::uint64_t, 32>{}](
                 index_t w, index_t lanes) mutable {
        std::fill(sums.begin(), sums.end(), 0.0);
        for (index_t lane = 0; lane < lanes; ++lane) {
          auto& xs = states[static_cast<std::size_t>(lane)];
          table.decode(w + lane, xs);
          valid[static_cast<std::size_t>(lane)] = table.row_valid(xs) ? 1 : 0;
        }
        mem.add_flops(decode_flops * static_cast<std::uint64_t>(lanes));

        for (const auto& r : rx) {
          int n_gather = 0;
          std::uint64_t eval_flops = 0;
          for (index_t lane = 0; lane < lanes; ++lane) {
            if (!valid[static_cast<std::size_t>(lane)]) continue;
            eval_flops += static_cast<std::uint64_t>(r.in_checks.size()) +
                          2ULL * r.in_factors.size() + 1ULL;
            const real_t v =
                table.in_propensity(r, states[static_cast<std::size_t>(lane)]);
            if (v == 0.0) continue;
            const index_t src = w + lane - static_cast<index_t>(r.stride);
            gather_addrs[static_cast<std::size_t>(n_gather++)] =
                a.x + static_cast<std::uint64_t>(src) * opt.value_bytes;
            sums[static_cast<std::size_t>(lane)] += v * x[src];
          }
          mem.add_flops(eval_flops);
          if (n_gather > 0) {
            mem.gather(std::span<const std::uint64_t>(
                           gather_addrs.data(), static_cast<std::size_t>(n_gather)),
                       opt.value_bytes);
            mem.add_flops(2ULL * static_cast<std::uint64_t>(n_gather));
          }
        }
        mem.stream_store(a.y + static_cast<std::uint64_t>(w) * opt.value_bytes,
                         static_cast<std::size_t>(lanes) * opt.value_bytes);
        for (index_t lane = 0; lane < lanes; ++lane) {
          y[w + lane] = sums[lane];
        }
      };
    });
  };
  return run_passes(sim, "sim.spmv.stencil", opt.block_size,
                    2ULL * table.offdiag_nnz(), opt.passes, body);
}

KernelStats simulate_spmv_stencil_batched(
    const DeviceSpec& dev, const core::StencilTable& table,
    std::span<const std::vector<real_t>> rates, std::span<const real_t> x,
    std::span<real_t> y, const SimOptions& opt) {
  const index_t n = table.box_rows();
  const auto batch = rates.size();
  assert(batch >= 1);
  assert(x.size() == static_cast<std::size_t>(n) * batch);
  assert(y.size() == static_cast<std::size_t>(n) * batch);
  MemorySim sim(dev, opt.l1_enabled);
  AddressSpace as;
  SpmvArrays a;
  a.x = as.alloc(static_cast<std::size_t>(n) * batch * opt.value_bytes);
  a.y = as.alloc(static_cast<std::size_t>(n) * batch * opt.value_bytes);

  const auto& rx = table.reactions();
  const int ns = table.num_species();
  // Per-point rate coefficients, reaction-major — the ONLY stored operator
  // data, R x K scalars for the whole batch.
  std::vector<real_t> coef(rx.size() * batch);
  for (std::size_t r = 0; r < rx.size(); ++r) {
    for (std::size_t q = 0; q < batch; ++q) {
      coef[r * batch + q] =
          rates[q][static_cast<std::size_t>(rx[r].reaction)];
    }
  }
  a.val = as.alloc(coef.size() * opt.value_bytes);

  std::uint64_t decode_flops =
      3ULL * static_cast<std::uint64_t>(table.num_free());
  for (const auto& law : table.laws()) {
    decode_flops += 2ULL * law.terms.size();
  }
  const std::size_t kvec = batch * opt.value_bytes;

  const auto body = [&] {
    for_each_warp(sim, n, opt.block_size, [&](SmStream& mem) {
      return [&,
              sums = std::vector<real_t>(
                  static_cast<std::size_t>(dev.warp_size) * batch),
              states = std::vector<core::State>(
                  static_cast<std::size_t>(dev.warp_size),
                  core::State(static_cast<std::size_t>(ns))),
              valid = std::vector<char>(
                  static_cast<std::size_t>(dev.warp_size))](
                 index_t w, index_t lanes) mutable {
        std::fill(sums.begin(), sums.end(), 0.0);
        for (index_t lane = 0; lane < lanes; ++lane) {
          auto& xs = states[static_cast<std::size_t>(lane)];
          table.decode(w + lane, xs);
          valid[static_cast<std::size_t>(lane)] = table.row_valid(xs) ? 1 : 0;
        }
        mem.add_flops(decode_flops * static_cast<std::uint64_t>(lanes));

        for (std::size_t r = 0; r < rx.size(); ++r) {
          const auto& sr = rx[r];
          const real_t* cf = coef.data() + r * batch;
          // Coefficient vector: one tiny contiguous load per warp per
          // reaction, L1/L2 resident across the whole sweep.
          mem.stream_load(a.val + static_cast<std::uint64_t>(r) * kvec, kvec);
          std::uint64_t eval_flops = 0;
          for (index_t lane = 0; lane < lanes; ++lane) {
            if (!valid[static_cast<std::size_t>(lane)]) continue;
            // Decode/check/factor arithmetic ONCE per (row, reaction) —
            // amortized over the whole batch (this is the compute-side
            // win; the rate multiply happens per point below).
            eval_flops += static_cast<std::uint64_t>(sr.in_checks.size()) +
                          2ULL * sr.in_factors.size();
            const real_t u = table.unit_in_propensity(
                sr, states[static_cast<std::size_t>(lane)]);
            if (u == 0.0) continue;
            const index_t src = w + lane - static_cast<index_t>(sr.stride);
            // The x read is a CONTIGUOUS K-vector (and consecutive lanes
            // touch consecutive rows, so warp traffic coalesces).
            mem.stream_load(
                a.x + static_cast<std::uint64_t>(src) * kvec, kvec);
            real_t* sl = sums.data() +
                         static_cast<std::size_t>(lane) * batch;
            const real_t* xs =
                x.data() + static_cast<std::size_t>(src) * batch;
            for (std::size_t q = 0; q < batch; ++q) {
              sl[q] += (cf[q] * u) * xs[q];
            }
            eval_flops += 3ULL * batch;  // coef mult + fma per point
          }
          mem.add_flops(eval_flops);
        }
        mem.stream_store(a.y + static_cast<std::uint64_t>(w) * kvec,
                         static_cast<std::size_t>(lanes) * kvec);
        for (index_t lane = 0; lane < lanes; ++lane) {
          for (std::size_t q = 0; q < batch; ++q) {
            y[static_cast<std::size_t>(w + lane) * batch + q] =
                sums[static_cast<std::size_t>(lane) * batch + q];
          }
        }
      };
    });
  };
  return run_passes(sim, "sim.spmv.stencil_batched", opt.block_size,
                    2ULL * table.offdiag_nnz() *
                        static_cast<std::uint64_t>(batch),
                    opt.passes, body);
}

KernelStats simulate_jacobi_sweep(const DeviceSpec& dev,
                                  const sparse::SlicedEllDia& m,
                                  std::span<const real_t> x,
                                  std::span<real_t> x_out,
                                  const SimOptions& opt,
                                  index_t diag_offset) {
  const sparse::SlicedEll& rest = m.rest;
  assert(x.size() == static_cast<std::size_t>(rest.ncols));
  assert(x_out.size() == static_cast<std::size_t>(rest.nrows));

  // Locate the main diagonal inside the band.
  const auto it0 =
      std::find(m.band.offsets.begin(), m.band.offsets.end(), diag_offset);
  assert(it0 != m.band.offsets.end() && "Jacobi needs the diagonal in DIA");
  const std::size_t d0 =
      static_cast<std::size_t>(it0 - m.band.offsets.begin());

  MemorySim sim(dev, opt.l1_enabled);
  AddressSpace as;
  SpmvArrays a = alloc_spmv(as, rest.val.size(), rest.col.size(), rest.ncols,
                            rest.nrows, opt.value_bytes);
  a.dia = as.alloc(m.band.data.size() * opt.value_bytes);
  a.perm = as.alloc(rest.perm.size() * sizeof(index_t));
  a.row_ptr = as.alloc(rest.slice_k.size() * 8);  // slice k + start offsets
  const bool permuted = !rest.is_identity_perm();

  const std::uint64_t offdiag_nnz =
      rest.nnz + (m.band.nnz > 0
                      ? m.band.nnz - static_cast<std::uint64_t>(rest.nrows)
                      : 0ULL);
  const std::uint64_t flops =
      2ULL * offdiag_nnz + static_cast<std::uint64_t>(rest.nrows);

  const auto body = [&] {
    for_each_warp(sim, rest.nrows, opt.block_size, [&](SmStream& mem) {
      return [&, sums = std::vector<real_t>(
                     static_cast<std::size_t>(dev.warp_size)),
              store_addrs = std::array<std::uint64_t, 32>{},
              diag_addrs = std::array<std::uint64_t, 32>{}](
                 index_t w, index_t lanes) mutable {
        std::fill(sums.begin(), sums.end(), 0.0);
        const index_t slice = w / rest.slice_size;
        const index_t k = rest.slice_k[slice];
        const std::size_t base = rest.slice_ptr[slice];
        const index_t lane0 = w - slice * rest.slice_size;
        const auto slot_of = [&](index_t lane, index_t j) {
          return base + static_cast<std::size_t>(j) * rest.slice_size +
                 static_cast<std::size_t>(lane0 + lane);
        };
        {
          const std::uint64_t meta = a.row_ptr + static_cast<std::uint64_t>(slice) * 8;
          mem.gather(std::span<const std::uint64_t>(&meta, 1), 8);
        }
        if (permuted) {
          mem.stream_load(a.perm + static_cast<std::uint64_t>(w) * sizeof(index_t),
                          static_cast<std::size_t>(lanes) * sizeof(index_t));
        }
        ell_warp_steps(mem, rest.val, rest.col, a, x, lanes, k, opt.value_bytes,
                       slot_of, std::span<real_t>(sums));
        dia_warp_contribution(mem, m.band, a, x, w, lanes,
                              permuted ? &rest.perm : nullptr, opt.value_bytes,
                              std::span<real_t>(sums), &diag_offset);
        // Dense-diagonal load + divide + negate, then write x_out.
        for (index_t lane = 0; lane < lanes; ++lane) {
          const index_t r = rest.perm[w + lane];
          const std::size_t slot =
              d0 * static_cast<std::size_t>(m.band.nrows) +
              static_cast<std::size_t>(r);
          diag_addrs[lane] = a.dia + slot * opt.value_bytes;
          store_addrs[lane] =
              a.y + static_cast<std::uint64_t>(r) * opt.value_bytes;
          x_out[r] = -sums[lane] / m.band.data[slot];
        }
        if (permuted) {
          mem.gather(std::span<const std::uint64_t>(diag_addrs.data(),
                                                    static_cast<std::size_t>(lanes)),
                     opt.value_bytes);
        } else {
          mem.stream_load(diag_addrs[0],
                          static_cast<std::size_t>(lanes) * opt.value_bytes);
        }
        mem.add_flops(static_cast<std::uint64_t>(lanes));
        mem.scatter_store(std::span<const std::uint64_t>(store_addrs.data(),
                                                         static_cast<std::size_t>(lanes)),
                          opt.value_bytes);
      };
    });
  };
  return run_passes(sim, "sim.jacobi_sweep", opt.block_size, flops,
                    opt.passes, body);
}

KernelStats simulate_vector_op(const DeviceSpec& dev, index_t n, int reads,
                               int writes, const SimOptions& opt) {
  MemorySim sim(dev, opt.l1_enabled);
  AddressSpace as;
  std::vector<std::uint64_t> bases;
  for (int i = 0; i < reads + writes; ++i) {
    bases.push_back(as.alloc(static_cast<std::size_t>(n) * opt.value_bytes));
  }
  const auto body = [&] {
    for (int i = 0; i < reads; ++i) {
      sim.stream_load(bases[static_cast<std::size_t>(i)],
                      static_cast<std::size_t>(n) * opt.value_bytes);
    }
    for (int i = 0; i < writes; ++i) {
      sim.stream_store(bases[static_cast<std::size_t>(reads + i)],
                       static_cast<std::size_t>(n) * opt.value_bytes);
    }
    sim.add_flops(static_cast<std::uint64_t>(n));
  };
  return run_passes(sim, "sim.vector_op", opt.block_size,
                    static_cast<std::uint64_t>(n), opt.passes, body);
}

}  // namespace cmesolve::gpusim
