#pragma once
//
// Format-specific SpMV / Jacobi kernel simulations.
//
// Each simulate_* walks the matrix exactly like the corresponding CUDA
// kernel would — warp by warp, with the padding-skip conditional of
// Listing 1 — producing BOTH the functional result (y is really computed,
// in double precision) and the memory-event stream that the timing model
// converts into GFLOPS.
//
// Steady-state reporting: SpMV inside a Jacobi solver runs thousands of
// times over the same addresses, so by default two passes are simulated and
// the second (warm-cache) pass is reported.
//
#include <span>
#include <vector>

#include "core/stencil.hpp"
#include "gpusim/device.hpp"
#include "gpusim/memory_sim.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/csr.hpp"
#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "sparse/hybrid.hpp"
#include "sparse/sliced_ell.hpp"
#include "util/types.hpp"

namespace cmesolve::gpusim {

struct SimOptions {
  int block_size = 256;      ///< CUDA block size b (Sec. III tradeoff)
  std::size_t value_bytes = 8;  ///< 8 = double, 4 = single (comparator mode)
  int passes = 2;            ///< >= 2 reports the warm-cache pass
  bool l1_enabled = true;    ///< false models an L1-bypassing runtime
};

/// ELL kernel: thread = row, column-major arrays, padding skip.
KernelStats simulate_spmv(const DeviceSpec& dev, const sparse::Ell& m,
                          std::span<const real_t> x, std::span<real_t> y,
                          const SimOptions& opt = {});

/// Sliced / warp-grained ELL kernel: warp index selects the slice; y is
/// scattered through the row permutation.
KernelStats simulate_spmv(const DeviceSpec& dev, const sparse::SlicedEll& m,
                          std::span<const real_t> x, std::span<real_t> y,
                          const SimOptions& opt = {});

/// ELL+DIA fused kernel (Fig. 3): DIA band contributes contiguous x reads
/// and index-free values.
KernelStats simulate_spmv(const DeviceSpec& dev, const sparse::EllDia& m,
                          std::span<const real_t> x, std::span<real_t> y,
                          const SimOptions& opt = {});

/// Warp-grained sliced ELL + DIA fused kernel (Table IV format).
KernelStats simulate_spmv(const DeviceSpec& dev, const sparse::SlicedEllDia& m,
                          std::span<const real_t> x, std::span<real_t> y,
                          const SimOptions& opt = {});

/// CSR scalar kernel: thread = row, per-lane pointer chasing; the
/// uncoalesced val/col traffic is what ELL-family formats avoid.
KernelStats simulate_spmv(const DeviceSpec& dev, const sparse::Csr& m,
                          std::span<const real_t> x, std::span<real_t> y,
                          const SimOptions& opt = {});

/// CSR vector kernel (Bell & Garland): one warp cooperates on one row, so
/// val/col loads coalesce, at the price of idle lanes on short rows and a
/// per-row reduction.
KernelStats simulate_spmv_csr_vector(const DeviceSpec& dev,
                                     const sparse::Csr& m,
                                     std::span<const real_t> x,
                                     std::span<real_t> y,
                                     const SimOptions& opt = {});

/// BCSR kernel: thread = block row; r*c values stream per 4-byte block
/// index, x gathered in c-element runs.
KernelStats simulate_spmv(const DeviceSpec& dev, const sparse::Bcsr& m,
                          std::span<const real_t> x, std::span<real_t> y,
                          const SimOptions& opt = {});

/// Pure DIA kernel.
KernelStats simulate_spmv(const DeviceSpec& dev, const sparse::Dia& m,
                          std::span<const real_t> x, std::span<real_t> y,
                          const SimOptions& opt = {});

/// Matrix-free stencil kernel: thread = box row; every off-diagonal value
/// is recomputed from the decoded copy numbers, so the only memory traffic
/// is the x-gather at row - stride per valid transition plus the y stream
/// store — no value, column-index, or row-pointer arrays exist. The state
/// decode, window checks, and propensity factors are charged as extra
/// (non-useful) flops, which is exactly the compute-for-bandwidth trade of
/// the format. `x` and `y` are box-length vectors (see
/// core::StencilTable::box_rows).
KernelStats simulate_spmv_stencil(const DeviceSpec& dev,
                                  const core::StencilTable& table,
                                  std::span<const real_t> x,
                                  std::span<real_t> y,
                                  const SimOptions& opt = {});

/// Batched multi-RHS stencil kernel: thread = box row, K parameter points
/// advanced per pass with x and y interleaved point-major ([row][k], see
/// solver::BatchedStencilOperator). The expensive per-entry work — state
/// decode, window checks, combinatorial factors — happens ONCE per (row,
/// reaction) and is amortized over all K points, while the x read at
/// row - stride becomes a CONTIGUOUS K-element vector load (and warp
/// lanes read consecutive rows, so the whole warp's traffic coalesces
/// into dense segments instead of strided gathers). Per-point rate
/// coefficients stream once per warp per reaction from a tiny R x K
/// table. `rates[k]` indexes network reactions, exactly as the host
/// batched operator; the functional result is bitwise the host batched
/// sweep. This is the modeled-DRAM twin of the ensemble batching win:
/// traffic per point drops toward (offdiag reads + row writes) with the
/// unit-table stream amortized K ways.
KernelStats simulate_spmv_stencil_batched(
    const DeviceSpec& dev, const core::StencilTable& table,
    std::span<const std::vector<real_t>> rates, std::span<const real_t> x,
    std::span<real_t> y, const SimOptions& opt = {});

/// One Jacobi sweep x_out = -D^{-1} (L+U) x on the Table IV hybrid format:
/// off-band sliced-ELL walk + off-diagonal band lanes + dense-diagonal
/// divide + x_out write. The main diagonal must be offset 0 of m.band.
/// `diag_offset` locates the diagonal inside the DIA band (non-zero for
/// row-partitioned blocks whose columns stay in global numbering).
KernelStats simulate_jacobi_sweep(const DeviceSpec& dev,
                                  const sparse::SlicedEllDia& m,
                                  std::span<const real_t> x,
                                  std::span<real_t> x_out,
                                  const SimOptions& opt = {},
                                  index_t diag_offset = 0);

/// Streaming vector kernel cost (reductions / axpy / normalization):
/// n elements, `reads` input streams and `writes` output streams.
KernelStats simulate_vector_op(const DeviceSpec& dev, index_t n, int reads,
                               int writes, const SimOptions& opt = {});

/// Publish one launch's KernelStats (simulated time/throughput, occupancy,
/// traffic counters, derived cache hit rates) into the obs metric registry
/// under the `kernel` name prefix. Every simulate_* above calls this
/// automatically; it is public for dispatchers that simulate launches inside
/// pool tasks (obs::SuppressMetrics) and re-publish the per-launch stats
/// afterwards in a deterministic order (see multi_gpu.cpp). No-op when
/// metrics are disabled.
void publish_kernel_stats(const char* kernel, const KernelStats& stats);

}  // namespace cmesolve::gpusim
