#include "gpusim/memory_sim.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "gpusim/occupancy.hpp"

namespace cmesolve::gpusim {

MemorySim::MemorySim(const DeviceSpec& dev, bool l1_enabled)
    : dev_(dev),
      l1_enabled_(l1_enabled),
      l2_(dev.l2_bytes, dev.l2_ways, dev.line_bytes) {
  l1_.reserve(static_cast<std::size_t>(dev.num_sms));
  for (int s = 0; s < dev.num_sms; ++s) {
    l1_.emplace_back(dev.l1_bytes, dev.l1_ways, dev.line_bytes);
  }
}

void MemorySim::stream_load(std::uint64_t addr, std::size_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t first = addr / dev_.line_bytes;
  const std::uint64_t last = (addr + bytes - 1) / dev_.line_bytes;
  const std::uint64_t lines = last - first + 1;
  counters_.transactions += lines;
  counters_.dram_bytes += lines * dev_.line_bytes;
  counters_.l1_bytes += lines * dev_.line_bytes;  // the LSU still issues them
  // Fermi's L1 caches every global load, so streaming arrays evict the
  // x-vector lines — the pollution that makes the 48 KB L1 split worth ~6%
  // over 16 KB in Sec. VII-C. The DRAM cost above stays unconditional
  // (each matrix line is consumed once per sweep regardless).
  if (l1_enabled_) {
    CacheModel& l1 = l1_[static_cast<std::size_t>(active_sm_)];
    for (std::uint64_t line = first; line <= last; ++line) {
      (void)l1.access(line * dev_.line_bytes);
    }
  }
}

void MemorySim::gather(std::span<const std::uint64_t> lane_addrs,
                       std::size_t elem_bytes) {
  if (lane_addrs.empty()) return;
  scratch_.assign(lane_addrs.begin(), lane_addrs.end());
  for (auto& a : scratch_) a /= dev_.line_bytes;
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()), scratch_.end());

  CacheModel& l1 = l1_[static_cast<std::size_t>(active_sm_)];
  for (std::uint64_t line : scratch_) {
    const std::uint64_t addr = line * dev_.line_bytes;
    ++counters_.transactions;
    counters_.l1_bytes += dev_.line_bytes;
    if (l1_enabled_) {
      if (l1.access(addr)) {
        ++counters_.l1_hits;
        continue;
      }
      ++counters_.l1_misses;
    } else {
      ++counters_.l1_misses;
    }
    counters_.l2_bytes += dev_.line_bytes;
    if (l2_.access(addr)) {
      ++counters_.l2_hits;
    } else {
      ++counters_.l2_misses;
      counters_.dram_bytes += dev_.line_bytes;
    }
  }
  (void)elem_bytes;
}

void MemorySim::scatter_store(std::span<const std::uint64_t> lane_addrs,
                              std::size_t elem_bytes) {
  if (lane_addrs.empty()) return;
  // LSU issues one transaction per touched write segment; DRAM traffic is
  // the write-back of dirtied lines, accounted once per pass in finalize().
  scratch_.clear();
  for (std::uint64_t a : lane_addrs) {
    // A lane store can straddle a segment boundary only if misaligned; the
    // simulated arrays are element-aligned, so one segment per lane element.
    scratch_.push_back(a / dev_.write_segment_bytes);
    if (elem_bytes > dev_.write_segment_bytes) {
      const std::uint64_t end = (a + elem_bytes - 1) / dev_.write_segment_bytes;
      for (std::uint64_t s = a / dev_.write_segment_bytes + 1; s <= end; ++s) {
        scratch_.push_back(s);
      }
    }
  }
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()), scratch_.end());
  counters_.transactions += scratch_.size();
  counters_.l1_bytes += scratch_.size() * dev_.write_segment_bytes;
  for (std::uint64_t seg : scratch_) {
    dirty_lines_.insert(seg * dev_.write_segment_bytes / dev_.line_bytes);
  }
}

void MemorySim::stream_store(std::uint64_t addr, std::size_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t first = addr / dev_.write_segment_bytes;
  const std::uint64_t last = (addr + bytes - 1) / dev_.write_segment_bytes;
  const std::uint64_t segs = last - first + 1;
  counters_.transactions += segs;
  counters_.l1_bytes += segs * dev_.write_segment_bytes;
  for (std::uint64_t line = addr / dev_.line_bytes;
       line <= (addr + bytes - 1) / dev_.line_bytes; ++line) {
    dirty_lines_.insert(line);
  }
}

void MemorySim::begin_pass() {
  counters_ = TrafficCounters{};
  dirty_lines_.clear();
}

KernelStats MemorySim::finalize(int block_size,
                                std::uint64_t useful_flops) const {
  const Occupancy occ = occupancy(dev_, block_size);
  const real_t eff = bandwidth_efficiency(dev_, occ.fraction);

  KernelStats out;
  out.occupancy = occ.fraction;
  out.traffic = counters_;
  out.useful_flops = useful_flops;

  if (occ.blocks_per_sm == 0 || eff <= 0.0) {
    out.seconds = std::numeric_limits<real_t>::infinity();
    out.gflops = 0.0;
    return out;
  }

  const std::uint64_t writeback_bytes =
      static_cast<std::uint64_t>(dirty_lines_.size()) * dev_.line_bytes;
  out.traffic.dram_bytes += writeback_bytes;
  const real_t t_dram = static_cast<real_t>(out.traffic.dram_bytes) /
                        (dev_.dram_bandwidth * eff);
  const real_t t_l2 =
      static_cast<real_t>(counters_.l2_bytes) / (dev_.l2_bandwidth * eff);
  const real_t t_l1 =
      static_cast<real_t>(counters_.l1_bytes) / (dev_.l1_bandwidth * eff);
  const real_t t_comp =
      static_cast<real_t>(counters_.flops) / dev_.dp_peak_flops;

  const real_t bound = std::max(std::max(t_dram, t_l2), std::max(t_l1, t_comp));
  out.seconds = bound * block_shape_penalty(dev_, block_size) +
                dev_.launch_overhead;
  out.gflops = static_cast<real_t>(useful_flops) / out.seconds / 1.0e9;
  return out;
}

}  // namespace cmesolve::gpusim
