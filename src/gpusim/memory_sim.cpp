#include "gpusim/memory_sim.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "gpusim/occupancy.hpp"

namespace cmesolve::gpusim {

namespace {

void accumulate(TrafficCounters& into, const TrafficCounters& from) noexcept {
  into.dram_bytes += from.dram_bytes;
  into.l2_bytes += from.l2_bytes;
  into.l1_bytes += from.l1_bytes;
  into.transactions += from.transactions;
  into.l1_hits += from.l1_hits;
  into.l1_misses += from.l1_misses;
  into.l2_hits += from.l2_hits;
  into.l2_misses += from.l2_misses;
  into.flops += from.flops;
}

}  // namespace

// --- SmStream ---------------------------------------------------------------

void SmStream::begin_wave() {
  if (l2_ != nullptr) return;  // direct mode: no recording
  wave_start_.push_back(l2_lines_.size());
}

void SmStream::stream_load(std::uint64_t addr, std::size_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t first = addr / dev_->line_bytes;
  const std::uint64_t last = (addr + bytes - 1) / dev_->line_bytes;
  const std::uint64_t lines = last - first + 1;
  counters_->transactions += lines;
  counters_->dram_bytes += lines * dev_->line_bytes;
  counters_->l1_bytes += lines * dev_->line_bytes;  // the LSU still issues them
  // Fermi's L1 caches every global load, so streaming arrays evict the
  // x-vector lines — the pollution that makes the 48 KB L1 split worth ~6%
  // over 16 KB in Sec. VII-C. The DRAM cost above stays unconditional
  // (each matrix line is consumed once per sweep regardless).
  if (l1_enabled_) {
    for (std::uint64_t line = first; line <= last; ++line) {
      (void)l1_->access(line * dev_->line_bytes);
    }
  }
}

void SmStream::gather(std::span<const std::uint64_t> lane_addrs,
                      std::size_t elem_bytes) {
  if (lane_addrs.empty()) return;
  scratch_.assign(lane_addrs.begin(), lane_addrs.end());
  for (auto& a : scratch_) a /= dev_->line_bytes;
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()), scratch_.end());

  for (std::uint64_t line : scratch_) {
    const std::uint64_t addr = line * dev_->line_bytes;
    ++counters_->transactions;
    counters_->l1_bytes += dev_->line_bytes;
    if (l1_enabled_) {
      if (l1_->access(addr)) {
        ++counters_->l1_hits;
        continue;
      }
      ++counters_->l1_misses;
    } else {
      ++counters_->l1_misses;
    }
    counters_->l2_bytes += dev_->line_bytes;
    if (l2_ != nullptr) {
      if (l2_->access(addr)) {
        ++counters_->l2_hits;
      } else {
        ++counters_->l2_misses;
        counters_->dram_bytes += dev_->line_bytes;
      }
    } else {
      // Shard mode: the shared-L2 lookup is deferred to the deterministic
      // replay in MemorySim::merge_shards().
      l2_lines_.push_back(addr);
    }
  }
  (void)elem_bytes;
}

void SmStream::scatter_store(std::span<const std::uint64_t> lane_addrs,
                             std::size_t elem_bytes) {
  if (lane_addrs.empty()) return;
  // LSU issues one transaction per touched write segment; DRAM traffic is
  // the write-back of dirtied lines, accounted once per pass in finalize().
  scratch_.clear();
  for (std::uint64_t a : lane_addrs) {
    // A lane store can straddle a segment boundary only if misaligned; the
    // simulated arrays are element-aligned, so one segment per lane element.
    scratch_.push_back(a / dev_->write_segment_bytes);
    if (elem_bytes > dev_->write_segment_bytes) {
      const std::uint64_t end = (a + elem_bytes - 1) / dev_->write_segment_bytes;
      for (std::uint64_t s = a / dev_->write_segment_bytes + 1; s <= end; ++s) {
        scratch_.push_back(s);
      }
    }
  }
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()), scratch_.end());
  counters_->transactions += scratch_.size();
  counters_->l1_bytes += scratch_.size() * dev_->write_segment_bytes;
  for (std::uint64_t seg : scratch_) {
    dirty_->insert(seg * dev_->write_segment_bytes / dev_->line_bytes);
  }
}

void SmStream::stream_store(std::uint64_t addr, std::size_t bytes) {
  if (bytes == 0) return;
  const std::uint64_t first = addr / dev_->write_segment_bytes;
  const std::uint64_t last = (addr + bytes - 1) / dev_->write_segment_bytes;
  const std::uint64_t segs = last - first + 1;
  counters_->transactions += segs;
  counters_->l1_bytes += segs * dev_->write_segment_bytes;
  for (std::uint64_t line = addr / dev_->line_bytes;
       line <= (addr + bytes - 1) / dev_->line_bytes; ++line) {
    dirty_->insert(line);
  }
}

// --- MemorySim --------------------------------------------------------------

MemorySim::MemorySim(const DeviceSpec& dev, bool l1_enabled)
    : dev_(dev),
      l1_enabled_(l1_enabled),
      l2_(dev.l2_bytes, dev.l2_ways, dev.line_bytes) {
  l1_.reserve(static_cast<std::size_t>(dev.num_sms));
  for (int s = 0; s < dev.num_sms; ++s) {
    l1_.emplace_back(dev.l1_bytes, dev.l1_ways, dev.line_bytes);
  }

  direct_.dev_ = &dev_;
  direct_.l1_enabled_ = l1_enabled_;
  direct_.l1_ = &l1_[0];
  direct_.l2_ = &l2_;
  direct_.counters_ = &counters_;
  direct_.dirty_ = &dirty_lines_;

  shards_.resize(static_cast<std::size_t>(dev.num_sms));
  for (int s = 0; s < dev.num_sms; ++s) {
    SmStream& sh = shards_[static_cast<std::size_t>(s)];
    sh.dev_ = &dev_;
    sh.l1_enabled_ = l1_enabled_;
    sh.l1_ = &l1_[static_cast<std::size_t>(s)];
    sh.l2_ = nullptr;  // defer to merge_shards()
    sh.counters_ = &sh.own_counters_;
    sh.dirty_ = &sh.own_dirty_;
  }
}

void MemorySim::merge_shards() {
  // Phase 1: replay the recorded L2-bound lines through the shared L2 in
  // (wave, sm, program-order) order — the exact order the serial engine
  // interleaves SM traffic — so L2 hit/miss classification is bit-identical
  // to the direct engine regardless of how many host threads recorded.
  std::size_t waves = 0;
  for (const SmStream& sh : shards_) {
    waves = std::max(waves, sh.wave_start_.size());
  }
  for (std::size_t w = 0; w < waves; ++w) {
    for (SmStream& sh : shards_) {
      if (w >= sh.wave_start_.size()) continue;
      const std::size_t b = sh.wave_start_[w];
      const std::size_t e = w + 1 < sh.wave_start_.size()
                                ? sh.wave_start_[w + 1]
                                : sh.l2_lines_.size();
      for (std::size_t i = b; i < e; ++i) {
        if (l2_.access(sh.l2_lines_[i])) {
          ++counters_.l2_hits;
        } else {
          ++counters_.l2_misses;
          counters_.dram_bytes += dev_.line_bytes;
        }
      }
    }
  }
  // Phase 2: fold shard counters and write-sets into the pass totals
  // (order-independent sums and unions) and clear the recordings.
  for (SmStream& sh : shards_) {
    accumulate(counters_, sh.own_counters_);
    sh.own_counters_ = TrafficCounters{};
    sh.own_dirty_.for_each(
        [this](std::uint64_t line) { dirty_lines_.insert(line); });
    sh.own_dirty_.clear();
    sh.l2_lines_.clear();
    sh.wave_start_.clear();
  }
}

void MemorySim::begin_pass() {
  counters_ = TrafficCounters{};
  dirty_lines_.clear();
  for (SmStream& sh : shards_) {
    sh.own_counters_ = TrafficCounters{};
    sh.own_dirty_.clear();
    sh.l2_lines_.clear();
    sh.wave_start_.clear();
  }
}

KernelStats MemorySim::finalize(int block_size,
                                std::uint64_t useful_flops) const {
  const Occupancy occ = occupancy(dev_, block_size);
  const real_t eff = bandwidth_efficiency(dev_, occ.fraction);

  KernelStats out;
  out.occupancy = occ.fraction;
  out.traffic = counters_;
  out.useful_flops = useful_flops;

  if (occ.blocks_per_sm == 0 || eff <= 0.0) {
    out.seconds = std::numeric_limits<real_t>::infinity();
    out.gflops = 0.0;
    return out;
  }

  const std::uint64_t writeback_bytes =
      static_cast<std::uint64_t>(dirty_lines_.size()) * dev_.line_bytes;
  out.traffic.dram_bytes += writeback_bytes;
  const real_t t_dram = static_cast<real_t>(out.traffic.dram_bytes) /
                        (dev_.dram_bandwidth * eff);
  const real_t t_l2 =
      static_cast<real_t>(counters_.l2_bytes) / (dev_.l2_bandwidth * eff);
  const real_t t_l1 =
      static_cast<real_t>(counters_.l1_bytes) / (dev_.l1_bandwidth * eff);
  const real_t t_comp =
      static_cast<real_t>(counters_.flops) / dev_.dp_peak_flops;

  const real_t bound = std::max(std::max(t_dram, t_l2), std::max(t_l1, t_comp));
  out.seconds = bound * block_shape_penalty(dev_, block_size) +
                dev_.launch_overhead;
  out.gflops = static_cast<real_t>(useful_flops) / out.seconds / 1.0e9;
  return out;
}

}  // namespace cmesolve::gpusim
