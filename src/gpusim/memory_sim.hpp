#pragma once
//
// Warp-level memory event engine.
//
// The simulator does not execute instructions; it replays the memory traffic
// a Fermi SM would generate for a kernel and converts the traffic into time
// with a roofline model:
//
//   t = max(dram_bytes / BW_dram, l2_bytes / BW_l2, l1_bytes / BW_l1,
//           flops / peak) / eff(occupancy) * block_shape_penalty + launch
//
// Traffic classes:
//   * stream loads  — matrix value/index arrays. Each element is touched
//     exactly once per kernel, so they bypass the cache model and count as
//     DRAM traffic in 128-byte transactions (Fermi streams them through L2,
//     but with zero reuse the distinction only pollutes the model).
//   * gathers       — x-vector (and CSR val/col) accesses with reuse. Lane
//     addresses are deduplicated to 128-byte lines and walked through the
//     per-SM L1 and the shared L2; only L2 misses reach DRAM.
//   * writes — y-vector stores, write-back semantics: each distinct line
//     written during a pass is charged one DRAM line write-back; the LSU
//     transaction count still reflects the (possibly scattered) 32-byte
//     write segments.
//
// Execution engines. The DIRECT interface (stream_load/gather/... on the
// MemorySim itself, routed by set_active_sm) is the serial engine: every
// event updates the shared L2 immediately, in program order. The SHARDED
// interface hands each simulated SM a private SmStream — its own L1, traffic
// counters, write-set and L2-bound miss recording — so the 16 SM warp
// streams can execute on concurrent host threads with no shared mutable
// state. A shard never touches the L2; it records the line addresses that
// missed (or bypassed) its L1, partitioned into scheduling waves. The
// merge_shards() barrier then replays the recorded streams through the
// shared L2 in (wave, sm, program-order) order — exactly the interleaving
// the serial engine produces — so every TrafficCounters field is
// bit-identical to the serial engine at any host thread count.
//
#include <cstdint>
#include <span>
#include <vector>

#include "gpusim/cache.hpp"
#include "gpusim/device.hpp"
#include "util/flat_set.hpp"
#include "util/types.hpp"

namespace cmesolve::gpusim {

/// Bump allocator handing out device addresses for the simulated arrays.
class AddressSpace {
 public:
  /// Allocate `bytes` aligned to 128 (a fresh transaction boundary).
  std::uint64_t alloc(std::size_t bytes, std::size_t align = 128) {
    cursor_ = (cursor_ + align - 1) / align * align;
    const std::uint64_t base = cursor_;
    cursor_ += bytes;
    return base;
  }

 private:
  std::uint64_t cursor_ = 0x1000'0000ULL;
};

/// Raw traffic counters of one simulated kernel pass.
struct TrafficCounters {
  std::uint64_t dram_bytes = 0;  ///< bytes actually moved from/to DRAM
  std::uint64_t l2_bytes = 0;    ///< bytes served by (or filled into) L2
  std::uint64_t l1_bytes = 0;    ///< bytes served through the L1 pipeline
  std::uint64_t transactions = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t flops = 0;
};

/// Result of converting traffic into time (see KernelSim::finalize).
struct KernelStats {
  real_t seconds = 0.0;
  real_t gflops = 0.0;      ///< useful_flops / seconds / 1e9
  real_t occupancy = 0.0;
  TrafficCounters traffic;
  std::uint64_t useful_flops = 0;
};

class MemorySim;

/// Memory-event sink of one simulated SM. Two wirings exist (see the engine
/// note above): the DIRECT stream owned by MemorySim routes events through
/// the shared L2 immediately, while SHARD streams record their L2-bound
/// lines for the deterministic replay at merge_shards(). A shard stream is
/// thread-confined: exactly one host thread may use it between begin_pass()
/// and merge_shards().
class SmStream {
 public:
  /// Mark a scheduling-wave boundary in the recorded L2 stream (no-op in
  /// direct mode). Shard tasks call this once per wave, BEFORE the wave's
  /// warps, and every shard must see every wave so the replay stays aligned.
  void begin_wave();

  /// Warp-wide streaming load of `bytes` starting at `addr`.
  void stream_load(std::uint64_t addr, std::size_t bytes);

  /// Warp gather: deduplicate lane addresses to lines, then L1 -> L2 -> DRAM.
  /// `elem_bytes` is only used to account the useful bytes at L1.
  void gather(std::span<const std::uint64_t> lane_addrs, std::size_t elem_bytes);

  /// Warp scattered store: coalesce lane addresses to write segments.
  void scatter_store(std::span<const std::uint64_t> lane_addrs,
                     std::size_t elem_bytes);

  /// Contiguous warp-wide store.
  void stream_store(std::uint64_t addr, std::size_t bytes);

  void add_flops(std::uint64_t n) noexcept { counters_->flops += n; }

  /// Streams are inert until wired up by a MemorySim.
  SmStream() = default;

 private:
  friend class MemorySim;

  const DeviceSpec* dev_ = nullptr;
  bool l1_enabled_ = true;
  CacheModel* l1_ = nullptr;  ///< this SM's L1 (direct mode: the active SM's)
  CacheModel* l2_ = nullptr;  ///< non-null => direct mode (immediate L2)
  TrafficCounters* counters_ = nullptr;
  util::FlatSet64* dirty_ = nullptr;

  // Shard-mode storage (counters_/dirty_ point at these for shards).
  TrafficCounters own_counters_;
  util::FlatSet64 own_dirty_;
  std::vector<std::uint64_t> l2_lines_;   ///< recorded L2-bound line addrs
  std::vector<std::size_t> wave_start_;   ///< offset of each wave's records
  // Scratch buffer reused by gather/scatter dedup to avoid allocation.
  std::vector<std::uint64_t> scratch_;
};

class MemorySim {
 public:
  /// `l1_enabled = false` routes gathers straight to L2 (used by the
  /// clSpMV comparator model, whose OpenCL kernels did not benefit from the
  /// L1 configuration the paper tunes in Sec. VII-C).
  explicit MemorySim(const DeviceSpec& dev, bool l1_enabled = true);

  MemorySim(const MemorySim&) = delete;
  MemorySim& operator=(const MemorySim&) = delete;

  // --- direct (serial) interface -------------------------------------------

  /// Select the SM whose L1 subsequent direct-mode events hit (blocks are
  /// assigned round-robin: SM = block_index % num_sms).
  void set_active_sm(int sm) noexcept {
    active_sm_ = sm;
    direct_.l1_ = &l1_[static_cast<std::size_t>(sm)];
  }

  void stream_load(std::uint64_t addr, std::size_t bytes) {
    direct_.stream_load(addr, bytes);
  }
  void gather(std::span<const std::uint64_t> lane_addrs,
              std::size_t elem_bytes) {
    direct_.gather(lane_addrs, elem_bytes);
  }
  void scatter_store(std::span<const std::uint64_t> lane_addrs,
                     std::size_t elem_bytes) {
    direct_.scatter_store(lane_addrs, elem_bytes);
  }
  void stream_store(std::uint64_t addr, std::size_t bytes) {
    direct_.stream_store(addr, bytes);
  }
  void add_flops(std::uint64_t n) noexcept { counters_.flops += n; }

  /// The direct-mode stream itself (serial engine view for generic kernel
  /// bodies written against the SmStream interface).
  [[nodiscard]] SmStream& direct() noexcept { return direct_; }

  // --- sharded (parallel) interface ----------------------------------------

  [[nodiscard]] int num_sms() const noexcept { return dev_.num_sms; }

  /// Per-SM shard streams for concurrent execution: shard(s) owns L1 of SM
  /// s. Between begin_pass()/merge_shards(), each shard may be driven by a
  /// different host thread; direct-mode calls are not allowed while any
  /// shard holds unreplayed events.
  [[nodiscard]] SmStream& shard(int sm) noexcept {
    return shards_[static_cast<std::size_t>(sm)];
  }

  /// Deterministic barrier: replays every shard's recorded L2-bound lines
  /// through the shared L2 in (wave, sm, program-order) order — the exact
  /// serial interleaving — then folds shard counters and write-sets into
  /// the pass totals and clears the shard recordings.
  void merge_shards();

  // --- pass bookkeeping ----------------------------------------------------

  /// Zero the counters but keep cache contents (steady-state passes).
  void begin_pass();

  [[nodiscard]] const TrafficCounters& counters() const noexcept {
    return counters_;
  }

  /// Convert the current pass traffic into kernel time (see header comment).
  /// Adds the write-back traffic of the lines dirtied during the pass.
  [[nodiscard]] KernelStats finalize(int block_size,
                                     std::uint64_t useful_flops) const;

  [[nodiscard]] const DeviceSpec& device() const noexcept { return dev_; }

 private:
  DeviceSpec dev_;
  bool l1_enabled_;
  std::vector<CacheModel> l1_;  ///< one per SM
  CacheModel l2_;
  int active_sm_ = 0;
  TrafficCounters counters_;
  util::FlatSet64 dirty_lines_;  ///< lines written this pass
  SmStream direct_;              ///< serial-engine event sink
  std::vector<SmStream> shards_; ///< parallel-engine per-SM sinks
};

}  // namespace cmesolve::gpusim
