#pragma once
//
// Warp-level memory event engine.
//
// The simulator does not execute instructions; it replays the memory traffic
// a Fermi SM would generate for a kernel and converts the traffic into time
// with a roofline model:
//
//   t = max(dram_bytes / BW_dram, l2_bytes / BW_l2, l1_bytes / BW_l1,
//           flops / peak) / eff(occupancy) * block_shape_penalty + launch
//
// Traffic classes:
//   * stream loads  — matrix value/index arrays. Each element is touched
//     exactly once per kernel, so they bypass the cache model and count as
//     DRAM traffic in 128-byte transactions (Fermi streams them through L2,
//     but with zero reuse the distinction only pollutes the model).
//   * gathers       — x-vector (and CSR val/col) accesses with reuse. Lane
//     addresses are deduplicated to 128-byte lines and walked through the
//     per-SM L1 and the shared L2; only L2 misses reach DRAM.
//   * writes — y-vector stores, write-back semantics: each distinct line
//     written during a pass is charged one DRAM line write-back; the LSU
//     transaction count still reflects the (possibly scattered) 32-byte
//     write segments.
//
#include <cstdint>
#include <span>
#include <unordered_set>
#include <vector>

#include "gpusim/cache.hpp"
#include "gpusim/device.hpp"
#include "util/types.hpp"

namespace cmesolve::gpusim {

/// Bump allocator handing out device addresses for the simulated arrays.
class AddressSpace {
 public:
  /// Allocate `bytes` aligned to 128 (a fresh transaction boundary).
  std::uint64_t alloc(std::size_t bytes, std::size_t align = 128) {
    cursor_ = (cursor_ + align - 1) / align * align;
    const std::uint64_t base = cursor_;
    cursor_ += bytes;
    return base;
  }

 private:
  std::uint64_t cursor_ = 0x1000'0000ULL;
};

/// Raw traffic counters of one simulated kernel pass.
struct TrafficCounters {
  std::uint64_t dram_bytes = 0;  ///< bytes actually moved from/to DRAM
  std::uint64_t l2_bytes = 0;    ///< bytes served by (or filled into) L2
  std::uint64_t l1_bytes = 0;    ///< bytes served through the L1 pipeline
  std::uint64_t transactions = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t flops = 0;
};

/// Result of converting traffic into time (see KernelSim::finalize).
struct KernelStats {
  real_t seconds = 0.0;
  real_t gflops = 0.0;      ///< useful_flops / seconds / 1e9
  real_t occupancy = 0.0;
  TrafficCounters traffic;
  std::uint64_t useful_flops = 0;
};

class MemorySim {
 public:
  /// `sp_l1_enabled = false` routes gathers straight to L2 (used by the
  /// clSpMV comparator model, whose OpenCL kernels did not benefit from the
  /// L1 configuration the paper tunes in Sec. VII-C).
  explicit MemorySim(const DeviceSpec& dev, bool l1_enabled = true);

  /// Select the SM whose L1 subsequent gathers hit (blocks are assigned
  /// round-robin: SM = block_index % num_sms).
  void set_active_sm(int sm) noexcept { active_sm_ = sm; }

  /// Warp-wide streaming load of `bytes` starting at `addr`.
  void stream_load(std::uint64_t addr, std::size_t bytes);

  /// Warp gather: deduplicate lane addresses to lines, then L1 -> L2 -> DRAM.
  /// `elem_bytes` is only used to account the useful bytes at L1.
  void gather(std::span<const std::uint64_t> lane_addrs, std::size_t elem_bytes);

  /// Warp scattered store: coalesce lane addresses to write segments.
  void scatter_store(std::span<const std::uint64_t> lane_addrs,
                     std::size_t elem_bytes);

  /// Contiguous warp-wide store.
  void stream_store(std::uint64_t addr, std::size_t bytes);

  void add_flops(std::uint64_t n) noexcept { counters_.flops += n; }

  /// Zero the counters but keep cache contents (steady-state passes).
  void begin_pass();

  [[nodiscard]] const TrafficCounters& counters() const noexcept {
    return counters_;
  }

  /// Convert the current pass traffic into kernel time (see header comment).
  /// Adds the write-back traffic of the lines dirtied during the pass.
  [[nodiscard]] KernelStats finalize(int block_size,
                                     std::uint64_t useful_flops) const;

  [[nodiscard]] const DeviceSpec& device() const noexcept { return dev_; }

 private:
  DeviceSpec dev_;
  bool l1_enabled_;
  std::vector<CacheModel> l1_;  ///< one per SM
  CacheModel l2_;
  int active_sm_ = 0;
  TrafficCounters counters_;
  std::unordered_set<std::uint64_t> dirty_lines_;  ///< lines written this pass
  // Scratch buffer reused by gather/scatter dedup to avoid allocation.
  mutable std::vector<std::uint64_t> scratch_;
};

}  // namespace cmesolve::gpusim
