#include "gpusim/multi_gpu.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <vector>

#include "gpusim/kernels.hpp"
#include "obs/metrics.hpp"
#include "sparse/hybrid.hpp"
#include "util/flat_set.hpp"
#include "util/parallel.hpp"

namespace cmesolve::gpusim {

namespace {

/// Extract rows [row_begin, row_end) of `a` as a standalone matrix with
/// GLOBAL column indices (so x is addressed identically on every device).
sparse::Csr row_block(const sparse::Csr& a, index_t row_begin,
                      index_t row_end) {
  sparse::Csr out;
  out.nrows = row_end - row_begin;
  out.ncols = a.ncols;
  out.row_ptr.reserve(static_cast<std::size_t>(out.nrows) + 1);
  out.row_ptr.push_back(0);
  const index_t p0 = a.row_ptr[row_begin];
  const index_t p1 = a.row_ptr[row_end];
  out.col_idx.assign(a.col_idx.begin() + p0, a.col_idx.begin() + p1);
  out.val.assign(a.val.begin() + p0, a.val.begin() + p1);
  for (index_t r = row_begin; r < row_end; ++r) {
    out.row_ptr.push_back(a.row_ptr[r + 1] - p0);
  }
  return out;
}

}  // namespace

MultiGpuReport simulate_multi_gpu_jacobi_sweep(const DeviceSpec& dev,
                                               const sparse::Csr& a,
                                               std::span<const real_t> x,
                                               std::span<real_t> x_out,
                                               const MultiGpuOptions& opt) {
  if (opt.num_gpus < 1) {
    throw std::invalid_argument("simulate_multi_gpu_jacobi_sweep: num_gpus");
  }
  assert(x.size() == static_cast<std::size_t>(a.nrows));
  assert(x_out.size() == static_cast<std::size_t>(a.nrows));

  MultiGpuReport report;

  // Single-device reference cost (for the speedup figure).
  {
    const auto hybrid = sparse::sliced_ell_dia_from_csr(a, {-1, 0, 1});
    std::vector<real_t> tmp(x_out.size());
    report.single_gpu_seconds =
        simulate_jacobi_sweep(dev, hybrid, x, tmp, opt.sim).seconds;
  }

  const int g = opt.num_gpus;
  const index_t rows_per_gpu = (a.nrows + g - 1) / g;

  // Each simulated device is independent: it reads the shared x and the
  // global matrix, and writes a disjoint row range of x_out. Partitions
  // therefore run as pool tasks (each with its own halo set and block
  // buffers) and the per-partition stats are folded in partition order
  // below, so the report is identical to the serial loop's.
  std::vector<PartitionStats> parts(static_cast<std::size_t>(g));
  util::parallel_tasks(g, [&](int p) {
    // Metric publication inside pool tasks would be ordered by the
    // scheduler; suppress it here and re-publish per partition, in
    // partition order, after the barrier.
    obs::SuppressMetrics suppress;
    PartitionStats& part = parts[static_cast<std::size_t>(p)];
    part.row_begin = std::min<index_t>(p * rows_per_gpu, a.nrows);
    part.row_end = std::min<index_t>(part.row_begin + rows_per_gpu, a.nrows);
    if (part.row_end <= part.row_begin) return;

    // Halo: distinct columns outside this device's own row range. (The
    // diagonal-relative layout means the band never leaves the range except
    // at the two partition edges.)
    util::FlatSet64 halo;
    const sparse::Csr block = row_block(a, part.row_begin, part.row_end);
    halo.reserve(block.col_idx.size());
    for (index_t c : block.col_idx) {
      if (c < part.row_begin || c >= part.row_end) {
        halo.insert(static_cast<std::uint64_t>(c));
      }
    }
    part.halo_in = halo.size();

    // The kernel the device runs: its block in warped-ELL+DIA. Band offsets
    // are relative to the block's own diagonal; the global-column layout
    // shifts the band by row_begin, so extract it explicitly.
    //
    // Note: the block is rectangular (nrows_block x n); the diagonal of row
    // r sits at column row_begin + r, i.e. offset +row_begin.
    const auto hybrid = sparse::sliced_ell_dia_from_csr(
        block, {part.row_begin - 1, part.row_begin, part.row_begin + 1});
    std::vector<real_t> block_out(static_cast<std::size_t>(block.nrows));
    part.sweep = simulate_jacobi_sweep(dev, hybrid, x, block_out, opt.sim,
                                       /*diag_offset=*/part.row_begin);
    for (index_t r = 0; r < block.nrows; ++r) {
      x_out[part.row_begin + r] = block_out[r];
    }
  });
  for (PartitionStats& part : parts) {
    publish_kernel_stats("sim.jacobi_sweep", part.sweep);
    report.compute_seconds = std::max(report.compute_seconds, part.sweep.seconds);
    report.partitions.push_back(std::move(part));
  }

  // Halo exchange: each device receives its halo once per iteration; the
  // links run concurrently, so the cost is the largest inbound volume plus
  // a latency term per neighbour message (ring/all-gather hybrid: at least
  // two messages once g > 1). The transfer overlaps with the interior
  // compute, the standard distributed-SpMV pipeline.
  std::size_t max_halo = 0;
  for (const auto& part : report.partitions) {
    max_halo = std::max(max_halo, part.halo_in);
  }
  if (g > 1) {
    report.comm_seconds =
        static_cast<real_t>(max_halo) * sizeof(real_t) / opt.link_bandwidth +
        2.0 * opt.link_latency;
  }

  report.seconds_per_iteration =
      std::max(report.compute_seconds, report.comm_seconds);
  report.speedup_vs_single =
      report.seconds_per_iteration > 0
          ? report.single_gpu_seconds / report.seconds_per_iteration
          : 0.0;
  return report;
}

}  // namespace cmesolve::gpusim
