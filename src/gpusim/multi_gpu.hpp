#pragma once
//
// Multi-GPU row-partitioned Jacobi sweep — the scale-out direction the
// paper announces in Sec. VIII ("overcome the current limitation in terms
// of GPU memory by moving to GPU clusters").
//
// The matrix is split into contiguous row blocks, one per device; each
// device stores its block in the warp-grained sliced-ELL + DIA format and
// owns the matching slice of x. Every iteration it must receive the halo —
// the x entries its columns reference outside its own row range — over the
// interconnect before the sweep can complete. Time per iteration:
//
//   t = max_g kernel_g  +  max_g halo_in_g / link_bw  +  latency terms
//
// Communication overlaps with the interior compute (the standard
// distributed-SpMV pipeline), so an iteration costs
// max(compute, halo-transfer) plus latency.
//
// The halo volume depends on the model structure: pure chain networks
// (brusselator, schnakenberg) keep every column within a narrow band, so
// their halo is a few hundred entries; operator-flip networks (toggle
// switch, phage lambda) jump between gene-state quadrants, so naive 1-D row
// partitioning communicates a large fraction of x. The model quantifies
// both regimes.
//
#include <vector>

#include "gpusim/device.hpp"
#include "gpusim/kernels.hpp"
#include "sparse/csr.hpp"

namespace cmesolve::gpusim {

struct MultiGpuOptions {
  int num_gpus = 2;
  real_t link_bandwidth = 8.0e9;  ///< bytes/s per direction (PCIe-gen2 era)
  real_t link_latency = 2.0e-6;   ///< per message (peer DMA)
  SimOptions sim;                 ///< per-device kernel options
};

struct PartitionStats {
  index_t row_begin = 0;
  index_t row_end = 0;
  std::size_t halo_in = 0;   ///< x entries received from other devices
  KernelStats sweep;         ///< this device's Jacobi-sweep kernel
};

struct MultiGpuReport {
  std::vector<PartitionStats> partitions;
  real_t compute_seconds = 0.0;  ///< slowest device kernel
  real_t comm_seconds = 0.0;     ///< halo exchange (overlapped with compute)
  real_t seconds_per_iteration = 0.0;
  /// Speedup over the same sweep simulated on one device.
  real_t speedup_vs_single = 0.0;
  real_t single_gpu_seconds = 0.0;
};

/// Simulate one distributed Jacobi sweep of A P = 0 across `num_gpus`
/// devices of type `dev`. Also computes x_out functionally (identical to
/// the single-device sweep) as a correctness check.
[[nodiscard]] MultiGpuReport simulate_multi_gpu_jacobi_sweep(
    const DeviceSpec& dev, const sparse::Csr& a, std::span<const real_t> x,
    std::span<real_t> x_out, const MultiGpuOptions& opt = {});

}  // namespace cmesolve::gpusim
