#include "gpusim/occupancy.hpp"

#include <algorithm>
#include <cassert>

namespace cmesolve::gpusim {

Occupancy occupancy(const DeviceSpec& dev, int block_size) {
  assert(block_size > 0);
  Occupancy o;
  const int by_threads = dev.max_threads_per_sm / block_size;
  o.blocks_per_sm = std::max(0, std::min(dev.max_blocks_per_sm, by_threads));
  if (block_size > dev.max_threads_per_sm) {
    o.blocks_per_sm = 0;  // block does not fit at all
  }
  o.threads_per_sm = o.blocks_per_sm * block_size;
  o.warps_per_sm = o.threads_per_sm / dev.warp_size;
  o.fraction = static_cast<real_t>(o.threads_per_sm) /
               static_cast<real_t>(dev.max_threads_per_sm);
  return o;
}

real_t bandwidth_efficiency(const DeviceSpec& dev, real_t fraction) {
  return std::min(real_t{1.0}, dev.latency_hiding_slope * fraction);
}

real_t block_shape_penalty(const DeviceSpec& dev, int block_size) {
  const real_t turnover = 1.0 + dev.turnover_alpha *
                                    static_cast<real_t>(block_size) /
                                    static_cast<real_t>(dev.max_threads_per_sm);
  const real_t sched = 1.0 + dev.sched_beta *
                                 static_cast<real_t>(dev.sched_ref_block) /
                                 static_cast<real_t>(block_size);
  return turnover * sched;
}

}  // namespace cmesolve::gpusim
