#pragma once
//
// CUDA occupancy calculator (Sec. III). Occupancy drives the latency-hiding
// term of the timing model: too few resident warps cannot keep the memory
// pipeline full.
//
#include "gpusim/device.hpp"
#include "util/types.hpp"

namespace cmesolve::gpusim {

struct Occupancy {
  int blocks_per_sm = 0;
  int threads_per_sm = 0;
  int warps_per_sm = 0;
  real_t fraction = 0.0;  ///< threads_per_sm / max_threads_per_sm
};

/// Resident blocks/threads for a given block size, limited by the 8-blocks-
/// per-SM and 1536-threads-per-SM Fermi caps.
[[nodiscard]] Occupancy occupancy(const DeviceSpec& dev, int block_size);

/// Bandwidth efficiency achieved at an occupancy fraction:
/// min(1, latency_hiding_slope * fraction).
[[nodiscard]] real_t bandwidth_efficiency(const DeviceSpec& dev, real_t fraction);

/// Combined block-shape multiplier on kernel time: tail-quantization
/// (turnover) of large blocks plus scheduling overhead of small ones.
[[nodiscard]] real_t block_shape_penalty(const DeviceSpec& dev, int block_size);

}  // namespace cmesolve::gpusim
