//
// Flight recorder implementation: the ring buffer itself. The enable flag,
// path plumbing and env activation live in telemetry.cpp (single-TU rule for
// everything the inline fast paths reference) — this TU owns the storage and
// the exporters.
//
#include "obs/flight_recorder.hpp"

#include <fstream>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace cmesolve::obs {

const char* to_string(FlightKind k) noexcept {
  switch (k) {
    case FlightKind::kResidual: return "residual";
    case FlightKind::kNormalization: return "normalization";
    case FlightKind::kStagnation: return "stagnation";
    case FlightKind::kStop: return "stop";
    case FlightKind::kFspRound: return "fsp-round";
    case FlightKind::kFspStates: return "fsp-states";
    case FlightKind::kBatchActive: return "batch-active";
    case FlightKind::kTransientStep: return "transient-step";
    case FlightKind::kKrylovStep: return "krylov-step";
  }
  return "?";
}

namespace {

struct RecorderState {
  mutable std::mutex mu;
  std::vector<FlightEvent> ring;  ///< allocated once at enable()
  std::size_t head = 0;           ///< next write position
  std::size_t count = 0;          ///< events held (<= ring.size())
  std::uint64_t overwritten = 0;
  bool post_mortem = false;
  std::string post_mortem_reason;

  void reset_locked() {
    head = 0;
    count = 0;
    overwritten = 0;
    post_mortem = false;
    post_mortem_reason.clear();
  }
};

RecorderState& recorder_state() {
  static RecorderState state;
  return state;
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FlightRecorder& FlightRecorder::instance() {
  static FlightRecorder recorder;
  return recorder;
}

void FlightRecorder::enable(std::size_t capacity) {
  auto& s = recorder_state();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    if (capacity == 0) capacity = 1;
    if (s.ring.size() != capacity) {
      s.ring.assign(capacity, FlightEvent{});
      s.ring.shrink_to_fit();
    }
    s.reset_locked();
  }
  detail::g_flight_on.store(true, std::memory_order_relaxed);
}

void FlightRecorder::disable() {
  detail::g_flight_on.store(false, std::memory_order_relaxed);
}

void FlightRecorder::clear() {
  auto& s = recorder_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.reset_locked();
}

void FlightRecorder::record(const char* track, FlightKind kind,
                            std::uint64_t iteration, double value,
                            std::uint32_t lane) {
  auto& s = recorder_state();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.ring.empty()) return;  // record() before enable(): nothing allocated
  FlightEvent& slot = s.ring[s.head];
  if (s.count == s.ring.size()) ++s.overwritten;  // oldest event lost
  slot.track = track;
  slot.kind = kind;
  slot.lane = lane;
  slot.iteration = iteration;
  slot.value = value;
  s.head = (s.head + 1) % s.ring.size();
  if (s.count < s.ring.size()) ++s.count;
}

void FlightRecorder::mark_post_mortem(const char* reason) {
  auto& s = recorder_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.post_mortem = true;
  s.post_mortem_reason = reason != nullptr ? reason : "";
}

bool FlightRecorder::post_mortem() const {
  auto& s = recorder_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.post_mortem;
}

std::string FlightRecorder::post_mortem_reason() const {
  auto& s = recorder_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.post_mortem_reason;
}

std::size_t FlightRecorder::size() const {
  auto& s = recorder_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.count;
}

std::size_t FlightRecorder::capacity() const {
  auto& s = recorder_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.ring.size();
}

std::uint64_t FlightRecorder::overwritten() const {
  auto& s = recorder_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.overwritten;
}

std::vector<FlightEvent> FlightRecorder::events() const {
  auto& s = recorder_state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<FlightEvent> out;
  out.reserve(s.count);
  // Oldest-first: when the ring has wrapped, head points at the oldest slot.
  const std::size_t start = s.count == s.ring.size() ? s.head : 0;
  for (std::size_t i = 0; i < s.count; ++i) {
    out.push_back(s.ring[(start + i) % s.ring.size()]);
  }
  return out;
}

std::uint64_t FlightRecorder::content_signature() const {
  const auto evs = events();
  // Order-SENSITIVE (chained, not summed, unlike Tracer::content_signature):
  // the stream is recorded from one thread in program order, so order is
  // part of the contract.
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& ev : evs) {
    h = fnv1a(h, ev.track, std::char_traits<char>::length(ev.track));
    h = fnv1a(h, &ev.kind, sizeof(ev.kind));
    h = fnv1a(h, &ev.lane, sizeof(ev.lane));
    h = fnv1a(h, &ev.iteration, sizeof(ev.iteration));
    h = fnv1a(h, &ev.value, sizeof(ev.value));
  }
  return h;
}

void FlightRecorder::write_chrome_trace(std::ostream& os) const {
  const auto evs = events();
  std::uint64_t lost = 0;
  {
    auto& s = recorder_state();
    std::lock_guard<std::mutex> lock(s.mu);
    lost = s.overwritten;
  }
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.key("traceEvents").begin_array();
  std::string name;
  for (const auto& ev : evs) {
    name.assign(ev.track);
    if (ev.lane > 0) {
      name += '[';
      name += std::to_string(ev.lane);
      name += ']';
    }
    w.begin_object();
    w.kv("name", std::string_view(name));
    w.kv("ph", "C");
    // Iteration on the time axis: the recorder stores no wall-clock, so the
    // exported tracks plot value-vs-iteration (1 "us" per iteration).
    w.kv("ts", static_cast<std::int64_t>(ev.iteration));
    w.kv("pid", std::int64_t{1});
    w.kv("tid", std::int64_t{0});
    w.key("args").begin_object();
    w.kv("value", ev.value);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("otherData").begin_object();
  w.kv("tool", "cmesolve-flight");
  w.kv("time_axis", "iteration");
  w.kv("overwritten_events", lost);
  w.end_object();
  w.end_object();
  os << '\n';
}

bool FlightRecorder::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return os.good();
}

}  // namespace cmesolve::obs
