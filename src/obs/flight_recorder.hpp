#pragma once
//
// Flight recorder: a bounded, allocation-once ring buffer of per-iteration
// solver events. Where the metric registry keeps end-of-run aggregates, the
// recorder keeps the *trajectory* — residual at every check, every
// renormalization, every stagnation strike, every FSP round's sink mass and
// state count, the batched solver's freeze-mask popcount per check — so a
// failed or stagnated solve can be diagnosed post mortem without re-running
// under a debugger.
//
// Determinism contract (same two rules as obs/metrics.hpp, enforced by
// tests/test_obs.cpp): events are recorded only from the calling thread, in
// program order, and carry NO timestamps — they are indexed by solver
// iteration. The recorded stream is therefore bit-identical across
// CMESOLVE_THREADS=1/2/8, and the post-mortem section it dumps into the run
// report (schema cmesolve.run_report/2) diffs clean across thread counts.
//
// Cost model: disabled sites are one relaxed atomic load and a predictable
// branch (no allocation — track names are string literals); enabled sites
// take one mutex and write one 32-byte POD into the preallocated ring. When
// the ring is full the OLDEST events are overwritten (a post mortem wants
// the tail of the flight, not the takeoff) and `overwritten()` counts what
// was lost.
//
// Activation: programmatic (`FlightRecorder::instance().enable()`) or
// `CMESOLVE_FLIGHT=path`, which also streams the buffer as Chrome-trace
// counter tracks at exit (one track per event name, iteration on the time
// axis — loads in Perfetto next to a CMESOLVE_TRACE file).
//
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cmesolve::obs {

namespace detail {
// Defined in telemetry.cpp (with the other enable flags): any TU touching
// the inline fast path links the env activation (CMESOLVE_FLIGHT) with it.
extern std::atomic<bool> g_flight_on;
extern thread_local int t_suppress_depth;  ///< shared with metrics.hpp
}  // namespace detail

/// Shares the SuppressMetrics thread-local: code inside pool tasks records
/// nothing, so scheduling can never reorder the stream.
inline bool flight_enabled() {
  return detail::g_flight_on.load(std::memory_order_relaxed) &&
         detail::t_suppress_depth == 0;
}

enum class FlightKind : std::uint8_t {
  kResidual = 0,     ///< normalized residual at a residual check
  kNormalization,    ///< periodic L1 renormalization fired
  kStagnation,       ///< stagnation strike (value = relative residual change)
  kStop,             ///< solve finished (value = StopReason as double)
  kFspRound,         ///< FSP round outflow bound (value = sink-mass bound)
  kFspStates,        ///< FSP round state count
  kBatchActive,      ///< batched freeze-mask popcount (value = active lanes)
  kTransientStep,    ///< uniformization sub-step (value = covered Poisson mass)
  kKrylovStep,       ///< accepted Krylov expm sub-step (value = local error)
};

[[nodiscard]] const char* to_string(FlightKind k) noexcept;

/// One ring slot. POD, no timestamps: `iteration` is the solver's own clock
/// (sweep number, FSP round, ensemble block), `lane` disambiguates batched
/// lanes / ensemble points, `track` is a string literal naming the series.
struct FlightEvent {
  const char* track = "";
  FlightKind kind = FlightKind::kResidual;
  std::uint32_t lane = 0;
  std::uint64_t iteration = 0;
  double value = 0.0;
};

/// Process-wide ring buffer. Singleton; record() is mutex-guarded for safety
/// but the determinism contract expects calls from the calling thread only.
class FlightRecorder {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;  // 64k events

  static FlightRecorder& instance();

  /// Allocates the ring (once) and turns the fast-path flag on. Re-enabling
  /// clears the buffer; a different capacity reallocates.
  void enable(std::size_t capacity = kDefaultCapacity);
  void disable();
  void clear();  ///< drop events + post-mortem mark, keep the allocation

  void record(const char* track, FlightKind kind, std::uint64_t iteration,
              double value, std::uint32_t lane = 0);

  /// Flag the buffer as a post mortem: a solver finished without converging.
  /// write_report() embeds the flight section into the run report when set.
  void mark_post_mortem(const char* reason);
  [[nodiscard]] bool post_mortem() const;
  [[nodiscard]] std::string post_mortem_reason() const;

  [[nodiscard]] std::size_t size() const;       ///< events currently held
  [[nodiscard]] std::size_t capacity() const;
  [[nodiscard]] std::uint64_t overwritten() const;  ///< oldest events lost

  /// Events oldest-first (ring unrolled).
  [[nodiscard]] std::vector<FlightEvent> events() const;

  /// Order-sensitive FNV-1a fold over (track, kind, lane, iteration, value).
  /// Equal signatures <=> bit-identical recorded streams.
  [[nodiscard]] std::uint64_t content_signature() const;

  /// Chrome trace_event counter tracks: one 'C' event per slot, named
  /// "<track>" (or "<track>[lane]" for lane > 0), ts = iteration.
  void write_chrome_trace(std::ostream& os) const;
  bool write_file(const std::string& path) const;

 private:
  FlightRecorder() = default;
};

/// Fast-path free function mirroring obs::count/gauge: one relaxed load and
/// a branch when disabled, zero allocation either way.
inline void flight(const char* track, FlightKind kind, std::uint64_t iteration,
                   double value, std::uint32_t lane = 0) {
  if (flight_enabled()) {
    FlightRecorder::instance().record(track, kind, iteration, value, lane);
  }
}

/// Output path for the Chrome-trace export (CMESOLVE_FLIGHT sets this at
/// startup; flush_outputs() writes it). Empty = no file output.
void set_flight_path(const std::string& path);
std::string flight_path();

}  // namespace cmesolve::obs
