#pragma once
//
// Minimal streaming JSON writer shared by the trace exporter, the run-report
// writer and the bench emitters (replacing their hand-rolled string glue).
// Emits standards-conforming JSON: strings are escaped, non-finite doubles
// become null (so every output loads in `python3 -m json.tool`, Perfetto and
// friends), and commas/indentation are managed by a container stack.
//
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

namespace cmesolve::obs {

class JsonWriter {
 public:
  /// `indent` spaces per nesting level; 0 packs everything onto one line.
  explicit JsonWriter(std::ostream& os, int indent = 2)
      : os_(os), indent_(indent) {}

  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }

  JsonWriter& key(std::string_view k) {
    separate();
    write_string(k);
    os_ << ": ";
    keyed_ = true;
    return *this;
  }

  JsonWriter& value(std::string_view v) {
    separate();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool b) {
    separate();
    os_ << (b ? "true" : "false");
    return *this;
  }
  JsonWriter& value(double d) {
    separate();
    if (!std::isfinite(d)) {
      os_ << "null";  // NaN/inf are not JSON
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", d);
      os_ << buf;
    }
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    separate();
    os_ << v;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    separate();
    os_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& null() {
    separate();
    os_ << "null";
    return *this;
  }

  template <class V>
  JsonWriter& kv(std::string_view k, V&& v) {
    key(k);
    return value(std::forward<V>(v));
  }

 private:
  JsonWriter& open(char c) {
    separate();
    os_ << c;
    stack_.push_back(0);
    return *this;
  }

  JsonWriter& close(char c) {
    const bool had_items = !stack_.empty() && stack_.back() > 0;
    if (!stack_.empty()) stack_.pop_back();
    if (had_items) newline();
    os_ << c;
    return *this;
  }

  /// Emit the comma/newline owed before the next item (unless a key was just
  /// written, in which case the value continues the same line).
  void separate() {
    if (keyed_) {
      keyed_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (stack_.back() > 0) os_ << ',';
    ++stack_.back();
    newline();
  }

  void newline() {
    if (indent_ <= 0) return;
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
         ++i) {
      os_ << ' ';
    }
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (unsigned char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (c < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            os_ << buf;
          } else {
            os_ << static_cast<char>(c);
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  int indent_;
  bool keyed_ = false;
  std::vector<std::uint32_t> stack_;  ///< items emitted per open container
};

}  // namespace cmesolve::obs
