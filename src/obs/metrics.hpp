#pragma once
//
// Metric registry: named counters, gauges and histograms that solver and
// simulator code publish into. Histograms reuse util::RunningStats.
//
// Determinism contract (enforced by tests/test_obs.cpp): all *deterministic*
// metrics published by a reference computation are bit-identical across
// CMESOLVE_THREADS=1/2/8. Two rules make this hold:
//  1. Publication happens only from the calling thread, in program order —
//     never from inside pool tasks. Code that must run work inside
//     util::parallel_tasks wraps the task body in SuppressMetrics and
//     publishes aggregated values after the barrier, in a fixed order
//     (see gpusim/multi_gpu.cpp).
//  2. Host wall-clock and anything else that varies run-to-run is published
//     with is_volatile=true; volatile metrics live in a separate report
//     section and are excluded from deterministic_fingerprint().
//
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

#include "util/stats.hpp"

namespace cmesolve::obs {

namespace detail {
extern std::atomic<bool> g_metrics_on;  ///< defined in telemetry.cpp
extern thread_local int t_suppress_depth;
}  // namespace detail

inline bool metrics_enabled() {
  return detail::g_metrics_on.load(std::memory_order_relaxed) &&
         detail::t_suppress_depth == 0;
}

/// Programmatic sink control (env var CMESOLVE_REPORT also enables).
void set_metrics_enabled(bool on);

/// Suppresses metric publication on the current thread for the lifetime of
/// the guard. Used around work dispatched into pool tasks whose per-task
/// publication order would be scheduling-dependent; the dispatcher publishes
/// aggregates afterwards in a deterministic order.
class SuppressMetrics {
 public:
  SuppressMetrics() { ++detail::t_suppress_depth; }
  ~SuppressMetrics() { --detail::t_suppress_depth; }
  SuppressMetrics(const SuppressMetrics&) = delete;
  SuppressMetrics& operator=(const SuppressMetrics&) = delete;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

struct Metric {
  MetricKind kind = MetricKind::kGauge;
  bool is_volatile = false;   ///< excluded from the determinism fingerprint
  std::uint64_t count = 0;    ///< counter value
  double gauge = 0.0;         ///< last value set
  RunningStats stats;         ///< histogram accumulator
};

/// Process-wide registry. Singleton; all methods are thread-safe (one mutex —
/// metrics are published at iteration/launch granularity, not inner loops).
class MetricRegistry {
 public:
  static MetricRegistry& instance();

  void add_counter(const std::string& name, std::uint64_t delta = 1);
  void set_gauge(const std::string& name, double value,
                 bool is_volatile = false);
  void observe(const std::string& name, double value,
               bool is_volatile = false);

  void clear();
  std::size_t size() const;
  bool empty() const;

  /// Snapshot of the registry (sorted by name — std::map).
  std::map<std::string, Metric> snapshot() const;

  /// Canonical text form of every *deterministic* metric, "%.17g" doubles,
  /// sorted by name. Equal strings ⇔ bit-identical registry content.
  std::string deterministic_fingerprint() const;

 private:
  MetricRegistry() = default;
};

// Convenience free functions — all no-ops (after one relaxed load) unless
// metrics are enabled and not suppressed on this thread. The const char*
// overloads exist so string-literal call sites on hot paths construct no
// std::string (and allocate nothing) while disabled.
inline void count(const char* name, std::uint64_t delta = 1) {
  if (metrics_enabled()) MetricRegistry::instance().add_counter(name, delta);
}
inline void count(const std::string& name, std::uint64_t delta = 1) {
  if (metrics_enabled()) MetricRegistry::instance().add_counter(name, delta);
}
inline void gauge(const char* name, double value, bool is_volatile = false) {
  if (metrics_enabled())
    MetricRegistry::instance().set_gauge(name, value, is_volatile);
}
inline void gauge(const std::string& name, double value,
                  bool is_volatile = false) {
  if (metrics_enabled())
    MetricRegistry::instance().set_gauge(name, value, is_volatile);
}
inline void observe(const char* name, double value, bool is_volatile = false) {
  if (metrics_enabled())
    MetricRegistry::instance().observe(name, value, is_volatile);
}
inline void observe(const std::string& name, double value,
                    bool is_volatile = false) {
  if (metrics_enabled())
    MetricRegistry::instance().observe(name, value, is_volatile);
}

}  // namespace cmesolve::obs
