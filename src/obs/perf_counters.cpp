//
// perf_event_open counter groups. Linux-only syscalls are confined to this
// TU; every other platform compiles the degraded (zeroed) path.
//
#include "obs/perf_counters.hpp"

#include <cstring>
#include <string>

#include "obs/metrics.hpp"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace cmesolve::obs {

namespace detail {
std::atomic<bool> g_perf_on{false};
}  // namespace detail

void set_perf_enabled(bool on) {
  detail::g_perf_on.store(on, std::memory_order_relaxed);
}

#if defined(__linux__)

namespace {

long perf_open(perf_event_attr* attr, int group_fd) {
  return syscall(SYS_perf_event_open, attr, /*pid=*/0, /*cpu=*/-1, group_fd,
                 /*flags=*/0UL);
}

perf_event_attr make_attr(std::uint32_t type, std::uint64_t config,
                          bool leader) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.size = sizeof(attr);
  attr.type = type;
  attr.config = config;
  attr.disabled = leader ? 1 : 0;  // group starts/stops through the leader
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_ID;
  return attr;
}

struct EventSpec {
  std::uint32_t type;
  std::uint64_t config;
};

// Order matches PerfGroup::fds_: cycles (leader), instructions, LLC misses,
// stalled backend cycles.
constexpr EventSpec kSpecs[4] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_STALLED_CYCLES_BACKEND},
};

}  // namespace

PerfGroup::PerfGroup() {
  for (int i = 0; i < kEvents; ++i) {
    auto attr = make_attr(kSpecs[i].type, kSpecs[i].config, /*leader=*/i == 0);
    const long fd = perf_open(&attr, i == 0 ? -1 : fds_[0]);
    if (fd < 0) {
      if (i == 0) return;  // no leader, no group: fully degraded
      continue;            // member unsupported: its counter reads zero
    }
    fds_[i] = static_cast<int>(fd);
    std::uint64_t id = 0;
    if (ioctl(fds_[i], PERF_EVENT_IOC_ID, &id) == 0) ids_[i] = id;
  }
}

PerfGroup::~PerfGroup() {
  for (int i = kEvents - 1; i >= 0; --i) {
    if (fds_[i] >= 0) close(fds_[i]);
  }
}

void PerfGroup::start() {
  if (fds_[0] < 0) return;
  ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfSample PerfGroup::stop() {
  PerfSample s;
  if (fds_[0] < 0) return s;
  ioctl(fds_[0], PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);

  // PERF_FORMAT_GROUP | PERF_FORMAT_ID layout: nr, then {value, id} pairs.
  struct {
    std::uint64_t nr;
    struct {
      std::uint64_t value;
      std::uint64_t id;
    } values[kEvents];
  } buf;
  std::memset(&buf, 0, sizeof(buf));
  const auto got = read(fds_[0], &buf, sizeof(buf));
  if (got < static_cast<ssize_t>(sizeof(std::uint64_t))) return s;

  std::uint64_t out[kEvents] = {0, 0, 0, 0};
  for (std::uint64_t v = 0; v < buf.nr && v < kEvents; ++v) {
    for (int i = 0; i < kEvents; ++i) {
      if (fds_[i] >= 0 && ids_[i] == buf.values[v].id) {
        out[i] = buf.values[v].value;
        break;
      }
    }
  }
  s.available = true;
  s.cycles = out[0];
  s.instructions = out[1];
  s.llc_misses = out[2];
  s.stalled_cycles = out[3];
  return s;
}

#else  // !__linux__

PerfGroup::PerfGroup() {}
PerfGroup::~PerfGroup() {}
void PerfGroup::start() {}
PerfSample PerfGroup::stop() { return PerfSample{}; }

#endif  // __linux__

bool perf_available() {
  static const bool ok = [] {
    PerfGroup probe;
    return probe.available();
  }();
  return ok;
}

namespace {

PerfGroup& scope_group() {
  // One lazily-opened group per thread: PerfScope never contends and never
  // opens fds on the disabled path (this function is only reached enabled).
  thread_local PerfGroup group;
  return group;
}

}  // namespace

void PerfScope::begin(const char* name) {
  name_ = name;
  scope_group().start();
}

void PerfScope::finish() {
  const PerfSample s = scope_group().stop();
  const std::string prefix = std::string("perf.") + name_;
  // Hardware counts vary run to run — volatile section only, so the
  // deterministic fingerprint stays thread-count/HW independent.
  gauge(prefix + ".available", s.available ? 1.0 : 0.0, /*is_volatile=*/true);
  gauge(prefix + ".cycles", static_cast<double>(s.cycles), true);
  gauge(prefix + ".instructions", static_cast<double>(s.instructions), true);
  gauge(prefix + ".llc_misses", static_cast<double>(s.llc_misses), true);
  gauge(prefix + ".stalled_cycles", static_cast<double>(s.stalled_cycles),
        true);
  gauge(prefix + ".dram_bytes", static_cast<double>(s.dram_bytes()), true);
  gauge(prefix + ".ipc", s.ipc(), true);
}

}  // namespace cmesolve::obs
