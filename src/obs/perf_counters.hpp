#pragma once
//
// Hardware-counter attribution via Linux perf_event_open: one counter group
// (cycles leader + instructions, LLC misses, stalled backend cycles) sampled
// over a measured region, so the benches' modeled-DRAM-bytes arguments get a
// measured crosscheck (DRAM bytes ~= LLC misses x 64-byte lines).
//
// Degradation matrix (see DESIGN.md §14) — the API never fails, it degrades:
//   * non-Linux build              -> available()=false, all counters zero
//   * perf_event_paranoid too high -> available()=false, all counters zero
//   * container/seccomp blocks the syscall            -> same
//   * a MEMBER event unsupported (e.g. LLC-misses on some VMs) -> that
//     counter reads zero, the rest of the group still counts
// Consumers branch on PerfSample::available (and reports carry a
// `perf_available` provenance flag) instead of ifdef'ing.
//
// Scheduling note: the group is pinned to the calling thread+CPU-any and
// read with PERF_FORMAT_GROUP, so all members cover the identical window.
// Counter values are run-varying by nature — publish them as VOLATILE
// metrics only, never into the deterministic section.
//
// Disabled cost: PerfScope checks one relaxed atomic before touching any fd
// (bench/obs_overhead budgets the disabled site like trace/metrics sites).
//
#include <atomic>
#include <cstdint>

namespace cmesolve::obs {

namespace detail {
extern std::atomic<bool> g_perf_on;  ///< defined in perf_counters.cpp
}  // namespace detail

inline bool perf_enabled() {
  return detail::g_perf_on.load(std::memory_order_relaxed);
}

/// Global switch for PerfScope sites (counter groups are a finite kernel
/// resource; instrumented hot paths stay free unless a bench opts in).
void set_perf_enabled(bool on);

/// One reading of the counter group over a start()..stop() window.
struct PerfSample {
  bool available = false;  ///< false => every field below is zero
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  std::uint64_t stalled_cycles = 0;  ///< backend stall cycles

  /// Measured DRAM traffic estimate: every LLC miss moves one cache line.
  [[nodiscard]] std::uint64_t dram_bytes() const { return llc_misses * 64; }
  [[nodiscard]] double ipc() const {
    return cycles > 0 ? static_cast<double>(instructions) /
                            static_cast<double>(cycles)
                      : 0.0;
  }
};

/// A perf_event counter group bound to the calling thread. Construction
/// opens the group (or degrades); start()/stop() bracket measured regions
/// and may be reused for multiple windows.
class PerfGroup {
 public:
  PerfGroup();
  ~PerfGroup();
  PerfGroup(const PerfGroup&) = delete;
  PerfGroup& operator=(const PerfGroup&) = delete;

  /// True when the group leader opened; individual members may still be
  /// degraded (their counters read zero).
  [[nodiscard]] bool available() const { return fds_[0] >= 0; }

  void start();              ///< reset + enable the group
  [[nodiscard]] PerfSample stop();  ///< disable + read

 private:
  static constexpr int kEvents = 4;  // cycles, instr, llc-miss, stalls
  int fds_[kEvents] = {-1, -1, -1, -1};
  std::uint64_t ids_[kEvents] = {0, 0, 0, 0};
};

/// Cheap probe (opens and closes a throwaway group once, cached): can this
/// process count hardware events at all? Reports stamp this into provenance.
bool perf_available();

/// RAII sampling span: when set_perf_enabled(true), measures the enclosed
/// region and publishes `perf.<name>.{cycles,instructions,llc_misses,
/// stalled_cycles,dram_bytes,ipc}` as VOLATILE gauges; disabled it is one
/// relaxed load. The underlying group is a lazily-opened thread_local, so
/// nested scopes on one thread serialize on the same group (inner wins).
class PerfScope {
 public:
  explicit PerfScope(const char* name) {
    if (perf_enabled()) begin(name);
  }
  ~PerfScope() {
    if (name_ != nullptr) finish();
  }
  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

 private:
  void begin(const char* name);  ///< out-of-line slow path
  void finish();
  const char* name_ = nullptr;
};

}  // namespace cmesolve::obs
