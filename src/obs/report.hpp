#pragma once
//
// Run-report writer: serializes the metric registry plus build/config
// provenance to a stable JSON schema ("cmesolve.run_report/1"):
//
//   {
//     "schema": "cmesolve.run_report/1",
//     "provenance": { "version", "git", "threads", "openmp",
//                     "threads_enabled", ...free-form context kv... },
//     "metrics":  { "counters": {..}, "gauges": {..},
//                   "histograms": { name: {count,min,max,mean,stddev} } },
//     "volatile": { "gauges": {..}, "histograms": {..} }   // wall-clock etc.
//   }
//
// The "metrics" section is deterministic (bit-identical across thread
// counts); "volatile" holds run-varying values like host wall-clock.
//
#include <iosfwd>
#include <string>

namespace cmesolve::obs {

/// Free-form provenance key/value merged into the "provenance" object
/// (e.g. "program", "format", "scale", "device.name"). Last set wins.
void set_context(const std::string& key, const std::string& value);

/// Serialize the current registry + provenance as a run report.
void write_report(std::ostream& os);
bool write_report_file(const std::string& path);

/// Output paths. CMESOLVE_TRACE / CMESOLVE_REPORT set these at startup;
/// programmatic sinks may override. Empty = no file output.
void set_trace_path(const std::string& path);
void set_report_path(const std::string& path);
std::string trace_path();
std::string report_path();

/// Write the trace and/or report to their configured paths (no-op for unset
/// paths). Idempotent per path; also registered via atexit when either env
/// var is present, so instrumented binaries need no explicit call.
void flush_outputs();

}  // namespace cmesolve::obs
