#pragma once
//
// Run-report writer: serializes the metric registry plus build/config
// provenance to a stable JSON schema ("cmesolve.run_report/2"):
//
//   {
//     "schema": "cmesolve.run_report/2",
//     "provenance": { "version", "git", "threads", "openmp",
//                     "threads_enabled", "perf_available",
//                     ...free-form context kv... },
//     "metrics":  { "counters": {..}, "gauges": {..},
//                   "histograms": { name: {count,min,max,mean,stddev} } },
//     "volatile": { "gauges": {..}, "histograms": {..} },  // wall-clock etc.
//     "flight":   { "post_mortem": str|null, "capacity", "overwritten",
//                   "signature",
//                   "events": [ {track,kind,iteration,lane?,value} ] }
//   }
//
// /2 is additive over /1: "perf_available" and the optional "flight"
// post-mortem section (present when the flight recorder was enabled; its
// events are iteration-indexed with no timestamps, so the section is
// bit-identical across thread counts). The "metrics" section is
// deterministic (bit-identical across thread counts); "volatile" holds
// run-varying values like host wall-clock.
//
// The same registry also serializes as a bench-ledger record
// ("cmesolve.bench/1"): provenance + two FLAT name->number maps
// ("deterministic" compared exactly by tools/cme_bench_diff, "volatile"
// held to a ratio band; histograms flatten to .count/.min/.max/.mean).
//
#include <iosfwd>
#include <string>

namespace cmesolve::obs {

/// Free-form provenance key/value merged into the "provenance" object
/// (e.g. "program", "format", "scale", "device.name"). Last set wins.
void set_context(const std::string& key, const std::string& value);

/// Serialize the current registry + provenance as a run report.
void write_report(std::ostream& os);
bool write_report_file(const std::string& path);

/// Serialize the current registry + provenance as a regression-ledger bench
/// record ("cmesolve.bench/1", see tools/cme_bench_diff).
void write_bench_record(std::ostream& os);
bool write_bench_record_file(const std::string& path);

/// Output paths. CMESOLVE_TRACE / CMESOLVE_REPORT / CMESOLVE_FLIGHT /
/// CMESOLVE_BENCH set these at startup; programmatic sinks may override.
/// Empty = no file output.
void set_trace_path(const std::string& path);
void set_report_path(const std::string& path);
std::string trace_path();
std::string report_path();
void set_bench_path(const std::string& path);
std::string bench_path();
// (set_flight_path / flight_path live in obs/flight_recorder.hpp.)

/// Write the trace/report/flight/bench outputs to their configured paths
/// (no-op for unset paths). Idempotent per path; also registered via atexit
/// when any of the env vars is present, so instrumented binaries need no
/// explicit call.
void flush_outputs();

}  // namespace cmesolve::obs
