//
// Single implementation TU for the observability layer (trace buffer, metric
// registry, run-report writer, env-var activation). Keeping everything in one
// TU guarantees that any use of the inline fast paths links the definitions
// of the enable flags AND the env initializer below — so CMESOLVE_TRACE /
// CMESOLVE_REPORT work in every binary that touches obs, without each main()
// having to opt in.
//
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <ostream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/perf_counters.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"

#ifndef CMESOLVE_VERSION
#define CMESOLVE_VERSION "0.0.0"
#endif
#ifndef CMESOLVE_GIT_DESCRIBE
#define CMESOLVE_GIT_DESCRIBE "unknown"
#endif

namespace cmesolve::obs {

namespace detail {
// Zero-initialized: constant initialization, valid before any dynamic init.
std::atomic<bool> g_trace_on{false};
std::atomic<bool> g_metrics_on{false};
std::atomic<bool> g_flight_on{false};
thread_local int t_suppress_depth = 0;
}  // namespace detail

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

namespace {

/// Cap the buffer so a 10^6-iteration instrumented solve cannot exhaust
/// memory; overflow is counted and surfaced in the trace metadata.
constexpr std::size_t kMaxEvents = 1u << 22;  // ~4M events

struct TracerState {
  mutable std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint64_t dropped = 0;
  std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  std::map<std::thread::id, std::uint32_t> tids;

  std::uint32_t tid_locked() {
    const auto id = std::this_thread::get_id();
    auto it = tids.find(id);
    if (it != tids.end()) return it->second;
    const auto dense = static_cast<std::uint32_t>(tids.size());
    tids.emplace(id, dense);
    return dense;
  }

  void push(const char* name, char phase, double value) {
    std::lock_guard<std::mutex> lock(mu);
    if (events.size() >= kMaxEvents) {
      ++dropped;
      return;
    }
    const auto now = std::chrono::steady_clock::now();
    TraceEvent ev;
    ev.name = name;
    ev.phase = phase;
    ev.tid = tid_locked();
    ev.ts_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - epoch)
            .count());
    ev.value = value;
    events.push_back(std::move(ev));
  }
};

TracerState& tracer_state() {
  static TracerState state;
  return state;
}

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Tracer& Tracer::instance() {
  static Tracer tracer;
  return tracer;
}

void Tracer::enable() {
  auto& s = tracer_state();
  {
    std::lock_guard<std::mutex> lock(s.mu);
    s.events.clear();
    s.dropped = 0;
    s.tids.clear();
    s.epoch = std::chrono::steady_clock::now();
  }
  detail::g_trace_on.store(true, std::memory_order_relaxed);
}

void Tracer::disable() {
  detail::g_trace_on.store(false, std::memory_order_relaxed);
}

void Tracer::clear() {
  auto& s = tracer_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.events.clear();
  s.dropped = 0;
  s.tids.clear();
}

void Tracer::begin(const char* name) { tracer_state().push(name, 'B', 0.0); }
void Tracer::end(const char* name) { tracer_state().push(name, 'E', 0.0); }
void Tracer::instant(const char* name) { tracer_state().push(name, 'i', 0.0); }
void Tracer::counter(const char* name, double value) {
  tracer_state().push(name, 'C', value);
}

std::size_t Tracer::size() const {
  auto& s = tracer_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.events.size();
}

std::uint64_t Tracer::dropped() const {
  auto& s = tracer_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.dropped;
}

std::int64_t Tracer::open_spans() const {
  auto& s = tracer_state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::int64_t open = 0;
  for (const auto& ev : s.events) {
    if (ev.phase == 'B') ++open;
    if (ev.phase == 'E') --open;
  }
  return open;
}

std::uint64_t Tracer::content_signature() const {
  auto& s = tracer_state();
  std::lock_guard<std::mutex> lock(s.mu);
  // Order-independent fold (sum of per-event hashes): concurrent spans from
  // different threads may interleave differently run-to-run, but the *set*
  // of events is deterministic.
  std::uint64_t sig = 0;
  for (const auto& ev : s.events) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    h = fnv1a(h, ev.name.data(), ev.name.size());
    h = fnv1a(h, &ev.phase, sizeof(ev.phase));
    h = fnv1a(h, &ev.value, sizeof(ev.value));
    sig += h;
  }
  return sig;
}

std::vector<TraceEvent> Tracer::events() const {
  auto& s = tracer_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.events;
}

void Tracer::write_json(std::ostream& os) const {
  auto& s = tracer_state();
  std::lock_guard<std::mutex> lock(s.mu);
  JsonWriter w(os, /*indent=*/0);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const auto& ev : s.events) {
    w.begin_object();
    w.kv("name", std::string_view(ev.name));
    w.key("ph").value(std::string_view(&ev.phase, 1));
    // trace_event timestamps are microseconds (double => sub-us resolution).
    w.kv("ts", static_cast<double>(ev.ts_ns) / 1000.0);
    w.kv("pid", std::int64_t{1});
    w.kv("tid", static_cast<std::int64_t>(ev.tid));
    if (ev.phase == 'C') {
      w.key("args").begin_object();
      w.kv("value", ev.value);
      w.end_object();
    } else if (ev.phase == 'i') {
      w.kv("s", "t");  // instant scope: thread
    }
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ns");
  w.key("otherData").begin_object();
  w.kv("tool", "cmesolve");
  w.kv("dropped_events", s.dropped);
  w.end_object();
  w.end_object();
  os << '\n';
}

bool Tracer::write_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  write_json(os);
  return os.good();
}

void TraceSpan::emit_begin() { Tracer::instance().begin(name_); }
void TraceSpan::emit_end() { Tracer::instance().end(name_); }

// ---------------------------------------------------------------------------
// MetricRegistry
// ---------------------------------------------------------------------------

namespace {

struct RegistryState {
  mutable std::mutex mu;
  std::map<std::string, Metric> metrics;
};

RegistryState& registry_state() {
  static RegistryState state;
  return state;
}

void format_double(std::ostream& os, double d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  os << buf;
}

}  // namespace

MetricRegistry& MetricRegistry::instance() {
  static MetricRegistry registry;
  return registry;
}

void set_metrics_enabled(bool on) {
  detail::g_metrics_on.store(on, std::memory_order_relaxed);
}

void MetricRegistry::add_counter(const std::string& name, std::uint64_t delta) {
  auto& s = registry_state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto& m = s.metrics[name];
  m.kind = MetricKind::kCounter;
  m.count += delta;
}

void MetricRegistry::set_gauge(const std::string& name, double value,
                               bool is_volatile) {
  auto& s = registry_state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto& m = s.metrics[name];
  m.kind = MetricKind::kGauge;
  m.is_volatile = is_volatile;
  m.gauge = value;
}

void MetricRegistry::observe(const std::string& name, double value,
                             bool is_volatile) {
  auto& s = registry_state();
  std::lock_guard<std::mutex> lock(s.mu);
  auto& m = s.metrics[name];
  m.kind = MetricKind::kHistogram;
  m.is_volatile = is_volatile;
  m.stats.add(value);
}

void MetricRegistry::clear() {
  auto& s = registry_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.metrics.clear();
}

std::size_t MetricRegistry::size() const {
  auto& s = registry_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.metrics.size();
}

bool MetricRegistry::empty() const { return size() == 0; }

std::map<std::string, Metric> MetricRegistry::snapshot() const {
  auto& s = registry_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.metrics;
}

std::string MetricRegistry::deterministic_fingerprint() const {
  const auto snap = snapshot();
  std::ostringstream os;
  for (const auto& [name, m] : snap) {
    if (m.is_volatile) continue;
    os << name << '|';
    switch (m.kind) {
      case MetricKind::kCounter:
        os << "counter|" << m.count;
        break;
      case MetricKind::kGauge:
        os << "gauge|";
        format_double(os, m.gauge);
        break;
      case MetricKind::kHistogram:
        os << "hist|" << m.stats.count() << '|';
        format_double(os, m.stats.min());
        os << '|';
        format_double(os, m.stats.max());
        os << '|';
        format_double(os, m.stats.mean());
        os << '|';
        format_double(os, m.stats.variance());
        break;
    }
    os << '\n';
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Run report + context + output paths
// ---------------------------------------------------------------------------

namespace {

struct ObsState {
  std::mutex mu;
  std::map<std::string, std::string> context;
  std::string trace_path;
  std::string report_path;
  std::string flight_path;
  std::string bench_path;
  std::set<std::string> flushed;  ///< paths already written by flush_outputs
};

ObsState& obs_state() {
  static ObsState state;
  return state;
}

void write_histogram(JsonWriter& w, const Metric& m) {
  w.begin_object();
  w.kv("count", m.stats.count());
  w.kv("min", static_cast<double>(m.stats.min()));
  w.kv("max", static_cast<double>(m.stats.max()));
  w.kv("mean", static_cast<double>(m.stats.mean()));
  w.kv("stddev", static_cast<double>(m.stats.stddev()));
  w.end_object();
}

void write_metric_sections(JsonWriter& w,
                           const std::map<std::string, Metric>& snap,
                           bool volatile_section) {
  w.key("counters").begin_object();
  for (const auto& [name, m] : snap) {
    if (m.kind == MetricKind::kCounter && m.is_volatile == volatile_section) {
      w.kv(name, m.count);
    }
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, m] : snap) {
    if (m.kind == MetricKind::kGauge && m.is_volatile == volatile_section) {
      w.kv(name, m.gauge);
    }
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, m] : snap) {
    if (m.kind == MetricKind::kHistogram &&
        m.is_volatile == volatile_section) {
      w.key(name);
      write_histogram(w, m);
    }
  }
  w.end_object();
}

/// The fixed provenance fields written by write_report/write_bench_record;
/// a context entry reusing one would emit a duplicate JSON key and break
/// strict parsers.
bool is_fixed_provenance_key(const std::string& key) {
  return key == "version" || key == "git" || key == "threads" ||
         key == "openmp" || key == "threads_enabled" ||
         key == "perf_available" || key == "simd";
}

void write_provenance(JsonWriter& w,
                      const std::map<std::string, std::string>& context) {
  w.key("provenance").begin_object();
  w.kv("version", CMESOLVE_VERSION);
  w.kv("git", CMESOLVE_GIT_DESCRIBE);
  w.kv("threads", static_cast<std::int64_t>(util::max_threads()));
#ifdef _OPENMP
  w.kv("openmp", true);
#else
  w.kv("openmp", false);
#endif
#ifdef CMESOLVE_THREADS_ENABLED
  w.kv("threads_enabled", true);
#else
  w.kv("threads_enabled", false);
#endif
  w.kv("perf_available", perf_available());
  // The SIMD ISA the kernel dispatcher selected (detected or forced via
  // CMESOLVE_SIMD) — resolved at report time, after any test overrides.
  w.kv("simd", std::string_view(util::simd::active_isa_name()));
  for (const auto& [key, value] : context) {
    if (is_fixed_provenance_key(key)) continue;
    w.kv(key, std::string_view(value));
  }
  w.end_object();
}

/// The run report's post-mortem flight section. Everything here derives from
/// iteration-indexed events recorded on the calling thread — no timestamps,
/// no thread ids — so the serialized section is bit-identical across
/// CMESOLVE_THREADS (the test suite diffs it at 1/2/8).
void write_flight_section(JsonWriter& w) {
  auto& rec = FlightRecorder::instance();
  const auto evs = rec.events();
  w.key("flight").begin_object();
  if (rec.post_mortem()) {
    w.kv("post_mortem", std::string_view(rec.post_mortem_reason()));
  } else {
    w.key("post_mortem").null();
  }
  w.kv("capacity", static_cast<std::uint64_t>(rec.capacity()));
  w.kv("overwritten", rec.overwritten());
  char sig[32];
  std::snprintf(sig, sizeof(sig), "%016llx",
                static_cast<unsigned long long>(rec.content_signature()));
  w.kv("signature", sig);
  w.key("events").begin_array();
  for (const auto& ev : evs) {
    w.begin_object();
    w.kv("track", ev.track);
    w.kv("kind", to_string(ev.kind));
    w.kv("iteration", ev.iteration);
    if (ev.lane > 0) w.kv("lane", static_cast<std::uint64_t>(ev.lane));
    w.kv("value", ev.value);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace

void set_context(const std::string& key, const std::string& value) {
  auto& s = obs_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.context[key] = value;
}

void write_report(std::ostream& os) {
  std::map<std::string, std::string> context;
  {
    auto& s = obs_state();
    std::lock_guard<std::mutex> lock(s.mu);
    context = s.context;
  }
  const auto snap = MetricRegistry::instance().snapshot();

  JsonWriter w(os, /*indent=*/2);
  w.begin_object();
  // /2 is an additive bump over /1: provenance gains "perf_available" and a
  // "flight" section appears when the flight recorder was ever enabled.
  // verify::validate_run_report accepts both versions.
  w.kv("schema", "cmesolve.run_report/2");

  write_provenance(w, context);

  w.key("metrics").begin_object();
  write_metric_sections(w, snap, /*volatile_section=*/false);
  w.end_object();

  w.key("volatile").begin_object();
  write_metric_sections(w, snap, /*volatile_section=*/true);
  w.end_object();

  if (FlightRecorder::instance().capacity() > 0) {
    write_flight_section(w);
  }

  w.end_object();
  os << '\n';
}

// ---------------------------------------------------------------------------
// Bench record (cmesolve.bench/1) — the regression-ledger unit
// ---------------------------------------------------------------------------

namespace {

/// Flatten the registry into two name->number maps: "deterministic" must
/// compare EXACTLY between a fresh run and the checked-in baseline (that is
/// the repo's determinism contract doing ledger duty); "volatile" carries
/// wall-clock-like values that cme_bench_diff holds to a ratio band.
/// Histograms expand to .count/.min/.max/.mean so the differ only ever sees
/// scalars.
void write_flat_metrics(JsonWriter& w, const std::map<std::string, Metric>& snap,
                        bool volatile_section) {
  for (const auto& [name, m] : snap) {
    if (m.is_volatile != volatile_section) continue;
    switch (m.kind) {
      case MetricKind::kCounter:
        w.kv(name, m.count);
        break;
      case MetricKind::kGauge:
        w.kv(name, m.gauge);
        break;
      case MetricKind::kHistogram:
        w.kv(name + ".count", m.stats.count());
        w.kv(name + ".min", static_cast<double>(m.stats.min()));
        w.kv(name + ".max", static_cast<double>(m.stats.max()));
        w.kv(name + ".mean", static_cast<double>(m.stats.mean()));
        break;
    }
  }
}

}  // namespace

void write_bench_record(std::ostream& os) {
  std::map<std::string, std::string> context;
  {
    auto& s = obs_state();
    std::lock_guard<std::mutex> lock(s.mu);
    context = s.context;
  }
  const auto snap = MetricRegistry::instance().snapshot();

  JsonWriter w(os, /*indent=*/2);
  w.begin_object();
  w.kv("schema", "cmesolve.bench/1");
  write_provenance(w, context);
  w.key("deterministic").begin_object();
  write_flat_metrics(w, snap, /*volatile_section=*/false);
  w.end_object();
  w.key("volatile").begin_object();
  write_flat_metrics(w, snap, /*volatile_section=*/true);
  w.end_object();
  w.end_object();
  os << '\n';
}

bool write_bench_record_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_bench_record(os);
  return os.good();
}

bool write_report_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_report(os);
  return os.good();
}

void set_trace_path(const std::string& path) {
  auto& s = obs_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.trace_path = path;
  s.flushed.erase(path);
}

void set_report_path(const std::string& path) {
  auto& s = obs_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.report_path = path;
  s.flushed.erase(path);
}

std::string trace_path() {
  auto& s = obs_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.trace_path;
}

std::string report_path() {
  auto& s = obs_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.report_path;
}

void set_flight_path(const std::string& path) {
  auto& s = obs_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.flight_path = path;
  s.flushed.erase(path);
}

std::string flight_path() {
  auto& s = obs_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.flight_path;
}

void set_bench_path(const std::string& path) {
  auto& s = obs_state();
  std::lock_guard<std::mutex> lock(s.mu);
  s.bench_path = path;
  s.flushed.erase(path);
}

std::string bench_path() {
  auto& s = obs_state();
  std::lock_guard<std::mutex> lock(s.mu);
  return s.bench_path;
}

void flush_outputs() {
  std::string trace;
  std::string report;
  std::string flight;
  std::string bench;
  {
    auto& s = obs_state();
    std::lock_guard<std::mutex> lock(s.mu);
    if (!s.trace_path.empty() && s.flushed.insert(s.trace_path).second) {
      trace = s.trace_path;
    }
    if (!s.report_path.empty() && s.flushed.insert(s.report_path).second) {
      report = s.report_path;
    }
    if (!s.flight_path.empty() && s.flushed.insert(s.flight_path).second) {
      flight = s.flight_path;
    }
    if (!s.bench_path.empty() && s.flushed.insert(s.bench_path).second) {
      bench = s.bench_path;
    }
  }
  if (!trace.empty() && !Tracer::instance().write_file(trace)) {
    std::fprintf(stderr, "cmesolve: failed to write trace to %s\n",
                 trace.c_str());
  }
  if (!report.empty() && !write_report_file(report)) {
    std::fprintf(stderr, "cmesolve: failed to write report to %s\n",
                 report.c_str());
  }
  if (!flight.empty() && !FlightRecorder::instance().write_file(flight)) {
    std::fprintf(stderr, "cmesolve: failed to write flight trace to %s\n",
                 flight.c_str());
  }
  if (!bench.empty() && !write_bench_record_file(bench)) {
    std::fprintf(stderr, "cmesolve: failed to write bench record to %s\n",
                 bench.c_str());
  }
}

// ---------------------------------------------------------------------------
// Environment activation
// ---------------------------------------------------------------------------

namespace {

/// Dynamic initializer: reads CMESOLVE_TRACE / CMESOLVE_REPORT /
/// CMESOLVE_FLIGHT / CMESOLVE_BENCH once at program startup (of any binary
/// that links this TU) and arranges an atexit flush so instrumented programs
/// produce their files without code changes.
struct EnvInit {
  EnvInit() {
    const char* trace = std::getenv("CMESOLVE_TRACE");
    const char* report = std::getenv("CMESOLVE_REPORT");
    const char* flight = std::getenv("CMESOLVE_FLIGHT");
    const char* bench = std::getenv("CMESOLVE_BENCH");
    bool flush_at_exit = false;
    if (trace != nullptr && trace[0] != '\0') {
      set_trace_path(trace);
      Tracer::instance().enable();
      flush_at_exit = true;
    }
    if (report != nullptr && report[0] != '\0') {
      set_report_path(report);
      set_metrics_enabled(true);
      flush_at_exit = true;
    }
    if (flight != nullptr && flight[0] != '\0') {
      set_flight_path(flight);
      FlightRecorder::instance().enable();
      flush_at_exit = true;
    }
    if (bench != nullptr && bench[0] != '\0') {
      // The ledger record is a view of the metric registry, so the registry
      // must be live for the record to carry anything.
      set_bench_path(bench);
      set_metrics_enabled(true);
      flush_at_exit = true;
    }
    if (flush_at_exit) {
      std::atexit([] { flush_outputs(); });
    }
  }
};

EnvInit g_env_init;

}  // namespace

}  // namespace cmesolve::obs
