#pragma once
//
// Trace-span API: RAII scopes plus instant/counter events, exported as Chrome
// trace_event JSON (loadable in chrome://tracing and Perfetto).
//
// Design constraints (see DESIGN.md §9):
//  * Near-zero overhead when disabled: every entry point first checks one
//    relaxed atomic flag; disabled macros cost a load + predictable branch.
//  * Thread-safe buffering that composes with the PR-1 thread pool: events
//    append to one mutex-guarded buffer; thread ids are normalized to small
//    dense ids so traces are readable.
//  * Deterministic in *content*: the set of (name, phase) events produced by
//    a deterministic computation is independent of the thread count, because
//    instrumented code only emits from the calling thread (pool-internal work
//    is instrumented at the dispatch site, not inside tasks). Timestamps and
//    thread ids are explicitly excluded from the determinism contract —
//    content_signature() folds only names/phases/values.
//
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace cmesolve::obs {

namespace detail {
/// Zero-initialized (constant-init) so checks before dynamic init read
/// "disabled". Defined in telemetry.cpp, whose dynamic initializer reads
/// CMESOLVE_TRACE and flips it on.
extern std::atomic<bool> g_trace_on;
}  // namespace detail

/// Fast path used by all macros; safe to call at any point of program
/// startup/shutdown.
inline bool trace_enabled() {
  return detail::g_trace_on.load(std::memory_order_relaxed);
}

/// One buffered trace event. `ts_ns` is relative to the tracer's enable
/// epoch (converted to microseconds on export, as trace_event wants).
struct TraceEvent {
  std::string name;
  char phase = 'i';       ///< 'B' begin, 'E' end, 'i' instant, 'C' counter
  std::uint32_t tid = 0;  ///< dense thread id (0 = first thread seen)
  std::uint64_t ts_ns = 0;
  double value = 0.0;  ///< counter payload (phase 'C' only)
};

/// Process-wide trace buffer. Singleton; all methods are thread-safe.
class Tracer {
 public:
  static Tracer& instance();

  void enable();   ///< clears the buffer and starts a new epoch
  void disable();  ///< stops recording (buffer is kept for export)
  void clear();

  void begin(const char* name);
  void end(const char* name);
  void instant(const char* name);
  void counter(const char* name, double value);

  std::size_t size() const;
  std::uint64_t dropped() const;  ///< events discarded past the buffer cap
  /// Open (unmatched) B spans; 0 in any quiescent state.
  std::int64_t open_spans() const;

  /// Order-independent FNV-1a fold over (name, phase, value) — excludes
  /// timestamps and thread ids per the determinism contract.
  std::uint64_t content_signature() const;

  /// Chrome trace_event "JSON Object Format":
  /// {"traceEvents": [...], "displayTimeUnit": "ns", ...}.
  void write_json(std::ostream& os) const;
  bool write_file(const std::string& path) const;

  /// Copy of the buffer, for tests.
  std::vector<TraceEvent> events() const;

 private:
  Tracer() = default;
};

/// RAII span. Captures the enabled flag once at construction so a span that
/// straddles enable/disable stays balanced.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name) : name_(name), active_(trace_enabled()) {
    if (active_) emit_begin();
  }
  ~TraceSpan() {
    if (active_) emit_end();
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  void emit_begin();
  void emit_end();
  const char* name_;
  bool active_;
};

}  // namespace cmesolve::obs

#define CMESOLVE_OBS_CONCAT2(a, b) a##b
#define CMESOLVE_OBS_CONCAT(a, b) CMESOLVE_OBS_CONCAT2(a, b)

/// RAII scope covering the rest of the enclosing block.
#define CMESOLVE_TRACE_SPAN(name)                  \
  ::cmesolve::obs::TraceSpan CMESOLVE_OBS_CONCAT(  \
      cmesolve_trace_span_, __LINE__)(name)

#define CMESOLVE_TRACE_INSTANT(name)                       \
  do {                                                     \
    if (::cmesolve::obs::trace_enabled())                  \
      ::cmesolve::obs::Tracer::instance().instant(name);   \
  } while (0)

#define CMESOLVE_TRACE_COUNTER(name, value)                \
  do {                                                     \
    if (::cmesolve::obs::trace_enabled())                  \
      ::cmesolve::obs::Tracer::instance().counter(         \
          (name), static_cast<double>(value));             \
  } while (0)
