#include "serve/cache.hpp"

#include <cmath>
#include <limits>
#include <utility>

#include "verify/repro_io.hpp"

namespace cmesolve::serve {

std::string cache_key(const verify::Scenario& sc) {
  return verify::serialize_repro(sc);
}

std::string family_key(const verify::Scenario& sc) {
  verify::Scenario skel = sc;
  skel.name.clear();
  skel.seed = 0;
  skel.archetype.clear();
  for (auto& r : skel.reactions) r.rate = 1.0;
  return verify::serialize_repro(skel);
}

std::vector<real_t> log_rates(const verify::Scenario& sc) {
  std::vector<real_t> out;
  out.reserve(sc.reactions.size());
  for (const auto& r : sc.reactions) {
    if (!(r.rate > 0.0)) return {};
    out.push_back(std::log(r.rate));
  }
  return out;
}

real_t log_rate_dist2(const std::vector<real_t>& a,
                      const std::vector<real_t>& b) {
  if (a.empty() || a.size() != b.size()) {
    return std::numeric_limits<real_t>::infinity();
  }
  real_t s = 0.0;
  for (std::size_t j = 0; j < a.size(); ++j) {
    const real_t dl = a[j] - b[j];
    s += dl * dl;
  }
  return s;
}

std::shared_ptr<const std::vector<real_t>> ResultCache::find_exact(
    const std::string& key) {
  std::lock_guard<std::mutex> lk(m_);
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.exact_misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.exact_hits;
  return it->second->p;
}

std::optional<WarmSeed> ResultCache::find_near(const std::string& family,
                                               const std::vector<real_t>& logr,
                                               real_t max_dist2) {
  std::lock_guard<std::mutex> lk(m_);
  const Entry* best = nullptr;
  real_t best_d = max_dist2;
  for (const Entry& e : lru_) {
    if (e.family != family) continue;
    const real_t d = log_rate_dist2(logr, e.logr);
    if (d > best_d) continue;
    // Strictly-closer replaces; ties keep the first hit, which is the most
    // recently inserted/served entry (iteration is LRU-front-first).
    if (best == nullptr || d < best_d) {
      best = &e;
      best_d = d;
    }
  }
  if (best == nullptr) {
    ++stats_.warm_misses;
    return std::nullopt;
  }
  ++stats_.warm_hits;
  return WarmSeed{*best->p, best_d, best->key};
}

void ResultCache::insert(const std::string& key, const std::string& family,
                         std::vector<real_t> logr, std::vector<real_t> p) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lk(m_);
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->logr = std::move(logr);
    it->second->p =
        std::make_shared<const std::vector<real_t>>(std::move(p));
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{
      key, family, std::move(logr),
      std::make_shared<const std::vector<real_t>>(std::move(p))});
  index_.emplace(key, lru_.begin());
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++stats_.evictions;
  }
  stats_.entries = lru_.size();
}

CacheStats ResultCache::stats() const {
  std::lock_guard<std::mutex> lk(m_);
  CacheStats s = stats_;
  s.entries = lru_.size();
  return s;
}

std::size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lk(m_);
  return lru_.size();
}

}  // namespace cmesolve::serve
