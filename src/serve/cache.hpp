#pragma once
//
// Result / warm-start cache for the solver daemon (DESIGN.md §15).
//
// Two lookup paths over one LRU store:
//
//   * Exact: keyed by the canonical .repro.json bytes of the scenario
//     (serialize_repro is byte-stable by contract — repro_io.hpp — so equal
//     scenarios hash equal and the cached stationary vector can be returned
//     bitwise-identical to the cold solve that produced it).
//   * Nearest-neighbor warm start: keyed by the scenario's *family* — the
//     canonical bytes with the rate vector and identity fields (name, seed,
//     archetype) blanked out. Requests in the same family share topology,
//     capacities, initial state and solver configuration, so their state
//     spaces enumerate identically and a cached stationary vector is a
//     legal initial iterate. The probe picks the family entry closest in
//     log-rate space (the PR-6 continuation metric: squared Euclidean
//     distance over log r_j) within `max_dist2`.
//
// Thread safety: every public method locks an internal mutex; the serve
// worker pool probes and inserts concurrently.
//
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/types.hpp"
#include "verify/scenario.hpp"

#include <mutex>

namespace cmesolve::serve {

/// Canonical cache key: the scenario's byte-stable .repro.json form.
[[nodiscard]] std::string cache_key(const verify::Scenario& sc);

/// Family key: canonical bytes of the scenario with name/seed/archetype
/// blanked and every reaction rate forced to 1.0. Scenarios sharing a
/// family differ ONLY in rates, so they enumerate the same state space in
/// the same order (rates scale matrix entries; they never add or remove
/// reachable states because propensity positivity is rate-independent for
/// positive rates). Jacobi options are deliberately kept in the key:
/// conservative, but it guarantees a warm-started solve runs under the same
/// stopping contract as the entry it borrowed from.
[[nodiscard]] std::string family_key(const verify::Scenario& sc);

/// Per-reaction log rates (the continuation/warm-start coordinates).
/// Empty when any rate is non-positive — such scenarios never warm-start,
/// because the log-space metric is undefined for them.
[[nodiscard]] std::vector<real_t> log_rates(const verify::Scenario& sc);

/// Squared Euclidean distance in log-rate space; +inf on dimension mismatch
/// or empty coordinates.
[[nodiscard]] real_t log_rate_dist2(const std::vector<real_t>& a,
                                    const std::vector<real_t>& b);

struct CacheStats {
  std::uint64_t exact_hits = 0;
  std::uint64_t exact_misses = 0;
  std::uint64_t warm_hits = 0;    ///< NN probes that returned a seed vector
  std::uint64_t warm_misses = 0;  ///< NN probes that found nothing in range
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::size_t entries = 0;
};

/// A warm-start seed returned by the NN probe.
struct WarmSeed {
  std::vector<real_t> p;   ///< cached stationary vector (copy)
  real_t dist2 = 0.0;      ///< log-rate distance to the request
  std::string source_key;  ///< exact key of the entry it came from
};

class ResultCache {
 public:
  /// `capacity` = maximum resident entries (>= 1; 0 disables the cache).
  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  /// Exact probe. On hit the entry moves to the LRU front and the cached
  /// vector is returned (shared, immutable).
  [[nodiscard]] std::shared_ptr<const std::vector<real_t>> find_exact(
      const std::string& key);

  /// Nearest-neighbor probe within the family: the resident entry with the
  /// smallest log-rate distance <= max_dist2. (Callers probe only after an
  /// exact miss, so a distance-0 result is a whitespace-distinct twin, not
  /// the request itself.) Does not touch LRU order — borrowing a seed is
  /// not the same as serving the entry.
  [[nodiscard]] std::optional<WarmSeed> find_near(
      const std::string& family, const std::vector<real_t>& logr,
      real_t max_dist2);

  /// Insert a converged solution. Replaces an existing entry with the same
  /// key; evicts from the LRU tail when over capacity.
  void insert(const std::string& key, const std::string& family,
              std::vector<real_t> logr, std::vector<real_t> p);

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::size_t size() const;

 private:
  struct Entry {
    std::string key;
    std::string family;
    std::vector<real_t> logr;
    std::shared_ptr<const std::vector<real_t>> p;
  };

  std::size_t capacity_;
  mutable std::mutex m_;
  std::list<Entry> lru_;  ///< front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  CacheStats stats_;
};

}  // namespace cmesolve::serve
