#include "serve/controller.hpp"

#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <utility>

#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "obs/metrics.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"
#include "sparse/csr.hpp"
#include "util/parallel.hpp"
#include "verify/repro_io.hpp"

namespace cmesolve::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::future<SolveResponse> ready_response(SolveResponse r) {
  std::promise<SolveResponse> p;
  p.set_value(std::move(r));
  return p.get_future();
}

}  // namespace

ServeOptions serve_options_from_env() {
  ServeOptions opt;
  const auto env_size = [](const char* name, std::size_t fallback) {
    if (const char* v = std::getenv(name)) {
      const long n = std::atol(v);
      if (n >= 0) return static_cast<std::size_t>(n);
    }
    return fallback;
  };
  if (const char* v = std::getenv("CMESOLVE_SERVE_WORKERS")) {
    const int n = std::atoi(v);
    if (n > 0) opt.workers = n;
  }
  opt.queue_capacity = env_size("CMESOLVE_SERVE_QUEUE_CAP", opt.queue_capacity);
  opt.cache_capacity = env_size("CMESOLVE_SERVE_CACHE_CAP", opt.cache_capacity);
  if (const char* v = std::getenv("CMESOLVE_SERVE_WARM_START")) {
    opt.warm_start = std::atoi(v) != 0;
  }
  if (const char* v = std::getenv("CMESOLVE_SERVE_MAX_DIST")) {
    const double d = std::atof(v);
    if (d >= 0.0) opt.warm_max_dist2 = d;
  }
  return opt;
}

Controller::Controller(ServeOptions opt)
    : opt_(opt), cache_(opt.cache_capacity), paused_(opt.start_paused) {
  if (opt_.workers < 1) opt_.workers = 1;
  workers_.reserve(static_cast<std::size_t>(opt_.workers));
  for (int i = 0; i < opt_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

Controller::~Controller() { shutdown(); }

std::future<SolveResponse> Controller::submit(std::string_view repro_json,
                                              Priority pri) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  verify::Scenario sc;
  try {
    sc = verify::parse_repro(repro_json);
  } catch (const std::exception& e) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    SolveResponse r;
    r.status = Status::kInvalid;
    r.error = e.what();
    return ready_response(std::move(r));
  }
  // Re-serialize for the cache key rather than reusing the input bytes:
  // equivalent documents that differ in whitespace must key identically.
  std::string key = cache_key(sc);
  return admit(std::move(sc), std::move(key), pri);
}

std::future<SolveResponse> Controller::submit(verify::Scenario sc,
                                              Priority pri) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  std::string key = cache_key(sc);
  return admit(std::move(sc), std::move(key), pri);
}

std::future<SolveResponse> Controller::admit(verify::Scenario sc,
                                             std::string key, Priority pri) {
  const auto shed = [this](const char* why) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    SolveResponse r;
    r.status = Status::kShed;
    r.error = why;
    return ready_response(std::move(r));
  };

  std::unique_lock<std::mutex> lk(m_);
  if (!accepting_) return shed("daemon is shutting down");
  if (queued_ >= opt_.queue_capacity) {
    // Full. An incoming request may evict the *youngest lowest-priority*
    // queued request, but only if it strictly outranks it — equal-priority
    // traffic is served in arrival order, never reshuffled.
    int victim = -1;
    for (int lvl = 0; lvl < static_cast<int>(pri); ++lvl) {
      if (!queue_[lvl].empty()) {
        victim = lvl;
        break;
      }
    }
    if (victim < 0) {
      lk.unlock();
      return shed("queue full");
    }
    Request evicted = std::move(queue_[victim].back());
    queue_[victim].pop_back();
    --queued_;
    shed_.fetch_add(1, std::memory_order_relaxed);
    queue_evicted_.fetch_add(1, std::memory_order_relaxed);
    SolveResponse r;
    r.status = Status::kShed;
    r.error = "evicted by a higher-priority request";
    evicted.promise.set_value(std::move(r));
  }
  Request rq;
  rq.sc = std::move(sc);
  rq.key = std::move(key);
  rq.pri = pri;
  rq.enqueued = std::chrono::steady_clock::now();
  std::future<SolveResponse> fut = rq.promise.get_future();
  queue_[static_cast<int>(pri)].push_back(std::move(rq));
  ++queued_;
  lk.unlock();
  cv_.notify_one();
  return fut;
}

void Controller::resume() {
  {
    std::lock_guard<std::mutex> lk(m_);
    paused_ = false;
  }
  cv_.notify_all();
}

void Controller::shutdown() {
  {
    std::lock_guard<std::mutex> lk(m_);
    if (stopping_) return;
    accepting_ = false;
    stopping_ = true;
    paused_ = false;  // a paused daemon still drains what it accepted
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::size_t Controller::queue_depth() const {
  std::lock_guard<std::mutex> lk(m_);
  return queued_;
}

void Controller::worker_loop() {
  for (;;) {
    Request rq;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_.wait(lk, [&] { return (!paused_ && queued_ > 0) || stopping_; });
      if (queued_ == 0) {
        if (stopping_) return;
        continue;
      }
      if (paused_ && !stopping_) continue;
      for (int lvl = 2; lvl >= 0; --lvl) {
        if (!queue_[lvl].empty()) {
          rq = std::move(queue_[lvl].front());
          queue_[lvl].pop_front();
          --queued_;
          break;
        }
      }
    }
    process(rq);
  }
}

void Controller::process(Request& rq) {
  // Inline region: the whole numerical pipeline below takes its serial
  // path, so N workers run N independent solves concurrently without
  // touching the shared pool — and produce bit-identical vectors to a
  // single-threaded daemon. Per-solve metrics are suppressed; the daemon
  // reports aggregates (workload.cpp).
  util::InlineRegion inline_region;
  obs::SuppressMetrics suppress;

  SolveResponse r;
  r.queue_seconds = seconds_since(rq.enqueued);
  const auto started = std::chrono::steady_clock::now();

  if (auto cached = cache_.find_exact(rq.key)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    completed_.fetch_add(1, std::memory_order_relaxed);
    r.status = Status::kOk;
    r.cache_hit = true;
    r.reason = solver::StopReason::kConverged;
    r.p = *cached;
    r.states = r.p.size();
    r.solve_seconds = seconds_since(started);
    rq.promise.set_value(std::move(r));
    return;
  }

  try {
    const core::ReactionNetwork net = verify::build_network(rq.sc);
    const core::StateSpace space(net, rq.sc.initial, rq.sc.max_states);
    if (space.truncated()) {
      throw std::runtime_error("state space truncated at max_states=" +
                               std::to_string(rq.sc.max_states));
    }
    if (space.size() < 2) {
      throw std::runtime_error("degenerate state space (fewer than 2 states)");
    }
    const sparse::Csr a = core::rate_matrix(space);
    const solver::CsrOperator op(a);
    const auto n = static_cast<std::size_t>(a.nrows);
    std::vector<real_t> x(n);

    const std::string family = family_key(rq.sc);
    const std::vector<real_t> logr = log_rates(rq.sc);
    bool warm = false;
    if (opt_.warm_start && !logr.empty()) {
      if (auto seed = cache_.find_near(family, logr, opt_.warm_max_dist2)) {
        // Same family => same enumeration => same size; the size check plus
        // the hardened warm_restart fallback make a stale or foreign entry
        // cost a cold start instead of UB.
        std::vector<index_t> remap(seed->p.size());
        for (std::size_t i = 0; i < remap.size(); ++i) {
          remap[i] = static_cast<index_t>(i);
        }
        warm = seed->p.size() == n &&
               solver::warm_restart(seed->p, remap, x);
        if (warm) r.warm_dist2 = seed->dist2;
      }
    }
    if (!warm) solver::fill_uniform(x);
    r.warm_start_applied = warm;

    solver::JacobiOptions jopt;
    jopt.eps = rq.sc.jacobi_eps;
    jopt.stagnation_eps = rq.sc.jacobi_stagnation_eps;
    jopt.max_iterations = rq.sc.jacobi_max_iterations;
    jopt.damping = rq.sc.jacobi_damping;
    const solver::JacobiResult jr = jacobi_solve(op, a.inf_norm(), x, jopt);

    r.status = Status::kOk;
    r.states = n;
    r.reason = jr.reason;
    r.iterations = jr.iterations;
    r.residual = jr.residual;
    if (warm) {
      warm_starts_.fetch_add(1, std::memory_order_relaxed);
      warm_iterations_.fetch_add(jr.iterations, std::memory_order_relaxed);
    } else {
      cold_solves_.fetch_add(1, std::memory_order_relaxed);
      cold_iterations_.fetch_add(jr.iterations, std::memory_order_relaxed);
    }
    if (jr.reason == solver::StopReason::kConverged) {
      cache_.insert(rq.key, family, logr, x);
    }
    r.p = std::move(x);
    completed_.fetch_add(1, std::memory_order_relaxed);
  } catch (const std::exception& e) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    r.status = Status::kFailed;
    r.error = e.what();
  }
  r.solve_seconds = seconds_since(started);
  rq.promise.set_value(std::move(r));
}

ServeStats Controller::stats() const {
  ServeStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.invalid = invalid_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.queue_evicted = queue_evicted_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.warm_starts = warm_starts_.load(std::memory_order_relaxed);
  s.cold_solves = cold_solves_.load(std::memory_order_relaxed);
  s.warm_iterations = warm_iterations_.load(std::memory_order_relaxed);
  s.cold_iterations = cold_iterations_.load(std::memory_order_relaxed);
  s.cache = cache_.stats();
  return s;
}

}  // namespace cmesolve::serve
