#pragma once
//
// CME-as-a-service: the solver daemon's front door (DESIGN.md §15).
//
// A Controller owns a bounded priority queue, a pool of worker threads, and
// a ResultCache. Clients submit scenarios in the canonical .repro.json wire
// format (cmesolve.repro/1 — the same codec the fuzz corpus uses, parsed
// under the hardened kWireJsonLimits) and get back a std::future for the
// response.
//
// Request lifecycle:
//
//   submit -> [parse/admission] -> queued -> [worker] -> exact-cache probe
//          -> (hit: respond) | (miss: build -> warm-start probe -> solve
//          -> cache insert -> respond)
//
// Status codes:
//   kOk       solve completed (see `reason` for how it stopped) or served
//             from cache
//   kInvalid  rejected at admission: malformed JSON, schema violation, or
//             a limits breach (nesting/size/duplicate keys) — `error` holds
//             the position-annotated parser message
//   kFailed   accepted but the pipeline threw: truncated/degenerate state
//             space, absorbing state (zero diagonal), ...
//   kShed     never solved: the queue was full and the request lost the
//             admission race (or arrived after shutdown began). Shedding
//             prefers the *youngest lowest-priority* queued request — an
//             incoming higher-priority request evicts it and takes its slot.
//
// Determinism: each worker wraps every solve in util::InlineRegion, so the
// numerical pipeline takes its serial (inline) path regardless of
// CMESOLVE_THREADS — results are bit-identical to a single-threaded solve
// by the determinism contract, the shared pool is never driven from two
// threads, and concurrency comes from solving independent requests in
// parallel. Per-solve obs metrics are suppressed (obs::SuppressMetrics);
// the daemon publishes aggregate statistics instead (workload.hpp).
//
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "solver/jacobi.hpp"
#include "util/types.hpp"
#include "verify/scenario.hpp"

namespace cmesolve::serve {

enum class Priority : std::uint8_t {
  kBatch = 0,        ///< shed first
  kNormal = 1,
  kInteractive = 2,  ///< may evict queued kBatch/kNormal when full
};

enum class Status : std::uint8_t { kOk, kInvalid, kFailed, kShed };

[[nodiscard]] constexpr const char* to_string(Status s) noexcept {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kInvalid: return "invalid";
    case Status::kFailed: return "failed";
    case Status::kShed: return "shed";
  }
  return "?";
}

[[nodiscard]] constexpr const char* to_string(Priority p) noexcept {
  switch (p) {
    case Priority::kBatch: return "batch";
    case Priority::kNormal: return "normal";
    case Priority::kInteractive: return "interactive";
  }
  return "?";
}

struct SolveResponse {
  Status status = Status::kFailed;
  std::string error;  ///< non-empty for kInvalid/kFailed/kShed

  std::vector<real_t> p;  ///< stationary distribution (kOk only)
  std::size_t states = 0;
  solver::StopReason reason = solver::StopReason::kMaxIterations;
  std::uint64_t iterations = 0;  ///< 0 for a cache hit
  real_t residual = 0.0;

  bool cache_hit = false;
  bool warm_start_applied = false;  ///< warm_restart accepted the seed
  real_t warm_dist2 = -1.0;         ///< log-rate distance of the seed; <0 none

  double queue_seconds = 0.0;  ///< admission -> dequeue (volatile)
  double solve_seconds = 0.0;  ///< dequeue -> response (volatile)
};

struct ServeOptions {
  int workers = 2;
  std::size_t queue_capacity = 64;   ///< queued (not in-flight) requests
  std::size_t cache_capacity = 128;  ///< resident ResultCache entries
  bool warm_start = true;
  /// NN warm-start acceptance radius (squared log-rate distance). 4.0 means
  /// "rates within e^2 ~ 7.4x in aggregate" — generous for continuation
  /// sweeps, far for unrelated parameter points.
  real_t warm_max_dist2 = 4.0;
  /// Test seam: start with the workers parked so a test can fill the queue
  /// deterministically, then call resume().
  bool start_paused = false;
};

/// ServeOptions from CMESOLVE_SERVE_* environment variables (unset keeps
/// the default): WORKERS, QUEUE_CAP, CACHE_CAP, WARM_START (0/1),
/// MAX_DIST (squared log-rate radius).
[[nodiscard]] ServeOptions serve_options_from_env();

/// Aggregate daemon statistics (monotonic counters).
struct ServeStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;  ///< responses with status kOk
  std::uint64_t invalid = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;           ///< kShed responses (incl. evictions)
  std::uint64_t queue_evicted = 0;  ///< shed specifically by priority eviction
  std::uint64_t cache_hits = 0;
  std::uint64_t warm_starts = 0;  ///< solves seeded from a neighbor
  std::uint64_t cold_solves = 0;  ///< solves seeded uniformly
  std::uint64_t warm_iterations = 0;  ///< Jacobi iterations, warm solves
  std::uint64_t cold_iterations = 0;  ///< Jacobi iterations, cold solves
  CacheStats cache;
};

class Controller {
 public:
  explicit Controller(ServeOptions opt = {});
  ~Controller();
  Controller(const Controller&) = delete;
  Controller& operator=(const Controller&) = delete;

  /// Submit a request in wire form. Parsing/validation happens here, on the
  /// caller's thread: malformed input gets an immediately-ready kInvalid
  /// future and never occupies a queue slot.
  [[nodiscard]] std::future<SolveResponse> submit(
      std::string_view repro_json, Priority pri = Priority::kNormal);

  /// Submit an already-parsed scenario (internal clients, tests).
  [[nodiscard]] std::future<SolveResponse> submit(verify::Scenario sc,
                                                  Priority pri =
                                                      Priority::kNormal);

  /// Release workers parked by ServeOptions::start_paused.
  void resume();

  /// Stop accepting, drain the queue, join the workers. Idempotent;
  /// the destructor calls it.
  void shutdown();

  [[nodiscard]] ServeStats stats() const;
  [[nodiscard]] const ServeOptions& options() const noexcept { return opt_; }
  /// Queued (not yet dequeued) requests.
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  struct Request {
    verify::Scenario sc;
    std::string key;  ///< canonical bytes (exact cache key)
    Priority pri = Priority::kNormal;
    std::promise<SolveResponse> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  [[nodiscard]] std::future<SolveResponse> admit(verify::Scenario sc,
                                                 std::string key,
                                                 Priority pri);
  void worker_loop();
  void process(Request& rq);

  ServeOptions opt_;
  ResultCache cache_;

  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<Request> queue_[3];  ///< index = Priority
  std::size_t queued_ = 0;
  bool paused_ = false;
  bool accepting_ = true;
  bool stopping_ = false;
  std::vector<std::thread> workers_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> invalid_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> queue_evicted_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> warm_starts_{0};
  std::atomic<std::uint64_t> cold_solves_{0};
  std::atomic<std::uint64_t> warm_iterations_{0};
  std::atomic<std::uint64_t> cold_iterations_{0};
};

}  // namespace cmesolve::serve
