#include "serve/workload.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <mutex>
#include <thread>
#include <utility>

#include "core/models.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"
#include "verify/repro_io.hpp"

namespace cmesolve::serve {

verify::Scenario scenario_from_network(std::string name,
                                       const core::ReactionNetwork& net,
                                       core::State initial,
                                       std::size_t max_states,
                                       real_t damping) {
  verify::Scenario sc;
  sc.name = std::move(name);
  sc.seed = 0;
  sc.archetype = "serve";
  for (int s = 0; s < net.num_species(); ++s) {
    sc.species.push_back({net.species_name(s), net.capacity(s)});
  }
  for (const core::Reaction& r : net.reactions()) {
    sc.reactions.push_back({r.name, r.rate, r.reactants, r.changes});
  }
  sc.initial = std::move(initial);
  sc.max_states = max_states;
  sc.jacobi_damping = damping;
  return sc;
}

SweepFamily make_sweep_family(const verify::Scenario& base,
                              std::size_t nvariants, real_t jitter,
                              std::uint64_t seed) {
  SweepFamily fam;
  fam.name = base.name;
  fam.variants.reserve(nvariants);
  Xoshiro256 rng(seed ^ 0xC3A5C85C97CB3127ULL);
  for (std::size_t v = 0; v < nvariants; ++v) {
    verify::Scenario sc = base;
    sc.name = base.name + "-v" + std::to_string(v);
    if (v > 0) {
      for (auto& r : sc.reactions) {
        r.rate *= std::exp(rng.uniform(-1.0, 1.0) * jitter);
      }
    }
    fam.variants.push_back(std::move(sc));
  }
  return fam;
}

std::vector<SweepFamily> builtin_families(std::size_t nvariants, real_t jitter,
                                          std::uint64_t seed) {
  std::vector<SweepFamily> fams;
  {
    // Reduced toggle switch: ~2.6k states, a few hundred Jacobi iterations.
    core::models::ToggleSwitchParams p;
    p.cap_a = 25;
    p.cap_b = 25;
    fams.push_back(make_sweep_family(
        scenario_from_network("toggle-25", core::models::toggle_switch(p),
                              core::models::toggle_switch_initial(p), 200'000),
        nvariants, jitter, seed * 2 + 1));
  }
  {
    // Phage lambda at the sweep-example size (~50k reachable states; the
    // stock caps overflow the 200k enumeration budget once the three
    // operator sites multiply in). The box carries an oscillatory Jacobi
    // mode, so heavier damping (matches examples/phage_lambda_sweep).
    core::models::PhageLambdaParams p;
    p.cap_ci = p.cap_cro = 8;
    p.cap_ci2 = p.cap_cro2 = 4;
    fams.push_back(make_sweep_family(
        scenario_from_network("phage-lambda-8", core::models::phage_lambda(p),
                              core::models::phage_lambda_initial(p), 200'000,
                              /*damping=*/0.95),
        nvariants, jitter, seed * 2 + 2));
  }
  return fams;
}

std::vector<std::size_t> zipf_trace(std::size_t n, real_t s, std::size_t count,
                                    std::uint64_t seed) {
  std::vector<std::size_t> trace;
  trace.reserve(count);
  if (n == 0) return trace;
  // Inverse-CDF sampling over the finite rank distribution.
  std::vector<real_t> cdf(n);
  real_t acc = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += std::pow(static_cast<real_t>(r + 1), -s);
    cdf[r] = acc;
  }
  Xoshiro256 rng(seed ^ 0x9E3779B97F4A7C15ULL);
  for (std::size_t i = 0; i < count; ++i) {
    const real_t u = rng.uniform() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    trace.push_back(static_cast<std::size_t>(it - cdf.begin()));
  }
  return trace;
}

LoadReport run_closed_loop(Controller& ctl,
                           const std::vector<SweepFamily>& fams,
                           const LoadOptions& opt) {
  // Pool the variants; serialize once up front so every client submits the
  // same canonical bytes (and exercises the wire parse path).
  std::vector<std::string> wire;
  for (const SweepFamily& f : fams) {
    for (const verify::Scenario& sc : f.variants) {
      wire.push_back(verify::serialize_repro(sc));
    }
  }
  LoadReport rep;
  if (wire.empty() || opt.requests == 0) return rep;

  const std::vector<std::size_t> trace =
      zipf_trace(wire.size(), opt.zipf_s, opt.requests, opt.seed);
  // Hot-first rank->variant mapping shuffled deterministically, so rank 0
  // is not always variant 0 of family 0.
  std::vector<std::size_t> rank_to_variant(wire.size());
  for (std::size_t i = 0; i < wire.size(); ++i) rank_to_variant[i] = i;
  Xoshiro256 shuffle_rng(opt.seed ^ 0xA5A5A5A5A5A5A5A5ULL);
  for (std::size_t i = wire.size(); i > 1; --i) {
    std::swap(rank_to_variant[i - 1],
              rank_to_variant[shuffle_rng.bounded(i)]);
  }

  std::mutex rep_m;
  std::vector<double> latencies_ms;
  latencies_ms.reserve(opt.requests);
  const auto t0 = std::chrono::steady_clock::now();

  const int nclients = std::max(opt.clients, 1);
  auto client = [&](int cid) {
    Xoshiro256 rng(opt.seed * 0x100000001B3ULL +
                   static_cast<std::uint64_t>(cid) + 1);
    // Requests are pre-partitioned round-robin so the total is exact.
    for (std::size_t i = static_cast<std::size_t>(cid); i < opt.requests;
         i += static_cast<std::size_t>(nclients)) {
      const std::size_t variant = rank_to_variant[trace[i]];
      const real_t roll = rng.uniform();
      Priority pri = Priority::kNormal;
      if (roll < opt.interactive_fraction) {
        pri = Priority::kInteractive;
      } else if (roll < opt.interactive_fraction + opt.batch_fraction) {
        pri = Priority::kBatch;
      }
      const auto sent = std::chrono::steady_clock::now();
      SolveResponse resp = ctl.submit(wire[variant], pri).get();
      const double ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - sent)
              .count();
      {
        std::lock_guard<std::mutex> lk(rep_m);
        ++rep.requests;
        latencies_ms.push_back(ms);
        switch (resp.status) {
          case Status::kOk:
            ++rep.ok;
            if (resp.cache_hit) {
              ++rep.cache_hits;
            } else if (resp.warm_start_applied) {
              ++rep.warm_starts;
              rep.warm_iterations += resp.iterations;
            } else {
              ++rep.cold_solves;
              rep.cold_iterations += resp.iterations;
            }
            break;
          case Status::kShed: ++rep.shed; break;
          case Status::kFailed: ++rep.failed; break;
          case Status::kInvalid: ++rep.invalid; break;
        }
      }
      if (opt.think_seconds > 0.0) {
        const double z = -opt.think_seconds * std::log(1.0 - rng.uniform());
        std::this_thread::sleep_for(std::chrono::duration<double>(z));
      }
    }
  };

  if (nclients == 1) {
    client(0);
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(nclients));
    for (int c = 0; c < nclients; ++c) threads.emplace_back(client, c);
    for (std::thread& t : threads) t.join();
  }

  rep.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  rep.throughput_rps =
      rep.wall_seconds > 0.0
          ? static_cast<double>(rep.requests) / rep.wall_seconds
          : 0.0;
  rep.hit_rate = rep.ok > 0
                     ? static_cast<double>(rep.cache_hits) /
                           static_cast<double>(rep.ok)
                     : 0.0;
  rep.warm_mean_iters =
      rep.warm_starts > 0 ? static_cast<double>(rep.warm_iterations) /
                                static_cast<double>(rep.warm_starts)
                          : 0.0;
  rep.cold_mean_iters =
      rep.cold_solves > 0 ? static_cast<double>(rep.cold_iterations) /
                                static_cast<double>(rep.cold_solves)
                          : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const auto pct = [&](double q) {
    if (latencies_ms.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies_ms.size() - 1));
    return latencies_ms[idx];
  };
  rep.p50_ms = pct(0.50);
  rep.p99_ms = pct(0.99);
  return rep;
}

void publish_load_report(const LoadReport& rep, bool deterministic) {
  // Count-shaped numbers: deterministic counters in the sequential bench
  // mode (the ledger compares them exactly), volatile gauges otherwise —
  // under concurrency the arrival interleaving decides hit/warm splits.
  const auto put = [&](const char* name, double v) {
    obs::gauge(name, v, /*is_volatile=*/!deterministic);
  };
  put("serve.load.requests", static_cast<double>(rep.requests));
  put("serve.load.ok", static_cast<double>(rep.ok));
  put("serve.load.shed", static_cast<double>(rep.shed));
  put("serve.load.failed", static_cast<double>(rep.failed));
  put("serve.load.invalid", static_cast<double>(rep.invalid));
  put("serve.load.cache_hits", static_cast<double>(rep.cache_hits));
  put("serve.load.warm_starts", static_cast<double>(rep.warm_starts));
  put("serve.load.cold_solves", static_cast<double>(rep.cold_solves));
  put("serve.load.warm_iterations", static_cast<double>(rep.warm_iterations));
  put("serve.load.cold_iterations", static_cast<double>(rep.cold_iterations));
  put("serve.load.hit_rate", rep.hit_rate);
  put("serve.load.warm_mean_iters", rep.warm_mean_iters);
  put("serve.load.cold_mean_iters", rep.cold_mean_iters);
  obs::gauge("serve.load.p50_ms", rep.p50_ms, /*is_volatile=*/true);
  obs::gauge("serve.load.p99_ms", rep.p99_ms, /*is_volatile=*/true);
  obs::gauge("serve.load.seconds", rep.wall_seconds, /*is_volatile=*/true);
  obs::gauge("serve.load.throughput_rps", rep.throughput_rps,
             /*is_volatile=*/true);
}

}  // namespace cmesolve::serve
