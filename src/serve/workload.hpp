#pragma once
//
// Load harness for the solver daemon (DESIGN.md §15): scenario families,
// Zipf request traces, a closed-loop generator, and run-report publication.
//
// The generator is CLOSED-loop: each simulated client submits one request,
// blocks on the response, optionally "thinks" (exponential delay), and
// repeats. Offered load therefore adapts to service capacity — the daemon
// is driven at saturation without unbounded queue growth, and with one
// client, one worker and zero think time the whole run is a deterministic
// sequential replay (the mode the bench ledger records).
//
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/reaction_network.hpp"
#include "serve/controller.hpp"
#include "util/types.hpp"
#include "verify/scenario.hpp"

namespace cmesolve::serve {

/// Plain-data Scenario from an instantiated network (the reverse of
/// verify::build_network): species names/capacities and reactions are
/// copied out, solver configuration comes from the arguments. The daemon's
/// wire format carries Scenarios, so every model in core/models.hpp becomes
/// servable through this.
[[nodiscard]] verify::Scenario scenario_from_network(
    std::string name, const core::ReactionNetwork& net,
    core::State initial, std::size_t max_states, real_t damping = 0.8);

/// A parameter-sweep family: one base scenario plus rate-jittered variants.
/// All variants share the base's family_key (same topology/capacities/
/// initial/solver config), so they warm-start off each other.
struct SweepFamily {
  std::string name;
  std::vector<verify::Scenario> variants;
};

/// `nvariants` copies of `base`, each with every reaction rate multiplied
/// by exp(u * jitter), u ~ Uniform[-1, 1) from the given seed. Variant 0 is
/// the unmodified base. Deterministic in (base, nvariants, jitter, seed).
[[nodiscard]] SweepFamily make_sweep_family(const verify::Scenario& base,
                                            std::size_t nvariants,
                                            real_t jitter, std::uint64_t seed);

/// The stock load-harness families: a genetic toggle switch (reduced
/// buffers) and the phage-lambda lysis/lysogeny switch, both sized so a
/// cold solve is ~10^2..10^3 Jacobi iterations.
[[nodiscard]] std::vector<SweepFamily> builtin_families(std::size_t nvariants,
                                                        real_t jitter,
                                                        std::uint64_t seed);

/// Zipf(s) popularity ranks in [0, n): rank r is drawn with probability
/// proportional to 1/(r+1)^s. s=0 is uniform; s>1 concentrates on a few
/// hot variants (the cache-hit regime). Deterministic in (n, s, count,
/// seed).
[[nodiscard]] std::vector<std::size_t> zipf_trace(std::size_t n, real_t s,
                                                  std::size_t count,
                                                  std::uint64_t seed);

struct LoadOptions {
  std::size_t requests = 200;  ///< total, across all clients
  int clients = 4;
  real_t zipf_s = 1.1;
  real_t think_seconds = 0.0;  ///< mean exponential think time per client
  std::uint64_t seed = 1;
  /// Fraction of requests submitted at each priority; the remainder is
  /// kNormal. Drawn per-request from the trace RNG.
  real_t interactive_fraction = 0.1;
  real_t batch_fraction = 0.1;
};

struct LoadReport {
  std::uint64_t requests = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t failed = 0;
  std::uint64_t invalid = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t warm_starts = 0;
  std::uint64_t cold_solves = 0;
  std::uint64_t warm_iterations = 0;
  std::uint64_t cold_iterations = 0;
  double hit_rate = 0.0;        ///< cache_hits / max(ok, 1)
  double warm_mean_iters = 0.0;
  double cold_mean_iters = 0.0;
  double p50_ms = 0.0;  ///< end-to-end request latency percentiles
  double p99_ms = 0.0;
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;
};

/// Drive `ctl` with a closed-loop Zipf workload over the families' pooled
/// variants. Blocks until every request has a response.
[[nodiscard]] LoadReport run_closed_loop(Controller& ctl,
                                         const std::vector<SweepFamily>& fams,
                                         const LoadOptions& opt);

/// Publish a LoadReport into the obs registry ("serve.*" namespace) for
/// run-report / bench-ledger emission. With `deterministic` set the
/// count-shaped numbers go into the deterministic section (the bench mode:
/// 1 client, 1 worker, zero think time); otherwise everything is volatile.
/// Latency/throughput numbers are wall-clock and always volatile.
void publish_load_report(const LoadReport& rep, bool deterministic);

}  // namespace cmesolve::serve
