#include "solver/batched.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/vector_ops.hpp"
#include "util/aligned_vector.hpp"
#include "util/parallel.hpp"
#include "util/simd_kernels.hpp"
#include "util/timer.hpp"

namespace cmesolve::solver {

namespace {

constexpr std::size_t kSweepGrain = 4096;

void validate_rates(const core::ReactionNetwork& net,
                    std::span<const std::vector<real_t>> rates) {
  if (rates.empty()) {
    throw std::invalid_argument("ensemble: at least one parameter point");
  }
  const auto nr = static_cast<std::size_t>(net.num_reactions());
  for (const auto& rk : rates) {
    if (rk.size() != nr) {
      throw std::invalid_argument(
          "ensemble: rate vector must cover every network reaction");
    }
    for (const real_t v : rk) {
      if (!std::isfinite(v) || v <= 0.0) {
        throw std::invalid_argument(
            "ensemble: every rate must be finite and > 0");
      }
    }
  }
}

/// Per-lane L1 sums with the SAME fixed row chunking as solver::norm_l1:
/// lane k's partial over a chunk is the serial index-order sum of
/// |x[i*K + k]|, partials combine in ascending chunk order — so each
/// lane's sum is bitwise the single-vector norm_l1 of that lane.
std::vector<real_t> lane_l1(std::span<const real_t> x, std::size_t n, int k) {
  const auto kk = static_cast<std::size_t>(k);
  const real_t* p = x.data();
  return util::parallel_reduce(
      n, kReduceChunk, std::vector<real_t>(kk, 0.0),
      [p, kk](std::size_t b, std::size_t e) {
        std::vector<real_t> s(kk, 0.0);
        for (std::size_t i = b; i < e; ++i) {
          const real_t* row = p + i * kk;
          for (std::size_t q = 0; q < kk; ++q) s[q] += std::abs(row[q]);
        }
        return s;
      },
      [kk](std::vector<real_t> acc, std::vector<real_t> part) {
        for (std::size_t q = 0; q < kk; ++q) acc[q] += part[q];
        return acc;
      });
}

/// Per-lane infinity norms, chunked exactly like solver::norm_inf.
std::vector<real_t> lane_inf(std::span<const real_t> x, std::size_t n, int k) {
  const auto kk = static_cast<std::size_t>(k);
  const real_t* p = x.data();
  return util::parallel_reduce(
      n, kReduceChunk, std::vector<real_t>(kk, 0.0),
      [p, kk](std::size_t b, std::size_t e) {
        std::vector<real_t> s(kk, 0.0);
        for (std::size_t i = b; i < e; ++i) {
          const real_t* row = p + i * kk;
          for (std::size_t q = 0; q < kk; ++q) {
            s[q] = std::max(s[q], std::abs(row[q]));
          }
        }
        return s;
      },
      [kk](std::vector<real_t> acc, std::vector<real_t> part) {
        for (std::size_t q = 0; q < kk; ++q) {
          acc[q] = std::max(acc[q], part[q]);
        }
        return acc;
      });
}

/// L1-normalize the lanes with mask[q] != 0 in place, replaying
/// normalize_l1 per lane: skip a lane whose sum is not positive, scale by
/// the reciprocal otherwise.
void normalize_lanes(std::span<real_t> x, std::size_t n, int k,
                     const std::uint8_t* mask) {
  const auto kk = static_cast<std::size_t>(k);
  const auto sums = lane_l1(x, n, k);
  std::vector<real_t> inv(kk, 0.0);
  std::vector<std::uint8_t> scale_lane(kk, 0);
  bool any = false;
  for (std::size_t q = 0; q < kk; ++q) {
    if (mask[q] && sums[q] > 0.0) {
      inv[q] = 1.0 / sums[q];
      scale_lane[q] = 1;
      any = true;
    }
  }
  if (!any) return;
  real_t* p = x.data();
  const real_t* pi = inv.data();
  const std::uint8_t* ps = scale_lane.data();
  // Lane-masked rescale through the SIMD kernel table: scaled lanes take
  // the identical per-element multiply, skipped lanes keep their bits.
  const util::simdk::KernelOps& ko = util::simdk::kernels();
  util::parallel_for(n, [p, pi, ps, kk, &ko](std::size_t b, std::size_t e) {
    ko.lane_scale(p + b * kk, e - b, kk, pi, ps);
  });
}

}  // namespace

std::vector<std::uint8_t> box_active_rows(const core::StencilTable& table) {
  const auto n = static_cast<std::size_t>(table.box_rows());
  std::vector<std::uint8_t> active(n, 0);
  const auto& rx = table.reactions();
  std::uint8_t* pa = active.data();
  util::parallel_for(n, [&, pa](std::size_t b, std::size_t e) {
    core::State x(static_cast<std::size_t>(table.num_species()));
    for (std::size_t i = b; i < e; ++i) {
      table.decode(static_cast<index_t>(i), x);
      if (!table.row_valid(x)) continue;
      for (const auto& r : rx) {
        if (table.unit_out_propensity(r, x) > 0.0) {
          pa[i] = 1;
          break;
        }
      }
    }
  });
  return active;
}

EnsembleStructure::EnsembleStructure(const core::StencilTable& base)
    : unit_(core::StencilTable(
                base, std::vector<real_t>(
                          static_cast<std::size_t>(
                              base.network().num_reactions()),
                          1.0)),
            StencilMode::kPropensityCache) {
  CMESOLVE_TRACE_SPAN("batch.structure_build");
  row_active_ = box_active_rows(unit_.table());
  for (std::size_t i = 0; i < row_active_.size(); ++i) {
    if (row_active_[i]) {
      ++rows_active_;
      last_active_ = static_cast<index_t>(i);
    }
  }
  if (rows_active_ == 0) {
    throw std::invalid_argument(
        "EnsembleStructure: every box row is masked (no active states)");
  }
  obs::count("batch.structures_built");
}

BatchedStencilOperator::BatchedStencilOperator(
    const EnsembleStructure& structure,
    std::span<const std::vector<real_t>> rates)
    : structure_(&structure), batch_(static_cast<int>(rates.size())) {
  const core::StencilTable& t = structure.unit().table();
  validate_rates(t.network(), rates);
  const auto& rx = t.reactions();
  const auto n = static_cast<std::size_t>(t.box_rows());
  const auto kk = static_cast<std::size_t>(batch_);

  coef_.resize(rx.size() * kk);
  for (std::size_t r = 0; r < rx.size(); ++r) {
    for (std::size_t q = 0; q < kk; ++q) {
      coef_[r * kk + q] =
          rates[q][static_cast<std::size_t>(rx[r].reaction)];
    }
  }

  // Interleaved per-lane diagonal from ONE decode pass: for every valid
  // row the unit outflow of each reaction is evaluated once and scaled by
  // each lane's coefficient in reaction order — the exact terms, order and
  // positivity test of StencilTable::build_diagonal per lane, so lane
  // diagonals are bitwise the single-point tables'.
  diag_.assign(n * kk, -1.0);
  {
    real_t* pd = diag_.data();
    const real_t* pc = coef_.data();
    util::parallel_for(n, [&, pd, pc, kk](std::size_t b, std::size_t e) {
      core::State x(static_cast<std::size_t>(t.num_species()));
      std::vector<real_t> u(rx.size());
      for (std::size_t i = b; i < e; ++i) {
        t.decode(static_cast<index_t>(i), x);
        if (!t.row_valid(x)) continue;
        for (std::size_t r = 0; r < rx.size(); ++r) {
          u[r] = t.unit_out_propensity(rx[r], x);
        }
        for (std::size_t q = 0; q < kk; ++q) {
          real_t out_rate = 0.0;
          for (std::size_t r = 0; r < rx.size(); ++r) {
            const real_t a = pc[r * kk + q] * u[r];
            if (a > 0.0) out_rate += a;
          }
          if (out_rate > 0.0) pd[i * kk + q] = -out_rate;
        }
      }
    });
  }

  // Per-lane ||A_k||_inf via a batched ones sweep, max-reduced with the
  // same fixed row chunks as StencilOperator::compute_inf_norm.
  {
    const std::vector<real_t> ones(n * kk, 1.0);
    std::vector<real_t> rowsum(n * kk, 0.0);
    multiply(ones, rowsum);
    const real_t* pd = diag_.data();
    const real_t* pr = rowsum.data();
    inf_norms_ = util::parallel_reduce(
        n, kReduceChunk, std::vector<real_t>(kk, 0.0),
        [pd, pr, kk](std::size_t b, std::size_t e) {
          std::vector<real_t> mx(kk, 0.0);
          for (std::size_t i = b; i < e; ++i) {
            for (std::size_t q = 0; q < kk; ++q) {
              mx[q] = std::max(mx[q],
                               std::abs(pd[i * kk + q]) + pr[i * kk + q]);
            }
          }
          return mx;
        },
        [kk](std::vector<real_t> acc, std::vector<real_t> part) {
          for (std::size_t q = 0; q < kk; ++q) {
            acc[q] = std::max(acc[q], part[q]);
          }
          return acc;
        });
  }
  obs::count("batch.operators_built");
  obs::gauge("batch.width", static_cast<double>(batch_));
  obs::gauge("batch.sweep_bytes_modeled",
             static_cast<double>(bytes_modeled()));
}

std::size_t BatchedStencilOperator::bytes_modeled() const noexcept {
  const auto n = static_cast<std::size_t>(structure_->nrows());
  const auto k = static_cast<std::size_t>(batch_);
  const std::size_t unit_stream =
      structure_->unit().table().reactions().size() * n;
  return sizeof(real_t) * (unit_stream + k * (offdiag_nnz() + n));
}

void BatchedStencilOperator::multiply(std::span<const real_t> x,
                                      std::span<real_t> y) const {
  multiply_active(x, y, {});
}

void BatchedStencilOperator::multiply_active(std::span<const real_t> x,
                                             std::span<real_t> y,
                                             std::span<const int> lanes) const {
  CMESOLVE_TRACE_SPAN("batch.sweep");
  const auto n = static_cast<std::int64_t>(structure_->nrows());
  const auto kk = static_cast<std::size_t>(batch_);
  const bool all = lanes.empty() || lanes.size() == kk;
  const auto& rx = structure_->unit().table().reactions();
  const real_t* cache = structure_->unit().propensity_cache().data();
  // Rows per chunk shrink with the batch width so chunk payloads stay
  // comparable to the single-RHS sweep; values are chunk-invariant, so the
  // grain only affects load balance, never bits.
  const std::size_t grain = std::max<std::size_t>(kSweepGrain / kk, 256);

  // Per-row accumulation in reaction order within the owning chunk; lane
  // k's terms are (coef*u)*x — the exact cached single-RHS values
  // (skipping u == 0 only drops exact-zero addends, which cannot flip an
  // accumulator that is never -0.0). The sweep runs through the explicit
  // SIMD kernel table, vectorized across the k lanes; lanes never mix, so
  // every ISA produces the same bits for a computed lane.
  //
  // Lane freezing maps onto the SIMD path by zeroing the frozen lanes'
  // coefficients: a frozen lane accumulates (0 * u) * x = +0 into its
  // zero-filled y entries (signed-zero addition cannot flip them), while
  // active lanes see the identical multiply/add chain as the dense sweep.
  util::aligned_vector<real_t> masked_coef;
  const real_t* coef = coef_.data();
  if (!all) {
    masked_coef.assign(coef_.begin(), coef_.end());
    std::vector<std::uint8_t> act(kk, 0);
    for (const int q : lanes) act[static_cast<std::size_t>(q)] = 1;
    for (std::size_t r = 0; r < rx.size(); ++r) {
      for (std::size_t q = 0; q < kk; ++q) {
        if (!act[q]) masked_coef[r * kk + q] = 0.0;
      }
    }
    coef = masked_coef.data();
  }
  std::vector<std::int64_t> strides(rx.size());
  for (std::size_t r = 0; r < rx.size(); ++r) strides[r] = rx[r].stride;
  const util::simdk::BatchedSweepArgs args{
      x.data(), y.data(), cache, coef, strides.data(), rx.size(), n, kk};
  const util::simdk::KernelOps& KO = util::simdk::kernels();
  util::parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t cb, std::size_t ce) {
        KO.batched_sweep(args, static_cast<std::int64_t>(cb),
                         static_cast<std::int64_t>(ce));
      },
      grain);
}

std::vector<JacobiResult> batched_jacobi_solve(const BatchedStencilOperator& op,
                                               std::span<real_t> x,
                                               const JacobiOptions& opt) {
  const auto n = static_cast<std::size_t>(op.nrows());
  const int k = op.batch();
  const auto kk = static_cast<std::size_t>(k);
  if (x.size() != n * kk) {
    throw std::invalid_argument("batched_jacobi_solve: x size mismatch");
  }
  const std::span<const real_t> d = op.diag();
  for (std::size_t i = 0; i < n * kk; ++i) {
    if (d[i] == 0.0) {
      throw std::domain_error(
          "jacobi_solve: zero diagonal (absorbing state in the CME)");
    }
  }

  // 64-byte aligned solver state, matching jacobi_solve: the interleaved
  // buffers are streamed by the SIMD scale/swap and residual kernels.
  util::aligned_vector<real_t> next(n * kk);
  util::aligned_vector<real_t> resid(n * kk);
  const real_t omega = opt.damping;
  const util::simdk::KernelOps& ko = util::simdk::kernels();

  CMESOLVE_TRACE_SPAN("jacobi.batched_solve");
  WallTimer timer;
  std::vector<JacobiResult> out(kk);
  const std::uint64_t flops_per_sweep =
      2ULL * op.offdiag_nnz() + static_cast<std::uint64_t>(n);
  std::vector<real_t> prev_residual(kk, -1.0);
  std::vector<std::uint32_t> flat_checks(kk, 0);
  std::vector<std::uint64_t> check_number(kk, 0);
  std::vector<std::uint8_t> active(kk, 1);
  int n_active = k;
  const std::size_t history_cap =
      opt.history_capacity > 0 ? std::max<std::size_t>(opt.history_capacity, 2)
                               : 0;
  const auto inf_norms = op.inf_norms();

  // Ascending indices of the still-active lanes: the sweep, scale and swap
  // passes iterate only these, so a frozen lane costs nothing per
  // iteration (its interleaved elements are simply never touched again).
  std::vector<int> lane_list(kk);
  std::iota(lane_list.begin(), lane_list.end(), 0);

  // Stop lane q NOW: apply the end-of-solve normalization jacobi_solve
  // performs after its loop (nothing else touches a frozen lane), record
  // the shared wall clock, and drop the lane from the active set.
  const auto stop_lane = [&](std::size_t q) {
    std::vector<std::uint8_t> mask(kk, 0);
    mask[q] = 1;
    normalize_lanes(x, n, k, mask.data());
    active[q] = 0;
    --n_active;
    lane_list.clear();
    for (std::size_t l = 0; l < kk; ++l) {
      if (active[l]) lane_list.push_back(static_cast<int>(l));
    }
    out[q].seconds = timer.seconds();
  };

  normalize_lanes(x, n, k, active.data());
  for (std::uint64_t it = 1; it <= opt.max_iterations && n_active > 0; ++it) {
    {
      CMESOLVE_TRACE_SPAN("jacobi.sweep");
      const bool all_active = n_active == k;
      op.multiply_active(x, next,
                         all_active ? std::span<const int>{} : lane_list);
      real_t* pn = next.data();
      real_t* px = x.data();
      const real_t* pd = d.data();
      // Scale + swap, active lanes only: each active element takes the
      // exact jacobi_solve update expression and then swaps into x; a
      // frozen lane's elements are never read or written, which leaves its
      // x untouched (the same outcome the copy-through would produce).
      if (all_active) {
        // Fused scale + swap through the SIMD kernel table: one pass
        // computes the update and exchanges it with x (same expressions and
        // element order as the two-pass form, so the bits cannot differ; it
        // just touches memory once). The damped formula is a separate
        // kernel — at omega == 1 it is NOT bitwise the undamped one.
        if (omega == 1.0) {
          util::parallel_for(n * kk,
                             [pn, px, pd, &ko](std::size_t b, std::size_t e) {
                               ko.scale_swap(px + b, pn + b, pd + b, e - b);
                             });
        } else {
          util::parallel_for(
              n * kk, [pn, px, pd, omega, &ko](std::size_t b, std::size_t e) {
                ko.scale_swap_damped(px + b, pn + b, pd + b, omega, e - b);
              });
        }
      } else {
        // Lane-masked scale + swap: active lanes take the exact update and
        // swap, frozen lanes keep their x bits untouched (the SIMD path
        // computes-then-blends; a frozen lane's quotient is finite — the
        // diagonal is nonzero everywhere — and discarded by the blend, and
        // its pn slot is dead until the lane reactivates, which never
        // happens). Matches the old lane-list iteration bit for bit.
        const std::uint8_t* pa = active.data();
        if (omega == 1.0) {
          util::parallel_for(
              n, [pn, px, pd, pa, kk, &ko](std::size_t b, std::size_t e) {
                ko.lane_scale_swap(px + b * kk, pn + b * kk, pd + b * kk,
                                   e - b, kk, pa);
              });
        } else {
          util::parallel_for(
              n,
              [pn, px, pd, pa, omega, kk, &ko](std::size_t b, std::size_t e) {
                ko.lane_scale_swap_damped(px + b * kk, pn + b * kk,
                                          pd + b * kk, omega, e - b, kk, pa);
              });
        }
      }
    }
    for (std::size_t q = 0; q < kk; ++q) {
      if (active[q]) {
        out[q].iterations = it;
        out[q].flops += flops_per_sweep;
      }
    }

    if (opt.normalize_every > 0 && it % opt.normalize_every == 0) {
      CMESOLVE_TRACE_INSTANT("jacobi.renormalize");
      obs::count("jacobi.renormalizations");
      normalize_lanes(x, n, k, active.data());
    }

    if (it % opt.check_every == 0 || it == opt.max_iterations) {
      CMESOLVE_TRACE_SPAN("jacobi.residual_check");
      normalize_lanes(x, n, k, active.data());
      op.multiply_active(x, resid,
                         n_active == k ? std::span<const int>{} : lane_list);
      {
        real_t* pr = resid.data();
        const real_t* px = x.data();
        const real_t* pd = d.data();
        util::parallel_for(n * kk,
                           [pr, px, pd, &ko](std::size_t b, std::size_t e) {
                             ko.cmul_add(pr + b, pd + b, px + b, e - b);
                           });
      }
      const auto xn = lane_inf(x, n, k);
      const auto rn = lane_inf(resid, n, k);
      for (std::size_t q = 0; q < kk; ++q) {
        if (!active[q]) continue;
        JacobiResult& o = out[q];
        // Exact-zero residual short-circuits to converged, exactly as the
        // single-RHS loop (the normalized quotient and the stagnation
        // ratio are both undefined at zero).
        if (rn[q] == 0.0) {
          o.residual = 0.0;
          obs::observe("jacobi.residual", o.residual);
          obs::flight("batch.residual", obs::FlightKind::kResidual, it, 0.0,
                      static_cast<std::uint32_t>(q));
          if (opt.on_residual) opt.on_residual(it, o.residual);
          o.reason = StopReason::kConverged;
          stop_lane(q);
          continue;
        }
        o.residual = rn[q] / (inf_norms[q] * (xn[q] > 0 ? xn[q] : 1.0));
        o.flops += flops_per_sweep;  // the residual costs one extra sweep
        obs::observe("jacobi.residual", o.residual);
        obs::flight("batch.residual", obs::FlightKind::kResidual, it,
                    o.residual, static_cast<std::uint32_t>(q));
        if (opt.on_residual) opt.on_residual(it, o.residual);
        if (history_cap > 0) {
          if (check_number[q] % o.history_stride == 0) {
            if (o.residual_history.size() >= history_cap) {
              std::size_t w = 0;
              for (std::size_t rr = 0; rr < o.residual_history.size();
                   rr += 2) {
                o.residual_history[w++] = o.residual_history[rr];
              }
              o.residual_history.resize(w);
              o.history_stride *= 2;
            }
            if (check_number[q] % o.history_stride == 0) {
              o.residual_history.push_back({it, o.residual});
            }
          }
          ++check_number[q];
        }

        if (o.residual <= opt.eps) {
          o.reason = StopReason::kConverged;
          stop_lane(q);
          continue;
        }
        if (prev_residual[q] > 0.0 &&
            std::abs(o.residual - prev_residual[q]) / prev_residual[q] <=
                opt.stagnation_eps) {
          if (++flat_checks[q] >= opt.stagnation_patience) {
            o.reason = StopReason::kStagnated;
            stop_lane(q);
            continue;
          }
        } else {
          flat_checks[q] = 0;
        }
        prev_residual[q] = o.residual;
      }
      obs::gauge("batch.points_active", static_cast<double>(n_active));
      // Freeze-mask popcount: how many lanes are still iterating after this
      // check — the amortization the batch is actually getting.
      obs::flight("batch.active", obs::FlightKind::kBatchActive, it,
                  static_cast<double>(n_active));
    }
  }

  // Lanes that exhausted the iteration budget take the same final
  // normalization jacobi_solve applies after its loop.
  normalize_lanes(x, n, k, active.data());
  const real_t elapsed = timer.seconds();
  for (std::size_t q = 0; q < kk; ++q) {
    if (active[q]) out[q].seconds = elapsed;
    out[q].gflops = out[q].seconds > 0
                        ? static_cast<real_t>(out[q].flops) /
                              out[q].seconds / 1.0e9
                        : 0.0;
  }
  obs::count("jacobi.batched_solves");
  obs::gauge("batch.points_active", static_cast<double>(n_active));
  if (obs::flight_enabled()) {
    for (std::size_t q = 0; q < kk; ++q) {
      obs::flight("batch.stop", obs::FlightKind::kStop, out[q].iterations,
                  static_cast<double>(out[q].reason),
                  static_cast<std::uint32_t>(q));
      if (out[q].reason != StopReason::kConverged) {
        obs::FlightRecorder::instance().mark_post_mortem(
            to_string(out[q].reason));
      }
    }
  }
  return out;
}

std::vector<int> continuation_order(
    std::span<const std::vector<real_t>> rates) {
  const int k = static_cast<int>(rates.size());
  std::vector<int> order;
  order.reserve(static_cast<std::size_t>(k));
  if (k == 0) return order;
  const auto dist = [&](int a, int b) {
    const auto& ra = rates[static_cast<std::size_t>(a)];
    const auto& rb = rates[static_cast<std::size_t>(b)];
    real_t s = 0.0;
    for (std::size_t j = 0; j < ra.size(); ++j) {
      const real_t dl = std::log(ra[j]) - std::log(rb[j]);
      s += dl * dl;
    }
    return s;
  };
  std::vector<std::uint8_t> used(static_cast<std::size_t>(k), 0);
  int cur = 0;
  used[0] = 1;
  order.push_back(0);
  for (int step = 1; step < k; ++step) {
    int best = -1;
    real_t best_d = 0.0;
    for (int c = 0; c < k; ++c) {
      if (used[static_cast<std::size_t>(c)]) continue;
      const real_t dc = dist(cur, c);
      if (best < 0 || dc < best_d) {  // strict <: smallest index wins ties
        best = c;
        best_d = dc;
      }
    }
    used[static_cast<std::size_t>(best)] = 1;
    order.push_back(best);
    cur = best;
  }
  return order;
}

EnsembleResult solve_ensemble(const core::StencilTable& base,
                              std::span<const std::vector<real_t>> rates,
                              const EnsembleOptions& opt) {
  validate_rates(base.network(), rates);
  if (opt.batch_width < 1) {
    throw std::invalid_argument("solve_ensemble: batch_width must be >= 1");
  }
  const auto n = static_cast<std::size_t>(base.box_rows());
  if (!opt.initial_guess.empty() && opt.initial_guess.size() != n) {
    throw std::invalid_argument(
        "solve_ensemble: initial guess must be box-sized");
  }
  const int k = static_cast<int>(rates.size());
  CMESOLVE_TRACE_SPAN("ensemble.solve");
  WallTimer total;

  EnsembleResult out;
  out.points.resize(static_cast<std::size_t>(k));
  out.order = opt.continuation
                  ? continuation_order(rates)
                  : [&] {
                      std::vector<int> ident(static_cast<std::size_t>(k));
                      std::iota(ident.begin(), ident.end(), 0);
                      return ident;
                    }();

  // Shared setup. The activity mask (and the unit cache in batched mode)
  // is computed once for the whole ensemble; both modes derive the
  // default guess and the GMRES constraint row from the SAME mask so the
  // two paths stay bitwise comparable.
  WallTimer setup;
  std::unique_ptr<EnsembleStructure> structure;
  std::vector<std::uint8_t> row_active;
  if (opt.batched) {
    structure = std::make_unique<EnsembleStructure>(base);
    row_active.assign(structure->row_active().begin(),
                      structure->row_active().end());
  } else {
    row_active = box_active_rows(base);
  }
  index_t rows_active = 0;
  index_t last_active = -1;
  for (std::size_t i = 0; i < n; ++i) {
    if (row_active[i]) {
      ++rows_active;
      last_active = static_cast<index_t>(i);
    }
  }
  if (rows_active == 0) {
    throw std::invalid_argument("solve_ensemble: every box row is masked");
  }
  out.seconds_setup = setup.seconds();

  // Default guess: uniform over ACTIVE rows (masked rows must stay zero —
  // Jacobi never writes them).
  std::vector<real_t> uniform_guess(n, 0.0);
  {
    const real_t p0 = 1.0 / static_cast<real_t>(rows_active);
    for (std::size_t i = 0; i < n; ++i) {
      if (row_active[i]) uniform_guess[i] = p0;
    }
  }
  std::vector<index_t> identity_remap(n);
  std::iota(identity_remap.begin(), identity_remap.end(), 0);

  const auto log_dist = [&](int a, int b) {
    const auto& ra = rates[static_cast<std::size_t>(a)];
    const auto& rb = rates[static_cast<std::size_t>(b)];
    real_t s = 0.0;
    for (std::size_t j = 0; j < ra.size(); ++j) {
      const real_t dl = std::log(ra[j]) - std::log(rb[j]);
      s += dl * dl;
    }
    return s;
  };
  // Warm-start source: nearest CONVERGED point among earlier blocks (block
  // granularity — identical in batched and sequential modes). -1: none.
  std::vector<int> solved;
  const auto nearest_solved = [&](int point) {
    int best = -1;
    real_t best_d = 0.0;
    for (const int s : solved) {
      if (!out.points[static_cast<std::size_t>(s)].converged) continue;
      const real_t dc = log_dist(point, s);
      if (best < 0 || dc < best_d) {
        best = s;
        best_d = dc;
      }
    }
    return best;
  };
  const auto guess_for = [&](int point, std::span<real_t> g) {
    const int src = opt.continuation ? nearest_solved(point) : -1;
    if (src >= 0) {
      warm_restart(out.points[static_cast<std::size_t>(src)].p,
                   identity_remap, g, 0.0);
    } else if (!opt.initial_guess.empty()) {
      std::copy(opt.initial_guess.begin(), opt.initial_guess.end(),
                g.begin());
    } else {
      std::copy(uniform_guess.begin(), uniform_guess.end(), g.begin());
    }
  };

  // GMRES fallback on the nonsingular-ized system, warm-started from the
  // lane's Jacobi iterate. Runs through a per-point single-RHS operator in
  // BOTH modes, so recovered lanes stay bitwise comparable too.
  const auto gmres_rescue = [&](int point, EnsemblePointResult& pr) {
    if (!opt.gmres_fallback ||
        pr.jacobi.reason == StopReason::kConverged) {
      return;
    }
    obs::count("ensemble.gmres_fallbacks");
    const core::StencilTable tbl(base, rates[static_cast<std::size_t>(point)]);
    const StencilOperator op(std::move(tbl), StencilMode::kPropensityCache);
    const auto apply = matrix_free_steady_state_operator(op, last_active);
    const auto b = steady_state_rhs(static_cast<index_t>(n), last_active);
    GmresOptions go = opt.gmres;
    go.restart = static_cast<int>(
        std::min<index_t>(go.restart, static_cast<index_t>(n)));
    const auto res =
        gmres_solve(apply, static_cast<index_t>(n), b, pr.p, go);
    pr.gmres_used = true;
    if (res.converged) {
      normalize_l1(pr.p);
      pr.converged = true;
    }
  };

  const auto nblocks = (static_cast<std::size_t>(k) +
                        static_cast<std::size_t>(opt.batch_width) - 1) /
                       static_cast<std::size_t>(opt.batch_width);
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const std::size_t b0 = blk * static_cast<std::size_t>(opt.batch_width);
    const std::size_t b1 = std::min(
        b0 + static_cast<std::size_t>(opt.batch_width),
        static_cast<std::size_t>(k));
    const auto width = static_cast<int>(b1 - b0);

    if (opt.batched) {
      std::vector<std::vector<real_t>> block_rates(
          static_cast<std::size_t>(width));
      for (int q = 0; q < width; ++q) {
        block_rates[static_cast<std::size_t>(q)] =
            rates[static_cast<std::size_t>(out.order[b0 +
                                                     static_cast<std::size_t>(
                                                         q)])];
      }
      const BatchedStencilOperator op(*structure, block_rates);
      // Interleaved block iterate and the per-point gather buffer are SIMD
      // kernel operands: keep them 64-byte aligned like the solver state.
      util::aligned_vector<real_t> x(n * static_cast<std::size_t>(width));
      util::aligned_vector<real_t> g(n);
      for (int q = 0; q < width; ++q) {
        const int point = out.order[b0 + static_cast<std::size_t>(q)];
        guess_for(point, g);
        for (std::size_t i = 0; i < n; ++i) {
          x[i * static_cast<std::size_t>(width) +
            static_cast<std::size_t>(q)] = g[i];
        }
      }
      auto lanes = batched_jacobi_solve(op, x, opt.jacobi);
      for (int q = 0; q < width; ++q) {
        const int point = out.order[b0 + static_cast<std::size_t>(q)];
        auto& pr = out.points[static_cast<std::size_t>(point)];
        pr.jacobi = std::move(lanes[static_cast<std::size_t>(q)]);
        pr.converged = pr.jacobi.reason == StopReason::kConverged;
        pr.p.resize(n);
        for (std::size_t i = 0; i < n; ++i) {
          pr.p[i] = x[i * static_cast<std::size_t>(width) +
                      static_cast<std::size_t>(q)];
        }
        gmres_rescue(point, pr);
      }
    } else {
      for (int q = 0; q < width; ++q) {
        const int point = out.order[b0 + static_cast<std::size_t>(q)];
        auto& pr = out.points[static_cast<std::size_t>(point)];
        core::StencilTable tbl(base,
                               rates[static_cast<std::size_t>(point)]);
        const StencilOperator op(std::move(tbl),
                                 StencilMode::kPropensityCache);
        pr.p.resize(n);
        guess_for(point, pr.p);
        pr.jacobi = jacobi_solve(op, op.inf_norm(), pr.p, opt.jacobi);
        pr.converged = pr.jacobi.reason == StopReason::kConverged;
        gmres_rescue(point, pr);
      }
    }
    for (std::size_t q = b0; q < b1; ++q) solved.push_back(out.order[q]);
    // Ensemble progress on the flight timeline: points solved after each
    // continuation block (block index is the iteration axis here).
    obs::flight("ensemble.solved", obs::FlightKind::kBatchActive, blk,
                static_cast<double>(solved.size()));
  }

  out.seconds_total = total.seconds();
  obs::count("ensemble.solves");
  obs::gauge("ensemble.points", static_cast<double>(k));
  obs::gauge("ensemble.blocks", static_cast<double>(nblocks));
  obs::gauge("ensemble.seconds", out.seconds_total, /*is_volatile=*/true);
  return out;
}

}  // namespace cmesolve::solver
