#pragma once
//
// Batched multi-RHS ensemble solver: one stencil structure, K parameter
// points per sweep.
//
// Production CME workloads are parameter sweeps over ONE reaction network:
// the state-space enumeration, conservation-law elimination, mixed-radix
// packing and per-reaction stride/window tables are identical for every
// point; only the rate constants differ. Because every propensity is
// evaluated rate-LAST (value = rate * unit combinatorial product, see
// core::StencilTable), the whole off-diagonal operator factors exactly as
//
//     A_k(i, i - stride_r) = coef[r][k] * U[r][src]
//
// where U is the rate-independent unit-propensity table (computed once per
// ensemble) and coef[r][k] is a per-point scalar. The batched sweep keeps
// K probability vectors interleaved point-major — element (row i, point k)
// at x[i*K + k] — so the inner loop over k is contiguous and vectorizes
// across the batch dimension: one pass streams the unit table once and
// advances all K right-hand sides, converting the memory-bound single-RHS
// sweep into an arithmetically dense one.
//
// Determinism contract (inherited from PR 1): every value depends only on
// (row, reaction, point) and per-row accumulation happens in reaction
// order inside the chunk owning the row, so results are bit-identical at
// any thread count. Stronger still, lane k of the batched pipeline is
// bit-identical to the SINGLE-RHS path solving point k alone: the shared
// unit table makes coef*u the exact product the single sweep computes, the
// per-lane norms chunk rows exactly like solver::norm_l1/norm_inf, and the
// blocked Jacobi driver below replays jacobi_solve's control flow per
// lane. tools/cme_fuzz cross-checks this equivalence continuously.
//
#include <cstdint>
#include <span>
#include <vector>

#include "core/stencil.hpp"
#include "solver/gmres.hpp"
#include "solver/jacobi.hpp"
#include "solver/stencil_operator.hpp"
#include "util/aligned_vector.hpp"
#include "util/types.hpp"

namespace cmesolve::solver {

/// Rate-independent activity mask over the box rows: active rows have
/// valid derived counts AND positive unit outflow. For any strictly
/// positive rate vector this equals "diagonal is not the -1 sentinel", so
/// masking is shared by every point of an ensemble (a point cannot go
/// absorbing on its own).
[[nodiscard]] std::vector<std::uint8_t> box_active_rows(
    const core::StencilTable& table);

/// Shared per-ensemble structure: the unit-rate propensity-cache operator
/// (combinatorial table computed ONCE per ensemble) plus the row activity
/// mask. Build once per (network, anchor); every block of an ensemble
/// binds its per-point coefficients against it. The source table must be
/// rebind-eligible (all compiled rates > 0).
class EnsembleStructure {
 public:
  explicit EnsembleStructure(const core::StencilTable& base);

  [[nodiscard]] const StencilOperator& unit() const noexcept { return unit_; }
  [[nodiscard]] index_t nrows() const noexcept {
    return unit_.table().box_rows();
  }
  [[nodiscard]] std::span<const std::uint8_t> row_active() const noexcept {
    return row_active_;
  }
  [[nodiscard]] index_t rows_active() const noexcept { return rows_active_; }
  /// Largest active row index (the GMRES constraint row).
  [[nodiscard]] index_t last_active_row() const noexcept {
    return last_active_;
  }

 private:
  StencilOperator unit_;
  std::vector<std::uint8_t> row_active_;
  index_t rows_active_ = 0;
  index_t last_active_ = -1;
};

/// Off-diagonal operator applying K parameter points per sweep. Vectors
/// are interleaved point-major: element (row i, point k) at x[i*K + k].
/// diag() is interleaved the same way (−1 sentinel on masked rows, every
/// lane). Satisfies the per-lane Jacobi semantics via batched_jacobi_solve.
class BatchedStencilOperator {
 public:
  /// `rates[k]` is point k's rate vector indexed by NETWORK reaction id
  /// (size network().num_reactions()); every compiled reaction's rate must
  /// be finite and > 0 (throws std::invalid_argument otherwise).
  BatchedStencilOperator(const EnsembleStructure& structure,
                         std::span<const std::vector<real_t>> rates);

  [[nodiscard]] int batch() const noexcept { return batch_; }
  [[nodiscard]] index_t nrows() const noexcept { return structure_->nrows(); }
  /// Interleaved per-lane diagonal, nrows() * batch() entries.
  [[nodiscard]] std::span<const real_t> diag() const noexcept { return diag_; }
  /// ||A_k||_inf per point, bitwise equal to the single-RHS operator's.
  [[nodiscard]] std::span<const real_t> inf_norms() const noexcept {
    return inf_norms_;
  }
  /// Off-diagonal entries per point (identical across the batch).
  [[nodiscard]] std::size_t offdiag_nnz() const noexcept {
    return structure_->unit().offdiag_nnz();
  }
  [[nodiscard]] const EnsembleStructure& structure() const noexcept {
    return *structure_;
  }

  /// y = (L + U) x for all K points: x and y interleaved, size
  /// nrows() * batch(). Lane k is bitwise equal to the single-RHS cached
  /// sweep of point k at any thread count.
  void multiply(std::span<const real_t> x, std::span<real_t> y) const;

  /// Sweep only the lanes listed in `lanes` (ascending lane indices);
  /// entries of y belonging to other lanes are left as zero garbage. An
  /// active lane's values are bitwise those of the full sweep — lanes
  /// never mix — so the blocked Jacobi driver uses this to stop paying for
  /// lanes that already converged. Empty `lanes` means all lanes.
  void multiply_active(std::span<const real_t> x, std::span<real_t> y,
                       std::span<const int> lanes) const;

  /// Modeled per-sweep traffic: the unit table streams ONCE for the whole
  /// batch (reactions x rows), while x reads and y writes scale with K —
  /// the amortization the gpusim batched kernel charges.
  [[nodiscard]] std::size_t bytes_modeled() const noexcept;

 private:
  const EnsembleStructure* structure_;
  int batch_ = 0;
  /// 64-byte aligned: coef_ rows and the interleaved diagonal are streamed
  /// by the SIMD batched-sweep and lane kernels.
  util::aligned_vector<real_t> coef_;  ///< [compiled reaction r][point k]
  util::aligned_vector<real_t> diag_;  ///< interleaved rows x batch
  std::vector<real_t> inf_norms_;      ///< per point
};

/// Blocked Jacobi over all lanes of a BatchedStencilOperator with
/// per-point convergence masking:
/// each lane replays jacobi_solve's exact control flow (initial and
/// periodic per-lane L1 normalization, residual checks on the shared
/// check_every/normalize_every schedule, the zero-residual short circuit,
/// stagnation patience) and FREEZES once it stops — its vector carries
/// through unchanged while neighbors iterate on. Lane k's iterate,
/// iteration count, residual and stop reason are bit-identical to
/// jacobi_solve on point k alone with the same options. Per-lane
/// `seconds` is the shared wall clock at the lane's stop (attribution,
/// not an independent measurement). x is interleaved, nrows * batch.
[[nodiscard]] std::vector<JacobiResult> batched_jacobi_solve(
    const BatchedStencilOperator& op, std::span<real_t> x,
    const JacobiOptions& opt = {});

struct EnsembleOptions {
  /// Lanes per batched block; the ensemble is solved in ceil(K/width)
  /// blocks. 1 degenerates to per-point solves through the batched code.
  int batch_width = 8;
  /// false: reference path — same ordering, guesses and fallback, but each
  /// point solved through the single-RHS StencilOperator + jacobi_solve.
  /// Bitwise identical results to the batched path by construction; the
  /// verify oracle and bench assert it.
  bool batched = true;
  /// Nearest-neighbor continuation ordering in log-rate space plus warm
  /// starts from the nearest solved point of an EARLIER block (block
  /// granularity keeps batched and sequential modes bitwise comparable).
  bool continuation = true;
  /// Re-solve lanes that stagnated (or hit max iterations) with restarted
  /// GMRES on the nonsingular-ized system, warm-started from the lane's
  /// Jacobi iterate.
  bool gmres_fallback = true;
  JacobiOptions jacobi;
  GmresOptions gmres;
  /// Optional box-layout initial guess applied where no warm start exists
  /// (empty: uniform over active rows).
  std::vector<real_t> initial_guess;
};

struct EnsemblePointResult {
  JacobiResult jacobi;
  bool gmres_used = false;
  bool converged = false;
  std::vector<real_t> p;  ///< stationary vector, box layout
};

struct EnsembleResult {
  std::vector<EnsemblePointResult> points;  ///< input order
  std::vector<int> order;                   ///< solve order (continuation)
  real_t seconds_total = 0.0;
  /// One-time shared work: unit-propensity cache + activity mask (batched
  /// mode) or the activity mask alone (sequential mode).
  real_t seconds_setup = 0.0;
};

/// Greedy nearest-neighbor chain over the points in log-rate space,
/// starting at point 0 (deterministic smallest-index tie-breaks). Nearby
/// rate vectors have nearby stationary distributions, so solving along the
/// chain makes every warm start informative.
[[nodiscard]] std::vector<int> continuation_order(
    std::span<const std::vector<real_t>> rates);

/// Solve the steady state of every parameter point against one shared
/// stencil structure. `rates[k]` indexes network reactions; all entries
/// must be finite and > 0 (throws std::invalid_argument). Results are in
/// input order; EnsembleResult::order records the continuation chain.
[[nodiscard]] EnsembleResult solve_ensemble(
    const core::StencilTable& base,
    std::span<const std::vector<real_t>> rates, const EnsembleOptions& opt = {});

}  // namespace cmesolve::solver
