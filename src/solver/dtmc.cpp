#include "solver/dtmc.hpp"

#include <cmath>
#include <vector>

namespace cmesolve::solver {

bool is_column_stochastic(const sparse::Csr& p, real_t tol) {
  if (p.nrows != p.ncols) return false;
  std::vector<real_t> colsum(static_cast<std::size_t>(p.ncols), 0.0);
  for (index_t r = 0; r < p.nrows; ++r) {
    for (index_t q = p.row_ptr[r]; q < p.row_ptr[r + 1]; ++q) {
      if (p.val[q] < 0.0) return false;
      colsum[static_cast<std::size_t>(p.col_idx[q])] += p.val[q];
    }
  }
  for (real_t s : colsum) {
    if (std::abs(s - 1.0) > tol) return false;
  }
  return true;
}

sparse::Csr generator_from_stochastic(const sparse::Csr& p) {
  sparse::Coo coo = sparse::coo_from_csr(p);
  for (index_t i = 0; i < p.nrows; ++i) {
    coo.add(i, i, -1.0);
  }
  return sparse::csr_from_coo(std::move(coo));
}

JacobiResult dtmc_stationary(const sparse::Csr& p, std::span<real_t> x,
                             const JacobiOptions& opt) {
  if (!is_column_stochastic(p)) {
    throw std::invalid_argument(
        "dtmc_stationary: matrix is not column-stochastic");
  }
  const sparse::Csr a = generator_from_stochastic(p);

  // Self-loop-heavy chains can produce a zero diagonal in A = P - I only
  // when p_jj = 1 (absorbing state); jacobi_solve rejects that case itself.
  CsrDiaOperator op(a);
  JacobiOptions run = opt;
  // P - I on a periodic chain carries the usual -1 Jacobi mode; damping is
  // the standard cure and costs one axpy.
  if (run.damping == 1.0) run.damping = 0.75;
  return jacobi_solve(op, a.inf_norm(), x, run);
}

}  // namespace cmesolve::solver
