#pragma once
//
// Discrete-time Markov chains — the other half of the paper's "can be
// generalized to operation on stochastic matrices (Markov models)" claim.
//
// Given a column-stochastic transition matrix P (column j holds the
// distribution of the next state), the stationary distribution solves
// pi = P pi. This is equivalent to the steady state of the generator
// A = P - I, so the whole CTMC tool chain (formats, Jacobi, GPU kernels)
// applies unchanged; the convenience wrapper here performs the reduction.
//
#include <span>
#include <stdexcept>

#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "sparse/csr.hpp"

namespace cmesolve::solver {

/// Verify that every column of `p` sums to 1 within `tol` and that all
/// entries are non-negative.
[[nodiscard]] bool is_column_stochastic(const sparse::Csr& p,
                                        real_t tol = 1e-9);

/// Convert a column-stochastic matrix to the equivalent CTMC generator
/// A = P - I (columns then sum to zero).
[[nodiscard]] sparse::Csr generator_from_stochastic(const sparse::Csr& p);

/// Stationary distribution of a column-stochastic matrix via the Jacobi
/// pipeline on A = P - I. Throws std::invalid_argument when `p` is not
/// column-stochastic. `x` carries the initial guess in, pi out.
JacobiResult dtmc_stationary(const sparse::Csr& p, std::span<real_t> x,
                             const JacobiOptions& opt = {});

}  // namespace cmesolve::solver
