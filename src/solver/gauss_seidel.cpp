#include "solver/gauss_seidel.hpp"

#include <cmath>

#include "solver/vector_ops.hpp"

namespace cmesolve::solver {

JacobiResult gauss_seidel_solve(const sparse::Csr& a, real_t a_inf_norm,
                                std::span<real_t> x,
                                const JacobiOptions& opt) {
  const index_t n = a.nrows;
  if (x.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("gauss_seidel_solve: x size mismatch");
  }

  std::vector<real_t> resid(static_cast<std::size_t>(n));
  WallTimer timer;
  JacobiResult out;
  const std::uint64_t flops_per_sweep =
      2ULL * a.nnz() + static_cast<std::uint64_t>(n);
  real_t prev_residual = -1.0;

  normalize_l1(x);
  for (std::uint64_t it = 1; it <= opt.max_iterations; ++it) {
    for (index_t i = 0; i < n; ++i) {
      real_t sum = 0.0;
      real_t diag = 0.0;
      for (index_t p = a.row_ptr[i]; p < a.row_ptr[i + 1]; ++p) {
        const index_t j = a.col_idx[p];
        if (j == i) {
          diag = a.val[p];
        } else {
          sum += a.val[p] * x[j];  // already-updated entries are used
        }
      }
      if (diag == 0.0) {
        throw std::domain_error("gauss_seidel_solve: zero diagonal");
      }
      x[i] = -sum / diag;
    }
    out.iterations = it;
    out.flops += flops_per_sweep;
    if (opt.normalize_every > 0 && it % opt.normalize_every == 0) {
      normalize_l1(x);
    }

    if (it % opt.check_every == 0 || it == opt.max_iterations) {
      normalize_l1(x);
      sparse::spmv(a, x, resid);
      const real_t xn = norm_inf(x);
      const real_t rn = norm_inf(resid);
      out.flops += flops_per_sweep;
      // Exactly-converged iterate: report kConverged without touching the
      // relative-change test (whose quotient is 0/0 once a residual hits
      // zero). Same guard as jacobi_solve.
      if (rn == 0.0) {
        out.residual = 0.0;
        if (opt.on_residual) opt.on_residual(it, out.residual);
        out.reason = StopReason::kConverged;
        break;
      }
      out.residual = rn / (a_inf_norm * (xn > 0 ? xn : 1.0));
      if (opt.on_residual) opt.on_residual(it, out.residual);
      if (out.residual <= opt.eps) {
        out.reason = StopReason::kConverged;
        break;
      }
      if (prev_residual > 0.0 &&
          std::abs(out.residual - prev_residual) / prev_residual <=
              opt.stagnation_eps) {
        out.reason = StopReason::kStagnated;
        break;
      }
      prev_residual = out.residual;
    }
  }

  normalize_l1(x);
  out.seconds = timer.seconds();
  out.gflops = out.seconds > 0
                   ? static_cast<real_t>(out.flops) / out.seconds / 1.0e9
                   : 0.0;
  return out;
}

}  // namespace cmesolve::solver
