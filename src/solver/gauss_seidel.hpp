#pragma once
//
// Gauss-Seidel iteration on the full CSR matrix — a sequential baseline
// included to quantify what the embarrassingly-parallel Jacobi gives up in
// per-iteration convergence (robustness ablation; not in the paper's
// evaluation, which is GPU-oriented).
//
#include <span>
#include <stdexcept>
#include <vector>

#include "solver/jacobi.hpp"
#include "sparse/csr.hpp"

namespace cmesolve::solver {

/// Solve A P = 0 with forward Gauss-Seidel sweeps; same stopping rules as
/// jacobi_solve. `a` must carry its diagonal.
JacobiResult gauss_seidel_solve(const sparse::Csr& a, real_t a_inf_norm,
                                std::span<real_t> x,
                                const JacobiOptions& opt = {});

}  // namespace cmesolve::solver
