#include "solver/gmres.hpp"

#include <cmath>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/vector_ops.hpp"

namespace cmesolve::solver {

namespace {

/// Apply a Givens rotation (c, s) to the pair (h1, h2).
void apply_givens(real_t c, real_t s, real_t& h1, real_t& h2) {
  const real_t t = c * h1 + s * h2;
  h2 = -s * h1 + c * h2;
  h1 = t;
}

/// Outcome metrics, published on every exit path.
void publish_gmres(const GmresResult& out) {
  obs::count("gmres.solves");
  obs::gauge("gmres.iterations", static_cast<real_t>(out.iterations));
  obs::gauge("gmres.residual.final", out.relative_residual);
  obs::gauge("gmres.converged", out.converged ? 1.0 : 0.0);
  obs::flight("gmres.stop", obs::FlightKind::kStop, out.iterations,
              out.converged ? 1.0 : 0.0);
  if (!out.converged && obs::flight_enabled()) {
    obs::FlightRecorder::instance().mark_post_mortem("gmres: not converged");
  }
}

}  // namespace

GmresResult gmres_solve(const LinearOp& apply, index_t n,
                        std::span<const real_t> b, std::span<real_t> x,
                        const GmresOptions& opt) {
  CMESOLVE_TRACE_SPAN("gmres.solve");
  GmresResult out;
  const int m = opt.restart;
  const std::size_t nn = static_cast<std::size_t>(n);

  const real_t bnorm = norm_l2(b);
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    out.converged = true;
    publish_gmres(out);
    return out;
  }

  std::vector<std::vector<real_t>> v(
      static_cast<std::size_t>(m + 1), std::vector<real_t>(nn));
  // Hessenberg, column-major: h[j] has j+2 entries.
  std::vector<std::vector<real_t>> h(static_cast<std::size_t>(m));
  std::vector<real_t> cs(static_cast<std::size_t>(m));
  std::vector<real_t> sn(static_cast<std::size_t>(m));
  std::vector<real_t> g(static_cast<std::size_t>(m + 1));
  std::vector<real_t> w(nn);

  while (out.iterations < opt.max_iterations) {
    // r0 = b - A x
    apply(x, w);
    for (std::size_t i = 0; i < nn; ++i) v[0][i] = b[i] - w[i];
    real_t beta = norm_l2(v[0]);
    out.relative_residual = beta / bnorm;
    if (out.relative_residual <= opt.tol) {
      out.converged = true;
      publish_gmres(out);
      return out;
    }
    scale(v[0], 1.0 / beta);
    std::fill(g.begin(), g.end(), 0.0);
    g[0] = beta;

    int j = 0;
    for (; j < m && out.iterations < opt.max_iterations; ++j) {
      ++out.iterations;
      apply(v[static_cast<std::size_t>(j)], w);
      // Modified Gram-Schmidt.
      h[static_cast<std::size_t>(j)].assign(static_cast<std::size_t>(j) + 2,
                                            0.0);
      for (int i = 0; i <= j; ++i) {
        const real_t hij = dot(w, v[static_cast<std::size_t>(i)]);
        h[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = hij;
        axpy(-hij, v[static_cast<std::size_t>(i)], w);
      }
      const real_t hlast = norm_l2(w);
      h[static_cast<std::size_t>(j)][static_cast<std::size_t>(j) + 1] = hlast;
      if (hlast > 0.0) {
        v[static_cast<std::size_t>(j) + 1] = w;
        scale(v[static_cast<std::size_t>(j) + 1], 1.0 / hlast);
      }

      // Apply previous rotations to the new column, then form a new one.
      auto& col = h[static_cast<std::size_t>(j)];
      for (int i = 0; i < j; ++i) {
        apply_givens(cs[static_cast<std::size_t>(i)],
                     sn[static_cast<std::size_t>(i)],
                     col[static_cast<std::size_t>(i)],
                     col[static_cast<std::size_t>(i) + 1]);
      }
      const real_t denom = std::hypot(col[static_cast<std::size_t>(j)],
                                      col[static_cast<std::size_t>(j) + 1]);
      if (denom == 0.0) {
        cs[static_cast<std::size_t>(j)] = 1.0;
        sn[static_cast<std::size_t>(j)] = 0.0;
      } else {
        cs[static_cast<std::size_t>(j)] =
            col[static_cast<std::size_t>(j)] / denom;
        sn[static_cast<std::size_t>(j)] =
            col[static_cast<std::size_t>(j) + 1] / denom;
      }
      apply_givens(cs[static_cast<std::size_t>(j)],
                   sn[static_cast<std::size_t>(j)],
                   col[static_cast<std::size_t>(j)],
                   col[static_cast<std::size_t>(j) + 1]);
      apply_givens(cs[static_cast<std::size_t>(j)],
                   sn[static_cast<std::size_t>(j)], g[static_cast<std::size_t>(j)],
                   g[static_cast<std::size_t>(j) + 1]);

      out.relative_residual = std::abs(g[static_cast<std::size_t>(j) + 1]) / bnorm;
      out.residual_history.push_back(out.relative_residual);
      CMESOLVE_TRACE_COUNTER("gmres.residual", out.relative_residual);
      obs::observe("gmres.residual", out.relative_residual);
      obs::flight("gmres.residual", obs::FlightKind::kResidual,
                  out.iterations, out.relative_residual);
      if (out.relative_residual <= opt.tol || hlast == 0.0) {
        ++j;
        break;
      }
    }

    // Back-substitute y from the triangularized Hessenberg and update x.
    std::vector<real_t> y(static_cast<std::size_t>(j), 0.0);
    for (int i = j - 1; i >= 0; --i) {
      real_t sum = g[static_cast<std::size_t>(i)];
      for (int k = i + 1; k < j; ++k) {
        sum -= h[static_cast<std::size_t>(k)][static_cast<std::size_t>(i)] *
               y[static_cast<std::size_t>(k)];
      }
      y[static_cast<std::size_t>(i)] =
          sum / h[static_cast<std::size_t>(i)][static_cast<std::size_t>(i)];
    }
    for (int i = 0; i < j; ++i) {
      axpy(y[static_cast<std::size_t>(i)], v[static_cast<std::size_t>(i)], x);
    }

    if (out.relative_residual <= opt.tol) {
      out.converged = true;
      publish_gmres(out);
      return out;
    }
  }
  publish_gmres(out);
  return out;
}

LinearOp steady_state_operator(const sparse::Csr& a, index_t constraint_row) {
  return [&a, constraint_row](std::span<const real_t> x, std::span<real_t> y) {
    sparse::spmv(a, x, y);
    real_t sum = 0.0;
    for (real_t v : x) sum += v;
    y[constraint_row] = sum;
  };
}

std::vector<real_t> steady_state_rhs(index_t n, index_t constraint_row) {
  std::vector<real_t> b(static_cast<std::size_t>(n), 0.0);
  b[constraint_row] = 1.0;
  return b;
}

}  // namespace cmesolve::solver
