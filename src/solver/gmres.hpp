#pragma once
//
// Restarted GMRES(m) (Saad & Schultz [19]).
//
// Included to reproduce the paper's Sec. IV observation: on the singular,
// ill-conditioned systems arising from the CME, GMRES stagnates where the
// (normalized) Jacobi iteration converges. The steady-state problem is
// posed in the standard nonsingular-ized form: replace one balance row with
// the normalization constraint sum_i x_i = 1 and solve A~ x = e_last.
//
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace cmesolve::solver {

/// y = A x for an arbitrary linear operator.
using LinearOp =
    std::function<void(std::span<const real_t>, std::span<real_t>)>;

struct GmresOptions {
  int restart = 30;             ///< Krylov dimension m
  std::uint64_t max_iterations = 2000;  ///< total matvec budget
  real_t tol = 1e-8;            ///< relative residual target ||r|| / ||b||
};

struct GmresResult {
  bool converged = false;
  std::uint64_t iterations = 0;     ///< matvecs performed
  real_t relative_residual = 0.0;   ///< final ||b - A x|| / ||b||
  std::vector<real_t> residual_history;  ///< one entry per inner iteration
};

/// Solve A x = b with restarted GMRES. `x` carries the initial guess.
[[nodiscard]] GmresResult gmres_solve(const LinearOp& apply, index_t n,
                                      std::span<const real_t> b,
                                      std::span<real_t> x,
                                      const GmresOptions& opt = {});

/// The nonsingular-ized steady-state operator: A with row `constraint_row`
/// replaced by all-ones (sum_i x_i), matching right-hand side e_row.
[[nodiscard]] LinearOp steady_state_operator(const sparse::Csr& a,
                                             index_t constraint_row);
[[nodiscard]] std::vector<real_t> steady_state_rhs(index_t n,
                                                   index_t constraint_row);

}  // namespace cmesolve::solver
