#include "solver/gpu_jacobi.hpp"

#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace cmesolve::solver {

GpuJacobiReport gpu_jacobi_solve(const gpusim::DeviceSpec& dev,
                                 const sparse::Csr& a, std::span<real_t> x,
                                 const JacobiOptions& opt,
                                 const gpusim::SimOptions& sim_opt) {
  CMESOLVE_TRACE_SPAN("gpu_jacobi.solve");
  GpuJacobiReport report;

  const WarpedEllDiaOperator op(a);
  const real_t a_inf = a.inf_norm();

  // --- numerics (bit-identical to what the GPU kernel computes) -----------
  // jacobi_solve carries the exact-zero-residual guard: an iterate with
  // ||r||_inf == 0 reports kConverged, never a 0/0-poisoned stagnation
  // verdict, so the simulated iteration counts below stay meaningful.
  report.result = jacobi_solve(op, a_inf, x, opt);

  // --- cost model -----------------------------------------------------------
  std::vector<real_t> xin(x.begin(), x.end());
  std::vector<real_t> xout(x.size());
  report.sweep = gpusim::simulate_jacobi_sweep(dev, op.gpu_hybrid(), xin, xout,
                                               sim_opt);

  // Periodic kernels: the residual costs one extra sweep plus a reduction;
  // the renormalization is a reduction plus a scale pass.
  const index_t n = a.nrows;
  const auto reduce =
      gpusim::simulate_vector_op(dev, n, /*reads=*/1, /*writes=*/0, sim_opt);
  const auto scale_pass =
      gpusim::simulate_vector_op(dev, n, /*reads=*/1, /*writes=*/1, sim_opt);

  const auto iters = report.result.iterations;
  const std::uint64_t checks =
      opt.check_every ? iters / opt.check_every : 0;
  const std::uint64_t norms =
      opt.normalize_every ? iters / opt.normalize_every : 0;

  report.sim_seconds =
      static_cast<real_t>(iters) * report.sweep.seconds +
      static_cast<real_t>(checks) *
          (report.sweep.seconds + reduce.seconds + scale_pass.seconds) +
      static_cast<real_t>(norms) * (reduce.seconds + scale_pass.seconds);
  report.sim_gflops =
      report.sim_seconds > 0
          ? static_cast<real_t>(report.result.flops) / report.sim_seconds / 1e9
          : 0.0;
  // Simulated end-to-end cost: deterministic (products of the traffic
  // model), unlike the host wall-clock inside report.result.
  obs::count("gpu_jacobi.solves");
  obs::gauge("gpu_jacobi.sim_seconds", report.sim_seconds);
  obs::gauge("gpu_jacobi.sim_gflops", report.sim_gflops);
  // Inner per-iteration events come from jacobi_solve above; this one pins
  // the simulated cost onto the same flight timeline.
  obs::flight("gpu_jacobi.stop", obs::FlightKind::kStop,
              report.result.iterations,
              static_cast<double>(report.result.reason));
  return report;
}

}  // namespace cmesolve::solver
