#pragma once
//
// GPU-simulated Jacobi solve (the Table IV "Warp ELL+DIA" column).
//
// The numerics run on the host through the same operator the GPU kernel
// would use, producing identical iterates, iteration counts and residuals.
// The GPU time is obtained from the simulator: a steady-state per-sweep
// cost (the access pattern repeats every iteration, so one warm-cache
// simulation prices them all) plus the periodic residual and normalization
// kernels.
//
#include <span>

#include "gpusim/device.hpp"
#include "gpusim/kernels.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "sparse/csr.hpp"

namespace cmesolve::solver {

struct GpuJacobiReport {
  JacobiResult result;           ///< numerics (identical to the CPU solve)
  gpusim::KernelStats sweep;     ///< steady-state per-iteration kernel cost
  real_t sim_seconds = 0.0;      ///< simulated end-to-end GPU time
  real_t sim_gflops = 0.0;       ///< flops / sim_seconds — the Table IV number
};

/// Solve A P = 0 on the simulated GPU with the warp-grained sliced ELL +
/// DIA hybrid. `a` must be the full rate matrix (diagonal included).
[[nodiscard]] GpuJacobiReport gpu_jacobi_solve(
    const gpusim::DeviceSpec& dev, const sparse::Csr& a, std::span<real_t> x,
    const JacobiOptions& opt = {}, const gpusim::SimOptions& sim_opt = {});

}  // namespace cmesolve::solver
