#pragma once
//
// Jacobi iteration for the singular steady-state system A P = 0 (Sec. IV).
//
// Component-wise:  x_i^{k+1} = -(1 / a_ii) * sum_{j != i} a_ij x_j^k
// with the probability-vector invariant maintained by periodic L1
// renormalization, and the paper's two-part stopping criterion:
//
//   converged:  ||r^k||_inf / (||A||_inf * ||x^k||_inf)  <= eps
//   stagnated:  | ||r^{k+1}||_inf - ||r^k||_inf | / ||r^k||_inf <= eps_stag
//
// The residual costs as much as a sweep, so it is evaluated only every
// `check_every` iterations (Sec. IV).
//
#include <algorithm>
#include <concepts>
#include <functional>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/vector_ops.hpp"
#include "util/aligned_vector.hpp"
#include "util/parallel.hpp"
#include "util/simd_kernels.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace cmesolve::solver {

/// Anything that multiplies by the strictly off-diagonal part of A and
/// exposes the dense diagonal.
template <class Op>
concept JacobiOperator = requires(const Op& op, std::span<const real_t> x,
                                  std::span<real_t> y) {
  { op.nrows() } -> std::convertible_to<index_t>;
  { op.diag() } -> std::convertible_to<std::span<const real_t>>;
  { op.offdiag_nnz() } -> std::convertible_to<std::size_t>;
  op.multiply(x, y);
};

struct JacobiOptions {
  real_t eps = 1e-8;                ///< paper's epsilon
  real_t stagnation_eps = 1e-8;     ///< relative residual-change floor
  std::uint64_t max_iterations = 1'000'000;
  std::uint32_t check_every = 100;  ///< residual evaluation period
  std::uint32_t normalize_every = 10;  ///< L1 renormalization period
  /// Consecutive residual checks that must look flat before declaring
  /// stagnation (guards against oscillatory residuals matching by chance).
  std::uint32_t stagnation_patience = 2;
  real_t damping = 1.0;  ///< 1.0 = plain Jacobi; <1 = weighted (extension)
  /// Observer invoked at every residual evaluation with (iteration,
  /// normalized residual) — convergence-history tracing.
  std::function<void(std::uint64_t, real_t)> on_residual;
  /// When > 0, keep a stride-sampled residual history of at most this many
  /// samples in JacobiResult::residual_history: every residual check is
  /// recorded until the buffer fills, then every 2nd surviving sample is
  /// kept and the sampling stride doubles — bounded memory, full-range
  /// coverage. 0 (the default) records nothing.
  std::size_t history_capacity = 0;
};

enum class StopReason : std::uint8_t {
  kConverged,
  kStagnated,
  kMaxIterations,
};

/// One point of the convergence history: the normalized residual as
/// evaluated at iteration `iteration`.
struct ResidualSample {
  std::uint64_t iteration = 0;
  real_t residual = 0.0;
};

struct JacobiResult {
  std::uint64_t iterations = 0;
  real_t residual = 0.0;        ///< last normalized residual
  StopReason reason = StopReason::kMaxIterations;
  real_t seconds = 0.0;         ///< host wall-clock
  std::uint64_t flops = 0;      ///< 2*offdiag_nnz + n per sweep, summed
  real_t gflops = 0.0;          ///< measured host throughput
  /// Stride-sampled convergence history (JacobiOptions::history_capacity).
  std::vector<ResidualSample> residual_history;
  /// Final sampling stride, in residual checks: samples are check numbers
  /// 0, stride, 2*stride, ... (starts at 1, doubles on each compaction).
  std::uint64_t history_stride = 1;
};

[[nodiscard]] constexpr const char* to_string(StopReason r) noexcept {
  switch (r) {
    case StopReason::kConverged: return "converged";
    case StopReason::kStagnated: return "stagnated";
    case StopReason::kMaxIterations: return "max-iterations";
  }
  return "?";
}

/// Solve A P = 0. `a_inf_norm` is ||A||_inf of the FULL matrix (with
/// diagonal); `x` carries the initial guess in and the solution out.
template <JacobiOperator Op>
JacobiResult jacobi_solve(const Op& op, real_t a_inf_norm,
                          std::span<real_t> x, const JacobiOptions& opt = {}) {
  const index_t n = op.nrows();
  if (x.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("jacobi_solve: x size mismatch");
  }
  const std::span<const real_t> d = op.diag();
  for (index_t i = 0; i < n; ++i) {
    if (d[i] == 0.0) {
      throw std::domain_error(
          "jacobi_solve: zero diagonal (absorbing state in the CME)");
    }
  }

  // 64-byte aligned solver state: SIMD loads in the kernels start on a
  // vector boundary instead of incidentally.
  util::aligned_vector<real_t> next(static_cast<std::size_t>(n));
  util::aligned_vector<real_t> resid(static_cast<std::size_t>(n));
  const real_t omega = opt.damping;
  const util::simdk::KernelOps& ko = util::simdk::kernels();

  CMESOLVE_TRACE_SPAN("jacobi.solve");
  WallTimer timer;
  JacobiResult out;
  const std::uint64_t flops_per_sweep =
      2ULL * op.offdiag_nnz() + static_cast<std::uint64_t>(n);
  real_t prev_residual = -1.0;
  std::uint32_t flat_checks = 0;
  std::uint64_t check_number = 0;  // residual checks done (history sampling)
  // Stride-doubling compaction needs room for at least 2 survivors.
  const std::size_t history_cap =
      opt.history_capacity > 0 ? std::max<std::size_t>(opt.history_capacity, 2)
                               : 0;

  normalize_l1(x);
  for (std::uint64_t it = 1; it <= opt.max_iterations; ++it) {
    // One sweep: next = -D^{-1} (L+U) x, optionally damped. The diagonal
    // scale and the swap are elementwise, so the parallel split cannot
    // change the numbers.
    {
      CMESOLVE_TRACE_SPAN("jacobi.sweep");
      op.multiply(x, next);
      // Fused diagonal-scale + swap through the SIMD kernel table: one
      // pass over the state instead of scale-then-swap, same per-element
      // values. The damped formula stays a separate kernel — at
      // omega == 1 it is NOT bitwise the undamped one (signed zeros).
      real_t* pn = next.data();
      real_t* px = x.data();
      const real_t* pd = d.data();
      if (omega == 1.0) {
        util::parallel_for(static_cast<std::size_t>(n),
                           [pn, px, pd, &ko](std::size_t b, std::size_t e) {
                             ko.scale_swap(px + b, pn + b, pd + b, e - b);
                           });
      } else {
        util::parallel_for(
            static_cast<std::size_t>(n),
            [pn, px, pd, omega, &ko](std::size_t b, std::size_t e) {
              ko.scale_swap_damped(px + b, pn + b, pd + b, omega, e - b);
            });
      }
    }
    out.iterations = it;
    out.flops += flops_per_sweep;

    if (opt.normalize_every > 0 && it % opt.normalize_every == 0) {
      CMESOLVE_TRACE_INSTANT("jacobi.renormalize");
      obs::count("jacobi.renormalizations");
      if (obs::flight_enabled()) {
        // The L1 drift since the last renormalization — an extra reduction,
        // paid only in flight-recording mode.
        obs::flight("jacobi.l1_drift", obs::FlightKind::kNormalization, it,
                    norm_l1(x));
      }
      normalize_l1(x);
    }

    if (it % opt.check_every == 0 || it == opt.max_iterations) {
      CMESOLVE_TRACE_SPAN("jacobi.residual_check");
      normalize_l1(x);
      // r = A x = (L+U) x + D x
      op.multiply(x, resid);
      {
        real_t* pr = resid.data();
        const real_t* px = x.data();
        const real_t* pd = d.data();
        util::parallel_for(static_cast<std::size_t>(n),
                           [pr, px, pd, &ko](std::size_t b, std::size_t e) {
                             ko.cmul_add(pr + b, pd + b, px + b, e - b);
                           });
      }
      const real_t xn = norm_inf(x);
      const real_t rn = norm_inf(resid);
      // An exactly-zero residual means the iterate solves A x = 0 to the
      // last bit. It must short-circuit to kConverged here: letting it fall
      // through would divide by a (possibly zero) a_inf_norm * xn product,
      // and a zero prev_residual would turn the relative-change stagnation
      // test below into 0/0.
      if (rn == 0.0) {
        out.residual = 0.0;
        CMESOLVE_TRACE_COUNTER("jacobi.residual", out.residual);
        obs::observe("jacobi.residual", out.residual);
        obs::flight("jacobi.residual", obs::FlightKind::kResidual, it, 0.0);
        if (opt.on_residual) opt.on_residual(it, out.residual);
        out.reason = StopReason::kConverged;
        break;
      }
      out.residual = rn / (a_inf_norm * (xn > 0 ? xn : 1.0));
      out.flops += flops_per_sweep;  // the residual costs one extra sweep
      CMESOLVE_TRACE_COUNTER("jacobi.residual", out.residual);
      obs::observe("jacobi.residual", out.residual);
      obs::flight("jacobi.residual", obs::FlightKind::kResidual, it,
                  out.residual);
      if (opt.on_residual) opt.on_residual(it, out.residual);
      if (history_cap > 0) {
        if (check_number % out.history_stride == 0) {
          if (out.residual_history.size() >= history_cap) {
            // Full: keep every 2nd surviving sample and double the stride —
            // the buffer stays bounded while spanning the whole solve.
            std::size_t w = 0;
            for (std::size_t r = 0; r < out.residual_history.size(); r += 2) {
              out.residual_history[w++] = out.residual_history[r];
            }
            out.residual_history.resize(w);
            out.history_stride *= 2;
          }
          if (check_number % out.history_stride == 0) {
            out.residual_history.push_back({it, out.residual});
          }
        }
        ++check_number;
      }

      if (out.residual <= opt.eps) {
        out.reason = StopReason::kConverged;
        break;
      }
      // prev_residual > 0 (not >= 0): the relative-change quotient is
      // undefined at zero, and a zero previous residual would have stopped
      // the solve as converged already.
      if (prev_residual > 0.0 &&
          std::abs(out.residual - prev_residual) / prev_residual <=
              opt.stagnation_eps) {
        obs::flight("jacobi.stagnation", obs::FlightKind::kStagnation, it,
                    std::abs(out.residual - prev_residual) / prev_residual);
        if (++flat_checks >= opt.stagnation_patience) {
          out.reason = StopReason::kStagnated;
          break;
        }
      } else {
        flat_checks = 0;
      }
      prev_residual = out.residual;
    }
  }

  normalize_l1(x);
  out.seconds = timer.seconds();
  out.gflops = out.seconds > 0
                   ? static_cast<real_t>(out.flops) / out.seconds / 1.0e9
                   : 0.0;
  obs::flight("jacobi.stop", obs::FlightKind::kStop, out.iterations,
              static_cast<double>(out.reason));
  if (out.reason != StopReason::kConverged && obs::flight_enabled()) {
    // Arm the post mortem: write_report() dumps the recorded trajectory
    // into the run report's "flight" section for this failed solve.
    obs::FlightRecorder::instance().mark_post_mortem(to_string(out.reason));
  }
  // Deterministic outcome metrics; host wall-clock goes to the volatile
  // section of the run report (it cannot be bit-identical run-to-run).
  obs::count("jacobi.solves");
  obs::gauge("jacobi.iterations", static_cast<real_t>(out.iterations));
  obs::gauge("jacobi.residual.final", out.residual);
  obs::gauge("jacobi.converged",
             out.reason == StopReason::kConverged ? 1.0 : 0.0);
  obs::gauge("jacobi.flops", static_cast<real_t>(out.flops));
  obs::gauge("jacobi.seconds", out.seconds, /*is_volatile=*/true);
  obs::gauge("jacobi.gflops", out.gflops, /*is_volatile=*/true);
  return out;
}

}  // namespace cmesolve::solver
