//
// Arnoldi expm(tA)v with adaptive sub-stepping. See krylov_expm.hpp.
//
#include "solver/krylov_expm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/vector_ops.hpp"
#include "util/parallel.hpp"
#include "util/simd_kernels.hpp"

namespace cmesolve::solver {
namespace {

/// y += c .* x through the kernel table (deterministic elementwise pass).
void cmul_add(std::span<real_t> y, std::span<const real_t> c,
              std::span<const real_t> x) {
  real_t* py = y.data();
  const real_t* pc = c.data();
  const real_t* px = x.data();
  const util::simdk::KernelOps& ko = util::simdk::kernels();
  util::parallel_for(y.size(),
                     [py, pc, px, &ko](std::size_t b, std::size_t e) {
                       ko.cmul_add(py + b, pc + b, px + b, e - b);
                     });
}

/// y = A x for the FULL generator: off-diagonal multiply + diagonal.
void apply_full(const TransientOperator& op, std::span<const real_t> x,
                std::span<real_t> y) {
  op.multiply(x, y);
  cmul_add(y, op.diag, x);
}

/// Serial dense n*n helpers (n <= krylov_dim + 2, so ~32).
void mat_mul(const std::vector<real_t>& a, const std::vector<real_t>& b,
             std::vector<real_t>& c, int n) {
  const auto un = static_cast<std::size_t>(n);
  for (std::size_t i = 0; i < un; ++i) {
    for (std::size_t j = 0; j < un; ++j) c[i * un + j] = 0.0;
    for (std::size_t k = 0; k < un; ++k) {
      const real_t aik = a[i * un + k];
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < un; ++j) {
        c[i * un + j] += aik * b[k * un + j];
      }
    }
  }
}

/// Solve D X = N in place (X overwrites N) by Gaussian elimination with
/// partial pivoting. D is destroyed.
void solve_dense(std::vector<real_t>& d, std::vector<real_t>& x_rhs, int n) {
  const auto un = static_cast<std::size_t>(n);
  for (std::size_t col = 0; col < un; ++col) {
    std::size_t piv = col;
    for (std::size_t r = col + 1; r < un; ++r) {
      if (std::abs(d[r * un + col]) > std::abs(d[piv * un + col])) piv = r;
    }
    if (d[piv * un + col] == 0.0) {
      throw std::runtime_error("krylov_expm: singular Pade denominator");
    }
    if (piv != col) {
      for (std::size_t j = 0; j < un; ++j) {
        std::swap(d[piv * un + j], d[col * un + j]);
        std::swap(x_rhs[piv * un + j], x_rhs[col * un + j]);
      }
    }
    const real_t inv = 1.0 / d[col * un + col];
    for (std::size_t r = 0; r < un; ++r) {
      if (r == col) continue;
      const real_t f = d[r * un + col] * inv;
      if (f == 0.0) continue;
      for (std::size_t j = col; j < un; ++j) {
        d[r * un + j] -= f * d[col * un + j];
      }
      for (std::size_t j = 0; j < un; ++j) {
        x_rhs[r * un + j] -= f * x_rhs[col * un + j];
      }
    }
  }
  for (std::size_t r = 0; r < un; ++r) {
    const real_t inv = 1.0 / d[r * un + r];
    for (std::size_t j = 0; j < un; ++j) x_rhs[r * un + j] *= inv;
  }
}

}  // namespace

void dense_expm(std::span<const real_t> m, int n, std::span<real_t> out) {
  constexpr int kPadeOrder = 6;
  const auto un = static_cast<std::size_t>(n);
  if (m.size() != un * un || out.size() != un * un) {
    throw std::invalid_argument("dense_expm: size mismatch");
  }
  // Scale M by 2^-s so its inf-norm drops to <= 1/2: 2^-s * norm <= 1/2
  // needs s >= log2(norm) + 1, hence the ceil-plus-one choice.
  real_t norm = 0.0;
  for (std::size_t i = 0; i < un; ++i) {
    real_t row = 0.0;
    for (std::size_t j = 0; j < un; ++j) row += std::abs(m[i * un + j]);
    norm = std::max(norm, row);
  }
  int s = 0;
  if (norm > 0.5) {
    s = static_cast<int>(std::ceil(std::log2(norm))) + 1;
    if (s < 0) s = 0;
  }
  const real_t scale = std::ldexp(1.0, -s);

  std::vector<real_t> a(un * un);
  for (std::size_t i = 0; i < un * un; ++i) a[i] = m[i] * scale;

  // Diagonal Pade(6,6): N = sum c_k A^k, D = sum (-1)^k c_k A^k.
  std::vector<real_t> pow_a = a;  // A^k as k walks up
  std::vector<real_t> num(un * un, 0.0);
  std::vector<real_t> den(un * un, 0.0);
  for (std::size_t i = 0; i < un; ++i) {
    num[i * un + i] = 1.0;
    den[i * un + i] = 1.0;
  }
  real_t c = 1.0;
  std::vector<real_t> tmp(un * un);
  for (int k = 1; k <= kPadeOrder; ++k) {
    c *= static_cast<real_t>(kPadeOrder - k + 1) /
         static_cast<real_t>(k * (2 * kPadeOrder - k + 1));
    if (k > 1) {
      mat_mul(pow_a, a, tmp, n);
      pow_a.swap(tmp);
    }
    const real_t sign = (k % 2 == 0) ? 1.0 : -1.0;
    for (std::size_t i = 0; i < un * un; ++i) {
      num[i] += c * pow_a[i];
      den[i] += sign * c * pow_a[i];
    }
  }
  solve_dense(den, num, n);  // num <- D^{-1} N = expm(A/2^s)

  for (int q = 0; q < s; ++q) {
    mat_mul(num, num, tmp, n);
    num.swap(tmp);
  }
  std::copy(num.begin(), num.end(), out.begin());
}

KrylovExpmResult krylov_expm_solve(const TransientOperator& op, real_t t,
                                   std::span<real_t> p,
                                   const KrylovExpmOptions& opt) {
  CMESOLVE_TRACE_SPAN("solver.krylov_expm");
  const auto n = static_cast<std::size_t>(op.n);
  if (p.size() != n) {
    throw std::invalid_argument("krylov_expm_solve: p size mismatch");
  }
  if (t < 0.0) {
    throw std::invalid_argument("krylov_expm_solve: negative time");
  }
  if (opt.krylov_dim < 1) {
    throw std::invalid_argument("krylov_expm_solve: krylov_dim must be >= 1");
  }
  if (!(opt.tol > 0.0)) {
    throw std::invalid_argument("krylov_expm_solve: tol must be positive");
  }

  KrylovExpmResult out;
  if (t == 0.0 || n == 0) return out;
  real_t beta = norm_l2(p);
  if (beta == 0.0) return out;

  // Inf-norm of the full generator from one probe multiply: offdiag rows
  // are non-negative, so |row|_1 = (offdiag * ones)_i + |d_i|.
  std::vector<real_t> ones(n, 1.0);
  std::vector<real_t> scratch(n, 0.0);
  op.multiply(ones, scratch);
  ++out.matvecs;
  real_t anorm = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    anorm = std::max(anorm, std::abs(scratch[i]) + std::abs(op.diag[i]));
  }
  if (anorm == 0.0) return out;  // A == 0: exp(tA) is the identity

  const int m = std::min<int>(opt.krylov_dim, static_cast<int>(n));
  const auto um = static_cast<std::size_t>(m);
  const real_t btol = 1e-14 * anorm;  // happy-breakdown threshold

  // Expokit's first-step heuristic, refined by the accept/reject loop.
  const real_t xm = 1.0 / static_cast<real_t>(m);
  const real_t fact = std::pow((m + 1) / std::exp(1.0), m + 1) *
                      std::sqrt(2.0 * 3.141592653589793 * (m + 1));
  real_t tau = (1.0 / anorm) *
               std::pow((fact * opt.tol) / (4.0 * beta * anorm), xm);
  tau = std::min(std::max(tau, t * 1e-12), t);

  std::vector<std::vector<real_t>> basis(
      um + 1, std::vector<real_t>(n, 0.0));  // V columns
  std::vector<real_t> h((um + 2) * (um + 2), 0.0);  // row-major Hbar
  std::vector<real_t> av(n, 0.0);
  std::vector<real_t> f;

  real_t t_done = 0.0;
  while (t - t_done > 1e-14 * t) {
    tau = std::min(tau, t - t_done);

    // Arnoldi on the current (unnormalized) p.
    std::fill(h.begin(), h.end(), 0.0);
    basis[0].assign(p.begin(), p.end());
    scale(std::span<real_t>(basis[0]), 1.0 / beta);
    int mb = m;
    bool happy = false;
    const std::size_t ld = um + 2;
    for (int j = 0; j < m; ++j) {
      const auto uj = static_cast<std::size_t>(j);
      std::span<real_t> w(basis[uj + 1]);
      apply_full(op, basis[uj], w);
      ++out.matvecs;
      for (int i = 0; i <= j; ++i) {
        const auto ui = static_cast<std::size_t>(i);
        const real_t hij = dot(w, basis[ui]);
        h[ui * ld + uj] = hij;
        axpy(-hij, basis[ui], w);
      }
      const real_t hnext = norm_l2(w);
      if (hnext <= btol) {
        // Invariant subspace: the projected exponential is exact.
        mb = j + 1;
        happy = true;
        out.happy_breakdown = true;
        tau = t - t_done;
        break;
      }
      h[(uj + 1) * ld + uj] = hnext;
      scale(w, 1.0 / hnext);
    }
    const auto umb = static_cast<std::size_t>(mb);
    real_t avnorm = 1.0;
    if (!happy) {
      // One more application for the second-order error term.
      apply_full(op, basis[um], av);
      ++out.matvecs;
      avnorm = norm_l2(av);
      h[(umb + 1) * ld + umb] = 1.0;  // augmentation: phi column coupling
    }
    const int nh = mb + (happy ? 0 : 2);
    const auto unh = static_cast<std::size_t>(nh);

    // Accept/reject on the dense exponential only — the basis is tau-free.
    std::vector<real_t> small(unh * unh);
    f.assign(unh * unh, 0.0);
    real_t err_loc = 0.0;
    for (;;) {
      for (std::size_t i = 0; i < unh; ++i) {
        for (std::size_t j = 0; j < unh; ++j) {
          small[i * unh + j] = tau * h[i * ld + j];
        }
      }
      dense_expm(small, nh, f);
      if (happy) {
        err_loc = 0.0;
        break;
      }
      const real_t phi1 = std::abs(beta * f[umb * unh]);
      const real_t phi2 = std::abs(beta * f[(umb + 1) * unh]) * avnorm;
      if (phi1 > 10.0 * phi2) {
        err_loc = phi2;
      } else if (phi1 > phi2) {
        err_loc = phi1 * phi2 / (phi1 - phi2);
      } else {
        err_loc = phi1;
      }
      const real_t budget = 1.2 * (tau / t) * opt.tol * std::max(beta, 1.0);
      if (err_loc <= budget) break;
      ++out.rejections;
      tau *= 0.5;
      if (tau <= t * 1e-14 || out.rejections > 256) {
        // Cannot meet tol at any representable step — take the step and
        // report the achieved estimate instead of spinning.
        out.tol_not_met = true;
        break;
      }
    }

    // w = beta * V_mb * F(:, 0)
    std::fill(p.begin(), p.end(), 0.0);
    for (int j = 0; j < mb; ++j) {
      const auto uj = static_cast<std::size_t>(j);
      axpy(beta * f[uj * unh], basis[uj], p);
    }
    t_done += tau;
    ++out.steps;
    out.error_estimate += err_loc;
    obs::flight("krylov.step", obs::FlightKind::kKrylovStep, out.steps - 1,
                err_loc);
    beta = norm_l2(p);
    if (beta == 0.0) break;
    if (out.tol_not_met || out.matvecs >= opt.max_matvecs) {
      out.truncated_early = t - t_done > 1e-14 * t;
      break;
    }
    // Grow cautiously when the step was much more accurate than it had to
    // be; halving on rejection is the shrink path.
    const real_t budget = 1.2 * (tau / t) * opt.tol * std::max(beta, 1.0);
    if (err_loc <= 0.25 * budget) tau *= 2.0;
  }

  if (opt.renormalize) {
    // Clamp the O(tol) negative ripple a Krylov polynomial can leave and
    // restore the probability-vector invariant.
    real_t* pp = p.data();
    util::parallel_for(n, [pp](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) {
        if (pp[i] < 0.0) pp[i] = 0.0;
      }
    });
    normalize_l1(p);
  }

  obs::flight("krylov.stop", obs::FlightKind::kStop, out.steps,
              (out.truncated_early || out.tol_not_met) ? 0.0 : 1.0);
  obs::count("krylov.solves");
  obs::gauge("krylov.matvecs", static_cast<real_t>(out.matvecs));
  obs::gauge("krylov.steps", static_cast<real_t>(out.steps));
  obs::observe("krylov.error_estimate", out.error_estimate);
  return out;
}

}  // namespace cmesolve::solver
