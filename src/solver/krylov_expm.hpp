#pragma once
//
// Krylov approximation of w = exp(t A) v — the Arnoldi route to transient
// CME dynamics (Moosavi & Sandu, "Approximate Exponential Algorithms to
// Solve the Chemical Master Equation"; algorithmically Expokit's dgexpv).
//
// One sub-step projects A onto an m-dimensional Krylov basis built by the
// same modified-Gram-Schmidt recursion as the GMRES solver, then
// exponentiates the tiny (m+2)x(m+2) augmented Hessenberg matrix with a
// dense scaling-and-squaring Pade expm. The two extra rows deliver the
// a-posteriori local error estimate for free (Saad '92): phi1 = the
// weight falling off the end of the basis, phi2 = the same after one more
// operator application. The estimate drives adaptive sub-stepping —
// rejected steps only re-run the dense expm (the basis is independent of
// the step size), never the SpMVs. When h_{j+1,j} underflows the basis is
// A-invariant ("happy breakdown") and the step is exact.
//
// Why keep both engines: uniformization costs ~lambda*t SpMVs no matter
// what, so a stiff generator (rate spread >= 1e4) pays for its fastest
// timescale over the whole horizon. Krylov steps adapt to the solution,
// not the spectrum — once fast modes have decayed, tau grows and the SpMV
// count drops by orders of magnitude. The cross-check between the two is
// the `transient` verify oracle.
//
// Determinism: Arnoldi runs on the chunked-reduction dot/norm and
// kernel-table axpy from vector_ops.hpp, the dense expm is serial, and no
// step-size decision consults a clock — so results are bitwise identical
// at any CMESOLVE_THREADS and on every compiled ISA.
//
#include <cstdint>
#include <span>

#include "solver/transient.hpp"
#include "util/types.hpp"

namespace cmesolve::solver {

struct KrylovExpmOptions {
  int krylov_dim = 30;  ///< Arnoldi basis size m per sub-step
  /// Local-error budget, spent proportionally to tau/t per accepted step:
  /// the accumulated estimate at the horizon is <= ~1.2 * tol.
  real_t tol = 1e-12;
  std::uint64_t max_matvecs = 10'000'000;  ///< SpMV budget for the solve
  /// L1-renormalize (after clamping the O(tol) negative ripple to zero) so
  /// a probability vector stays one. FSP transient propagation sets false.
  bool renormalize = true;
};

struct KrylovExpmResult {
  std::uint64_t matvecs = 0;
  std::uint64_t steps = 0;       ///< accepted sub-steps
  std::uint64_t rejections = 0;  ///< dense-expm-only retries
  real_t error_estimate = 0.0;   ///< sum of accepted local estimates
  bool happy_breakdown = false;  ///< some step ended on an invariant basis
  /// Some step could not meet its local-error budget at any representable
  /// step size (tau underflow or rejection cap): `p` was still advanced,
  /// but the result may not meet `tol` even when the horizon is complete.
  bool tol_not_met = false;
  /// The integration stopped before reaching t (matvec budget exhausted,
  /// or bailing out after an unmeetable step with time remaining): `p`
  /// holds P(t_done) for some t_done < t, not P(t).
  bool truncated_early = false;
};

/// Advance `p` in place from P(0) to P(t) = exp(tA) P(0).
KrylovExpmResult krylov_expm_solve(const TransientOperator& op, real_t t,
                                   std::span<real_t> p,
                                   const KrylovExpmOptions& opt = {});

template <JacobiOperator Op>
KrylovExpmResult krylov_expm_solve(const Op& op, real_t t, std::span<real_t> p,
                                   const KrylovExpmOptions& opt = {}) {
  return krylov_expm_solve(transient_operator(op), t, p, opt);
}

/// Dense expm(M) by scaling-and-squaring with a diagonal Pade(6,6)
/// approximant — serial, for the tiny Hessenberg blocks only. Row-major
/// n*n in, row-major n*n out. Exposed for direct unit testing.
void dense_expm(std::span<const real_t> m, int n, std::span<real_t> out);

}  // namespace cmesolve::solver
