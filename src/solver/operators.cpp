#include "solver/operators.hpp"

namespace cmesolve::solver {

CsrOperator::CsrOperator(const sparse::Csr& a) {
  auto split = sparse::split_diagonal(a);
  diag_ = std::move(split.diag);
  offdiag_ = std::move(split.offdiag);
}

CsrDiaOperator::CsrDiaOperator(const sparse::Csr& a) {
  auto split = sparse::split_diagonal(a);
  diag_ = std::move(split.diag);
  band_ = sparse::dia_from_csr(split.offdiag, {-1, 1});
  rest_ = sparse::strip_diagonals(split.offdiag, band_.offsets);
}

EllDiaOperator::EllDiaOperator(const sparse::Csr& a) {
  auto split = sparse::split_diagonal(a);
  diag_ = std::move(split.diag);
  band_ = sparse::dia_from_csr(split.offdiag, {-1, 1});
  rest_ = sparse::ell_from_csr(
      sparse::strip_diagonals(split.offdiag, band_.offsets));
}

sparse::EllDia EllDiaOperator::gpu_hybrid(const sparse::Csr& a) const {
  return sparse::ell_dia_from_csr(a, {-1, 0, 1});
}

WarpedEllDiaOperator::WarpedEllDiaOperator(const sparse::Csr& a,
                                           index_t window) {
  auto split = sparse::split_diagonal(a);
  diag_ = std::move(split.diag);
  band_offdiag_ = sparse::dia_from_csr(split.offdiag, {-1, 1});
  // GPU storage keeps the diagonal inside the band so the kernel can divide
  // by a_ii without an extra array (Sec. V last paragraph).
  gpu_hybrid_ = sparse::sliced_ell_dia_from_csr(
      a, {-1, 0, 1}, /*slice_size=*/32, sparse::Reordering::kLocal, window);
}

}  // namespace cmesolve::solver
