#pragma once
//
// Off-diagonal operators for the Jacobi iteration.
//
// Jacobi needs two views of the rate matrix A: the dense diagonal D and an
// operator computing y = (L + U) x. Each operator wraps one of the storage
// formats compared in Table IV; the numerics are identical, only the layout
// (and therefore the simulated GPU cost) differs.
//
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "sparse/hybrid.hpp"
#include "sparse/sliced_ell.hpp"
#include "util/types.hpp"

namespace cmesolve::solver {

/// Plain CSR off-diagonal operator.
class CsrOperator {
 public:
  explicit CsrOperator(const sparse::Csr& a);

  [[nodiscard]] index_t nrows() const noexcept { return offdiag_.nrows; }
  [[nodiscard]] std::span<const real_t> diag() const noexcept { return diag_; }
  [[nodiscard]] std::size_t offdiag_nnz() const noexcept {
    return offdiag_.nnz();
  }
  void multiply(std::span<const real_t> x, std::span<real_t> y) const {
    sparse::spmv(offdiag_, x, y);
  }

 private:
  std::vector<real_t> diag_;
  sparse::Csr offdiag_;
};

/// CSR + DIA: the paper's multicore baseline layout ("in practice CSR+DIA").
class CsrDiaOperator {
 public:
  explicit CsrDiaOperator(const sparse::Csr& a);

  [[nodiscard]] index_t nrows() const noexcept { return rest_.nrows; }
  [[nodiscard]] std::span<const real_t> diag() const noexcept { return diag_; }
  [[nodiscard]] std::size_t offdiag_nnz() const noexcept {
    return rest_.nnz() + band_.nnz;
  }
  void multiply(std::span<const real_t> x, std::span<real_t> y) const {
    sparse::spmv(rest_, x, y);
    sparse::spmv_add(band_, x, y);
  }

 private:
  std::vector<real_t> diag_;
  sparse::Dia band_;  ///< {-1, +1} neighbours of the (removed) diagonal
  sparse::Csr rest_;
};

/// ELL + DIA (Fig. 3(c)): band in DIA, remainder in plain ELL.
class EllDiaOperator {
 public:
  explicit EllDiaOperator(const sparse::Csr& a);

  [[nodiscard]] index_t nrows() const noexcept { return rest_.nrows; }
  [[nodiscard]] std::span<const real_t> diag() const noexcept { return diag_; }
  [[nodiscard]] std::size_t offdiag_nnz() const noexcept {
    return rest_.nnz + band_.nnz;
  }
  void multiply(std::span<const real_t> x, std::span<real_t> y) const {
    sparse::spmv(rest_, x, y);
    sparse::spmv_add(band_, x, y);
  }

  /// Full hybrid (band INCLUDING the dense diagonal) for the GPU simulator.
  [[nodiscard]] sparse::EllDia gpu_hybrid(const sparse::Csr& a) const;

 private:
  std::vector<real_t> diag_;
  sparse::Dia band_;
  sparse::Ell rest_;
};

/// Warp-grained sliced ELL + DIA: the Table IV GPU format ("Warp ELL+DIA").
class WarpedEllDiaOperator {
 public:
  explicit WarpedEllDiaOperator(const sparse::Csr& a, index_t window = 256);

  [[nodiscard]] index_t nrows() const noexcept {
    return gpu_hybrid_.rest.nrows;
  }
  [[nodiscard]] std::span<const real_t> diag() const noexcept { return diag_; }
  [[nodiscard]] std::size_t offdiag_nnz() const noexcept {
    return gpu_hybrid_.rest.nnz +
           (band_offdiag_.nnz);
  }
  void multiply(std::span<const real_t> x, std::span<real_t> y) const {
    sparse::spmv(gpu_hybrid_.rest, x, y);
    sparse::spmv_add(band_offdiag_, x, y);
  }

  /// The storage the simulated GPU kernel runs on: {-1, 0, +1} DIA band
  /// (diagonal included — Jacobi divides by it in-kernel) + warped-ELL rest.
  [[nodiscard]] const sparse::SlicedEllDia& gpu_hybrid() const noexcept {
    return gpu_hybrid_;
  }

 private:
  std::vector<real_t> diag_;
  sparse::Dia band_offdiag_;       ///< {-1, +1} only, for CPU numerics
  sparse::SlicedEllDia gpu_hybrid_;  ///< {-1, 0, +1} band + warped rest
};

}  // namespace cmesolve::solver
