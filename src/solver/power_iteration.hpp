#pragma once
//
// Uniformized power iteration — the classical alternative for stationary
// distributions of CTMCs, and the building block of the transient-dynamics
// extension the paper lists as future work (Sec. VIII).
//
// With lambda >= max_i |a_ii|, the matrix  M = I + A / lambda  is
// (column-)stochastic, and  x <- M x  converges to the stationary vector on
// an irreducible aperiodic space. Numerically this is a damped Jacobi with
// a diagonal-uniform preconditioner, so it shares the operator interface.
//
#include <span>
#include <vector>

#include "solver/jacobi.hpp"
#include "solver/vector_ops.hpp"

namespace cmesolve::solver {

struct PowerIterationOptions {
  real_t eps = 1e-8;
  std::uint64_t max_iterations = 1'000'000;
  std::uint32_t check_every = 100;
  real_t lambda_margin = 1.01;  ///< lambda = margin * max |a_ii|
};

template <JacobiOperator Op>
JacobiResult power_iteration_solve(const Op& op, real_t a_inf_norm,
                                   std::span<real_t> x,
                                   const PowerIterationOptions& opt = {}) {
  const index_t n = op.nrows();
  const std::span<const real_t> d = op.diag();

  real_t max_diag = 0.0;
  for (index_t i = 0; i < n; ++i) max_diag = std::max(max_diag, std::abs(d[i]));
  const real_t lambda = opt.lambda_margin * max_diag;

  std::vector<real_t> ax(static_cast<std::size_t>(n));
  WallTimer timer;
  JacobiResult out;
  const std::uint64_t flops_per_sweep =
      2ULL * op.offdiag_nnz() + 3ULL * static_cast<std::uint64_t>(n);

  normalize_l1(x);
  for (std::uint64_t it = 1; it <= opt.max_iterations; ++it) {
    // ax = A x = (L+U) x + D x ; x <- x + ax / lambda
    op.multiply(x, ax);
    for (index_t i = 0; i < n; ++i) ax[i] += d[i] * x[i];
    const real_t rn = norm_inf(ax);
    axpy(1.0 / lambda, ax, x);
    normalize_l1(x);
    out.iterations = it;
    out.flops += flops_per_sweep;

    if (it % opt.check_every == 0 || it == opt.max_iterations) {
      const real_t xn = norm_inf(x);
      out.residual = rn / (a_inf_norm * (xn > 0 ? xn : 1.0));
      if (out.residual <= opt.eps) {
        out.reason = StopReason::kConverged;
        break;
      }
    }
  }
  out.seconds = timer.seconds();
  out.gflops = out.seconds > 0
                   ? static_cast<real_t>(out.flops) / out.seconds / 1.0e9
                   : 0.0;
  return out;
}

}  // namespace cmesolve::solver
