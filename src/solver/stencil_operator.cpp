#include "solver/stencil_operator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "obs/trace.hpp"
#include "solver/vector_ops.hpp"
#include "util/binomial.hpp"
#include "util/parallel.hpp"
#include "util/simd_kernels.hpp"

namespace cmesolve::solver {

namespace {

// Floor/ceil division for the t-interval solves (slopes may be negative).
std::int64_t floor_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;
  return q;
}

constexpr std::size_t kSweepGrain = 4096;

}  // namespace

// Compiled sweep plan. The box is processed as TILES of rj x rf
// consecutive rows spanning the two fastest digits (j = second-fastest,
// t = fastest): within a tile every copy number is an affine function of
// the two digits,
//     count_s(j, t) = base_s(tile) + sJ_s * j + sT_s * t
// (slope 1 for the digit's own species, -coeff for a derived species whose
// law contains that digit, 0 otherwise), so each check becomes a j- or
// t-interval and each propensity factor a lookup at an affine table index.
// Per-reaction work that depends only on the slow digits — applicability
// windows, run-constant propensity factors — is evaluated once per tile
// and amortised over rf*rj rows instead of rf, and the per-j coefficient
// kj factors out of the innermost t-loop, leaving a rank-1 update
//     y[dst0 + t] += kj * tbl[b + t] * x[src0 + t]
// over contiguous rows that the compiler can vectorise. Every value
// depends only on (row, reaction), never on where a parallel_for chunk
// boundary fell — which is what keeps the sweep bit-identical at any
// thread count.
struct StencilOperator::Program {
  struct Factor {
    const real_t* tbl = nullptr;  ///< binomial table for this copy count
    int sp = 0;
    std::int32_t shift = 0;
    std::int32_t sJ = 0;  ///< per-j argument step (0 for pure t-factors)
    std::int32_t sT = 0;  ///< per-t argument step
  };
  struct Check {
    int sp = 0;
    std::int32_t lo = 0;
    std::int32_t hi = 0;
    std::int32_t sJ = 0;
    std::int32_t sT = 0;
  };
  struct Reaction {
    std::int64_t stride = 0;
    real_t rate = 0.0;
    std::vector<Check> const_checks;  ///< sJ == sT == 0: once per tile
    std::vector<Check> j_checks;      ///< sT == 0, sJ != 0: j-interval
    std::vector<Check> tj0_checks;    ///< sT != 0, sJ == 0: one t-interval
    std::vector<Check> tjv_checks;    ///< sT != 0, sJ != 0: per-j t-interval
    std::vector<Factor> const_factors;
    std::vector<Factor> j_factors;  ///< folded into the per-j coefficient
    std::vector<Factor> t_factors;  ///< table walks inside the t-loop
    /// Precomputed rf x rj coefficient pattern (row-major in (j, t)) for
    /// reactions whose fast-digit dependence lives entirely on the two
    /// digit species themselves: windows fold in as zeros and the sweep
    /// applies the tile as ONE contiguous multiply-add instead of rj
    /// separate windowed loops. Empty when the reaction does not qualify
    /// or the tile would not stay cache-resident.
    std::vector<real_t> tile_coef;
  };
  /// Row-validity check of one conservation law, hoisted out of the
  /// per-reaction lists: the law's derived count must sit in [0, cap] for
  /// the row to exist at all, identically for every reaction, so masked
  /// rows are rejected once per tile instead of once per reaction.
  struct LawCheck {
    int sp = 0;
    std::int32_t cap = 0;
    std::int32_t sJ = 0;
    std::int32_t sT = 0;
  };

  int num_species = 0;
  std::int64_t rf = 1;  ///< fastest-digit radix = t-loop length
  std::int64_t rj = 1;  ///< second-fastest radix = j-loop length
  std::vector<std::int32_t> slope_t;       ///< per species
  std::vector<std::int32_t> slope_j;       ///< per species
  std::vector<std::vector<real_t>> binom;  ///< [copies][count]
  std::vector<Reaction> rx;
  std::vector<LawCheck> const_laws;  ///< tile-constant row validity
  std::vector<LawCheck> j_laws;      ///< j-dependent row validity
  std::vector<LawCheck> t_laws;      ///< t-dependent row validity
};

StencilOperator::StencilOperator(core::StencilTable table, StencilMode mode)
    : table_(std::move(table)), mode_(mode) {
  compile();
  compute_inf_norm();
  if (mode_ == StencilMode::kPropensityCache) build_cache();
}

StencilOperator::StencilOperator(const core::ReactionNetwork& network,
                                 const core::State& anchor, StencilMode mode)
    : StencilOperator(core::StencilTable(network, anchor), mode) {}

void StencilOperator::compile() {
  auto p = std::make_shared<Program>();
  Program& P = *p;
  const core::StencilTable& t = table_;
  const int m = t.num_free();
  P.num_species = t.num_species();
  P.rf = m > 0 ? t.radix(m - 1) : 1;
  P.rj = m > 1 ? t.radix(m - 2) : 1;

  P.slope_t.assign(static_cast<std::size_t>(P.num_species), 0);
  P.slope_j.assign(static_cast<std::size_t>(P.num_species), 0);
  const auto digit_slopes = [&](int d, std::vector<std::int32_t>& slope) {
    const int sp = t.free_species(d);
    slope[static_cast<std::size_t>(sp)] = 1;
    for (const auto& law : t.laws()) {
      for (const auto& term : law.terms) {
        if (term.species == sp) {
          slope[static_cast<std::size_t>(law.species)] =
              static_cast<std::int32_t>(-term.coeff);
        }
      }
    }
  };
  if (m > 0) digit_slopes(m - 1, P.slope_t);
  if (m > 1) digit_slopes(m - 2, P.slope_j);

  // Binomial lookup tables, one per reactant copy count. Table arguments
  // are predecessor copy numbers, which the compiled windows confine to
  // [0, capacity], so [0, max capacity] covers every access.
  std::int32_t max_cap = 0;
  for (int s = 0; s < P.num_species; ++s) {
    max_cap = std::max(max_cap, t.network().capacity(s));
  }
  std::int32_t max_copies = 1;
  for (const auto& r : t.reactions()) {
    for (const auto& f : r.in_factors) {
      max_copies = std::max(max_copies, f.copies);
    }
  }
  P.binom.assign(static_cast<std::size_t>(max_copies) + 1, {});
  for (std::int32_t c = 0; c <= max_copies; ++c) {
    auto& tbl = P.binom[static_cast<std::size_t>(c)];
    tbl.resize(static_cast<std::size_t>(max_cap) + 1);
    for (std::int32_t v = 0; v <= max_cap; ++v) {
      tbl[static_cast<std::size_t>(v)] = cmesolve::binomial(v, c);
    }
  }

  // Row validity is a property of the row, not of a reaction: every law's
  // derived count must land in [0, cap]. Hoisting these checks to tile
  // level means a masked row is rejected once instead of once per
  // reaction (and the reactions' own windows, all clamped to [0, cap] at
  // table build, stay sufficient on the rows that survive).
  const auto sj = [&](int sp) { return P.slope_j[static_cast<std::size_t>(sp)]; };
  const auto st = [&](int sp) { return P.slope_t[static_cast<std::size_t>(sp)]; };
  for (const auto& law : t.laws()) {
    const Program::LawCheck lc{law.species,
                               t.network().capacity(law.species),
                               sj(law.species), st(law.species)};
    (lc.sT != 0 ? P.t_laws : lc.sJ != 0 ? P.j_laws : P.const_laws)
        .push_back(lc);
  }

  for (const auto& r : t.reactions()) {
    Program::Reaction pr;
    pr.stride = r.stride;
    pr.rate = r.rate;
    // The reaction's own windows and factors, split by which tile digit
    // (if any) the count depends on.
    for (const auto& c : r.in_checks) {
      const Program::Check pc{c.species, c.lo, c.hi, sj(c.species),
                              st(c.species)};
      (pc.sT != 0 ? (pc.sJ != 0 ? pr.tjv_checks : pr.tj0_checks)
       : pc.sJ != 0 ? pr.j_checks
                    : pr.const_checks)
          .push_back(pc);
    }
    for (const auto& f : r.in_factors) {
      const Program::Factor pf{P.binom[static_cast<std::size_t>(f.copies)]
                                   .data(),
                               f.species, f.shift, sj(f.species),
                               st(f.species)};
      (pf.sT != 0 ? pr.t_factors : pf.sJ != 0 ? pr.j_factors
                                              : pr.const_factors)
          .push_back(pf);
    }
    P.rx.push_back(std::move(pr));
  }

  // Fused tile patterns. A reaction qualifies when every fast-digit check
  // and factor sits on the digit species itself (anchor count 0, slope 1),
  // never on a conservation-law partner — then the whole rf x rj pattern is
  // position-independent and can be tabulated once, windows included. The
  // cap keeps per-reaction patterns L1/L2-resident (32 KiB of doubles).
  constexpr std::int64_t kMaxFusedTile = 4096;
  const std::int64_t tile = P.rf * P.rj;
  if (tile >= 2 && tile <= kMaxFusedTile) {
    const int sp_t = m > 0 ? t.free_species(m - 1) : -1;
    const int sp_j = m > 1 ? t.free_species(m - 2) : -1;
    for (auto& pr : P.rx) {
      if (!pr.tjv_checks.empty()) continue;
      bool fusable = true;
      for (const auto& c : pr.tj0_checks) fusable = fusable && c.sp == sp_t;
      for (const auto& c : pr.j_checks) fusable = fusable && c.sp == sp_j;
      for (const auto& f : pr.t_factors) fusable = fusable && f.sp == sp_t;
      for (const auto& f : pr.j_factors) fusable = fusable && f.sp == sp_j;
      if (!fusable) continue;
      // Digit species make windows plain intervals (count == digit) and
      // factor arguments affine in the digit; factors are only evaluated
      // inside the window, where the table-build guarantees the argument
      // stays within the binomial tables.
      std::int64_t tl = 0, th = P.rf, jl = 0, jh = P.rj;
      for (const auto& c : pr.tj0_checks) {
        tl = std::max<std::int64_t>(tl, c.lo);
        th = std::min<std::int64_t>(th, static_cast<std::int64_t>(c.hi) + 1);
      }
      for (const auto& c : pr.j_checks) {
        jl = std::max<std::int64_t>(jl, c.lo);
        jh = std::min<std::int64_t>(jh, static_cast<std::int64_t>(c.hi) + 1);
      }
      pr.tile_coef.assign(static_cast<std::size_t>(tile), 0.0);
      for (std::int64_t j = std::max<std::int64_t>(jl, 0);
           j < std::min(jh, P.rj); ++j) {
        real_t jc = 1.0;
        for (const auto& f : pr.j_factors) {
          jc *= f.tbl[f.shift + f.sJ * j];
        }
        for (std::int64_t u = std::max<std::int64_t>(tl, 0);
             u < std::min(th, P.rf); ++u) {
          real_t c = jc;
          for (const auto& f : pr.t_factors) {
            c *= f.tbl[f.shift + f.sT * u];
          }
          pr.tile_coef[static_cast<std::size_t>(j * P.rf + u)] = c;
        }
      }
    }
  }
  program_ = std::move(p);
}

void StencilOperator::sweep_recompute(std::span<const real_t> x,
                                      std::span<real_t> y,
                                      aligned_vector<real_t>* cache_out) const {
  const Program& P = *program_;
  const auto n = static_cast<std::size_t>(table_.box_rows());
  const std::int64_t rf = P.rf;
  const std::int64_t rj = P.rj;
  const std::int64_t tile = rf * rj;
  real_t* cache = cache_out ? cache_out->data() : nullptr;

  // Clip [lo, hi) to the interval of window lo_b <= b + s*u <= hi_b.
  // |s| == 1 covers nearly every window (the digit's own species and
  // coefficient-1 conservation partners), so those paths avoid the idiv.
  const auto clip_window = [](std::int64_t& lo, std::int64_t& hi,
                              std::int64_t b, std::int64_t s,
                              std::int64_t lo_b, std::int64_t hi_b) {
    if (s == 1) {
      lo = std::max(lo, lo_b - b);
      hi = std::min(hi, hi_b - b + 1);
    } else if (s == -1) {
      lo = std::max(lo, b - hi_b);
      hi = std::min(hi, b - lo_b + 1);
    } else if (s > 0) {
      lo = std::max(lo, ceil_div(lo_b - b, s));
      hi = std::min(hi, floor_div(hi_b - b, s) + 1);
    } else {
      lo = std::max(lo, ceil_div(hi_b - b, s));
      hi = std::min(hi, floor_div(lo_b - b, s) + 1);
    }
  };

  const core::StencilTable& t = table_;
  const int m = t.num_free();
  // Explicit SIMD kernel table, resolved once per sweep. Each contiguous
  // y-accumulate window below routes through it; every ISA's table runs
  // the identical per-element multiply-then-add chain (vectorized across
  // rows, never inside a row's reduction), so the sweep stays bitwise
  // identical under CMESOLVE_SIMD and at any thread count. The ck cache
  // fills stay inline: multiply-only chains are contraction-immune and
  // dispatch-independent.
  const util::simdk::KernelOps& KO = util::simdk::kernels();

  util::parallel_for(
      n,
      [&](std::size_t cb, std::size_t ce) {
        real_t* yv = nullptr;
        const real_t* xv = nullptr;
        if (!cache) {
          yv = y.data();
          xv = x.data();
        }
        std::vector<std::int32_t> base(static_cast<std::size_t>(P.num_species),
                                       0);
        // Per-j row-validity t-windows for the current tile.
        std::vector<std::int64_t> vlo(static_cast<std::size_t>(rj));
        std::vector<std::int64_t> vhi(static_cast<std::size_t>(rj));
        std::int64_t i = static_cast<std::int64_t>(cb);
        const auto end = static_cast<std::int64_t>(ce);
        std::int64_t tb = (i / tile) * tile;
        // Decode the slow digits of the chunk's first tile once; successive
        // tiles advance them with an odometer carry instead of div/mod. The
        // digits depend only on the absolute tile index either way, so chunk
        // boundaries cannot change any value.
        {
          std::int64_t rem = tb;
          for (int d = 0; d < m - 2; ++d) {
            const std::int64_t digit = rem / t.weight(d);
            rem -= digit * t.weight(d);
            base[t.free_species(d)] = static_cast<std::int32_t>(digit);
          }
          if (m > 0) base[t.free_species(m - 1)] = 0;
          if (m > 1) base[t.free_species(m - 2)] = 0;
        }
        bool first_tile = true;
        while (i < end) {
          if (!first_tile) {
            for (int d = m - 3; d >= 0; --d) {
              auto& dg = base[t.free_species(d)];
              if (++dg < t.radix(d)) break;
              dg = 0;
            }
          }
          first_tile = false;
          const std::int64_t tbase = tb;
          const std::int64_t seg_end = std::min(tbase + tile, end);
          // Local row range [row_lo, row_hi) this chunk owns in the tile
          // (tiles may straddle chunk boundaries; the VALUES written are
          // chunk-invariant, only ownership is split).
          const std::int64_t row_lo = i - tbase;
          const std::int64_t row_hi = seg_end - tbase;
          tb = tbase + tile;
          i = seg_end;

          // Derived counts from the conservation totals at the tile anchor
          // (j = t = 0, so tile-digit terms drop out).
          for (const auto& law : t.laws()) {
            std::int64_t v = law.total;
            for (const auto& term : law.terms) {
              v -= term.coeff * base[term.species];
            }
            base[law.species] = static_cast<std::int32_t>(v);
          }

          // Row validity once per tile: a law count outside [0, cap] masks
          // the row for every reaction at once.
          bool valid = true;
          for (const auto& lc : P.const_laws) {
            if (static_cast<std::uint32_t>(base[lc.sp]) >
                static_cast<std::uint32_t>(lc.cap)) {
              valid = false;
              break;
            }
          }
          if (yv) {
            std::fill(y.begin() + static_cast<std::ptrdiff_t>(tbase + row_lo),
                      y.begin() + static_cast<std::ptrdiff_t>(tbase + row_hi),
                      0.0);
          }
          if (!valid) continue;
          std::int64_t jv_lo = row_lo / rf;
          std::int64_t jv_hi = (row_hi + rf - 1) / rf;
          for (const auto& lc : P.j_laws) {
            clip_window(jv_lo, jv_hi, base[lc.sp], lc.sJ, 0, lc.cap);
          }
          if (jv_lo >= jv_hi) continue;
          for (std::int64_t j = jv_lo; j < jv_hi; ++j) {
            std::int64_t lo = std::max<std::int64_t>(0, row_lo - j * rf);
            std::int64_t hi = std::min<std::int64_t>(rf, row_hi - j * rf);
            for (const auto& lc : P.t_laws) {
              clip_window(lo, hi, base[lc.sp] + lc.sJ * j, lc.sT, 0, lc.cap);
            }
            vlo[static_cast<std::size_t>(j)] = lo;
            vhi[static_cast<std::size_t>(j)] = hi;
          }

          // When the chunk owns the whole tile and no law clips the fast
          // digit, every per-j validity window is the full [0, rf) — the
          // uniform fast paths below may then skip the window arrays.
          const bool vfull =
              row_lo == 0 && row_hi == tile && P.t_laws.empty();

          for (std::size_t k = 0; k < P.rx.size(); ++k) {
            const Program::Reaction& r = P.rx[k];
            // Tile-constant windows: pass/fail for the whole tile.
            bool alive = true;
            for (const auto& c : r.const_checks) {
              const std::int32_t v = base[c.sp];
              if (v < c.lo || v > c.hi) {
                alive = false;
                break;
              }
            }
            if (!alive) continue;
            // Unit prefix: combinatorial factors only. The rate multiplies
            // LAST at every value-formation site below, so each entry is
            // exactly rate * (unit product) — bitwise linear in the rate,
            // matching StencilTable::in_propensity and the batched
            // operator's coefficient * shared-unit-cache split.
            real_t prefix = 1.0;
            for (const auto& f : r.const_factors) {
              prefix *= f.tbl[base[f.sp] + f.shift];
              if (prefix == 0.0) break;
            }
            if (prefix == 0.0) continue;
            const real_t rate = r.rate;
            // j-varying windows become j-intervals: lo <= b + sJ*j <= hi.
            std::int64_t jlo = jv_lo, jhi = jv_hi;
            for (const auto& c : r.j_checks) {
              clip_window(jlo, jhi, base[c.sp], c.sJ, c.lo, c.hi);
            }
            if (jlo >= jhi) continue;
            // t-windows whose species ignores the j digit are identical for
            // every j in the tile: clip them once here and the per-j loop
            // only intersects with the (usually untouched) validity window.
            std::int64_t tlo = 0, thi = rf;
            for (const auto& c : r.tj0_checks) {
              clip_window(tlo, thi, base[c.sp], c.sT, c.lo, c.hi);
            }
            if (tlo >= thi) continue;

            real_t* ck = cache ? cache + k * n : nullptr;
            const std::size_t nt = r.t_factors.size();

            // Uniform tiles: the t-window is [tlo, thi) for EVERY j, so the
            // per-j loop degenerates to pointer bumps. Reactions whose
            // factors all live on slow digits (most of them, on networks
            // like phage-lambda where regulation sits in low-capacity site
            // species) further collapse to a single contiguous axpy across
            // the whole surviving j-range — the dominant hot loop.
            if (vfull && r.tjv_checks.empty() &&
                (nt == 0 ||
                 (nt == 1 && r.t_factors[0].sJ == 0))) {
              if (nt == 0 && r.j_factors.empty() && tlo == 0 && thi == rf) {
                const std::int64_t b0 = tbase + jlo * rf;
                const std::int64_t cnt = (jhi - jlo) * rf;
                const std::int64_t s0 = b0 - r.stride;
                const real_t coef = rate * prefix;
                if (ck) {
                  for (std::int64_t u = 0; u < cnt; ++u) ck[s0 + u] = coef;
                } else {
                  KO.axpy(yv + b0, xv + s0, coef,
                          static_cast<std::size_t>(cnt));
                }
                continue;
              }
              if (!r.tile_coef.empty()) {
                // Whole-tile coefficient pattern: one contiguous
                // multiply-add over the surviving j-range; the zeros folded
                // into the pattern cover the j/t windows. Clamps keep the
                // zero-coefficient lanes from reading sources that hang
                // over the ends of the box by |stride| (any row the clamp
                // cuts has coefficient zero — a nonzero coefficient implies
                // its predecessor row is inside the box).
                std::int64_t ulo = jlo * rf, uhi = jhi * rf;
                ulo = std::max(ulo, r.stride - tbase);
                uhi = std::min(
                    uhi, static_cast<std::int64_t>(n) + r.stride - tbase);
                const real_t* cf = r.tile_coef.data();
                const std::int64_t s0 = tbase - r.stride;
                if (ck) {
                  for (std::int64_t u = ulo; u < uhi; ++u) {
                    ck[s0 + u] = rate * (prefix * cf[u]);
                  }
                } else if (uhi > ulo) {
                  KO.scaled_cmul_add(yv + tbase + ulo, cf + ulo,
                                     xv + s0 + ulo, rate, prefix,
                                     static_cast<std::size_t>(uhi - ulo));
                }
                continue;
              }
              const Program::Factor* tf = nt ? &r.t_factors[0] : nullptr;
              const real_t* tw =
                  tf && tf->sT == 1 ? tf->tbl + base[tf->sp] + tf->shift
                                    : nullptr;
              std::int64_t dst0 = tbase + jlo * rf;
              for (std::int64_t j = jlo; j < jhi; ++j, dst0 += rf) {
                real_t kj = prefix;
                for (const auto& f : r.j_factors) {
                  kj *= f.tbl[base[f.sp] + f.shift + f.sJ * j];
                }
                if (kj == 0.0) continue;
                const std::int64_t src0 = dst0 - r.stride;
                if (tw) {
                  if (ck) {
                    for (std::int64_t u = tlo; u < thi; ++u) {
                      ck[src0 + u] = rate * (kj * tw[u]);
                    }
                  } else {
                    KO.scaled_cmul_add(yv + dst0 + tlo, tw + tlo,
                                       xv + src0 + tlo, rate, kj,
                                       static_cast<std::size_t>(thi - tlo));
                  }
                } else if (tf) {
                  std::int32_t arg = base[tf->sp] + tf->shift +
                                     tf->sT * static_cast<std::int32_t>(tlo);
                  if (ck) {
                    for (std::int64_t u = tlo; u < thi; ++u, arg += tf->sT) {
                      ck[src0 + u] = rate * (kj * tf->tbl[arg]);
                    }
                  } else {
                    for (std::int64_t u = tlo; u < thi; ++u, arg += tf->sT) {
                      yv[dst0 + u] += rate * (kj * tf->tbl[arg]) * xv[src0 + u];
                    }
                  }
                } else {
                  const real_t coef = rate * kj;
                  if (ck) {
                    for (std::int64_t u = tlo; u < thi; ++u) {
                      ck[src0 + u] = coef;
                    }
                  } else {
                    KO.axpy(yv + dst0 + tlo, xv + src0 + tlo, coef,
                            static_cast<std::size_t>(thi - tlo));
                  }
                }
              }
              continue;
            }

            for (std::int64_t j = jlo; j < jhi; ++j) {
              std::int64_t lo =
                  std::max(tlo, vlo[static_cast<std::size_t>(j)]);
              std::int64_t hi =
                  std::min(thi, vhi[static_cast<std::size_t>(j)]);
              if (!r.tile_coef.empty()) {
                // Same expression as the whole-tile fused path above, so a
                // tile split across chunk boundaries produces bit-identical
                // rows at any thread count.
                const std::int64_t dst0 = tbase + j * rf;
                const std::int64_t src0 = dst0 - r.stride;
                lo = std::max(lo, -src0);
                hi = std::min(hi, static_cast<std::int64_t>(n) - src0);
                const real_t* cf = r.tile_coef.data() + j * rf;
                if (ck) {
                  for (std::int64_t u = lo; u < hi; ++u) {
                    ck[src0 + u] = rate * (prefix * cf[u]);
                  }
                } else if (hi > lo) {
                  KO.scaled_cmul_add(yv + dst0 + lo, cf + lo, xv + src0 + lo,
                                     rate, prefix,
                                     static_cast<std::size_t>(hi - lo));
                }
                continue;
              }
              for (const auto& c : r.tjv_checks) {
                clip_window(lo, hi, base[c.sp] + c.sJ * j, c.sT, c.lo, c.hi);
              }
              if (lo >= hi) continue;
              // Per-j unit coefficient: tile-constant x j-only factors;
              // the rate multiplies last at the value sites.
              real_t kj = prefix;
              for (const auto& f : r.j_factors) {
                kj *= f.tbl[base[f.sp] + f.shift + f.sJ * j];
              }
              if (kj == 0.0) continue;

              // Validated rows: destination tbase + j*rf + u, source
              // (pred) destination - stride, both inside [0, box_rows).
              const std::int64_t dst0 = tbase + j * rf;
              const std::int64_t src0 = dst0 - r.stride;
              if (nt == 0) {
                const real_t coef = rate * kj;
                if (ck) {
                  for (std::int64_t u = lo; u < hi; ++u) {
                    ck[src0 + u] = coef;
                  }
                } else {
                  KO.axpy(yv + dst0 + lo, xv + src0 + lo, coef,
                          static_cast<std::size_t>(hi - lo));
                }
              } else if (nt == 1) {
                const Program::Factor& f = r.t_factors[0];
                const std::int32_t st = f.sT;
                const std::int32_t arg0 =
                    base[f.sp] + f.shift + f.sJ * static_cast<std::int32_t>(j);
                if (st == 1) {
                  // Contiguous table walk: tw[u] = tbl[arg0 + u]. This is
                  // the rank-1 hot loop the vectoriser targets.
                  const real_t* tw = f.tbl + arg0;
                  if (ck) {
                    for (std::int64_t u = lo; u < hi; ++u) {
                      ck[src0 + u] = rate * (kj * tw[u]);
                    }
                  } else {
                    KO.scaled_cmul_add(yv + dst0 + lo, tw + lo,
                                       xv + src0 + lo, rate, kj,
                                       static_cast<std::size_t>(hi - lo));
                  }
                } else {
                  std::int32_t arg = arg0 + st * static_cast<std::int32_t>(lo);
                  if (ck) {
                    for (std::int64_t u = lo; u < hi; ++u, arg += st) {
                      ck[src0 + u] = rate * (kj * f.tbl[arg]);
                    }
                  } else {
                    for (std::int64_t u = lo; u < hi; ++u, arg += st) {
                      yv[dst0 + u] += rate * (kj * f.tbl[arg]) * xv[src0 + u];
                    }
                  }
                }
              } else {
                std::array<std::int32_t, 8> args{};
                std::array<std::int32_t, 8> steps{};
                if (nt > args.size()) {
                  throw std::logic_error(
                      "StencilOperator: more than 8 t-varying factors");
                }
                for (std::size_t f = 0; f < nt; ++f) {
                  const auto& vf = r.t_factors[f];
                  steps[f] = vf.sT;
                  args[f] = base[vf.sp] + vf.shift +
                            vf.sJ * static_cast<std::int32_t>(j) +
                            steps[f] * static_cast<std::int32_t>(lo);
                }
                for (std::int64_t u = lo; u < hi; ++u) {
                  real_t a = kj;
                  for (std::size_t f = 0; f < nt; ++f) {
                    a *= r.t_factors[f].tbl[args[f]];
                    args[f] += steps[f];
                  }
                  if (ck) {
                    ck[src0 + u] = rate * a;
                  } else {
                    yv[dst0 + u] += rate * a * xv[src0 + u];
                  }
                }
              }
            }
          }
        }
      },
      kSweepGrain);
}

void StencilOperator::sweep_cached(std::span<const real_t> x,
                                   std::span<real_t> y) const {
  const Program& P = *program_;
  const auto n = static_cast<std::int64_t>(table_.box_rows());
  const util::simdk::KernelOps& KO = util::simdk::kernels();
  util::parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t cb, std::size_t ce) {
        std::fill(y.begin() + static_cast<std::ptrdiff_t>(cb),
                  y.begin() + static_cast<std::ptrdiff_t>(ce), 0.0);
        // Per-row accumulation order is the reaction order for every
        // chunking, matching the recompute sweep (cached zeros where that
        // sweep skips change nothing). Each reaction's window is a
        // contiguous shifted multiply-add — the explicit-SIMD cmul_add
        // kernel, vectorized across rows.
        const real_t* xv = x.data();
        real_t* yv = y.data();
        for (std::size_t k = 0; k < P.rx.size(); ++k) {
          const std::int64_t s = P.rx[k].stride;
          const std::int64_t lo =
              std::max<std::int64_t>(static_cast<std::int64_t>(cb),
                                     s > 0 ? s : 0);
          const std::int64_t hi = std::min<std::int64_t>(
              static_cast<std::int64_t>(ce), s < 0 ? n + s : n);
          if (hi <= lo) continue;
          const real_t* ck = cache_.data() + k * static_cast<std::size_t>(n);
          KO.cmul_add(yv + lo, ck + lo - s, xv + lo - s,
                      static_cast<std::size_t>(hi - lo));
        }
      },
      kSweepGrain);
}

void StencilOperator::multiply(std::span<const real_t> x,
                               std::span<real_t> y) const {
  CMESOLVE_TRACE_SPAN("stencil.sweep");
  if (mode_ == StencilMode::kPropensityCache) {
    sweep_cached(x, y);
  } else {
    sweep_recompute(x, y, nullptr);
  }
}

void StencilOperator::build_cache() {
  cache_.assign(
      program_->rx.size() * static_cast<std::size_t>(table_.box_rows()), 0.0);
  sweep_recompute({}, {}, &cache_);
}

void StencilOperator::compute_inf_norm() {
  // ||A||_inf via a ones sweep: off-diagonal entries are propensities
  // (non-negative), so the row sums of |L + U| are exactly (L + U) * 1.
  const auto n = static_cast<std::size_t>(table_.box_rows());
  const std::vector<real_t> ones(n, 1.0);
  std::vector<real_t> rowsum(n, 0.0);
  sweep_recompute(ones, rowsum, nullptr);
  const auto d = table_.diag();
  inf_norm_ = util::parallel_reduce(
      n, kReduceChunk, real_t{0.0},
      [&](std::size_t b, std::size_t e) {
        real_t mx = 0.0;
        for (std::size_t i = b; i < e; ++i) {
          mx = std::max(mx, std::abs(d[i]) + rowsum[i]);
        }
        return mx;
      },
      [](real_t a, real_t b) { return std::max(a, b); });
}

void StencilOperator::scatter_from(const core::StateSpace& space,
                                   std::span<const real_t> from,
                                   std::span<real_t> to) const {
  std::fill(to.begin(), to.end(), 0.0);
  for (index_t j = 0; j < space.size(); ++j) {
    const index_t i = table_.box_index(space.state(j));
    if (i < 0) {
      throw std::invalid_argument(
          "StencilOperator::scatter_from: state outside the stencil box");
    }
    to[static_cast<std::size_t>(i)] = from[static_cast<std::size_t>(j)];
  }
}

void StencilOperator::gather_to(const core::StateSpace& space,
                                std::span<const real_t> from,
                                std::span<real_t> to) const {
  for (index_t j = 0; j < space.size(); ++j) {
    const index_t i = table_.box_index(space.state(j));
    if (i < 0) {
      throw std::invalid_argument(
          "StencilOperator::gather_to: state outside the stencil box");
    }
    to[static_cast<std::size_t>(j)] = from[static_cast<std::size_t>(i)];
  }
}

// ---------------------------------------------------------------------------
// MaskedStencilOperator
// ---------------------------------------------------------------------------

MaskedStencilOperator::MaskedStencilOperator(
    const core::StencilTable& table, const core::DynamicStateSpace& space,
    index_t return_member)
    : table_(&table), members_(space.size()) {
  const auto n = static_cast<std::size_t>(table.box_rows());
  const auto m = static_cast<std::size_t>(members_);
  if (return_member < 0 || return_member >= members_) {
    throw std::invalid_argument(
        "MaskedStencilOperator: return state not a member");
  }
  box_of_.resize(m);
  std::vector<index_t> member_at(n, -1);
  for (index_t j = 0; j < members_; ++j) {
    const index_t bj = table.box_index(space.state(j));
    if (bj < 0 || member_at[static_cast<std::size_t>(bj)] >= 0) {
      throw std::logic_error(
          "MaskedStencilOperator: member outside the stencil box");
    }
    member_at[static_cast<std::size_t>(bj)] = j;
    box_of_[static_cast<std::size_t>(j)] = bj;
  }
  return_box_ = box_of_[static_cast<std::size_t>(return_member)];

  const auto& rx = table.reactions();
  cache_.assign(rx.size() * n, 0.0);
  leak_.assign(n, 0.0);
  diag_.assign(n, -1.0);

  // Per-member stencil evaluation: every write lands at this member's box
  // row, so members parallelize with disjoint stores; the edge count
  // reduces over fixed chunks — bit-identical at any thread count.
  const int ns = space.num_species();
  offdiag_nnz_ = util::parallel_reduce(
      m, std::size_t{4096}, std::size_t{0},
      [&](std::size_t b, std::size_t e) {
        std::size_t edges = 0;
        core::State xs(static_cast<std::size_t>(ns));
        for (std::size_t j = b; j < e; ++j) {
          for (int s = 0; s < ns; ++s) {
            xs[static_cast<std::size_t>(s)] =
                space.count(static_cast<index_t>(j), s);
          }
          const auto bj = static_cast<std::size_t>(box_of_[j]);
          real_t total = 0.0;
          real_t lk = 0.0;
          for (std::size_t k = 0; k < rx.size(); ++k) {
            const real_t a = table_->out_propensity(rx[k], xs);
            if (a <= 0.0) continue;
            total += a;
            const auto succ = static_cast<std::size_t>(
                static_cast<std::int64_t>(bj) + rx[k].stride);
            if (member_at[succ] >= 0) {
              cache_[k * n + bj] = a;
              ++edges;
            } else {
              lk += a;
            }
          }
          leak_[bj] = lk;
          // The return member's own leak folds into its diagonal instead
          // of a self-loop redirect, mirroring ProjectedRateMatrix.
          const bool is_ret = static_cast<index_t>(j) == return_member;
          diag_[bj] = -(total - (is_ret ? lk : 0.0));
          if (lk > 0.0 && !is_ret) ++edges;
        }
        return edges;
      },
      [](std::size_t a, std::size_t b) { return a + b; });

  const std::vector<real_t> ones(n, 1.0);
  std::vector<real_t> rowsum(n, 0.0);
  multiply(ones, rowsum);
  inf_norm_ = util::parallel_reduce(
      n, kReduceChunk, real_t{0.0},
      [&](std::size_t b, std::size_t e) {
        real_t mx = 0.0;
        for (std::size_t i = b; i < e; ++i) {
          mx = std::max(mx, std::abs(diag_[i]) + rowsum[i]);
        }
        return mx;
      },
      [](real_t a, real_t b) { return std::max(a, b); });
}

void MaskedStencilOperator::multiply(std::span<const real_t> x,
                                     std::span<real_t> y) const {
  CMESOLVE_TRACE_SPAN("stencil.sweep");
  const auto& rx = table_->reactions();
  const auto n = static_cast<std::int64_t>(table_->box_rows());
  const util::simdk::KernelOps& KO = util::simdk::kernels();
  util::parallel_for(
      static_cast<std::size_t>(n),
      [&](std::size_t cb, std::size_t ce) {
        std::fill(y.begin() + static_cast<std::ptrdiff_t>(cb),
                  y.begin() + static_cast<std::ptrdiff_t>(ce), 0.0);
        const real_t* xv = x.data();
        real_t* yv = y.data();
        for (std::size_t k = 0; k < rx.size(); ++k) {
          const std::int64_t s = rx[k].stride;
          const std::int64_t lo =
              std::max<std::int64_t>(static_cast<std::int64_t>(cb),
                                     s > 0 ? s : 0);
          const std::int64_t hi = std::min<std::int64_t>(
              static_cast<std::int64_t>(ce), s < 0 ? n + s : n);
          if (hi <= lo) continue;
          const real_t* ck = cache_.data() + k * static_cast<std::size_t>(n);
          KO.cmul_add(yv + lo, ck + lo - s, xv + lo - s,
                      static_cast<std::size_t>(hi - lo));
        }
      },
      kSweepGrain);
  // Out-of-set flux redirect: y[return] += sum_{j != return} gamma_j x_j,
  // reduced over fixed chunks and applied serially after the barrier.
  const real_t sink = util::parallel_reduce(
      static_cast<std::size_t>(n), kReduceChunk, real_t{0.0},
      [&](std::size_t b, std::size_t e) {
        real_t acc = 0.0;
        for (std::size_t i = b; i < e; ++i) acc += leak_[i] * x[i];
        return acc;
      },
      [](real_t a, real_t b) { return a + b; });
  const auto rb = static_cast<std::size_t>(return_box_);
  y[rb] += sink - leak_[rb] * x[rb];
}

void MaskedStencilOperator::scatter_from_members(std::span<const real_t> from,
                                                 std::span<real_t> to) const {
  std::fill(to.begin(), to.end(), 0.0);
  for (index_t j = 0; j < members_; ++j) {
    to[static_cast<std::size_t>(box_of_[static_cast<std::size_t>(j)])] =
        from[static_cast<std::size_t>(j)];
  }
}

void MaskedStencilOperator::gather_to_members(std::span<const real_t> from,
                                              std::span<real_t> to) const {
  for (index_t j = 0; j < members_; ++j) {
    to[static_cast<std::size_t>(j)] =
        from[static_cast<std::size_t>(box_of_[static_cast<std::size_t>(j)])];
  }
}

}  // namespace cmesolve::solver
