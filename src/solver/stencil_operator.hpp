#pragma once
//
// Matrix-free stencil operators for the Jacobi iteration.
//
// Where the operators in operators.hpp wrap a stored format, these apply
// y = (L + U) x directly from the per-reaction stencils compiled by
// core::StencilTable: one DIA-style diagonal per reaction at constant row
// stride, whose values are mass-action propensities evaluated from the
// decoded copy numbers. Nothing of size O(nnz) is ever stored (recompute
// mode) — or, in the propensity-cache variant, exactly one real_t per
// (reaction, row) with no index streams.
//
// Determinism: the sweep runs under util::parallel_for, whose chunk
// boundaries depend on the thread count. Every y[i] is accumulated
// entirely inside the chunk owning row i, in reaction order, and each
// per-term value depends only on (row, reaction) — never on where a chunk
// boundary fell — so results are bit-identical at any thread count.
//
#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "core/reaction_network.hpp"
#include "core/state_space.hpp"
#include "core/stencil.hpp"
#include "solver/gmres.hpp"
#include "util/aligned_vector.hpp"
#include "util/types.hpp"

namespace cmesolve::solver {

enum class StencilMode {
  kRecompute,        ///< evaluate every propensity inside the sweep
  kPropensityCache,  ///< one cached real_t per (reaction, row)
};

/// Matrix-free off-diagonal operator over the conservation-reduced state
/// box. Satisfies the JacobiOperator concept; vectors are indexed by box
/// row (use scatter_from/gather_to to move between an enumerated state
/// space and the box).
///
/// Masked box rows (StencilTable::rows_masked) carry a -1 diagonal
/// sentinel and no off-diagonal entries: Jacobi leaves them at the value
/// the initial guess assigned, so seed the iteration through
/// scatter_from (mass on reachable states only) — never with a uniform
/// vector over the whole box.
class StencilOperator {
 public:
  explicit StencilOperator(core::StencilTable table,
                           StencilMode mode = StencilMode::kRecompute);
  StencilOperator(const core::ReactionNetwork& network,
                  const core::State& anchor,
                  StencilMode mode = StencilMode::kRecompute);

  [[nodiscard]] index_t nrows() const noexcept { return table_.box_rows(); }
  [[nodiscard]] std::span<const real_t> diag() const noexcept {
    return table_.diag();
  }
  [[nodiscard]] std::size_t offdiag_nnz() const noexcept {
    return table_.offdiag_nnz();
  }
  void multiply(std::span<const real_t> x, std::span<real_t> y) const;

  [[nodiscard]] const core::StencilTable& table() const noexcept {
    return table_;
  }
  [[nodiscard]] StencilMode mode() const noexcept { return mode_; }
  [[nodiscard]] index_t rows_masked() const noexcept {
    return table_.rows_masked();
  }
  /// ||A||_inf of the full generator (diagonal included), computed once at
  /// construction via a ones-vector sweep — the scale jacobi_solve wants.
  [[nodiscard]] real_t inf_norm() const noexcept { return inf_norm_; }

  /// kPropensityCache only: the cached off-diagonal values, reaction-major
  /// (reactions() x box_rows; entry [k * box_rows + src] is the value the
  /// sweep applies from source row src along reaction k). Empty in
  /// recompute mode. The batched ensemble operator builds a UNIT-rate
  /// operator and reads this as the shared combinatorial table.
  [[nodiscard]] std::span<const real_t> propensity_cache() const noexcept {
    return cache_;
  }

  /// Copy per-state values from an enumerated space into the box layout
  /// (rows not covered by the space are zeroed). Every state of `space`
  /// must map into the box (same network, same conservation class).
  void scatter_from(const core::StateSpace& space,
                    std::span<const real_t> from,
                    std::span<real_t> to) const;
  /// Inverse gather: read the box values of the space's states.
  void gather_to(const core::StateSpace& space, std::span<const real_t> from,
                 std::span<real_t> to) const;

 private:
  struct Program;  // compiled per-reaction sweep plans

  void compile();
  void build_cache();
  void compute_inf_norm();
  void sweep_recompute(std::span<const real_t> x, std::span<real_t> y,
                       aligned_vector<real_t>* cache_out) const;
  void sweep_cached(std::span<const real_t> x, std::span<real_t> y) const;

  core::StencilTable table_;
  StencilMode mode_;
  std::shared_ptr<const Program> program_;
  /// kPropensityCache: reaction-major, reactions() x box_rows values;
  /// 64-byte aligned so the SIMD sweep's cache stream starts on a vector
  /// boundary.
  aligned_vector<real_t> cache_;
  real_t inf_norm_ = 0.0;
};

/// Nonsingular-ized steady-state apply over any JacobiOperator-shaped
/// operator with an off-diagonal multiply and a dense diagonal: row
/// `constraint_row` of A is replaced by the normalization row sum_i x_i.
/// The matrix-free twin of steady_state_operator(const sparse::Csr&, ...),
/// so GMRES runs without an assembled matrix.
template <class Op>
[[nodiscard]] LinearOp matrix_free_steady_state_operator(
    const Op& op, index_t constraint_row) {
  return [&op, constraint_row](std::span<const real_t> x,
                               std::span<real_t> y) {
    op.multiply(x, y);
    const auto d = op.diag();
    const auto n = static_cast<std::size_t>(op.nrows());
    real_t sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      y[i] += d[i] * x[i];
      sum += x[i];
    }
    y[static_cast<std::size_t>(constraint_row)] = sum;
  };
}

/// Matrix-free twin of ProjectedRateMatrix::assemble for the FSP inner
/// solve: restricts the stencil sweep to a member set, redirects the
/// out-of-set flux of every member to a designated return member, and
/// masks non-member box rows with the -1 diagonal sentinel. Vectors are
/// box-indexed; member_to_box()/scatter/gather translate.
///
/// Always runs in propensity-cache mode: the FSP round loop rebuilds the
/// operator whenever the member set changes, and the member mask is folded
/// into the cached values (zero for non-member sources and out-of-set
/// targets), so the sweep itself needs no membership tests.
class MaskedStencilOperator {
 public:
  MaskedStencilOperator(const core::StencilTable& table,
                        const core::DynamicStateSpace& space,
                        index_t return_member);

  [[nodiscard]] index_t nrows() const noexcept { return table_->box_rows(); }
  [[nodiscard]] std::span<const real_t> diag() const noexcept {
    return diag_;
  }
  [[nodiscard]] std::size_t offdiag_nnz() const noexcept {
    return offdiag_nnz_;
  }
  void multiply(std::span<const real_t> x, std::span<real_t> y) const;

  [[nodiscard]] real_t inf_norm() const noexcept { return inf_norm_; }
  /// Box row of member j.
  [[nodiscard]] index_t member_to_box(index_t j) const {
    return box_of_[static_cast<std::size_t>(j)];
  }
  /// Out-of-set outflow rate gamma_j of member j (the FSP bound numerator;
  /// includes the return member's own leak, which folds into its diagonal
  /// rather than a redirect).
  [[nodiscard]] real_t outflow(index_t j) const {
    return leak_[static_cast<std::size_t>(box_of_[static_cast<std::size_t>(j)])];
  }

  void scatter_from_members(std::span<const real_t> from,
                            std::span<real_t> to) const;
  void gather_to_members(std::span<const real_t> from,
                         std::span<real_t> to) const;

 private:
  const core::StencilTable* table_;
  index_t members_ = 0;
  index_t return_box_ = 0;
  std::vector<index_t> box_of_;       ///< member -> box row
  aligned_vector<real_t> cache_;      ///< reaction-major masked propensities
  aligned_vector<real_t> leak_;       ///< gamma over box rows (0 off-members)
  aligned_vector<real_t> diag_;
  std::size_t offdiag_nnz_ = 0;
  real_t inf_norm_ = 0.0;
};

}  // namespace cmesolve::solver
