//
// Uniformization engine: two-sided Poisson truncation, interval splitting,
// checkpoint grids. See transient.hpp for the contract.
//
#include "solver/transient.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "solver/vector_ops.hpp"
#include "util/parallel.hpp"
#include "util/simd_kernels.hpp"

namespace cmesolve::solver {
namespace {

void validate(const TransientOptions& opt) {
  if (!(opt.eps > 0.0) || !(opt.eps < 1.0)) {
    throw std::invalid_argument(
        "transient_solve: eps must be in (0, 1) — eps == 0 can never "
        "terminate the series (the mass sum carries rounding error); use a "
        "tiny positive eps and rely on the tail-exhaustion exit");
  }
  if (!(opt.lambda_margin >= 1.0)) {
    throw std::invalid_argument(
        "transient_solve: lambda_margin must be >= 1 (lambda below "
        "max |a_ii| makes B = I + A/lambda negative)");
  }
  if (!(opt.max_step_mean > 0.0)) {
    throw std::invalid_argument(
        "transient_solve: max_step_mean must be positive");
  }
}

/// y += c .* x through the kernel table — same deterministic elementwise
/// contract as axpy in vector_ops.hpp.
void cmul_add(std::span<real_t> y, std::span<const real_t> c,
              std::span<const real_t> x) {
  real_t* py = y.data();
  const real_t* pc = c.data();
  const real_t* px = x.data();
  const util::simdk::KernelOps& ko = util::simdk::kernels();
  util::parallel_for(y.size(),
                     [py, pc, px, &ko](std::size_t b, std::size_t e) {
                       ko.cmul_add(py + b, pc + b, px + b, e - b);
                     });
}

struct Workspace {
  std::vector<real_t> v;    ///< B^k P(0)
  std::vector<real_t> bv;   ///< off-diagonal product scratch
  std::vector<real_t> acc;  ///< windowed series accumulator
};

/// One uniformization sub-step over horizon dt with tail budget eps_step.
/// Reads P from `p`, leaves the (optionally renormalized) windowed series
/// sum back in `p`. Returns false when the max_terms budget ran out.
bool uniformize_step(const TransientOperator& op, real_t dt, real_t eps_step,
                     std::span<real_t> p, Workspace& ws,
                     const TransientOptions& opt, TransientResult& out) {
  const auto n = static_cast<std::size_t>(op.n);
  const real_t m = out.lambda * dt;  // Poisson mean of this step
  if (m == 0.0) return true;
  const real_t eps_left = 0.5 * eps_step;
  const real_t eps_right = eps_step - eps_left;

  ws.v.assign(p.begin(), p.end());
  ws.bv.assign(n, 0.0);
  ws.acc.assign(n, 0.0);
  const std::span<real_t> v(ws.v);
  const std::span<real_t> bv(ws.bv);
  const std::span<real_t> acc(ws.acc);

  // Poisson weights by stable log-space recursion:
  // log w_0 = -m; log w_k = log w_{k-1} + log(m / k).
  real_t log_w = -m;
  real_t cum = 0.0;        // total weight seen (window + trimmed head)
  real_t covered = 0.0;    // window weight actually accumulated
  real_t head = 0.0;       // left-trimmed weight
  bool accumulating = false;
  bool seen_weight = false;
  std::uint64_t k = 0;
  bool budget_ok = true;
  for (;; ++k) {
    const real_t w = std::exp(log_w);
    if (w > 0.0) seen_weight = true;
    if (!accumulating && cum + w <= eps_left &&
        static_cast<real_t>(k) < m) {
      // Still safely inside the left tail: the term's weight is dropped
      // (bounded by eps_left in total) but v must keep advancing below.
      head += w;
      cum += w;
      ++out.left_skipped;
    } else {
      accumulating = true;
      if (w > 0.0) {
        covered += w;
        cum += w;
        axpy(w, v, acc);
      }
    }
    if (cum >= 1.0 - eps_right) break;
    // Tail exhaustion: past the Poisson mode the weights decay
    // monotonically, so once one underflows every later one does too and
    // the series is numerically complete. Checked independently of the
    // mass test — for eps below the ~1e-12 accumulation floor the mass
    // test can never fire.
    if (w == 0.0 && seen_weight && static_cast<real_t>(k) > m) {
      out.tail_exhausted = true;
      break;
    }
    if (out.matvecs >= opt.max_terms) {
      out.truncated_early = true;
      budget_ok = false;
      break;
    }
    // v <- B v = v + (offdiag*v + diag.*v) / lambda
    op.multiply(v, bv);
    cmul_add(bv, op.diag, v);
    axpy(1.0 / out.lambda, bv, v);
    ++out.matvecs;
    log_w += std::log(m / static_cast<real_t>(k + 1));
  }

  // Walk the remaining right tail scalar (no SpMVs) until it underflows:
  // covered + truncated then closes to the full representable series sum.
  // Pointless after a budget cut — the tail was never reached.
  real_t right = 0.0;
  if (budget_ok && !out.tail_exhausted) {
    real_t lw = log_w;
    for (std::uint64_t j = k + 1; j <= k + opt.max_terms; ++j) {
      lw += std::log(m / static_cast<real_t>(j));
      const real_t w = std::exp(lw);
      if (w == 0.0 && static_cast<real_t>(j) > m) break;
      right += w;
    }
  }

  out.covered_mass *= covered;
  out.truncated_mass += head + right;
  ++out.steps;
  obs::flight("transient.step", obs::FlightKind::kTransientStep,
              out.steps - 1, covered);

  if (covered > 0.0) {
    std::copy(acc.begin(), acc.end(), p.begin());
    if (opt.renormalize) normalize_l1(p);
  }
  // covered == 0 can only happen when max_terms cut the series before the
  // Poisson bulk (every computed weight underflowed); p is left unchanged —
  // truncated_early + covered_mass == 0 tells the caller so.
  return budget_ok;
}

/// Advance p over one horizon, splitting into sub-steps when the Poisson
/// mean exceeds opt.max_step_mean. `out` accumulates across segments.
void advance(const TransientOperator& op, real_t t, std::span<real_t> p,
             Workspace& ws, const TransientOptions& opt,
             TransientResult& out) {
  if (t == 0.0) return;
  const real_t mean = out.lambda * t;
  if (mean == 0.0) return;  // A == 0: exp(At) is the identity
  const auto splits = static_cast<std::uint64_t>(
      std::max<real_t>(1.0, std::ceil(mean / opt.max_step_mean)));
  const real_t dt = t / static_cast<real_t>(splits);
  const real_t eps_step = opt.eps / static_cast<real_t>(splits);
  for (std::uint64_t s = 0; s < splits; ++s) {
    if (!uniformize_step(op, dt, eps_step, p, ws, opt, out)) return;
  }
}

TransientResult begin(const TransientOperator& op, std::span<real_t> p,
                      const TransientOptions& opt) {
  validate(opt);
  if (p.size() != static_cast<std::size_t>(op.n)) {
    throw std::invalid_argument("transient_solve: p size mismatch");
  }
  const std::span<const real_t> d = op.diag;
  real_t max_diag = 0.0;
  for (index_t i = 0; i < op.n; ++i) {
    max_diag = std::max(max_diag, std::abs(d[static_cast<std::size_t>(i)]));
  }
  TransientResult out;
  out.lambda = opt.lambda_margin * max_diag;
  out.covered_mass = 1.0;
  return out;
}

void finish(const TransientResult& out) {
  obs::flight("transient.stop", obs::FlightKind::kStop, out.steps,
              out.truncated_early ? 0.0 : 1.0);
  obs::count("transient.solves");
  obs::gauge("transient.matvecs", static_cast<real_t>(out.matvecs));
  obs::gauge("transient.steps", static_cast<real_t>(out.steps));
  obs::observe("transient.covered_mass", out.covered_mass);
}

}  // namespace

TransientResult transient_solve(const TransientOperator& op, real_t t,
                                std::span<real_t> p,
                                const TransientOptions& opt) {
  CMESOLVE_TRACE_SPAN("solver.transient");
  if (t < 0.0) {
    throw std::invalid_argument("transient_solve: negative time");
  }
  TransientResult out = begin(op, p, opt);
  Workspace ws;
  advance(op, t, p, ws, opt, out);
  finish(out);
  return out;
}

TransientResult transient_solve_grid(
    const TransientOperator& op, std::span<const real_t> t_grid,
    std::span<real_t> p,
    const std::function<void(std::size_t, std::span<const real_t>)>&
        on_checkpoint,
    const TransientOptions& opt) {
  CMESOLVE_TRACE_SPAN("solver.transient_grid");
  real_t prev = 0.0;
  for (const real_t t : t_grid) {
    if (t < prev) {
      throw std::invalid_argument(
          "transient_solve_grid: t_grid must be ascending and non-negative");
    }
    prev = t;
  }
  TransientResult out = begin(op, p, opt);
  Workspace ws;
  prev = 0.0;
  for (std::size_t i = 0; i < t_grid.size(); ++i) {
    advance(op, t_grid[i] - prev, p, ws, opt, out);
    prev = t_grid[i];
    // A budget-cut advance leaves p mid-series (or untouched when the cut
    // landed before the Poisson bulk): it is NOT P(t_grid[i]), so the
    // checkpoint is withheld rather than delivered with stale content.
    if (out.truncated_early) break;
    if (on_checkpoint) on_checkpoint(i, p);
  }
  finish(out);
  return out;
}

}  // namespace cmesolve::solver
