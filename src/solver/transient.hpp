#pragma once
//
// Transient probability landscape P(t) = exp(A t) P(0) by uniformization —
// the extension the paper lists as future work (Sec. VIII: "we plan to
// further develop our GPU-based CME stochastic framework by including
// transient dynamic calculation").
//
// With lambda >= max_i |a_ii|, the uniformized matrix B = I + A / lambda is
// column-stochastic and
//
//   P(t) = sum_{k>=0} PoissonPmf(k; lambda t) * B^k P(0).
//
// The series is truncated once the accumulated Poisson mass reaches
// 1 - eps; each term costs one SpMV, so the kernel profile is identical to
// a Jacobi sweep and runs on the same operators.
//
#include <cmath>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "solver/jacobi.hpp"
#include "solver/vector_ops.hpp"

namespace cmesolve::solver {

struct TransientOptions {
  real_t eps = 1e-12;          ///< allowed truncated Poisson tail mass
  real_t lambda_margin = 1.01; ///< lambda = margin * max |a_ii|
  std::uint64_t max_terms = 1'000'000;  ///< series-length safety cap
};

struct TransientResult {
  std::uint64_t matvecs = 0;       ///< SpMV count (series length)
  real_t covered_mass = 0.0;       ///< accumulated Poisson weight
  real_t lambda = 0.0;
  /// Hit max_terms with Poisson mass still outstanding. The returned `p` is
  /// the truncated series renormalized by the covered mass (a proper
  /// distribution over the landscape actually reached) — except when
  /// covered_mass == 0, where `p` is left unchanged (see below).
  bool truncated_early = false;
  /// The series ended because every remaining tail weight underflows to
  /// zero in double precision — the numerically exact stopping point. This
  /// is the normal exit when `eps` is at or below the accumulation floor
  /// (~1e-12 of rounding error in the Poisson-mass sum): without it the
  /// `mass >= 1 - eps` test could never fire and the solve would spin to
  /// max_terms doing zero-weight SpMVs.
  bool tail_exhausted = false;
};

/// Advance `p` from P(0) to P(t). `op`/`diag` follow the Jacobi operator
/// convention (off-diagonal multiply + dense diagonal).
template <JacobiOperator Op>
TransientResult transient_solve(const Op& op, real_t t, std::span<real_t> p,
                                const TransientOptions& opt = {}) {
  const index_t n = op.nrows();
  if (p.size() != static_cast<std::size_t>(n)) {
    throw std::invalid_argument("transient_solve: p size mismatch");
  }
  if (t < 0.0) {
    throw std::invalid_argument("transient_solve: negative time");
  }

  const std::span<const real_t> d = op.diag();
  real_t max_diag = 0.0;
  for (index_t i = 0; i < n; ++i) max_diag = std::max(max_diag, std::abs(d[i]));

  TransientResult out;
  out.lambda = opt.lambda_margin * max_diag;
  const real_t m = out.lambda * t;  // Poisson mean
  if (m == 0.0) {
    out.covered_mass = 1.0;
    return out;
  }

  // Poisson weights by stable log-space recursion:
  // log w_0 = -m; log w_{k} = log w_{k-1} + log(m / k).
  real_t log_w = -m;

  std::vector<real_t> v(p.begin(), p.end());  // v_k = B^k P(0)
  std::vector<real_t> bv(static_cast<std::size_t>(n));
  std::vector<real_t> acc(static_cast<std::size_t>(n), 0.0);

  real_t mass = 0.0;
  bool seen_weight = false;  // some w_k was representable (> 0)
  for (std::uint64_t k = 0;; ++k) {
    const real_t w = std::exp(log_w);
    if (w > 0.0) {
      mass += w;
      seen_weight = true;
      axpy(w, v, std::span<real_t>(acc));
    }
    if (mass >= 1.0 - opt.eps) break;
    // Tail exhaustion: past the Poisson mode the weights decay
    // monotonically, so once one underflows every later one does too and
    // the series is numerically complete. This must be checked
    // independently of the mass test: the accumulated mass carries ~1e-12
    // of rounding error, so for eps below that floor `mass >= 1 - eps` can
    // never fire and the loop would spin to max_terms on zero weights.
    if (w == 0.0 && seen_weight && static_cast<real_t>(k) > m) {
      out.tail_exhausted = true;
      break;
    }
    if (k >= opt.max_terms) {
      out.truncated_early = true;
      break;
    }
    // v <- B v = v + (offdiag*v + diag.*v) / lambda
    op.multiply(v, bv);
    for (index_t i = 0; i < n; ++i) {
      v[i] += (bv[i] + d[i] * v[i]) / out.lambda;
    }
    ++out.matvecs;
    log_w += std::log(m / static_cast<real_t>(k + 1));
  }

  out.covered_mass = mass;
  if (mass > 0.0) {
    // Renormalize by the covered mass so P(t) is a proper distribution even
    // when the series was cut early: acc = sum_k w_k B^k P(0) carries total
    // weight `mass`, and each B^k P(0) is itself a probability vector, so
    // the L1 rescale divides by exactly the covered mass (plus the rounding
    // the direct division would miss).
    std::copy(acc.begin(), acc.end(), p.begin());
    normalize_l1(p);
  }
  // mass == 0 can only happen when max_terms cut the series before the
  // Poisson bulk (every computed weight underflowed); p is left unchanged —
  // there is no usable information in the truncated prefix, and
  // truncated_early + covered_mass == 0 tells the caller so.
  return out;
}

}  // namespace cmesolve::solver
