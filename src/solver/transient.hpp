#pragma once
//
// Transient probability landscape P(t) = exp(A t) P(0) by uniformization —
// the extension the paper lists as future work (Sec. VIII: "we plan to
// further develop our GPU-based CME stochastic framework by including
// transient dynamic calculation").
//
// With lambda >= max_i |a_ii|, the uniformized matrix B = I + A / lambda is
// column-stochastic (column-substochastic on a leaky FSP truncation) and
//
//   P(t) = sum_{k>=0} PoissonPmf(k; lambda t) * B^k P(0).
//
// The production engine in transient.cpp adds, over the original header toy:
//
//  * two-sided Poisson truncation — the accumulation window drops both the
//    left tail (terms before the Poisson bulk, relevant for large lambda*t)
//    and the right tail, each bounded by eps/2 per step;
//  * interval splitting — a horizon whose Poisson mean exceeds
//    `max_step_mean` is split into equal sub-steps so the series length per
//    step stays bounded and the left-tail trim can engage;
//  * checkpointed output — `transient_solve_grid` walks an ascending time
//    grid and hands the caller the marginal at every requested t;
//  * explicit mass accounting — `covered_mass` and `truncated_mass` close
//    to 1 within rounding for a completed single-step solve;
//  * a `renormalize` switch — FSP transient propagation keeps the raw
//    substochastic vector because 1 - ||P(t)||_1 IS the error bound.
//
// Every vector update runs through the deterministic kernel-table / chunked
// reduction primitives (vector_ops.hpp), so a transient solve is bitwise
// identical at any CMESOLVE_THREADS and on every compiled ISA, matching the
// Jacobi contract. Each term costs one SpMV, so the kernel profile is
// identical to a Jacobi sweep and runs on the same operators.
//
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "solver/jacobi.hpp"
#include "util/types.hpp"

namespace cmesolve::solver {

struct TransientOptions {
  /// Allowed truncated Poisson mass per uniformization step (left + right
  /// tail combined). Must be in (0, 1): eps == 0 is rejected with
  /// std::invalid_argument because the accumulated mass carries ~1e-12 of
  /// rounding error, so `mass >= 1 - eps` could never fire and the solve
  /// would spin to max_terms on zero-weight SpMVs. Values below the
  /// accumulation floor are legal — the tail-exhaustion exit terminates the
  /// series at the numerically exact stopping point instead.
  real_t eps = 1e-12;
  /// lambda = margin * max |a_ii|; must be >= 1 or B has negative entries.
  real_t lambda_margin = 1.01;
  std::uint64_t max_terms = 1'000'000;  ///< total series-length budget
  /// Interval splitting: one uniformization step never carries a Poisson
  /// mean above this; longer horizons run ceil(lambda*t / max_step_mean)
  /// equal sub-steps, each with an eps share of eps/steps.
  real_t max_step_mean = 4096.0;
  /// L1-renormalize after every step (proper distribution out). FSP
  /// transient propagation sets false: on the leaky truncated generator the
  /// missing mass 1 - ||P(t)||_1 is exactly the FSP error bound and must
  /// not be washed out.
  bool renormalize = true;
};

struct TransientResult {
  std::uint64_t matvecs = 0;  ///< SpMV count (total series length)
  std::uint64_t steps = 0;    ///< uniformization sub-steps taken
  /// Leading series terms whose accumulation was skipped by the left-tail
  /// trim (their SpMVs still run — B^k P(0) is needed to continue — but the
  /// axpy into the accumulator is saved and the window stays tight).
  std::uint64_t left_skipped = 0;
  /// Product over sub-steps of the per-step accumulated Poisson window
  /// mass. For a completed (!truncated_early) SINGLE-step solve,
  /// covered_mass + truncated_mass == 1 within rounding.
  real_t covered_mass = 0.0;
  /// Sum over sub-steps of the computed mass outside the window: the
  /// left-trimmed head plus the right tail walked scalar (no SpMVs) until
  /// it underflows. Meaningless when truncated_early (the tail was never
  /// reached).
  real_t truncated_mass = 0.0;
  real_t lambda = 0.0;
  /// Hit the max_terms budget with Poisson mass still outstanding. The
  /// returned `p` is the truncated series renormalized by the covered mass
  /// (when renormalize is set) — except when covered_mass == 0, where `p`
  /// is left unchanged: there is no usable information in the prefix.
  bool truncated_early = false;
  /// A step ended because every remaining tail weight underflows to zero in
  /// double precision — the numerically exact stopping point, and the
  /// normal exit when eps is at or below the accumulation floor.
  bool tail_exhausted = false;
};

/// Type-erased Jacobi-operator view the out-of-line engine runs on: row
/// count, dense diagonal, and the strictly off-diagonal multiply. Built via
/// transient_operator() from anything satisfying JacobiOperator — assembled
/// CSR/ELL/DIA, matrix-free stencil (SIMD-dispatched), masked FSP stencil.
struct TransientOperator {
  index_t n = 0;
  std::span<const real_t> diag;
  std::function<void(std::span<const real_t>, std::span<real_t>)> multiply;
};

/// Build the type-erased view. The result captures `op` BY REFERENCE (the
/// multiply closure and the diag span both point into it): it is a
/// non-owning view that must not outlive the source operator. Binding a
/// temporary is rejected at compile time by the deleted rvalue overload.
template <JacobiOperator Op>
[[nodiscard]] TransientOperator transient_operator(const Op& op) {
  return TransientOperator{
      op.nrows(), op.diag(),
      [&op](std::span<const real_t> x, std::span<real_t> y) {
        op.multiply(x, y);
      }};
}

template <JacobiOperator Op>
TransientOperator transient_operator(const Op&& op) = delete;

/// Advance `p` in place from P(0) to P(t).
TransientResult transient_solve(const TransientOperator& op, real_t t,
                                std::span<real_t> p,
                                const TransientOptions& opt = {});

/// Advance `p` through an ascending grid of absolute times (first entry may
/// be 0 == "now"), invoking `on_checkpoint(index, p)` at every grid point.
/// The eps budget applies per grid segment. When the series budget runs out
/// (truncated_early) the walk stops and no further checkpoints fire —
/// including the one whose segment was cut, since `p` is then a mid-series
/// partial sum, not P(t). Returns the aggregate over all segments
/// (covered_mass multiplies, truncated_mass/matvecs accumulate).
TransientResult transient_solve_grid(
    const TransientOperator& op, std::span<const real_t> t_grid,
    std::span<real_t> p,
    const std::function<void(std::size_t, std::span<const real_t>)>&
        on_checkpoint,
    const TransientOptions& opt = {});

template <JacobiOperator Op>
TransientResult transient_solve(const Op& op, real_t t, std::span<real_t> p,
                                const TransientOptions& opt = {}) {
  return transient_solve(transient_operator(op), t, p, opt);
}

template <JacobiOperator Op>
TransientResult transient_solve_grid(
    const Op& op, std::span<const real_t> t_grid, std::span<real_t> p,
    const std::function<void(std::size_t, std::span<const real_t>)>&
        on_checkpoint,
    const TransientOptions& opt = {}) {
  return transient_solve_grid(transient_operator(op), t_grid, p,
                              on_checkpoint, opt);
}

}  // namespace cmesolve::solver
