#pragma once
//
// Dense-vector helpers for the iterative solvers.
//
#include <cassert>
#include <cmath>
#include <span>

#include "util/types.hpp"

namespace cmesolve::solver {

[[nodiscard]] inline real_t norm_inf(std::span<const real_t> v) noexcept {
  real_t best = 0.0;
  for (real_t x : v) best = std::max(best, std::abs(x));
  return best;
}

[[nodiscard]] inline real_t norm_l1(std::span<const real_t> v) noexcept {
  real_t sum = 0.0;
  for (real_t x : v) sum += std::abs(x);
  return sum;
}

[[nodiscard]] inline real_t norm_l2(std::span<const real_t> v) noexcept {
  real_t sum = 0.0;
  for (real_t x : v) sum += x * x;
  return std::sqrt(sum);
}

[[nodiscard]] inline real_t dot(std::span<const real_t> a,
                                std::span<const real_t> b) noexcept {
  assert(a.size() == b.size());
  real_t sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

/// y += alpha * x
inline void axpy(real_t alpha, std::span<const real_t> x,
                 std::span<real_t> y) noexcept {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

inline void scale(std::span<real_t> v, real_t alpha) noexcept {
  for (real_t& x : v) x *= alpha;
}

/// Rescale so that sum |v_i| = 1 (probability-vector invariant, Sec. IV).
/// No-op on the zero vector.
inline void normalize_l1(std::span<real_t> v) noexcept {
  const real_t s = norm_l1(v);
  if (s > 0.0) scale(v, 1.0 / s);
}

/// Uniform probability vector.
inline void fill_uniform(std::span<real_t> v) noexcept {
  const real_t p = 1.0 / static_cast<real_t>(v.size());
  for (real_t& x : v) x = p;
}

}  // namespace cmesolve::solver
