#pragma once
//
// Dense-vector helpers for the iterative solvers.
//
// All reductions run as deterministic fixed-chunk parallel reductions: the
// vector is cut into kReduceChunk-element chunks regardless of the thread
// count, each chunk is reduced serially in index order, and the per-chunk
// partials are combined in ascending chunk order. The result is therefore
// bit-identical for any number of host threads (including the serial
// fallback build), which the solver's convergence histories rely on — see
// tests/test_parallel_determinism.cpp.
//
#include <cassert>
#include <cmath>
#include <span>

#include "util/parallel.hpp"
#include "util/simd_kernels.hpp"
#include "util/types.hpp"

namespace cmesolve::solver {

/// Fixed reduction-chunk size (elements). Independent of the thread count by
/// design — changing it changes the floating-point association, so it is a
/// single constant rather than a tuning knob.
inline constexpr std::size_t kReduceChunk = 8192;

[[nodiscard]] inline real_t norm_inf(std::span<const real_t> v) {
  const real_t* p = v.data();
  return util::parallel_reduce(
      v.size(), kReduceChunk, real_t{0.0},
      [p](std::size_t b, std::size_t e) {
        real_t best = 0.0;
        for (std::size_t i = b; i < e; ++i) best = std::max(best, std::abs(p[i]));
        return best;
      },
      [](real_t a, real_t b) { return std::max(a, b); });
}

[[nodiscard]] inline real_t norm_l1(std::span<const real_t> v) {
  const real_t* p = v.data();
  return util::parallel_reduce(
      v.size(), kReduceChunk, real_t{0.0},
      [p](std::size_t b, std::size_t e) {
        real_t sum = 0.0;
        for (std::size_t i = b; i < e; ++i) sum += std::abs(p[i]);
        return sum;
      },
      [](real_t a, real_t b) { return a + b; });
}

[[nodiscard]] inline real_t norm_l2(std::span<const real_t> v) {
  const real_t* p = v.data();
  const real_t sum = util::parallel_reduce(
      v.size(), kReduceChunk, real_t{0.0},
      [p](std::size_t b, std::size_t e) {
        real_t s = 0.0;
        for (std::size_t i = b; i < e; ++i) s += p[i] * p[i];
        return s;
      },
      [](real_t a, real_t b) { return a + b; });
  return std::sqrt(sum);
}

[[nodiscard]] inline real_t dot(std::span<const real_t> a,
                                std::span<const real_t> b) {
  assert(a.size() == b.size());
  const real_t* pa = a.data();
  const real_t* pb = b.data();
  return util::parallel_reduce(
      a.size(), kReduceChunk, real_t{0.0},
      [pa, pb](std::size_t lo, std::size_t hi) {
        real_t s = 0.0;
        for (std::size_t i = lo; i < hi; ++i) s += pa[i] * pb[i];
        return s;
      },
      [](real_t x, real_t y) { return x + y; });
}

/// y += alpha * x. Elementwise passes route through the explicit SIMD
/// kernel table (util/simd_kernels.hpp): the per-element operation chain
/// is identical at every vector width, so results stay bit-identical under
/// CMESOLVE_SIMD forcing. The reductions above deliberately do NOT — SIMD
/// across a reduction changes the association, which the fixed-chunk
/// determinism contract forbids.
inline void axpy(real_t alpha, std::span<const real_t> x, std::span<real_t> y) {
  assert(x.size() == y.size());
  const real_t* px = x.data();
  real_t* py = y.data();
  const util::simdk::KernelOps& ko = util::simdk::kernels();
  util::parallel_for(x.size(),
                     [alpha, px, py, &ko](std::size_t b, std::size_t e) {
                       ko.axpy(py + b, px + b, alpha, e - b);
                     });
}

inline void scale(std::span<real_t> v, real_t alpha) {
  real_t* p = v.data();
  const util::simdk::KernelOps& ko = util::simdk::kernels();
  util::parallel_for(v.size(), [alpha, p, &ko](std::size_t b, std::size_t e) {
    ko.scale(p + b, alpha, e - b);
  });
}

/// Rescale so that sum |v_i| = 1 (probability-vector invariant, Sec. IV).
/// No-op on the zero vector.
inline void normalize_l1(std::span<real_t> v) {
  const real_t s = norm_l1(v);
  if (s > 0.0) scale(v, 1.0 / s);
}

/// Uniform probability vector.
inline void fill_uniform(std::span<real_t> v) {
  const real_t p = 1.0 / static_cast<real_t>(v.size());
  real_t* pv = v.data();
  util::parallel_for(v.size(), [p, pv](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) pv[i] = p;
  });
}

/// Warm-start vector for a re-solve on a renumbered/extended index set (the
/// FSP expansion/prune loop, src/fsp/, and the serve warm-start cache,
/// src/serve/): every new-index entry starts at `fill`, surviving entries
/// copy the previous solution through `remap` (old index -> new index,
/// -1 = dropped), and the result is L1-normalized back to a probability
/// vector. With remap[i] == i this degenerates to "pad the old landscape
/// with `fill` for appended states" — the warm-start contract of the
/// adaptive pipeline.
///
/// Returns true when the warm start was applied. A previous vector that
/// does not fit the new index set — prev/remap length mismatch, a remap
/// target outside `out` (a cached solution from a pruned/expanded FSP set
/// or a different conservation elimination), or a mapping that carries no
/// probability mass at all — falls back to uniform seeding over `out` and
/// returns false instead of scattering out of bounds. Cold-start cost, not
/// UB, is the failure mode for a stale cache entry.
inline bool warm_restart(std::span<const real_t> prev,
                         std::span<const index_t> remap, std::span<real_t> out,
                         real_t fill = 0.0) {
  if (prev.size() != remap.size()) {
    fill_uniform(out);
    return false;
  }
  const auto nout = static_cast<index_t>(out.size());
  for (std::size_t i = 0; i < remap.size(); ++i) {
    if (remap[i] >= nout) {
      fill_uniform(out);
      return false;
    }
  }
  real_t* po = out.data();
  util::parallel_for(out.size(), [fill, po](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) po[i] = fill;
  });
  // Scatter serially: targets are unique but the mapping is gather-unsafe
  // to chunk without inverting it, and this runs once per FSP round.
  for (std::size_t i = 0; i < prev.size(); ++i) {
    const index_t j = remap[i];
    if (j >= 0) out[static_cast<std::size_t>(j)] = prev[i];
  }
  if (norm_l1(out) == 0.0) {
    // Every surviving entry was dropped (or carried zero probability): the
    // previous solution contributes nothing, so seed uniformly.
    fill_uniform(out);
    return false;
  }
  normalize_l1(out);
  return true;
}

}  // namespace cmesolve::solver
