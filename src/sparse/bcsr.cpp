#include "sparse/bcsr.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <stdexcept>

#include "util/parallel.hpp"

namespace cmesolve::sparse {

Bcsr bcsr_from_csr(const Csr& m, int block_rows, int block_cols) {
  if (block_rows <= 0 || block_cols <= 0) {
    throw std::invalid_argument("bcsr_from_csr: block dims must be positive");
  }
  Bcsr b;
  b.nrows = m.nrows;
  b.ncols = m.ncols;
  b.block_rows = block_rows;
  b.block_cols = block_cols;
  b.nblock_rows = (m.nrows + block_rows - 1) / block_rows;
  b.nnz = m.nnz();

  const std::size_t block_slots =
      static_cast<std::size_t>(block_rows) * static_cast<std::size_t>(block_cols);

  b.block_row_ptr.reserve(static_cast<std::size_t>(b.nblock_rows) + 1);
  b.block_row_ptr.push_back(0);

  // Per block-row: gather the touched block columns, then fill.
  std::map<index_t, std::vector<real_t>> blocks;  // ordered by block col
  for (index_t br = 0; br < b.nblock_rows; ++br) {
    blocks.clear();
    const index_t row0 = br * block_rows;
    const index_t row1 = std::min<index_t>(row0 + block_rows, m.nrows);
    for (index_t r = row0; r < row1; ++r) {
      for (index_t p = m.row_ptr[r]; p < m.row_ptr[r + 1]; ++p) {
        const index_t bc = m.col_idx[p] / block_cols;
        auto [it, inserted] = blocks.try_emplace(bc);
        if (inserted) it->second.assign(block_slots, 0.0);
        const std::size_t local =
            static_cast<std::size_t>(r - row0) * block_cols +
            static_cast<std::size_t>(m.col_idx[p] - bc * block_cols);
        it->second[local] += m.val[p];
      }
    }
    for (auto& [bc, data] : blocks) {
      b.block_col.push_back(bc);
      b.val.insert(b.val.end(), data.begin(), data.end());
    }
    b.block_row_ptr.push_back(static_cast<index_t>(b.block_col.size()));
  }
  return b;
}

Csr csr_from_bcsr(const Bcsr& m) {
  Coo coo;
  coo.nrows = m.nrows;
  coo.ncols = m.ncols;
  const std::size_t slots =
      static_cast<std::size_t>(m.block_rows) * static_cast<std::size_t>(m.block_cols);
  for (index_t br = 0; br < m.nblock_rows; ++br) {
    for (index_t bp = m.block_row_ptr[br]; bp < m.block_row_ptr[br + 1]; ++bp) {
      const index_t col0 = m.block_col[bp] * m.block_cols;
      const real_t* data = m.val.data() + static_cast<std::size_t>(bp) * slots;
      for (int lr = 0; lr < m.block_rows; ++lr) {
        const index_t r = br * m.block_rows + lr;
        if (r >= m.nrows) break;
        for (int lc = 0; lc < m.block_cols; ++lc) {
          const index_t c = col0 + lc;
          const real_t v = data[static_cast<std::size_t>(lr) * m.block_cols + lc];
          if (c < m.ncols && v != 0.0) coo.add(r, c, v);
        }
      }
    }
  }
  return csr_from_coo(std::move(coo));
}

void spmv(const Bcsr& m, std::span<const real_t> x, std::span<real_t> y) {
  assert(x.size() == static_cast<std::size_t>(m.ncols));
  assert(y.size() == static_cast<std::size_t>(m.nrows));
  const std::size_t slots =
      static_cast<std::size_t>(m.block_rows) * static_cast<std::size_t>(m.block_cols);
  // Block-row parallel (one thread per block row of y) — thread-count
  // independent; acc[] is stack-private to each iteration.
  const index_t* brp = m.block_row_ptr.data();
  const index_t* bcol = m.block_col.data();
  const real_t* pval = m.val.data();
  const real_t* px = x.data();
  real_t* py = y.data();
  const index_t nblock_rows = m.nblock_rows;
  CMESOLVE_OMP_PARALLEL_FOR
  for (index_t br = 0; br < nblock_rows; ++br) {
    real_t acc[16] = {};  // supports block_rows up to 16
    assert(m.block_rows <= 16);
    for (index_t bp = brp[br]; bp < brp[br + 1]; ++bp) {
      const index_t col0 = bcol[bp] * m.block_cols;
      const real_t* data = pval + static_cast<std::size_t>(bp) * slots;
      for (int lr = 0; lr < m.block_rows; ++lr) {
        real_t sum = 0.0;
        for (int lc = 0; lc < m.block_cols; ++lc) {
          const index_t c = col0 + lc;
          if (c < m.ncols) {
            sum += data[static_cast<std::size_t>(lr) * m.block_cols + lc] * px[c];
          }
        }
        acc[lr] += sum;
      }
    }
    for (int lr = 0; lr < m.block_rows; ++lr) {
      const index_t r = br * m.block_rows + lr;
      if (r < m.nrows) py[r] = acc[lr];
    }
  }
}

}  // namespace cmesolve::sparse
