#pragma once
//
// BCSR — block compressed sparse row with small dense r x c blocks.
//
// One of the formats in the clSpMV cocktail the paper benchmarks against
// (Sec. VII-C lists BCSR/BELL/SBELL among its candidates). Register
// blocking amortizes the 4-byte column index over r*c values and turns the
// x access into short contiguous runs, at the price of explicit zero fill
// wherever the blocks are not dense. CME matrices have scattered singleton
// off-band entries, so their fill factor is poor — which is exactly why
// the autotuner rarely picks it for this domain.
//
#include <cstddef>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace cmesolve::sparse {

struct Bcsr {
  index_t nrows = 0;  ///< logical (unblocked) dimensions
  index_t ncols = 0;
  int block_rows = 2;  ///< r
  int block_cols = 2;  ///< c
  index_t nblock_rows = 0;
  /// Block row b spans [block_row_ptr[b], block_row_ptr[b+1]) blocks.
  std::vector<index_t> block_row_ptr;
  /// Block column indices, in block units.
  std::vector<index_t> block_col;
  /// Dense r*c storage per block, row-major within the block.
  std::vector<real_t> val;
  /// Nonzeros of the source matrix (excludes the explicit zero fill).
  std::size_t nnz = 0;

  [[nodiscard]] std::size_t num_blocks() const noexcept {
    return block_col.size();
  }

  /// Fill efficiency: source nonzeros / stored slots (1 = perfectly dense
  /// blocks; CME matrices typically land well below 0.5).
  [[nodiscard]] real_t efficiency() const noexcept {
    const std::size_t slots = val.size();
    return slots ? static_cast<real_t>(nnz) / static_cast<real_t>(slots) : 1.0;
  }

  [[nodiscard]] std::size_t bytes() const noexcept {
    return val.size() * sizeof(real_t) +
           (block_col.size() + block_row_ptr.size()) * sizeof(index_t);
  }
};

/// Build BCSR with r x c blocks aligned to the block grid.
[[nodiscard]] Bcsr bcsr_from_csr(const Csr& m, int block_rows = 2,
                                 int block_cols = 2);

/// Recover plain CSR (drops the explicit fill zeros).
[[nodiscard]] Csr csr_from_bcsr(const Bcsr& m);

/// y = m * x.
void spmv(const Bcsr& m, std::span<const real_t> x, std::span<real_t> y);

}  // namespace cmesolve::sparse
