#include "sparse/coo.hpp"

#include <algorithm>
#include <numeric>

namespace cmesolve::sparse {

void Coo::sort_and_combine() {
  const std::size_t n = nnz();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (row[a] != row[b]) return row[a] < row[b];
    return col[a] < col[b];
  });

  std::vector<index_t> new_row;
  std::vector<index_t> new_col;
  std::vector<real_t> new_val;
  new_row.reserve(n);
  new_col.reserve(n);
  new_val.reserve(n);

  for (std::size_t idx : order) {
    if (!new_row.empty() && new_row.back() == row[idx] &&
        new_col.back() == col[idx]) {
      new_val.back() += val[idx];
    } else {
      new_row.push_back(row[idx]);
      new_col.push_back(col[idx]);
      new_val.push_back(val[idx]);
    }
  }

  row = std::move(new_row);
  col = std::move(new_col);
  val = std::move(new_val);
}

bool Coo::is_canonical() const noexcept {
  for (std::size_t i = 1; i < nnz(); ++i) {
    if (row[i - 1] > row[i]) return false;
    if (row[i - 1] == row[i] && col[i - 1] >= col[i]) return false;
  }
  return true;
}

}  // namespace cmesolve::sparse
