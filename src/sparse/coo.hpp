#pragma once
//
// Coordinate (COO) sparse format: the assembly format.
//
// The state-space enumerator emits (row, col, value) triplets in DFS order;
// COO collects them and is then converted to CSR (the canonical interchange
// format of this library) or written to Matrix Market files.
//
#include <cstddef>
#include <vector>

#include "util/types.hpp"

namespace cmesolve::sparse {

struct Coo {
  index_t nrows = 0;
  index_t ncols = 0;
  std::vector<index_t> row;
  std::vector<index_t> col;
  std::vector<real_t> val;

  [[nodiscard]] std::size_t nnz() const noexcept { return val.size(); }

  /// Append one entry. Duplicates are allowed and are summed by
  /// `sort_and_combine` (assembly semantics: two reactions connecting the
  /// same pair of microstates add their rates, Sec. II-A).
  void add(index_t r, index_t c, real_t v) {
    row.push_back(r);
    col.push_back(c);
    val.push_back(v);
  }

  void reserve(std::size_t n) {
    row.reserve(n);
    col.reserve(n);
    val.reserve(n);
  }

  /// Sort entries row-major (row, then col) and sum duplicates in place.
  void sort_and_combine();

  /// True when entries are sorted row-major with no duplicates.
  [[nodiscard]] bool is_canonical() const noexcept;
};

}  // namespace cmesolve::sparse
