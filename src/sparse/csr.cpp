#include "sparse/csr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "util/parallel.hpp"

namespace cmesolve::sparse {

index_t Csr::max_row_length() const noexcept {
  index_t k = 0;
  for (index_t r = 0; r < nrows; ++r) k = std::max(k, row_length(r));
  return k;
}

real_t Csr::at(index_t r, index_t c) const noexcept {
  const auto begin = col_idx.begin() + row_ptr[r];
  const auto end = col_idx.begin() + row_ptr[r + 1];
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return val[static_cast<std::size_t>(it - col_idx.begin())];
}

real_t Csr::inf_norm() const noexcept {
  real_t best = 0.0;
  for (index_t r = 0; r < nrows; ++r) {
    real_t sum = 0.0;
    for (index_t p = row_ptr[r]; p < row_ptr[r + 1]; ++p) {
      sum += std::abs(val[p]);
    }
    best = std::max(best, sum);
  }
  return best;
}

Csr csr_from_coo(Coo coo) {
  coo.sort_and_combine();

  Csr m;
  m.nrows = coo.nrows;
  m.ncols = coo.ncols;
  m.row_ptr.assign(static_cast<std::size_t>(coo.nrows) + 1, 0);
  const std::size_t nnz = coo.nnz();  // hoisted: nnz() re-derives the size
  m.col_idx.resize(nnz);
  m.val.resize(nnz);

  for (std::size_t i = 0; i < nnz; ++i) {
    if (coo.row[i] < 0 || coo.row[i] >= coo.nrows || coo.col[i] < 0 ||
        coo.col[i] >= coo.ncols) {
      throw std::out_of_range("csr_from_coo: entry outside matrix bounds");
    }
    ++m.row_ptr[coo.row[i] + 1];
  }
  for (index_t r = 0; r < m.nrows; ++r) {
    m.row_ptr[r + 1] += m.row_ptr[r];
  }
  // Entries are already sorted row-major, so a single pass fills in order.
  for (std::size_t i = 0; i < nnz; ++i) {
    m.col_idx[i] = coo.col[i];
    m.val[i] = coo.val[i];
  }
#ifndef NDEBUG
  // Single-pass fill invariant: sort_and_combine left each row's columns
  // strictly increasing, so every CSR row must come out sorted and
  // duplicate-free.
  for (index_t r = 0; r < m.nrows; ++r) {
    const index_t pe = m.row_ptr[r + 1];
    for (index_t p = m.row_ptr[r] + 1; p < pe; ++p) {
      assert(m.col_idx[p - 1] < m.col_idx[p]);
    }
  }
#endif
  return m;
}

Coo coo_from_csr(const Csr& m) {
  Coo coo;
  coo.nrows = m.nrows;
  coo.ncols = m.ncols;
  coo.reserve(m.nnz());
  for (index_t r = 0; r < m.nrows; ++r) {
    for (index_t p = m.row_ptr[r]; p < m.row_ptr[r + 1]; ++p) {
      coo.add(r, m.col_idx[p], m.val[p]);
    }
  }
  return coo;
}

Csr transpose(const Csr& m) {
  Csr t;
  t.nrows = m.ncols;
  t.ncols = m.nrows;
  t.row_ptr.assign(static_cast<std::size_t>(m.ncols) + 1, 0);
  const std::size_t nnz = m.nnz();  // hoisted: nnz() re-derives the size
  t.col_idx.resize(nnz);
  t.val.resize(nnz);

  for (std::size_t i = 0; i < nnz; ++i) {
    ++t.row_ptr[m.col_idx[i] + 1];
  }
  for (index_t c = 0; c < t.nrows; ++c) {
    t.row_ptr[c + 1] += t.row_ptr[c];
  }
  std::vector<index_t> cursor(t.row_ptr.begin(), t.row_ptr.end() - 1);
  for (index_t r = 0; r < m.nrows; ++r) {
    const index_t pe = m.row_ptr[r + 1];  // cached: row end is loop-invariant
    for (index_t p = m.row_ptr[r]; p < pe; ++p) {
      const index_t c = m.col_idx[p];
      const index_t slot = cursor[c]++;
      t.col_idx[slot] = r;
      t.val[slot] = m.val[p];
    }
  }
#ifndef NDEBUG
  // Scatter invariant: source rows are visited in increasing order, so each
  // transposed row's columns must come out strictly increasing (sorted,
  // duplicate-free input rows stay that way through the cursor scatter).
  for (index_t r = 0; r < t.nrows; ++r) {
    const index_t pe = t.row_ptr[r + 1];
    for (index_t p = t.row_ptr[r] + 1; p < pe; ++p) {
      assert(t.col_idx[p - 1] < t.col_idx[p]);
    }
  }
#endif
  return t;
}

DiagonalSplit split_diagonal(const Csr& m) {
  DiagonalSplit out;
  out.diag.assign(static_cast<std::size_t>(m.nrows), 0.0);

  Csr& off = out.offdiag;
  off.nrows = m.nrows;
  off.ncols = m.ncols;
  off.row_ptr.assign(static_cast<std::size_t>(m.nrows) + 1, 0);
  off.col_idx.reserve(m.nnz());
  off.val.reserve(m.nnz());

  for (index_t r = 0; r < m.nrows; ++r) {
    for (index_t p = m.row_ptr[r]; p < m.row_ptr[r + 1]; ++p) {
      if (m.col_idx[p] == r) {
        out.diag[r] = m.val[p];
      } else {
        off.col_idx.push_back(m.col_idx[p]);
        off.val.push_back(m.val[p]);
      }
    }
    off.row_ptr[r + 1] = static_cast<index_t>(off.col_idx.size());
  }
  return out;
}

void spmv(const Csr& m, std::span<const real_t> x, std::span<real_t> y) {
  assert(x.size() == static_cast<std::size_t>(m.ncols));
  assert(y.size() == static_cast<std::size_t>(m.nrows));
  // Row-parallel: each y[r] is produced by exactly one thread, so the result
  // is independent of the thread count. index_t is signed (OpenMP 2.x loop
  // var requirement) and the array bases are hoisted so the inner loop
  // vectorizes in the CMESOLVE_OPENMP=OFF build too.
  const index_t* rp = m.row_ptr.data();
  const index_t* ci = m.col_idx.data();
  const real_t* va = m.val.data();
  const real_t* px = x.data();
  real_t* py = y.data();
  const index_t nrows = m.nrows;
  CMESOLVE_OMP_PARALLEL_FOR
  for (index_t r = 0; r < nrows; ++r) {
    real_t sum = 0.0;
    for (index_t p = rp[r]; p < rp[r + 1]; ++p) {
      sum += va[p] * px[ci[p]];
    }
    py[r] = sum;
  }
}

}  // namespace cmesolve::sparse
