#pragma once
//
// Compressed Sparse Row (CSR): the canonical interchange format.
//
// Every specialized GPU format (ELL, DIA, sliced/warped ELL, hybrids) is
// built from a CSR matrix; the CPU baseline solver (the paper's "Intel MKL"
// comparator) runs directly on CSR(+DIA).
//
#include <cstddef>
#include <span>
#include <vector>

#include "sparse/coo.hpp"
#include "util/types.hpp"

namespace cmesolve::sparse {

struct Csr {
  index_t nrows = 0;
  index_t ncols = 0;
  /// Size nrows+1; row r occupies [row_ptr[r], row_ptr[r+1]).
  std::vector<index_t> row_ptr;
  /// Column indices, sorted ascending within each row.
  std::vector<index_t> col_idx;
  std::vector<real_t> val;

  [[nodiscard]] std::size_t nnz() const noexcept { return val.size(); }
  [[nodiscard]] index_t row_length(index_t r) const noexcept {
    return row_ptr[r + 1] - row_ptr[r];
  }
  [[nodiscard]] index_t max_row_length() const noexcept;

  /// Value at (r, c), or 0 when the position is structurally zero.
  [[nodiscard]] real_t at(index_t r, index_t c) const noexcept;

  /// Maximum absolute row sum ||A||_inf (stopping criterion of Sec. IV).
  [[nodiscard]] real_t inf_norm() const noexcept;
};

/// Build CSR from (possibly unsorted, possibly duplicated) COO triplets.
[[nodiscard]] Csr csr_from_coo(Coo coo);

/// Back-conversion, canonical row-major order.
[[nodiscard]] Coo coo_from_csr(const Csr& m);

/// Transpose (used to move between "columns sum to zero" generator layout
/// and row-oriented kernels).
[[nodiscard]] Csr transpose(const Csr& m);

/// Split `m` into its diagonal (as a dense vector, zero where the diagonal
/// entry is structurally absent) and the strictly off-diagonal remainder.
struct DiagonalSplit {
  std::vector<real_t> diag;
  Csr offdiag;
};
[[nodiscard]] DiagonalSplit split_diagonal(const Csr& m);

/// Reference SpMV: y = m * x. Parallelized with OpenMP when enabled.
void spmv(const Csr& m, std::span<const real_t> x, std::span<real_t> y);

}  // namespace cmesolve::sparse
