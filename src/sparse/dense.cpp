#include "sparse/dense.hpp"

#include <cmath>

namespace cmesolve::sparse {

Dense dense_from_csr(const Csr& m) {
  Dense d(m.nrows, m.ncols);
  for (index_t r = 0; r < m.nrows; ++r) {
    for (index_t p = m.row_ptr[r]; p < m.row_ptr[r + 1]; ++p) {
      d(r, m.col_idx[p]) += m.val[p];
    }
  }
  return d;
}

Csr csr_from_dense(const Dense& m, real_t drop_tol) {
  Coo coo;
  coo.nrows = m.nrows();
  coo.ncols = m.ncols();
  for (index_t r = 0; r < m.nrows(); ++r) {
    for (index_t c = 0; c < m.ncols(); ++c) {
      if (std::abs(m(r, c)) > drop_tol) coo.add(r, c, m(r, c));
    }
  }
  return csr_from_coo(std::move(coo));
}

void spmv(const Dense& m, std::span<const real_t> x, std::span<real_t> y) {
  assert(x.size() == static_cast<std::size_t>(m.ncols()));
  assert(y.size() == static_cast<std::size_t>(m.nrows()));
  for (index_t r = 0; r < m.nrows(); ++r) {
    real_t sum = 0.0;
    for (index_t c = 0; c < m.ncols(); ++c) {
      sum += m(r, c) * x[c];
    }
    y[r] = sum;
  }
}

}  // namespace cmesolve::sparse
