#pragma once
//
// Small dense matrix. Test oracle and construction aid only — never used in
// performance paths.
//
#include <cassert>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace cmesolve::sparse {

class Dense {
 public:
  Dense() = default;
  Dense(index_t rows, index_t cols)
      : nrows_(rows), ncols_(cols),
        data_(static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols),
              0.0) {}

  [[nodiscard]] index_t nrows() const noexcept { return nrows_; }
  [[nodiscard]] index_t ncols() const noexcept { return ncols_; }

  [[nodiscard]] real_t& operator()(index_t r, index_t c) noexcept {
    assert(r >= 0 && r < nrows_ && c >= 0 && c < ncols_);
    return data_[static_cast<std::size_t>(r) * ncols_ + c];
  }
  [[nodiscard]] real_t operator()(index_t r, index_t c) const noexcept {
    assert(r >= 0 && r < nrows_ && c >= 0 && c < ncols_);
    return data_[static_cast<std::size_t>(r) * ncols_ + c];
  }

 private:
  index_t nrows_ = 0;
  index_t ncols_ = 0;
  std::vector<real_t> data_;
};

[[nodiscard]] Dense dense_from_csr(const Csr& m);
[[nodiscard]] Csr csr_from_dense(const Dense& m, real_t drop_tol = 0.0);

/// Oracle SpMV.
void spmv(const Dense& m, std::span<const real_t> x, std::span<real_t> y);

}  // namespace cmesolve::sparse
