#include "sparse/dia.hpp"

#include <algorithm>
#include <cassert>

#include "util/parallel.hpp"

namespace cmesolve::sparse {

namespace {

/// Number of in-range slots of a diagonal at `offset` in an n x m matrix.
std::size_t diagonal_slots(index_t nrows, index_t ncols, index_t offset) {
  // Row r is in range when 0 <= r + offset < ncols.
  const index_t lo = std::max<index_t>(0, -offset);
  const index_t hi = std::min<index_t>(nrows, ncols - offset);
  return hi > lo ? static_cast<std::size_t>(hi - lo) : 0;
}

}  // namespace

real_t Dia::density() const noexcept {
  std::size_t slots = 0;
  for (index_t off : offsets) slots += diagonal_slots(nrows, ncols, off);
  return slots ? static_cast<real_t>(nnz) / static_cast<real_t>(slots) : 0.0;
}

Dia dia_from_csr(const Csr& m, std::vector<index_t> offsets) {
  std::sort(offsets.begin(), offsets.end());
  Dia d;
  d.nrows = m.nrows;
  d.ncols = m.ncols;
  d.offsets = std::move(offsets);
  d.data.assign(d.offsets.size() * static_cast<std::size_t>(m.nrows), 0.0);

  for (index_t r = 0; r < m.nrows; ++r) {
    for (index_t p = m.row_ptr[r]; p < m.row_ptr[r + 1]; ++p) {
      const index_t off = m.col_idx[p] - r;
      const auto it = std::lower_bound(d.offsets.begin(), d.offsets.end(), off);
      if (it != d.offsets.end() && *it == off) {
        const std::size_t di = static_cast<std::size_t>(it - d.offsets.begin());
        d.data[di * m.nrows + static_cast<std::size_t>(r)] = m.val[p];
        ++d.nnz;
      }
    }
  }
  return d;
}

Csr strip_diagonals(const Csr& m, std::span<const index_t> offsets) {
  std::vector<index_t> sorted(offsets.begin(), offsets.end());
  std::sort(sorted.begin(), sorted.end());

  Csr out;
  out.nrows = m.nrows;
  out.ncols = m.ncols;
  out.row_ptr.assign(static_cast<std::size_t>(m.nrows) + 1, 0);
  out.col_idx.reserve(m.nnz());
  out.val.reserve(m.nnz());

  for (index_t r = 0; r < m.nrows; ++r) {
    for (index_t p = m.row_ptr[r]; p < m.row_ptr[r + 1]; ++p) {
      const index_t off = m.col_idx[p] - r;
      if (!std::binary_search(sorted.begin(), sorted.end(), off)) {
        out.col_idx.push_back(m.col_idx[p]);
        out.val.push_back(m.val[p]);
      }
    }
    out.row_ptr[r + 1] = static_cast<index_t>(out.col_idx.size());
  }
  return out;
}

std::vector<real_t> diagonal_density(const Csr& m,
                                     std::span<const index_t> offsets) {
  std::vector<real_t> density;
  density.reserve(offsets.size());
  for (index_t off : offsets) {
    std::size_t filled = 0;
    for (index_t r = 0; r < m.nrows; ++r) {
      const index_t c = r + off;
      if (c >= 0 && c < m.ncols && m.at(r, c) != 0.0) ++filled;
    }
    const std::size_t slots = diagonal_slots(m.nrows, m.ncols, off);
    density.push_back(slots ? static_cast<real_t>(filled) /
                                  static_cast<real_t>(slots)
                            : 0.0);
  }
  return density;
}

void spmv(const Dia& m, std::span<const real_t> x, std::span<real_t> y) {
  std::fill(y.begin(), y.end(), 0.0);
  spmv_add(m, x, y);
}

void spmv_add(const Dia& m, std::span<const real_t> x, std::span<real_t> y) {
  assert(x.size() == static_cast<std::size_t>(m.ncols));
  assert(y.size() == static_cast<std::size_t>(m.nrows));
  // Per-diagonal row loop: one thread per y[r] within a diagonal, diagonals
  // processed in order — thread-count independent.
  const real_t* px = x.data();
  real_t* py = y.data();
  for (std::size_t di = 0; di < m.offsets.size(); ++di) {
    const index_t off = m.offsets[di];
    const real_t* band = m.data.data() + di * static_cast<std::size_t>(m.nrows);
    const index_t lo = std::max<index_t>(0, -off);
    const index_t hi = std::min<index_t>(m.nrows, m.ncols - off);
    CMESOLVE_OMP_PARALLEL_FOR
    for (index_t r = lo; r < hi; ++r) {
      py[r] += band[r] * px[r + off];
    }
  }
}

}  // namespace cmesolve::sparse
