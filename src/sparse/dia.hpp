#pragma once
//
// DIA (diagonal) format for the dense band exposed by DFS state ordering.
//
// Reversible reactions between adjacently-enumerated microstates populate
// the {-1, 0, +1} band of the reaction-rate matrix (Sec. V, Fig. 3). DIA
// stores each selected diagonal as a dense length-n vector: no column
// indices at all, saving 4 bytes per nonzero, and x accesses become
// contiguous.
//
#include <cstddef>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace cmesolve::sparse {

struct Dia {
  index_t nrows = 0;
  index_t ncols = 0;
  /// Offsets from the main diagonal, sorted ascending (e.g. {-1, 0, +1}).
  std::vector<index_t> offsets;
  /// data[d * nrows + r] = A(r, r + offsets[d]); 0 where out of range or
  /// structurally zero.
  std::vector<real_t> data;
  /// Count of genuine nonzeros captured into the band.
  std::size_t nnz = 0;

  /// Band storage density: nnz / in-range slots. The ELL+DIA split pays off
  /// above ~0.66 (8-byte DIA slot vs 12-byte ELL slot, Sec. V).
  [[nodiscard]] real_t density() const noexcept;

  [[nodiscard]] std::size_t bytes() const noexcept {
    return data.size() * sizeof(real_t) + offsets.size() * sizeof(index_t);
  }
};

/// Extract exactly the given diagonals of `m` (other entries are ignored —
/// pair with `strip_diagonals` to build hybrid formats).
[[nodiscard]] Dia dia_from_csr(const Csr& m, std::vector<index_t> offsets);

/// The remainder of `m` after removing entries on the given diagonals.
[[nodiscard]] Csr strip_diagonals(const Csr& m, std::span<const index_t> offsets);

/// Per-diagonal nonzero density of `m` for each requested offset.
[[nodiscard]] std::vector<real_t> diagonal_density(const Csr& m,
                                                   std::span<const index_t> offsets);

/// y = m * x (overwrite).
void spmv(const Dia& m, std::span<const real_t> x, std::span<real_t> y);
/// y += m * x (accumulate; used by the ELL+DIA hybrid kernels).
void spmv_add(const Dia& m, std::span<const real_t> x, std::span<real_t> y);

}  // namespace cmesolve::sparse
