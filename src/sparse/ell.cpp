#include "sparse/ell.hpp"

#include <cassert>

#include "util/parallel.hpp"

namespace cmesolve::sparse {

Ell ell_from_csr(const Csr& m, index_t warp) {
  assert(warp > 0);
  Ell e;
  e.nrows = m.nrows;
  e.ncols = m.ncols;
  e.padded_rows = ((m.nrows + warp - 1) / warp) * warp;
  e.k = m.max_row_length();
  e.nnz = m.nnz();

  const std::size_t slots =
      static_cast<std::size_t>(e.padded_rows) * static_cast<std::size_t>(e.k);
  e.val.assign(slots, 0.0);
  e.col.assign(slots, kPadColumn);

  for (index_t r = 0; r < m.nrows; ++r) {
    index_t j = 0;
    for (index_t p = m.row_ptr[r]; p < m.row_ptr[r + 1]; ++p, ++j) {
      const std::size_t slot =
          static_cast<std::size_t>(j) * e.padded_rows + static_cast<std::size_t>(r);
      e.val[slot] = m.val[p];
      e.col[slot] = m.col_idx[p];
    }
  }
  return e;
}

void spmv(const Ell& m, std::span<const real_t> x, std::span<real_t> y) {
  assert(x.size() == static_cast<std::size_t>(m.ncols));
  assert(y.size() == static_cast<std::size_t>(m.nrows));
  // Row-parallel and thread-count independent (one thread per y[r]).
  const real_t* va = m.val.data();
  const index_t* co = m.col.data();
  const real_t* px = x.data();
  real_t* py = y.data();
  const index_t nrows = m.nrows;
  const index_t k = m.k;
  const std::size_t stride = static_cast<std::size_t>(m.padded_rows);
  CMESOLVE_OMP_PARALLEL_FOR
  for (index_t r = 0; r < nrows; ++r) {
    real_t sum = 0.0;
    for (index_t j = 0; j < k; ++j) {
      const std::size_t slot = static_cast<std::size_t>(j) * stride +
                               static_cast<std::size_t>(r);
      const index_t c = co[slot];
      if (c > kPadColumn) {  // padding-skip conditional (Listing 1)
        sum += va[slot] * px[c];
      }
    }
    py[r] = sum;
  }
}

}  // namespace cmesolve::sparse
