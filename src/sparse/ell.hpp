#pragma once
//
// ELLPACK (ELL) format, GPU layout (Sec. V of the paper).
//
// A sparse n x m matrix with at most k nonzeros per row is stored as two
// dense n' x k arrays (values + column indices) in column-major order so
// that 32 consecutive rows — one warp — read consecutive addresses.
// n' pads the row count to a multiple of the warp size for 128-byte
// alignment. Rows shorter than k are padded with `kPadColumn` slots; the
// kernel skips the x-gather for those (Listing 1 of the paper).
//
#include <cstddef>
#include <span>

#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace cmesolve::sparse {

struct Ell {
  index_t nrows = 0;   ///< logical rows
  index_t ncols = 0;
  index_t padded_rows = 0;  ///< n' = ceil(nrows / warp) * warp
  index_t k = 0;            ///< max nonzeros per row
  std::size_t nnz = 0;      ///< real nonzeros (excluding padding)
  /// Column-major value array of size padded_rows * k:
  /// element (r, j) lives at val[j * padded_rows + r].
  std::vector<real_t> val;
  /// Matching column-index array; kPadColumn marks padding slots.
  std::vector<index_t> col;

  /// Data-structure efficiency e = nnz / (n' * k), Sec. V.
  [[nodiscard]] real_t efficiency() const noexcept {
    const auto slots = static_cast<real_t>(padded_rows) * static_cast<real_t>(k);
    return slots > 0 ? static_cast<real_t>(nnz) / slots : 1.0;
  }

  /// Device-memory footprint: 8-byte value + 4-byte column per slot.
  [[nodiscard]] std::size_t bytes() const noexcept {
    return val.size() * sizeof(real_t) + col.size() * sizeof(index_t);
  }
};

/// Build ELL from CSR. `warp` controls the row padding granularity.
[[nodiscard]] Ell ell_from_csr(const Csr& m, index_t warp = 32);

/// y = m * x (CPU reference, OpenMP across rows).
void spmv(const Ell& m, std::span<const real_t> x, std::span<real_t> y);

}  // namespace cmesolve::sparse
