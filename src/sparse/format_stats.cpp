#include "sparse/format_stats.hpp"

#include <algorithm>
#include <array>

#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/sliced_ell.hpp"
#include "util/stats.hpp"

namespace cmesolve::sparse {

namespace {

std::size_t digits(index_t v) {
  std::size_t d = 1;
  while (v >= 10) {
    v /= 10;
    ++d;
  }
  return d;
}

}  // namespace

MatrixFingerprint fingerprint(const Csr& m) {
  MatrixFingerprint f;
  f.n = m.nrows;
  f.nnz = m.nnz();
  f.disk_mb = static_cast<real_t>(matrix_market_size_bytes(m)) / (1024.0 * 1024.0);

  RunningStats rows;
  for (index_t r = 0; r < m.nrows; ++r) {
    rows.add(static_cast<real_t>(m.row_length(r)));
  }
  f.row_min = static_cast<index_t>(rows.min());
  f.row_mean = rows.mean();
  f.row_max = static_cast<index_t>(rows.max());
  f.row_sigma = rows.stddev();
  f.variability = rows.variability();
  f.skew = rows.skew();

  const std::array<index_t, 3> band{-1, 0, 1};
  const auto density = diagonal_density(m, band);
  f.d0 = density[1];
  // Combined band density, weighted by in-range slots per offset.
  real_t nz = 0.0;
  real_t slots = 0.0;
  for (std::size_t i = 0; i < band.size(); ++i) {
    const index_t off = band[i];
    const index_t lo = std::max<index_t>(0, -off);
    const index_t hi = std::min<index_t>(m.nrows, m.ncols - off);
    const real_t s = hi > lo ? static_cast<real_t>(hi - lo) : 0.0;
    nz += density[i] * s;
    slots += s;
  }
  f.dband = slots > 0 ? nz / slots : 0.0;
  return f;
}

FormatFootprint footprints(const Csr& m) {
  FormatFootprint fp;
  fp.csr = (m.row_ptr.size() + m.col_idx.size()) * sizeof(index_t) +
           m.val.size() * sizeof(real_t);
  fp.coo = m.nnz() * (2 * sizeof(index_t) + sizeof(real_t));
  fp.ell = ell_from_csr(m).bytes();
  fp.sliced_ell = sliced_ell_from_csr(m, /*slice_size=*/256).bytes();
  fp.warped_ell = warped_ell_from_csr(m).bytes();
  return fp;
}

std::size_t matrix_market_size_bytes(const Csr& m) {
  // Header: banner + dimension line.
  std::size_t bytes = std::string("%%MatrixMarket matrix coordinate real general\n").size();
  bytes += digits(m.nrows) + 1 + digits(m.ncols) + 1 +
           std::to_string(m.nnz()).size() + 1;
  // One "row col value\n" line per entry: the value width is whatever the
  // writer's shortest round-trip rendering produces; indices are 1-based.
  char buf[40];
  for (index_t r = 0; r < m.nrows; ++r) {
    const std::size_t row_digits = digits(r + 1);
    for (index_t p = m.row_ptr[r]; p < m.row_ptr[r + 1]; ++p) {
      bytes += row_digits + 1 + digits(m.col_idx[p] + 1) + 1 +
               format_matrix_market_value(m.val[p], buf, sizeof(buf)) + 1;
    }
  }
  return bytes;
}

}  // namespace cmesolve::sparse
