#pragma once
//
// Structural fingerprints (Table I) and memory footprints (Sec. VII-C) of a
// sparse matrix under every implemented format.
//
#include <cstddef>
#include <string>

#include "sparse/csr.hpp"
#include "util/types.hpp"

namespace cmesolve::sparse {

/// The per-matrix columns of Table I.
struct MatrixFingerprint {
  index_t n = 0;            ///< microstates / rows
  std::size_t nnz = 0;
  real_t disk_mb = 0.0;     ///< Matrix Market coordinate file size estimate
  index_t row_min = 0;      ///< min nonzeros per row
  real_t row_mean = 0.0;    ///< mu
  index_t row_max = 0;      ///< max
  real_t row_sigma = 0.0;   ///< population stddev
  real_t variability = 0.0; ///< sigma / mu
  real_t skew = 0.0;        ///< (max - mu) / mu
  real_t d0 = 0.0;          ///< main-diagonal density
  real_t dband = 0.0;       ///< {-1, 0, +1} band density
};

[[nodiscard]] MatrixFingerprint fingerprint(const Csr& m);

/// Device-memory footprints in bytes for the formats compared in Sec. VII-C.
struct FormatFootprint {
  std::size_t csr = 0;
  std::size_t ell = 0;
  std::size_t sliced_ell = 0;  ///< original formulation, slice = block = 256
  std::size_t warped_ell = 0;  ///< warp-grained + local rearrangement
  std::size_t coo = 0;
};

[[nodiscard]] FormatFootprint footprints(const Csr& m);

/// Bytes of the Matrix Market coordinate text file without materializing it
/// (row col %.6e per line).
[[nodiscard]] std::size_t matrix_market_size_bytes(const Csr& m);

}  // namespace cmesolve::sparse
