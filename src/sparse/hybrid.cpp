#include "sparse/hybrid.hpp"

#include <algorithm>
#include <cassert>

namespace cmesolve::sparse {

std::vector<index_t> select_band_offsets(const Csr& m, real_t threshold) {
  const std::vector<index_t> band{-1, 0, 1};
  const std::vector<real_t> density = diagonal_density(m, band);

  // Count nonzeros and slots of the full band vs the main diagonal alone.
  // (diagonal_density returns per-offset densities; combine them weighted by
  // slot counts.)
  const auto slots = [&](index_t off) -> real_t {
    const index_t lo = std::max<index_t>(0, -off);
    const index_t hi = std::min<index_t>(m.nrows, m.ncols - off);
    return hi > lo ? static_cast<real_t>(hi - lo) : 0.0;
  };
  real_t band_nnz = 0.0;
  real_t band_slots = 0.0;
  for (std::size_t i = 0; i < band.size(); ++i) {
    band_nnz += density[i] * slots(band[i]);
    band_slots += slots(band[i]);
  }
  const real_t band_density = band_slots > 0 ? band_nnz / band_slots : 0.0;

  if (band_density >= threshold) return {-1, 0, 1};
  return {0};
}

EllDia ell_dia_from_csr(const Csr& m, std::vector<index_t> band_offsets,
                        real_t spill_quantile) {
  EllDia h;
  h.band = dia_from_csr(m, band_offsets);
  const Csr off_band = strip_diagonals(m, h.band.offsets);

  // Cap the ELL k at the requested row-length quantile.
  std::vector<index_t> lengths(static_cast<std::size_t>(off_band.nrows));
  for (index_t r = 0; r < off_band.nrows; ++r) {
    lengths[r] = off_band.row_length(r);
  }
  std::vector<index_t> sorted = lengths;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t q_idx = std::min(
      sorted.size() - 1,
      static_cast<std::size_t>(spill_quantile *
                               static_cast<real_t>(sorted.size() - 1)));
  const index_t k_cap = sorted.empty() ? 0 : sorted[q_idx];

  // Split each row at k_cap: head stays in ELL, tail spills to COO.
  Coo head;
  head.nrows = off_band.nrows;
  head.ncols = off_band.ncols;
  h.spill.nrows = off_band.nrows;
  h.spill.ncols = off_band.ncols;
  for (index_t r = 0; r < off_band.nrows; ++r) {
    index_t j = 0;
    for (index_t p = off_band.row_ptr[r]; p < off_band.row_ptr[r + 1];
         ++p, ++j) {
      if (j < k_cap) {
        head.add(r, off_band.col_idx[p], off_band.val[p]);
      } else {
        h.spill.add(r, off_band.col_idx[p], off_band.val[p]);
      }
    }
  }
  h.rest = ell_from_csr(csr_from_coo(std::move(head)));
  return h;
}

SlicedEllDia sliced_ell_dia_from_csr(const Csr& m,
                                     std::vector<index_t> band_offsets,
                                     index_t slice_size, Reordering reorder,
                                     index_t window) {
  SlicedEllDia h;
  h.band = dia_from_csr(m, band_offsets);
  h.rest = sliced_ell_from_csr(strip_diagonals(m, h.band.offsets), slice_size,
                               reorder, window);
  return h;
}

CsrDia csr_dia_from_csr(const Csr& m, std::vector<index_t> band_offsets) {
  CsrDia h;
  h.band = dia_from_csr(m, band_offsets);
  h.rest = strip_diagonals(m, h.band.offsets);
  return h;
}

void spmv(const EllDia& m, std::span<const real_t> x, std::span<real_t> y) {
  spmv(m.rest, x, y);
  spmv_add(m.band, x, y);
  for (std::size_t i = 0; i < m.spill.nnz(); ++i) {
    y[m.spill.row[i]] += m.spill.val[i] * x[m.spill.col[i]];
  }
}

void spmv(const SlicedEllDia& m, std::span<const real_t> x,
          std::span<real_t> y) {
  spmv(m.rest, x, y);
  spmv_add(m.band, x, y);
}

void spmv(const CsrDia& m, std::span<const real_t> x, std::span<real_t> y) {
  spmv(m.rest, x, y);
  spmv_add(m.band, x, y);
}

}  // namespace cmesolve::sparse
