#pragma once
//
// Hybrid band + remainder formats (Sec. V, Fig. 3 and Sec. VI last
// paragraph).
//
// The dense {-1, 0, +1} band that DFS ordering exposes is stored in DIA
// (8 bytes/nonzero, contiguous x access); whatever falls outside the band
// goes to an ELL-family remainder. The main diagonal always rides in the
// DIA part, which is exactly what the Jacobi iteration wants: a_ii is a
// dense vector instead of an arbitrary ELL slot.
//
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "sparse/sliced_ell.hpp"
#include "util/types.hpp"

namespace cmesolve::sparse {

/// ELL + DIA hybrid (Fig. 3(b)/(c)).
///
/// A handful of rows at DFS chain boundaries carry one more off-band entry
/// than the rest; storing them in the ELL part would inflate its k (and the
/// value stream) for every row. Following the standard HYB construction
/// (Bell & Garland), the ELL k is capped at a row-length quantile and the
/// outlier entries spill into a small row-sorted COO tail.
struct EllDia {
  Dia band;   ///< selected dense diagonals, always including offset 0
  Ell rest;   ///< everything else up to the quantile-capped k
  Coo spill;  ///< outlier entries beyond rest.k (row-major sorted)

  [[nodiscard]] std::size_t bytes() const noexcept {
    return band.bytes() + rest.bytes() +
           spill.nnz() * (2 * sizeof(index_t) + sizeof(real_t));
  }
};

/// Warp-grained sliced ELL + DIA hybrid — the Jacobi format of Table IV
/// ("Warp ELL+DIA").
struct SlicedEllDia {
  Dia band;
  SlicedEll rest;

  [[nodiscard]] std::size_t bytes() const noexcept {
    return band.bytes() + rest.bytes();
  }
};

/// CSR + DIA hybrid: the multicore baseline of Table IV ("in practice
/// CSR+DIA" derived from Intel MKL).
struct CsrDia {
  Dia band;
  Csr rest;

  [[nodiscard]] std::size_t bytes() const noexcept {
    return band.bytes() + rest.row_ptr.size() * sizeof(index_t) +
           rest.col_idx.size() * sizeof(index_t) +
           rest.val.size() * sizeof(real_t);
  }
};

/// Decide which of {-1, 0, +1} are dense enough to store in DIA. Offset 0 is
/// always included (the CME diagonal is fully dense by construction); the
/// neighbours join if the band density including them clears `threshold`
/// (0.66 per Sec. V).
[[nodiscard]] std::vector<index_t> select_band_offsets(const Csr& m,
                                                       real_t threshold = 0.66);

/// @param spill_quantile  fraction of rows whose off-band length the ELL
///        part must cover exactly; entries of longer rows spill to COO.
[[nodiscard]] EllDia ell_dia_from_csr(const Csr& m,
                                      std::vector<index_t> band_offsets,
                                      real_t spill_quantile = 0.99);
[[nodiscard]] SlicedEllDia sliced_ell_dia_from_csr(
    const Csr& m, std::vector<index_t> band_offsets, index_t slice_size = 32,
    Reordering reorder = Reordering::kLocal, index_t window = 256);
[[nodiscard]] CsrDia csr_dia_from_csr(const Csr& m,
                                      std::vector<index_t> band_offsets);

void spmv(const EllDia& m, std::span<const real_t> x, std::span<real_t> y);
void spmv(const SlicedEllDia& m, std::span<const real_t> x, std::span<real_t> y);
void spmv(const CsrDia& m, std::span<const real_t> x, std::span<real_t> y);

}  // namespace cmesolve::sparse
