#include "sparse/matrix_market.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace cmesolve::sparse {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

/// Strip a trailing '\r' so CRLF (Windows) files parse exactly like LF
/// files — tokens like "general\r" otherwise fail the symmetry check and a
/// lone "\r" line is not "empty".
void strip_cr(std::string& line) {
  if (!line.empty() && line.back() == '\r') line.pop_back();
}

/// True for lines carrying no entry data: empty/whitespace-only or '%'
/// comments. The format allows them anywhere between header and entries.
bool is_blank_or_comment(const std::string& line) {
  for (char c : line) {
    if (c == '%') return true;
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

/// Next content line (CR-stripped, comments/blanks skipped); false at EOF.
bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    strip_cr(line);
    if (!is_blank_or_comment(line)) return true;
  }
  return false;
}

}  // namespace

Csr read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("matrix market: empty stream");
  }
  strip_cr(line);

  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (tag != "%%MatrixMarket" || lower(object) != "matrix") {
    throw std::runtime_error("matrix market: bad banner: " + line);
  }
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  if (format != "coordinate") {
    throw std::runtime_error("matrix market: only coordinate format supported");
  }
  if (field != "real" && field != "integer" && field != "pattern") {
    throw std::runtime_error("matrix market: unsupported field: " + field);
  }
  if (symmetry != "general" && symmetry != "symmetric") {
    throw std::runtime_error("matrix market: unsupported symmetry: " + symmetry);
  }

  if (!next_content_line(in, line)) {
    throw std::runtime_error("matrix market: missing size line");
  }
  std::istringstream size_line(line);
  long long rows = 0;
  long long cols = 0;
  long long entries = 0;
  if (!(size_line >> rows >> cols >> entries) || rows <= 0 || cols <= 0 ||
      entries < 0) {
    throw std::runtime_error("matrix market: bad size line: " + line);
  }
  // The declared dims must round-trip through index_t: a silent narrowing
  // cast would wrap the row count and corrupt CSR assembly downstream.
  constexpr long long kMaxIndex = std::numeric_limits<index_t>::max();
  if (rows > kMaxIndex || cols > kMaxIndex) {
    throw std::runtime_error("matrix market: dimensions exceed index range: " +
                             line);
  }

  Coo coo;
  coo.nrows = static_cast<index_t>(rows);
  coo.ncols = static_cast<index_t>(cols);
  coo.reserve(static_cast<std::size_t>(entries));

  const bool pattern = field == "pattern";
  const bool symmetric = symmetry == "symmetric";
  for (long long i = 0; i < entries; ++i) {
    if (!next_content_line(in, line)) {
      throw std::runtime_error("matrix market: truncated entry list");
    }
    std::istringstream entry(line);
    long long r = 0;
    long long c = 0;
    real_t v = 1.0;
    if (!(entry >> r >> c) || (!pattern && !(entry >> v))) {
      throw std::runtime_error("matrix market: bad entry: " + line);
    }
    // Validate the 1-based indices against the declared dims before any
    // index arithmetic: out-of-range entries would index outside the CSR
    // row-pointer array during assembly.
    if (r < 1 || r > rows || c < 1 || c > cols) {
      throw std::runtime_error("matrix market: entry out of bounds: " + line);
    }
    coo.add(static_cast<index_t>(r - 1), static_cast<index_t>(c - 1), v);
    // Mirror strictly off-diagonal entries only: duplicating the diagonal
    // of a symmetric file would double it after COO duplicate-summing.
    if (symmetric && r != c) {
      coo.add(static_cast<index_t>(c - 1), static_cast<index_t>(r - 1), v);
    }
  }
  return csr_from_coo(std::move(coo));
}

Csr read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("matrix market: cannot open " + path);
  }
  return read_matrix_market(in);
}

std::size_t format_matrix_market_value(real_t v, char* buf, std::size_t size) {
  // Shortest round-trip form: every written value reads back bit-identical
  // (operator>> parses the full shortest representation exactly), which is
  // what makes the write -> read -> write cycle byte-stable.
  const auto res = std::to_chars(buf, buf + size, v);
  if (res.ec != std::errc{}) {
    // Unreachable for finite doubles with a sane buffer; keep a defined
    // fallback anyway.
    const int n = std::snprintf(buf, size, "%.17g", v);
    return n > 0 ? static_cast<std::size_t>(n) : 0;
  }
  return static_cast<std::size_t>(res.ptr - buf);
}

void write_matrix_market(std::ostream& out, const Csr& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.nrows << ' ' << m.ncols << ' ' << m.nnz() << '\n';
  char buf[80];
  char num[40];
  for (index_t r = 0; r < m.nrows; ++r) {
    for (index_t p = m.row_ptr[r]; p < m.row_ptr[r + 1]; ++p) {
      const std::size_t len =
          format_matrix_market_value(m.val[p], num, sizeof(num));
      num[len] = '\0';
      std::snprintf(buf, sizeof(buf), "%d %d %s\n", r + 1, m.col_idx[p] + 1,
                    num);
      out << buf;
    }
  }
}

void write_matrix_market_file(const std::string& path, const Csr& m) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("matrix market: cannot open " + path);
  }
  write_matrix_market(out, m);
}

}  // namespace cmesolve::sparse
