#include "sparse/matrix_market.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cmesolve::sparse {

namespace {

std::string lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

}  // namespace

Csr read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) {
    throw std::runtime_error("matrix market: empty stream");
  }

  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (tag != "%%MatrixMarket" || lower(object) != "matrix") {
    throw std::runtime_error("matrix market: bad banner: " + line);
  }
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  if (format != "coordinate") {
    throw std::runtime_error("matrix market: only coordinate format supported");
  }
  if (field != "real" && field != "integer" && field != "pattern") {
    throw std::runtime_error("matrix market: unsupported field: " + field);
  }
  if (symmetry != "general" && symmetry != "symmetric") {
    throw std::runtime_error("matrix market: unsupported symmetry: " + symmetry);
  }

  // Skip comments, read the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream size_line(line);
  long long rows = 0;
  long long cols = 0;
  long long entries = 0;
  if (!(size_line >> rows >> cols >> entries) || rows <= 0 || cols <= 0 ||
      entries < 0) {
    throw std::runtime_error("matrix market: bad size line: " + line);
  }

  Coo coo;
  coo.nrows = static_cast<index_t>(rows);
  coo.ncols = static_cast<index_t>(cols);
  coo.reserve(static_cast<std::size_t>(entries));

  const bool pattern = field == "pattern";
  const bool symmetric = symmetry == "symmetric";
  for (long long i = 0; i < entries; ++i) {
    long long r = 0;
    long long c = 0;
    real_t v = 1.0;
    if (!(in >> r >> c)) {
      throw std::runtime_error("matrix market: truncated entry list");
    }
    if (!pattern && !(in >> v)) {
      throw std::runtime_error("matrix market: truncated entry list");
    }
    if (r < 1 || r > rows || c < 1 || c > cols) {
      throw std::runtime_error("matrix market: entry out of bounds");
    }
    coo.add(static_cast<index_t>(r - 1), static_cast<index_t>(c - 1), v);
    if (symmetric && r != c) {
      coo.add(static_cast<index_t>(c - 1), static_cast<index_t>(r - 1), v);
    }
  }
  return csr_from_coo(std::move(coo));
}

Csr read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("matrix market: cannot open " + path);
  }
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, const Csr& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.nrows << ' ' << m.ncols << ' ' << m.nnz() << '\n';
  char buf[64];
  for (index_t r = 0; r < m.nrows; ++r) {
    for (index_t p = m.row_ptr[r]; p < m.row_ptr[r + 1]; ++p) {
      std::snprintf(buf, sizeof(buf), "%d %d %.6e\n", r + 1, m.col_idx[p] + 1,
                    m.val[p]);
      out << buf;
    }
  }
}

void write_matrix_market_file(const std::string& path, const Csr& m) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("matrix market: cannot open " + path);
  }
  write_matrix_market(out, m);
}

}  // namespace cmesolve::sparse
