#pragma once
//
// Matrix Market coordinate I/O (the disk format of Table I and the entry
// point for running the solver on external Markov models).
//
// Supports `matrix coordinate real/integer/pattern general/symmetric`.
//
#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace cmesolve::sparse {

/// Parse a Matrix Market stream. Throws std::runtime_error on malformed
/// input. Symmetric matrices are expanded to general storage.
[[nodiscard]] Csr read_matrix_market(std::istream& in);
[[nodiscard]] Csr read_matrix_market_file(const std::string& path);

/// Write `coordinate real general` with 1-based indices and %.6e values.
void write_matrix_market(std::ostream& out, const Csr& m);
void write_matrix_market_file(const std::string& path, const Csr& m);

}  // namespace cmesolve::sparse
