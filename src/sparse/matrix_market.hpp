#pragma once
//
// Matrix Market coordinate I/O (the disk format of Table I and the entry
// point for running the solver on external Markov models).
//
// Supports `matrix coordinate real/integer/pattern general/symmetric`.
//
#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace cmesolve::sparse {

/// Parse a Matrix Market stream. Throws std::runtime_error on malformed
/// input. Symmetric matrices are expanded to general storage.
[[nodiscard]] Csr read_matrix_market(std::istream& in);
[[nodiscard]] Csr read_matrix_market_file(const std::string& path);

/// Write `coordinate real general` with 1-based indices. Values are printed
/// in their shortest decimal form that parses back to the identical double
/// (std::to_chars), so write -> read -> write is byte-stable and value-exact.
void write_matrix_market(std::ostream& out, const Csr& m);
void write_matrix_market_file(const std::string& path, const Csr& m);

/// Render one value exactly as write_matrix_market does; returns the number
/// of characters written into `buf`. Exposed so the disk-size model in
/// format_stats stays byte-exact against the writer.
std::size_t format_matrix_market_value(real_t v, char* buf, std::size_t size);

}  // namespace cmesolve::sparse
