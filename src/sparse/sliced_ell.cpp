#include "sparse/sliced_ell.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "util/parallel.hpp"

namespace cmesolve::sparse {

bool SlicedEll::is_identity_perm() const noexcept {
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != static_cast<index_t>(i)) return false;
  }
  return true;
}

namespace {

/// Produce the stored-row -> original-row permutation for a strategy.
std::vector<index_t> make_permutation(const Csr& m, Reordering reorder,
                                      index_t window, std::uint64_t seed) {
  std::vector<index_t> perm(static_cast<std::size_t>(m.nrows));
  std::iota(perm.begin(), perm.end(), index_t{0});

  const auto by_length_desc = [&m](index_t a, index_t b) {
    const index_t la = m.row_length(a);
    const index_t lb = m.row_length(b);
    if (la != lb) return la > lb;
    return a < b;  // stable tie-break keeps neighbours together
  };

  switch (reorder) {
    case Reordering::kNone:
      break;
    case Reordering::kLocal: {
      // Sort only within block-sized windows: per-warp k shrinks while rows
      // stay within `window` positions of their DFS neighbours (Sec. VI).
      // A window keeps its original order when sorting would not reduce the
      // padded slot count — regular regions pay no permutation overhead.
      assert(window > 0);
      std::vector<index_t> sorted_window;
      const index_t warp = 32;
      const auto padded_slots = [&](auto first, auto last) {
        std::size_t slots = 0;
        for (auto it = first; it < last; it += warp) {
          const auto sub_end = std::min(it + warp, last);
          index_t k = 0;
          for (auto jt = it; jt < sub_end; ++jt) {
            k = std::max(k, m.row_length(*jt));
          }
          slots += static_cast<std::size_t>(k) *
                   static_cast<std::size_t>(sub_end - it);
        }
        return slots;
      };
      for (index_t start = 0; start < m.nrows; start += window) {
        const index_t end = std::min<index_t>(start + window, m.nrows);
        sorted_window.assign(perm.begin() + start, perm.begin() + end);
        std::sort(sorted_window.begin(), sorted_window.end(), by_length_desc);
        // Adopt the sorted order only when the padding saved (12 bytes per
        // slot) clearly outweighs the permutation overhead the format then
        // carries (4-byte row index per row, plus scattered y stores).
        const std::size_t before =
            padded_slots(perm.begin() + start, perm.begin() + end);
        const std::size_t after =
            padded_slots(sorted_window.begin(), sorted_window.end());
        const std::size_t overhead_equiv =
            2 * static_cast<std::size_t>(end - start);  // ~2 slots per row
        if (after + overhead_equiv < before) {
          std::copy(sorted_window.begin(), sorted_window.end(),
                    perm.begin() + start);
        }
      }
      break;
    }
    case Reordering::kGlobal:
      std::sort(perm.begin(), perm.end(), by_length_desc);
      break;
    case Reordering::kRandom: {
      Xoshiro256 rng(seed);
      for (std::size_t i = perm.size(); i > 1; --i) {
        std::swap(perm[i - 1], perm[rng.bounded(i)]);
      }
      break;
    }
  }
  return perm;
}

}  // namespace

SlicedEll sliced_ell_from_csr(const Csr& m, index_t slice_size,
                              Reordering reorder, index_t window,
                              std::uint64_t seed) {
  assert(slice_size > 0);
  SlicedEll s;
  s.nrows = m.nrows;
  s.ncols = m.ncols;
  s.slice_size = slice_size;
  s.nnz = m.nnz();
  s.perm = make_permutation(m, reorder, window, seed);

  const index_t num_slices = (m.nrows + slice_size - 1) / slice_size;
  s.slice_k.resize(static_cast<std::size_t>(num_slices));
  s.slice_ptr.resize(static_cast<std::size_t>(num_slices) + 1);

  // First pass: local k per slice and storage offsets.
  std::size_t offset = 0;
  for (index_t sl = 0; sl < num_slices; ++sl) {
    index_t k = 0;
    for (index_t lane = 0; lane < slice_size; ++lane) {
      const index_t stored = sl * slice_size + lane;
      if (stored >= m.nrows) break;
      k = std::max(k, m.row_length(s.perm[stored]));
    }
    s.slice_k[sl] = k;
    s.slice_ptr[sl] = offset;
    offset += static_cast<std::size_t>(k) * static_cast<std::size_t>(slice_size);
  }
  s.slice_ptr[num_slices] = offset;

  s.val.assign(offset, 0.0);
  s.col.assign(offset, kPadColumn);

  // Second pass: fill per-slice column-major.
  for (index_t sl = 0; sl < num_slices; ++sl) {
    const std::size_t base = s.slice_ptr[sl];
    for (index_t lane = 0; lane < slice_size; ++lane) {
      const index_t stored = sl * slice_size + lane;
      if (stored >= m.nrows) break;
      const index_t r = s.perm[stored];
      index_t j = 0;
      for (index_t p = m.row_ptr[r]; p < m.row_ptr[r + 1]; ++p, ++j) {
        const std::size_t slot = base +
                                 static_cast<std::size_t>(j) * slice_size +
                                 static_cast<std::size_t>(lane);
        s.val[slot] = m.val[p];
        s.col[slot] = m.col_idx[p];
      }
    }
  }
  return s;
}

void spmv(const SlicedEll& m, std::span<const real_t> x, std::span<real_t> y) {
  assert(x.size() == static_cast<std::size_t>(m.ncols));
  assert(y.size() == static_cast<std::size_t>(m.nrows));
  const index_t num_slices = m.num_slices();
  // Slice-parallel: perm is a bijection, so the scattered y writes of
  // different slices never alias — thread-count independent.
  const real_t* va = m.val.data();
  const index_t* co = m.col.data();
  const index_t* perm = m.perm.data();
  const real_t* px = x.data();
  real_t* py = y.data();
  CMESOLVE_OMP_PARALLEL_FOR
  for (index_t sl = 0; sl < num_slices; ++sl) {
    const std::size_t base = m.slice_ptr[sl];
    const index_t k = m.slice_k[sl];
    for (index_t lane = 0; lane < m.slice_size; ++lane) {
      const index_t stored = sl * m.slice_size + lane;
      if (stored >= m.nrows) break;
      real_t sum = 0.0;
      for (index_t j = 0; j < k; ++j) {
        const std::size_t slot = base +
                                 static_cast<std::size_t>(j) * m.slice_size +
                                 static_cast<std::size_t>(lane);
        const index_t c = co[slot];
        if (c > kPadColumn) {
          sum += va[slot] * px[c];
        }
      }
      py[perm[stored]] = sum;
    }
  }
}

}  // namespace cmesolve::sparse
