#pragma once
//
// Sliced ELL (Monakov et al.) and the paper's warp-grained variant (Sec. VI).
//
// The matrix is cut into slices of `slice_size` consecutive (possibly
// permuted) rows; each slice is a local ELL structure with its own k, so
// zero-padding is bounded by the within-slice row-length spread instead of
// the global maximum.
//
// The paper's contribution is twofold:
//   * warp granularity — slice_size = 32 decoupled from the CUDA block size
//     (256), so data-structure efficiency and SM occupancy are achieved
//     simultaneously;
//   * local rearrangement — rows are sorted by length only *within* a block
//     window, which evens out per-warp k without destroying the x-vector
//     locality that a global sort (pJDS) or a random shuffle would lose.
//
#include <cstddef>
#include <span>
#include <vector>

#include "sparse/csr.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace cmesolve::sparse {

/// Row-ordering strategy applied before slicing (Sec. VII-C comparison).
enum class Reordering {
  kNone,    ///< keep the DFS order of the state-space enumeration
  kLocal,   ///< sort by row length within each block window (the paper's)
  kGlobal,  ///< sort by row length over the whole matrix (pJDS-like)
  kRandom,  ///< random shuffle (locality-destruction strawman)
};

struct SlicedEll {
  index_t nrows = 0;  ///< logical rows
  index_t ncols = 0;
  index_t slice_size = 0;
  /// Per-slice local k (max row length inside the slice).
  std::vector<index_t> slice_k;
  /// Element offset of each slice's storage; size num_slices()+1.
  std::vector<std::size_t> slice_ptr;
  /// Per-slice column-major storage: element (lane, j) of slice s lives at
  /// slice_ptr[s] + j * slice_size + lane.
  std::vector<real_t> val;
  std::vector<index_t> col;
  /// stored row -> original row. perm[lane + s*slice_size] identifies which
  /// original row a storage lane holds. Identity when Reordering::kNone.
  std::vector<index_t> perm;
  std::size_t nnz = 0;

  [[nodiscard]] index_t num_slices() const noexcept {
    return static_cast<index_t>(slice_k.size());
  }

  /// Data-structure efficiency: nnz / allocated slots.
  [[nodiscard]] real_t efficiency() const noexcept {
    return val.empty() ? 1.0
                       : static_cast<real_t>(nnz) / static_cast<real_t>(val.size());
  }

  /// Device footprint: slot arrays + per-slice k and start offsets (4 bytes
  /// each, matching the paper's accounting) + the row permutation when one
  /// is carried.
  [[nodiscard]] std::size_t bytes() const noexcept {
    std::size_t b = val.size() * sizeof(real_t) + col.size() * sizeof(index_t);
    b += slice_k.size() * (sizeof(index_t) + sizeof(std::uint32_t));
    if (!is_identity_perm()) b += perm.size() * sizeof(index_t);
    return b;
  }

  [[nodiscard]] bool is_identity_perm() const noexcept;
};

/// Build a sliced ELL structure.
///
/// @param slice_size  rows per slice (32 for warp-grained, block size for
///                    the original formulation)
/// @param reorder     row-ordering strategy
/// @param window      rearrangement window for Reordering::kLocal — the CUDA
///                    block size in the paper (256)
/// @param seed        RNG seed for Reordering::kRandom
[[nodiscard]] SlicedEll sliced_ell_from_csr(const Csr& m, index_t slice_size,
                                            Reordering reorder = Reordering::kNone,
                                            index_t window = 256,
                                            std::uint64_t seed = 42);

/// The paper's warp-grained sliced ELL: slice = warp (32 rows), local
/// rearrangement within a 256-row block window.
[[nodiscard]] inline SlicedEll warped_ell_from_csr(const Csr& m,
                                                   index_t window = 256) {
  return sliced_ell_from_csr(m, /*slice_size=*/32, Reordering::kLocal, window);
}

/// pJDS-like format: global row-length sort + warp-sized slices.
[[nodiscard]] inline SlicedEll pjds_from_csr(const Csr& m) {
  return sliced_ell_from_csr(m, /*slice_size=*/32, Reordering::kGlobal);
}

/// y = m * x in the ORIGINAL row numbering (the kernel scatters through the
/// permutation, exactly as the GPU kernel indexes y by the original row id).
void spmv(const SlicedEll& m, std::span<const real_t> x, std::span<real_t> y);

}  // namespace cmesolve::sparse
