#include "ssa/ssa.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <set>
#include <stdexcept>

namespace cmesolve::ssa {

namespace {

constexpr real_t kInf = std::numeric_limits<real_t>::infinity();

/// Exponential(rate) waiting time; rate must be positive.
real_t exponential(Xoshiro256& rng, real_t rate) {
  // -log(1 - u) with u in [0, 1): strictly positive argument.
  return -std::log1p(-rng.uniform()) / rate;
}

/// Propensity of reaction k honoring the finite-buffer truncation: a
/// reaction blocked by a full buffer cannot fire (mirrors rate_matrix()).
real_t effective_propensity(const core::ReactionNetwork& net, int k,
                            const core::State& x) {
  if (!net.within_capacity(k, x)) return 0.0;
  return net.propensity(k, x);
}

}  // namespace

// --- DirectMethod -------------------------------------------------------------

DirectMethod::DirectMethod(const core::ReactionNetwork& network,
                           std::uint64_t seed)
    : network_(&network),
      rng_(seed),
      propensity_(static_cast<std::size_t>(network.num_reactions())) {}

Event DirectMethod::next_event(const core::State& x) {
  const int nr = network_->num_reactions();
  real_t total = 0.0;
  for (int k = 0; k < nr; ++k) {
    propensity_[static_cast<std::size_t>(k)] =
        effective_propensity(*network_, k, x);
    total += propensity_[static_cast<std::size_t>(k)];
  }
  if (total <= 0.0) {
    return Event{kInf, -1};  // absorbing state
  }

  Event e;
  e.dt = exponential(rng_, total);
  // Roulette selection.
  real_t target = rng_.uniform() * total;
  for (int k = 0; k < nr; ++k) {
    target -= propensity_[static_cast<std::size_t>(k)];
    if (target <= 0.0) {
      e.reaction = k;
      return e;
    }
  }
  e.reaction = nr - 1;  // guard against rounding at the roulette edge
  return e;
}

std::uint64_t DirectMethod::advance(core::State& x, real_t horizon) {
  std::uint64_t events = 0;
  real_t t = 0.0;
  for (;;) {
    const Event e = next_event(x);
    if (e.reaction < 0 || t + e.dt > horizon) break;
    t += e.dt;
    x = network_->apply(e.reaction, x);
    ++events;
  }
  return events;
}

// --- NextReactionMethod ----------------------------------------------------------

NextReactionMethod::NextReactionMethod(const core::ReactionNetwork& network,
                                       std::uint64_t seed)
    : network_(&network), rng_(seed) {
  const int nr = network.num_reactions();

  // Dependency graph: reaction j depends on i when i changes a species that
  // j reads (as reactant) or writes near a capacity bound. Changes to any
  // species in j's change list can also flip j's capacity feasibility, so
  // those count as reads too.
  std::vector<std::set<int>> reads(static_cast<std::size_t>(nr));
  std::vector<std::set<int>> writes(static_cast<std::size_t>(nr));
  for (int k = 0; k < nr; ++k) {
    for (const auto& re : network.reaction(k).reactants) {
      reads[static_cast<std::size_t>(k)].insert(re.species);
    }
    for (const auto& ch : network.reaction(k).changes) {
      writes[static_cast<std::size_t>(k)].insert(ch.species);
      reads[static_cast<std::size_t>(k)].insert(ch.species);  // capacity test
    }
  }
  dependents_.resize(static_cast<std::size_t>(nr));
  for (int i = 0; i < nr; ++i) {
    for (int j = 0; j < nr; ++j) {
      bool depends = (i == j);
      for (int s : writes[static_cast<std::size_t>(i)]) {
        if (reads[static_cast<std::size_t>(j)].count(s)) {
          depends = true;
          break;
        }
      }
      if (depends) dependents_[static_cast<std::size_t>(i)].push_back(j);
    }
  }

  propensity_.resize(static_cast<std::size_t>(nr));
  putative_.resize(static_cast<std::size_t>(nr));
  heap_.resize(static_cast<std::size_t>(nr));
  heap_pos_.resize(static_cast<std::size_t>(nr));
}

void NextReactionMethod::rebuild(const core::State& x) {
  const int nr = network_->num_reactions();
  for (int k = 0; k < nr; ++k) {
    propensity_[static_cast<std::size_t>(k)] =
        effective_propensity(*network_, k, x);
    putative_[static_cast<std::size_t>(k)] =
        propensity_[static_cast<std::size_t>(k)] > 0.0
            ? now_ + exponential(rng_, propensity_[static_cast<std::size_t>(k)])
            : kInf;
    heap_[static_cast<std::size_t>(k)] = k;
    heap_pos_[static_cast<std::size_t>(k)] = static_cast<std::size_t>(k);
  }
  for (std::size_t i = heap_.size(); i-- > 0;) heap_down(i);
}

void NextReactionMethod::heap_up(std::size_t pos) {
  while (pos > 0) {
    const std::size_t parent = (pos - 1) / 2;
    if (putative_[static_cast<std::size_t>(heap_[parent])] <=
        putative_[static_cast<std::size_t>(heap_[pos])]) {
      break;
    }
    std::swap(heap_[parent], heap_[pos]);
    heap_pos_[static_cast<std::size_t>(heap_[parent])] = parent;
    heap_pos_[static_cast<std::size_t>(heap_[pos])] = pos;
    pos = parent;
  }
}

void NextReactionMethod::heap_down(std::size_t pos) {
  const std::size_t n = heap_.size();
  for (;;) {
    std::size_t best = pos;
    for (std::size_t child = 2 * pos + 1; child <= 2 * pos + 2; ++child) {
      if (child < n && putative_[static_cast<std::size_t>(heap_[child])] <
                           putative_[static_cast<std::size_t>(heap_[best])]) {
        best = child;
      }
    }
    if (best == pos) return;
    std::swap(heap_[pos], heap_[best]);
    heap_pos_[static_cast<std::size_t>(heap_[pos])] = pos;
    heap_pos_[static_cast<std::size_t>(heap_[best])] = best;
    pos = best;
  }
}

void NextReactionMethod::update_key(int reaction, real_t new_time) {
  const real_t old_time = putative_[static_cast<std::size_t>(reaction)];
  putative_[static_cast<std::size_t>(reaction)] = new_time;
  const std::size_t pos = heap_pos_[static_cast<std::size_t>(reaction)];
  if (new_time < old_time) {
    heap_up(pos);
  } else {
    heap_down(pos);
  }
}

std::uint64_t NextReactionMethod::advance(core::State& x, real_t horizon) {
  now_ = 0.0;
  rebuild(x);

  std::uint64_t events = 0;
  for (;;) {
    const int k = heap_.front();
    const real_t t_fire = putative_[static_cast<std::size_t>(k)];
    if (!(t_fire <= horizon)) break;  // also exits on +inf (absorbing)

    now_ = t_fire;
    x = network_->apply(k, x);
    ++events;

    // Gibson-Bruck update: the fired reaction redraws; dependent reactions
    // rescale their residual waiting time by the propensity ratio.
    for (int j : dependents_[static_cast<std::size_t>(k)]) {
      const real_t a_new = effective_propensity(*network_, j, x);
      const real_t a_old = propensity_[static_cast<std::size_t>(j)];
      real_t t_new;
      if (j == k || putative_[static_cast<std::size_t>(j)] == kInf ||
          a_old <= 0.0) {
        t_new = a_new > 0.0 ? now_ + exponential(rng_, a_new) : kInf;
      } else if (a_new <= 0.0) {
        t_new = kInf;
      } else {
        t_new = now_ + (a_old / a_new) *
                           (putative_[static_cast<std::size_t>(j)] - now_);
      }
      propensity_[static_cast<std::size_t>(j)] = a_new;
      update_key(j, t_new);
    }
  }
  return events;
}

// --- empirical stationary ---------------------------------------------------------

std::vector<real_t> empirical_stationary(const core::ReactionNetwork& network,
                                         const core::StateSpace& space,
                                         core::State initial,
                                         const EmpiricalOptions& opt) {
  if (!network.valid_state(initial)) {
    throw std::invalid_argument("empirical_stationary: invalid initial state");
  }
  DirectMethod sim(network, opt.seed);
  core::State x = std::move(initial);

  // Burn-in.
  (void)sim.advance(x, opt.burn_in);

  std::vector<real_t> occupancy(static_cast<std::size_t>(space.size()), 0.0);
  real_t t = 0.0;
  while (t < opt.horizon) {
    const Event e = sim.next_event(x);
    const real_t dwell = std::min(e.reaction < 0 ? opt.horizon - t : e.dt,
                                  opt.horizon - t);
    const index_t idx = space.find(x);
    if (idx >= 0) occupancy[static_cast<std::size_t>(idx)] += dwell;
    t += dwell;
    if (e.reaction < 0 || t >= opt.horizon) break;
    x = network.apply(e.reaction, x);
  }

  real_t total = 0.0;
  for (real_t v : occupancy) total += v;
  if (total > 0.0) {
    for (real_t& v : occupancy) v /= total;
  }
  return occupancy;
}

std::vector<real_t> empirical_marginal(const core::ReactionNetwork& network,
                                       const core::StateSpace& space,
                                       core::State initial,
                                       const MarginalOptions& opt) {
  if (!network.valid_state(initial)) {
    throw std::invalid_argument("empirical_marginal: invalid initial state");
  }
  if (opt.t < 0.0) {
    throw std::invalid_argument("empirical_marginal: negative time");
  }
  if (opt.trajectories == 0) {
    throw std::invalid_argument("empirical_marginal: need trajectories");
  }
  std::vector<real_t> histogram(static_cast<std::size_t>(space.size()), 0.0);
  for (std::uint64_t k = 0; k < opt.trajectories; ++k) {
    // Independent streams: splitmix-style per-trajectory seed derivation,
    // same recipe the verify battery uses for its auxiliary rngs.
    DirectMethod sim(network,
                     opt.seed + k * 0x9E3779B97F4A7C15ULL + 0x7F4A7C15ULL);
    core::State x = initial;
    (void)sim.advance(x, opt.t);
    const index_t idx = space.find(x);
    if (idx >= 0) histogram[static_cast<std::size_t>(idx)] += 1.0;
  }
  for (real_t& v : histogram) {
    v /= static_cast<real_t>(opt.trajectories);
  }
  return histogram;
}

real_t total_variation(std::span<const real_t> p, std::span<const real_t> q) {
  assert(p.size() == q.size());
  real_t sum = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    sum += std::abs(p[i] - q[i]);
  }
  return 0.5 * sum;
}

}  // namespace cmesolve::ssa
