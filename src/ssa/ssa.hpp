#pragma once
//
// Stochastic Simulation Algorithm (SSA) substrate.
//
// The CME's probability landscape is the ensemble law of the jump process
// that Gillespie's SSA samples one trajectory at a time. This module exists
// to cross-validate the linear-algebra pipeline: the time-average occupancy
// of a long, ergodic trajectory must converge to the steady-state vector
// the Jacobi solver computes (and the paper's Sec. I positions the CME
// solve as the scalable alternative to exactly this kind of sampling).
//
// Two classic exact samplers are provided:
//   * DirectMethod      — Gillespie 1977: resample all propensities per step;
//   * NextReactionMethod — Gibson & Bruck 2000: putative-time priority queue
//     with a reaction dependency graph, O(log R) per event.
//
#include <cstdint>
#include <span>
#include <vector>

#include "core/reaction_network.hpp"
#include "core/state_space.hpp"
#include "util/rng.hpp"
#include "util/types.hpp"

namespace cmesolve::ssa {

/// One sampled reaction event.
struct Event {
  real_t dt = 0.0;    ///< waiting time before the firing
  int reaction = -1;  ///< fired reaction, or -1 when the state is absorbing
};

/// Gillespie's direct method.
class DirectMethod {
 public:
  explicit DirectMethod(const core::ReactionNetwork& network,
                        std::uint64_t seed = 1);

  /// Sample the next event from state `x` (which is NOT modified).
  [[nodiscard]] Event next_event(const core::State& x);

  /// Advance `x` in place until `horizon` time has elapsed.
  /// @return number of reaction firings.
  std::uint64_t advance(core::State& x, real_t horizon);

 private:
  const core::ReactionNetwork* network_;
  Xoshiro256 rng_;
  std::vector<real_t> propensity_;  // scratch
};

/// Gibson-Bruck next-reaction method. Equivalent law to DirectMethod;
/// asymptotically cheaper for networks with many reactions because only the
/// propensities that the dependency graph marks stale are recomputed.
class NextReactionMethod {
 public:
  explicit NextReactionMethod(const core::ReactionNetwork& network,
                              std::uint64_t seed = 1);

  /// Advance `x` in place until `horizon` time has elapsed.
  std::uint64_t advance(core::State& x, real_t horizon);

 private:
  void rebuild(const core::State& x);
  void heap_up(std::size_t pos);
  void heap_down(std::size_t pos);
  void update_key(int reaction, real_t new_time);

  const core::ReactionNetwork* network_;
  Xoshiro256 rng_;
  /// reaction -> reactions whose propensity changes when it fires.
  std::vector<std::vector<int>> dependents_;
  std::vector<real_t> propensity_;
  std::vector<real_t> putative_;        // absolute putative firing times
  std::vector<int> heap_;               // reaction ids, min-heap by putative_
  std::vector<std::size_t> heap_pos_;   // reaction -> heap slot
  real_t now_ = 0.0;
};

/// Time-average state occupancy of one trajectory over an enumerated space:
/// the empirical stationary distribution. States visited outside the
/// enumerated space (impossible when the space is closed) are ignored.
struct EmpiricalOptions {
  real_t burn_in = 10.0;     ///< discarded warm-up time
  real_t horizon = 1000.0;   ///< averaged simulation time after burn-in
  std::uint64_t seed = 1;
};

[[nodiscard]] std::vector<real_t> empirical_stationary(
    const core::ReactionNetwork& network, const core::StateSpace& space,
    core::State initial, const EmpiricalOptions& opt = {});

/// Endpoint histogram of many independent trajectories: the empirical TIME
/// MARGINAL P(X(t) = x | X(0) = initial). Unlike the dwell-time occupancy
/// above, every trajectory contributes exactly one iid sample, so a
/// chi-square test against a transient solve is statistically clean.
struct MarginalOptions {
  real_t t = 1.0;                      ///< sampling time
  std::uint64_t trajectories = 2000;   ///< iid samples
  std::uint64_t seed = 1;              ///< per-trajectory seeds derive from it
};

[[nodiscard]] std::vector<real_t> empirical_marginal(
    const core::ReactionNetwork& network, const core::StateSpace& space,
    core::State initial, const MarginalOptions& opt = {});

/// Total-variation distance between two distributions on the same support.
[[nodiscard]] real_t total_variation(std::span<const real_t> p,
                                     std::span<const real_t> q);

}  // namespace cmesolve::ssa
