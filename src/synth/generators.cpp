#include "synth/generators.hpp"

#include <algorithm>
#include <cmath>

namespace cmesolve::synth {

namespace {

/// Fill a row with `len` distinct columns around `center` within [0, n).
/// `spread` controls locality: small spread = neighbours, large = scattered.
void fill_row(sparse::Coo& coo, Xoshiro256& rng, index_t row, index_t n,
              index_t len, index_t center, index_t spread) {
  std::vector<index_t> cols;
  cols.reserve(static_cast<std::size_t>(len));
  cols.push_back(std::clamp<index_t>(center, 0, n - 1));  // near-diagonal
  while (static_cast<index_t>(cols.size()) < len) {
    const index_t offset =
        static_cast<index_t>(rng.range(-spread, spread));
    const index_t c = std::clamp<index_t>(center + offset, 0, n - 1);
    cols.push_back(c);
  }
  std::sort(cols.begin(), cols.end());
  cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
  for (index_t c : cols) {
    coo.add(row, c, rng.uniform(0.1, 1.0));
  }
}

}  // namespace

sparse::Csr fem_2d(index_t grid) {
  sparse::Coo coo;
  const index_t n = grid * grid;
  coo.nrows = coo.ncols = n;
  coo.reserve(static_cast<std::size_t>(n) * 5);
  for (index_t i = 0; i < grid; ++i) {
    for (index_t j = 0; j < grid; ++j) {
      const index_t r = i * grid + j;
      coo.add(r, r, 4.0);
      if (i > 0) coo.add(r, r - grid, -1.0);
      if (i < grid - 1) coo.add(r, r + grid, -1.0);
      if (j > 0) coo.add(r, r - 1, -1.0);
      if (j < grid - 1) coo.add(r, r + 1, -1.0);
    }
  }
  return sparse::csr_from_coo(std::move(coo));
}

sparse::Csr fem_3d(index_t grid) {
  sparse::Coo coo;
  const index_t n = grid * grid * grid;
  coo.nrows = coo.ncols = n;
  coo.reserve(static_cast<std::size_t>(n) * 7);
  const index_t g2 = grid * grid;
  for (index_t i = 0; i < grid; ++i) {
    for (index_t j = 0; j < grid; ++j) {
      for (index_t k = 0; k < grid; ++k) {
        const index_t r = i * g2 + j * grid + k;
        coo.add(r, r, 6.0);
        if (i > 0) coo.add(r, r - g2, -1.0);
        if (i < grid - 1) coo.add(r, r + g2, -1.0);
        if (j > 0) coo.add(r, r - grid, -1.0);
        if (j < grid - 1) coo.add(r, r + grid, -1.0);
        if (k > 0) coo.add(r, r - 1, -1.0);
        if (k < grid - 1) coo.add(r, r + 1, -1.0);
      }
    }
  }
  return sparse::csr_from_coo(std::move(coo));
}

sparse::Csr structural(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  sparse::Coo coo;
  coo.nrows = coo.ncols = n;
  for (index_t r = 0; r < n; ++r) {
    // 3-DOF node blocks: near-constant in-band rows + rare constraint rows.
    index_t len = 15 + static_cast<index_t>(rng.bounded(4));
    if (rng.uniform() < 0.001) len += 18;  // stiffener / constraint row
    fill_row(coo, rng, r, n, len, r, 60);
  }
  return sparse::csr_from_coo(std::move(coo));
}

sparse::Csr circuit(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  sparse::Coo coo;
  coo.nrows = coo.ncols = n;
  for (index_t r = 0; r < n; ++r) {
    index_t len;
    index_t spread;
    if (rng.uniform() < 0.0002) {
      // Power/ground rail: touches a scattered set of nodes.
      len = 20 + static_cast<index_t>(rng.bounded(30));
      spread = n / 8;
    } else {
      len = 2 + static_cast<index_t>(rng.bounded(5));
      spread = 200;
    }
    fill_row(coo, rng, r, n, len, r, spread);
  }
  return sparse::csr_from_coo(std::move(coo));
}

sparse::Csr quantum_chemistry(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  sparse::Coo coo;
  coo.nrows = coo.ncols = n;
  // Orbital blocks of widely varying size; rows inside a block couple to
  // the whole block plus a tail into neighbouring blocks. Adjacent rows
  // therefore jump between short and very long — maximal local variability.
  index_t r = 0;
  while (r < n) {
    const index_t block = 4 + static_cast<index_t>(rng.bounded(60));
    const index_t end = std::min<index_t>(r + block, n);
    for (index_t i = r; i < end; ++i) {
      const index_t len =
          std::max<index_t>(2, block + static_cast<index_t>(rng.bounded(
                                            static_cast<std::uint64_t>(block))));
      fill_row(coo, rng, i, n, len, r + block / 2, block * 3);
    }
    r = end;
  }
  return sparse::csr_from_coo(std::move(coo));
}

sparse::Csr web_graph(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  sparse::Coo coo;
  coo.nrows = coo.ncols = n;
  for (index_t r = 0; r < n; ++r) {
    // Mostly short out-degrees with rare hub pages.
    index_t len = 2 + static_cast<index_t>(rng.bounded(4));
    if (rng.uniform() < 0.0002) {
      len = 15 + static_cast<index_t>(rng.bounded(25));
    }
    // Host locality: pages link within their site neighbourhood.
    fill_row(coo, rng, r, n, len, r, 400);
  }
  return sparse::csr_from_coo(std::move(coo));
}

sparse::Csr economics(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  sparse::Coo coo;
  coo.nrows = coo.ncols = n;
  const index_t sector = std::max<index_t>(256, n / 50);
  for (index_t r = 0; r < n; ++r) {
    if (r % sector == 0) {
      // Aggregate row: one per sector, couples across many sectors.
      fill_row(coo, rng, r, n, 16 + static_cast<index_t>(rng.bounded(16)), r,
               sector);
    } else {
      // Ordinary sector rows are near-constant length and couple to nearby
      // industries (input-output tables are block-regular); the variance
      // lives in the aggregate rows.
      fill_row(coo, rng, r, n, 6 + static_cast<index_t>(rng.bounded(3)), r,
               200);
    }
  }
  return sparse::csr_from_coo(std::move(coo));
}

sparse::Csr epidemiology(index_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  sparse::Coo coo;
  coo.nrows = coo.ncols = n;
  for (index_t r = 0; r < n; ++r) {
    const index_t len = 2 + static_cast<index_t>(rng.bounded(3));
    fill_row(coo, rng, r, n, len, r, 500);
  }
  return sparse::csr_from_coo(std::move(coo));
}

std::vector<DomainMatrix> figure5_suite(index_t scale, std::uint64_t seed) {
  std::vector<DomainMatrix> suite;
  const auto grid2 =
      static_cast<index_t>(std::lround(std::sqrt(static_cast<double>(scale))));
  const auto grid3 =
      static_cast<index_t>(std::lround(std::cbrt(static_cast<double>(scale))));
  suite.push_back({"fem-2d", fem_2d(grid2)});
  suite.push_back({"fem-3d", fem_3d(grid3)});
  suite.push_back({"structural", structural(scale, seed + 1)});
  suite.push_back({"circuit", circuit(scale, seed + 2)});
  suite.push_back({"quantum-chemistry", quantum_chemistry(scale / 2, seed + 3)});
  suite.push_back({"web-graph", web_graph(scale / 2, seed + 4)});
  suite.push_back({"economics", economics(scale, seed + 5)});
  suite.push_back({"epidemiology", epidemiology(scale, seed + 6)});
  return suite;
}

}  // namespace cmesolve::synth
