#pragma once
//
// Synthetic sparse matrices with domain-characteristic structure.
//
// Fig. 5 of the paper compares sliced vs warp-grained ELL over University
// of Florida collection matrices grouped by application domain. The
// collection is not redistributable inside this container, so each domain
// is represented by a generator reproducing the structural property that
// drives the comparison: the distribution of nonzeros per row (its global
// skew and its local, within-256-rows variability) and the column-access
// locality. See DESIGN.md for the substitution rationale.
//
#include <string>
#include <vector>

#include "sparse/csr.hpp"
#include "util/rng.hpp"

namespace cmesolve::synth {

/// 2-D Poisson 5-point stencil on a grid x grid mesh: perfectly regular
/// rows (FEM/CFD-like). Warped ELL has no padding to recover here.
[[nodiscard]] sparse::Csr fem_2d(index_t grid);

/// 3-D 7-point stencil on a grid^3 mesh.
[[nodiscard]] sparse::Csr fem_3d(index_t grid);

/// Structural engineering: banded matrix with 3x3 node blocks and
/// occasional long-range couplings (mild variability).
[[nodiscard]] sparse::Csr structural(index_t n, std::uint64_t seed);

/// Circuit simulation: near-constant short rows plus a few dense
/// power/ground rails (strong global skew, local spikes).
[[nodiscard]] sparse::Csr circuit(index_t n, std::uint64_t seed);

/// Quantum chemistry: dense orbital blocks of widely varying size —
/// the domain where the paper reports the largest warped-ELL gain (48%).
[[nodiscard]] sparse::Csr quantum_chemistry(index_t n, std::uint64_t seed);

/// Web/social graph: power-law out-degrees, scattered columns.
[[nodiscard]] sparse::Csr web_graph(index_t n, std::uint64_t seed);

/// Economics: block-sparse input/output tables with dense aggregate rows.
[[nodiscard]] sparse::Csr economics(index_t n, std::uint64_t seed);

/// Epidemiology/contact networks: short rows with small variance.
[[nodiscard]] sparse::Csr epidemiology(index_t n, std::uint64_t seed);

struct DomainMatrix {
  std::string domain;
  sparse::Csr matrix;
};

/// The Fig. 5 sweep: one representative per domain, sized by `scale`
/// (approximate row count).
[[nodiscard]] std::vector<DomainMatrix> figure5_suite(index_t scale = 60'000,
                                                      std::uint64_t seed = 7);

}  // namespace cmesolve::synth
