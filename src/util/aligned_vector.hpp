#pragma once
//
// A std::vector with cache-line/SIMD-friendly alignment.
//
// GPU memory transactions in the simulator are 128 bytes wide; aligning
// host-side arrays to the same boundary keeps the address arithmetic in the
// coalescing model honest and helps the CPU kernels vectorize.
//
#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace cmesolve {

/// Minimal C++17 aligned allocator (64-byte default: one x86 cache line,
/// half a GPU memory transaction).
template <class T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::align_val_t kAlign{Alignment};

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    return static_cast<T*>(::operator new(n * sizeof(T), kAlign));
  }
  void deallocate(T* p, std::size_t) noexcept { ::operator delete(p, kAlign); }

  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };
  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace cmesolve

namespace cmesolve::util {
/// util-qualified alias: the solver-state audit (x/next/resid and the
/// batched interleaved buffer) names this as util::aligned_vector.
template <class T>
using aligned_vector = ::cmesolve::aligned_vector<T>;
}  // namespace cmesolve::util
