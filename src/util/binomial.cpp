// Intentionally (almost) empty: binomial.hpp is header-only, but the
// translation unit anchors the target and verifies the header is
// self-contained.
#include "util/binomial.hpp"

namespace cmesolve {
static_assert(binomial(0, 0) == 1.0);
static_assert(binomial(5, 2) == 10.0);
static_assert(binomial(4, 5) == 0.0);
static_assert(falling_factorial(5, 2) == 20.0);
// Overflow-boundary regression: C(1024, 512) ~ 4.48e306 is representable,
// but the multiply-before-divide order used to push an intermediate product
// past DBL_MAX and return inf. The guarded order keeps it finite.
static_assert(binomial(1024, 512) > 4.4e306);
static_assert(binomial(1024, 512) < 4.6e306);
}  // namespace cmesolve
