// Intentionally (almost) empty: binomial.hpp is header-only, but the
// translation unit anchors the target and verifies the header is
// self-contained.
#include "util/binomial.hpp"

namespace cmesolve {
static_assert(binomial(0, 0) == 1.0);
static_assert(binomial(5, 2) == 10.0);
static_assert(binomial(4, 5) == 0.0);
static_assert(falling_factorial(5, 2) == 20.0);
}  // namespace cmesolve
