#pragma once
//
// Exact binomial coefficients for propensity evaluation.
//
// The CME propensity of reaction k in microstate x is
//     A_k(x) = r_k * prod_i C(x_i, c_i)
// where c_i is the reactant copy number of species i (Sec. II-A of the
// paper). Copy numbers in finitely-buffered state spaces are small, so the
// coefficient is computed exactly in double precision with a multiplicative
// scheme; reactant orders above 4 never occur in the shipped models but the
// routine is general.
//
#include <cstdint>

#include "util/types.hpp"

namespace cmesolve {

/// C(n, k) as a double. Returns 0 for k > n or negative arguments
/// (a reaction lacking reactants has zero propensity). Exact for all values
/// representable without rounding in a double (n below ~1e15 for small k).
[[nodiscard]] constexpr real_t binomial(std::int64_t n, std::int64_t k) noexcept {
  if (k < 0 || n < 0 || k > n) return 0.0;
  if (k > n - k) k = n - k;
  real_t result = 1.0;
  // Threshold above which `result * factor` may not be representable: the
  // largest per-step factor is n, so products stay finite as long as
  // result <= DBL_MAX / n. 1.7e308 / n is a slightly conservative stand-in
  // (DBL_MAX = 1.7976...e308) that keeps the comparison cheap.
  const real_t overflow_guard = 1.7e308 / static_cast<real_t>(n > 0 ? n : 1);
  // Multiply incrementally: result stays an exact integer at every step
  // because C(n, j) divides evenly. Once result approaches the overflow
  // guard, divide BEFORE multiplying — that order can round (the quotient
  // is no longer integral) but keeps representable coefficients finite:
  // the old multiply-first order drove e.g. C(1024, 512) ~ 4.5e306 through
  // an intermediate product of ~2.3e309 = inf.
  for (std::int64_t j = 1; j <= k; ++j) {
    const real_t factor = static_cast<real_t>(n - k + j);
    if (result > overflow_guard) {
      result = result / static_cast<real_t>(j) * factor;
    } else {
      result = result * factor / static_cast<real_t>(j);
    }
  }
  // Round away the tiny drift the division can leave behind for larger k.
  // Coefficients beyond 2^63 cannot round-trip through an integer; return
  // the (correctly rounded to ~1 ulp) double directly in that regime.
  if (result < 9.0e18) {
    return static_cast<real_t>(static_cast<std::uint64_t>(result + 0.5));
  }
  return result;
}

/// Falling factorial n * (n-1) * ... * (n-k+1): the number of ordered ways
/// to pick k reactant molecules. Some CME texts use this as the propensity
/// combinatorics instead of C(n, k); exposed for completeness.
[[nodiscard]] constexpr real_t falling_factorial(std::int64_t n,
                                                 std::int64_t k) noexcept {
  if (k < 0 || n < 0 || k > n) return 0.0;
  real_t result = 1.0;
  for (std::int64_t j = 0; j < k; ++j) {
    result *= static_cast<real_t>(n - j);
  }
  return result;
}

}  // namespace cmesolve
