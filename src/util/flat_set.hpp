#pragma once
//
// Open-addressing set of 64-bit keys, tuned for the simulator's per-pass
// write-set (dirty cache lines): clear() keeps the backing storage, so a
// steady-state kernel pass performs zero allocations once warmed up —
// unlike std::unordered_set, whose node allocations dominated the serial
// MemorySim profile.
//
// Linear probing, power-of-two capacity, splitmix64 finalizer hash. The key
// ~0ULL is reserved as the empty sentinel (device line addresses never
// reach it).
//
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cmesolve::util {

class FlatSet64 {
 public:
  static constexpr std::uint64_t kEmpty = ~0ULL;

  FlatSet64() = default;

  /// Pre-size for about `n` keys without rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * kMaxLoadNum < n * kMaxLoadDen) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  /// @return true when `key` was newly inserted.
  bool insert(std::uint64_t key) {
    if (slots_.empty()) rehash(kMinCapacity);
    std::size_t i = static_cast<std::size_t>(hash(key)) & mask_;
    for (;;) {
      const std::uint64_t s = slots_[i];
      if (s == key) return false;
      if (s == kEmpty) break;
      i = (i + 1) & mask_;
    }
    slots_[i] = key;
    ++size_;
    if (size_ * kMaxLoadDen > slots_.size() * kMaxLoadNum) {
      rehash(slots_.size() * 2);
    }
    return true;
  }

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  /// Drop all keys but keep the backing storage (per-pass reuse).
  void clear() noexcept {
    if (size_ == 0) return;
    std::fill(slots_.begin(), slots_.end(), kEmpty);
    size_ = 0;
  }

  /// Visit every key (unspecified order).
  template <class Fn>
  void for_each(Fn&& fn) const {
    for (std::uint64_t s : slots_) {
      if (s != kEmpty) fn(s);
    }
  }

 private:
  static constexpr std::size_t kMinCapacity = 1024;  // power of two
  // Grow above a 7/10 load factor.
  static constexpr std::size_t kMaxLoadNum = 7;
  static constexpr std::size_t kMaxLoadDen = 10;

  static std::uint64_t hash(std::uint64_t x) noexcept {
    // splitmix64 finalizer
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
  }

  void rehash(std::size_t cap) {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(cap, kEmpty);
    mask_ = cap - 1;
    size_ = 0;
    for (std::uint64_t s : old) {
      if (s != kEmpty) insert(s);
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace cmesolve::util
