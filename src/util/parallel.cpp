#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#if defined(CMESOLVE_THREADS_ENABLED)
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#endif

namespace cmesolve::util {

namespace {

constexpr int kMaxThreadCap = 256;

std::atomic<int> g_override{0};

#if defined(CMESOLVE_THREADS_ENABLED)
thread_local bool t_in_task = false;

int env_threads() {
  static const int cached = [] {
    if (const char* env = std::getenv("CMESOLVE_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) return std::min(v, kMaxThreadCap);
    }
    return 0;
  }();
  return cached;
}

/// Persistent worker pool. Workers sleep between generations; each
/// parallel_tasks() call publishes a generation, the participants drain a
/// shared atomic task counter, and the caller blocks until every engaged
/// worker reports done. Nested calls (from inside a task) run inline.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  void run(int ntasks, int nthreads, const std::function<void(int)>& task) {
    const int engaged = std::min(nthreads, ntasks) - 1;  // workers beside us
    ensure_workers(engaged);
    {
      std::lock_guard<std::mutex> lk(m_);
      task_ = &task;
      ntasks_ = ntasks;
      next_.store(0, std::memory_order_relaxed);
      participants_ = engaged;
      finished_ = 0;
      error_ = nullptr;
      ++generation_;
    }
    work_cv_.notify_all();

    t_in_task = true;
    drain(task, ntasks);
    t_in_task = false;

    std::exception_ptr err;
    {
      std::unique_lock<std::mutex> lk(m_);
      done_cv_.wait(lk, [&] { return finished_ == participants_; });
      task_ = nullptr;
      participants_ = 0;
      err = error_;
      error_ = nullptr;
    }
    if (err) std::rethrow_exception(err);
  }

 private:
  Pool() = default;

  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(m_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  void drain(const std::function<void(int)>& task, int ntasks) {
    for (;;) {
      const int i = next_.fetch_add(1, std::memory_order_relaxed);
      if (i >= ntasks) break;
      try {
        task(i);
      } catch (...) {
        std::lock_guard<std::mutex> lk(m_);
        if (!error_) error_ = std::current_exception();
      }
    }
  }

  /// Grow the pool so at least `n` workers exist. Only called between
  /// generations (from run(), which is externally serialized), so workers_
  /// is stable whenever a generation is in flight.
  void ensure_workers(int n) {
    std::uint64_t gen;
    {
      std::lock_guard<std::mutex> lk(m_);
      gen = generation_;
    }
    while (static_cast<int>(workers_.size()) < n) {
      const int id = static_cast<int>(workers_.size());
      workers_.emplace_back([this, id, gen] { worker_loop(id, gen); });
    }
  }

  void worker_loop(int id, std::uint64_t seen_gen) {
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
      work_cv_.wait(lk, [&] { return stop_ || generation_ != seen_gen; });
      if (stop_) return;
      seen_gen = generation_;
      if (id >= participants_ || task_ == nullptr) continue;
      const std::function<void(int)>* task = task_;
      const int ntasks = ntasks_;
      lk.unlock();
      t_in_task = true;
      drain(*task, ntasks);
      t_in_task = false;
      lk.lock();
      if (++finished_ == participants_) done_cv_.notify_one();
    }
  }

  std::mutex m_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
  int participants_ = 0;
  int finished_ = 0;
  int ntasks_ = 0;
  const std::function<void(int)>* task_ = nullptr;
  std::exception_ptr error_;
  std::atomic<int> next_{0};
};
#endif  // CMESOLVE_THREADS_ENABLED

}  // namespace

int hardware_threads() noexcept {
#if defined(CMESOLVE_THREADS_ENABLED)
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
#else
  return 1;
#endif
}

int max_threads() noexcept {
  const int o = g_override.load(std::memory_order_relaxed);
  if (o > 0) return o;
#if defined(CMESOLVE_THREADS_ENABLED)
  if (const int e = env_threads(); e > 0) return e;
#endif
  return hardware_threads();
}

void set_max_threads(int n) noexcept {
  g_override.store(std::clamp(n, 0, kMaxThreadCap), std::memory_order_relaxed);
}

bool in_parallel_region() noexcept {
#if defined(CMESOLVE_THREADS_ENABLED)
  return t_in_task;
#else
  return false;
#endif
}

InlineRegion::InlineRegion() noexcept {
#if defined(CMESOLVE_THREADS_ENABLED)
  prev_ = t_in_task;
  t_in_task = true;
#else
  prev_ = false;
#endif
}

InlineRegion::~InlineRegion() {
#if defined(CMESOLVE_THREADS_ENABLED)
  t_in_task = prev_;
#endif
}

void parallel_tasks(int ntasks, const std::function<void(int)>& task) {
  if (ntasks <= 0) return;
#if defined(CMESOLVE_THREADS_ENABLED)
  const int t = max_threads();
  if (ntasks == 1 || t <= 1 || t_in_task) {
    const bool prev = t_in_task;
    t_in_task = true;
    try {
      for (int i = 0; i < ntasks; ++i) task(i);
    } catch (...) {
      t_in_task = prev;
      throw;
    }
    t_in_task = prev;
    return;
  }
  Pool::instance().run(ntasks, t, task);
#else
  for (int i = 0; i < ntasks; ++i) task(i);
#endif
}

}  // namespace cmesolve::util
