#pragma once
//
// Deterministic host-side parallelism primitives.
//
// Everything is built on one persistent std::thread pool (no OpenMP runtime
// dependency, so ThreadSanitizer builds stay clean). The contract of every
// primitive is *schedule independence*: results are bit-identical for any
// thread count, because work is split into FIXED chunks whose partial
// results are combined in chunk order on the calling thread. Parallelism
// only changes which thread computes a chunk, never what the chunk is.
//
// The build defines CMESOLVE_THREADS_ENABLED when threading is on
// (CMESOLVE_OPENMP=ON, or CMESOLVE_TSAN=ON which drops the OpenMP pragmas
// but keeps the pool). Without it every primitive degrades to the same
// chunk loop executed inline — same chunking, same results, zero threads.
//
// Thread-count resolution (strongest first):
//   1. set_max_threads(n)            — programmatic override (tests, benches)
//   2. CMESOLVE_THREADS environment  — user override
//   3. std::thread::hardware_concurrency()
//
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

// Portability shim for the OpenMP SpMV loops in src/sparse/: expands to the
// pragma only when compiled with -fopenmp, so CMESOLVE_OPENMP=OFF builds are
// silent under -Wunknown-pragmas and the plain loop stays vectorizable.
#if defined(_OPENMP)
#define CMESOLVE_OMP_PARALLEL_FOR _Pragma("omp parallel for schedule(static)")
#else
#define CMESOLVE_OMP_PARALLEL_FOR
#endif

namespace cmesolve::util {

/// Physical parallelism of this host (>= 1).
[[nodiscard]] int hardware_threads() noexcept;

/// Resolved thread budget (>= 1). In serial builds the budget still follows
/// the override — callers may use it to select code paths — but
/// parallel_tasks() executes inline regardless.
[[nodiscard]] int max_threads() noexcept;

/// Override the thread budget (0 restores automatic resolution). Clamped to
/// [0, 256]. Oversubscription is allowed on purpose: the determinism suite
/// runs 8 "threads" on any machine.
void set_max_threads(int n) noexcept;

/// True while the calling thread is executing a pool task. Nested parallel
/// constructs detect this and run inline instead of deadlocking the pool.
[[nodiscard]] bool in_parallel_region() noexcept;

/// RAII scope that forces every parallel primitive on the calling thread to
/// take its inline (serial) path, exactly as if the thread were already
/// inside a pool task. Two properties follow: the shared pool is never
/// driven from this thread (so several application-level threads — e.g. the
/// serve worker pool, src/serve/ — can each run a full solve concurrently
/// without violating parallel_tasks' one-driver rule), and every reduction
/// uses the serial chunk order, which the determinism contract guarantees is
/// bit-identical to the pooled result. Nests safely with itself and with
/// pool tasks; restores the previous state on destruction. No-op in serial
/// builds, which are always inline anyway.
class InlineRegion {
 public:
  InlineRegion() noexcept;
  ~InlineRegion();
  InlineRegion(const InlineRegion&) = delete;
  InlineRegion& operator=(const InlineRegion&) = delete;

 private:
  bool prev_ = false;
};

/// Run `task(0) .. task(ntasks-1)` on up to max_threads() threads (the
/// calling thread participates). Blocks until all tasks finish. Tasks are
/// handed out dynamically; the first exception thrown by any task is
/// rethrown on the calling thread after the barrier. May only be driven
/// from one thread at a time; nested calls execute inline.
void parallel_tasks(int ntasks, const std::function<void(int)>& task);

/// Chunked parallel loop: fn(begin, end) over disjoint subranges covering
/// [0, n). Use for element-wise work whose result is independent of the
/// chunking (stores to disjoint indices). `grain` is a minimum chunk size;
/// chunks may be larger when n is big, so do not rely on chunk boundaries.
template <class Fn>
void parallel_for(std::size_t n, Fn&& fn, std::size_t grain = 4096) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const int t = max_threads();
  // Cap the chunk count: element-wise loops do not need fine-grained
  // balancing, and fewer chunks means fewer std::function dispatches.
  const std::size_t min_grain =
      n / (8 * static_cast<std::size_t>(t) + 1) + 1;
  const std::size_t g = grain > min_grain ? grain : min_grain;
  const std::size_t nchunks = (n + g - 1) / g;
  if (nchunks <= 1 || t <= 1 || in_parallel_region()) {
    fn(std::size_t{0}, n);
    return;
  }
  parallel_tasks(static_cast<int>(nchunks), [&](int c) {
    const std::size_t b = static_cast<std::size_t>(c) * g;
    const std::size_t e = b + g < n ? b + g : n;
    fn(b, e);
  });
}

/// Deterministic ordered reduction. [0, n) is split into FIXED chunks of
/// `chunk` elements (independent of the thread count — this is what makes
/// floating-point results bit-identical at any parallelism), chunk_fn(begin,
/// end) reduces each chunk serially, and the partials are combined in
/// ascending chunk order on the calling thread:
///   result = combine(...combine(combine(init, p0), p1)..., pLast)
/// The serial fallback uses the identical association.
template <class T, class ChunkFn, class Combine>
[[nodiscard]] T parallel_reduce(std::size_t n, std::size_t chunk, T init,
                                ChunkFn&& chunk_fn, Combine&& combine) {
  if (n == 0) return init;
  if (chunk == 0) chunk = 1;
  const std::size_t nchunks = (n + chunk - 1) / chunk;
  T acc = std::move(init);
  if (nchunks <= 1) return combine(std::move(acc), chunk_fn(std::size_t{0}, n));
  const int t = max_threads();
  if (t <= 1 || in_parallel_region()) {
    for (std::size_t c = 0; c < nchunks; ++c) {
      const std::size_t b = c * chunk;
      const std::size_t e = b + chunk < n ? b + chunk : n;
      acc = combine(std::move(acc), chunk_fn(b, e));
    }
    return acc;
  }
  std::vector<T> partial(nchunks);
  parallel_tasks(static_cast<int>(nchunks), [&](int c) {
    const std::size_t b = static_cast<std::size_t>(c) * chunk;
    const std::size_t e = b + chunk < n ? b + chunk : n;
    partial[static_cast<std::size_t>(c)] = chunk_fn(b, e);
  });
  for (std::size_t c = 0; c < nchunks; ++c) {
    acc = combine(std::move(acc), std::move(partial[c]));
  }
  return acc;
}

}  // namespace cmesolve::util
