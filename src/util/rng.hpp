#pragma once
//
// Deterministic, seedable pseudo-random number generation.
//
// Benchmarks and property tests must be reproducible run-to-run, so the
// library carries its own tiny generators (SplitMix64 for seeding,
// xoshiro256** for the stream) instead of relying on implementation-defined
// std::default_random_engine behaviour.
//
#include <array>
#include <cstdint>

#include "util/types.hpp"

namespace cmesolve {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, 256-bit state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853C49E6748FEA9BULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  real_t uniform() noexcept {
    return static_cast<real_t>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  real_t uniform(real_t lo, real_t hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound) with rejection to avoid modulo bias.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    const std::uint64_t threshold = (~bound + 1) % bound;  // 2^64 mod bound
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform index in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(hi - lo + 1)));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace cmesolve
