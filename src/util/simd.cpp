#include "util/simd.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/simd_kernels.hpp"

// Per-ISA kernel tables. CMake defines CMESOLVE_SIMD_HAVE_<ISA> exactly
// when it compiles the matching simd_kernels_<isa>.cpp TU with the ISA's
// flags, so these externs always have a definition behind them.
namespace cmesolve::util::simdk {
namespace scalar {
extern const KernelOps kOps;
}
#if defined(CMESOLVE_SIMD_HAVE_SSE2)
namespace sse2 {
extern const KernelOps kOps;
}
#endif
#if defined(CMESOLVE_SIMD_HAVE_AVX2)
namespace avx2 {
extern const KernelOps kOps;
}
#endif
#if defined(CMESOLVE_SIMD_HAVE_AVX512)
namespace avx512 {
extern const KernelOps kOps;
}
#endif
#if defined(CMESOLVE_SIMD_HAVE_NEON)
namespace neon {
extern const KernelOps kOps;
}
#endif
}  // namespace cmesolve::util::simdk

namespace cmesolve::util::simd {
namespace {

// Dispatch state. g_forced is the programmatic override (tests); g_auto
// caches the one-time environment/CPUID resolution. Both are plain enum
// values packed into ints so the hot path is two relaxed loads.
constexpr int kUnset = -1;
std::atomic<int> g_forced{kUnset};
std::atomic<int> g_auto{kUnset};

bool cpu_supports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Isa::kSse2:
      return __builtin_cpu_supports("sse2") != 0;
    case Isa::kAvx2:
      return __builtin_cpu_supports("avx2") != 0 &&
             __builtin_cpu_supports("fma") != 0;
    case Isa::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return true;  // mandatory on aarch64
#endif
    default:
      return false;
  }
}

std::vector<Isa> probe_compiled() {
  std::vector<Isa> out;
  out.push_back(Isa::kScalar);
#if defined(CMESOLVE_SIMD_HAVE_NEON)
  if (cpu_supports(Isa::kNeon)) out.push_back(Isa::kNeon);
#endif
#if defined(CMESOLVE_SIMD_HAVE_SSE2)
  if (cpu_supports(Isa::kSse2)) out.push_back(Isa::kSse2);
#endif
#if defined(CMESOLVE_SIMD_HAVE_AVX2)
  if (cpu_supports(Isa::kAvx2)) out.push_back(Isa::kAvx2);
#endif
#if defined(CMESOLVE_SIMD_HAVE_AVX512)
  if (cpu_supports(Isa::kAvx512)) out.push_back(Isa::kAvx512);
#endif
  return out;
}

bool is_available(Isa isa) {
  for (Isa have : compiled_isas()) {
    if (have == isa) return true;
  }
  return false;
}

/// Widest available ISA not exceeding `want` (compiled_isas is ascending;
/// kScalar is always in it).
Isa clamp_to_available(Isa want) {
  Isa best = Isa::kScalar;
  for (Isa have : compiled_isas()) {
    if (static_cast<int>(have) <= static_cast<int>(want)) best = have;
  }
  return best;
}

/// One-time CMESOLVE_SIMD / CPUID resolution (no force_isa override).
Isa resolve_auto() {
  int cached = g_auto.load(std::memory_order_acquire);
  if (cached != kUnset) return static_cast<Isa>(cached);

  Isa pick = detected_isa();
  if (const char* env = std::getenv("CMESOLVE_SIMD");
      env != nullptr && env[0] != '\0') {
    Isa want{};
    if (parse_isa(env, want)) {
      const Isa got = clamp_to_available(want);
      if (got != want) {
        std::fprintf(stderr,
                     "cmesolve: CMESOLVE_SIMD=%s is not available in this "
                     "build/CPU; using %s\n",
                     env, to_string(got));
      }
      pick = got;
    } else if (std::string_view(env) != "auto") {
      std::fprintf(stderr,
                   "cmesolve: unknown CMESOLVE_SIMD=%s (want "
                   "scalar|sse2|avx2|avx512|neon|auto); using auto (%s)\n",
                   env, to_string(pick));
    }
  }
  int expected = kUnset;
  g_auto.compare_exchange_strong(expected, static_cast<int>(pick),
                                 std::memory_order_acq_rel);
  return static_cast<Isa>(g_auto.load(std::memory_order_acquire));
}

}  // namespace

const char* to_string(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kNeon:
      return "neon";
    case Isa::kSse2:
      return "sse2";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "scalar";
}

int isa_width(Isa isa) noexcept {
  switch (isa) {
    case Isa::kScalar:
      return 1;
    case Isa::kNeon:
    case Isa::kSse2:
      return 2;
    case Isa::kAvx2:
      return 4;
    case Isa::kAvx512:
      return 8;
  }
  return 1;
}

bool parse_isa(std::string_view text, Isa& out) noexcept {
  if (text == "scalar") {
    out = Isa::kScalar;
  } else if (text == "neon") {
    out = Isa::kNeon;
  } else if (text == "sse2") {
    out = Isa::kSse2;
  } else if (text == "avx2") {
    out = Isa::kAvx2;
  } else if (text == "avx512") {
    out = Isa::kAvx512;
  } else {
    return false;
  }
  return true;
}

const std::vector<Isa>& compiled_isas() {
  static const std::vector<Isa> isas = probe_compiled();
  return isas;
}

Isa detected_isa() { return compiled_isas().back(); }

Isa active_isa() {
  const int forced = g_forced.load(std::memory_order_acquire);
  if (forced != kUnset) return static_cast<Isa>(forced);
  return resolve_auto();
}

const char* active_isa_name() { return to_string(active_isa()); }

bool force_isa(Isa isa) {
  if (!is_available(isa)) return false;
  g_forced.store(static_cast<int>(isa), std::memory_order_release);
  return true;
}

void reset_forced_isa() {
  g_forced.store(kUnset, std::memory_order_release);
  g_auto.store(kUnset, std::memory_order_release);
}

}  // namespace cmesolve::util::simd

namespace cmesolve::util::simdk {

const KernelOps& kernels_for(simd::Isa isa) {
  switch (isa) {
#if defined(CMESOLVE_SIMD_HAVE_SSE2)
    case simd::Isa::kSse2:
      return sse2::kOps;
#endif
#if defined(CMESOLVE_SIMD_HAVE_AVX2)
    case simd::Isa::kAvx2:
      return avx2::kOps;
#endif
#if defined(CMESOLVE_SIMD_HAVE_AVX512)
    case simd::Isa::kAvx512:
      return avx512::kOps;
#endif
#if defined(CMESOLVE_SIMD_HAVE_NEON)
    case simd::Isa::kNeon:
      return neon::kOps;
#endif
    default:
      return scalar::kOps;
  }
}

const KernelOps& kernels() { return kernels_for(simd::active_isa()); }

}  // namespace cmesolve::util::simdk
