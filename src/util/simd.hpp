#pragma once
//
// Explicit SIMD layer: fixed-width vector types + one-time runtime dispatch.
//
// Two halves, one header:
//
//   1. A thin fixed-width vector abstraction over doubles (scalar / SSE2 /
//      AVX2 / AVX-512, NEON on aarch64) with load/store, masked load/store,
//      broadcast, the arithmetic the solver kernels need, and fused
//      multiply-add. The types only exist in translation units compiled
//      with the matching -m flags (the per-ISA kernel TUs under
//      src/util/simd_kernels_*.cpp); everything else uses only the Isa
//      enum and the dispatch API below.
//
//   2. Runtime dispatch: at first use the library probes the CPU once,
//      picks the widest ISA that is BOTH compiled in and supported, and
//      routes every kernel call through a function-pointer table
//      (util/simd_kernels.hpp). CMESOLVE_SIMD=scalar|sse2|avx2|avx512|auto
//      forces a narrower path for testing, force_isa() does the same
//      programmatically, and the run report records the selection under
//      the fixed provenance key "simd".
//
// Bitwise-determinism contract (see DESIGN.md §16): every kernel
// vectorizes across independent accumulators — rows of the stencil sweep,
// lanes of the interleaved batch — and NEVER inside a row's reduction, so
// each element's value is the same chain of IEEE operations at every
// width. The kernels spell multiplies and adds out separately and their
// TUs compile with -ffp-contract=off, so no path fuses a*b+c into an FMA
// behind the scalar reference's back. fmadd() below is provided for
// throughput experiments but is NOT used on any parity-critical path.
//
#include <bit>
#include <cmath>
#include <cstdint>
#include <string_view>
#include <vector>

#if defined(__SSE2__)
#include <immintrin.h>
#endif
#if defined(__ARM_NEON)
#include <arm_neon.h>
#endif

namespace cmesolve::util::simd {

// ---------------------------------------------------------------------------
// Dispatch API (implemented in simd.cpp; usable from any TU).
// ---------------------------------------------------------------------------

/// Instruction sets the kernel layer can be built for, narrowest first.
/// The numeric order is the preference order of auto-dispatch.
enum class Isa : std::uint8_t {
  kScalar = 0,
  kNeon = 1,    ///< aarch64 baseline, 2 doubles
  kSse2 = 2,    ///< x86-64 baseline, 2 doubles
  kAvx2 = 3,    ///< 4 doubles (+FMA for the fmadd() helper)
  kAvx512 = 4,  ///< 8 doubles
};

[[nodiscard]] const char* to_string(Isa isa) noexcept;
/// Doubles per vector register of the ISA.
[[nodiscard]] int isa_width(Isa isa) noexcept;
/// Parses the CMESOLVE_SIMD spelling ("scalar", "sse2", "avx2", "avx512",
/// "neon"). Returns false on anything else ("auto" included — the caller
/// treats non-parses as auto).
[[nodiscard]] bool parse_isa(std::string_view text, Isa& out) noexcept;

/// ISAs that are compiled into this binary AND supported by the running
/// CPU, ascending (kScalar is always present).
[[nodiscard]] const std::vector<Isa>& compiled_isas();

/// Widest entry of compiled_isas() — what auto-dispatch selects.
[[nodiscard]] Isa detected_isa();

/// The ISA the kernel table currently routes to. Resolution order, decided
/// once and cached: force_isa() override > CMESOLVE_SIMD environment
/// variable > detected_isa(). An environment request for an ISA that is
/// not available clamps to the widest available ISA not exceeding it.
[[nodiscard]] Isa active_isa();
/// to_string(active_isa()) — the value the run-report provenance records.
[[nodiscard]] const char* active_isa_name();

/// Force the dispatch to `isa` for testing. Returns false (and changes
/// nothing) when the ISA is not in compiled_isas().
bool force_isa(Isa isa);
/// Drop any force_isa() override AND the cached environment resolution:
/// the next active_isa() call re-reads CMESOLVE_SIMD and re-probes.
void reset_forced_isa();

// ---------------------------------------------------------------------------
// Fixed-width vector types. Each is only defined where its ISA macro is —
// i.e. inside a kernel TU compiled with the matching -m flags.
// ---------------------------------------------------------------------------

/// Width-1 reference lane. The scalar kernels compile from exactly this,
/// so "vector path == scalar path" is one elementwise op at every width.
struct VecScalar {
  static constexpr int kWidth = 1;
  double v;

  static VecScalar load(const double* p) noexcept { return {*p}; }
  static VecScalar broadcast(double a) noexcept { return {a}; }
  static VecScalar zero() noexcept { return {0.0}; }
  void store(double* p) const noexcept { *p = v; }
  /// Masked lanes read as 0 / keep the destination. Masks are all-ones /
  /// all-zero bit patterns per lane (see lane masks in the kernels).
  static VecScalar masked_load(const double* p, VecScalar m) noexcept {
    return select(m, load(p), zero());
  }
  void masked_store(double* p, VecScalar m) const noexcept {
    select(m, *this, load(p)).store(p);
  }
  friend VecScalar operator+(VecScalar a, VecScalar b) noexcept {
    return {a.v + b.v};
  }
  friend VecScalar operator-(VecScalar a, VecScalar b) noexcept {
    return {a.v - b.v};
  }
  friend VecScalar operator*(VecScalar a, VecScalar b) noexcept {
    return {a.v * b.v};
  }
  friend VecScalar operator/(VecScalar a, VecScalar b) noexcept {
    return {a.v / b.v};
  }
  /// Exact sign flip (matches unary minus: -(+0) == -0).
  [[nodiscard]] VecScalar neg() const noexcept { return {-v}; }
  /// Single-rounded a*b+c. NOT used on parity-critical paths.
  static VecScalar fmadd(VecScalar a, VecScalar b, VecScalar c) noexcept {
    return {std::fma(a.v, b.v, c.v)};
  }
  /// Per-lane bit select: m ? a : b with all-ones/all-zero lane masks.
  static VecScalar select(VecScalar m, VecScalar a, VecScalar b) noexcept {
    const auto mm = std::bit_cast<std::uint64_t>(m.v);
    return {std::bit_cast<double>((std::bit_cast<std::uint64_t>(a.v) & mm) |
                                  (std::bit_cast<std::uint64_t>(b.v) & ~mm))};
  }
  /// True when any lane compares != 0.0 (unordered: NaN lanes count as
  /// nonzero) — block-skip tests over sparse streams.
  [[nodiscard]] bool any_nonzero() const noexcept { return !(v == 0.0); }
};

#if defined(__SSE2__)
/// 2 doubles (x86-64 baseline).
struct VecSse2 {
  static constexpr int kWidth = 2;
  __m128d v;

  static VecSse2 load(const double* p) noexcept { return {_mm_loadu_pd(p)}; }
  static VecSse2 broadcast(double a) noexcept { return {_mm_set1_pd(a)}; }
  static VecSse2 zero() noexcept { return {_mm_setzero_pd()}; }
  void store(double* p) const noexcept { _mm_storeu_pd(p, v); }
  static VecSse2 masked_load(const double* p, VecSse2 m) noexcept {
    return select(m, load(p), zero());
  }
  void masked_store(double* p, VecSse2 m) const noexcept {
    select(m, *this, load(p)).store(p);
  }
  friend VecSse2 operator+(VecSse2 a, VecSse2 b) noexcept {
    return {_mm_add_pd(a.v, b.v)};
  }
  friend VecSse2 operator-(VecSse2 a, VecSse2 b) noexcept {
    return {_mm_sub_pd(a.v, b.v)};
  }
  friend VecSse2 operator*(VecSse2 a, VecSse2 b) noexcept {
    return {_mm_mul_pd(a.v, b.v)};
  }
  friend VecSse2 operator/(VecSse2 a, VecSse2 b) noexcept {
    return {_mm_div_pd(a.v, b.v)};
  }
  [[nodiscard]] VecSse2 neg() const noexcept {
    return {_mm_xor_pd(v, _mm_set1_pd(-0.0))};
  }
  static VecSse2 fmadd(VecSse2 a, VecSse2 b, VecSse2 c) noexcept {
#if defined(__FMA__)
    return {_mm_fmadd_pd(a.v, b.v, c.v)};
#else
    return {_mm_set_pd(std::fma(_mm_cvtsd_f64(_mm_unpackhi_pd(a.v, a.v)),
                                _mm_cvtsd_f64(_mm_unpackhi_pd(b.v, b.v)),
                                _mm_cvtsd_f64(_mm_unpackhi_pd(c.v, c.v))),
                       std::fma(_mm_cvtsd_f64(a.v), _mm_cvtsd_f64(b.v),
                                _mm_cvtsd_f64(c.v)))};
#endif
  }
  static VecSse2 select(VecSse2 m, VecSse2 a, VecSse2 b) noexcept {
    return {_mm_or_pd(_mm_and_pd(m.v, a.v), _mm_andnot_pd(m.v, b.v))};
  }
  [[nodiscard]] bool any_nonzero() const noexcept {
    // NEQ is an unordered comparison: NaN lanes report nonzero.
    return _mm_movemask_pd(_mm_cmpneq_pd(v, _mm_setzero_pd())) != 0;
  }
};
#endif  // __SSE2__

#if defined(__AVX2__)
/// 4 doubles. Compiled with -mavx2 -mfma in its kernel TU.
struct VecAvx2 {
  static constexpr int kWidth = 4;
  __m256d v;

  static VecAvx2 load(const double* p) noexcept { return {_mm256_loadu_pd(p)}; }
  static VecAvx2 broadcast(double a) noexcept { return {_mm256_set1_pd(a)}; }
  static VecAvx2 zero() noexcept { return {_mm256_setzero_pd()}; }
  void store(double* p) const noexcept { _mm256_storeu_pd(p, v); }
  /// Native masked forms: lanes with the mask's top bit clear are not
  /// touched (load reads 0, store leaves memory alone).
  static VecAvx2 masked_load(const double* p, VecAvx2 m) noexcept {
    return {_mm256_maskload_pd(p, _mm256_castpd_si256(m.v))};
  }
  void masked_store(double* p, VecAvx2 m) const noexcept {
    _mm256_maskstore_pd(p, _mm256_castpd_si256(m.v), v);
  }
  friend VecAvx2 operator+(VecAvx2 a, VecAvx2 b) noexcept {
    return {_mm256_add_pd(a.v, b.v)};
  }
  friend VecAvx2 operator-(VecAvx2 a, VecAvx2 b) noexcept {
    return {_mm256_sub_pd(a.v, b.v)};
  }
  friend VecAvx2 operator*(VecAvx2 a, VecAvx2 b) noexcept {
    return {_mm256_mul_pd(a.v, b.v)};
  }
  friend VecAvx2 operator/(VecAvx2 a, VecAvx2 b) noexcept {
    return {_mm256_div_pd(a.v, b.v)};
  }
  [[nodiscard]] VecAvx2 neg() const noexcept {
    return {_mm256_xor_pd(v, _mm256_set1_pd(-0.0))};
  }
  static VecAvx2 fmadd(VecAvx2 a, VecAvx2 b, VecAvx2 c) noexcept {
    return {_mm256_fmadd_pd(a.v, b.v, c.v)};
  }
  static VecAvx2 select(VecAvx2 m, VecAvx2 a, VecAvx2 b) noexcept {
    return {_mm256_blendv_pd(b.v, a.v, m.v)};
  }
  [[nodiscard]] bool any_nonzero() const noexcept {
    return _mm256_movemask_pd(
               _mm256_cmp_pd(v, _mm256_setzero_pd(), _CMP_NEQ_UQ)) != 0;
  }
};
#endif  // __AVX2__

#if defined(__AVX512F__)
/// 8 doubles. Compiled with -mavx512f in its kernel TU; the lane-mask
/// bridge derives a __mmask8 from the all-ones/all-zero double mask so the
/// native masked instructions apply.
struct VecAvx512 {
  static constexpr int kWidth = 8;
  __m512d v;

  static VecAvx512 load(const double* p) noexcept {
    return {_mm512_loadu_pd(p)};
  }
  static VecAvx512 broadcast(double a) noexcept { return {_mm512_set1_pd(a)}; }
  static VecAvx512 zero() noexcept { return {_mm512_setzero_pd()}; }
  void store(double* p) const noexcept { _mm512_storeu_pd(p, v); }
  static __mmask8 to_mask(VecAvx512 m) noexcept {
    return _mm512_cmpneq_epi64_mask(_mm512_castpd_si512(m.v),
                                    _mm512_setzero_si512());
  }
  static VecAvx512 masked_load(const double* p, VecAvx512 m) noexcept {
    return {_mm512_maskz_loadu_pd(to_mask(m), p)};
  }
  void masked_store(double* p, VecAvx512 m) const noexcept {
    _mm512_mask_storeu_pd(p, to_mask(m), v);
  }
  friend VecAvx512 operator+(VecAvx512 a, VecAvx512 b) noexcept {
    return {_mm512_add_pd(a.v, b.v)};
  }
  friend VecAvx512 operator-(VecAvx512 a, VecAvx512 b) noexcept {
    return {_mm512_sub_pd(a.v, b.v)};
  }
  friend VecAvx512 operator*(VecAvx512 a, VecAvx512 b) noexcept {
    return {_mm512_mul_pd(a.v, b.v)};
  }
  friend VecAvx512 operator/(VecAvx512 a, VecAvx512 b) noexcept {
    return {_mm512_div_pd(a.v, b.v)};
  }
  [[nodiscard]] VecAvx512 neg() const noexcept {
    return {_mm512_castsi512_pd(_mm512_xor_si512(
        _mm512_castpd_si512(v),
        _mm512_castpd_si512(_mm512_set1_pd(-0.0))))};
  }
  static VecAvx512 fmadd(VecAvx512 a, VecAvx512 b, VecAvx512 c) noexcept {
    return {_mm512_fmadd_pd(a.v, b.v, c.v)};
  }
  static VecAvx512 select(VecAvx512 m, VecAvx512 a, VecAvx512 b) noexcept {
    return {_mm512_mask_blend_pd(to_mask(m), b.v, a.v)};
  }
  [[nodiscard]] bool any_nonzero() const noexcept {
    return _mm512_cmp_pd_mask(v, _mm512_setzero_pd(), _CMP_NEQ_UQ) != 0;
  }
};
#endif  // __AVX512F__

#if defined(__ARM_NEON) && defined(__aarch64__)
/// 2 doubles (aarch64 baseline — no runtime probe needed).
struct VecNeon {
  static constexpr int kWidth = 2;
  float64x2_t v;

  static VecNeon load(const double* p) noexcept { return {vld1q_f64(p)}; }
  static VecNeon broadcast(double a) noexcept { return {vdupq_n_f64(a)}; }
  static VecNeon zero() noexcept { return {vdupq_n_f64(0.0)}; }
  void store(double* p) const noexcept { vst1q_f64(p, v); }
  static VecNeon masked_load(const double* p, VecNeon m) noexcept {
    return select(m, load(p), zero());
  }
  void masked_store(double* p, VecNeon m) const noexcept {
    select(m, *this, load(p)).store(p);
  }
  friend VecNeon operator+(VecNeon a, VecNeon b) noexcept {
    return {vaddq_f64(a.v, b.v)};
  }
  friend VecNeon operator-(VecNeon a, VecNeon b) noexcept {
    return {vsubq_f64(a.v, b.v)};
  }
  friend VecNeon operator*(VecNeon a, VecNeon b) noexcept {
    return {vmulq_f64(a.v, b.v)};
  }
  friend VecNeon operator/(VecNeon a, VecNeon b) noexcept {
    return {vdivq_f64(a.v, b.v)};
  }
  [[nodiscard]] VecNeon neg() const noexcept { return {vnegq_f64(v)}; }
  static VecNeon fmadd(VecNeon a, VecNeon b, VecNeon c) noexcept {
    return {vfmaq_f64(c.v, a.v, b.v)};
  }
  static VecNeon select(VecNeon m, VecNeon a, VecNeon b) noexcept {
    return {vbslq_f64(vreinterpretq_u64_f64(m.v), a.v, b.v)};
  }
  [[nodiscard]] bool any_nonzero() const noexcept {
    // vceqq is an ordered equality: NaN lanes compare not-equal-to-zero
    // (mask 0), so they count as nonzero, matching the x86 NEQ_UQ forms.
    const uint64x2_t eq = vceqq_f64(v, vdupq_n_f64(0.0));
    return (vgetq_lane_u64(eq, 0) & vgetq_lane_u64(eq, 1)) !=
           ~std::uint64_t{0};
  }
};
#endif  // __ARM_NEON && __aarch64__

}  // namespace cmesolve::util::simd
