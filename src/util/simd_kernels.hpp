#pragma once
//
// Function-pointer kernel table for the explicit SIMD layer.
//
// Each entry set is compiled once per ISA from the same width-templated
// bodies (simd_kernels_impl.hpp) into its own translation unit with the
// matching -m flags plus -ffp-contract=off. kernels() resolves the table
// through util::simd::active_isa() — one atomic load on the hot path.
//
// Bitwise contract: for every kernel, element i of the output is produced
// by the exact same sequence of IEEE-754 operations at every width and
// every ISA (vectorization is across independent elements/lanes, never
// inside a reduction), so all tables produce bit-identical results. The
// dispatch-parity property test (tests/test_simd_dispatch.cpp) enforces
// this end-to-end through the solvers.
//
#include <cstddef>
#include <cstdint>

#include "util/simd.hpp"
#include "util/types.hpp"

namespace cmesolve::util::simdk {

/// One batched-lane stencil sweep chunk (BatchedStencilOperator).
/// Layout is point-major: element (row i, lane q) lives at x[i*k + q].
/// Lane freezing is mapped onto the SIMD path by zeroing the frozen
/// lanes' coefficients (coef[r*k+q] == 0 for frozen q): the frozen lane
/// then accumulates exact zeros into y, which the caller's "frozen lanes
/// hold zero garbage" contract already permits, while active lanes see
/// the identical multiply/add chain as the dense case.
struct BatchedSweepArgs {
  const real_t* x;            ///< [nrows*k] interleaved input
  real_t* y;                  ///< [nrows*k] interleaved output (chunk zeroed here)
  const real_t* cache;        ///< [nreactions][nrows] unit propensities U[r][src]
  const real_t* coef;         ///< [nreactions][k] lane coefficients (0 = frozen)
  const std::int64_t* strides;  ///< [nreactions] row stride of each reaction
  std::size_t nreactions;
  std::int64_t nrows;
  std::size_t k;              ///< lanes (batch width)
};

/// Per-ISA entry points. All pointers are non-null in every table.
struct KernelOps {
  simd::Isa isa;
  const char* name;  ///< to_string(isa)
  int width;         ///< doubles per vector

  /// y[i] += a * x[i]
  void (*axpy)(real_t* y, const real_t* x, real_t a, std::size_t n);
  /// y[i] += c[i] * x[i]   (cached stencil sweep window, residual pass)
  void (*cmul_add)(real_t* y, const real_t* c, const real_t* x,
                   std::size_t n);
  /// y[i] += s1 * (s2 * c[i]) * x[i]   (recompute-mode fused tile window;
  /// the parenthesisation matches the scalar source exactly)
  void (*scaled_cmul_add)(real_t* y, const real_t* c, const real_t* x,
                          real_t s1, real_t s2, std::size_t n);
  /// x[i] *= a
  void (*scale)(real_t* x, real_t a, std::size_t n);
  /// Fused Jacobi scale+swap: v = -nx[i]/d[i]; nx[i] = x[i]; x[i] = v.
  void (*scale_swap)(real_t* x, real_t* nx, const real_t* d, std::size_t n);
  /// Damped variant: v = (1-omega)*x[i] - omega*nx[i]/d[i]; nx[i] = x[i];
  /// x[i] = v. Kept separate from scale_swap — at omega == 1 the damped
  /// formula is NOT bitwise the undamped one (signed-zero differences).
  void (*scale_swap_damped)(real_t* x, real_t* nx, const real_t* d,
                            real_t omega, std::size_t n);
  /// Lane-masked scale+swap over an interleaved [rows][k] block: active
  /// lanes get the scale_swap update, frozen lanes keep their bits
  /// (mask mapped onto SIMD blends; frozen nx lanes receive x's bits —
  /// dead by the frozen-lane contract).
  void (*lane_scale_swap)(real_t* x, real_t* nx, const real_t* d,
                          std::size_t rows, std::size_t k,
                          const std::uint8_t* lane_active);
  void (*lane_scale_swap_damped)(real_t* x, real_t* nx, const real_t* d,
                                 real_t omega, std::size_t rows,
                                 std::size_t k,
                                 const std::uint8_t* lane_active);
  /// Lane-masked rescale over [rows][k]: x[i*k+q] *= inv[q] where
  /// scale_lane[q] != 0; other lanes keep their bits.
  void (*lane_scale)(real_t* x, std::size_t rows, std::size_t k,
                     const real_t* inv, const std::uint8_t* scale_lane);
  /// Batched stencil sweep over rows [cb, ce), row-outer: each row's k-lane
  /// vector accumulates y[i*k+q] = sum_r (coef[r*k+q]*u) * x[(i-s_r)*k+q)
  /// across reactions IN REACTION ORDER (the per-row summation order the
  /// determinism contract fixes) and is written once, with the per-row
  /// u == 0 skip — vectorized across the k lanes, and across rows for the
  /// unit-stream zero scan.
  void (*batched_sweep)(const BatchedSweepArgs& a, std::int64_t cb,
                        std::int64_t ce);
};

/// The table for simd::active_isa(). Hot path: one relaxed atomic load
/// after first-use resolution.
const KernelOps& kernels();

/// The table for a specific ISA; falls back to scalar when `isa` is not
/// compiled in (callers that care should consult simd::compiled_isas()).
const KernelOps& kernels_for(simd::Isa isa);

}  // namespace cmesolve::util::simdk
