// AVX2 (4-wide) kernel table. Compiled with -mavx2 -mfma -ffp-contract=off:
// FMA is enabled so VecAvx2::fmadd exists for throughput experiments, but
// contraction is off so the kernels' explicit mul-then-add chains are never
// fused behind the scalar reference's back.
#if defined(__AVX2__)
#define CMESOLVE_SIMD_TU_NS avx2
#define CMESOLVE_SIMD_TU_ISA kAvx2
#define CMESOLVE_SIMD_TU_VEC VecAvx2
#include "util/simd_kernels_impl.hpp"
#endif
