// AVX-512 (8-wide) kernel table. Compiled with -mavx512f -ffp-contract=off.
#if defined(__AVX512F__)
#define CMESOLVE_SIMD_TU_NS avx512
#define CMESOLVE_SIMD_TU_ISA kAvx512
#define CMESOLVE_SIMD_TU_VEC VecAvx512
#include "util/simd_kernels_impl.hpp"
#endif
