// Width-templated kernel bodies for the explicit SIMD layer. This header
// is included — once per ISA — by the simd_kernels_<isa>.cpp translation
// units, which define before inclusion:
//
//   CMESOLVE_SIMD_TU_NS   token: the per-ISA namespace (scalar, sse2, ...)
//   CMESOLVE_SIMD_TU_ISA  token: the Isa enumerator (kScalar, kSse2, ...)
//   CMESOLVE_SIMD_TU_VEC  token: the vector type (VecScalar, VecSse2, ...)
//
// Every TU compiles these bodies with -ffp-contract=off, so the spelled-out
// multiply-then-add chains below are what actually executes — no silent FMA
// fusion — and element i's value is the same at every width. Vector loops
// cover the aligned prefix; the scalar tail loop is the width-1 reference
// the vector lanes must match bitwise (at kW == 1 only the tails compile,
// and that IS the scalar kernel table).
//
// NOLINTBEGIN — included multiple times by design; no include guard.
#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "util/simd.hpp"
#include "util/simd_kernels.hpp"

namespace cmesolve::util::simdk {
namespace CMESOLVE_SIMD_TU_NS {

namespace {

using V = simd::CMESOLVE_SIMD_TU_VEC;
constexpr int kW = V::kWidth;

// How far ahead (in rows) the batched sweep prefetches the next tile of
// the gathered source window. Tuned loosely: far enough to cover a DRAM
// access at typical lane counts, near enough to stay inside the chunk.
constexpr std::int64_t kPrefetchRows = 8;

inline void prefetch_ro(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 0 /*read*/, 3 /*high locality*/);
#else
  (void)p;
#endif
}

inline void prefetch_rw(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, 1 /*write*/, 3 /*high locality*/);
#else
  (void)p;
#endif
}

// Expands a uint8 lane mask into per-lane all-ones / all-zero double bit
// patterns so the vector loops can blend. Only the masked lane_* kernels
// pay for this, once per chunk call (amortized over the chunk's rows).
[[maybe_unused]] std::vector<double> expand_lane_mask(const std::uint8_t* m,
                                                      std::size_t k) {
  std::vector<double> out(k);
  for (std::size_t q = 0; q < k; ++q) {
    out[q] = m[q] ? std::bit_cast<double>(~std::uint64_t{0}) : 0.0;
  }
  return out;
}

void axpy(real_t* y, const real_t* x, real_t a, std::size_t n) {
  std::size_t i = 0;
  if constexpr (kW > 1) {
    const V va = V::broadcast(a);
    for (; i + kW <= n; i += kW) {
      (V::load(y + i) + va * V::load(x + i)).store(y + i);
    }
  }
  for (; i < n; ++i) {
    const real_t t = a * x[i];
    y[i] += t;
  }
}

void cmul_add(real_t* y, const real_t* c, const real_t* x, std::size_t n) {
  std::size_t i = 0;
  if constexpr (kW > 1) {
    for (; i + kW <= n; i += kW) {
      (V::load(y + i) + V::load(c + i) * V::load(x + i)).store(y + i);
    }
  }
  for (; i < n; ++i) {
    const real_t t = c[i] * x[i];
    y[i] += t;
  }
}

void scaled_cmul_add(real_t* y, const real_t* c, const real_t* x, real_t s1,
                     real_t s2, std::size_t n) {
  std::size_t i = 0;
  if constexpr (kW > 1) {
    const V vs1 = V::broadcast(s1);
    const V vs2 = V::broadcast(s2);
    for (; i + kW <= n; i += kW) {
      // Same association as the scalar source: s1 * (s2*c[i]) * x[i]
      // parses as ((s1 * (s2*c[i])) * x[i]).
      (V::load(y + i) + (vs1 * (vs2 * V::load(c + i))) * V::load(x + i))
          .store(y + i);
    }
  }
  for (; i < n; ++i) {
    const real_t t = s1 * (s2 * c[i]) * x[i];
    y[i] += t;
  }
}

void scale(real_t* x, real_t a, std::size_t n) {
  std::size_t i = 0;
  if constexpr (kW > 1) {
    const V va = V::broadcast(a);
    for (; i + kW <= n; i += kW) {
      (V::load(x + i) * va).store(x + i);
    }
  }
  for (; i < n; ++i) {
    x[i] *= a;
  }
}

void scale_swap(real_t* x, real_t* nx, const real_t* d, std::size_t n) {
  std::size_t i = 0;
  if constexpr (kW > 1) {
    for (; i + kW <= n; i += kW) {
      const V vx = V::load(x + i);
      const V v = V::load(nx + i).neg() / V::load(d + i);
      vx.store(nx + i);
      v.store(x + i);
    }
  }
  for (; i < n; ++i) {
    const real_t v = -nx[i] / d[i];
    nx[i] = x[i];
    x[i] = v;
  }
}

void scale_swap_damped(real_t* x, real_t* nx, const real_t* d, real_t omega,
                       std::size_t n) {
  const real_t w1 = 1.0 - omega;
  std::size_t i = 0;
  if constexpr (kW > 1) {
    const V vw1 = V::broadcast(w1);
    const V vom = V::broadcast(omega);
    for (; i + kW <= n; i += kW) {
      const V vx = V::load(x + i);
      const V v = vw1 * vx - (vom * V::load(nx + i)) / V::load(d + i);
      vx.store(nx + i);
      v.store(x + i);
    }
  }
  for (; i < n; ++i) {
    const real_t v = w1 * x[i] - (omega * nx[i]) / d[i];
    nx[i] = x[i];
    x[i] = v;
  }
}

void lane_scale_swap(real_t* x, real_t* nx, const real_t* d, std::size_t rows,
                     std::size_t k, const std::uint8_t* lane_active) {
  if constexpr (kW > 1) {
    if (k >= static_cast<std::size_t>(kW)) {
      const std::vector<double> mask = expand_lane_mask(lane_active, k);
      for (std::size_t i = 0; i < rows; ++i) {
        real_t* px = x + i * k;
        real_t* pn = nx + i * k;
        const real_t* pd = d + i * k;
        std::size_t q = 0;
        for (; q + kW <= k; q += kW) {
          const V m = V::load(mask.data() + q);
          const V vx = V::load(px + q);
          const V vn = V::load(pn + q);
          // Frozen lanes divide garbage by a nonzero diagonal and get
          // blended away — finite/nonzero never traps, result is dead.
          const V v = vn.neg() / V::load(pd + q);
          V::select(m, vx, vn).store(pn + q);
          V::select(m, v, vx).store(px + q);
        }
        for (; q < k; ++q) {
          if (!lane_active[q]) continue;
          const real_t v = -pn[q] / pd[q];
          pn[q] = px[q];
          px[q] = v;
        }
      }
      return;
    }
  }
  for (std::size_t i = 0; i < rows; ++i) {
    real_t* px = x + i * k;
    real_t* pn = nx + i * k;
    const real_t* pd = d + i * k;
    for (std::size_t q = 0; q < k; ++q) {
      if (!lane_active[q]) continue;
      const real_t v = -pn[q] / pd[q];
      pn[q] = px[q];
      px[q] = v;
    }
  }
}

void lane_scale_swap_damped(real_t* x, real_t* nx, const real_t* d,
                            real_t omega, std::size_t rows, std::size_t k,
                            const std::uint8_t* lane_active) {
  const real_t w1 = 1.0 - omega;
  if constexpr (kW > 1) {
    if (k >= static_cast<std::size_t>(kW)) {
      const std::vector<double> mask = expand_lane_mask(lane_active, k);
      const V vw1 = V::broadcast(w1);
      const V vom = V::broadcast(omega);
      for (std::size_t i = 0; i < rows; ++i) {
        real_t* px = x + i * k;
        real_t* pn = nx + i * k;
        const real_t* pd = d + i * k;
        std::size_t q = 0;
        for (; q + kW <= k; q += kW) {
          const V m = V::load(mask.data() + q);
          const V vx = V::load(px + q);
          const V vn = V::load(pn + q);
          const V v = vw1 * vx - (vom * vn) / V::load(pd + q);
          V::select(m, vx, vn).store(pn + q);
          V::select(m, v, vx).store(px + q);
        }
        for (; q < k; ++q) {
          if (!lane_active[q]) continue;
          const real_t v = w1 * px[q] - (omega * pn[q]) / pd[q];
          pn[q] = px[q];
          px[q] = v;
        }
      }
      return;
    }
  }
  for (std::size_t i = 0; i < rows; ++i) {
    real_t* px = x + i * k;
    real_t* pn = nx + i * k;
    const real_t* pd = d + i * k;
    for (std::size_t q = 0; q < k; ++q) {
      if (!lane_active[q]) continue;
      const real_t v = w1 * px[q] - (omega * pn[q]) / pd[q];
      pn[q] = px[q];
      px[q] = v;
    }
  }
}

void lane_scale(real_t* x, std::size_t rows, std::size_t k, const real_t* inv,
                const std::uint8_t* scale_lane) {
  if constexpr (kW > 1) {
    if (k >= static_cast<std::size_t>(kW)) {
      const std::vector<double> mask = expand_lane_mask(scale_lane, k);
      for (std::size_t i = 0; i < rows; ++i) {
        real_t* row = x + i * k;
        std::size_t q = 0;
        for (; q + kW <= k; q += kW) {
          const V m = V::load(mask.data() + q);
          const V vx = V::load(row + q);
          V::select(m, vx * V::load(inv + q), vx).store(row + q);
        }
        for (; q < k; ++q) {
          if (scale_lane[q]) row[q] *= inv[q];
        }
      }
      return;
    }
  }
  for (std::size_t i = 0; i < rows; ++i) {
    real_t* row = x + i * k;
    for (std::size_t q = 0; q < k; ++q) {
      if (scale_lane[q]) row[q] *= inv[q];
    }
  }
}

// Batched lane sweep. Two walk orders, one bit pattern: whether the loop
// nest is reaction-outer or row-outer, row i's K-lane vector receives its
// contributions in reaction order, so the IEEE sum per (row, lane) is the
// same chain either way and the strategy switch below is invisible to the
// determinism contract (the dispatch-parity suite pins this end-to-end).
//
//   * reaction-outer: zero-fill y, then accumulate one reaction's whole
//     window at a time, block-skipping the unit stream's zero runs. The
//     interleaved y (and a lagged x window) is re-walked once per
//     reaction — cheap while those streams are cache-resident, and the
//     scan only touches contributing rows.
//   * row-outer: one pass over rows; each row's lanes accumulate across
//     all reactions in registers and y is written ONCE. A fraction of the
//     memory traffic (y once, x as lag-grouped forward streams), which is
//     what matters once the sweep outgrows the cache and hits the memory
//     wall.
//
// The crossover is sized by the sweep's total stream footprint.
constexpr double kRowOuterBytes = 8.0 * 1024 * 1024;

void batched_sweep(const BatchedSweepArgs& a, std::int64_t cb,
                   std::int64_t ce) {
  const std::size_t k = a.k;
  // Per-reaction stream pointers and chunk-clamped windows. Real networks
  // have a few dozen reactions at most; the heap fallback keeps the kernel
  // correct for synthetic extremes.
  struct RSpan {
    const real_t* ck;
    const real_t* cf;
    std::int64_t lo, hi, s;
  };
  constexpr std::size_t kMaxStackReactions = 64;
  RSpan rstack[kMaxStackReactions];
  std::vector<RSpan> rheap;
  RSpan* rs = rstack;
  if (a.nreactions > kMaxStackReactions) {
    rheap.resize(a.nreactions);
    rs = rheap.data();
  }
  // The stencil windows only clip rows near the box faces; in the interior
  // every reaction covers the whole chunk. Split the chunk once into
  // [cb, full_lo) / [full_lo, full_hi) / [full_hi, ce): the middle segment
  // runs a branch-lighter loop with no per-(row, reaction) window tests.
  std::int64_t full_lo = cb;
  std::int64_t full_hi = ce;
  std::int64_t s_min = 0;  // most-negative stride = the leading x stream
  for (std::size_t r = 0; r < a.nreactions; ++r) {
    const std::int64_t s = a.strides[r];
    rs[r].s = s;
    rs[r].lo = std::max<std::int64_t>(cb, s > 0 ? s : 0);
    rs[r].hi = std::min<std::int64_t>(ce, s < 0 ? a.nrows + s : a.nrows);
    rs[r].ck = a.cache + r * static_cast<std::size_t>(a.nrows);
    rs[r].cf = a.coef + r * k;
    full_lo = std::max(full_lo, rs[r].lo);
    full_hi = std::min(full_hi, rs[r].hi);
    s_min = std::min(s_min, s);
  }
  if (full_hi < full_lo) full_hi = full_lo;

  // With ~2 streams per reaction (unit table + lagged x window) the stream
  // count outruns the hardware prefetchers, so the sweep prefetches its own
  // tiles: the y destination and the leading x stream every row, and every
  // unit-table stream once per 8-row block.
  const auto prefetch_row = [&](std::int64_t i, std::int64_t rb) {
    if (i + kPrefetchRows < ce) {
      prefetch_rw(a.y + static_cast<std::size_t>(i + kPrefetchRows) * k);
    }
    const std::int64_t xlead = i - s_min + kPrefetchRows;
    if (xlead < a.nrows) {
      prefetch_ro(a.x + static_cast<std::size_t>(xlead) * k);
    }
    if (((i - rb) & 7) == 0) {
      constexpr std::int64_t kCacheAhead = 64;  // 8 lines of unit doubles
      for (std::size_t r = 0; r < a.nreactions; ++r) {
        const std::int64_t ci = i - rs[r].s + kCacheAhead;
        if (ci >= 0 && ci < a.nrows) prefetch_ro(rs[r].ck + ci);
      }
    }
  };

  const bool row_outer =
      static_cast<double>(a.nrows) * static_cast<double>(sizeof(real_t)) *
          (2.0 * static_cast<double>(k) + static_cast<double>(a.nreactions)) >
      kRowOuterBytes;

  if (!row_outer) {
    // Reaction-outer: cache-resident regime.
    std::fill(a.y + static_cast<std::size_t>(cb) * k,
              a.y + static_cast<std::size_t>(ce) * k, real_t{0});
    for (std::size_t r = 0; r < a.nreactions; ++r) {
      const std::int64_t lo = rs[r].lo;
      const std::int64_t hi = rs[r].hi;
      const std::int64_t s = rs[r].s;
      const real_t* ck = rs[r].ck;
      const real_t* cf = rs[r].cf;
      if constexpr (kW > 1) {
        // The lane coefficients are row-invariant: preload their vectors
        // once per reaction instead of once per row.
        constexpr std::size_t kMaxLaneVecs = 16;
        V vcf[kMaxLaneVecs];
        const std::size_t nvec = k / static_cast<std::size_t>(kW);
        const bool hoisted = nvec <= kMaxLaneVecs;
        if (hoisted) {
          for (std::size_t b = 0; b < nvec; ++b) {
            vcf[b] = V::load(cf + b * static_cast<std::size_t>(kW));
          }
        }
        const auto do_row = [&](std::int64_t i) {
          const real_t u = ck[i - s];
          if (u == 0.0) return;
          const real_t* xs = a.x + static_cast<std::size_t>(i - s) * k;
          real_t* yd = a.y + static_cast<std::size_t>(i) * k;
          const V vu = V::broadcast(u);
          std::size_t q = 0;
          if (hoisted) {
            for (std::size_t b = 0; b < nvec; ++b, q += kW) {
              (V::load(yd + q) + (vcf[b] * vu) * V::load(xs + q))
                  .store(yd + q);
            }
          } else {
            for (; q + kW <= k; q += kW) {
              (V::load(yd + q) + (V::load(cf + q) * vu) * V::load(xs + q))
                  .store(yd + q);
            }
          }
          for (; q < k; ++q) {
            const real_t t = (cf[q] * u) * xs[q];
            yd[q] += t;
          }
        };
        // Block-skip the unit stream's zero runs: one vector compare tests
        // kW consecutive u values, an all-zero block costs a single branch.
        // Skipped rows are exactly the rows do_row's per-row zero test
        // would skip, so the bits never depend on the scan.
        std::int64_t i = lo;
        for (; i + kW <= hi; i += kW) {
          if (!V::load(ck + (i - s)).any_nonzero()) continue;
          for (std::int64_t j = i; j < i + kW; ++j) do_row(j);
        }
        for (; i < hi; ++i) do_row(i);
      } else {
        for (std::int64_t i = lo; i < hi; ++i) {
          const real_t u = ck[i - s];
          if (u == 0.0) continue;
          const real_t* xs = a.x + static_cast<std::size_t>(i - s) * k;
          real_t* yd = a.y + static_cast<std::size_t>(i) * k;
          for (std::size_t q = 0; q < k; ++q) {
            const real_t t = (cf[q] * u) * xs[q];
            yd[q] += t;
          }
        }
      }
    }
    return;
  }

  if constexpr (kW > 1) {
    const std::size_t nvec = k / static_cast<std::size_t>(kW);
    const std::size_t tail0 = nvec * static_cast<std::size_t>(kW);
    constexpr std::size_t kMaxLaneVecs = 8;
    if (nvec <= kMaxLaneVecs) {
      // Lane-coefficient vectors are row-invariant: preload the whole
      // [reaction][lane-block] table once per chunk when it fits a small
      // stack buffer (it always does for real batch widths).
      constexpr std::size_t kCfCap = 128;
      V cfv[kCfCap];
      const bool pre = a.nreactions * nvec <= kCfCap && nvec > 0;
      if (pre) {
        for (std::size_t r = 0; r < a.nreactions; ++r) {
          for (std::size_t b = 0; b < nvec; ++b) {
            cfv[r * nvec + b] =
                V::load(rs[r].cf + b * static_cast<std::size_t>(kW));
          }
        }
      }
      // One row's lane vector, accumulated across reactions in reaction
      // order. `tested` compiles the window check in only for the face
      // segments; the interior block loop below guarantees full windows.
      const auto do_row = [&](std::int64_t i, auto tested) {
        V acc[kMaxLaneVecs];
        for (std::size_t b = 0; b < nvec; ++b) acc[b] = V::zero();
        real_t tacc[kW];  // k % kW trailing lanes, accumulated in scalar
        for (std::size_t t = tail0; t < k; ++t) tacc[t - tail0] = 0.0;
        for (std::size_t r = 0; r < a.nreactions; ++r) {
          if constexpr (decltype(tested)::value) {
            if (i < rs[r].lo || i >= rs[r].hi) continue;
          }
          const real_t u = rs[r].ck[i - rs[r].s];
          if (u == 0.0) continue;
          const real_t* xs = a.x + static_cast<std::size_t>(i - rs[r].s) * k;
          const V vu = V::broadcast(u);
          if (pre) {
            for (std::size_t b = 0; b < nvec; ++b) {
              acc[b] = acc[b] +
                       (cfv[r * nvec + b] * vu) *
                           V::load(xs + b * static_cast<std::size_t>(kW));
            }
          } else {
            for (std::size_t b = 0; b < nvec; ++b) {
              const std::size_t q = b * static_cast<std::size_t>(kW);
              acc[b] =
                  acc[b] + (V::load(rs[r].cf + q) * vu) * V::load(xs + q);
            }
          }
          for (std::size_t t = tail0; t < k; ++t) {
            const real_t term = (rs[r].cf[t] * u) * xs[t];
            tacc[t - tail0] += term;
          }
        }
        real_t* yd = a.y + static_cast<std::size_t>(i) * k;
        for (std::size_t b = 0; b < nvec; ++b) {
          acc[b].store(yd + b * static_cast<std::size_t>(kW));
        }
        for (std::size_t t = tail0; t < k; ++t) yd[t] = tacc[t - tail0];
      };
      for (std::int64_t i = cb; i < full_lo; ++i) {
        prefetch_row(i, cb);
        do_row(i, std::bool_constant<true>{});
      }
      // Interior: process kW rows per block so the zero-scan of each
      // reaction's unit stream is a single vector test. The unit table is
      // mostly zeros on structured boxes (whole packed-index ranges where a
      // reactant count is zero), and the zeros arrive in runs, so one
      // any_nonzero() usually retires kW rows of one reaction at once —
      // the width-1 table must test each (row, reaction) pair separately.
      // Inside a surviving block rows still accumulate one at a time in
      // reaction order, so the bits never depend on the block walk.
      std::int64_t i = full_lo;
      for (; i + kW <= full_hi; i += kW) {
        prefetch_row(i, full_lo);
        V acc[kW][kMaxLaneVecs];
        real_t tacc[kW][kW];
        for (int j = 0; j < kW; ++j) {
          for (std::size_t b = 0; b < nvec; ++b) acc[j][b] = V::zero();
          for (std::size_t t = tail0; t < k; ++t) tacc[j][t - tail0] = 0.0;
        }
        for (std::size_t r = 0; r < a.nreactions; ++r) {
          const real_t* cku = rs[r].ck + (i - rs[r].s);
          if (!V::load(cku).any_nonzero()) continue;
          for (int j = 0; j < kW; ++j) {
            const real_t u = cku[j];
            if (u == 0.0) continue;
            const real_t* xs =
                a.x + static_cast<std::size_t>(i + j - rs[r].s) * k;
            const V vu = V::broadcast(u);
            if (pre) {
              for (std::size_t b = 0; b < nvec; ++b) {
                acc[j][b] = acc[j][b] +
                            (cfv[r * nvec + b] * vu) *
                                V::load(xs + b * static_cast<std::size_t>(kW));
              }
            } else {
              for (std::size_t b = 0; b < nvec; ++b) {
                const std::size_t q = b * static_cast<std::size_t>(kW);
                acc[j][b] = acc[j][b] +
                            (V::load(rs[r].cf + q) * vu) * V::load(xs + q);
              }
            }
            for (std::size_t t = tail0; t < k; ++t) {
              const real_t term = (rs[r].cf[t] * u) * xs[t];
              tacc[j][t - tail0] += term;
            }
          }
        }
        for (int j = 0; j < kW; ++j) {
          real_t* yd = a.y + static_cast<std::size_t>(i + j) * k;
          for (std::size_t b = 0; b < nvec; ++b) {
            acc[j][b].store(yd + b * static_cast<std::size_t>(kW));
          }
          for (std::size_t t = tail0; t < k; ++t) yd[t] = tacc[j][t - tail0];
        }
      }
      for (; i < full_hi; ++i) do_row(i, std::bool_constant<false>{});
      for (i = full_hi; i < ce; ++i) {
        prefetch_row(i, full_hi);
        do_row(i, std::bool_constant<true>{});
      }
      return;
    }
  }
  // Scalar reference (and the degenerate very-wide-batch fallback): same
  // row-outer walk, accumulating directly into the row's y slots (L1-hot
  // for the whole row pass, still one DRAM-visible write per row).
  const auto run_rows = [&](std::int64_t rb, std::int64_t re, auto tested) {
    for (std::int64_t i = rb; i < re; ++i) {
      prefetch_row(i, rb);
      real_t* yd = a.y + static_cast<std::size_t>(i) * k;
      for (std::size_t q = 0; q < k; ++q) yd[q] = 0.0;
      for (std::size_t r = 0; r < a.nreactions; ++r) {
        if constexpr (decltype(tested)::value) {
          if (i < rs[r].lo || i >= rs[r].hi) continue;
        }
        const real_t u = rs[r].ck[i - rs[r].s];
        if (u == 0.0) continue;
        const real_t* xs = a.x + static_cast<std::size_t>(i - rs[r].s) * k;
        const real_t* cf = rs[r].cf;
        for (std::size_t q = 0; q < k; ++q) {
          const real_t t = (cf[q] * u) * xs[q];
          yd[q] += t;
        }
      }
    }
  };
  run_rows(cb, full_lo, std::bool_constant<true>{});
  run_rows(full_lo, full_hi, std::bool_constant<false>{});
  run_rows(full_hi, ce, std::bool_constant<true>{});
}

}  // namespace

extern const KernelOps kOps;  // external linkage: simd.cpp picks this up
const KernelOps kOps = {
    simd::Isa::CMESOLVE_SIMD_TU_ISA,
    simd::to_string(simd::Isa::CMESOLVE_SIMD_TU_ISA),
    kW,
    &axpy,
    &cmul_add,
    &scaled_cmul_add,
    &scale,
    &scale_swap,
    &scale_swap_damped,
    &lane_scale_swap,
    &lane_scale_swap_damped,
    &lane_scale,
    &batched_sweep,
};

}  // namespace CMESOLVE_SIMD_TU_NS
}  // namespace cmesolve::util::simdk
// NOLINTEND
