// NEON (2-wide, aarch64 baseline) kernel table. Compiled with
// -ffp-contract=off; no extra -m flag needed — NEON is mandatory on
// aarch64.
#if defined(__ARM_NEON) && defined(__aarch64__)
#define CMESOLVE_SIMD_TU_NS neon
#define CMESOLVE_SIMD_TU_ISA kNeon
#define CMESOLVE_SIMD_TU_VEC VecNeon
#include "util/simd_kernels_impl.hpp"
#endif
