// Scalar (width-1) kernel table — the bitwise reference every vector ISA
// must match, and the fallback auto-dispatch uses when nothing wider is
// available. Compiled with -ffp-contract=off like every kernel TU, so the
// reference itself never silently fuses a*b+c.
#define CMESOLVE_SIMD_TU_NS scalar
#define CMESOLVE_SIMD_TU_ISA kScalar
#define CMESOLVE_SIMD_TU_VEC VecScalar
#include "util/simd_kernels_impl.hpp"
