// SSE2 (2-wide) kernel table. Compiled with -msse2 -ffp-contract=off.
#if defined(__SSE2__)
#define CMESOLVE_SIMD_TU_NS sse2
#define CMESOLVE_SIMD_TU_ISA kSse2
#define CMESOLVE_SIMD_TU_VEC VecSse2
#include "util/simd_kernels_impl.hpp"
#endif
