#pragma once
//
// Streaming summary statistics (min / mean / max / stddev) used for the
// nonzeros-per-row fingerprints of Table I and for benchmark reporting.
//
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "util/types.hpp"

namespace cmesolve {

/// Welford-style online accumulator: numerically stable single pass.
class RunningStats {
 public:
  void add(real_t x) noexcept {
    ++count_;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    const real_t delta = x - mean_;
    mean_ += delta / static_cast<real_t>(count_);
    m2_ += delta * (x - mean_);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] real_t min() const noexcept {
    return count_ ? min_ : std::numeric_limits<real_t>::quiet_NaN();
  }
  [[nodiscard]] real_t max() const noexcept {
    return count_ ? max_ : std::numeric_limits<real_t>::quiet_NaN();
  }
  [[nodiscard]] real_t mean() const noexcept {
    return count_ ? mean_ : std::numeric_limits<real_t>::quiet_NaN();
  }
  /// Population variance (the paper's sigma is over all rows, not a sample).
  [[nodiscard]] real_t variance() const noexcept {
    return count_ ? m2_ / static_cast<real_t>(count_)
                  : std::numeric_limits<real_t>::quiet_NaN();
  }
  [[nodiscard]] real_t stddev() const noexcept { return std::sqrt(variance()); }

  /// sigma / mu: the row-length variability factor of Table I. NaN (not the
  /// IEEE inf of a literal division) when empty or the mean is exactly zero,
  /// so downstream JSON serialization treats both undefined cases uniformly.
  [[nodiscard]] real_t variability() const noexcept {
    if (count_ == 0 || mean() == 0.0) {
      return std::numeric_limits<real_t>::quiet_NaN();
    }
    return stddev() / mean();
  }
  /// (max - mu) / mu: the row-length skew factor of Table I. NaN when empty
  /// or the mean is exactly zero, for the same reason as variability().
  [[nodiscard]] real_t skew() const noexcept {
    if (count_ == 0 || mean() == 0.0) {
      return std::numeric_limits<real_t>::quiet_NaN();
    }
    return (max() - mean()) / mean();
  }

 private:
  std::uint64_t count_ = 0;
  real_t min_ = std::numeric_limits<real_t>::infinity();
  real_t max_ = -std::numeric_limits<real_t>::infinity();
  real_t mean_ = 0.0;
  real_t m2_ = 0.0;
};

}  // namespace cmesolve
