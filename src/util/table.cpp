#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace cmesolve {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      out << row[c];
      for (std::size_t pad = row[c].size(); pad < width[c]; ++pad) out << ' ';
    }
    out << '\n';
  };

  emit(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string TextTable::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TextTable::count(long long v) {
  std::string digits = std::to_string(v < 0 ? -v : v);
  std::string out;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      out.push_back(',');
      since_sep = 0;
    }
    out.push_back(*it);
    ++since_sep;
  }
  if (v < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace cmesolve
