#pragma once
//
// Plain-text table rendering for the benchmark harness. Every bench binary
// regenerates one of the paper's tables/figures; TextTable keeps their
// output aligned and diff-able.
//
#include <string>
#include <vector>

namespace cmesolve {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; shorter rows are padded with empty cells.
  void add_row(std::vector<std::string> cells);

  /// Render with column auto-sizing, a header separator, and 2-space gutters.
  [[nodiscard]] std::string render() const;

  /// Format a double with fixed precision (convenience for bench rows).
  static std::string num(double v, int precision = 3);
  /// Format an integer with thousands separators for readability.
  static std::string count(long long v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cmesolve
