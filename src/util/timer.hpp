#pragma once
//
// Monotonic wall-clock timer for the CPU-baseline measurements.
//
#include <chrono>

#include "util/types.hpp"

namespace cmesolve {

class WallTimer {
 public:
  WallTimer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  [[nodiscard]] real_t seconds() const noexcept {
    return std::chrono::duration<real_t>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cmesolve
