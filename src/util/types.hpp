#pragma once
//
// Fundamental scalar and index types used across cmesolve.
//
// The GPU formats in the paper store 4-byte column indices (the 4n-byte
// saving of ELL+DIA in Sec. V depends on that), so the library-wide index
// type is a 32-bit signed integer. Matrices beyond 2^31-1 rows are out of
// scope, exactly as they were for a 3 GB GTX580.
//
#include <cstdint>
#include <cstddef>

namespace cmesolve {

/// Row/column index type. Signed so that `-1` can mark ELL padding slots.
using index_t = std::int32_t;

/// Floating-point type of all numerical kernels (the paper evaluates
/// double precision throughout).
using real_t = double;

/// Sentinel column index marking a padding slot in ELL-family formats.
inline constexpr index_t kPadColumn = -1;

}  // namespace cmesolve
