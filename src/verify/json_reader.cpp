#include "verify/json_reader.hpp"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

namespace cmesolve::verify {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t JsonValue::count(std::string_view key) const {
  std::size_t n = 0;
  for (const auto& [k, v] : members) {
    (void)v;
    if (k == key) ++n;
  }
  return n;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, const JsonLimits& limits)
      : text_(text), limits_(limits) {}

  JsonValue run() {
    if (limits_.max_bytes > 0 && text_.size() > limits_.max_bytes) {
      throw std::runtime_error(
          "json: document of " + std::to_string(text_.size()) +
          " bytes exceeds the " + std::to_string(limits_.max_bytes) +
          "-byte limit");
    }
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  /// Position-annotated failure: 1-based line/column of the current offset,
  /// so a rejected wire request points at the offending byte.
  [[noreturn]] void fail(const std::string& what) const {
    std::size_t line = 1;
    std::size_t col = 1;
    const std::size_t stop = pos_ < text_.size() ? pos_ : text_.size();
    for (std::size_t i = 0; i < stop; ++i) {
      if (text_[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    throw std::runtime_error("json: " + what + " at line " +
                             std::to_string(line) + " column " +
                             std::to_string(col) + " (offset " +
                             std::to_string(pos_) + ")");
  }

  /// RAII nesting guard for object()/array().
  class Depth {
   public:
    explicit Depth(Parser& p) : p_(p) {
      if (++p_.depth_ > p_.limits_.max_depth) {
        p_.fail("nesting deeper than " + std::to_string(p_.limits_.max_depth) +
                " levels");
      }
    }
    ~Depth() { --p_.depth_; }
    Depth(const Depth&) = delete;
    Depth& operator=(const Depth&) = delete;

   private:
    Parser& p_;
  };

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_keyword(std::string_view kw) {
    if (text_.substr(pos_, kw.size()) != kw) return false;
    pos_ += kw.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = string();
        return v;
      }
      case 't': {
        if (!consume_keyword("true")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_keyword("false")) fail("bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_keyword("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return number();
    }
  }

  JsonValue object() {
    Depth depth(*this);
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      const std::size_t key_pos = pos_;
      std::string key = string();
      if (limits_.reject_duplicate_keys && v.find(key) != nullptr) {
        pos_ = key_pos;
        fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue array() {
    Depth depth(*this);
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape digit");
            }
          }
          // The library's writers only \u-escape control characters; encode
          // the general case as UTF-8 anyway so external files parse too.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("expected number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("expected fraction digits");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("expected exponent digits");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    // The matched span is a valid strtod input by construction.
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  JsonLimits limits_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text, JsonLimits{}).run();
}

JsonValue parse_json(std::string_view text, const JsonLimits& limits) {
  return Parser(text, limits).run();
}

}  // namespace cmesolve::verify
