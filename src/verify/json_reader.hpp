#pragma once
//
// Minimal JSON reader for the verification subsystem.
//
// Two consumers need to *parse* JSON the library itself produced: the
// .repro.json scenario loader (repro_io) and the run-report schema oracle
// (report_check). obs/json.hpp is a writer only, so this header carries the
// matching reader: a strict recursive-descent parser over the JSON subset
// the writers emit (objects, arrays, strings with the writer's escape set,
// doubles, bools, null). Object members keep their source order and
// duplicates are preserved — the schema oracle uses that to detect
// duplicate-key drift that std::map-based parsers would silently swallow.
//
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace cmesolve::verify {

class JsonValue;
using JsonMember = std::pair<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;       ///< kArray
  std::vector<JsonMember> members;    ///< kObject, source order, dups kept

  [[nodiscard]] bool is_object() const noexcept { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind == Kind::kString; }
  [[nodiscard]] bool is_bool() const noexcept { return kind == Kind::kBool; }
  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }

  /// First member with this key; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Number of members carrying this key (duplicate-key detection).
  [[nodiscard]] std::size_t count(std::string_view key) const;
};

/// Parse a complete JSON document. Throws std::runtime_error (with an
/// offset-bearing message) on malformed input or trailing garbage.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace cmesolve::verify
