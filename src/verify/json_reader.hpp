#pragma once
//
// Minimal JSON reader for the verification subsystem.
//
// Two consumers need to *parse* JSON the library itself produced: the
// .repro.json scenario loader (repro_io) and the run-report schema oracle
// (report_check). obs/json.hpp is a writer only, so this header carries the
// matching reader: a strict recursive-descent parser over the JSON subset
// the writers emit (objects, arrays, strings with the writer's escape set,
// doubles, bools, null). Object members keep their source order and
// duplicates are preserved — the schema oracle uses that to detect
// duplicate-key drift that std::map-based parsers would silently swallow.
//
#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/types.hpp"

namespace cmesolve::verify {

class JsonValue;
using JsonMember = std::pair<std::string, JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;       ///< kArray
  std::vector<JsonMember> members;    ///< kObject, source order, dups kept

  [[nodiscard]] bool is_object() const noexcept { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_number() const noexcept { return kind == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind == Kind::kString; }
  [[nodiscard]] bool is_bool() const noexcept { return kind == Kind::kBool; }
  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }

  /// First member with this key; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const;

  /// Number of members carrying this key (duplicate-key detection).
  [[nodiscard]] std::size_t count(std::string_view key) const;
};

/// Parse limits. The defaults keep the historical behaviour for trusted,
/// library-written documents (duplicate members preserved for the schema
/// oracle, no size cap) while bounding recursion unconditionally — a
/// recursive-descent parser with no depth cap is a stack-overflow crash on
/// a "[[[[..." bomb, which is a denial-of-service once the codec is a wire
/// format. Serve traffic uses the stricter kWireJsonLimits (repro_io.hpp).
struct JsonLimits {
  /// Reject documents larger than this many bytes (0 = unlimited).
  std::size_t max_bytes = 0;
  /// Maximum container nesting depth (objects + arrays).
  std::size_t max_depth = 256;
  /// Reject objects that carry the same key twice. Off by default: the
  /// run-report schema oracle *detects* duplicates itself and needs them
  /// preserved (see the class comment above).
  bool reject_duplicate_keys = false;
};

/// Parse a complete JSON document. Throws std::runtime_error on malformed
/// input, trailing garbage, or a limit violation; messages carry the
/// 1-based line and column of the failure.
[[nodiscard]] JsonValue parse_json(std::string_view text);
[[nodiscard]] JsonValue parse_json(std::string_view text,
                                   const JsonLimits& limits);

}  // namespace cmesolve::verify
