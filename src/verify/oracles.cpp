#include "verify/oracles.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "core/irreducibility.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "core/stencil.hpp"
#include "fsp/fsp.hpp"
#include "gpusim/device.hpp"
#include "gpusim/kernels.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "solver/batched.hpp"
#include "solver/gauss_seidel.hpp"
#include "solver/gmres.hpp"
#include "solver/jacobi.hpp"
#include "solver/krylov_expm.hpp"
#include "solver/operators.hpp"
#include "solver/power_iteration.hpp"
#include "solver/stencil_operator.hpp"
#include "solver/transient.hpp"
#include "solver/vector_ops.hpp"
#include "sparse/bcsr.hpp"
#include "sparse/csr.hpp"
#include "sparse/dense.hpp"
#include "sparse/dia.hpp"
#include "sparse/ell.hpp"
#include "sparse/hybrid.hpp"
#include "sparse/matrix_market.hpp"
#include "sparse/sliced_ell.hpp"
#include "ssa/ssa.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace cmesolve::verify {

namespace {

std::string fmt(real_t v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.6g", static_cast<double>(v));
  return buf;
}

real_t l1_distance(std::span<const real_t> a, std::span<const real_t> b) {
  real_t d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d;
}

bool bitwise_equal(std::span<const real_t> a, std::span<const real_t> b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(real_t)) == 0;
}

/// Dense null-space reference: Gaussian elimination with partial pivoting
/// on A with the last row replaced by the normalization constraint
/// sum_i x_i = 1 (rhs e_last). Returns {} when elimination meets a
/// numerically zero pivot — the caller reports that, because a scenario
/// reaching this oracle has already passed the unique-stationarity check.
std::vector<real_t> dense_nullspace_reference(const sparse::Csr& a) {
  const index_t n = a.nrows;
  sparse::Dense m = sparse::dense_from_csr(a);
  std::vector<real_t> b(static_cast<std::size_t>(n), 0.0);
  for (index_t j = 0; j < n; ++j) m(n - 1, j) = 1.0;
  b[static_cast<std::size_t>(n - 1)] = 1.0;

  real_t scale = 0.0;
  for (index_t r = 0; r < n; ++r) {
    for (index_t c = 0; c < n; ++c) scale = std::max(scale, std::abs(m(r, c)));
  }
  const real_t tiny = scale * 1e-14 * static_cast<real_t>(n);

  for (index_t k = 0; k < n; ++k) {
    index_t piv = k;
    for (index_t r = k + 1; r < n; ++r) {
      if (std::abs(m(r, k)) > std::abs(m(piv, k))) piv = r;
    }
    if (std::abs(m(piv, k)) <= tiny) return {};
    if (piv != k) {
      for (index_t c = k; c < n; ++c) std::swap(m(k, c), m(piv, c));
      std::swap(b[static_cast<std::size_t>(k)],
                b[static_cast<std::size_t>(piv)]);
    }
    for (index_t r = k + 1; r < n; ++r) {
      const real_t f = m(r, k) / m(k, k);
      if (f == 0.0) continue;
      for (index_t c = k; c < n; ++c) m(r, c) -= f * m(k, c);
      b[static_cast<std::size_t>(r)] -= f * b[static_cast<std::size_t>(k)];
    }
  }
  std::vector<real_t> x(static_cast<std::size_t>(n), 0.0);
  for (index_t r = n - 1; r >= 0; --r) {
    real_t acc = b[static_cast<std::size_t>(r)];
    for (index_t c = r + 1; c < n; ++c) {
      acc -= m(r, c) * x[static_cast<std::size_t>(c)];
    }
    x[static_cast<std::size_t>(r)] = acc / m(r, r);
  }
  solver::normalize_l1(x);
  return x;
}

class Verifier {
 public:
  Verifier(const Scenario& sc, const OracleOptions& opt, VerifyResult& out)
      : sc_(sc), opt_(opt), out_(out) {}

  void run() {
    try {
      net_ = build_network(sc_);
    } catch (const std::exception& e) {
      fail("scenario", std::string("network rejected: ") + e.what());
      return;
    }
    ran("enumeration");
    space_ = std::make_unique<core::StateSpace>(net_, sc_.initial,
                                                sc_.max_states);
    if (space_->truncated()) {
      fail("enumeration", "state space truncated at max_states=" +
                              std::to_string(sc_.max_states));
      return;
    }
    out_.states = static_cast<std::size_t>(space_->size());
    if (space_->size() < 2) {
      fail("enumeration", "degenerate space (fewer than 2 states)");
      return;
    }
    a_ = core::rate_matrix(*space_);
    a_norm_ = a_.inf_norm();
    n_ = static_cast<std::size_t>(a_.nrows);

    check_invariants();
    check_formats();
    if (opt_.with_matrix_market) check_matrix_market();

    switch (sc_.expect) {
      case Expectation::kAbsorbing:
        check_absorbing_edge();
        // exp(At) is perfectly well-defined on an absorbing chain even
        // though A P = 0 is not solvable — the transient battery is the
        // only cross-algorithm oracle this family gets.
        if (opt_.with_transient) check_transient();
        return;
      case Expectation::kStagnation:
      case Expectation::kZeroResidual: check_jacobi_edge(); return;
      case Expectation::kSteadyState: break;
    }

    check_solvers();
    if (opt_.with_transient) check_transient();
    if (opt_.with_ssa) check_ssa();
    if (opt_.with_gpusim) check_gpusim();
    if (opt_.with_threads) check_threads();
    if (opt_.with_telemetry) check_telemetry();
    if (opt_.with_fsp) check_fsp_parity();
    if (opt_.with_ensemble) check_ensemble();
  }

 private:
  void fail(std::string oracle, std::string message) {
    out_.passed = false;
    out_.failures.push_back({std::move(oracle), std::move(message)});
  }
  void ran(const char* name) { out_.oracles_run.emplace_back(name); }

  solver::JacobiOptions jacobi_options() const {
    solver::JacobiOptions jopt;
    jopt.eps = sc_.jacobi_eps;
    jopt.stagnation_eps = sc_.jacobi_stagnation_eps;
    jopt.max_iterations = sc_.jacobi_max_iterations;
    jopt.damping = sc_.jacobi_damping;
    return jopt;
  }

  /// Conditioning proxy. When reaction rates span many orders of magnitude
  /// the generator's null space is numerically near-degenerate: two correct
  /// solvers can converge (small residual) to visibly different vectors, and
  /// dense elimination pivots drop below any absolute tiny-threshold. Those
  /// scenarios still exercise the structural and bitwise oracles, but
  /// cross-algorithm L1 comparisons would only measure conditioning, not
  /// correctness — so they gate on this.
  bool well_conditioned() const {
    real_t lo = std::numeric_limits<real_t>::infinity();
    real_t hi = 0.0;
    for (const auto& r : sc_.reactions) {
      if (r.rate <= 0.0) continue;
      lo = std::min(lo, r.rate);
      hi = std::max(hi, r.rate);
    }
    return hi <= lo * 1e6;
  }

  std::vector<real_t> test_vector() const {
    std::vector<real_t> x(n_);
    Xoshiro256 rng(sc_.seed * 0x9E3779B97F4A7C15ULL + 0xA5A5A5A5ULL);
    for (auto& v : x) v = rng.uniform(0.5, 1.5);
    return x;
  }

  // -- invariants ----------------------------------------------------------

  void check_invariants() {
    ran("invariants");
    std::vector<real_t> colsum(static_cast<std::size_t>(a_.ncols), 0.0);
    for (index_t r = 0; r < a_.nrows; ++r) {
      for (index_t k = a_.row_ptr[static_cast<std::size_t>(r)];
           k < a_.row_ptr[static_cast<std::size_t>(r) + 1]; ++k) {
        const index_t c = a_.col_idx[static_cast<std::size_t>(k)];
        const real_t v = a_.val[static_cast<std::size_t>(k)];
        colsum[static_cast<std::size_t>(c)] += v;
        if (c == r) {
          if (v > 0.0) {
            fail("invariants", "positive diagonal a(" + std::to_string(r) +
                                   "," + std::to_string(r) + ")=" + fmt(v));
            return;
          }
        } else if (v < 0.0) {
          fail("invariants", "negative off-diagonal a(" + std::to_string(r) +
                                 "," + std::to_string(c) + ")=" + fmt(v));
          return;
        }
      }
    }
    const real_t tol = 1e-12 * std::max<real_t>(a_norm_, 1.0);
    for (index_t c = 0; c < a_.ncols; ++c) {
      const real_t s = colsum[static_cast<std::size_t>(c)];
      if (std::abs(s) > tol) {
        fail("invariants", "column " + std::to_string(c) +
                               " sums to " + fmt(s) + " (tol " + fmt(tol) +
                               ") — generator loses probability flux");
        return;
      }
    }
  }

  // -- cross-format SpMV ---------------------------------------------------

  void check_formats() {
    ran("spmv-formats");
    const std::vector<real_t> x = test_vector();
    std::vector<real_t> y_ref(n_);
    sparse::spmv(a_, x, y_ref);
    const real_t tol = opt_.spmv_rel_tol * std::max<real_t>(a_norm_, 1.0) *
                       solver::norm_inf(x);

    auto check = [&](const char* what, std::span<const real_t> y) {
      real_t worst = 0.0;
      index_t row = -1;
      for (std::size_t i = 0; i < n_; ++i) {
        const real_t d = std::abs(y[i] - y_ref[i]);
        if (d > worst) {
          worst = d;
          row = static_cast<index_t>(i);
        }
      }
      if (worst > tol) {
        fail("spmv-formats", std::string(what) + " deviates from CSR by " +
                                 fmt(worst) + " at row " + std::to_string(row) +
                                 " (tol " + fmt(tol) + ")");
      }
    };

    std::vector<real_t> y(n_);
    if (a_.nrows <= opt_.dense_max) {
      const sparse::Dense d = sparse::dense_from_csr(a_);
      sparse::spmv(d, x, y);
      check("dense", y);
    }
    {
      const sparse::Ell m = sparse::ell_from_csr(a_);
      sparse::spmv(m, x, y);
      check("ell", y);
    }
    {
      const sparse::SlicedEll m = sparse::warped_ell_from_csr(a_);
      sparse::spmv(m, x, y);
      check("warped-ell", y);
    }
    {
      const sparse::SlicedEll m = sparse::pjds_from_csr(a_);
      sparse::spmv(m, x, y);
      check("pjds", y);
    }
    const std::vector<index_t> band = sparse::select_band_offsets(a_);
    {
      const sparse::EllDia m = sparse::ell_dia_from_csr(a_, band);
      sparse::spmv(m, x, y);
      check("ell+dia", y);
    }
    {
      const sparse::SlicedEllDia m = sparse::sliced_ell_dia_from_csr(a_, band);
      sparse::spmv(m, x, y);
      check("sliced-ell+dia", y);
    }
    {
      const sparse::CsrDia m = sparse::csr_dia_from_csr(a_, band);
      sparse::spmv(m, x, y);
      check("csr+dia", y);
    }
    {
      const sparse::Bcsr m = sparse::bcsr_from_csr(a_);
      sparse::spmv(m, x, y);
      check("bcsr", y);
    }

    // Operator wrappers: off-diagonal multiply + explicit diagonal must
    // reassemble the full product.
    auto check_op = [&](const char* what, const auto& op) {
      if (op.nrows() != a_.nrows) {
        fail("spmv-formats", std::string(what) + " row-count mismatch");
        return;
      }
      std::vector<real_t> yo(n_);
      op.multiply(x, yo);
      const auto d = op.diag();
      for (std::size_t i = 0; i < n_; ++i) yo[i] += d[i] * x[i];
      check(what, yo);
    };
    check_op("op:csr", solver::CsrOperator(a_));
    check_op("op:csr+dia", solver::CsrDiaOperator(a_));
    check_op("op:ell+dia", solver::EllDiaOperator(a_));
    check_op("op:warped-ell+dia", solver::WarpedEllDiaOperator(a_));

    build_stencil();
    if (stencil_ != nullptr) {
      const auto nbox = static_cast<std::size_t>(stencil_->nrows());
      std::vector<real_t> xb(nbox, 0.0), yb(nbox, 0.0);
      std::vector<real_t> ys(n_, 0.0), ds(n_, 0.0);
      stencil_->scatter_from(*space_, x, xb);
      stencil_->multiply(xb, yb);
      stencil_->gather_to(*space_, yb, ys);
      const auto db = stencil_->diag();
      const std::vector<real_t> dbox(db.begin(), db.end());
      stencil_->gather_to(*space_, dbox, ds);
      // Zero-outflow members (absorbing states) carry the stencil's -1
      // diagonal sentinel and no off-diagonal entries by contract — the
      // solver rejects such chains up front, so the stencil oracle compares
      // the unmasked complement. An exact -1.0 outflow also matches the
      // sentinel; skipping that row costs a little coverage, never a false
      // positive.
      for (std::size_t i = 0; i < n_; ++i) {
        ys[i] = ds[i] == -1.0 ? y_ref[i] : ys[i] + ds[i] * x[i];
      }
      check("op:stencil", ys);
    }
  }

  // -- Matrix Market round trip -------------------------------------------

  void check_matrix_market() {
    ran("matrix-market");
    std::ostringstream first;
    sparse::write_matrix_market(first, a_);
    sparse::Csr back;
    try {
      std::istringstream in(first.str());
      back = sparse::read_matrix_market(in);
    } catch (const std::exception& e) {
      fail("matrix-market", std::string("own output rejected: ") + e.what());
      return;
    }
    if (back.nrows != a_.nrows || back.ncols != a_.ncols ||
        back.row_ptr != a_.row_ptr || back.col_idx != a_.col_idx) {
      fail("matrix-market", "structure changed across write -> read");
      return;
    }
    if (!bitwise_equal(back.val, a_.val)) {
      real_t worst = 0.0;
      for (std::size_t i = 0; i < a_.val.size(); ++i) {
        worst = std::max(worst, std::abs(back.val[i] - a_.val[i]));
      }
      fail("matrix-market",
           "values drift across write -> read (max " + fmt(worst) + ")");
      return;
    }
    std::ostringstream second;
    sparse::write_matrix_market(second, back);
    if (first.str() != second.str()) {
      fail("matrix-market", "write -> read -> write is not byte-stable");
    }
  }

  void build_stencil() {
    if (stencil_attempted_) return;
    stencil_attempted_ = true;
    try {
      stencil_ = std::make_unique<solver::StencilOperator>(net_, sc_.initial);
    } catch (const std::invalid_argument&) {
      // Box exceeds index_t (or is otherwise uncompilable): the stencil
      // paths simply don't apply to this scenario.
      stencil_.reset();
    }
  }

  // -- directed edge paths -------------------------------------------------

  void check_absorbing_edge() {
    ran("absorbing-edge");
    const solver::CsrOperator op(a_);
    std::vector<real_t> x(n_);
    solver::fill_uniform(x);
    try {
      (void)solver::jacobi_solve(op, a_norm_, x, jacobi_options());
      fail("absorbing-edge",
           "expected the zero-diagonal rejection, but the solver ran");
    } catch (const std::domain_error&) {
      // the contract: absorbing states are rejected up front
    }
  }

  void check_jacobi_edge() {
    ran("jacobi-edge");
    const solver::CsrOperator op(a_);
    std::vector<real_t> x(n_);
    solver::fill_uniform(x);
    const auto res = solver::jacobi_solve(op, a_norm_, x, jacobi_options());
    if (sc_.expect == Expectation::kZeroResidual) {
      if (res.reason != solver::StopReason::kConverged ||
          res.residual != 0.0) {
        fail("jacobi-edge",
             std::string("expected the exact-zero residual exit, got ") +
                 to_string(res.reason) + " at residual " + fmt(res.residual));
      }
    } else {
      if (res.reason != solver::StopReason::kStagnated) {
        fail("jacobi-edge",
             std::string("expected stagnation, got ") + to_string(res.reason) +
                 " at residual " + fmt(res.residual) + " after " +
                 std::to_string(res.iterations) + " iterations");
      }
    }
  }

  // -- cross-solver --------------------------------------------------------

  void check_solvers() {
    ran("ergodicity");
    const auto cs = core::analyze_communication(a_);
    if (!cs.unique_stationary()) {
      fail("ergodicity",
           "scenario expects a steady state but the chain has no unique "
           "stationary distribution (generator bug or bad shrink)");
      return;
    }

    ran("solvers");
    const auto jopt = jacobi_options();
    const solver::CsrOperator csr_op(a_);
    p_jacobi_.assign(n_, 0.0);
    solver::fill_uniform(p_jacobi_);
    solver::JacobiResult rj;
    try {
      rj = solver::jacobi_solve(csr_op, a_norm_, p_jacobi_, jopt);
    } catch (const std::domain_error& e) {
      // A chain can pass unique_stationary() and still carry a zero
      // diagonal: an absorbing state reachable from everywhere (point-mass
      // stationary distribution). Shrunk candidates hit this constantly.
      fail("solvers",
           std::string("steady-state scenario hit the zero-diagonal "
                       "rejection: ") +
               e.what());
      return;
    }
    jacobi_converged_ = rj.reason == solver::StopReason::kConverged;
    jacobi_iterations_ = rj.iterations;
    if (!jacobi_converged_) return;  // stagnation is a legal outcome

    // Stationary-vector invariants.
    real_t sum = 0.0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (p_jacobi_[i] < 0.0) {
        fail("invariants", "stationary entry " + std::to_string(i) +
                               " is negative: " + fmt(p_jacobi_[i]));
        return;
      }
      sum += p_jacobi_[i];
    }
    if (std::abs(sum - 1.0) > 1e-10) {
      fail("invariants", "stationary vector sums to " + fmt(sum));
      return;
    }

    // Residual consistency: the independently assembled full CSR product
    // must confirm the convergence the split operator reported.
    ran("residual-consistency");
    std::vector<real_t> r(n_);
    sparse::spmv(a_, p_jacobi_, r);
    const real_t rel = solver::norm_inf(r) /
                       (a_norm_ * std::max<real_t>(
                                      solver::norm_inf(p_jacobi_), 1e-300));
    if (rel > 10.0 * sc_.jacobi_eps) {
      fail("residual-consistency",
           "full-matrix residual " + fmt(rel) + " vs converged eps " +
               fmt(sc_.jacobi_eps));
    }

    if (!well_conditioned()) {
      // Rate spread past ~1e6: the L1 gates below would flag conditioning,
      // not bugs. The structural, bitwise, and residual oracles above have
      // already run for this scenario.
      ran("cross-solver[conditioning-gated]");
      return;
    }

    auto compare = [&](const char* what, std::span<const real_t> q) {
      const real_t d = l1_distance(q, p_jacobi_);
      if (d > opt_.solver_l1_tol) {
        fail("solvers", std::string(what) + " vs jacobi: L1 distance " +
                            fmt(d) + " (tol " + fmt(opt_.solver_l1_tol) + ")");
      }
    };

    {
      const solver::WarpedEllDiaOperator wop(a_);
      std::vector<real_t> p(n_);
      solver::fill_uniform(p);
      const auto res = solver::jacobi_solve(wop, a_norm_, p, jopt);
      if (res.reason == solver::StopReason::kConverged) {
        compare("jacobi[warped-hybrid]", p);
      }
    }
    {
      std::vector<real_t> p(n_);
      solver::fill_uniform(p);
      const auto res = solver::gauss_seidel_solve(a_, a_norm_, p, jopt);
      if (res.reason == solver::StopReason::kConverged) {
        compare("gauss-seidel", p);
      }
    }
    {
      std::vector<real_t> p(n_);
      solver::fill_uniform(p);
      solver::PowerIterationOptions po;
      po.eps = sc_.jacobi_eps;
      po.max_iterations = sc_.jacobi_max_iterations;
      const auto res = solver::power_iteration_solve(csr_op, a_norm_, p, po);
      if (res.reason == solver::StopReason::kConverged) {
        compare("power-iteration", p);
      }
    }
    {
      const index_t last = a_.nrows - 1;
      const auto apply = solver::steady_state_operator(a_, last);
      const auto b = solver::steady_state_rhs(a_.nrows, last);
      std::vector<real_t> p(n_);
      solver::fill_uniform(p);
      solver::GmresOptions go;
      go.tol = 1e-10;
      go.max_iterations = 4000;
      go.restart = static_cast<int>(std::min<index_t>(60, a_.nrows));
      const auto res = solver::gmres_solve(apply, a_.nrows, b, p, go);
      if (res.converged) {
        solver::normalize_l1(p);
        compare("gmres", p);
      }
    }

    if (a_.nrows <= opt_.dense_max) {
      ran("dense-reference");
      const auto p_ref = dense_nullspace_reference(a_);
      if (p_ref.empty()) {
        fail("dense-reference",
             "Gaussian elimination hit a zero pivot on a chain that passed "
             "the unique-stationarity check");
      } else {
        compare("dense-ge", p_ref);
      }
    }
  }

  // -- SSA chi-square ------------------------------------------------------

  void check_ssa() {
    if (!jacobi_converged_ || a_.nrows > opt_.ssa_max) return;
    // SSA cost scales with the event rate and mixing slows with tiny rates;
    // outside this window the oracle would be either unaffordable or noise.
    if (a_norm_ < 0.5 || a_norm_ > 500.0) return;
    if (!well_conditioned()) return;  // mixing time beyond any finite horizon
    ran("ssa");
    ssa::EmpiricalOptions eo;
    eo.burn_in = 50.0;
    eo.horizon = 4000.0;
    eo.seed = sc_.seed * 2 + 7;
    const auto emp =
        ssa::empirical_stationary(net_, *space_, sc_.initial, eo);

    // Chi-square gate over the well-supported states, with a conservative
    // effective sample count (time-averaged occupancy mixes faster than
    // iid sampling, so this undercounts the information in the trajectory).
    const real_t samples = 2000.0;
    real_t x2 = 0.0;
    std::size_t cells = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (p_jacobi_[i] * samples < 5.0) continue;
      const real_t diff = emp[i] - p_jacobi_[i];
      x2 += samples * diff * diff / p_jacobi_[i];
      ++cells;
    }
    if (cells >= 2) {
      const auto dof = static_cast<real_t>(cells - 1);
      const real_t gate = dof + 10.0 * std::sqrt(2.0 * dof) + 10.0;
      if (x2 > gate) {
        fail("ssa", "chi-square " + fmt(x2) + " over " +
                        std::to_string(cells) + " cells exceeds gate " +
                        fmt(gate));
      }
    }
    const real_t tv = ssa::total_variation(emp, p_jacobi_);
    if (tv > 0.15) {
      fail("ssa", "total variation " + fmt(tv) +
                      " between SSA occupancy and solved landscape");
    }
  }

  // -- simulated GPU kernels ----------------------------------------------

  void check_gpusim() {
    ran("gpusim");
    const obs::SuppressMetrics quiet;  // keep sim launches out of reports
    const auto dev = gpusim::DeviceSpec::gtx580();
    const std::vector<real_t> x = test_vector();
    std::vector<real_t> y_host(n_), y_sim(n_);

    auto bit = [&](const char* what) {
      if (!bitwise_equal(y_sim, y_host)) {
        real_t worst = 0.0;
        index_t row = -1;
        for (std::size_t i = 0; i < n_; ++i) {
          const real_t d = std::abs(y_sim[i] - y_host[i]);
          if (d > worst) {
            worst = d;
            row = static_cast<index_t>(i);
          }
        }
        fail("gpusim", std::string(what) +
                           " simulated kernel differs from host kernel" +
                           (row >= 0 ? " (max " + fmt(worst) + " at row " +
                                           std::to_string(row) + ")"
                                     : " (size mismatch)"));
      }
    };

    {
      const sparse::Ell m = sparse::ell_from_csr(a_);
      sparse::spmv(m, x, y_host);
      (void)gpusim::simulate_spmv(dev, m, x, y_sim);
      bit("ell");
    }
    {
      const sparse::SlicedEll m = sparse::warped_ell_from_csr(a_);
      sparse::spmv(m, x, y_host);
      (void)gpusim::simulate_spmv(dev, m, x, y_sim);
      bit("warped-ell");
    }
    const std::vector<index_t> band = sparse::select_band_offsets(a_);
    {
      const sparse::EllDia m = sparse::ell_dia_from_csr(a_, band);
      sparse::spmv(m, x, y_host);
      (void)gpusim::simulate_spmv(dev, m, x, y_sim);
      bit("ell+dia");
    }
    {
      const sparse::SlicedEllDia m = sparse::sliced_ell_dia_from_csr(a_, band);
      sparse::spmv(m, x, y_host);
      (void)gpusim::simulate_spmv(dev, m, x, y_sim);
      bit("sliced-ell+dia");
    }
    {
      sparse::spmv(a_, x, y_host);
      (void)gpusim::simulate_spmv(dev, a_, x, y_sim);
      bit("csr");
    }
  }

  // -- thread determinism --------------------------------------------------

  void check_threads() {
    ran("thread-determinism");
    const auto jopt = jacobi_options();
    const solver::CsrOperator csr_op(a_);
    // Restore the ambient thread cap even if a solve throws (the top-level
    // backstop in verify_scenario turns that into an oracle failure, and the
    // next scenario must not inherit a pinned pool).
    struct ThreadRestore {
      ~ThreadRestore() { util::set_max_threads(0); }
    } restore;
    auto solve_at = [&](int threads) {
      util::set_max_threads(threads);
      std::vector<real_t> p(n_);
      solver::fill_uniform(p);
      (void)solver::jacobi_solve(csr_op, a_norm_, p, jopt);
      return p;
    };
    const auto p1 = solve_at(1);
    const auto p8 = solve_at(8);
    if (!bitwise_equal(p1, p8)) {
      fail("thread-determinism",
           "jacobi solution differs bitwise between 1 and 8 threads");
    }
    if (jacobi_converged_ && !bitwise_equal(p1, p_jacobi_)) {
      fail("thread-determinism",
           "jacobi solution differs bitwise between 1 and ambient threads");
    }
  }

  // -- full-observability determinism --------------------------------------

  /// Runs the reference solve with the whole obs layer live — metric
  /// registry AND flight recorder — and asserts that (a) the deterministic
  /// fingerprint and the recorded flight stream are bit-identical at 1 and
  /// 8 threads, and (b) attaching the recorder leaves the fingerprint
  /// unchanged (observability must never change the computation it
  /// observes). Clobbers the process-wide registry/flight buffer; ambient
  /// enable-state is restored on every exit path.
  void check_telemetry() {
    ran("telemetry");
    const auto jopt = jacobi_options();
    const solver::CsrOperator csr_op(a_);
    struct ObsRestore {
      bool metrics_was_on = obs::metrics_enabled();
      bool flight_was_on = obs::flight_enabled();
      ~ObsRestore() {
        util::set_max_threads(0);
        obs::MetricRegistry::instance().clear();
        obs::FlightRecorder::instance().clear();
        obs::set_metrics_enabled(metrics_was_on);
        if (flight_was_on) {
          obs::detail::g_flight_on.store(true, std::memory_order_relaxed);
        } else {
          obs::FlightRecorder::instance().disable();
        }
      }
    } restore;

    struct Observed {
      std::string fingerprint;
      std::uint64_t flight_sig = 0;
      std::size_t flight_events = 0;
      std::vector<real_t> p;
    };
    auto solve_at = [&](int threads, bool with_flight) {
      util::set_max_threads(threads);
      obs::MetricRegistry::instance().clear();
      obs::set_metrics_enabled(true);
      if (with_flight) {
        obs::FlightRecorder::instance().enable();
      } else {
        obs::FlightRecorder::instance().disable();
        obs::FlightRecorder::instance().clear();
      }
      Observed o;
      o.p.resize(n_);
      solver::fill_uniform(o.p);
      (void)solver::jacobi_solve(csr_op, a_norm_, o.p, jopt);
      o.fingerprint = obs::MetricRegistry::instance().deterministic_fingerprint();
      o.flight_sig = obs::FlightRecorder::instance().content_signature();
      o.flight_events = obs::FlightRecorder::instance().size();
      return o;
    };

    const auto t1 = solve_at(1, /*with_flight=*/true);
    const auto t8 = solve_at(8, /*with_flight=*/true);
    const auto bare = solve_at(1, /*with_flight=*/false);

    if (t1.fingerprint != t8.fingerprint) {
      fail("telemetry",
           "deterministic metric fingerprint differs between 1 and 8 threads "
           "under full observability");
    }
    if (t1.flight_sig != t8.flight_sig ||
        t1.flight_events != t8.flight_events) {
      fail("telemetry",
           "flight-recorder stream differs between 1 and 8 threads");
    }
    if (t1.flight_events == 0) {
      fail("telemetry", "flight recorder captured no events from the solve");
    }
    if (bare.fingerprint != t1.fingerprint) {
      fail("telemetry",
           "attaching the flight recorder changed the metric fingerprint");
    }
    if (!bitwise_equal(bare.p, t1.p)) {
      fail("telemetry",
           "attaching the flight recorder changed the solve result");
    }
  }

  // -- FSP matrix-free parity ---------------------------------------------

  void check_fsp_parity() {
    if (!jacobi_converged_ || a_.nrows > opt_.fsp_max) return;
    if (jacobi_iterations_ > 100'000) return;  // too stiff to re-solve twice
    if (!well_conditioned()) return;  // L1-vs-reference gate needs a clean
                                      // null space, same as cross-solver
    build_stencil();
    if (stencil_ == nullptr) return;
    ran("fsp-parity");

    fsp::FspOptions fo;
    fo.tol = 1e-9;
    fo.seed_states = 64;
    fo.max_states = n_ * 2 + 64;
    fo.min_growth = 0.25;
    fo.prune_quantile = 0.0;
    fo.solver = fsp::InnerSolver::kJacobi;
    fo.jacobi = jacobi_options();
    fo.jacobi.eps = std::min<real_t>(sc_.jacobi_eps, 1e-11);
    fo.jacobi.max_iterations = 500'000;
    fo.jacobi.damping = 0.9;
    fo.matrix_free_box_ratio = 1e9;  // every round eligible

    try {
      auto opt_a = fo;
      opt_a.matrix_free = false;
      const fsp::FspResult assembled =
          fsp::solve_adaptive(net_, sc_.initial, opt_a);
      auto opt_m = fo;
      opt_m.matrix_free = true;
      const fsp::FspResult matrix_free =
          fsp::solve_adaptive(net_, sc_.initial, opt_m);
      if (!assembled.converged || !matrix_free.converged) return;
      const real_t da =
          fsp::l1_distance_to_reference(assembled, *space_, p_jacobi_);
      const real_t dm =
          fsp::l1_distance_to_reference(matrix_free, *space_, p_jacobi_);
      if (da > 1e-5) {
        fail("fsp-parity",
             "assembled FSP lands " + fmt(da) + " (L1) off the full answer");
      }
      if (dm > 1e-5) {
        fail("fsp-parity",
             "matrix-free FSP lands " + fmt(dm) + " (L1) off the full answer");
      }
    } catch (const std::exception& e) {
      fail("fsp-parity", std::string("adaptive FSP threw: ") + e.what());
    }
  }

  // -- batched ensemble parity ---------------------------------------------

  /// The batched multi-RHS solver's contract: lane k is bit-identical to
  /// the single-RHS path solving point k alone — same vector, same
  /// iteration count, same stop reason, same GMRES-fallback decision — at
  /// any thread count. The scenario is turned into a K=3 ensemble (the
  /// compiled rates plus two deterministic rescalings) so the lanes are
  /// genuinely distinct and converge at different iterations, exercising
  /// the per-lane freeze masking.
  void check_ensemble() {
    if (jacobi_iterations_ > 100'000) return;  // too stiff to re-solve x6
    build_stencil();
    if (stencil_ == nullptr) return;
    if (stencil_->nrows() > opt_.ensemble_max) return;

    constexpr int kPoints = 3;
    std::vector<std::vector<real_t>> rates;
    Xoshiro256 rng(sc_.seed * 0x9E3779B97F4A7C15ULL + 0xBA7C4EDULL);
    for (int q = 0; q < kPoints; ++q) {
      std::vector<real_t> rk(static_cast<std::size_t>(net_.num_reactions()));
      for (int r = 0; r < net_.num_reactions(); ++r) {
        const real_t f = q == 0 ? 1.0 : rng.uniform(0.5, 2.0);
        rk[static_cast<std::size_t>(r)] = net_.reaction(r).rate * f;
      }
      rates.push_back(std::move(rk));
    }

    solver::EnsembleOptions eopt;
    eopt.jacobi = jacobi_options();
    solver::EnsembleResult batched;
    solver::EnsembleResult sequential;
    try {
      batched = solver::solve_ensemble(stencil_->table(), rates, eopt);
      auto sopt = eopt;
      sopt.batched = false;
      sequential = solver::solve_ensemble(stencil_->table(), rates, sopt);
    } catch (const std::invalid_argument&) {
      // Rates not rebind-eligible for this scenario's box (a zero-rate
      // compiled reaction): the ensemble path simply doesn't apply.
      return;
    }
    ran("ensemble");

    for (int q = 0; q < kPoints; ++q) {
      const auto& b = batched.points[static_cast<std::size_t>(q)];
      const auto& s = sequential.points[static_cast<std::size_t>(q)];
      if (!bitwise_equal(b.p, s.p)) {
        fail("ensemble", "batched point " + std::to_string(q) +
                             " differs bitwise from the sequential "
                             "single-RHS solve");
        return;
      }
      if (b.jacobi.iterations != s.jacobi.iterations ||
          b.jacobi.reason != s.jacobi.reason || b.gmres_used != s.gmres_used) {
        fail("ensemble", "batched point " + std::to_string(q) +
                             " stops differently from the sequential path (" +
                             std::to_string(b.jacobi.iterations) + " vs " +
                             std::to_string(s.jacobi.iterations) + " iters)");
        return;
      }
    }

    if (opt_.with_threads) {
      struct ThreadRestore {
        ~ThreadRestore() { util::set_max_threads(0); }
      } restore;
      auto solve_at = [&](int threads) {
        util::set_max_threads(threads);
        return solver::solve_ensemble(stencil_->table(), rates, eopt);
      };
      const auto e1 = solve_at(1);
      const auto e8 = solve_at(8);
      for (int q = 0; q < kPoints; ++q) {
        const auto& b = batched.points[static_cast<std::size_t>(q)];
        if (!bitwise_equal(e1.points[static_cast<std::size_t>(q)].p, b.p) ||
            !bitwise_equal(e8.points[static_cast<std::size_t>(q)].p, b.p)) {
          fail("ensemble", "batched ensemble point " + std::to_string(q) +
                               " differs bitwise across thread counts");
          return;
        }
      }
    }
  }

  // -- transient cross-check -----------------------------------------------

  /// Time-domain battery: uniformization vs Arnoldi expm(tA)v in L1 at
  /// several horizons, the SIMD-dispatched stencil path vs the assembled
  /// path, the semigroup property, the L1-contraction toward the
  /// stationary landscape (monotonicity needs no mixing-time assumption),
  /// and — when the SSA oracle is also enabled — a chi-square gate between
  /// the solved time marginal and an endpoint histogram of independent SSA
  /// trajectories. Horizons scale with 1 / max|a_ii| so the Poisson means
  /// stay bounded on stiff generators.
  void check_transient() {
    if (a_.nrows > opt_.transient_max) return;
    if (a_norm_ <= 0.0) return;  // zero generator: exp(At) == I
    const index_t root = space_->find(sc_.initial);
    if (root < 0) {
      fail("transient", "initial state missing from the enumerated space");
      return;
    }
    ran("transient");
    const solver::CsrOperator op(a_);
    real_t max_diag = 0.0;
    for (const real_t d : op.diag()) {
      max_diag = std::max(max_diag, std::abs(d));
    }
    const real_t base = 1.0 / max_diag;  // fastest timescale

    solver::TransientOptions uopt;  // eps 1e-12
    solver::KrylovExpmOptions kopt;
    kopt.tol = 1e-13;

    const auto point_mass = [&](std::vector<real_t>& p) {
      p.assign(n_, 0.0);
      p[static_cast<std::size_t>(root)] = 1.0;
    };

    std::vector<real_t> pu;
    std::vector<real_t> pk;
    real_t prev_station_dist = std::numeric_limits<real_t>::infinity();
    for (const real_t c : {0.5, 2.0, 8.0}) {
      const real_t t = c * base;
      point_mass(pu);
      const auto ru =
          solver::transient_solve(op, t, std::span<real_t>(pu), uopt);
      if (ru.truncated_early) {
        fail("transient", "uniformization hit max_terms at t=" + fmt(t));
        return;
      }
      real_t sum = 0.0;
      for (const real_t v : pu) {
        if (v < 0.0) {
          fail("transient", "uniformization produced a negative marginal "
                            "entry " + fmt(v));
          return;
        }
        sum += v;
      }
      if (std::abs(sum - 1.0) > 1e-10) {
        fail("transient", "time marginal at t=" + fmt(t) + " sums to " +
                              fmt(sum));
        return;
      }
      point_mass(pk);
      const auto rk =
          solver::krylov_expm_solve(op, t, std::span<real_t>(pk), kopt);
      if (rk.truncated_early || rk.tol_not_met) {
        fail("transient", "krylov expm could not meet tol at t=" + fmt(t));
        return;
      }
      const real_t dist = l1_distance(pu, pk);
      if (dist > 1e-10) {
        fail("transient", "uniformization vs krylov expm L1 " + fmt(dist) +
                              " at t=" + fmt(t));
        return;
      }
      // L1 contraction: every CTMC semigroup is an L1 contraction, so the
      // distance to ANY fixed point never grows with t — a stationarity
      // check with no mixing-time assumption.
      if (jacobi_converged_ && well_conditioned()) {
        const real_t station_dist = l1_distance(pu, p_jacobi_);
        if (station_dist > prev_station_dist + 1e-9) {
          fail("transient",
               "L1 distance to the stationary landscape grew with t: " +
                   fmt(prev_station_dist) + " -> " + fmt(station_dist));
          return;
        }
        prev_station_dist = station_dist;
      }
    }

    // Semigroup: P(t1 + t2) == step(P(t1), t2).
    {
      const real_t t1 = 1.0 * base;
      const real_t t2 = 3.0 * base;
      point_mass(pu);
      (void)solver::transient_solve(op, t1 + t2, std::span<real_t>(pu), uopt);
      point_mass(pk);
      (void)solver::transient_solve(op, t1, std::span<real_t>(pk), uopt);
      (void)solver::transient_solve(op, t2, std::span<real_t>(pk), uopt);
      const real_t dist = l1_distance(pu, pk);
      if (dist > 1e-10) {
        fail("transient", "semigroup violation: chained vs direct L1 " +
                              fmt(dist));
        return;
      }
    }

    // Stencil-path parity: the SIMD-dispatched matrix-free operator must
    // land on the assembled-path marginal. Skipped when the enumerated
    // space contains an absorbing state: the stencil table masks
    // zero-outflow box corners with a -1 diagonal sentinel (a deliberate
    // Jacobi guard), so the box propagation bleeds the mass parked there.
    bool has_absorbing = false;
    for (const real_t d : op.diag()) {
      if (d == 0.0) {
        has_absorbing = true;
        break;
      }
    }
    build_stencil();
    if (!has_absorbing && stencil_ != nullptr &&
        stencil_->nrows() <= 8 * opt_.transient_max) {
      const real_t t = 2.0 * base;
      point_mass(pu);
      (void)solver::transient_solve(op, t, std::span<real_t>(pu), uopt);
      const auto nb = static_cast<std::size_t>(stencil_->nrows());
      std::vector<real_t> pb(nb, 0.0);
      point_mass(pk);
      stencil_->scatter_from(*space_, pk, pb);
      (void)solver::transient_solve(*stencil_, t, std::span<real_t>(pb),
                                    uopt);
      std::vector<real_t> gathered(n_, 0.0);
      stencil_->gather_to(*space_, pb, gathered);
      const real_t dist = l1_distance(pu, gathered);
      if (dist > 1e-10) {
        fail("transient", "stencil-path transient differs from assembled "
                          "path by L1 " + fmt(dist));
        return;
      }
    }

    // SSA endpoint histogram vs the solved time marginal — the transient
    // extension of the stationary chi-square gate, behind the same cost
    // and conditioning window.
    if (!opt_.with_ssa || a_.nrows > opt_.ssa_max || a_norm_ < 0.5 ||
        a_norm_ > 500.0 || !well_conditioned()) {
      return;
    }
    ran("transient-ssa");
    const real_t t = 4.0 * base;
    point_mass(pu);
    (void)solver::transient_solve(op, t, std::span<real_t>(pu), uopt);
    ssa::MarginalOptions mo;
    mo.t = t;
    mo.trajectories = 2000;
    mo.seed = sc_.seed * 3 + 11;
    const auto emp = ssa::empirical_marginal(net_, *space_, sc_.initial, mo);
    const auto samples = static_cast<real_t>(mo.trajectories);
    real_t x2 = 0.0;
    std::size_t cells = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      if (pu[i] * samples < 5.0) continue;
      const real_t diff = emp[i] - pu[i];
      x2 += samples * diff * diff / pu[i];
      ++cells;
    }
    if (cells >= 2) {
      const auto dof = static_cast<real_t>(cells - 1);
      const real_t gate = dof + 10.0 * std::sqrt(2.0 * dof) + 10.0;
      if (x2 > gate) {
        fail("transient-ssa", "time-marginal chi-square " + fmt(x2) +
                                  " over " + std::to_string(cells) +
                                  " cells exceeds gate " + fmt(gate) +
                                  " at t=" + fmt(t));
      }
    }
    const real_t tv = ssa::total_variation(emp, pu);
    if (tv > 0.15) {
      fail("transient-ssa", "total variation " + fmt(tv) +
                                " between SSA endpoint histogram and the "
                                "solved time marginal");
    }
  }

  const Scenario& sc_;
  const OracleOptions& opt_;
  VerifyResult& out_;

  core::ReactionNetwork net_;
  std::unique_ptr<core::StateSpace> space_;
  sparse::Csr a_;
  real_t a_norm_ = 0.0;
  std::size_t n_ = 0;

  std::unique_ptr<solver::StencilOperator> stencil_;
  bool stencil_attempted_ = false;

  std::vector<real_t> p_jacobi_;
  bool jacobi_converged_ = false;
  std::uint64_t jacobi_iterations_ = 0;
};

}  // namespace

VerifyResult verify_scenario(const Scenario& sc, const OracleOptions& opt) {
  VerifyResult out;
  try {
    Verifier(sc, opt, out).run();
  } catch (const std::exception& e) {
    // The battery must never crash the driver: an unexpected throw is
    // itself a finding, and the shrinker minimizes toward it like any
    // other oracle failure.
    out.passed = false;
    out.failures.push_back({"exception", e.what()});
  }
  return out;
}

}  // namespace cmesolve::verify
