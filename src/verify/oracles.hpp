#pragma once
//
// Differential-verification oracles.
//
// verify_scenario runs one scenario through the full claim chain — DFS
// enumeration, generator assembly, every sparse format, every solver, the
// matrix-free stencil paths, the simulated GPU kernels, Matrix Market I/O —
// and cross-checks the redundant implementations against each other:
//
//   invariants        generator columns sum to zero, off-diagonals >= 0,
//                     diagonal <= 0, stationary vector nonnegative and
//                     normalized, residual consistency between operators
//   cross-format      every stored format and both stencil operators
//                     reproduce the CSR SpMV to tight tolerance
//   cross-solver      Jacobi / Gauss-Seidel / power iteration / GMRES /
//                     warped-hybrid Jacobi agree pairwise in L1, and match
//                     a dense Gaussian-elimination null-space reference on
//                     small spaces
//   ssa               long-run SSA occupancy matches the solved landscape
//                     through a chi-square gate
//   gpusim            simulated GPU kernels agree bitwise with the host
//                     kernels walking the same storage
//   matrix-market     write -> read -> write is byte-stable and value-exact
//   thread-determinism the solve is bit-identical at 1 and 8 threads
//   fsp-parity        adaptive FSP, assembled vs masked-stencil inner
//                     solves, both land on the full-space answer
//   ensemble          a batched K-variant multi-RHS solve is bitwise
//                     identical per point (vector, iterations, stop
//                     reason, fallback) to the sequential single-RHS path,
//                     and stable across 1/8/ambient thread counts
//   telemetry         with metrics + flight recorder fully enabled, the
//                     deterministic metric fingerprint and the recorded
//                     flight stream are bit-identical at 1 and 8 threads,
//                     and attaching the recorder does not perturb the
//                     fingerprint (observability cannot change the run)
//   transient         uniformization and Krylov expm(tA)v agree in L1 at
//                     several horizons, the stencil-path propagation
//                     matches the assembled path, the semigroup property
//                     holds, the t->inf limit lands on the stationary
//                     solve, and (when with_ssa) an SSA endpoint histogram
//                     matches the time marginal through the chi-square gate
//
// Directed expectations (Expectation::kAbsorbing / kStagnation /
// kZeroResidual) replace the cross-solver battery with the corresponding
// edge-path assertion.
//
#include <string>
#include <vector>

#include "util/types.hpp"
#include "verify/scenario.hpp"

namespace cmesolve::verify {

struct OracleOptions {
  /// Cross-format SpMV agreement, relative to ||A||_inf * ||x||_inf.
  real_t spmv_rel_tol = 1e-12;
  /// Pairwise L1 agreement between converged solvers.
  real_t solver_l1_tol = 5e-5;
  /// Largest space the dense Gaussian-elimination reference runs on.
  index_t dense_max = 400;
  /// Largest space (and iteration budget) the SSA oracle accepts.
  index_t ssa_max = 160;
  /// Largest space the FSP-parity oracle accepts.
  index_t fsp_max = 3000;
  /// Largest stencil box (rows) the batched-ensemble oracle accepts.
  index_t ensemble_max = 20'000;
  /// Largest space the transient cross-check accepts.
  index_t transient_max = 2000;
  bool with_ssa = false;      ///< expensive; the fuzz driver samples it
  bool with_fsp = true;
  /// Transient engine cross-check (uniformization vs Krylov vs stencil
  /// path vs stationary limit, plus the SSA time-marginal chi-square when
  /// with_ssa is also set). Cheap; the fuzz driver samples it anyway.
  bool with_transient = true;
  bool with_ensemble = true;
  bool with_gpusim = true;
  bool with_matrix_market = true;
  /// Re-solve at 1 and 8 threads and require bit-identity. Leave off when
  /// the caller already pins util::set_max_threads (corpus replay).
  bool with_threads = false;
  /// Full-observability determinism: re-solve with metrics + the flight
  /// recorder enabled and require identical fingerprints/flight streams at
  /// 1 and 8 threads, and with and without the recorder attached. CLOBBERS
  /// the process-wide metric registry and flight buffer — leave off when
  /// the host program is accumulating a run report of its own.
  bool with_telemetry = false;
};

struct OracleFailure {
  std::string oracle;   ///< which oracle tripped ("invariants", ...)
  std::string message;  ///< human-readable cause
};

struct VerifyResult {
  bool passed = true;
  std::vector<OracleFailure> failures;
  std::vector<std::string> oracles_run;
  std::size_t states = 0;  ///< enumerated space size

  /// Name of the first failing oracle ("" when passed) — the shrinking
  /// predicate keys on this so a shrink cannot drift to a different bug.
  [[nodiscard]] std::string primary() const {
    return failures.empty() ? std::string() : failures.front().oracle;
  }
};

[[nodiscard]] VerifyResult verify_scenario(const Scenario& sc,
                                           const OracleOptions& opt = {});

}  // namespace cmesolve::verify
