#include "verify/report_check.hpp"

#include <cmath>
#include <stdexcept>

#include "verify/json_reader.hpp"

namespace cmesolve::verify {

namespace {

struct Violation : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void fail(const std::string& what) { throw Violation(what); }

void check_unique_keys(const JsonValue& obj, const std::string& where) {
  for (const auto& [key, value] : obj.members) {
    (void)value;
    if (obj.count(key) > 1) {
      fail(where + ": duplicate key \"" + key + "\"");
    }
  }
}

const JsonValue& member(const JsonValue& obj, const char* key,
                        const std::string& where) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) fail(where + ": missing \"" + key + "\"");
  return *v;
}

const JsonValue& object_member(const JsonValue& obj, const char* key,
                               const std::string& where) {
  const JsonValue& v = member(obj, key, where);
  if (!v.is_object()) fail(where + ": \"" + key + "\" must be an object");
  check_unique_keys(v, where + "." + key);
  return v;
}

void check_counters(const JsonValue& counters, const std::string& where) {
  for (const auto& [name, v] : counters.members) {
    if (!v.is_number() || v.number < 0.0 || v.number != std::floor(v.number)) {
      fail(where + "." + name + ": counters must be nonnegative integers");
    }
  }
}

void check_gauges(const JsonValue& gauges, const std::string& where) {
  for (const auto& [name, v] : gauges.members) {
    // %.17g emits finite doubles; NaN/inf are written as null by contract.
    if (!v.is_number() && !v.is_null()) {
      fail(where + "." + name + ": gauges must be numbers or null");
    }
  }
}

void check_histograms(const JsonValue& histograms, const std::string& where) {
  for (const auto& [name, v] : histograms.members) {
    const std::string here = where + "." + name;
    if (!v.is_object()) fail(here + ": histograms must be objects");
    check_unique_keys(v, here);
    for (const char* field : {"count", "min", "max", "mean", "stddev"}) {
      const JsonValue& f = member(v, field, here);
      if (!f.is_number() && !f.is_null()) {
        fail(here + "." + field + ": must be a number or null");
      }
    }
    const JsonValue& count = member(v, "count", here);
    if (!count.is_number() || count.number < 0.0 ||
        count.number != std::floor(count.number)) {
      fail(here + ".count: must be a nonnegative integer");
    }
  }
}

void check_metric_block(const JsonValue& block, const std::string& where,
                        bool counters_required) {
  if (counters_required || block.find("counters") != nullptr) {
    check_counters(object_member(block, "counters", where), where + ".counters");
  }
  check_gauges(object_member(block, "gauges", where), where + ".gauges");
  check_histograms(object_member(block, "histograms", where),
                   where + ".histograms");
}

/// The /2 post-mortem section: iteration-indexed solver events. Every event
/// carries a track, a known kind, a nonnegative integer iteration, and a
/// numeric (or null, for non-finite) value; "lane" is optional.
void check_flight(const JsonValue& flight, const std::string& where) {
  const JsonValue& pm = member(flight, "post_mortem", where);
  if (!pm.is_string() && !pm.is_null()) {
    fail(where + ".post_mortem: must be a string or null");
  }
  for (const char* key : {"capacity", "overwritten"}) {
    const JsonValue& v = member(flight, key, where);
    if (!v.is_number() || v.number < 0.0 || v.number != std::floor(v.number)) {
      fail(where + "." + key + ": must be a nonnegative integer");
    }
  }
  if (!member(flight, "signature", where).is_string()) {
    fail(where + ".signature: must be a string");
  }
  const JsonValue& events = member(flight, "events", where);
  if (!events.is_array()) fail(where + ".events: must be an array");
  for (std::size_t i = 0; i < events.items.size(); ++i) {
    const std::string here = where + ".events[" + std::to_string(i) + "]";
    const JsonValue& ev = events.items[i];
    if (!ev.is_object()) fail(here + ": must be an object");
    check_unique_keys(ev, here);
    if (!member(ev, "track", here).is_string()) {
      fail(here + ".track: must be a string");
    }
    const JsonValue& kind = member(ev, "kind", here);
    if (!kind.is_string()) fail(here + ".kind: must be a string");
    bool known = false;
    for (const char* k : {"residual", "normalization", "stagnation", "stop",
                          "fsp-round", "fsp-states", "batch-active"}) {
      known = known || kind.string == k;
    }
    if (!known) fail(here + ".kind: unknown kind \"" + kind.string + "\"");
    const JsonValue& it = member(ev, "iteration", here);
    if (!it.is_number() || it.number < 0.0 ||
        it.number != std::floor(it.number)) {
      fail(here + ".iteration: must be a nonnegative integer");
    }
    if (const JsonValue* lane = ev.find("lane"); lane != nullptr) {
      if (!lane->is_number() || lane->number < 0.0 ||
          lane->number != std::floor(lane->number)) {
        fail(here + ".lane: must be a nonnegative integer");
      }
    }
    const JsonValue& value = member(ev, "value", here);
    if (!value.is_number() && !value.is_null()) {
      fail(here + ".value: must be a number or null");
    }
  }
}

void validate(const JsonValue& doc) {
  if (!doc.is_object()) fail("document must be an object");
  check_unique_keys(doc, "report");

  const JsonValue& schema = member(doc, "schema", "report");
  // /2 is an additive bump: /1 files remain valid, /2 adds the
  // "perf_available" provenance flag and the optional "flight" section.
  int version = 0;
  if (schema.is_string() && schema.string == "cmesolve.run_report/1") {
    version = 1;
  } else if (schema.is_string() && schema.string == "cmesolve.run_report/2") {
    version = 2;
  } else {
    fail("report.schema must be \"cmesolve.run_report/1\" or \"/2\"");
  }

  const JsonValue& prov = object_member(doc, "provenance", "report");
  for (const char* key : {"version", "git"}) {
    if (!member(prov, key, "provenance").is_string()) {
      fail(std::string("provenance.") + key + ": must be a string");
    }
  }
  const JsonValue& threads = member(prov, "threads", "provenance");
  if (!threads.is_number() || threads.number < 0.0 ||
      threads.number != std::floor(threads.number)) {
    fail("provenance.threads: must be a nonnegative integer");
  }
  for (const char* key : {"openmp", "threads_enabled"}) {
    if (!member(prov, key, "provenance").is_bool()) {
      fail(std::string("provenance.") + key + ": must be a bool");
    }
  }
  if (version >= 2) {
    if (!member(prov, "perf_available", "provenance").is_bool()) {
      fail("provenance.perf_available: must be a bool");
    }
  }

  check_metric_block(object_member(doc, "metrics", "report"), "metrics",
                     /*counters_required=*/true);
  check_metric_block(object_member(doc, "volatile", "report"), "volatile",
                     /*counters_required=*/true);

  if (const JsonValue* flight = doc.find("flight"); flight != nullptr) {
    if (version < 2) fail("report.flight: not part of cmesolve.run_report/1");
    if (!flight->is_object()) fail("report.flight: must be an object");
    check_unique_keys(*flight, "flight");
    check_flight(*flight, "flight");
  }
}

}  // namespace

bool validate_run_report(std::string_view text, std::string* error) {
  try {
    validate(parse_json(text));
    return true;
  } catch (const std::exception& e) {
    if (error != nullptr) *error = e.what();
    return false;
  }
}

}  // namespace cmesolve::verify
