#pragma once
//
// Run-report schema oracle.
//
// Validates a JSON document against the "cmesolve.run_report" contract the
// report writer promises (obs/report.hpp): required sections, member types,
// histogram shape, and — because the reader keeps duplicate object members —
// that no object carries the same key twice (the drift mode a map-based
// parser would silently hide). Both schema versions are accepted: /1 and
// the additive /2 bump (perf_available provenance flag + the optional
// flight-recorder post-mortem section, which is validated when present).
// The fuzz driver validates its own report every run; tests validate
// reports produced under metric load.
//
#include <string>
#include <string_view>

namespace cmesolve::verify {

/// True when `text` is a valid cmesolve.run_report/1 or /2 document. On failure
/// `error` (if non-null) receives a one-line description of the first
/// violation found.
[[nodiscard]] bool validate_run_report(std::string_view text,
                                       std::string* error = nullptr);

}  // namespace cmesolve::verify
