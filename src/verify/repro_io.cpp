#include "verify/repro_io.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "verify/json_reader.hpp"

namespace cmesolve::verify {

void write_repro(std::ostream& os, const Scenario& sc) {
  obs::JsonWriter w(os, 2);
  w.begin_object();
  w.kv("schema", kReproSchema);
  w.kv("name", sc.name);
  w.kv("seed", static_cast<std::uint64_t>(sc.seed));
  w.kv("archetype", sc.archetype);
  w.kv("expect", to_string(sc.expect));
  w.kv("max_states", static_cast<std::uint64_t>(sc.max_states));

  w.key("species").begin_array();
  for (const auto& s : sc.species) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("capacity", static_cast<std::int64_t>(s.capacity));
    w.end_object();
  }
  w.end_array();

  w.key("reactions").begin_array();
  for (const auto& r : sc.reactions) {
    w.begin_object();
    w.kv("name", r.name);
    w.kv("rate", r.rate);
    w.key("reactants").begin_array();
    for (const auto& re : r.reactants) {
      w.begin_object();
      w.kv("species", static_cast<std::int64_t>(re.species));
      w.kv("copies", static_cast<std::int64_t>(re.copies));
      w.end_object();
    }
    w.end_array();
    w.key("changes").begin_array();
    for (const auto& ch : r.changes) {
      w.begin_object();
      w.kv("species", static_cast<std::int64_t>(ch.species));
      w.kv("delta", static_cast<std::int64_t>(ch.delta));
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();

  w.key("initial").begin_array();
  for (const auto x : sc.initial) {
    w.value(static_cast<std::int64_t>(x));
  }
  w.end_array();

  w.key("jacobi").begin_object();
  w.kv("eps", sc.jacobi_eps);
  w.kv("stagnation_eps", sc.jacobi_stagnation_eps);
  w.kv("max_iterations", static_cast<std::uint64_t>(sc.jacobi_max_iterations));
  w.kv("damping", sc.jacobi_damping);
  w.end_object();

  w.end_object();
  os << '\n';
}

std::string serialize_repro(const Scenario& sc) {
  std::ostringstream os;
  write_repro(os, sc);
  return os.str();
}

namespace {

[[noreturn]] void bad(const std::string& what) {
  throw std::runtime_error("repro: " + what);
}

const JsonValue& require(const JsonValue& obj, const char* key,
                         JsonValue::Kind kind, const char* kind_name) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) bad(std::string("missing key \"") + key + "\"");
  if (v->kind != kind) {
    bad(std::string("key \"") + key + "\" must be " + kind_name);
  }
  return *v;
}

const JsonValue& require_object(const JsonValue& obj, const char* key) {
  return require(obj, key, JsonValue::Kind::kObject, "an object");
}
const JsonValue& require_array(const JsonValue& obj, const char* key) {
  return require(obj, key, JsonValue::Kind::kArray, "an array");
}
std::string require_string(const JsonValue& obj, const char* key) {
  return require(obj, key, JsonValue::Kind::kString, "a string").string;
}
double require_number(const JsonValue& obj, const char* key) {
  return require(obj, key, JsonValue::Kind::kNumber, "a number").number;
}

/// Non-negative integer field. Fuzz seeds and iteration caps stay far below
/// 2^53, so the double-valued JSON number is exact.
std::uint64_t require_uint(const JsonValue& obj, const char* key) {
  const double d = require_number(obj, key);
  if (!(d >= 0.0) || d != std::floor(d) || d > 9.007199254740992e15) {
    bad(std::string("key \"") + key + "\" must be a nonnegative integer");
  }
  return static_cast<std::uint64_t>(d);
}

std::int32_t require_int32(const JsonValue& obj, const char* key) {
  const double d = require_number(obj, key);
  if (d != std::floor(d) || d < std::numeric_limits<std::int32_t>::min() ||
      d > std::numeric_limits<std::int32_t>::max()) {
    bad(std::string("key \"") + key + "\" must be a 32-bit integer");
  }
  return static_cast<std::int32_t>(d);
}

}  // namespace

Scenario parse_repro(std::string_view text) {
  const JsonValue doc = parse_json(text, kWireJsonLimits);
  if (!doc.is_object()) bad("document must be an object");
  const std::string schema = require_string(doc, "schema");
  if (schema != kReproSchema) bad("unsupported schema: " + schema);

  Scenario sc;
  sc.name = require_string(doc, "name");
  sc.seed = require_uint(doc, "seed");
  sc.archetype = require_string(doc, "archetype");
  sc.expect = expectation_from_string(require_string(doc, "expect"));
  sc.max_states = static_cast<std::size_t>(require_uint(doc, "max_states"));

  for (const auto& item : require_array(doc, "species").items) {
    if (!item.is_object()) bad("species entries must be objects");
    ScenarioSpecies s;
    s.name = require_string(item, "name");
    s.capacity = require_int32(item, "capacity");
    if (s.capacity < 0) bad("species capacity must be nonnegative");
    sc.species.push_back(std::move(s));
  }
  const auto ns = static_cast<std::int32_t>(sc.species.size());

  auto check_species_id = [&](std::int32_t id) {
    if (id < 0 || id >= ns) bad("species index out of range");
  };

  for (const auto& item : require_array(doc, "reactions").items) {
    if (!item.is_object()) bad("reaction entries must be objects");
    ScenarioReaction r;
    r.name = require_string(item, "name");
    r.rate = require_number(item, "rate");
    for (const auto& re : require_array(item, "reactants").items) {
      if (!re.is_object()) bad("reactant entries must be objects");
      core::Reactant reactant;
      reactant.species = require_int32(re, "species");
      reactant.copies = require_int32(re, "copies");
      check_species_id(reactant.species);
      r.reactants.push_back(reactant);
    }
    for (const auto& ch : require_array(item, "changes").items) {
      if (!ch.is_object()) bad("change entries must be objects");
      core::SpeciesChange change;
      change.species = require_int32(ch, "species");
      change.delta = require_int32(ch, "delta");
      check_species_id(change.species);
      r.changes.push_back(change);
    }
    sc.reactions.push_back(std::move(r));
  }

  const auto& initial = require_array(doc, "initial");
  if (initial.items.size() != sc.species.size()) {
    bad("initial state length must match species count");
  }
  for (std::size_t i = 0; i < initial.items.size(); ++i) {
    const auto& item = initial.items[i];
    if (!item.is_number()) bad("initial entries must be numbers");
    const auto x = static_cast<std::int32_t>(item.number);
    if (static_cast<double>(x) != item.number || x < 0 ||
        x > sc.species[i].capacity) {
      bad("initial state outside the capacity box");
    }
    sc.initial.push_back(x);
  }

  const auto& jac = require_object(doc, "jacobi");
  sc.jacobi_eps = require_number(jac, "eps");
  sc.jacobi_stagnation_eps = require_number(jac, "stagnation_eps");
  sc.jacobi_max_iterations = require_uint(jac, "max_iterations");
  sc.jacobi_damping = require_number(jac, "damping");
  return sc;
}

Scenario load_repro_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) bad("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_repro(buf.str());
  } catch (const std::exception& e) {
    bad(path + ": " + e.what());
  }
}

bool save_repro_file(const std::string& path, const Scenario& sc) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  write_repro(out, sc);
  return static_cast<bool>(out);
}

}  // namespace cmesolve::verify
