#pragma once
//
// Canonical .repro.json serialization for fuzz scenarios.
//
// The format is deliberately boring: a fixed key order, two-space indent,
// %.17g doubles (shortest-or-exact via the shared JsonWriter), so that
// serialize(parse(text)) == text for every file the library itself wrote.
// That byte-stability is load-bearing — corpus entries are diffed in review
// and the shrinker dedupes failures by serialized form.
//
//   {
//     "schema": "cmesolve.repro/1",
//     "name": ..., "seed": ..., "archetype": ..., "expect": ...,
//     "max_states": ...,
//     "species":   [ {"name", "capacity"}, ... ],
//     "reactions": [ {"name", "rate", "reactants": [{"species","copies"}],
//                     "changes": [{"species","delta"}]}, ... ],
//     "initial":   [ ... ],
//     "jacobi":    { "eps", "stagnation_eps", "max_iterations", "damping" }
//   }
//
#include <iosfwd>
#include <string>
#include <string_view>

#include "verify/json_reader.hpp"
#include "verify/scenario.hpp"

namespace cmesolve::verify {

inline constexpr const char* kReproSchema = "cmesolve.repro/1";

/// Parse limits for untrusted .repro.json input (the serve wire format,
/// src/serve/). A canonical writer-produced document nests 4 levels deep
/// and never repeats a key, so the caps cost nothing on legitimate traffic
/// while rejecting nesting bombs, oversized bodies, and silently-shadowed
/// duplicate members ({"rate":1,"rate":1e9} would otherwise take the first
/// and drop the second without a trace). parse_repro applies these
/// unconditionally — every reader of the codec is a wire endpoint now.
inline constexpr JsonLimits kWireJsonLimits{
    /*.max_bytes =*/8u << 20,  // 8 MiB
    /*.max_depth =*/24,
    /*.reject_duplicate_keys =*/true,
};

/// Serialize in canonical form (fixed key order, trailing newline).
void write_repro(std::ostream& os, const Scenario& sc);
[[nodiscard]] std::string serialize_repro(const Scenario& sc);

/// Parse and validate a .repro.json document under kWireJsonLimits. Throws
/// std::runtime_error with a field-naming message on schema violations and
/// a line/column-annotated message on JSON-level failures (both propagate
/// the json_reader diagnostics verbatim).
[[nodiscard]] Scenario parse_repro(std::string_view text);

/// File helpers; load throws on unreadable/invalid files, save returns
/// false on I/O failure.
[[nodiscard]] Scenario load_repro_file(const std::string& path);
bool save_repro_file(const std::string& path, const Scenario& sc);

}  // namespace cmesolve::verify
