#include "verify/scenario.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace cmesolve::verify {

const char* to_string(Expectation e) noexcept {
  switch (e) {
    case Expectation::kSteadyState: return "steady-state";
    case Expectation::kAbsorbing: return "absorbing";
    case Expectation::kStagnation: return "stagnation";
    case Expectation::kZeroResidual: return "zero-residual";
  }
  return "?";
}

Expectation expectation_from_string(const std::string& s) {
  if (s == "steady-state") return Expectation::kSteadyState;
  if (s == "absorbing") return Expectation::kAbsorbing;
  if (s == "stagnation") return Expectation::kStagnation;
  if (s == "zero-residual") return Expectation::kZeroResidual;
  throw std::runtime_error("scenario: unknown expectation: " + s);
}

core::ReactionNetwork build_network(const Scenario& sc) {
  core::ReactionNetwork net;
  for (const auto& s : sc.species) {
    net.add_species(s.name, s.capacity);
  }
  for (const auto& r : sc.reactions) {
    net.add_reaction(r.name, r.rate, r.reactants, r.changes);
  }
  return net;
}

namespace {

// ---------------------------------------------------------------------------
// Archetype builders. Every family keeps the reachable component ergodic by
// construction (feed+decay on some species, a complete ring, or reversible
// pairs), so the cross-solver oracles may treat disagreement as a bug.
// Capacities are sized so the full box stays a few thousand states: the
// oracle battery runs hundreds of scenarios per fuzz invocation.
// ---------------------------------------------------------------------------

void add_species_block(Scenario& sc, int count, std::int32_t cap) {
  for (int s = 0; s < count; ++s) {
    sc.species.push_back({"S" + std::to_string(s), cap});
  }
  sc.initial.assign(static_cast<std::size_t>(count), 0);
}

/// Reversible conversion mesh, the baseline family: copies of src convert
/// into one dst and back, plus a birth/death pair keeping the origin
/// connected. `rate` supplies every intrinsic rate.
template <class RateFn>
void build_mesh(Scenario& sc, Xoshiro256& rng, RateFn&& rate) {
  const int ns = 2 + static_cast<int>(rng.bounded(3));
  const auto cap = static_cast<std::int32_t>(3 + rng.bounded(5));
  add_species_block(sc, ns, cap);
  const int pairs = 2 + static_cast<int>(rng.bounded(3));
  for (int k = 0; k < pairs; ++k) {
    const int src = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(ns)));
    int dst = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(ns)));
    if (dst == src) dst = (dst + 1) % ns;
    const auto copies = static_cast<std::int32_t>(1 + rng.bounded(2));
    sc.reactions.push_back({"fwd" + std::to_string(k), rate(),
                            {{src, copies}},
                            {{src, -copies}, {dst, +1}}});
    sc.reactions.push_back({"rev" + std::to_string(k), rate(),
                            {{dst, 1}},
                            {{dst, -1}, {src, +copies}}});
  }
  sc.reactions.push_back({"feed", rate(), {}, {{0, +1}}});
  sc.reactions.push_back({"decay", rate(), {{0, 1}}, {{0, -1}}});
}

void build_reversible_mesh(Scenario& sc, Xoshiro256& rng) {
  build_mesh(sc, rng, [&rng] { return rng.uniform(0.5, 3.0); });
}

/// Rate ratios spanning 1e±8: every rate is 10^U(-8, 8).
void build_rate_cliff(Scenario& sc, Xoshiro256& rng) {
  build_mesh(sc, rng, [&rng] {
    real_t r = 1.0;
    const int decades = static_cast<int>(rng.range(-8, 8));
    for (int i = 0; i < decades; ++i) r *= 10.0;
    for (int i = 0; i > decades; --i) r /= 10.0;
    return r * rng.uniform(1.0, 9.99);
  });
}

/// Near-zero rates: a fraction of the mesh runs at ~1e-12 while the rest
/// stays O(1) — exercises propensity underflow and stagnation detection
/// without breaking reachability (the rates stay strictly positive).
void build_near_zero(Scenario& sc, Xoshiro256& rng) {
  build_mesh(sc, rng, [&rng] {
    const bool tiny = rng.bounded(3) == 0;
    return tiny ? rng.uniform(0.5, 3.0) * 1e-12 : rng.uniform(0.5, 3.0);
  });
}

/// Saturated buffers: capacities of 1-2 with strong feeds pushing every
/// species against its cap. The capacity-box truncation dominates the
/// generator structure — short irregular rows, the padding-bug honeypot.
void build_saturated(Scenario& sc, Xoshiro256& rng) {
  const int ns = 3 + static_cast<int>(rng.bounded(3));
  const auto cap = static_cast<std::int32_t>(1 + rng.bounded(2));
  add_species_block(sc, ns, cap);
  for (int s = 0; s < ns; ++s) {
    sc.initial[static_cast<std::size_t>(s)] = cap;  // start pinned at the wall
    sc.reactions.push_back({"feed" + std::to_string(s),
                            rng.uniform(2.0, 8.0), {}, {{s, +1}}});
    sc.reactions.push_back({"drain" + std::to_string(s),
                            rng.uniform(0.1, 0.5), {{s, 1}}, {{s, -1}}});
  }
  const int links = 1 + static_cast<int>(rng.bounded(3));
  for (int k = 0; k < links; ++k) {
    const int src = static_cast<int>(rng.bounded(static_cast<std::uint64_t>(ns)));
    const int dst = (src + 1 + static_cast<int>(rng.bounded(
                                   static_cast<std::uint64_t>(ns - 1)))) % ns;
    sc.reactions.push_back({"xfer" + std::to_string(k),
                            rng.uniform(0.5, 4.0),
                            {{src, 1}},
                            {{src, -1}, {dst, +1}}});
  }
}

/// Conservation-law-heavy: an irreversible conversion ring. The total copy
/// number is conserved, so the reachable space is the simplex slice
/// {sum_i x_i = T} of the capacity box — the stencil operator's
/// conservation elimination and the FSP boundary logic both get exercised.
void build_conservation_ring(Scenario& sc, Xoshiro256& rng) {
  const int ns = 3 + static_cast<int>(rng.bounded(3));
  const auto total = static_cast<std::int32_t>(4 + rng.bounded(5));
  add_species_block(sc, ns, total);
  sc.initial[0] = total;
  for (int s = 0; s < ns; ++s) {
    const int next = (s + 1) % ns;
    sc.reactions.push_back({"ring" + std::to_string(s),
                            rng.uniform(0.3, 3.0),
                            {{s, 1}},
                            {{s, -1}, {next, +1}}});
  }
}

/// Irreversible-only chain: feed -> S0 -> S1 -> ... -> drain. No reaction
/// has a reverse partner, yet the chain is ergodic; the generator has a
/// strictly one-sided band that DFS cannot fold into the {-1,0,+1} pattern.
void build_irreversible_chain(Scenario& sc, Xoshiro256& rng) {
  const int ns = 2 + static_cast<int>(rng.bounded(3));
  const auto cap = static_cast<std::int32_t>(3 + rng.bounded(4));
  add_species_block(sc, ns, cap);
  sc.reactions.push_back({"feed", rng.uniform(1.0, 5.0), {}, {{0, +1}}});
  for (int s = 0; s + 1 < ns; ++s) {
    sc.reactions.push_back({"step" + std::to_string(s),
                            rng.uniform(0.5, 3.0),
                            {{s, 1}},
                            {{s, -1}, {s + 1, +1}}});
  }
  sc.reactions.push_back({"drain", rng.uniform(0.5, 3.0),
                          {{ns - 1, 1}},
                          {{ns - 1, -1}}});
}

/// Single-species birth-death chain with an optional pair-annihilation
/// channel: the whole generator is the tridiagonal(-ish) band, rates spread
/// across decades.
void build_single_species(Scenario& sc, Xoshiro256& rng) {
  const auto cap = static_cast<std::int32_t>(16 + rng.bounded(113));
  sc.species.push_back({"X", cap});
  sc.initial.assign(1, 0);
  sc.reactions.push_back({"birth", rng.uniform(1.0, 50.0), {}, {{0, +1}}});
  sc.reactions.push_back({"death", rng.uniform(0.05, 2.0), {{0, 1}}, {{0, -1}}});
  if (rng.bounded(2) == 0) {
    sc.reactions.push_back({"annihilate", rng.uniform(1e-4, 1e-1),
                            {{0, 2}},
                            {{0, -2}}});
  }
}

/// Binding equilibrium A + B <-> C with a conserved B + C total and an open
/// feed/drain on A: higher-order reactants plus a conservation law in the
/// same network.
void build_binding(Scenario& sc, Xoshiro256& rng) {
  const auto b_total = static_cast<std::int32_t>(2 + rng.bounded(3));
  const auto cap_a = static_cast<std::int32_t>(6 + rng.bounded(7));
  sc.species.push_back({"A", cap_a});
  sc.species.push_back({"B", b_total});
  sc.species.push_back({"C", b_total});
  sc.initial = {0, b_total, 0};
  sc.reactions.push_back({"bind", rng.uniform(0.2, 2.0),
                          {{0, 1}, {1, 1}},
                          {{0, -1}, {1, -1}, {2, +1}}});
  sc.reactions.push_back({"unbind", rng.uniform(0.5, 3.0),
                          {{2, 1}},
                          {{2, -1}, {0, +1}, {1, +1}}});
  sc.reactions.push_back({"feed", rng.uniform(1.0, 6.0), {}, {{0, +1}}});
  sc.reactions.push_back({"drain", rng.uniform(0.3, 1.5), {{0, 1}}, {{0, -1}}});
}

}  // namespace

const std::vector<std::string>& scenario_archetypes() {
  static const std::vector<std::string> kNames = {
      "reversible-mesh",     "rate-cliff",     "near-zero",
      "saturated",           "conservation-ring", "irreversible-chain",
      "single-species",      "binding",
  };
  return kNames;
}

Scenario random_scenario(std::uint64_t seed) {
  Xoshiro256 rng(seed ^ 0xC3E5'F00D'5EED'2026ULL);
  const auto& families = scenario_archetypes();
  const auto pick = rng.bounded(families.size());

  Scenario sc;
  sc.seed = seed;
  sc.archetype = families[static_cast<std::size_t>(pick)];
  sc.name = "fuzz-" + std::to_string(seed) + "-" + sc.archetype;

  switch (pick) {
    case 0: build_reversible_mesh(sc, rng); break;
    case 1: build_rate_cliff(sc, rng); break;
    case 2: build_near_zero(sc, rng); break;
    case 3: build_saturated(sc, rng); break;
    case 4: build_conservation_ring(sc, rng); break;
    case 5: build_irreversible_chain(sc, rng); break;
    case 6: build_single_species(sc, rng); break;
    default: build_binding(sc, rng); break;
  }
  return sc;
}

}  // namespace cmesolve::verify
