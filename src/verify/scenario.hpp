#pragma once
//
// Fuzz scenarios: self-contained, serializable CME problem instances.
//
// A Scenario is the plain-data twin of (ReactionNetwork, initial state,
// solver configuration): everything the differential-verification oracles
// need to rebuild the full pipeline from scratch, small enough to check into
// tests/corpus/ as a .repro.json and replay deterministically. The random
// generator emits the adversarial families that hand-picked unit fixtures
// miss — near-zero rates, saturated buffers, conservation-law-heavy
// topologies, irreversible-only cycles, single-species chains, rate ratios
// spanning 1e±8 — while guaranteeing by construction that the reachable
// component stays ergodic (so a cross-solver disagreement is a bug, not a
// modelling artifact).
//
#include <cstdint>
#include <string>
#include <vector>

#include "core/reaction_network.hpp"
#include "util/types.hpp"

namespace cmesolve::verify {

struct ScenarioSpecies {
  std::string name;
  std::int32_t capacity = 1;
};

struct ScenarioReaction {
  std::string name;
  real_t rate = 0.0;
  std::vector<core::Reactant> reactants;
  std::vector<core::SpeciesChange> changes;
};

/// What a replay asserts about the scenario.
enum class Expectation {
  kSteadyState,   ///< full oracle battery must pass
  kAbsorbing,     ///< solvers must reject with the zero-diagonal error
  kStagnation,    ///< Jacobi must stop through the stagnation path
  kZeroResidual,  ///< Jacobi must stop through the exact-zero residual path
};

[[nodiscard]] const char* to_string(Expectation e) noexcept;
/// Parses the .repro.json spelling; throws std::runtime_error on unknown.
[[nodiscard]] Expectation expectation_from_string(const std::string& s);

struct Scenario {
  std::string name;          ///< stable identifier ("fuzz-<seed>-<archetype>")
  std::uint64_t seed = 0;    ///< generator seed (0 for handcrafted entries)
  std::string archetype;     ///< generator family tag
  std::vector<ScenarioSpecies> species;
  std::vector<ScenarioReaction> reactions;
  core::State initial;
  std::size_t max_states = 200'000;  ///< enumeration cap (oracle asserts closure)
  Expectation expect = Expectation::kSteadyState;

  // Directed inner-solver configuration. The defaults suit the random
  // archetypes; the stagnation/zero-residual corpus entries pin these to
  // drive the Jacobi edge paths deliberately.
  real_t jacobi_eps = 1e-9;
  real_t jacobi_stagnation_eps = 1e-8;
  std::uint64_t jacobi_max_iterations = 300'000;
  real_t jacobi_damping = 0.8;  ///< random nets can be bipartite-ish
};

/// Instantiate the reaction network (throws on inconsistent species ids —
/// a malformed hand-edited repro file, not a generator output).
[[nodiscard]] core::ReactionNetwork build_network(const Scenario& sc);

/// Archetype names the generator cycles through, in selection order.
[[nodiscard]] const std::vector<std::string>& scenario_archetypes();

/// Deterministic adversarial scenario for a seed. Equal seeds produce
/// byte-identical scenarios (the fuzz driver's reproducibility contract).
[[nodiscard]] Scenario random_scenario(std::uint64_t seed);

}  // namespace cmesolve::verify
