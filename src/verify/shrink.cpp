#include "verify/shrink.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace cmesolve::verify {

namespace {

class Shrinker {
 public:
  Shrinker(Scenario sc, const ShrinkPredicate& still_fails,
           const ShrinkOptions& opt)
      : sc_(std::move(sc)), still_fails_(still_fails), opt_(opt) {}

  Scenario run() {
    bool progressed = true;
    while (progressed && !exhausted()) {
      progressed = false;
      progressed |= pass_drop_reactions();
      progressed |= pass_drop_unused_species();
      progressed |= pass_halve_capacities();
      progressed |= pass_round_rates();
      progressed |= pass_zero_initial();
    }
    return std::move(sc_);
  }

  [[nodiscard]] ShrinkStats stats() const noexcept { return stats_; }

 private:
  [[nodiscard]] bool exhausted() const noexcept {
    return stats_.attempts >= opt_.max_attempts;
  }

  /// Evaluate a candidate; adopt it when the same failure persists.
  bool accept(Scenario&& cand) {
    if (exhausted()) return false;
    ++stats_.attempts;
    if (!still_fails_(cand)) return false;
    sc_ = std::move(cand);
    ++stats_.accepted;
    return true;
  }

  bool pass_drop_reactions() {
    bool any = false;
    // Re-scan from the front after every acceptance: index meaning shifts.
    for (std::size_t i = 0; i < sc_.reactions.size() && !exhausted();) {
      if (sc_.reactions.size() <= 1) break;  // keep at least one reaction
      Scenario cand = sc_;
      cand.reactions.erase(cand.reactions.begin() +
                           static_cast<std::ptrdiff_t>(i));
      if (accept(std::move(cand))) {
        any = true;  // same index now names the next reaction
      } else {
        ++i;
      }
    }
    return any;
  }

  bool pass_drop_unused_species() {
    bool any = false;
    for (std::size_t s = 0; s < sc_.species.size() && !exhausted();) {
      if (sc_.species.size() <= 1 || species_used(static_cast<int>(s))) {
        ++s;
        continue;
      }
      Scenario cand = sc_;
      cand.species.erase(cand.species.begin() + static_cast<std::ptrdiff_t>(s));
      cand.initial.erase(cand.initial.begin() + static_cast<std::ptrdiff_t>(s));
      for (auto& r : cand.reactions) {
        for (auto& re : r.reactants) {
          if (re.species > static_cast<std::int32_t>(s)) --re.species;
        }
        for (auto& ch : r.changes) {
          if (ch.species > static_cast<std::int32_t>(s)) --ch.species;
        }
      }
      if (accept(std::move(cand))) {
        any = true;
      } else {
        ++s;
      }
    }
    return any;
  }

  [[nodiscard]] bool species_used(int s) const {
    for (const auto& r : sc_.reactions) {
      for (const auto& re : r.reactants) {
        if (re.species == s) return true;
      }
      for (const auto& ch : r.changes) {
        if (ch.species == s) return true;
      }
    }
    return false;
  }

  bool pass_halve_capacities() {
    bool any = false;
    for (std::size_t s = 0; s < sc_.species.size() && !exhausted(); ++s) {
      // Keep halving the same species while the failure survives.
      while (sc_.species[s].capacity > 1 && !exhausted()) {
        Scenario cand = sc_;
        cand.species[s].capacity = std::max<std::int32_t>(
            1, cand.species[s].capacity / 2);
        cand.initial[s] = std::min(cand.initial[s], cand.species[s].capacity);
        if (!accept(std::move(cand))) break;
        any = true;
      }
    }
    return any;
  }

  bool pass_round_rates() {
    bool any = false;
    for (std::size_t i = 0; i < sc_.reactions.size() && !exhausted(); ++i) {
      const real_t rate = sc_.reactions[i].rate;
      if (rate == 1.0) continue;
      {
        Scenario cand = sc_;
        cand.reactions[i].rate = 1.0;
        if (accept(std::move(cand))) {
          any = true;
          continue;
        }
      }
      if (rate > 0.0 && !exhausted()) {
        const real_t rounded =
            std::pow(10.0, std::round(std::log10(rate)));
        if (rounded != rate) {
          Scenario cand = sc_;
          cand.reactions[i].rate = rounded;
          any |= accept(std::move(cand));
        }
      }
    }
    return any;
  }

  bool pass_zero_initial() {
    bool any = false;
    for (std::size_t s = 0; s < sc_.initial.size() && !exhausted(); ++s) {
      if (sc_.initial[s] == 0) continue;
      Scenario cand = sc_;
      cand.initial[s] = 0;
      any |= accept(std::move(cand));
    }
    return any;
  }

  Scenario sc_;
  const ShrinkPredicate& still_fails_;
  const ShrinkOptions& opt_;
  ShrinkStats stats_;
};

}  // namespace

Scenario shrink_scenario(Scenario sc, const ShrinkPredicate& still_fails,
                         const ShrinkOptions& opt, ShrinkStats* stats) {
  Shrinker sh(std::move(sc), still_fails, opt);
  Scenario out = sh.run();
  if (stats != nullptr) *stats = sh.stats();
  return out;
}

}  // namespace cmesolve::verify
