#pragma once
//
// Greedy failure shrinking.
//
// Given a failing scenario and a predicate that re-runs the oracles and
// answers "does this candidate still fail the same way?", shrink_scenario
// repeatedly tries structure-reducing edits and keeps every edit the
// predicate confirms, until a full pass over all edit kinds accepts nothing
// (a local minimum) or the attempt budget runs out. The edit kinds, ordered
// by how much they simplify the reproducer:
//
//   1. drop a reaction
//   2. drop a species no reaction references (remapping indices)
//   3. halve a species capacity (clamping the initial state)
//   4. round a rate to 1, then to its nearest power of ten
//   5. zero an initial-state entry
//
// The predicate owns the failure-equivalence definition; the fuzz driver
// passes "verify_scenario(..).primary() == original primary", so a shrink
// can never drift from the bug being minimized to a different one.
//
#include <cstddef>
#include <functional>

#include "verify/scenario.hpp"

namespace cmesolve::verify {

using ShrinkPredicate = std::function<bool(const Scenario&)>;

struct ShrinkOptions {
  std::size_t max_attempts = 2000;  ///< predicate-evaluation budget
};

struct ShrinkStats {
  std::size_t attempts = 0;  ///< predicate evaluations spent
  std::size_t accepted = 0;  ///< edits kept
};

/// Returns the minimized scenario (== the input when nothing shrinks).
[[nodiscard]] Scenario shrink_scenario(Scenario sc,
                                       const ShrinkPredicate& still_fails,
                                       const ShrinkOptions& opt = {},
                                       ShrinkStats* stats = nullptr);

}  // namespace cmesolve::verify
