// Tests for the communication-structure analysis and the DTMC wrapper.
#include <gtest/gtest.h>

#include "core/irreducibility.hpp"
#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "solver/dtmc.hpp"
#include "solver/vector_ops.hpp"

namespace cmesolve {
namespace {

using core::analyze_communication;

sparse::Csr generator_from_triplets(
    index_t n, std::initializer_list<std::tuple<index_t, index_t, real_t>> ts) {
  sparse::Coo c;
  c.nrows = c.ncols = n;
  std::vector<real_t> out(static_cast<std::size_t>(n), 0.0);
  for (auto [i, j, v] : ts) {
    c.add(i, j, v);
    out[static_cast<std::size_t>(j)] += v;
  }
  for (index_t j = 0; j < n; ++j) c.add(j, j, -out[j]);
  return sparse::csr_from_coo(std::move(c));
}

// --- communication structure ----------------------------------------------------

TEST(Communication, BirthDeathChainIsIrreducible) {
  // 0 <-> 1 <-> 2
  const auto a = generator_from_triplets(
      3, {{1, 0, 1.0}, {0, 1, 1.0}, {2, 1, 1.0}, {1, 2, 1.0}});
  const auto cs = analyze_communication(a);
  EXPECT_TRUE(cs.irreducible());
  EXPECT_TRUE(cs.unique_stationary());
  EXPECT_EQ(cs.num_components, 1);
}

TEST(Communication, PureDecayHasAbsorbingState) {
  // 2 -> 1 -> 0, no way back: three SCCs, only {0} closed.
  const auto a = generator_from_triplets(3, {{1, 2, 1.0}, {0, 1, 1.0}});
  const auto cs = analyze_communication(a);
  EXPECT_FALSE(cs.irreducible());
  EXPECT_TRUE(cs.unique_stationary());
  EXPECT_EQ(cs.num_components, 3);
  ASSERT_EQ(cs.closed_components.size(), 1u);
  EXPECT_EQ(cs.closed_components[0], cs.component[0]);
}

TEST(Communication, TwoDisconnectedCyclesGiveTwoClosedClasses) {
  // {0,1} and {2,3} each reversible, no cross edges.
  const auto a = generator_from_triplets(
      4, {{1, 0, 1.0}, {0, 1, 1.0}, {3, 2, 1.0}, {2, 3, 1.0}});
  const auto cs = analyze_communication(a);
  EXPECT_FALSE(cs.unique_stationary());
  EXPECT_EQ(cs.num_components, 2);
  EXPECT_EQ(cs.closed_components.size(), 2u);
}

TEST(Communication, TransientFeederIntoCycle) {
  // 0 -> 1 <-> 2: state 0 is transient, {1,2} the closed class.
  const auto a = generator_from_triplets(
      3, {{1, 0, 1.0}, {2, 1, 1.0}, {1, 2, 1.0}});
  const auto cs = analyze_communication(a);
  EXPECT_FALSE(cs.irreducible());
  EXPECT_TRUE(cs.unique_stationary());
  EXPECT_EQ(cs.component[1], cs.component[2]);
  EXPECT_NE(cs.component[0], cs.component[1]);
}

TEST(Communication, PaperSuiteIsIrreducible) {
  // Every benchmark network must have a unique steady state — the implicit
  // assumption behind Table IV.
  for (auto& model : core::models::paper_suite(core::models::SuiteScale::kTiny)) {
    const core::StateSpace space(model.network, model.initial, 1'000'000);
    const auto a = core::rate_matrix(space);
    const auto cs = analyze_communication(a);
    EXPECT_TRUE(cs.irreducible()) << model.name;
  }
}

TEST(Communication, LargeChainDoesNotOverflowTheStack) {
  // 100k-state chain: the iterative Tarjan must handle the deep DFS.
  const index_t n = 100'000;
  sparse::Coo c;
  c.nrows = c.ncols = n;
  for (index_t i = 0; i + 1 < n; ++i) {
    c.add(i + 1, i, 1.0);
    c.add(i, i + 1, 1.0);
    c.add(i, i, -2.0);
  }
  c.add(n - 1, n - 1, -1.0);
  const auto cs = analyze_communication(sparse::csr_from_coo(std::move(c)));
  EXPECT_TRUE(cs.irreducible());
}

// --- DTMC ----------------------------------------------------------------------

sparse::Csr two_state_dtmc(real_t stay0, real_t stay1) {
  sparse::Coo c;
  c.nrows = c.ncols = 2;
  c.add(0, 0, stay0);
  c.add(1, 0, 1.0 - stay0);
  c.add(1, 1, stay1);
  c.add(0, 1, 1.0 - stay1);
  return sparse::csr_from_coo(std::move(c));
}

TEST(Dtmc, ColumnStochasticCheck) {
  EXPECT_TRUE(solver::is_column_stochastic(two_state_dtmc(0.9, 0.5)));
  sparse::Coo bad;
  bad.nrows = bad.ncols = 2;
  bad.add(0, 0, 0.5);  // column 0 sums to 0.5
  bad.add(1, 1, 1.0);
  EXPECT_FALSE(solver::is_column_stochastic(sparse::csr_from_coo(std::move(bad))));
}

TEST(Dtmc, TwoStateStationary) {
  // pi proportional to (p01, p10) with p01 = 1-stay1 etc.
  const real_t stay0 = 0.8;
  const real_t stay1 = 0.4;
  const auto p = two_state_dtmc(stay0, stay1);
  std::vector<real_t> pi{0.5, 0.5};
  const auto r = solver::dtmc_stationary(p, pi);
  EXPECT_EQ(r.reason, solver::StopReason::kConverged);
  const real_t q01 = 1.0 - stay1;  // 1 -> 0
  const real_t q10 = 1.0 - stay0;  // 0 -> 1
  EXPECT_NEAR(pi[0], q01 / (q01 + q10), 1e-9);
  EXPECT_NEAR(pi[1], q10 / (q01 + q10), 1e-9);
}

TEST(Dtmc, RandomWalkOnCycle) {
  // Symmetric walk on a 5-cycle with holding 0.5: uniform stationary law.
  const index_t n = 5;
  sparse::Coo c;
  c.nrows = c.ncols = n;
  for (index_t j = 0; j < n; ++j) {
    c.add(j, j, 0.5);
    c.add((j + 1) % n, j, 0.25);
    c.add((j + n - 1) % n, j, 0.25);
  }
  const auto p = sparse::csr_from_coo(std::move(c));
  std::vector<real_t> pi(static_cast<std::size_t>(n));
  pi[0] = 1.0;
  const auto r = solver::dtmc_stationary(p, pi);
  EXPECT_EQ(r.reason, solver::StopReason::kConverged);
  for (real_t v : pi) EXPECT_NEAR(v, 0.2, 1e-9);
}

TEST(Dtmc, NonStochasticRejected) {
  sparse::Coo c;
  c.nrows = c.ncols = 2;
  c.add(0, 0, 0.7);
  c.add(1, 0, 0.7);
  c.add(1, 1, 1.0);
  const auto p = sparse::csr_from_coo(std::move(c));
  std::vector<real_t> pi{0.5, 0.5};
  EXPECT_THROW((void)solver::dtmc_stationary(p, pi), std::invalid_argument);
}

}  // namespace
}  // namespace cmesolve
