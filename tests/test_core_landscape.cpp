// Tests for the probability-landscape utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "core/landscape.hpp"
#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"

namespace cmesolve::core {
namespace {

struct ToggleFixture {
  models::ToggleSwitchParams params;
  ReactionNetwork net;
  StateSpace space;
  std::vector<real_t> p;

  explicit ToggleFixture(std::int32_t cap)
      : params([cap] {
          models::ToggleSwitchParams tp;
          tp.cap_a = tp.cap_b = cap;
          return tp;
        }()),
        net(models::toggle_switch(params)),
        space(net, models::toggle_switch_initial(params), 1'000'000) {
    const auto a = rate_matrix(space);
    solver::WarpedEllDiaOperator op(a);
    p.resize(static_cast<std::size_t>(a.nrows));
    solver::fill_uniform(p);
    solver::JacobiOptions opt;
    opt.eps = 1e-10;
    (void)solver::jacobi_solve(op, a.inf_norm(), p, opt);
  }
};

TEST(Landscape, MarginalSumsToOne) {
  const ToggleFixture f(15);
  const auto m = marginal(f.space, f.p, f.net.find_species("A"));
  real_t sum = 0;
  for (real_t v : m) {
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum, 1.0, 1e-10);
  EXPECT_EQ(m.size(), 16u);
}

TEST(Landscape, Marginal2dSumsToOneAndMatches1d) {
  const ToggleFixture f(15);
  const int sa = f.net.find_species("A");
  const int sb = f.net.find_species("B");
  const auto joint = marginal2d(f.space, f.p, sa, sb);
  const auto ma = marginal(f.space, f.p, sa);

  real_t sum = 0;
  for (real_t v : joint.grid) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-10);

  for (std::int32_t a = 0; a <= joint.cap_a; ++a) {
    real_t row = 0;
    for (std::int32_t b = 0; b <= joint.cap_b; ++b) row += joint.at(a, b);
    EXPECT_NEAR(row, ma[static_cast<std::size_t>(a)], 1e-12);
  }
}

TEST(Landscape, ToggleSwitchIsBistable) {
  // Fig. 2 of the paper: the mass sits at (A on, B off) and (A off, B on).
  const ToggleFixture f(30);
  const int sa = f.net.find_species("A");
  const int sb = f.net.find_species("B");
  const auto joint = marginal2d(f.space, f.p, sa, sb);

  // Mass in the two "exclusive" quadrants dominates the diagonal quadrants.
  const auto quadrant = [&](bool a_high, bool b_high) {
    real_t sum = 0;
    for (std::int32_t a = 0; a <= joint.cap_a; ++a) {
      for (std::int32_t b = 0; b <= joint.cap_b; ++b) {
        if ((a > joint.cap_a / 2) == a_high && (b > joint.cap_b / 2) == b_high) {
          sum += joint.at(a, b);
        }
      }
    }
    return sum;
  };
  const real_t exclusive = quadrant(true, false) + quadrant(false, true);
  const real_t diagonal = quadrant(true, true) + quadrant(false, false);
  EXPECT_GT(exclusive, 3.0 * diagonal);

  // Symmetry of the landscape under A <-> B.
  EXPECT_NEAR(quadrant(true, false), quadrant(false, true), 1e-6);
}

TEST(Landscape, TopStatesSortedDescending) {
  const std::vector<real_t> p{0.1, 0.4, 0.05, 0.3, 0.15};
  const auto top = top_states(p, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], 1);
  EXPECT_EQ(top[1], 3);
  EXPECT_EQ(top[2], 4);
}

TEST(Landscape, TopStatesClampsK) {
  const std::vector<real_t> p{0.5, 0.5};
  EXPECT_EQ(top_states(p, 10).size(), 2u);
}

TEST(Landscape, CountModesOnSyntheticGrids) {
  // Single Gaussian bump -> 1 mode; two separated bumps -> 2 modes.
  const auto bump_grid = [](std::initializer_list<std::pair<int, int>> centers) {
    Marginal2D m;
    m.cap_a = m.cap_b = 31;
    m.grid.assign(32 * 32, 0.0);
    for (auto [ca, cb] : centers) {
      for (int a = 0; a < 32; ++a) {
        for (int b = 0; b < 32; ++b) {
          const real_t d2 = static_cast<real_t>((a - ca) * (a - ca) +
                                                (b - cb) * (b - cb));
          m.grid[static_cast<std::size_t>(a) * 32 + b] += std::exp(-d2 / 8.0);
        }
      }
    }
    return m;
  };
  EXPECT_EQ(count_modes(bump_grid({{16, 16}}), 16, 0.05), 1);
  EXPECT_EQ(count_modes(bump_grid({{6, 25}, {25, 6}}), 16, 0.05), 2);
}

TEST(Landscape, RenderAsciiSmoke) {
  const ToggleFixture f(15);
  const auto joint = marginal2d(f.space, f.p, f.net.find_species("A"),
                                f.net.find_species("B"));
  const std::string art = render_ascii(joint, 40, 20);
  EXPECT_FALSE(art.empty());
  EXPECT_NE(art.find('\n'), std::string::npos);
  // Peak shade must appear somewhere.
  EXPECT_NE(art.find('@'), std::string::npos);
}

}  // namespace
}  // namespace cmesolve::core
