// Tests for the model zoo beyond the paper suite: enzyme kinetics, SIR,
// and cross-model invariants.
#include <gtest/gtest.h>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "solver/jacobi.hpp"
#include "solver/operators.hpp"
#include "solver/vector_ops.hpp"

namespace cmesolve::core {
namespace {

TEST(EnzymeKinetics, EnzymeConservation) {
  models::EnzymeKineticsParams p;
  p.enzyme_total = 3;
  p.cap_s = 10;
  p.cap_p = 10;
  const auto net = models::enzyme_kinetics(p);
  const StateSpace space(net, models::enzyme_kinetics_initial(p), 100000);
  const int e = net.find_species("E");
  const int es = net.find_species("ES");
  for (index_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(space.count(i, e) + space.count(i, es), 3)
        << "free + bound enzyme must be conserved";
  }
  // Slab size: (S, P) box times enzyme partitions.
  EXPECT_EQ(space.size(), 4 * 11 * 11);
}

TEST(EnzymeKinetics, SteadyStateFluxBalance) {
  // In steady state the mean catalysis flux equals the mean clearance flux
  // (and both equal the feed into the open S pool up to buffer truncation).
  models::EnzymeKineticsParams p;
  p.enzyme_total = 3;
  p.cap_s = 25;
  p.cap_p = 25;
  const auto net = models::enzyme_kinetics(p);
  const StateSpace space(net, models::enzyme_kinetics_initial(p), 1000000);
  const auto a = rate_matrix(space);

  solver::CsrDiaOperator op(a);
  std::vector<real_t> prob(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(prob);
  solver::JacobiOptions opt;
  opt.eps = 1e-10;
  const auto r = solver::jacobi_solve(op, a.inf_norm(), prob, opt);
  ASSERT_EQ(r.reason, solver::StopReason::kConverged);

  const int es = net.find_species("ES");
  const int prod = net.find_species("P");
  real_t catalysis = 0.0;
  real_t clearance = 0.0;
  for (index_t i = 0; i < space.size(); ++i) {
    catalysis += prob[i] * p.catalyze * space.count(i, es);
    clearance += prob[i] * p.clear * space.count(i, prod);
  }
  EXPECT_NEAR(catalysis, clearance, 0.02 * catalysis);
}

TEST(Sir, EndemicEquilibriumExists) {
  models::SirParams p;
  p.cap_s = 20;
  p.cap_i = 20;
  p.cap_r = 20;
  const auto net = models::sir(p);
  const StateSpace space(net, models::sir_initial(p), 1000000);
  const auto a = rate_matrix(space);

  solver::CsrDiaOperator op(a);
  std::vector<real_t> prob(static_cast<std::size_t>(a.nrows));
  solver::fill_uniform(prob);
  solver::JacobiOptions opt;
  opt.eps = 1e-9;
  const auto r = solver::jacobi_solve(op, a.inf_norm(), prob, opt);
  EXPECT_NE(r.reason, solver::StopReason::kMaxIterations);

  // With demography the disease-free states keep probability mass but the
  // infected marginal must have support beyond zero (reintroduction via
  // births keeps the chain irreducible only through I > 0 states reached
  // from the initial condition; mass at I = 0 is absorbing-free because
  // infection needs I >= 1 — so check the landscape is well-formed instead).
  const int i_species = net.find_species("I");
  real_t mean_i = 0.0;
  for (index_t i = 0; i < space.size(); ++i) {
    mean_i += prob[i] * space.count(i, i_species);
  }
  EXPECT_GE(mean_i, 0.0);
  real_t sum = 0.0;
  for (real_t v : prob) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-10);
}

TEST(Sir, InfectionRequiresContact) {
  const auto net = models::sir({});
  const int infect = 2;  // reaction order in the builder
  EXPECT_EQ(net.reaction(infect).name, "infect");
  EXPECT_DOUBLE_EQ(net.propensity(infect, State{10, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(net.propensity(infect, State{0, 10, 0}), 0.0);
  EXPECT_GT(net.propensity(infect, State{5, 5, 0}), 0.0);
}

TEST(ModelZoo, AllModelsProduceValidGenerators) {
  struct Case {
    const char* name;
    ReactionNetwork net;
    State initial;
  };
  models::EnzymeKineticsParams ep;
  ep.cap_s = 8;
  ep.cap_p = 8;
  models::SirParams sp;
  sp.cap_s = sp.cap_i = sp.cap_r = 8;
  std::vector<Case> cases;
  cases.push_back({"enzyme", models::enzyme_kinetics(ep),
                   models::enzyme_kinetics_initial(ep)});
  cases.push_back({"sir", models::sir(sp), models::sir_initial(sp)});

  for (auto& c : cases) {
    const StateSpace space(c.net, c.initial, 1000000);
    const auto a = rate_matrix(space);
    EXPECT_LT(max_column_sum(a), 1e-9) << c.name;
    EXPECT_GT(space.size(), 10) << c.name;
  }
}

}  // namespace
}  // namespace cmesolve::core
