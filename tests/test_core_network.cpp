// Tests for the reaction-network model and propensity evaluation.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/reaction_network.hpp"

namespace cmesolve::core {
namespace {

ReactionNetwork dimerization_network() {
  ReactionNetwork net;
  const int m = net.add_species("M", 100);
  const int d = net.add_species("D", 50);
  net.add_reaction("synth", 5.0, {}, {{m, +1}});
  net.add_reaction("deg", 1.0, {{m, 1}}, {{m, -1}});
  net.add_reaction("dim", 0.1, {{m, 2}}, {{m, -2}, {d, +1}});
  net.add_reaction("dis", 2.0, {{d, 1}}, {{d, -1}, {m, +2}});
  return net;
}

TEST(ReactionNetwork, SpeciesRegistration) {
  const auto net = dimerization_network();
  EXPECT_EQ(net.num_species(), 2);
  EXPECT_EQ(net.species_name(0), "M");
  EXPECT_EQ(net.capacity(1), 50);
  EXPECT_EQ(net.find_species("D"), 1);
  EXPECT_EQ(net.find_species("missing"), -1);
}

TEST(ReactionNetwork, PropensityMassAction) {
  const auto net = dimerization_network();
  const State x{10, 3};
  // synth: constant rate (empty reactant list).
  EXPECT_DOUBLE_EQ(net.propensity(0, x), 5.0);
  // deg: 1.0 * C(10,1) = 10.
  EXPECT_DOUBLE_EQ(net.propensity(1, x), 10.0);
  // dim: 0.1 * C(10,2) = 4.5.
  EXPECT_DOUBLE_EQ(net.propensity(2, x), 4.5);
  // dis: 2.0 * C(3,1) = 6.
  EXPECT_DOUBLE_EQ(net.propensity(3, x), 6.0);
}

TEST(ReactionNetwork, PropensityZeroWithoutReactants) {
  const auto net = dimerization_network();
  EXPECT_DOUBLE_EQ(net.propensity(2, State{1, 0}), 0.0);  // needs 2 monomers
  EXPECT_DOUBLE_EQ(net.propensity(3, State{0, 0}), 0.0);  // no dimer
}

TEST(ReactionNetwork, CapacityBlocksReaction) {
  const auto net = dimerization_network();
  EXPECT_FALSE(net.within_capacity(0, State{100, 0}));  // M at cap
  EXPECT_TRUE(net.within_capacity(0, State{99, 0}));
  EXPECT_FALSE(net.within_capacity(3, State{99, 1}));  // dis would push M to 101
  EXPECT_FALSE(net.within_capacity(2, State{2, 50}));  // D at cap
}

TEST(ReactionNetwork, ApplicableCombinesBothChecks) {
  const auto net = dimerization_network();
  EXPECT_TRUE(net.applicable(2, State{2, 0}));
  EXPECT_FALSE(net.applicable(2, State{1, 0}));   // propensity zero
  EXPECT_FALSE(net.applicable(2, State{2, 50}));  // capacity
}

TEST(ReactionNetwork, ApplyProducesSuccessor) {
  const auto net = dimerization_network();
  EXPECT_EQ(net.apply(2, State{10, 3}), (State{8, 4}));
  EXPECT_EQ(net.apply(3, State{8, 4}), (State{10, 3}));
}

TEST(ReactionNetwork, ValidState) {
  const auto net = dimerization_network();
  EXPECT_TRUE(net.valid_state(State{0, 0}));
  EXPECT_TRUE(net.valid_state(State{100, 50}));
  EXPECT_FALSE(net.valid_state(State{101, 0}));
  EXPECT_FALSE(net.valid_state(State{-1, 0}));
  EXPECT_FALSE(net.valid_state(State{0}));  // wrong arity
}

TEST(ReactionNetwork, InvalidDefinitionsThrow) {
  ReactionNetwork net;
  const int s = net.add_species("S", 10);
  EXPECT_THROW(net.add_reaction("bad", 1.0, {{s + 7, 1}}, {}),
               std::out_of_range);
  EXPECT_THROW(net.add_reaction("bad", 1.0, {{s, 0}}, {}),
               std::invalid_argument);
  EXPECT_THROW(net.add_reaction("bad", -1.0, {{s, 1}}, {{s, -1}}),
               std::invalid_argument);
  EXPECT_THROW((void)net.add_species("neg", -1), std::invalid_argument);
}

}  // namespace
}  // namespace cmesolve::core
