// Tests for DFS state-space enumeration and rate-matrix assembly.
#include <gtest/gtest.h>

#include <set>

#include "core/models.hpp"
#include "core/rate_matrix.hpp"
#include "core/state_space.hpp"
#include "sparse/dia.hpp"
#include "sparse/format_stats.hpp"

namespace cmesolve::core {
namespace {

/// Birth-death network: 0 -> X (rate birth), X -> 0 (rate death * x).
ReactionNetwork birth_death(std::int32_t cap, real_t birth, real_t death) {
  ReactionNetwork net;
  const int x = net.add_species("X", cap);
  net.add_reaction("birth", birth, {}, {{x, +1}});
  net.add_reaction("death", death, {{x, 1}}, {{x, -1}});
  return net;
}

TEST(StateSpace, BirthDeathEnumeratesWholeChain) {
  const auto net = birth_death(25, 3.0, 1.0);
  const StateSpace space(net, State{0}, 1000);
  EXPECT_EQ(space.size(), 26);
  EXPECT_FALSE(space.truncated());
}

TEST(StateSpace, DfsOrderIsTheChainOrder) {
  const auto net = birth_death(10, 1.0, 1.0);
  const StateSpace space(net, State{0}, 1000);
  for (index_t i = 0; i <= 10; ++i) {
    EXPECT_EQ(space.count(i, 0), i) << "DFS must walk the chain in order";
  }
}

TEST(StateSpace, FindLocatesEveryState) {
  const auto net = birth_death(15, 1.0, 1.0);
  const StateSpace space(net, State{0}, 1000);
  for (index_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(space.find(space.state(i)), i);
  }
  EXPECT_EQ(space.find(State{16}), -1);
  EXPECT_EQ(space.find(State{-1}), -1);
}

TEST(StateSpace, TruncationFlag) {
  const auto net = birth_death(1000, 1.0, 1.0);
  const StateSpace space(net, State{0}, 10);
  EXPECT_TRUE(space.truncated());
  EXPECT_EQ(space.size(), 10);
}

TEST(StateSpace, InvalidInitialThrows) {
  const auto net = birth_death(5, 1.0, 1.0);
  EXPECT_THROW(StateSpace(net, State{7}, 100), std::invalid_argument);
}

TEST(StateSpace, BrusselatorCoversTheBox) {
  models::BrusselatorParams p;
  p.cap_x = 12;
  p.cap_y = 7;
  const auto net = models::brusselator(p);
  const StateSpace space(net, models::brusselator_initial(p), 100000);
  EXPECT_EQ(space.size(), 13 * 8);  // feed/convert reach every (x, y)
}

TEST(StateSpace, ToggleSwitchReachesAllGeneCombinations) {
  models::ToggleSwitchParams p;
  p.cap_a = p.cap_b = 8;
  const auto net = models::toggle_switch(p);
  const StateSpace space(net, models::toggle_switch_initial(p), 100000);
  std::set<std::pair<int, int>> gene_states;
  const int ga = net.find_species("geneA_free");
  const int gb = net.find_species("geneB_free");
  for (index_t i = 0; i < space.size(); ++i) {
    gene_states.insert({space.count(i, ga), space.count(i, gb)});
  }
  EXPECT_EQ(gene_states.size(), 4u);
  // Operator occupancy conservation: free + bound = 1 in every state.
  const int gab = net.find_species("geneA_bound");
  for (index_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(space.count(i, ga) + space.count(i, gab), 1);
  }
}

TEST(StateSpace, DfsChainsReversiblePairsAdjacently) {
  // The fraction of consecutive index pairs connected by one reaction step
  // must be high — this is what fills the {-1,0,+1} band (Sec. V).
  models::ToggleSwitchParams p;
  p.cap_a = p.cap_b = 20;
  const auto net = models::toggle_switch(p);
  const StateSpace space(net, models::toggle_switch_initial(p), 100000);

  index_t adjacent = 0;
  for (index_t i = 0; i + 1 < space.size(); ++i) {
    const State a = space.state(i);
    bool connected = false;
    for (int k = 0; k < net.num_reactions() && !connected; ++k) {
      if (net.applicable(k, a) && space.find(net.apply(k, a)) == i + 1) {
        connected = true;
      }
    }
    adjacent += connected;
  }
  EXPECT_GT(static_cast<real_t>(adjacent) / static_cast<real_t>(space.size()),
            0.8);
}

// --- rate matrix ----------------------------------------------------------------

TEST(RateMatrix, BirthDeathEntries) {
  const auto net = birth_death(4, 3.0, 2.0);
  const StateSpace space(net, State{0}, 100);
  const auto a = rate_matrix(space);
  ASSERT_EQ(a.nrows, 5);
  // Column j: birth 3.0 to j+1, death 2*j to j-1, diagonal balances.
  EXPECT_DOUBLE_EQ(a.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(a.at(0, 0), -3.0);
  EXPECT_DOUBLE_EQ(a.at(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(a.at(2, 1), 3.0);
  EXPECT_DOUBLE_EQ(a.at(1, 1), -5.0);
  // Top state: birth blocked by the buffer.
  EXPECT_DOUBLE_EQ(a.at(4, 4), -8.0);
}

TEST(RateMatrix, ColumnsSumToZero) {
  for (auto& model : models::paper_suite(models::SuiteScale::kTiny)) {
    const StateSpace space(model.network, model.initial, 1'000'000);
    const auto a = rate_matrix(space);
    EXPECT_LT(max_column_sum(a), 1e-9) << model.name;
  }
}

TEST(RateMatrix, SignPattern) {
  models::SchnakenbergParams p;
  p.cap_x = 20;
  p.cap_y = 10;
  const auto net = models::schnakenberg(p);
  const StateSpace space(net, models::schnakenberg_initial(p), 100000);
  const auto a = rate_matrix(space);
  for (index_t r = 0; r < a.nrows; ++r) {
    for (index_t pp = a.row_ptr[r]; pp < a.row_ptr[r + 1]; ++pp) {
      if (a.col_idx[pp] == r) {
        EXPECT_LT(a.val[pp], 0.0);
      } else {
        EXPECT_GT(a.val[pp], 0.0);
      }
    }
  }
}

TEST(RateMatrix, DiagonalFullyDense) {
  for (auto& model : models::paper_suite(models::SuiteScale::kTiny)) {
    const StateSpace space(model.network, model.initial, 1'000'000);
    const auto f = sparse::fingerprint(rate_matrix(space));
    EXPECT_DOUBLE_EQ(f.d0, 1.0) << model.name;
  }
}

TEST(RateMatrix, BandDensityAboveDiaThreshold) {
  // Sec. V: the {-1,0,+1} band of DFS-ordered CME matrices clears the 0.66
  // DIA profitability threshold — for every benchmark network.
  for (auto& model : models::paper_suite(models::SuiteScale::kTiny)) {
    const StateSpace space(model.network, model.initial, 1'000'000);
    const auto f = sparse::fingerprint(rate_matrix(space));
    EXPECT_GT(f.dband, 0.66) << model.name;
  }
}

TEST(RateMatrix, TruncatedSpaceRejected) {
  const auto net = birth_death(1000, 1.0, 1.0);
  const StateSpace space(net, State{0}, 10);
  EXPECT_THROW((void)rate_matrix(space), std::runtime_error);
}

TEST(RateMatrix, FingerprintsMatchPaperTableI) {
  // Structural fingerprints are scale-free network properties; check the
  // tiny tier against the qualitative Table I pattern.
  const auto suite = models::paper_suite(models::SuiteScale::kTiny);
  for (auto& model : suite) {
    const StateSpace space(model.network, model.initial, 1'000'000);
    const auto f = sparse::fingerprint(rate_matrix(space));
    if (model.name == "brusselator") {
      EXPECT_EQ(f.row_max, 5);
      EXPECT_LT(f.variability, 0.15);
    } else if (model.name == "schnakenberg") {
      EXPECT_EQ(f.row_max, 7);
      EXPECT_LT(f.variability, 0.15);
    } else if (model.name.starts_with("toggle")) {
      EXPECT_EQ(f.row_max, 7);
    } else {  // phage-lambda-*
      EXPECT_EQ(f.row_max, 15);
      EXPECT_GT(f.variability, 0.15);
      EXPECT_GT(f.skew, 0.4);
    }
  }
}

}  // namespace
}  // namespace cmesolve::core
